// §5.4 — how property *generation policies* shape compilation complexity.
//
// The paper's closing observation: "the number of indexes present does
// not significantly affect the number of plans generated, because DB2
// uses an eager policy for order propagation. On the other hand, how data
// is initially partitioned in a parallel environment does affect plans
// generated and the compilation time because a lazy policy is employed
// for the partition property."
//
// Part A varies the number of indexes per table (orders are EAGER: the
// interesting orders exist regardless, as SORT enforcers if need be).
// Part B varies the initial partitioning column (partitions are LAZY:
// only physical partitions seed the lists). Part C turns the eager
// partition policy on, showing the sensitivity to physical design vanish
// while the search space grows.

#include <cstdio>

#include "bench/bench_util.h"
#include "query/query_builder.h"

using namespace cote;         // NOLINT — bench driver
using namespace cote::bench;  // NOLINT

namespace {

/// A 8-table star joined on c1/c2 (NOT the c0 partitioning key), with an
/// ORDER BY, built against the given physical design.
QueryGraph StarQuery(const Catalog& catalog) {
  QueryBuilder qb(catalog);
  for (int t = 0; t < 8; ++t) {
    qb.AddTable("T" + std::to_string(t), "t" + std::to_string(t));
  }
  for (int t = 1; t < 8; ++t) {
    qb.Join("t0", "c1", "t" + std::to_string(t), "c1");
    if (t % 2 == 0) qb.Join("t0", "c2", "t" + std::to_string(t), "c2");
  }
  qb.OrderBy({{"t0", "c5"}, {"t1", "c5"}});
  auto g = qb.Build();
  if (!g.ok()) std::abort();
  return std::move(g).value();
}

struct Row {
  int64_t plans;
  double seconds;
};

Row Measure(const Catalog& catalog, OptimizerOptions options) {
  QueryGraph q = StarQuery(catalog);
  Optimizer opt(options);
  OptimizeResult r;
  double seconds = MedianCompileSeconds(opt, q, &r);
  return Row{r.stats.join_plans_generated.total(), seconds};
}

}  // namespace

int main() {
  Section("Part A: number of indexes (orders are EAGER) — serial");
  std::printf("\n%-22s %14s %12s\n", "physical design", "join plans",
              "compile (s)");
  Row base_a{0, 0};
  for (int idx : {0, 1, 2, 3}) {
    auto catalog = MakeSyntheticCatalogEx(8, idx, "c0");
    Row row = Measure(*catalog, SerialOptions());
    if (idx == 0) base_a = row;
    std::printf("%-22s %14lld %12.4f   (%.2fx plans vs 0 indexes)\n",
                (std::to_string(idx) + " index(es)/table").c_str(),
                static_cast<long long>(row.plans), row.seconds,
                static_cast<double>(row.plans) /
                    static_cast<double>(base_a.plans));
  }
  std::printf(
      "-> order-driven plan counts are flat (eager order generation already"
      " materializes every interesting order, §5.4); the step at 2 indexes"
      " is the extra index-nested-loop ACCESS PATH a join-column index"
      " enables, not an order effect (the c3 index at 3 adds nothing)\n");

  Section("Part B: initial partitioning (partitions are LAZY) — parallel");
  std::printf("\n%-22s %14s %12s\n", "partitioned on", "join plans",
              "compile (s)");
  Row on_join{0, 0}, off_join{0, 0};
  for (const char* col : {"mix", "c1", "c2", "c5"}) {
    auto catalog = MakeSyntheticCatalogEx(8, 1, col);
    Row row = Measure(*catalog, ParallelOptions());
    if (std::string(col) == "mix") on_join = row;
    if (std::string(col) == "c5") off_join = row;
    std::string label = std::string(col) == "mix"
                            ? "c1/c2 staggered"
                            : std::string(col) +
                                  (std::string(col) == "c5"
                                       ? " (not a join col)"
                                       : " (join column)");
    std::printf("%-22s %14lld %12.4f\n", label.c_str(),
                static_cast<long long>(row.plans), row.seconds);
  }
  std::printf(
      "-> with the LAZY policy the physical design shows through: plan "
      "counts shift %.2fx and compile time %.2fx between join-column and "
      "useless partitioning (repartition enforcers are generated and "
      "costed on every join) — §5.4's partition sensitivity\n",
      static_cast<double>(on_join.plans) /
          static_cast<double>(off_join.plans),
      off_join.seconds / on_join.seconds);

  Section("Part C: EAGER partition policy ablation — parallel");
  std::printf("\n%-22s %14s %12s\n", "partitioned on", "join plans",
              "compile (s)");
  Row e_on{0, 0}, e_off{0, 0};
  for (const char* col : {"mix", "c5"}) {
    auto catalog = MakeSyntheticCatalogEx(8, 1, col);
    OptimizerOptions options = ParallelOptions();
    options.plangen.eager_partitions = true;
    Row row = Measure(*catalog, options);
    if (std::string(col) == "mix") e_on = row;
    if (std::string(col) == "c5") e_off = row;
    std::printf("%-22s %14lld %12.4f\n", col,
                static_cast<long long>(row.plans), row.seconds);
  }
  std::printf(
      "-> with EAGER partitions the design sensitivity collapses (plans "
      "%.2fx, time %.2fx between the same two designs) at the price of a "
      "larger search space (%.2fx plans over lazy) — the §3.2 trade-off "
      "that makes systems choose the lazy policy for partitions\n",
      static_cast<double>(e_on.plans) / static_cast<double>(e_off.plans),
      e_off.seconds / e_on.seconds,
      static_cast<double>(e_off.plans) /
          static_cast<double>(off_join.plans));
  return 0;
}
