// Ablation (§3.4) — separate orthogonal property lists vs one compound
// (order, partition) list, in the parallel environment.
//
// The paper chooses separate lists: cheaper to maintain, slightly
// underestimating (an interesting-partition/retired-order combination is
// dropped), and argues the error "isn't a serious problem in general".
// This bench quantifies both the accuracy and the overhead sides.

#include <cstdio>

#include "bench/bench_util.h"

using namespace cote;         // NOLINT — bench driver
using namespace cote::bench;  // NOLINT

namespace {

struct ModeResult {
  double avg_err = 0;
  double est_seconds = 0;
  int64_t plans = 0;
};

ModeResult RunMode(const Workload& w, MultiPropertyMode mode) {
  OptimizerOptions options = ParallelOptions();
  PlanCounterOptions copt;
  copt.multi_property = mode;
  TimeModel unused;
  CompileTimeEstimator cote(unused, options, copt);
  Optimizer opt(options);

  ModeResult out;
  for (int i = 0; i < w.size(); ++i) {
    OptimizeResult r = MustOptimize(opt, w.queries[i], w.labels[i]);
    double best = 1e18;
    CompileTimeEstimate est;
    for (int rep = 0; rep < 3; ++rep) {
      est = cote.Estimate(w.queries[i]);
      best = std::min(best, est.estimation_seconds);
    }
    out.est_seconds += best;
    out.plans += est.plan_estimates.total();
    out.avg_err +=
        RelError(static_cast<double>(est.plan_estimates.total()),
                 static_cast<double>(r.stats.join_plans_generated.total()));
  }
  out.avg_err /= w.size();
  return out;
}

void RunOne(const std::string& title, const Workload& w) {
  Section(title);
  ModeResult sep = RunMode(w, MultiPropertyMode::kSeparate);
  ModeResult comp = RunMode(w, MultiPropertyMode::kCompound);
  std::printf("\n%-10s %16s %14s %16s\n", "mode", "total plans est",
              "avg plan err", "estimation (s)");
  std::printf("%-10s %16lld %13.1f%% %16.5f\n", "separate",
              static_cast<long long>(sep.plans), 100 * sep.avg_err,
              sep.est_seconds);
  std::printf("%-10s %16lld %13.1f%% %16.5f\n", "compound",
              static_cast<long long>(comp.plans), 100 * comp.avg_err,
              comp.est_seconds);
  std::printf("separate-list overhead saving: %.2fx\n",
              comp.est_seconds / sep.est_seconds);
}

}  // namespace

int main() {
  RunOne("Ablation: separate vs compound property lists — linear_p",
         LinearWorkload());
  RunOne("Ablation: separate vs compound property lists — real1_p",
         Real1Workload());
  return 0;
}
