#include "bench/bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace cote {
namespace bench {

OptimizerOptions SerialOptions() {
  OptimizerOptions o;
  o.enumeration.max_composite_inner = 2;
  return o;
}

OptimizerOptions ParallelOptions() {
  OptimizerOptions o = OptimizerOptions::Parallel(4);
  o.enumeration.max_composite_inner = 2;
  return o;
}

TimeModel CalibrateTimeModel(const OptimizerOptions& options) {
  Workload training = TrainingWorkload();
  Optimizer opt(options);
  // The paper's model is T = Tinst * sum(Ct * Pt) with no constant term;
  // an intercept overfits the training set's fixed cost and wrecks the
  // estimates for sub-millisecond queries.
  TimeModelCalibrator cal(/*with_intercept=*/false,
                          /*relative_weighting=*/true);
  for (int i = 0; i < training.size(); ++i) {
    OptimizeResult r = MustOptimize(opt, training.queries[i],
                                    training.labels[i]);
    // Use the median-of-3 time for a stable regression target.
    double seconds = MedianCompileSeconds(opt, training.queries[i]);
    cal.AddObservation(r.stats.join_plans_generated, seconds);
  }
  auto model = cal.Fit();
  if (!model.ok()) {
    std::fprintf(stderr, "time model calibration failed: %s\n",
                 model.status().ToString().c_str());
    std::abort();
  }
  return std::move(model).value();
}

OptimizeResult MustOptimize(const Optimizer& opt, const QueryGraph& q,
                            const std::string& label) {
  auto r = opt.Optimize(q);
  if (!r.ok()) {
    std::fprintf(stderr, "optimize(%s) failed: %s\n", label.c_str(),
                 r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

double MedianCompileSeconds(const Optimizer& opt, const QueryGraph& q,
                            OptimizeResult* last) {
  std::vector<double> times;
  OptimizeResult result;
  MustOptimize(opt, q, "warmup");  // warm caches/allocator before timing
  for (int i = 0; i < 3; ++i) {
    result = MustOptimize(opt, q, "repeat");
    times.push_back(result.stats.total_seconds);
  }
  std::sort(times.begin(), times.end());
  if (last != nullptr) *last = std::move(result);
  return times[1];
}

double RelError(double est, double act) {
  if (act == 0) return 0;
  return std::abs(est - act) / act;
}

void Section(const std::string& title) {
  std::printf("\n");
  std::printf("================================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================================\n");
}

}  // namespace bench
}  // namespace cote
