#ifndef COTE_BENCH_BENCH_UTIL_H_
#define COTE_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/regression.h"
#include "optimizer/optimizer.h"
#include "workload/workload.h"

namespace cote {
namespace bench {

/// Optimizer configuration used throughout the reproduction: dynamic
/// programming with a composite-inner limit of 2 — matching the paper's
/// "level of optimization that uses dynamic programming with certain
/// limits on the composite inner size" (§5).
OptimizerOptions SerialOptions();
OptimizerOptions ParallelOptions();  ///< 4 logical nodes, like the paper

/// Calibrates the §3.5 time model by optimizing the training workload and
/// regressing measured time on per-method plan counts. One model per
/// environment, exactly as the paper fits two sets of Ct.
TimeModel CalibrateTimeModel(const OptimizerOptions& options);

/// Runs a full (instrumented) optimization; aborts on failure.
OptimizeResult MustOptimize(const Optimizer& opt, const QueryGraph& q,
                            const std::string& label);

/// Median-of-3 wall time of compiling `q` (reduces scheduler noise).
double MedianCompileSeconds(const Optimizer& opt, const QueryGraph& q,
                            OptimizeResult* last = nullptr);

/// Relative error |est - act| / act (0 when act == 0).
double RelError(double est, double act);

/// Prints a horizontal rule + section title.
void Section(const std::string& title);

}  // namespace bench
}  // namespace cote

#endif  // COTE_BENCH_BENCH_UTIL_H_
