// §6.2 — estimating optimizer memory consumption.
//
// The MEMO footprint is lower-bounded by the summed interesting property
// list lengths × per-plan size, computed by the plan-estimate pass. The
// paper proposes using this to refuse optimization levels that cannot fit
// in memory. This bench compares the bound against the actual MEMO bytes.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/memory_estimator.h"

using namespace cote;         // NOLINT — bench driver
using namespace cote::bench;  // NOLINT

namespace {

void RunOne(const std::string& title, const Workload& w,
            const OptimizerOptions& options) {
  Section(title);
  Optimizer opt(options);
  MemoryEstimator mem(options);

  std::printf("\n%-12s %14s %14s %10s\n", "query", "actual (KiB)",
              "estimate (KiB)", "est/act");
  int lower_bound_held = 0;
  double sum_ratio = 0;
  for (int i = 0; i < w.size(); ++i) {
    OptimizeResult r = MustOptimize(opt, w.queries[i], w.labels[i]);
    MemoryEstimate est = mem.Estimate(w.queries[i]);
    double act = static_cast<double>(r.stats.memo_bytes) / 1024;
    double bound = static_cast<double>(est.estimated_bytes) / 1024;
    lower_bound_held += (bound <= act * 1.05);
    sum_ratio += bound / act;
    std::printf("%-12s %14.1f %14.1f %10.2f\n", w.labels[i].c_str(), act,
                bound, bound / act);
  }
  // In serial mode the property-list estimate is a true lower bound; in
  // parallel mode cost-based pruning drops many order×partition
  // combinations, so the estimate can exceed the final footprint — it
  // still gates memory budgets usefully (order-of-magnitude accurate).
  std::printf("lower bound held on %d/%d queries; avg est/act %.2f\n",
              lower_bound_held, w.size(), sum_ratio / w.size());
}

}  // namespace

int main() {
  RunOne("Memory estimation — linear_s (serial)", LinearWorkload(),
         SerialOptions());
  RunOne("Memory estimation — star_s (serial)", StarWorkload(),
         SerialOptions());
  RunOne("Memory estimation — real1_p (parallel)", Real1Workload(),
         ParallelOptions());
  return 0;
}
