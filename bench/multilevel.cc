// §6.2 — piggybacked multi-level estimation.
//
// One enumeration pass at the most permissive level classifies every join
// by the smallest level that also enumerates it, estimating all levels at
// once. This bench shows (1) the per-level estimates match dedicated
// single-level passes, and (2) the shared pass amortizes the overhead.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/multilevel.h"

using namespace cote;         // NOLINT — bench driver
using namespace cote::bench;  // NOLINT

int main() {
  Section("Multi-level piggyback estimation (left-deep / inner<=2 / bushy)");

  TimeModel model = CalibrateTimeModel(SerialOptions());
  OptimizerOptions base;  // full bushy at the top level
  std::vector<int> limits{1, 2, 64};
  MultiLevelEstimator ml(model, base, limits);

  Workload w = StarWorkload();
  std::printf("\n%-9s | %26s | %26s | %26s | %9s\n", "query",
              "left-deep joins/plans/est-s", "inner<=2 joins/plans/est-s",
              "bushy joins/plans/est-s", "overhead");
  double shared_total = 0, dedicated_total = 0;
  for (int i = 0; i < w.size(); ++i) {
    auto result = ml.Estimate(w.queries[i]);
    shared_total += result.estimation_seconds;
    std::printf("%-9s |", w.labels[i].c_str());
    for (const auto& level : result.levels) {
      std::printf(" %7lld %9lld %8.4f |",
                  static_cast<long long>(level.joins_ordered),
                  static_cast<long long>(level.plan_estimates.total()),
                  level.estimated_seconds);
    }
    std::printf(" %8.5fs\n", result.estimation_seconds);

    // Dedicated passes for comparison (correctness asserted in tests;
    // here we only time them).
    StopWatch watch;
    for (int limit : limits) {
      OptimizerOptions o;
      o.enumeration.max_composite_inner = limit;
      CompileTimeEstimator dedicated(model, o);
      dedicated.Estimate(w.queries[i]);
    }
    dedicated_total += watch.ElapsedSeconds();
  }
  std::printf(
      "\nshared pass total %.4fs vs %zu dedicated passes %.4fs -> %.2fx "
      "amortization\n",
      shared_total, limits.size(), dedicated_total,
      dedicated_total / shared_total);
  return 0;
}
