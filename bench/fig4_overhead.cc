// Figure 4 — Overhead of Compilation Time Estimation Compared with Actual
// Optimization:
//   (a) linear workload, serial version
//   (b) real2 workload, serial version
//   (c) real1 workload, parallel version (the paper prints this as a
//       table: actual time / time to estimate / percentage)
//
// The paper's result: estimation costs 1-3% of actual compilation in the
// serial version, even less in the parallel version.

#include <cstdio>

#include "bench/bench_util.h"

using namespace cote;         // NOLINT — bench driver
using namespace cote::bench;  // NOLINT

namespace {

void RunOne(const std::string& title, const Workload& w,
            const OptimizerOptions& options) {
  Section(title);
  Optimizer opt(options);
  TimeModel unused;  // overhead does not depend on the time model
  CompileTimeEstimator cote(unused, options);

  std::printf("\n%-12s %14s %16s %8s\n", "query", "compile (s)",
              "estimate (s)", "pctg");
  double sum_actual = 0, sum_est = 0;
  for (int i = 0; i < w.size(); ++i) {
    double actual = MedianCompileSeconds(opt, w.queries[i]);
    // Median-of-3 estimation time as well.
    double est_time = 1e18;
    for (int r = 0; r < 3; ++r) {
      est_time = std::min(est_time,
                          cote.Estimate(w.queries[i]).estimation_seconds);
    }
    sum_actual += actual;
    sum_est += est_time;
    std::printf("%-12s %14.4f %16.5f %7.1f%%\n", w.labels[i].c_str(), actual,
                est_time, 100.0 * est_time / actual);
  }
  std::printf("%-12s %14.4f %16.5f %7.1f%%   (paper: 1-3%% serial, less "
              "parallel)\n",
              "TOTAL", sum_actual, sum_est, 100.0 * sum_est / sum_actual);
}

}  // namespace

int main() {
  RunOne("Figure 4(a): estimation overhead — linear_s (serial)",
         LinearWorkload(), SerialOptions());
  RunOne("Figure 4(b): estimation overhead — real2_s (serial)",
         Real2Workload(), SerialOptions());
  RunOne("Figure 4(c): estimation overhead — real1_p (parallel, 4 nodes)",
         Real1Workload(), ParallelOptions());
  return 0;
}
