// Figure 6 — Compilation Time Estimation accuracy.
//   Serial:   (a) star_s   (b) real1_s   (c) real2_s
//   Parallel: (d) TPC-H_p  (e) random_p  (f) real1_p
//
// The paper reports estimates within 30% of actual compilation time for
// (a)-(e), larger errors (up to 66%) on real1_p due to a larger variation
// of per-plan generation time in the parallel environment. The Ct
// coefficients are fit by regression on a training workload (§3.5), one
// set per environment.

#include <cstdio>

#include "bench/bench_util.h"

using namespace cote;         // NOLINT — bench driver
using namespace cote::bench;  // NOLINT

namespace {

void RunOne(const std::string& title, const Workload& w,
            const OptimizerOptions& options, const TimeModel& model) {
  Section(title);
  Optimizer opt(options);
  CompileTimeEstimator cote(model, options);

  std::printf("\n%-12s %14s %14s %8s\n", "query", "actual (s)",
              "estimated (s)", "error");
  double sum_err = 0, max_err = 0;
  for (int i = 0; i < w.size(); ++i) {
    double actual = MedianCompileSeconds(opt, w.queries[i]);
    CompileTimeEstimate est = cote.Estimate(w.queries[i]);
    double err = RelError(est.estimated_seconds, actual);
    sum_err += err;
    max_err = std::max(max_err, err);
    std::printf("%-12s %14.4f %14.4f %7.1f%%\n", w.labels[i].c_str(), actual,
                est.estimated_seconds, 100 * err);
  }
  std::printf("avg error %.1f%%  max %.1f%%   (paper: avg ~<=30%%)\n",
              100 * sum_err / w.size(), 100 * max_err);
}

}  // namespace

int main() {
  std::printf("calibrating time models (one per environment, as the paper "
              "fits two sets of Ct)...\n");
  TimeModel serial = CalibrateTimeModel(SerialOptions());
  TimeModel parallel = CalibrateTimeModel(ParallelOptions());
  std::printf("serial   Cm:Cn:Ch = %s\n", serial.RatioString().c_str());
  std::printf("parallel Cm:Cn:Ch = %s\n", parallel.RatioString().c_str());

  RunOne("Figure 6(a): time accuracy — star_s (serial)", StarWorkload(),
         SerialOptions(), serial);
  RunOne("Figure 6(b): time accuracy — real1_s (serial)", Real1Workload(),
         SerialOptions(), serial);
  RunOne("Figure 6(c): time accuracy — real2_s (serial)", Real2Workload(),
         SerialOptions(), serial);
  RunOne("Figure 6(d): time accuracy — TPC-H_p (parallel)", TpchWorkload(),
         ParallelOptions(), parallel);
  RunOne("Figure 6(e): time accuracy — random_p (parallel)",
         RandomWorkload(), ParallelOptions(), parallel);
  RunOne("Figure 6(f): time accuracy — real1_p (parallel)", Real1Workload(),
         ParallelOptions(), parallel);
  return 0;
}
