// Compile-service scheduling bench (BENCH_service.json).
//
// Replays the same seeded open-loop arrival stream (Poisson arrivals over
// a mixed linear/star/random/TPC-H pool) through the service once per
// scheduling policy — FIFO, shortest-estimated-first, deadline-aware —
// and records sustained throughput and queue-latency percentiles. The
// stream is sized for ~1.2x offered load, the overload regime where the
// dispatch order is the only thing that differs between policies: total
// work and makespan match, but who waits changes, which is exactly what
// p95 queue latency measures. Estimates come first (the paper's §6
// admission fee), so SJF's ordering costs nothing extra — the prediction
// it sorts by was already paid for by admission and budget derivation.
//
// Two execution modes, selectable with --mode (default: both):
//   simulated  CompileService::Run — the discrete-event timeline, one
//              compile at a time on the calling thread (1 worker);
//   async      AsyncCompileService — real worker threads over the condvar
//              ready-queue handoff, arrivals paced in wall time
//              (--workers threads, default 4). The queue seconds here are
//              real waits, so this is the live-server counterpart of the
//              simulated figures.
//
// Expected shape: shortest-estimated-first improves mean and p95 queue
// latency over FIFO on the mixed pool (classic SJF vs FCFS, enabled here
// by the estimator); deadline-aware trades some of that for fewer
// deadline misses on the deadline-carrying half of the stream. The async
// mode shows the same policy ordering when its workers saturate.
//
// Usage:
//   service_throughput [--label NAME] [--out FILE] [--arrivals N]
//                      [--max-tables N] [--mode simulated|async|both]
//                      [--workers N]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "service/admission.h"
#include "service/async_executor.h"
#include "service/compile_service.h"
#include "workload/workload.h"

namespace cote {
namespace {

struct Sample {
  std::string mode;  // "simulated", "async", "overload", "overload-growth"
  std::string policy;
  int workers = 0;
  int arrivals = 0;
  double queries_per_sec = 0;
  double makespan_seconds = 0;
  double mean_queue_seconds = 0;
  double p50_queue_seconds = 0;
  double p95_queue_seconds = 0;
  int64_t estimates = 0;
  int64_t cache_hits = 0;
  int64_t cache_insertions = 0;
  int64_t degraded = 0;
  int64_t failed = 0;
  int64_t deadline_misses = 0;
  // Overload-sweep columns (zero/empty for the scheduling samples above):
  // offered load multiplier, overload policy, queue capacity (0 =
  // unbounded), the outcome taxonomy, and p95 queue latency over *served*
  // queries only — the resilience headline (shed work must not count as
  // latency the service delivered).
  double load = 0;
  std::string overload;
  int capacity = 0;
  int64_t served_full = 0;
  int64_t served_degraded = 0;
  int64_t shed_queue_full = 0;
  int64_t shed_expired = 0;
  int64_t failed_permanent = 0;
  int64_t retried = 0;
  double p95_served_queue_seconds = 0;
};

double Percentile(std::vector<double> xs, int pct) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const size_t n = xs.size();
  size_t rank = (n * static_cast<size_t>(pct) + 99) / 100;  // nearest-rank
  if (rank == 0) rank = 1;
  return xs[rank - 1];
}

void WriteJson(const std::string& path, const std::string& label,
               const std::vector<Sample>& samples) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::abort();
  }
  std::fprintf(f,
               "{\n  \"label\": \"%s\",\n  \"hardware_threads\": %u,\n"
               "  \"results\": [\n",
               label.c_str(), std::thread::hardware_concurrency());
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"policy\": \"%s\", \"workers\": %d, "
        "\"arrivals\": %d, "
        "\"queries_per_sec\": %.2f, \"makespan_seconds\": %.6f, "
        "\"mean_queue_seconds\": %.6f, \"p50_queue_seconds\": %.6f, "
        "\"p95_queue_seconds\": %.6f, \"estimates\": %lld, "
        "\"cache_hits\": %lld, \"cache_insertions\": %lld, "
        "\"degraded\": %lld, \"failed\": %lld, "
        "\"deadline_misses\": %lld, "
        "\"load\": %.2f, \"overload\": \"%s\", \"capacity\": %d, "
        "\"served_full\": %lld, \"served_degraded\": %lld, "
        "\"shed_queue_full\": %lld, \"shed_expired\": %lld, "
        "\"failed_permanent\": %lld, \"retried\": %lld, "
        "\"p95_served_queue_seconds\": %.6f}%s\n",
        s.mode.c_str(), s.policy.c_str(), s.workers, s.arrivals,
        s.queries_per_sec,
        s.makespan_seconds, s.mean_queue_seconds, s.p50_queue_seconds,
        s.p95_queue_seconds, static_cast<long long>(s.estimates),
        static_cast<long long>(s.cache_hits),
        static_cast<long long>(s.cache_insertions),
        static_cast<long long>(s.degraded), static_cast<long long>(s.failed),
        static_cast<long long>(s.deadline_misses), s.load, s.overload.c_str(),
        s.capacity, static_cast<long long>(s.served_full),
        static_cast<long long>(s.served_degraded),
        static_cast<long long>(s.shed_queue_full),
        static_cast<long long>(s.shed_expired),
        static_cast<long long>(s.failed_permanent),
        static_cast<long long>(s.retried), s.p95_served_queue_seconds,
        i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace cote

int main(int argc, char** argv) {
  using namespace cote;
  std::string label = "current";
  std::string out = "BENCH_service.json";
  int arrivals = 240;
  int max_tables = 8;
  std::string mode = "both";
  int async_workers = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      label = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--arrivals") == 0 && i + 1 < argc) {
      arrivals = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-tables") == 0 && i + 1 < argc) {
      max_tables = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      mode = argv[++i];
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      async_workers = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--label NAME] [--out FILE] [--arrivals N] "
                   "[--max-tables N] [--mode simulated|async|both] "
                   "[--workers N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (mode != "simulated" && mode != "async" && mode != "both") {
    std::fprintf(stderr, "--mode must be simulated, async, or both\n");
    return 2;
  }
  const bool run_simulated = mode != "async";
  const bool run_async = mode != "simulated";

  bench::Section("Compile-service scheduling (label: " + label + ")");

  const OptimizerOptions options = bench::SerialOptions();
  const TimeModel model = bench::CalibrateTimeModel(options);

  // The mixed pool: chains, stars, random shapes, TPC-H — heterogeneous
  // enough that predicted cost spans ~2 orders of magnitude, which is the
  // spread SJF exploits. --max-tables bounds per-compile cost so the
  // whole bench stays wall-clock cheap.
  Workload linear = LinearWorkload();
  Workload star = StarWorkload();
  Workload random = RandomWorkload(13, 42);
  Workload tpch = TpchWorkload();
  std::vector<const QueryGraph*> pool;
  for (const Workload* w : {&linear, &star, &random, &tpch}) {
    for (const QueryGraph& q : w->queries) {
      if (q.num_tables() <= max_tables) pool.push_back(&q);
    }
  }
  std::printf("pool: %zu queries (<= %d tables)\n", pool.size(), max_tables);

  // Size the stream for ~1.2x offered load from the pool's mean predicted
  // compile time (one warm estimate per query — the same path admission
  // runs).
  double mean_predicted = 0;
  {
    AdmissionStage probe(options, PlanCounterOptions(), model,
                         AdmissionOptions(), nullptr, nullptr);
    for (const QueryGraph* q : pool) {
      mean_predicted += probe.Admit(*q, ServiceQueryClass(*q)).predicted_seconds;
    }
    mean_predicted /= static_cast<double>(pool.size());
  }

  ArrivalTraceOptions trace_options;
  trace_options.num_arrivals = arrivals;
  trace_options.mean_gap_seconds = mean_predicted / 1.2;
  trace_options.seed = 42;
  trace_options.deadline_fraction = 0.5;
  trace_options.deadline_slack_min_seconds = 5 * mean_predicted;
  trace_options.deadline_slack_max_seconds = 50 * mean_predicted;
  const std::vector<Submission> trace = MakeOpenLoopTrace(pool, trace_options);
  std::printf(
      "stream: %d arrivals, mean predicted %.4fs, mean gap %.4fs "
      "(offered load ~1.2x)\n\n",
      arrivals, mean_predicted, trace_options.mean_gap_seconds);

  std::vector<Sample> samples;
  const auto record_sample = [&](const char* sample_mode,
                                 SchedulingPolicy policy, int workers,
                                 const ServiceReport& r) {
    Sample s;
    s.mode = sample_mode;
    s.policy = SchedulingPolicyName(policy);
    s.workers = workers;
    s.arrivals = arrivals;
    s.queries_per_sec = r.QueriesPerSecond();
    s.makespan_seconds = r.makespan_seconds;
    s.mean_queue_seconds = r.MeanQueueSeconds();
    std::vector<double> queue;
    queue.reserve(r.records.size());
    for (const ServiceQueryRecord& rec : r.records) {
      queue.push_back(rec.queue_seconds);
    }
    s.p50_queue_seconds = Percentile(queue, 50);
    s.p95_queue_seconds = Percentile(queue, 95);
    s.estimates = r.estimates;
    s.cache_hits = r.cache_hits;
    s.cache_insertions = r.cache_insertions;
    s.degraded = r.degraded;
    s.failed = r.failed;
    s.deadline_misses = r.deadline_misses;
    samples.push_back(s);
    std::printf(
        "%-9s %-5s w=%d %7.1f q/s  makespan=%7.3fs  queue mean=%7.4fs "
        "p50=%7.4fs p95=%7.4fs  est=%lld hit=%lld miss_ddl=%lld\n",
        s.mode.c_str(), s.policy.c_str(), s.workers, s.queries_per_sec,
        s.makespan_seconds, s.mean_queue_seconds, s.p50_queue_seconds,
        s.p95_queue_seconds, static_cast<long long>(s.estimates),
        static_cast<long long>(s.cache_hits),
        static_cast<long long>(s.deadline_misses));
  };

  constexpr SchedulingPolicy kPolicies[] = {
      SchedulingPolicy::kFifo, SchedulingPolicy::kShortestEstimatedFirst,
      SchedulingPolicy::kDeadlineAware};

  size_t simulated_base = 0;
  if (run_simulated) {
    simulated_base = samples.size();
    for (SchedulingPolicy policy : kPolicies) {
      CompileServiceOptions o;
      o.optimizer = options;
      o.time_model = model;
      o.num_workers = 1;
      o.policy = policy;
      o.time_source = ServiceTimeSource::kClock;
      CompileService service(o);
      ServiceReport r = service.Run(trace);
      record_sample("simulated", policy, o.num_workers, r);
    }
  }

  if (run_async) {
    // Live replay: real worker threads, arrivals paced in wall time. The
    // queue seconds here are actual condvar waits, so dispatch-order
    // effects only show once the workers saturate; with --workers above
    // the offered load the async samples mostly measure handoff overhead.
    for (SchedulingPolicy policy : kPolicies) {
      CompileServiceOptions o;
      o.optimizer = options;
      o.time_model = model;
      o.num_workers = async_workers;
      o.policy = policy;
      o.time_source = ServiceTimeSource::kClock;
      AsyncCompileService service(o);
      ServiceReport r = service.Run(trace, /*pace_arrivals=*/true);
      record_sample("async", policy, o.num_workers, r);
    }
  }

  // -------------------------------------------------------------------------
  // Overload sweep (DESIGN.md §16): offered load 0.5x/1x/2x/4x through
  // three front-door configurations, on the virtual clock with
  // estimate-derived service times so the load multiplier is exact and
  // the runs replay deterministically:
  //   unbounded-fifo    the pre-resilience service — no capacity, no
  //                     patience, no retry; every arrival waits forever;
  //   reject            capacity 8, typed refusal at the door, patience
  //                     ladder and one retry for what gets in;
  //   shed-lowest-value capacity 8, evict the worst estimate-derived
  //                     value under pressure, same ladder and retry.
  // The headline column is p95 queue latency of *served* queries: the
  // bounded doors hold it near the queue's drain time at any load, while
  // the unbounded door's grows with offered load — and with trace
  // length, which the overload-growth samples show directly at 2x.
  struct OverloadConfig {
    const char* name;
    OverloadPolicy policy;
    int capacity;
    double patience_factor;
    int max_retries;
  };
  constexpr OverloadConfig kDoors[] = {
      {"unbounded-fifo", OverloadPolicy::kBlock, 0, 0.0, 0},
      {"reject", OverloadPolicy::kReject, 8, 4.0, 1},
      {"shed-lowest-value", OverloadPolicy::kShedLowestValue, 8, 4.0, 1},
  };
  const auto make_sweep_trace = [&](int n, double load) {
    ArrivalTraceOptions t;
    t.num_arrivals = n;
    t.mean_gap_seconds = mean_predicted / load;
    t.seed = 1234;
    return MakeOpenLoopTrace(pool, t);
  };
  const auto run_overload = [&](const char* sample_mode, double load,
                                const OverloadConfig& door,
                                const std::vector<Submission>& sweep_trace) {
    CompileServiceOptions o;
    o.optimizer = options;
    o.time_model = model;
    o.num_workers = 1;
    o.policy = SchedulingPolicy::kFifo;
    o.time_source = ServiceTimeSource::kEstimate;
    o.queue_capacity = door.capacity;
    o.overload = door.policy;
    o.max_retries = door.max_retries;
    o.admission.limits_policy.patience_factor = door.patience_factor;
    VirtualClock clock;
    o.clock = &clock;
    o.drive_clock = &clock;
    CompileService service(o);
    ServiceReport r = service.Run(sweep_trace);
    record_sample(sample_mode, o.policy, o.num_workers, r);
    Sample& s = samples.back();
    s.arrivals = static_cast<int>(sweep_trace.size());
    s.load = load;
    s.overload = door.name;
    s.capacity = door.capacity;
    s.served_full = r.taxonomy.served_full;
    s.served_degraded = r.taxonomy.served_degraded;
    s.shed_queue_full = r.taxonomy.shed_queue_full;
    s.shed_expired = r.taxonomy.shed_expired;
    s.failed_permanent = r.taxonomy.failed_permanent;
    s.retried = r.taxonomy.retried;
    s.p95_served_queue_seconds = r.P95ServedQueueSeconds();
    std::printf(
        "  -> %-17s load=%.1fx cap=%d  served=%lld+%lldd shed=%lld+%llde "
        "retried=%lld  p95(served)=%.4fs\n",
        door.name, load, door.capacity,
        static_cast<long long>(s.served_full),
        static_cast<long long>(s.served_degraded),
        static_cast<long long>(s.shed_queue_full),
        static_cast<long long>(s.shed_expired),
        static_cast<long long>(s.retried), s.p95_served_queue_seconds);
    return s.p95_served_queue_seconds;
  };

  const int sweep_arrivals = std::max(40, arrivals / 2);
  std::printf("\noverload sweep (%d arrivals, virtual clock):\n",
              sweep_arrivals);
  for (double load : {0.5, 1.0, 2.0, 4.0}) {
    const std::vector<Submission> sweep_trace =
        make_sweep_trace(sweep_arrivals, load);
    for (const OverloadConfig& door : kDoors) {
      run_overload("overload", load, door, sweep_trace);
    }
  }

  // Growth check at 2x load: double the trace and the unbounded door's
  // served-p95 roughly doubles with it (the queue just keeps deepening),
  // while the bounded shedding door's stays where it was.
  std::printf("\noverload growth at 2.0x load (N vs 2N arrivals):\n");
  double unbounded_p95[2], shed_p95[2];
  for (int i = 0; i < 2; ++i) {
    const std::vector<Submission> sweep_trace =
        make_sweep_trace(sweep_arrivals * (i + 1), 2.0);
    unbounded_p95[i] = run_overload("overload-growth", 2.0, kDoors[0],
                                    sweep_trace);
    shed_p95[i] = run_overload("overload-growth", 2.0, kDoors[2], sweep_trace);
  }
  std::printf(
      "unbounded-fifo p95(served): %.4fs -> %.4fs (x%.2f)   "
      "shed-lowest-value: %.4fs -> %.4fs (x%.2f)\n",
      unbounded_p95[0], unbounded_p95[1],
      unbounded_p95[0] > 0 ? unbounded_p95[1] / unbounded_p95[0] : 0.0,
      shed_p95[0], shed_p95[1],
      shed_p95[0] > 0 ? shed_p95[1] / shed_p95[0] : 0.0);

  if (run_simulated) {
    const Sample& fifo = samples[simulated_base];
    const Sample& sjf = samples[simulated_base + 1];
    std::printf("\nSJF vs FIFO (simulated): p95 queue %.4fs -> %.4fs (%+.1f%%)\n",
                fifo.p95_queue_seconds, sjf.p95_queue_seconds,
                fifo.p95_queue_seconds > 0
                    ? 100.0 * (sjf.p95_queue_seconds - fifo.p95_queue_seconds) /
                          fifo.p95_queue_seconds
                    : 0.0);
    if (sjf.p95_queue_seconds >= fifo.p95_queue_seconds) {
      std::printf("WARNING: SJF did not improve p95 over FIFO on this run\n");
    }
  }

  WriteJson(out, label, samples);
  std::printf("wrote %s (%zu samples)\n", out.c_str(), samples.size());
  return 0;
}
