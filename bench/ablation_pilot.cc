// §6.1 — pilot-pass pruning and its (limited) effect on plan counts.
//
// The paper argues COTE can ignore pilot-pass pruning because "no more
// than 10% of plans are pruned by the initial plan in real workloads":
// the cost of a complete plan exceeds that of most partial plans. This
// bench seeds the pruning bound with the greedy (low-level) plan's cost
// and measures the pruned fraction.

#include <cstdio>

#include "bench/bench_util.h"

using namespace cote;         // NOLINT — bench driver
using namespace cote::bench;  // NOLINT

namespace {

void RunOne(const std::string& title, const Workload& w) {
  Section(title);
  OptimizerOptions low;
  low.level = OptimizationLevel::kLow;
  Optimizer greedy(low);

  std::printf("\n%-12s %14s %12s %10s\n", "query", "plans generated",
              "pilot-pruned", "fraction");
  double worst = 0;
  for (int i = 0; i < w.size(); ++i) {
    OptimizeResult pilot = MustOptimize(greedy, w.queries[i], w.labels[i]);

    OptimizerOptions high = SerialOptions();
    high.plangen.pilot_pass = true;
    high.plangen.pilot_cost = pilot.stats.best_cost;
    Optimizer opt(high);
    OptimizeResult r = MustOptimize(opt, w.queries[i], w.labels[i]);
    int64_t generated = r.stats.join_plans_generated.total() +
                        r.stats.pruned_by_pilot;
    double frac = generated == 0
                      ? 0
                      : static_cast<double>(r.stats.pruned_by_pilot) /
                            static_cast<double>(generated);
    worst = std::max(worst, frac);
    std::printf("%-12s %14lld %12lld %9.1f%%\n", w.labels[i].c_str(),
                static_cast<long long>(generated),
                static_cast<long long>(r.stats.pruned_by_pilot), 100 * frac);
  }
  std::printf("\nworst pruned fraction %.1f%% (paper: no more than ~10%%)\n",
              100 * worst);
}

}  // namespace

int main() {
  RunOne("Pilot-pass pruning fraction — real1_s", Real1Workload());
  RunOne("Pilot-pass pruning fraction — real2_s", Real2Workload());
  return 0;
}
