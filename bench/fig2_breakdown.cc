// Figure 2 — Compilation Time Breakdown for a Customer Workload.
//
// The paper reports, for a real customer workload on serial DB2:
//   MGJN 37%, NLJN 34%, HSJN 5%, plan saving 16%, other 8%
// (>90% of compilation is generating and saving join plans). This bench
// compiles the real2 stand-in workload with full instrumentation and
// prints the same breakdown.

#include <cstdio>

#include "bench/bench_util.h"

using namespace cote;         // NOLINT — bench driver
using namespace cote::bench;  // NOLINT

int main() {
  Section("Figure 2: compilation time breakdown (real2 workload, serial)");

  Workload w = Real2Workload();
  Optimizer opt(SerialOptions());

  double gen[kNumJoinMethods] = {0, 0, 0};
  double save = 0, init = 0, enumeration = 0, total = 0;
  for (int i = 0; i < w.size(); ++i) {
    OptimizeResult r = MustOptimize(opt, w.queries[i], w.labels[i]);
    for (int m = 0; m < kNumJoinMethods; ++m) gen[m] += r.stats.gen_seconds[m];
    save += r.stats.save_seconds;
    init += r.stats.init_seconds;
    enumeration += r.stats.enum_seconds;
    total += r.stats.total_seconds;
  }

  double other = total - gen[0] - gen[1] - gen[2] - save;
  auto pct = [&](double x) { return 100.0 * x / total; };

  std::printf("\n%-28s %10s %8s   %s\n", "category", "seconds", "share",
              "paper (DB2)");
  std::printf("%-28s %10.4f %7.1f%%   37%%\n", "MGJN plan generation",
              gen[static_cast<int>(JoinMethod::kMgjn)],
              pct(gen[static_cast<int>(JoinMethod::kMgjn)]));
  std::printf("%-28s %10.4f %7.1f%%   34%%\n", "NLJN plan generation",
              gen[static_cast<int>(JoinMethod::kNljn)],
              pct(gen[static_cast<int>(JoinMethod::kNljn)]));
  std::printf("%-28s %10.4f %7.1f%%    5%%\n", "HSJN plan generation",
              gen[static_cast<int>(JoinMethod::kHsjn)],
              pct(gen[static_cast<int>(JoinMethod::kHsjn)]));
  std::printf("%-28s %10.4f %7.1f%%   16%%\n", "plan saving (MEMO insert)",
              save, pct(save));
  std::printf("%-28s %10.4f %7.1f%%    8%%\n", "other", other, pct(other));
  std::printf("%-28s %10.4f %7.1f%%\n", "  of which enumeration",
              enumeration, pct(enumeration));
  std::printf("%-28s %10.4f %7.1f%%\n", "  of which base plans/logical",
              init, pct(init));
  std::printf("%-28s %10.4f  100.0%%\n", "total", total);

  double join_related = pct(gen[0] + gen[1] + gen[2] + save);
  std::printf(
      "\n>90%% of time in generating+saving join plans (paper's headline): "
      "%.1f%% here\n",
      join_related);
  std::printf(
      "join enumeration is a small fraction of 'other' (paper: <20%% of "
      "other): %.1f%%\n",
      other > 0 ? 100.0 * enumeration / other : 0.0);
  return 0;
}
