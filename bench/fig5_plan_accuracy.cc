// Figure 5 — Accuracy of the Estimated Number of Join Plans.
//   (a)-(c) star workload, serial: MGJN / NLJN / HSJN
//   (d)-(f) random workload, parallel
//   (g)-(i) real1 workload, parallel
//
// Paper's findings (§5.2): HSJN estimates are EXACT in the serial version
// (no property propagation: exactly twice the joins); NLJN within ~30%,
// MGJN within ~14% (overestimated, due to plan sharing between a general
// and a less general order); parallel HSJN off by -2%..24% because the
// estimate-mode cardinality model is simpler.

#include <cstdio>

#include "bench/bench_util.h"

using namespace cote;         // NOLINT — bench driver
using namespace cote::bench;  // NOLINT

namespace {

void RunOne(const std::string& title, const Workload& w,
            const OptimizerOptions& options) {
  Section(title);
  Optimizer opt(options);
  TimeModel unused;
  CompileTimeEstimator cote(unused, options);

  double sum_err[kNumJoinMethods] = {0, 0, 0};
  double max_err[kNumJoinMethods] = {0, 0, 0};
  int counted[kNumJoinMethods] = {0, 0, 0};

  std::printf("\n%-12s | %21s | %21s | %21s\n", "", "MGJN act/est",
              "NLJN act/est", "HSJN act/est");
  for (int i = 0; i < w.size(); ++i) {
    OptimizeResult r = MustOptimize(opt, w.queries[i], w.labels[i]);
    CompileTimeEstimate est = cote.Estimate(w.queries[i]);
    std::printf("%-12s |", w.labels[i].c_str());
    for (JoinMethod m :
         {JoinMethod::kMgjn, JoinMethod::kNljn, JoinMethod::kHsjn}) {
      int64_t a = r.stats.join_plans_generated[m];
      int64_t e = est.plan_estimates[m];
      double err = RelError(static_cast<double>(e), static_cast<double>(a));
      std::printf(" %9lld/%-8lld %3.0f%% |", static_cast<long long>(a),
                  static_cast<long long>(e), 100 * err);
      if (a > 0) {
        int mi = static_cast<int>(m);
        sum_err[mi] += err;
        max_err[mi] = std::max(max_err[mi], err);
        ++counted[mi];
      }
    }
    std::printf("\n");
  }
  std::printf("\nper-method error:");
  for (JoinMethod m :
       {JoinMethod::kMgjn, JoinMethod::kNljn, JoinMethod::kHsjn}) {
    int mi = static_cast<int>(m);
    std::printf("  %s avg %.1f%% max %.1f%%", JoinMethodName(m),
                counted[mi] ? 100 * sum_err[mi] / counted[mi] : 0,
                100 * max_err[mi]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  RunOne("Figure 5(a)-(c): plan-count accuracy — star_s (serial)",
         StarWorkload(), SerialOptions());
  RunOne("Figure 5(d)-(f): plan-count accuracy — random_p (parallel)",
         RandomWorkload(), ParallelOptions());
  RunOne("Figure 5(g)-(i): plan-count accuracy — real1_p (parallel)",
         Real1Workload(), ParallelOptions());
  return 0;
}
