// Ablation (§6.2) — bottom-up DP vs top-down (transformation-style)
// enumeration order.
//
// The paper notes that a join enumerator remains reusable for estimation
// as long as only the *relative order* of joins changes (§3.1), and
// discusses extending the framework to transformation-based optimizers
// whose MEMO fills top-down (§6.2). This bench runs both enumerators over
// the same workloads and reports: (1) identical join counts and plan
// estimates, (2) the relative speed of the two search orders, for both
// full optimization and plan-estimate mode.

#include <cstdio>

#include "bench/bench_util.h"

using namespace cote;         // NOLINT — bench driver
using namespace cote::bench;  // NOLINT

namespace {

void RunOne(const std::string& title, const Workload& w) {
  Section(title);
  OptimizerOptions bu = SerialOptions();
  OptimizerOptions td = bu;
  td.enumeration.kind = EnumeratorKind::kTopDown;

  Optimizer opt_bu(bu), opt_td(td);
  TimeModel unused;
  CompileTimeEstimator cote_bu(unused, bu), cote_td(unused, td);

  double t_opt_bu = 0, t_opt_td = 0, t_est_bu = 0, t_est_td = 0;
  int identical_counts = 0, identical_estimates = 0;
  for (int i = 0; i < w.size(); ++i) {
    OptimizeResult rb, rt;
    t_opt_bu += MedianCompileSeconds(opt_bu, w.queries[i], &rb);
    t_opt_td += MedianCompileSeconds(opt_td, w.queries[i], &rt);
    bool same = true;
    for (int m = 0; m < kNumJoinMethods; ++m) {
      same &= rb.stats.join_plans_generated.counts[m] ==
              rt.stats.join_plans_generated.counts[m];
    }
    same &= rb.stats.enumeration.joins_ordered ==
            rt.stats.enumeration.joins_ordered;
    identical_counts += same;

    double eb = 1e18, et = 1e18;
    CompileTimeEstimate est_b, est_t;
    for (int rep = 0; rep < 3; ++rep) {
      est_b = cote_bu.Estimate(w.queries[i]);
      est_t = cote_td.Estimate(w.queries[i]);
      eb = std::min(eb, est_b.estimation_seconds);
      et = std::min(et, est_t.estimation_seconds);
    }
    t_est_bu += eb;
    t_est_td += et;
    bool est_same = true;
    for (int m = 0; m < kNumJoinMethods; ++m) {
      est_same &=
          est_b.plan_estimates.counts[m] == est_t.plan_estimates.counts[m];
    }
    identical_estimates += est_same;
  }

  std::printf("\nidentical plan counts:    %d/%d queries\n", identical_counts,
              w.size());
  std::printf("identical COTE estimates: %d/%d queries\n",
              identical_estimates, w.size());
  std::printf("full optimization: bottom-up %.4fs, top-down %.4fs (%.2fx)\n",
              t_opt_bu, t_opt_td, t_opt_td / t_opt_bu);
  std::printf("plan-estimate mode: bottom-up %.4fs, top-down %.4fs (%.2fx)\n",
              t_est_bu, t_est_td, t_est_td / t_est_bu);
}

}  // namespace

int main() {
  RunOne("Enumeration order ablation — star_s", StarWorkload());
  RunOne("Enumeration order ablation — real1_s", Real1Workload());
  return 0;
}
