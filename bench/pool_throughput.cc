// Session-pool batch throughput bench (BENCH_pool.json).
//
// Compiles the same replicated random-workload batch through SessionPool
// at worker counts 1, 2, 4, 8 (both plan mode and §3 estimate mode) and
// reports wall time, summed busy time and the achieved speedup
// (busy / wall). The N=1 pool runs the drain loop inline, so it doubles
// as the serial baseline; scaling_vs_1 relates each N's wall clock to it.
//
// Speedup is bounded by the machine: on a single-core container every N
// collapses to ~1x wall-clock (the workers time-slice one CPU), which the
// JSON records honestly via "hardware_threads". On such a machine
// busy / wall overstates — a descheduled worker's StopWatch keeps
// accruing wall time — so read scaling_vs_1 there, not speedup. See
// EXPERIMENTS.md, "Session-pool scaling".
//
// Usage:
//   pool_throughput [--label NAME] [--out FILE] [--reps N]

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "session/session_pool.h"
#include "workload/workload.h"

namespace cote {
namespace {

struct Sample {
  std::string mode;  // "compile" | "estimate"
  int workers = 0;
  size_t batch = 0;
  double wall_seconds = 0;
  double busy_seconds = 0;
  double speedup = 0;       // busy / wall, from BatchStats
  double scaling_vs_1 = 0;  // wall(N=1) / wall(N)
  double queries_per_sec = 0;
  int64_t plans = 0;  // plans compiled (compile) or estimates (estimate)
};

void WriteJson(const std::string& path, const std::string& label,
               const std::vector<Sample>& samples) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::abort();
  }
  std::fprintf(f,
               "{\n  \"label\": \"%s\",\n  \"hardware_threads\": %u,\n"
               "  \"results\": [\n",
               label.c_str(), std::thread::hardware_concurrency());
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"workers\": %d, \"batch\": %zu, "
        "\"wall_seconds\": %.6f, \"busy_seconds\": %.6f, "
        "\"speedup\": %.3f, \"scaling_vs_1\": %.3f, "
        "\"queries_per_sec\": %.2f, \"plans\": %lld}%s\n",
        s.mode.c_str(), s.workers, s.batch, s.wall_seconds, s.busy_seconds,
        s.speedup, s.scaling_vs_1, s.queries_per_sec,
        static_cast<long long>(s.plans), i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace cote

int main(int argc, char** argv) {
  using namespace cote;
  std::string label = "current";
  std::string out = "BENCH_pool.json";
  int reps = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      label = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--label NAME] [--out FILE] [--reps N]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::Section("Session-pool batch throughput (label: " + label + ")");
  std::printf("hardware threads: %u\n\n", std::thread::hardware_concurrency());

  OptimizerOptions options = bench::SerialOptions();
  TimeModel zero_model;  // throughput only; no time conversion needed

  // The batch: the 13-query random workload replicated so every worker
  // count has plenty of queue to drain.
  Workload w = RandomWorkload(13, 42);
  std::vector<const QueryGraph*> batch;
  for (int r = 0; r < reps; ++r) {
    for (const QueryGraph& q : w.queries) batch.push_back(&q);
  }

  std::vector<Sample> samples;
  for (const std::string mode : {"compile", "estimate"}) {
    double wall_at_1 = 0;
    for (int workers : {1, 2, 4, 8}) {
      SessionPool pool(workers, options);
      Sample s;
      s.mode = mode;
      s.workers = workers;
      s.batch = batch.size();
      if (mode == "compile") {
        pool.CompileBatch(batch);  // warm every session's arenas
        BatchOptimizeResult r = pool.CompileBatch(batch);
        for (const auto& item : r.results) {
          if (!item.ok()) {
            std::fprintf(stderr, "compile failed: %s\n",
                         item.status().ToString().c_str());
            return 1;
          }
        }
        s.wall_seconds = r.stats.wall_seconds;
        s.busy_seconds = r.stats.busy_seconds;
        s.speedup = r.stats.Speedup();
        s.plans = r.stats.merged.plans_compiled;
      } else {
        pool.EstimateBatch(batch, zero_model);
        BatchEstimateResult r = pool.EstimateBatch(batch, zero_model);
        s.wall_seconds = r.stats.wall_seconds;
        s.busy_seconds = r.stats.busy_seconds;
        s.speedup = r.stats.Speedup();
        s.plans = r.stats.merged.estimates_run;
      }
      if (workers == 1) wall_at_1 = s.wall_seconds;
      s.scaling_vs_1 =
          s.wall_seconds > 0 ? wall_at_1 / s.wall_seconds : 0;
      s.queries_per_sec =
          s.wall_seconds > 0
              ? static_cast<double>(batch.size()) / s.wall_seconds
              : 0;
      samples.push_back(s);
      std::printf(
          "%-8s N=%d batch=%-4zu wall=%8.4fs busy=%8.4fs "
          "speedup=%5.2fx vs1=%5.2fx %8.1f q/s\n",
          mode.c_str(), workers, batch.size(), s.wall_seconds,
          s.busy_seconds, s.speedup, s.scaling_vs_1, s.queries_per_sec);
    }
  }
  WriteJson(out, label, samples);
  std::printf("\nwrote %s (%zu samples)\n", out.c_str(), samples.size());
  return 0;
}
