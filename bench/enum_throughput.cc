// Enumeration-core throughput bench (BENCH_enum.json).
//
// Measures throughput of the enumeration core in isolation (a null
// visitor) and of its two real consumers — plan-estimate mode (COTE's
// plan counter) and normal-mode optimization — on linear / star / random
// join graphs at n = 8..18 tables, plus a "governed" mode: the estimate
// path with an armed-but-untripped resource budget, whose delta against
// "estimate" is the total cost of cooperative cancellation (charges +
// amortized checkpoints). Emits machine-readable JSON so runs before/after
// an optimizer change can be compared (see EXPERIMENTS.md, "Enumeration
// throughput" and "Budget overhead").
//
// Usage:
//   enum_throughput [--label NAME] [--out FILE] [--max-n N]
//                   [--par-workers N]
//
// --par-workers N > 1 turns on the rank-parallel bottom-up enumerator for
// every session-driven mode (estimate / governed / optimize; "enumerate"
// drives the raw serial core and is unaffected) and adds per-cell
// wall/Σbusy accounting to the JSON so a 1-CPU box is reported honestly:
// there, wall ≈ Σbusy + merge/coordination overhead, and (wall − Σbusy)
// is the merge-overhead bound EXPERIMENTS.md tracks — not a speedup.
//
// The label names the run inside the JSON (e.g. "baseline" for a
// pre-change build, "current" afterwards); BENCH_enum.json in the repo
// root keeps one run per label under "runs".

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "core/estimator.h"
#include "optimizer/enumerator.h"
#include "query/query_builder.h"
#include "session/session.h"

namespace cote {
namespace {

// A single run never repeats a config longer than this; a config whose
// single-shot latency exceeds kSkipSeconds stops the n-sweep for its
// (workload, mode) pair — the skip is reported, not silent. Every
// reported cell runs at least kMinReps reps (single-rep cells were the
// −6%..+10% noise outliers in earlier runs); the one exception is a cell
// whose first rep already exceeds kSkipSeconds — it ends its sweep and is
// recorded honestly as reps=1 rather than tripling a multi-second run.
constexpr double kTargetSeconds = 0.25;
constexpr double kSkipSeconds = 5.0;
constexpr int kMinReps = 3;
constexpr int kMaxReps = 40;

const char* kJoinCols[] = {"c0", "c1", "c2", "c3", "c4"};

// Pure-enumeration visitor: no plan or counting work, and a constant
// cardinality large enough that the cartesian-when-card-one heuristic
// never fires. "enumerate" mode drives this to isolate the enumeration
// core (existence checks, split iteration, predicate lookup) from the
// per-join visitor cost the other two modes include.
class NullVisitor : public JoinVisitor {
 public:
  void InitializeEntry(TableSet) override {}
  double EntryCardinality(TableSet) override { return 1e18; }
  void OnJoin(TableSet, TableSet, const std::vector<int>&, bool) override {}
};

QueryGraph MakeQuery(const Catalog& catalog, const std::string& shape,
                     int n) {
  QueryBuilder qb(catalog);
  for (int t = 0; t < n; ++t) {
    qb.AddTable(StrFormat("T%d", t), StrFormat("t%d", t));
  }
  auto edge = [&](int a, int b, int e) {
    qb.Join(StrFormat("t%d", a), kJoinCols[e % 5], StrFormat("t%d", b),
            kJoinCols[e % 5]);
  };
  if (shape == "linear") {
    for (int t = 0; t + 1 < n; ++t) edge(t, t + 1, t);
  } else if (shape == "star") {
    for (int t = 1; t < n; ++t) edge(0, t, t - 1);
  } else {  // random: spanning tree + n/3 extra chords, seeded per n
    Rng rng(0x5eedULL + static_cast<uint64_t>(n));
    std::vector<std::pair<int, int>> edges;
    for (int t = 1; t < n; ++t) {
      edges.emplace_back(
          static_cast<int>(rng.Uniform(static_cast<uint64_t>(t))), t);
    }
    for (int extra = 0; extra < n / 3; ++extra) {
      int a = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
      int b = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
      if (a == b) continue;
      auto e = std::minmax(a, b);
      if (std::find(edges.begin(), edges.end(),
                    std::make_pair(e.first, e.second)) != edges.end()) {
        continue;
      }
      edges.emplace_back(e.first, e.second);
    }
    for (size_t i = 0; i < edges.size(); ++i) {
      edge(edges[i].first, edges[i].second, static_cast<int>(i));
    }
  }
  // A little property pressure so plan counting / generation is realistic.
  qb.OrderBy({{"t0", "c5"}});
  qb.GroupBy({{"t1", "c6"}});
  auto g = qb.Build();
  if (!g.ok()) {
    std::fprintf(stderr, "query build failed (%s, n=%d): %s\n",
                 shape.c_str(), n, g.status().ToString().c_str());
    std::abort();
  }
  return std::move(g).value();
}

struct Sample {
  std::string workload;
  std::string mode;  // "enumerate" | "estimate" | "governed" | "optimize"
  int n = 0;
  int reps = 0;
  double queries_per_sec = 0;
  double joins_per_sec = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  int64_t joins_ordered = 0;
  int64_t entries = 0;
  // Wall clock summed over all reps, and the in-rank worker busy time
  // summed over all reps and workers (0 when the cell ran serially).
  // On a 1-CPU box wall ≈ busy + merge/coordination, so busy/wall there
  // bounds merge overhead, not speedup — see the BENCH_pool.json note.
  double wall_seconds = 0;
  double busy_seconds = 0;
};

/// What one timed rep hands back to Measure().
struct RunResult {
  EnumerationStats stats;
  double busy_seconds = 0;
};

double Percentile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(q * static_cast<double>(v.size() - 1));
  return v[idx];
}

/// Times `body` (which returns the joins_ordered/entries of one run)
/// adaptively: one probe run sizes the repeat count toward kTargetSeconds.
template <typename Body>
Sample Measure(const std::string& workload, const std::string& mode, int n,
               Body&& body) {
  Sample s;
  s.workload = workload;
  s.mode = mode;
  s.n = n;

  StopWatch probe;
  RunResult first_run = body();
  double first = probe.ElapsedSeconds();
  const EnumerationStats& stats = first_run.stats;
  s.joins_ordered = stats.joins_ordered;
  s.entries = stats.entries_created;

  int reps = kMinReps;
  if (first < kTargetSeconds) {
    reps = std::min(kMaxReps,
                    1 + static_cast<int>(kTargetSeconds / std::max(first, 1e-7)));
    reps = std::max(reps, kMinReps);
  } else if (first > kSkipSeconds) {
    reps = 1;  // this cell ends its sweep; record the single rep honestly
  }
  std::vector<double> lat;
  lat.push_back(first);
  double total = first;
  double busy = first_run.busy_seconds;
  for (int i = 1; i < reps; ++i) {
    StopWatch t;
    RunResult r = body();
    double sec = t.ElapsedSeconds();
    lat.push_back(sec);
    total += sec;
    busy += r.busy_seconds;
  }
  s.reps = reps;
  s.queries_per_sec = static_cast<double>(reps) / total;
  s.joins_per_sec =
      static_cast<double>(stats.joins_ordered) * static_cast<double>(reps) /
      total;
  s.p50_ms = Percentile(lat, 0.5) * 1e3;
  s.p95_ms = Percentile(lat, 0.95) * 1e3;
  s.wall_seconds = total;
  s.busy_seconds = busy;
  return s;
}

void WriteJson(const std::string& path, const std::string& label,
               int par_workers, const std::vector<Sample>& samples) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::abort();
  }
  std::fprintf(f,
               "{\n  \"label\": \"%s\",\n  \"hardware_threads\": %u,\n"
               "  \"par_workers\": %d,\n  \"results\": [\n",
               label.c_str(), std::thread::hardware_concurrency(),
               par_workers);
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"mode\": \"%s\", \"n\": %d, "
        "\"reps\": %d, \"queries_per_sec\": %.3f, \"joins_per_sec\": %.1f, "
        "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"joins_ordered\": %lld, "
        "\"entries\": %lld, \"wall_seconds\": %.6f, "
        "\"busy_seconds\": %.6f}%s\n",
        s.workload.c_str(), s.mode.c_str(), s.n, s.reps, s.queries_per_sec,
        s.joins_per_sec, s.p50_ms, s.p95_ms,
        static_cast<long long>(s.joins_ordered),
        static_cast<long long>(s.entries), s.wall_seconds, s.busy_seconds,
        i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace
}  // namespace cote

int main(int argc, char** argv) {
  using namespace cote;
  std::string label = "current";
  std::string out = "BENCH_enum.json";
  int max_n = 18;
  int par_workers = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      label = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--max-n") == 0 && i + 1 < argc) {
      max_n = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--par-workers") == 0 && i + 1 < argc) {
      par_workers = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--label NAME] [--out FILE] [--max-n N] "
                   "[--par-workers N]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::Section("Enumeration-core throughput (label: " + label +
                 ", par_workers: " + std::to_string(par_workers) + ")");
  OptimizerOptions options = bench::SerialOptions();
  options.parallel_workers = par_workers;
  TimeModel zero_model;  // throughput only; no time conversion needed
  CompileTimeEstimator estimator(zero_model, options);
  Optimizer optimizer(options);
  // "governed": identical estimate pipeline, but with a budget armed at
  // limits no bench query can reach — every per-entry/per-plan charge and
  // every amortized checkpoint (incl. deadline sampling) runs, none trips.
  // estimate vs governed medians = the governance overhead EXPERIMENTS.md
  // tracks (<2% acceptance bar).
  CompilationSession governed_session(options);
  ResourceLimits generous;
  generous.deadline_seconds = 3600.0;
  generous.max_memo_entries = int64_t{1} << 50;
  generous.max_plans = int64_t{1} << 50;

  std::vector<Sample> samples;
  for (const std::string workload : {"linear", "star", "random"}) {
    for (const std::string mode :
         {"enumerate", "estimate", "governed", "optimize"}) {
      bool skipped = false;
      for (int n = 8; n <= max_n; ++n) {
        if (skipped) break;
        auto catalog = MakeSyntheticCatalog(n);
        QueryGraph q = MakeQuery(*catalog, workload, n);
        Sample s = Measure(workload, mode, n, [&]() -> RunResult {
          if (mode == "enumerate") {
            NullVisitor null_visitor;
            return {RunEnumeration(q, options.enumeration, &null_visitor), 0};
          }
          if (mode == "estimate") {
            CompileTimeEstimate est = estimator.Estimate(q);
            return {est.enumeration, est.enumeration_busy_seconds};
          }
          if (mode == "governed") {
            CompileTimeEstimate est =
                governed_session.Estimate(q, zero_model, generous);
            return {est.enumeration, est.enumeration_busy_seconds};
          }
          OptimizeResult r = bench::MustOptimize(optimizer, q, workload);
          return {r.stats.enumeration, r.stats.enumeration_busy_seconds};
        });
        samples.push_back(s);
        std::printf(
            "%-7s %-9s n=%-3d reps=%-3d %10.2f q/s %14.0f joins/s "
            "p50=%9.3fms p95=%9.3fms\n",
            workload.c_str(), mode.c_str(), n, s.reps, s.queries_per_sec,
            s.joins_per_sec, s.p50_ms, s.p95_ms);
        if (s.p50_ms / 1e3 > kSkipSeconds) {
          std::printf("%-7s %-9s n>%-3d skipped (single run > %.0fs)\n",
                      workload.c_str(), mode.c_str(), n, kSkipSeconds);
          skipped = true;
        }
      }
    }
  }
  WriteJson(out, label, par_workers, samples);
  std::printf("\nwrote %s (%zu samples)\n", out.c_str(), samples.size());
  return 0;
}
