// §5.3 — "Had we estimated compilation time using the number of joins
// only, we would have had errors of 20 times larger, no matter how we
// chose the time per join, because such a metric cannot distinguish
// queries within the same batch."
//
// This bench compares the COTE against the Ono-Lohman join-count baseline
// on the star workload, whose batches share a join graph but differ in
// physical properties. The baseline's time-per-join is fit by least
// squares on the same data (the most charitable choice).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/join_count_baseline.h"

using namespace cote;         // NOLINT — bench driver
using namespace cote::bench;  // NOLINT

int main() {
  Section("Join-count baseline (Ono-Lohman) vs plan-count COTE — star_s");

  TimeModel model = CalibrateTimeModel(SerialOptions());
  Workload w = StarWorkload();
  Optimizer opt(SerialOptions());
  CompileTimeEstimator cote(model, SerialOptions());

  // Gather actual times and join counts.
  std::vector<double> actual(w.size());
  std::vector<int64_t> joins(w.size());
  std::vector<double> cote_est(w.size());
  for (int i = 0; i < w.size(); ++i) {
    actual[i] = MedianCompileSeconds(opt, w.queries[i]);
    CompileTimeEstimate est = cote.Estimate(w.queries[i]);
    joins[i] = est.enumeration.joins_unordered;
    cote_est[i] = est.estimated_seconds;
  }

  // Best possible time-per-join for the baseline (least squares through
  // the origin): c = Σ(j·t) / Σ(j²).
  double num = 0, den = 0;
  for (int i = 0; i < w.size(); ++i) {
    num += static_cast<double>(joins[i]) * actual[i];
    den += static_cast<double>(joins[i]) * static_cast<double>(joins[i]);
  }
  double per_join = num / den;

  std::printf("\nbest-fit time per join: %.3e s\n", per_join);
  std::printf("\n%-9s %8s %12s %14s %8s %14s %8s\n", "query", "joins",
              "actual(s)", "baseline(s)", "err", "COTE(s)", "err");
  double base_err = 0, cote_err = 0;
  for (int i = 0; i < w.size(); ++i) {
    double base = JoinCountBaseline::EstimateSeconds(joins[i], per_join);
    double be = RelError(base, actual[i]);
    double ce = RelError(cote_est[i], actual[i]);
    base_err += be;
    cote_err += ce;
    std::printf("%-9s %8lld %12.4f %14.4f %7.1f%% %14.4f %7.1f%%\n",
                w.labels[i].c_str(), static_cast<long long>(joins[i]),
                actual[i], base, 100 * be, cote_est[i], 100 * ce);
  }
  base_err /= w.size();
  cote_err /= w.size();
  std::printf(
      "\navg error: baseline %.1f%%  COTE %.1f%%  ->  baseline/COTE error "
      "ratio %.1fx (paper: ~20x)\n",
      100 * base_err, 100 * cote_err, base_err / cote_err);

  // Within-batch spread: identical join counts, very different times.
  Section("Within-batch spread (same joins, different compile times)");
  for (int b = 0; b < 3; ++b) {
    double lo = 1e18, hi = 0;
    for (int k = 0; k < 5; ++k) {
      lo = std::min(lo, actual[b * 5 + k]);
      hi = std::max(hi, actual[b * 5 + k]);
    }
    std::printf(
        "batch %d (%d tables): joins fixed at %lld, compile time varies "
        "%.4f - %.4f s (%.1fx)\n",
        b + 1, 6 + 2 * b, static_cast<long long>(joins[b * 5]), lo, hi,
        hi / lo);
  }
  return 0;
}
