// Ablation (§4 item 4) — propagating interesting property values only on
// the FIRST join that reaches a MEMO entry, vs on every join.
//
// DB2's observation: joins into the same entry propagate nearly identical
// order sets, so the first join suffices and "cuts down our estimation
// overhead without losing too much precision on plan counts".

#include <cstdio>

#include "bench/bench_util.h"

using namespace cote;         // NOLINT — bench driver
using namespace cote::bench;  // NOLINT

namespace {

void RunOne(const std::string& title, const Workload& w) {
  Section(title);
  OptimizerOptions options = SerialOptions();
  Optimizer opt(options);

  PlanCounterOptions first_only;
  PlanCounterOptions every;
  every.first_join_propagation_only = false;
  TimeModel unused;
  CompileTimeEstimator cote_first(unused, options, first_only);
  CompileTimeEstimator cote_every(unused, options, every);

  std::printf("\n%-12s %16s %16s %10s\n", "query", "plans(first-join)",
              "plans(every-join)", "delta");
  double t_first = 0, t_every = 0, max_delta = 0;
  for (int i = 0; i < w.size(); ++i) {
    double bf = 1e18, be = 1e18;
    CompileTimeEstimate ef, ee;
    for (int rep = 0; rep < 3; ++rep) {
      ef = cote_first.Estimate(w.queries[i]);
      ee = cote_every.Estimate(w.queries[i]);
      bf = std::min(bf, ef.estimation_seconds);
      be = std::min(be, ee.estimation_seconds);
    }
    t_first += bf;
    t_every += be;
    double delta = RelError(static_cast<double>(ef.plan_estimates.total()),
                            static_cast<double>(ee.plan_estimates.total()));
    max_delta = std::max(max_delta, delta);
    std::printf("%-12s %16lld %16lld %9.1f%%\n", w.labels[i].c_str(),
                static_cast<long long>(ef.plan_estimates.total()),
                static_cast<long long>(ee.plan_estimates.total()),
                100 * delta);
  }
  std::printf(
      "\nestimation time: first-join %.4fs, every-join %.4fs (%.2fx "
      "speedup); max count delta %.1f%%\n",
      t_first, t_every, t_every / t_first, 100 * max_delta);
}

}  // namespace

int main() {
  RunOne("Ablation: first-join-only property propagation — star_s",
         StarWorkload());
  RunOne("Ablation: first-join-only property propagation — random_s",
         RandomWorkload());
  return 0;
}
