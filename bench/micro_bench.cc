// Google-benchmark micro-benchmarks for the hot components: enumeration,
// plan-estimate mode, full optimization, cardinality estimation.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/join_count_baseline.h"
#include "session/compilation_context.h"

namespace cote {
namespace {

const Workload& Star() {
  static const Workload* w = new Workload(StarWorkload());
  return *w;
}

void BM_EnumerateOnly(benchmark::State& state) {
  const QueryGraph& q = Star().queries[static_cast<size_t>(state.range(0))];
  EnumeratorOptions opt;
  opt.max_composite_inner = 2;
  for (auto _ : state) {
    EnumerationStats stats = JoinCountBaseline::CountJoins(q, opt);
    benchmark::DoNotOptimize(stats.joins_ordered);
  }
}
BENCHMARK(BM_EnumerateOnly)->Arg(0)->Arg(5)->Arg(10);

void BM_Estimate(benchmark::State& state) {
  const QueryGraph& q = Star().queries[static_cast<size_t>(state.range(0))];
  TimeModel model;
  CompileTimeEstimator cote(model, bench::SerialOptions());
  for (auto _ : state) {
    CompileTimeEstimate est = cote.Estimate(q);
    benchmark::DoNotOptimize(est.plan_estimates.counts[0]);
  }
}
BENCHMARK(BM_Estimate)->Arg(0)->Arg(5)->Arg(10);

void BM_FullOptimize(benchmark::State& state) {
  const QueryGraph& q = Star().queries[static_cast<size_t>(state.range(0))];
  Optimizer opt(bench::SerialOptions());
  for (auto _ : state) {
    auto r = opt.Optimize(q);
    benchmark::DoNotOptimize(r->stats.best_cost);
  }
}
BENCHMARK(BM_FullOptimize)->Arg(0)->Arg(5)->Arg(10);

void BM_CardinalityModel(benchmark::State& state) {
  const QueryGraph& q = Star().queries[10];
  CompilationContext ctx{bench::SerialOptions()};
  for (auto _ : state) {
    // Invalidate between iterations so each one measures a cold model
    // build (the session's warm reuse would otherwise hide the cost
    // being benchmarked).
    ctx.Invalidate();
    ctx.Reset(q);
    double rows = ctx.refined_cardinality().JoinRows(q.AllTables());
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_CardinalityModel);

}  // namespace
}  // namespace cote

BENCHMARK_MAIN();
