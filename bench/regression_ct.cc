// §3.5/§4 — the regressed per-plan-type coefficients Ct.
//
// The paper reports Cm : Cn : Ch = 5 : 2 : 4 for serial DB2 and 6 : 1 : 2
// for the parallel version (plan generation being costlier in parallel).
// This bench fits both models on the training workload, prints the ratios,
// and validates the fit quality on held-out workloads.

#include <cstdio>

#include "bench/bench_util.h"

using namespace cote;         // NOLINT — bench driver
using namespace cote::bench;  // NOLINT

namespace {

void Validate(const std::string& name, const Workload& w,
              const OptimizerOptions& options, const TimeModel& model) {
  Optimizer opt(options);
  double sum_err = 0;
  for (int i = 0; i < w.size(); ++i) {
    OptimizeResult r = MustOptimize(opt, w.queries[i], w.labels[i]);
    double actual = MedianCompileSeconds(opt, w.queries[i]);
    double est = model.EstimateSeconds(r.stats.join_plans_generated);
    sum_err += RelError(est, actual);
  }
  std::printf("  fit check on %-8s (actual plan counts -> time): avg err "
              "%.1f%%\n",
              name.c_str(), 100 * sum_err / w.size());
}

}  // namespace

int main() {
  Section("Regressed time-model coefficients Ct (paper §3.5, §4)");

  TimeModel serial = CalibrateTimeModel(SerialOptions());
  TimeModel parallel = CalibrateTimeModel(ParallelOptions());

  std::printf("\n%-10s %14s %14s %14s %12s\n", "", "Cm (MGJN)", "Cn (NLJN)",
              "Ch (HSJN)", "intercept");
  std::printf("%-10s %14.3e %14.3e %14.3e %12.3e\n", "serial",
              serial.ct[static_cast<int>(JoinMethod::kMgjn)],
              serial.ct[static_cast<int>(JoinMethod::kNljn)],
              serial.ct[static_cast<int>(JoinMethod::kHsjn)],
              serial.intercept);
  std::printf("%-10s %14.3e %14.3e %14.3e %12.3e\n", "parallel",
              parallel.ct[static_cast<int>(JoinMethod::kMgjn)],
              parallel.ct[static_cast<int>(JoinMethod::kNljn)],
              parallel.ct[static_cast<int>(JoinMethod::kHsjn)],
              parallel.intercept);

  std::printf("\nratios Cm:Cn:Ch  serial   = %s   (paper DB2: 5 : 2 : 4)\n",
              serial.RatioString().c_str());
  std::printf("ratios Cm:Cn:Ch  parallel = %s   (paper DB2: 6 : 1 : 2)\n",
              parallel.RatioString().c_str());

  std::printf("\nfit quality (using ACTUAL plan counts, isolating the time "
              "model itself):\n");
  Validate("linear_s", LinearWorkload(), SerialOptions(), serial);
  Validate("star_s", StarWorkload(), SerialOptions(), serial);
  Validate("tpch_p", TpchWorkload(), ParallelOptions(), parallel);
  return 0;
}
