// Ablation (Table 1, "pipelinable") — the effect of first-rows queries on
// the MEMO and on plan choice.
//
// Adding FETCH FIRST n ROWS ONLY makes the pipelinable property
// interesting: plan *generation* is unchanged (the COTE needs no extra
// work), but the MEMO keeps more plans (pipelinable variants survive
// pruning) and the final plan flips from the full-result optimum to a
// streaming plan chosen on early-termination-discounted cost.

#include <cstdio>

#include "bench/bench_util.h"
#include "parser/binder.h"

using namespace cote;         // NOLINT — bench driver
using namespace cote::bench;  // NOLINT

int main() {
  Section("Pipelinable property ablation — TPC-H join cores, +/- FETCH FIRST");

  auto catalog = MakeTpchCatalog();
  const char* kQueries[] = {
      "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey "
      "ORDER BY o.o_orderkey",
      "SELECT * FROM customer c, orders o, lineitem l "
      "WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey "
      "ORDER BY c.c_custkey",
      "SELECT * FROM supplier s, lineitem l, orders o "
      "WHERE s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey",
      "SELECT * FROM part p, partsupp ps, supplier s "
      "WHERE p.p_partkey = ps.ps_partkey AND s.s_suppkey = ps.ps_suppkey "
      "ORDER BY p.p_partkey",
  };

  Optimizer opt(SerialOptions());
  std::printf("\n%-6s %18s %18s %14s %16s\n", "query",
              "gen plans (full/topn)", "stored (full/topn)",
              "topn pipelined", "cost full/topn");
  int q = 0;
  for (const char* sql : kQueries) {
    auto full = Binder::BindSql(*catalog, sql);
    auto topn = Binder::BindSql(*catalog,
                                std::string(sql) + " FETCH FIRST 10 ROWS ONLY");
    if (!full.ok() || !topn.ok()) {
      std::fprintf(stderr, "bind failed\n");
      return 1;
    }
    OptimizeResult rf = MustOptimize(opt, *full, "full");
    OptimizeResult rt = MustOptimize(opt, *topn, "topn");
    std::printf("Q%-5d %9lld/%-9lld %9lld/%-9lld %14s %10.0f/%-8.0f\n", ++q,
                static_cast<long long>(rf.stats.join_plans_generated.total()),
                static_cast<long long>(rt.stats.join_plans_generated.total()),
                static_cast<long long>(rf.stats.plans_stored),
                static_cast<long long>(rt.stats.plans_stored),
                rt.best_plan->pipelinable ? "yes" : "no",
                rf.stats.best_cost, rt.stats.best_cost);
  }
  std::printf(
      "\ngenerated counts identical (plan generation is property-blind; the"
      " COTE needs no change);\nstored plans grow (extra Pareto dimension);"
      " FETCH FIRST picks streaming plans.\n");
  return 0;
}
