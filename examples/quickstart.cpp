// Quickstart: parse a SQL query, optimize it, and estimate its compilation
// time with the COTE — the 60-second tour of the library.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart

#include <cstdio>

#include "core/regression.h"
#include "parser/binder.h"
#include "session/session.h"
#include "workload/workload.h"

using namespace cote;  // NOLINT — example code

int main() {
  // 1. A catalog. MakeTpchCatalog() ships the TPC-H schema; you would
  // normally build your own with TableBuilder.
  std::shared_ptr<Catalog> catalog = MakeTpchCatalog();

  // 2. Parse + bind a query into a QueryGraph.
  const char* sql = R"(
      SELECT n.n_name, SUM(l.l_extendedprice)
      FROM customer c, orders o, lineitem l, supplier s, nation n, region r
      WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
        AND l.l_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey
        AND c.c_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
        AND r.r_name = 'ASIA'
      GROUP BY n.n_name ORDER BY n.n_name)";
  auto graph = Binder::BindSql(*catalog, sql);
  if (!graph.ok()) {
    std::fprintf(stderr, "bind failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("query graph:\n%s\n\n", graph->ToString().c_str());

  // 3. Optimize at the high (dynamic programming) level. One
  // CompilationSession serves both compilation modes (optimize and
  // estimate) and keeps its models warm across every call below.
  OptimizerOptions options;
  options.enumeration.max_composite_inner = 3;
  CompilationSession session(options);
  auto result = session.Optimize(*graph);
  if (!result.ok()) {
    std::fprintf(stderr, "optimize failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const OptimizeStats& st = result->stats;
  std::printf("best plan (cost %.1f):\n%s\n", st.best_cost,
              PrintPlan(result->best_plan).c_str());
  std::printf(
      "joins enumerated: %lld   plans generated: NLJN=%lld MGJN=%lld "
      "HSJN=%lld   stored: %lld\n",
      static_cast<long long>(st.enumeration.joins_unordered),
      static_cast<long long>(st.join_plans_generated.nljn()),
      static_cast<long long>(st.join_plans_generated.mgjn()),
      static_cast<long long>(st.join_plans_generated.hsjn()),
      static_cast<long long>(st.plans_stored));
  std::printf("compilation took %.3f ms\n\n", st.total_seconds * 1e3);

  // 4. Calibrate a time model on a training workload (once per release),
  // then estimate this query's compilation time WITHOUT optimizing it.
  Workload training = TrainingWorkload();
  TimeModelCalibrator calibrator;
  for (const QueryGraph& q : training.queries) {
    auto r = session.Optimize(q);
    if (r.ok()) calibrator.AddObservation(r->stats);
  }
  auto model = calibrator.Fit();
  if (!model.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("time model Cm:Cn:Ch = %s\n", model->RatioString().c_str());

  CompileTimeEstimate est = session.Estimate(*graph, *model);
  std::printf(
      "COTE: estimated plans NLJN=%lld MGJN=%lld HSJN=%lld\n"
      "      estimated compile time %.3f ms (actual was %.3f ms)\n"
      "      estimation overhead %.3f ms (%.1f%% of actual)\n",
      static_cast<long long>(est.plan_estimates.nljn()),
      static_cast<long long>(est.plan_estimates.mgjn()),
      static_cast<long long>(est.plan_estimates.hsjn()),
      est.estimated_seconds * 1e3, st.total_seconds * 1e3,
      est.estimation_seconds * 1e3,
      100.0 * est.estimation_seconds / st.total_seconds);

  // 5. The session kept score: every compile and estimate above went
  // through its staged pipeline.
  const CompilationStats& cs = session.stats();
  std::printf(
      "\nsession: %lld compiles, %lld estimates, %lld rebinds, %lld warm\n"
      "last run stages (ms): bind %.3f  enumerate %.3f  complete %.3f  "
      "finalize %.3f\n",
      static_cast<long long>(cs.plans_compiled),
      static_cast<long long>(cs.estimates_run),
      static_cast<long long>(cs.context_rebinds),
      static_cast<long long>(cs.warm_resets), cs.last_stages.bind * 1e3,
      cs.last_stages.enumerate * 1e3, cs.last_stages.complete * 1e3,
      cs.last_stages.finalize * 1e3);
  return 0;
}
