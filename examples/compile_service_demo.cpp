// Compile-service demo: estimate-first admission in a server front-end.
//
// Builds a CompileService over a mixed workload and replays one seeded
// open-loop arrival stream twice — FIFO, then shortest-estimated-first —
// in the deterministic kEstimate mode (the simulated timeline uses the
// admission-time predictions, so both runs replay bit-identically and
// the only difference is who waits). Prints the per-policy queue
// latency, then shows the estimate-gated statement cache and the
// trip-rate feedback loop widening under-derived budgets.
//
// Run: ./build/examples/compile_service_demo

#include <cstdio>

#include "core/regression.h"
#include "service/compile_service.h"
#include "session/session.h"
#include "workload/workload.h"

using namespace cote;  // NOLINT — example code

namespace {

// One calibrated time model (per release, per machine — the paper's §3.5).
TimeModel Calibrate(const OptimizerOptions& options) {
  Workload training = TrainingWorkload();
  CompilationSession session{options};
  TimeModelCalibrator calibrator;
  for (const QueryGraph& q : training.queries) {
    auto r = session.Optimize(q);
    if (r.ok()) calibrator.AddObservation(r->stats);
  }
  auto model = calibrator.Fit();
  if (!model.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 model.status().ToString().c_str());
    std::abort();
  }
  return *model;
}

}  // namespace

int main() {
  OptimizerOptions options;
  const TimeModel model = Calibrate(options);

  // Mixed pool: chains and stars up to 8 tables — predicted compile cost
  // spans about two orders of magnitude, the spread SJF exploits.
  Workload linear = LinearWorkload();
  Workload star = StarWorkload();
  std::vector<const QueryGraph*> pool;
  for (const Workload* w : {&linear, &star}) {
    for (const QueryGraph& q : w->queries) {
      if (q.num_tables() <= 8) pool.push_back(&q);
    }
  }

  ArrivalTraceOptions trace_options;
  trace_options.num_arrivals = 40;
  trace_options.mean_gap_seconds = 0.001;  // overload: a queue builds
  trace_options.seed = 7;
  const std::vector<Submission> trace = MakeOpenLoopTrace(pool, trace_options);

  std::printf("replaying %d arrivals over %zu queries, one server\n\n",
              trace_options.num_arrivals, pool.size());
  std::printf("%-6s %10s %14s %14s %10s %6s\n", "policy", "q/s",
              "mean queue(s)", "p95 queue(s)", "estimates", "hits");
  for (SchedulingPolicy policy :
       {SchedulingPolicy::kFifo, SchedulingPolicy::kShortestEstimatedFirst}) {
    CompileServiceOptions o;
    o.optimizer = options;
    o.time_model = model;
    o.policy = policy;
    // kEstimate: the simulated timeline runs on the admission predictions,
    // so the comparison is deterministic and machine-independent.
    o.time_source = ServiceTimeSource::kEstimate;
    CompileService service(o);
    ServiceReport r = service.Run(trace);
    std::printf("%-6s %10.1f %14.4f %14.4f %10lld %6lld\n",
                SchedulingPolicyName(policy), r.QueriesPerSecond(),
                r.MeanQueueSeconds(), r.P95QueueSeconds(),
                static_cast<long long>(r.estimates),
                static_cast<long long>(r.cache_hits));
  }

  // Estimate-gated caching: with a threshold, only statements predicted
  // expensive enough to be worth a slot are admitted — cheap statements
  // are cheap to recompile and would only evict the entries that pay.
  {
    CompileServiceOptions o;
    o.optimizer = options;
    o.time_model = model;
    o.time_source = ServiceTimeSource::kEstimate;
    o.cache_admission_threshold_seconds = 0.02;
    CompileService service(o);
    ServiceReport r = service.Run(trace);
    CacheStats cs = r.cache_stats;
    std::printf(
        "\ncache gate at 20ms predicted: %lld inserted, %lld rejected, "
        "%lld hits (hit rate %.0f%%)\n",
        static_cast<long long>(cs.insertions),
        static_cast<long long>(cs.admission_rejections),
        static_cast<long long>(cs.hits), 100 * cs.HitRate());
  }

  // Trip-rate feedback: derive budgets with far too little headroom and
  // watch the per-class tracker widen them until compiles stop tripping.
  {
    const QueryGraph& q = star.queries[7];  // 8-table star
    std::vector<Submission> repeats(8);
    for (size_t i = 0; i < repeats.size(); ++i) {
      repeats[i].query = &q;
      repeats[i].arrival_seconds = static_cast<double>(i);
    }
    CompileServiceOptions o;
    o.optimizer = options;
    o.time_model = model;
    o.time_source = ServiceTimeSource::kEstimate;
    o.enable_cache = false;  // keep every repeat on the estimate+limits path
    o.admission.limits_policy.headroom = 0.5;  // deliberately under-derived
    o.trip_tracker.min_samples = 2;
    CompileService service(o);
    ServiceReport r = service.Run(repeats);
    std::printf("\ntrip feedback on an under-budgeted class: %lld/%zu "
                "degraded before widening\n",
                static_cast<long long>(r.degraded), repeats.size());
    for (const auto& fb : r.class_feedback) {
      std::printf("  class %d: %lld tripped of %lld armed, headroom x%.0f\n",
                  fb.query_class, static_cast<long long>(fb.tripped),
                  static_cast<long long>(fb.armed), fb.multiplier);
    }
    std::printf("  last compile degraded: %s\n",
                r.records.back().degraded ? "yes" : "no");
  }
  return 0;
}
