// Workload-analysis progress forecasting (the paper's §1.1, third use).
//
// Tools like index/materialized-view advisors compile — but never execute
// — every query of a workload, potentially for hours. With a COTE the tool
// can forecast its total runtime UP FRONT and display a meaningful
// progress bar while it runs. This example plays the advisor: it estimates
// the whole workload first, then compiles query by query, reporting
// predicted vs. actual progress.
//
// Run: ./build/examples/workload_advisor

#include <cstdio>

#include "core/regression.h"
#include "session/session.h"
#include "workload/workload.h"

using namespace cote;  // NOLINT — example code

int main() {
  OptimizerOptions options;
  options.enumeration.max_composite_inner = 3;

  // One session carries the whole advisor run: the calibration compiles,
  // the cheap forecasting pass, and the real tuning compiles all reuse its
  // warm models and arenas.
  CompilationSession session(options);

  // Calibrate (once per installation).
  Workload training = TrainingWorkload();
  TimeModelCalibrator calibrator;
  for (const QueryGraph& q : training.queries) {
    auto r = session.Optimize(q);
    if (r.ok()) calibrator.AddObservation(r->stats);
  }
  auto model = calibrator.Fit();
  if (!model.ok()) {
    std::fprintf(stderr, "calibration failed\n");
    return 1;
  }
  // Phase 1 — forecast: estimate every query cheaply, before real work.
  Workload w = Real2Workload();
  std::vector<double> per_query(w.size());
  double forecast_total = 0, forecast_cost = 0;
  for (int i = 0; i < w.size(); ++i) {
    CompileTimeEstimate est = session.Estimate(w.queries[i], *model);
    per_query[i] = est.estimated_seconds;
    forecast_total += est.estimated_seconds;
    forecast_cost += est.estimation_seconds;
  }
  std::printf(
      "advisor will compile %d queries; forecast total %.2fs (forecast "
      "itself took %.3fs, %.1f%%)\n\n",
      w.size(), forecast_total, forecast_cost,
      100 * forecast_cost / forecast_total);

  // Phase 2 — the actual tuning run, with a live progress readout.
  std::printf("%-8s %12s %14s %16s\n", "query", "actual (s)",
              "progress pred", "progress actual");
  // The actual total is unknown until the end — which is exactly why the
  // tool reports progress against the forecast.
  double done_pred = 0, done_actual = 0;
  for (int i = 0; i < w.size(); ++i) {
    auto r = session.Optimize(w.queries[i]);
    if (!r.ok()) {
      std::fprintf(stderr, "compile failed\n");
      return 1;
    }
    done_pred += per_query[i];
    done_actual += r->stats.total_seconds;
    std::printf("%-8s %12.4f %13.1f%% %15.1f%%\n", w.labels[i].c_str(),
                r->stats.total_seconds, 100 * done_pred / forecast_total,
                100 * done_actual / forecast_total);
  }
  std::printf(
      "\nforecast %.2fs vs actual %.2fs (error %.1f%%) — the progress bar "
      "never needed the actual total\n",
      forecast_total, done_actual,
      100 * std::abs(forecast_total - done_actual) / done_actual);
  return 0;
}
