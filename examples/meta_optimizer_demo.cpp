// Meta-optimizer demo (the paper's Figure 1).
//
// For each query: compile at the cheap greedy level, estimate the
// high-level compilation time with the COTE, and reoptimize at the high
// level only when the query would still be executing (on the greedy plan)
// by the time high-level optimization finished. Prints each decision and
// the end-to-end win.
//
// Run: ./build/examples/meta_optimizer_demo

#include <cstdio>

#include "core/meta_optimizer.h"
#include "core/regression.h"
#include "session/session.h"
#include "workload/workload.h"

using namespace cote;  // NOLINT — example code

int main() {
  // Calibrate the compile-time model once (per release, per machine).
  Workload training = TrainingWorkload();
  CompilationSession high{OptimizerOptions()};
  TimeModelCalibrator calibrator;
  for (const QueryGraph& q : training.queries) {
    auto r = high.Optimize(q);
    if (r.ok()) calibrator.AddObservation(r->stats);
  }
  auto model = calibrator.Fit();
  if (!model.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }

  MetaOptimizerOptions options;
  options.time_model = *model;
  MetaOptimizer mop(options);

  // A mixed workload: complex analytical queries (execution-dominated,
  // should reoptimize) and highly selective point-ish queries
  // (compilation-dominated once amplified, should not).
  Workload w = Real1Workload();
  std::printf("%-8s %16s %18s %12s\n", "query", "exec est E (s)",
              "compile est C (s)", "decision");
  int reoptimized = 0;
  for (int i = 0; i < w.size(); ++i) {
    auto r = mop.Compile(w.queries[i]);
    if (!r.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", w.labels[i].c_str(),
                   r.status().ToString().c_str());
      return 1;
    }
    reoptimized += r->reoptimized;
    std::printf("%-8s %16.4f %18.5f %12s\n", w.labels[i].c_str(),
                r->low_exec_seconds, r->est_high_compile_seconds,
                r->reoptimized ? "HIGH level" : "keep greedy");
  }
  std::printf("\nreoptimized %d/%d queries at the high level\n", reoptimized,
              w.size());

  // Show the flip side: with an (artificially) expensive optimizer the
  // MOP declines reoptimization for cheap queries.
  MetaOptimizerOptions costly = options;
  for (double& c : costly.time_model.ct) c *= 2e4;
  MetaOptimizer costly_mop(costly);
  auto r = costly_mop.Compile(w.queries[0]);
  if (r.ok()) {
    std::printf(
        "\nwith a 20000x slower optimizer, %s would %s (C=%.2fs vs "
        "E=%.2fs)\n",
        w.labels[0].c_str(),
        r->reoptimized ? "still reoptimize" : "stay on the greedy plan",
        r->est_high_compile_seconds, r->low_exec_seconds);
  }
  return 0;
}
