// Interactive shell: type SQL against the TPC-H or retail schema; every
// statement is optimized AND estimated, printing the plan, the actual
// compilation time, the COTE's prediction, and its overhead.
//
// Run:    ./build/examples/cote_shell           (interactive)
//         echo "SELECT ..." | ./build/examples/cote_shell
//
// Meta-commands:
//   \catalog tpch|retail    switch schema (default tpch)
//   \parallel on|off        toggle 4-node shared-nothing planning
//   \limit N                composite-inner limit (default 2)
//   \save FILE / \load FILE persist / restore the calibrated time model
//   \quit

#include <cstdio>
#include <iostream>
#include <string>

#include "core/model_io.h"
#include "core/regression.h"
#include "parser/binder.h"
#include "session/session.h"
#include "workload/workload.h"

using namespace cote;  // NOLINT — example code

namespace {

struct ShellState {
  std::shared_ptr<Catalog> catalog = MakeTpchCatalog();
  std::string catalog_name = "tpch";
  bool parallel = false;
  int inner_limit = 2;
  TimeModel serial_model;
  TimeModel parallel_model;

  OptimizerOptions Options() const {
    OptimizerOptions o =
        parallel ? OptimizerOptions::Parallel(4) : OptimizerOptions{};
    o.enumeration.max_composite_inner = inner_limit;
    return o;
  }
  const TimeModel& Model() const {
    return parallel ? parallel_model : serial_model;
  }
};

TimeModel Calibrate(const OptimizerOptions& options) {
  Workload training = TrainingWorkload();
  CompilationSession session(options);
  TimeModelCalibrator cal(/*with_intercept=*/false,
                          /*relative_weighting=*/true);
  for (const QueryGraph& q : training.queries) {
    auto r = session.Optimize(q);
    if (r.ok()) cal.AddObservation(r->stats);
  }
  auto model = cal.Fit();
  return model.ok() ? std::move(model).value() : TimeModel{};
}

bool HandleMeta(ShellState* state, const std::string& line) {
  auto starts = [&](const char* p) { return line.rfind(p, 0) == 0; };
  if (starts("\\catalog")) {
    std::string which = line.size() > 9 ? line.substr(9) : "";
    if (which == "retail") {
      state->catalog = MakeRetailCatalog();
      state->catalog_name = "retail";
    } else if (which == "tpch") {
      state->catalog = MakeTpchCatalog();
      state->catalog_name = "tpch";
    } else {
      std::printf("usage: \\catalog tpch|retail\n");
      return true;
    }
    std::printf("catalog -> %s (%d tables)\n", state->catalog_name.c_str(),
                state->catalog->num_tables());
  } else if (starts("\\parallel")) {
    state->parallel = line.find("on") != std::string::npos;
    std::printf("parallel planning %s\n", state->parallel ? "ON (4 nodes)"
                                                          : "off");
  } else if (starts("\\limit")) {
    int n = std::atoi(line.c_str() + 6);
    if (n >= 1) state->inner_limit = n;
    std::printf("composite-inner limit = %d\n", state->inner_limit);
  } else if (starts("\\save")) {
    std::string path = line.size() > 6 ? line.substr(6) : "cote_model.txt";
    Status s = SaveTimeModel(path, state->Model());
    std::printf("%s\n", s.ok() ? ("saved " + path).c_str()
                               : s.ToString().c_str());
  } else if (starts("\\load")) {
    std::string path = line.size() > 6 ? line.substr(6) : "cote_model.txt";
    auto m = LoadTimeModel(path);
    if (m.ok()) {
      (state->parallel ? state->parallel_model : state->serial_model) = *m;
      std::printf("loaded %s\n", path.c_str());
    } else {
      std::printf("%s\n", m.status().ToString().c_str());
    }
  } else if (starts("\\quit") || starts("\\q")) {
    return false;
  } else {
    std::printf("unknown command: %s\n", line.c_str());
  }
  return true;
}

void RunSql(ShellState* state, const std::string& sql) {
  auto bound = Binder::BindSqlMulti(*state->catalog, sql);
  if (!bound.ok()) {
    std::printf("error: %s\n", bound.status().ToString().c_str());
    return;
  }
  // One session per statement: plan mode for every block, then estimate
  // mode over the same warm context.
  CompilationSession session(state->Options());

  double actual = 0;
  const Plan* main_plan = nullptr;
  std::shared_ptr<Memo> keepalive;
  for (const QueryGraph* block : bound->AllBlocks()) {
    auto r = session.Optimize(*block);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
      return;
    }
    actual += r->stats.total_seconds;
    if (block == &bound->main) {
      main_plan = r->best_plan;
      keepalive = r->memo;
    }
  }

  CompileTimeEstimate est = session.Estimate(*bound, state->Model());

  std::printf("%s", PrintPlan(main_plan).c_str());
  if (bound->num_blocks() > 1) {
    std::printf("(+%d subquery block(s) compiled separately)\n",
                bound->num_blocks() - 1);
  }
  std::printf(
      "compiled in %.3f ms | COTE predicted %.3f ms (err %.0f%%) | "
      "estimation cost %.3f ms (%.1f%% of compile)\n",
      actual * 1e3, est.estimated_seconds * 1e3,
      actual > 0
          ? 100 * std::abs(est.estimated_seconds - actual) / actual
          : 0.0,
      est.estimation_seconds * 1e3,
      actual > 0 ? 100 * est.estimation_seconds / actual : 0.0);
}

}  // namespace

int main() {
  ShellState state;
  std::printf("calibrating time models on the training workload...\n");
  state.serial_model = Calibrate(OptimizerOptions{});
  state.parallel_model = Calibrate(OptimizerOptions::Parallel(4));
  std::printf(
      "cote shell — catalog '%s'; \\catalog, \\parallel, \\limit, \\save, "
      "\\load, \\quit; end SQL with ';'\n",
      state.catalog_name.c_str());

  std::string buffer;
  std::string line;
  while (true) {
    std::printf(buffer.empty() ? "cote> " : "  ...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line[0] == '\\' && buffer.empty()) {
      if (!HandleMeta(&state, line)) break;
      continue;
    }
    buffer += line + "\n";
    if (line.find(';') != std::string::npos) {
      RunSql(&state, buffer);
      buffer.clear();
    }
  }
  return 0;
}
