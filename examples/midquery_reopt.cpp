// Mid-query reoptimization decision support (the paper's §1.1, second use,
// after Kabra & DeWitt).
//
// A query is executing when the runtime discovers that an intermediate
// cardinality was badly misestimated. Reoptimizing might produce a much
// better plan for the remaining work — but reoptimization itself takes
// time. The decision needs exactly what the COTE provides: a quantified
// estimate of recompilation time, compared against the estimated cost of
// finishing on the current (now known-bad) plan.
//
// Run: ./build/examples/midquery_reopt

#include <cstdio>

#include "core/regression.h"
#include "parser/binder.h"
#include "session/session.h"
#include "workload/workload.h"

using namespace cote;  // NOLINT — example code

int main() {
  auto catalog = MakeTpchCatalog();
  OptimizerOptions options;
  CompilationSession session(options);

  // Calibrate the COTE.
  Workload training = TrainingWorkload();
  TimeModelCalibrator calibrator;
  for (const QueryGraph& q : training.queries) {
    auto r = session.Optimize(q);
    if (r.ok()) calibrator.AddObservation(r->stats);
  }
  auto model = calibrator.Fit();
  if (!model.ok()) return 1;
  // The execution-cost pricing uses the session's own cost model — the
  // one the plans below were compiled with.
  const CostModel& cost_model = session.context().cost_model();

  // Checkpoint scenarios: execution pauses, re-costs the REMAINING work of
  // the current plan with the cardinalities observed so far, and decides.
  // Reoptimize only if the recompilation is cheap relative to the
  // potential savings (here: < 10% of the remaining execution time).
  struct Scenario {
    const char* what;
    const char* sql;
    double blowup;  ///< observed/estimated cardinality ratio at checkpoint
  };
  const Scenario scenarios[] = {
      {"point lookup, on track",
       "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey "
       "AND o.o_orderkey = 42",
       1.0},
      {"point lookup, 10x blow-up",
       "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey "
       "AND o.o_orderkey = 42",
       10.0},
      {"5-way analytical, on track",
       "SELECT n.n_name, SUM(l.l_extendedprice) "
       "FROM customer c, orders o, lineitem l, supplier s, nation n "
       "WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey "
       "AND l.l_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey "
       "GROUP BY n.n_name",
       1.0},
      {"5-way analytical, 50x blow-up",
       "SELECT n.n_name, SUM(l.l_extendedprice) "
       "FROM customer c, orders o, lineitem l, supplier s, nation n "
       "WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey "
       "AND l.l_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey "
       "GROUP BY n.n_name",
       50.0},
  };

  std::printf("\n%-30s %16s %16s %12s\n", "checkpoint", "remaining (s)",
              "recompile (s)", "decision");
  for (const Scenario& sc : scenarios) {
    auto graph = Binder::BindSql(*catalog, sc.sql);
    if (!graph.ok()) return 1;
    auto compiled = session.Optimize(*graph);
    if (!compiled.ok()) return 1;
    double full_exec = cost_model.CostToSeconds(compiled->best_plan->cost);
    double remaining = full_exec * 0.8 * sc.blowup;  // 80% of work left
    CompileTimeEstimate est = session.Estimate(*graph, *model);
    bool reoptimize = est.estimated_seconds < 0.1 * remaining;
    std::printf("%-30s %16.5f %16.5f %12s\n", sc.what, remaining,
                est.estimated_seconds,
                reoptimize ? "REOPTIMIZE" : "keep running");
  }
  return 0;
}
