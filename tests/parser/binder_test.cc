#include "parser/binder.h"

#include <gtest/gtest.h>

#include "workload/workload.h"

namespace cote {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  BinderTest() : catalog_(MakeTpchCatalog()) {}

  QueryGraph Bind(const std::string& sql, BinderOptions opts = {}) {
    auto g = Binder::BindSql(*catalog_, sql, opts);
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    return g.ok() ? std::move(g).value() : QueryGraph{};
  }

  Status BindError(const std::string& sql) {
    return Binder::BindSql(*catalog_, sql).status();
  }

  std::shared_ptr<Catalog> catalog_;
};

TEST_F(BinderTest, ResolvesQualifiedColumns) {
  QueryGraph g = Bind(
      "SELECT o.o_orderkey FROM orders o, lineitem l "
      "WHERE o.o_orderkey = l.l_orderkey");
  EXPECT_EQ(g.num_tables(), 2);
  ASSERT_EQ(g.join_predicates().size(), 1u);
  const JoinPredicate& p = g.join_predicates()[0];
  EXPECT_EQ(g.ColumnName(p.left), "o.o_orderkey");
  EXPECT_EQ(g.ColumnName(p.right), "l.l_orderkey");
}

TEST_F(BinderTest, ResolvesUnqualifiedUniqueColumn) {
  QueryGraph g = Bind("SELECT o_orderkey FROM orders WHERE o_orderdate > 5");
  EXPECT_EQ(g.local_predicates().size(), 1u);
}

TEST_F(BinderTest, AmbiguousUnqualifiedRejected) {
  // o_orderkey vs l_orderkey don't collide, but both tables have no shared
  // names; use two copies of the same table instead.
  Status s = BindError(
      "SELECT o_orderkey FROM orders a, orders b "
      "WHERE a.o_orderkey = b.o_custkey");
  EXPECT_EQ(s.code(), StatusCode::kBindError);
}

TEST_F(BinderTest, UnknownTableAndColumn) {
  EXPECT_EQ(BindError("SELECT x FROM nope").code(), StatusCode::kBindError);
  EXPECT_EQ(BindError("SELECT o.nope_col FROM orders o").code(),
            StatusCode::kBindError);
  EXPECT_EQ(BindError("SELECT z.o_orderkey FROM orders o").code(),
            StatusCode::kBindError);
}

TEST_F(BinderTest, DuplicateAliasRejected) {
  EXPECT_EQ(BindError("SELECT * FROM orders o, lineitem o").code(),
            StatusCode::kBindError);
}

TEST_F(BinderTest, SelectivityFromStatistics) {
  QueryGraph g = Bind(
      "SELECT * FROM orders o WHERE o.o_orderkey = 7 AND o.o_orderdate > 5 "
      "AND o.o_orderpriority LIKE 'x%' AND o.o_custkey BETWEEN 1 AND 9");
  ASSERT_EQ(g.local_predicates().size(), 4u);
  // Equality on a 1.5M-value key: histogram-derived, near 1/NDV.
  EXPECT_GT(g.local_predicates()[0].selectivity, 1e-8);
  EXPECT_LT(g.local_predicates()[0].selectivity, 1e-5);
  // Range and BETWEEN: histogram fractions within the clamped band.
  EXPECT_GE(g.local_predicates()[1].selectivity, 0.02);
  EXPECT_LE(g.local_predicates()[1].selectivity, 0.98);
  EXPECT_NEAR(g.local_predicates()[2].selectivity, 0.1, 1e-12);  // LIKE
  EXPECT_GE(g.local_predicates()[3].selectivity, 0.02);
  EXPECT_LE(g.local_predicates()[3].selectivity, 0.9);
}

TEST_F(BinderTest, SelectivityDeterministicAcrossBinds) {
  const char* sql =
      "SELECT * FROM orders o WHERE o.o_orderdate > DATE '1995-06-17'";
  QueryGraph a = Bind(sql);
  QueryGraph b = Bind(sql);
  ASSERT_EQ(a.local_predicates().size(), 1u);
  EXPECT_DOUBLE_EQ(a.local_predicates()[0].selectivity,
                   b.local_predicates()[0].selectivity);
}

TEST_F(BinderTest, DifferentLiteralsDifferentRangeSelectivity) {
  QueryGraph a = Bind(
      "SELECT * FROM orders o WHERE o.o_orderdate > DATE '1992-01-01'");
  QueryGraph b = Bind(
      "SELECT * FROM orders o WHERE o.o_orderdate > DATE '1998-10-10'");
  // Pseudo-positions differ, so the histogram yields different fractions.
  EXPECT_NE(a.local_predicates()[0].selectivity,
            b.local_predicates()[0].selectivity);
}

TEST_F(BinderTest, JoinSelectivityUsesMaxNdv) {
  QueryGraph g = Bind(
      "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey",
      BinderOptions{.transitive_closure = false});
  ASSERT_EQ(g.join_predicates().size(), 1u);
  EXPECT_NEAR(g.join_predicates()[0].selectivity, 1.0 / 1500000, 1e-12);
}

TEST_F(BinderTest, LeftOuterJoinOrientation) {
  QueryGraph g = Bind(
      "SELECT * FROM orders o LEFT JOIN lineitem l "
      "ON o.o_orderkey = l.l_orderkey");
  ASSERT_EQ(g.join_predicates().size(), 1u);
  const JoinPredicate& p = g.join_predicates()[0];
  EXPECT_EQ(p.kind, JoinKind::kLeftOuter);
  // Right side is the null-producing (newly joined) table.
  EXPECT_EQ(g.table_ref(p.right.table).alias, "l");
}

TEST_F(BinderTest, TransitiveClosureAddsDerivedPredicates) {
  BinderOptions no_tc{.transitive_closure = false};
  QueryGraph without = Bind(
      "SELECT * FROM customer c, orders o, nation n "
      "WHERE c.c_custkey = o.o_custkey AND c.c_nationkey = n.n_nationkey",
      no_tc);
  EXPECT_EQ(without.join_predicates().size(), 2u);

  QueryGraph with = Bind(
      "SELECT * FROM supplier s, lineitem l, partsupp ps "
      "WHERE s.s_suppkey = l.l_suppkey AND ps.ps_suppkey = l.l_suppkey");
  // s_suppkey = ps_suppkey is implied: 2 written + 1 derived.
  EXPECT_EQ(with.join_predicates().size(), 3u);
  EXPECT_TRUE(with.join_predicates()[2].derived);
}

TEST_F(BinderTest, GroupByOrderByAndAggregation) {
  QueryGraph g = Bind(
      "SELECT n.n_name, SUM(l.l_extendedprice) FROM lineitem l, supplier s, "
      "nation n WHERE l.l_suppkey = s.s_suppkey AND "
      "s.s_nationkey = n.n_nationkey "
      "GROUP BY n.n_name ORDER BY n.n_name");
  EXPECT_TRUE(g.has_aggregation());
  EXPECT_EQ(g.group_by().size(), 1u);
  EXPECT_EQ(g.order_by().size(), 1u);
  EXPECT_EQ(g.group_by()[0], g.order_by()[0]);
}

TEST_F(BinderTest, AggregationWithoutGroupBy) {
  QueryGraph g = Bind("SELECT COUNT(*) FROM orders o");
  EXPECT_TRUE(g.has_aggregation());
  EXPECT_TRUE(g.group_by().empty());
}

TEST_F(BinderTest, SelfJoinPredicateWithinOneRefRejected) {
  EXPECT_EQ(
      BindError("SELECT * FROM orders o WHERE o.o_orderkey = o.o_custkey")
          .code(),
      StatusCode::kBindError);
}

TEST_F(BinderTest, SelfJoinAcrossTwoRefsAllowed) {
  QueryGraph g = Bind(
      "SELECT * FROM lineitem l1, lineitem l2 "
      "WHERE l1.l_orderkey = l2.l_orderkey");
  EXPECT_EQ(g.num_tables(), 2);
  EXPECT_EQ(g.join_predicates().size(), 1u);
}

}  // namespace
}  // namespace cote
