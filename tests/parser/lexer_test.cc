#include "parser/lexer.h"

#include <gtest/gtest.h>

namespace cote {
namespace {

std::vector<Token> Lex(const std::string& s) {
  Lexer lexer(s);
  auto tokens = lexer.Tokenize();
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  return tokens.ok() ? std::move(tokens).value() : std::vector<Token>{};
}

TEST(LexerTest, EmptyInput) {
  auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, IdentifiersAndKeywords) {
  auto tokens = Lex("SELECT foo _bar b2z");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_EQ(tokens[1].text, "foo");
  EXPECT_EQ(tokens[2].text, "_bar");
  EXPECT_EQ(tokens[3].text, "b2z");
}

TEST(LexerTest, Numbers) {
  auto tokens = Lex("42 3.14 .5");
  EXPECT_EQ(tokens[0].text, "42");
  EXPECT_EQ(tokens[1].text, "3.14");
  EXPECT_EQ(tokens[2].text, ".5");
  EXPECT_EQ(tokens[0].type, TokenType::kNumber);
}

TEST(LexerTest, Strings) {
  auto tokens = Lex("'hello' 'it''s' '%BRASS'");
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
  EXPECT_EQ(tokens[2].text, "%BRASS");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
}

TEST(LexerTest, Symbols) {
  auto tokens = Lex("( ) , . * = < > <= >= <> != ;");
  EXPECT_TRUE(tokens[0].IsSymbol("("));
  EXPECT_TRUE(tokens[8].IsSymbol("<="));
  EXPECT_TRUE(tokens[9].IsSymbol(">="));
  EXPECT_TRUE(tokens[10].IsSymbol("<>"));
  EXPECT_TRUE(tokens[11].IsSymbol("<>"));  // != normalized
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Lex("a -- comment to end\nb");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, OffsetsTracked) {
  auto tokens = Lex("ab cd");
  EXPECT_EQ(tokens[0].offset, 0);
  EXPECT_EQ(tokens[1].offset, 3);
}

TEST(LexerTest, UnterminatedStringFails) {
  Lexer lexer("'oops");
  EXPECT_EQ(lexer.Tokenize().status().code(), StatusCode::kParseError);
}

TEST(LexerTest, UnknownCharacterFails) {
  Lexer lexer("a @ b");
  EXPECT_EQ(lexer.Tokenize().status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace cote
