#include "parser/parser.h"

#include <gtest/gtest.h>

namespace cote {
namespace {

ast::SelectStatement Parse(const std::string& sql) {
  auto stmt = Parser::Parse(sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  return stmt.ok() ? std::move(stmt).value() : ast::SelectStatement{};
}

TEST(ParserTest, MinimalSelect) {
  auto stmt = Parse("SELECT * FROM t");
  ASSERT_EQ(stmt.select_list.size(), 1u);
  EXPECT_TRUE(stmt.select_list[0].star);
  ASSERT_EQ(stmt.from.size(), 1u);
  EXPECT_EQ(stmt.from[0].table.table_name, "t");
}

TEST(ParserTest, SelectListColumnsAndAggregates) {
  auto stmt = Parse(
      "SELECT a.x, y AS alias1, COUNT(*), SUM(a.z) AS total FROM a");
  ASSERT_EQ(stmt.select_list.size(), 4u);
  EXPECT_EQ(stmt.select_list[0].column.qualifier, "a");
  EXPECT_EQ(stmt.select_list[0].column.column, "x");
  EXPECT_EQ(stmt.select_list[1].output_alias, "alias1");
  EXPECT_EQ(stmt.select_list[2].agg, ast::AggFunc::kCount);
  EXPECT_TRUE(stmt.select_list[2].star);
  EXPECT_EQ(stmt.select_list[3].agg, ast::AggFunc::kSum);
  EXPECT_EQ(stmt.select_list[3].output_alias, "total");
}

TEST(ParserTest, FromWithAliases) {
  auto stmt = Parse("SELECT * FROM orders AS o, lineitem l");
  ASSERT_EQ(stmt.from.size(), 2u);
  EXPECT_EQ(stmt.from[0].table.alias, "o");
  EXPECT_EQ(stmt.from[1].table.alias, "l");
}

TEST(ParserTest, JoinClauses) {
  auto stmt = Parse(
      "SELECT * FROM a JOIN b ON a.x = b.x "
      "LEFT OUTER JOIN c ON b.y = c.y AND b.z = c.z "
      "INNER JOIN d ON c.w = d.w");
  ASSERT_EQ(stmt.from.size(), 1u);
  ASSERT_EQ(stmt.from[0].joins.size(), 3u);
  EXPECT_FALSE(stmt.from[0].joins[0].left_outer);
  EXPECT_TRUE(stmt.from[0].joins[1].left_outer);
  EXPECT_EQ(stmt.from[0].joins[1].on.size(), 2u);
  EXPECT_FALSE(stmt.from[0].joins[2].left_outer);
}

TEST(ParserTest, WherePredicates) {
  auto stmt = Parse(
      "SELECT * FROM a, b WHERE a.x = b.x AND a.y > 5 AND a.s LIKE 'z%' "
      "AND a.d BETWEEN 1 AND 10 AND a.e <> 3 AND a.f = DATE '2001-01-01'");
  ASSERT_EQ(stmt.where.size(), 6u);
  EXPECT_TRUE(stmt.where[0].is_join);
  EXPECT_FALSE(stmt.where[1].is_join);
  EXPECT_EQ(stmt.where[1].op, ast::CompareOp::kGt);
  EXPECT_EQ(stmt.where[2].op, ast::CompareOp::kLike);
  EXPECT_EQ(stmt.where[3].op, ast::CompareOp::kBetween);
  EXPECT_EQ(stmt.where[3].literal.text, "1");
  EXPECT_EQ(stmt.where[3].literal2.text, "10");
  EXPECT_EQ(stmt.where[4].op, ast::CompareOp::kNe);
  EXPECT_EQ(stmt.where[5].literal.text, "2001-01-01");
}

TEST(ParserTest, GroupByOrderBy) {
  auto stmt = Parse(
      "SELECT a.x FROM a GROUP BY a.x, a.y ORDER BY a.x DESC, a.y ASC, a.z");
  ASSERT_EQ(stmt.group_by.size(), 2u);
  ASSERT_EQ(stmt.order_by.size(), 3u);
  EXPECT_TRUE(stmt.order_by[0].descending);
  EXPECT_FALSE(stmt.order_by[1].descending);
  EXPECT_FALSE(stmt.order_by[2].descending);
}

TEST(ParserTest, DistinctAndSemicolon) {
  auto stmt = Parse("SELECT DISTINCT a.x FROM a;");
  EXPECT_TRUE(stmt.distinct);
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  auto stmt = Parse("select a.x from a where a.x = 1 group by a.x");
  EXPECT_EQ(stmt.group_by.size(), 1u);
}

struct BadSql {
  const char* sql;
  const char* why;
};

class ParserErrorTest : public ::testing::TestWithParam<BadSql> {};

TEST_P(ParserErrorTest, Rejected) {
  auto stmt = Parser::Parse(GetParam().sql);
  EXPECT_FALSE(stmt.ok()) << GetParam().why;
  EXPECT_EQ(stmt.status().code(), StatusCode::kParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrorTest,
    ::testing::Values(
        BadSql{"FROM t", "missing SELECT"},
        BadSql{"SELECT * t", "missing FROM"},
        BadSql{"SELECT * FROM", "missing table"},
        BadSql{"SELECT * FROM t WHERE", "empty where"},
        BadSql{"SELECT * FROM t WHERE x <", "missing operand"},
        BadSql{"SELECT * FROM t WHERE x < y", "non-eq join predicate"},
        BadSql{"SELECT * FROM t JOIN u", "missing ON"},
        BadSql{"SELECT * FROM t GROUP x", "missing BY"},
        BadSql{"SELECT * FROM t ORDER BY", "empty order by"},
        BadSql{"SELECT COUNT( FROM t", "unclosed aggregate"},
        BadSql{"SELECT * FROM t WHERE a LIKE 5", "LIKE needs string"},
        BadSql{"SELECT * FROM t, WHERE a = 1", "dangling comma"},
        BadSql{"SELECT * FROM t ORDER BY a 5", "trailing garbage"}));

}  // namespace
}  // namespace cote
