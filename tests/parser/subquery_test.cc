// Multi-block queries: uncorrelated scalar subqueries parse into separate
// blocks, bind recursively, and estimates sum over blocks (§3.3).

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "parser/binder.h"
#include "parser/parser.h"
#include "workload/workload.h"

namespace cote {
namespace {

class SubqueryTest : public ::testing::Test {
 protected:
  SubqueryTest() : catalog_(MakeTpchCatalog()) {}
  std::shared_ptr<Catalog> catalog_;
};

TEST_F(SubqueryTest, ParserBuildsNestedStatement) {
  auto stmt = Parser::Parse(
      "SELECT * FROM orders o WHERE o.o_custkey = "
      "(SELECT MAX(c.c_custkey) FROM customer c WHERE c.c_acctbal > 100)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->where.size(), 1u);
  ASSERT_NE(stmt->where[0].subquery, nullptr);
  EXPECT_EQ(stmt->where[0].subquery->from.size(), 1u);
  EXPECT_EQ(stmt->where[0].subquery->from[0].table.table_name, "customer");
}

TEST_F(SubqueryTest, NestedSubqueriesParse) {
  auto stmt = Parser::Parse(
      "SELECT * FROM orders o WHERE o.o_custkey = "
      "(SELECT MIN(c.c_custkey) FROM customer c WHERE c.c_nationkey = "
      "(SELECT MAX(n.n_nationkey) FROM nation n))");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_NE(stmt->where[0].subquery, nullptr);
  EXPECT_NE(stmt->where[0].subquery->where[0].subquery, nullptr);
}

TEST_F(SubqueryTest, UnclosedSubqueryRejected) {
  auto stmt = Parser::Parse(
      "SELECT * FROM orders o WHERE o.o_custkey = "
      "(SELECT c.c_custkey FROM customer c");
  EXPECT_FALSE(stmt.ok());
}

TEST_F(SubqueryTest, BindMultiCollectsBlocks) {
  auto bound = Binder::BindSqlMulti(*catalog_, R"(
      SELECT * FROM orders o, lineitem l
      WHERE o.o_orderkey = l.l_orderkey
        AND o.o_custkey = (SELECT MAX(c.c_custkey) FROM customer c, nation n
                           WHERE c.c_nationkey = n.n_nationkey
                             AND n.n_name = 'FRANCE'))");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->num_blocks(), 2);
  EXPECT_EQ(bound->main.num_tables(), 2);
  ASSERT_EQ(bound->subquery_blocks.size(), 1u);
  EXPECT_EQ(bound->subquery_blocks[0].num_tables(), 2);
  // The outer block sees the subquery as a local predicate.
  EXPECT_EQ(bound->main.local_predicates().size(), 1u);
}

TEST_F(SubqueryTest, BindSingleBlockDropsSubqueryButStillBinds) {
  auto g = Binder::BindSql(*catalog_,
                           "SELECT * FROM orders o WHERE o.o_custkey = "
                           "(SELECT MAX(c.c_custkey) FROM customer c)");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_tables(), 1);
  EXPECT_EQ(g->local_predicates().size(), 1u);
}

TEST_F(SubqueryTest, NestedBlocksAllCollected) {
  auto bound = Binder::BindSqlMulti(*catalog_, R"(
      SELECT * FROM orders o WHERE o.o_custkey =
        (SELECT MIN(c.c_custkey) FROM customer c WHERE c.c_nationkey =
          (SELECT MAX(n.n_nationkey) FROM nation n)))");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->num_blocks(), 3);
}

TEST_F(SubqueryTest, EstimateSumsOverBlocks) {
  auto bound = Binder::BindSqlMulti(*catalog_, R"(
      SELECT * FROM orders o, lineitem l
      WHERE o.o_orderkey = l.l_orderkey
        AND o.o_custkey = (SELECT MAX(c.c_custkey) FROM customer c, nation n
                           WHERE c.c_nationkey = n.n_nationkey))");
  ASSERT_TRUE(bound.ok());
  TimeModel model;
  model.ct[0] = model.ct[1] = model.ct[2] = 1e-6;
  CompileTimeEstimator cote(model, OptimizerOptions{});

  CompileTimeEstimate total = cote.Estimate(*bound);
  CompileTimeEstimate main = cote.Estimate(bound->main);
  CompileTimeEstimate sub = cote.Estimate(bound->subquery_blocks[0]);
  EXPECT_EQ(total.plan_estimates.total(),
            main.plan_estimates.total() + sub.plan_estimates.total());
  EXPECT_NEAR(total.estimated_seconds,
              main.estimated_seconds + sub.estimated_seconds, 1e-12);
  EXPECT_EQ(total.enumeration.joins_unordered,
            main.enumeration.joins_unordered +
                sub.enumeration.joins_unordered);
}

TEST_F(SubqueryTest, DistinctPlansLikeGroupBy) {
  auto plain = Binder::BindSql(
      *catalog_, "SELECT c.c_nationkey FROM customer c");
  auto distinct = Binder::BindSql(
      *catalog_, "SELECT DISTINCT c.c_nationkey FROM customer c");
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(distinct.ok());
  EXPECT_FALSE(plain->has_aggregation());
  EXPECT_TRUE(distinct->has_aggregation());
  EXPECT_EQ(distinct->group_by().size(), 1u);
}

}  // namespace
}  // namespace cote
