// Integrity sweeps over every shipped catalog: index keys in range,
// foreign keys resolvable with matching arity, partition keys valid,
// statistics sane. These guard the workload definitions the benches use.

#include <gtest/gtest.h>

#include "workload/workload.h"

namespace cote {
namespace {

class CatalogCase {
 public:
  CatalogCase(std::string name, std::shared_ptr<Catalog> (*factory)())
      : name_(std::move(name)), factory_(factory) {}
  std::string name_;
  std::shared_ptr<Catalog> (*factory_)();
};

void PrintTo(const CatalogCase& c, std::ostream* os) { *os << c.name_; }

class CatalogShapeTest : public ::testing::TestWithParam<CatalogCase> {};

TEST_P(CatalogShapeTest, StatisticsSane) {
  auto catalog = GetParam().factory_();
  ASSERT_GT(catalog->num_tables(), 0);
  for (const auto& t : catalog->tables()) {
    EXPECT_GT(t->row_count(), 0) << t->name();
    EXPECT_GE(t->pages(), 1) << t->name();
    EXPECT_GT(t->num_columns(), 0) << t->name();
    for (const Column& c : t->columns()) {
      EXPECT_GT(c.ndv, 0) << t->name() << "." << c.name;
      EXPECT_LE(c.ndv, t->row_count() + 0.5) << t->name() << "." << c.name;
    }
  }
}

TEST_P(CatalogShapeTest, IndexKeysValid) {
  auto catalog = GetParam().factory_();
  for (const auto& t : catalog->tables()) {
    for (const Index& idx : t->indexes()) {
      EXPECT_FALSE(idx.key_columns.empty()) << idx.name;
      for (int col : idx.key_columns) {
        EXPECT_GE(col, 0) << idx.name;
        EXPECT_LT(col, t->num_columns()) << idx.name;
      }
      if (idx.unique && idx.key_columns.size() == 1) {
        // Unique single-column index implies key-level NDV.
        EXPECT_GE(t->column(idx.key_columns[0]).ndv, t->row_count() - 0.5)
            << idx.name;
      }
    }
  }
}

TEST_P(CatalogShapeTest, ForeignKeysResolve) {
  auto catalog = GetParam().factory_();
  for (const auto& t : catalog->tables()) {
    for (const ForeignKey& fk : t->foreign_keys()) {
      const Table* ref = catalog->FindTable(fk.referenced_table);
      ASSERT_NE(ref, nullptr)
          << t->name() << " references missing " << fk.referenced_table;
      ASSERT_EQ(fk.columns.size(), fk.referenced_columns.size());
      for (size_t i = 0; i < fk.columns.size(); ++i) {
        EXPECT_LT(fk.columns[i], t->num_columns());
        EXPECT_GE(ref->FindColumn(fk.referenced_columns[i]), 0)
            << fk.referenced_table << "." << fk.referenced_columns[i];
      }
    }
  }
}

TEST_P(CatalogShapeTest, PartitioningValid) {
  auto catalog = GetParam().factory_();
  for (const auto& t : catalog->tables()) {
    const PartitioningSpec& spec = t->partitioning();
    if (spec.kind == PartitionKind::kHash) {
      EXPECT_FALSE(spec.key_columns.empty()) << t->name();
      for (int col : spec.key_columns) {
        EXPECT_GE(col, 0);
        EXPECT_LT(col, t->num_columns());
      }
    } else {
      EXPECT_TRUE(spec.key_columns.empty()) << t->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCatalogs, CatalogShapeTest,
    ::testing::Values(CatalogCase("retail", &MakeRetailCatalog),
                      CatalogCase("tpch", &MakeTpchCatalog),
                      CatalogCase("synthetic",
                                  [] { return MakeSyntheticCatalog(10); })),
    [](const ::testing::TestParamInfo<CatalogCase>& info) {
      return info.param.name_;
    });

TEST(TpchCatalogTest, RowCountsMatchSf1) {
  auto catalog = MakeTpchCatalog();
  EXPECT_DOUBLE_EQ(catalog->FindTable("lineitem")->row_count(), 6000000);
  EXPECT_DOUBLE_EQ(catalog->FindTable("orders")->row_count(), 1500000);
  EXPECT_DOUBLE_EQ(catalog->FindTable("customer")->row_count(), 150000);
  EXPECT_DOUBLE_EQ(catalog->FindTable("nation")->row_count(), 25);
  EXPECT_DOUBLE_EQ(catalog->FindTable("region")->row_count(), 5);
}

TEST(RetailCatalogTest, SmallDimensionsReplicated) {
  auto catalog = MakeRetailCatalog();
  for (const char* dim : {"region", "calendar", "store", "warehouse"}) {
    EXPECT_EQ(catalog->FindTable(dim)->partitioning().kind,
              PartitionKind::kReplicated)
        << dim;
  }
  for (const char* fact : {"sales", "inventory", "shipments", "returns"}) {
    EXPECT_EQ(catalog->FindTable(fact)->partitioning().kind,
              PartitionKind::kHash)
        << fact;
  }
}

TEST(RetailCatalogTest, HasFourteenTables) {
  // real2's big query uses every table once (the paper's 14-table query).
  EXPECT_EQ(MakeRetailCatalog()->num_tables(), 14);
}

}  // namespace
}  // namespace cote
