// Deterministic chaos-soak harness for the overload-resilient compile
// service (DESIGN.md §16): seeded long runs mixing queue overload,
// injected faults, budget trips, queue-wait expiry, bounded retry, and
// cross-thread cancellation — through both service front-ends.
//
//   * The simulated legs run on a VirtualClock with kEstimate service
//     times: the whole soak (shed decisions, ladder demotions, retries,
//     fault injections) replays bit-identically, which is asserted by
//     literally running it twice.
//   * The async legs run the live 4-worker executor. Pinned legs hold
//     the workers so the queue state at every Submit is deterministic
//     and per-ticket outcomes must equal the simulated oracle's; the
//     free-running supervisor soak asserts the invariants that survive
//     any interleaving — no ticket lost, every ticket in exactly one
//     taxonomy bucket, every status from the service's vocabulary, and
//     the service reusable after every burst.
//
// Fixture names deliberately contain "Service": tools/run_checks.sh's
// TSan gate builds this binary and races it via `ctest -R
// 'Session|Service'`. The death test below is the one exception — its
// fixture name matches neither, keeping abort-by-design out of the
// sanitizer cycle.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/fault_points.h"
#include "common/resource_budget.h"
#include "common/status.h"
#include "service/async_executor.h"
#include "service/compile_service.h"
#include "service/scheduler.h"
#include "session/session.h"
#include "tests/common/fault_injection.h"
#include "workload/workload.h"

namespace cote {
namespace {

using testing::FaultScript;

OptimizerOptions SmallOptions() {
  OptimizerOptions o;
  o.enumeration.max_composite_inner = 3;
  return o;
}

TimeModel SyntheticModel() {
  TimeModel model;
  model.ct[0] = 2e-6;
  model.ct[1] = 1e-6;
  model.ct[2] = 1.5e-6;
  model.intercept = 1e-5;
  return model;
}

/// Shared base: estimate-driven service times and a deadline floor far
/// above any real compile, so the only failures are the ones the chaos
/// script (or the overload machinery) injects on purpose.
CompileServiceOptions ChaosBaseOptions() {
  CompileServiceOptions o;
  o.optimizer = SmallOptions();
  o.time_model = SyntheticModel();
  o.time_source = ServiceTimeSource::kEstimate;
  o.admission.limits_policy.min_deadline_seconds = 600.0;
  return o;
}

/// Ticket conservation, the soak's core invariant: exactly one terminal
/// record per submitted ticket, each classified into exactly one
/// taxonomy bucket, and the stored outcome equal to re-classifying the
/// record from scratch.
void ExpectConserved(const ServiceReport& r, size_t n) {
  ASSERT_EQ(r.records.size(), n);
  EXPECT_EQ(r.taxonomy.TotalTickets(), static_cast<int64_t>(n));
  std::vector<bool> seen(n, false);
  for (const ServiceQueryRecord& rec : r.records) {
    ASSERT_LT(rec.ticket, n);
    EXPECT_FALSE(seen[rec.ticket]) << "duplicate terminal record for ticket "
                                   << rec.ticket;
    seen[rec.ticket] = true;
    EXPECT_EQ(rec.outcome, ClassifyRecord(rec)) << rec.ticket;
  }
  const OutcomeTaxonomy ref = BuildTaxonomy(r.records);
  EXPECT_EQ(r.taxonomy.served_full, ref.served_full);
  EXPECT_EQ(r.taxonomy.served_degraded, ref.served_degraded);
  EXPECT_EQ(r.taxonomy.shed_queue_full, ref.shed_queue_full);
  EXPECT_EQ(r.taxonomy.shed_expired, ref.shed_expired);
  EXPECT_EQ(r.taxonomy.failed_permanent, ref.failed_permanent);
  EXPECT_EQ(r.taxonomy.retried, ref.retried);
}

class ChaosSoakServiceTest : public ::testing::Test {
 protected:
  ChaosSoakServiceTest()
      : linear_(LinearWorkload()),
        star_(StarWorkload()),
        random_(RandomWorkload(13, 42)) {
    // <= 6 tables keeps every compile cheap enough for the soak to stay
    // inside the TSan gate's time box while still spanning a wide
    // predicted-cost range (the shed-value and patience heterogeneity).
    for (const QueryGraph& q : linear_.queries) {
      if (q.num_tables() <= 6) pool_.push_back(&q);
    }
    for (const QueryGraph& q : star_.queries) {
      if (q.num_tables() <= 6) pool_.push_back(&q);
    }
    for (const QueryGraph& q : random_.queries) {
      if (q.num_tables() <= 6) pool_.push_back(&q);
    }
  }

  /// Seeded open-loop stream well past saturation (~2x and beyond): the
  /// mean gap sits far below the mean predicted service time, so the
  /// queue overflows and every overload mechanism gets exercised.
  std::vector<Submission> ChaosTrace(int n, uint64_t seed) const {
    ArrivalTraceOptions o;
    o.num_arrivals = n;
    o.mean_gap_seconds = 0.0002;
    o.seed = seed;
    return MakeOpenLoopTrace(pool_, o);
  }

  Workload linear_, star_, random_;
  std::vector<const QueryGraph*> pool_;
};

// ---------------------------------------------------------------------------
// Leg A: the simulated chaos soak — overload + faults + trips + ladder +
// retry on the virtual clock, run twice, compared bit for bit.

TEST_F(ChaosSoakServiceTest, SimulatedSoakIsBitIdenticalAndConservesTickets) {
  // Two fault-doomed tickets compile *copies* of a cheap query: a unique
  // subject address per ticket makes the every-attempt rule hit exactly
  // that ticket, and a cheap prediction keeps it from being shed before
  // it ever runs.
  std::vector<QueryGraph> doomed(2, *pool_[0]);
  std::vector<Submission> trace = ChaosTrace(64, 7);
  trace[10].query = &doomed[0];
  trace[30].query = &doomed[1];

  struct SoakResult {
    ServiceReport burst;
    ServiceReport second;
    int64_t injected = 0;
  };
  auto run_soak = [&]() {
    // Fresh script per run so occurrence counters restart: same rules,
    // same seed, same virtual clock => the injections must land on the
    // same consults.
    FaultScript script;
    script.FailAt(kFaultPlanEnumerate, nullptr,
                  Status::Internal("chaos: enumerate"), 5);
    script.FailAt(kFaultPlanBind, nullptr, Status::Internal("chaos: bind"), 9);
    script.FailAt(kFaultPlanFinalize, nullptr,
                  Status::Internal("chaos: finalize"), 3);
    script.FailAt(kFaultPlanEnumerate, nullptr,
                  Status::Internal("chaos: enumerate late"), 17);
    script.FailAt(kFaultPlanEnumerate, &doomed[0],
                  Status::Internal("chaos: doomed"), 0);
    script.FailAt(kFaultPlanEnumerate, &doomed[1],
                  Status::Internal("chaos: doomed"), 0);

    CompileServiceOptions o = ChaosBaseOptions();
    o.policy = SchedulingPolicy::kShortestEstimatedFirst;
    o.num_workers = 2;
    o.queue_capacity = 8;
    o.overload = OverloadPolicy::kShedLowestValue;
    o.max_retries = 1;
    o.admission.limits_policy.patience_factor = 3.7;
    // Tight headroom: accurate estimates regularly trip their own caps,
    // mixing organic greedy-fallback degradations into the soak.
    o.admission.limits_policy.headroom = 0.9;
    VirtualClock clock;
    o.clock = &clock;
    o.drive_clock = &clock;
    CompileService service(o);

    SoakResult out;
    out.burst = service.Run(trace);
    // The service must stay usable after the chaos burst: a clean
    // follow-up burst on the *same* service still conserves tickets.
    std::vector<Submission> after(6);
    for (size_t i = 0; i < after.size(); ++i) after[i].query = pool_[i];
    out.second = service.Run(after);
    out.injected = script.injected();
    return out;
  };

  SoakResult a = run_soak();
  SoakResult b = run_soak();

  ExpectConserved(a.burst, trace.size());
  ExpectConserved(a.second, 6);
  EXPECT_GT(a.injected, 0) << "the chaos script must actually fire";
  // The overload machinery must actually engage at this load.
  EXPECT_GT(a.burst.taxonomy.shed_queue_full + a.burst.taxonomy.shed_expired,
            0);
  EXPECT_GT(a.burst.taxonomy.failed_permanent, 0) << "doomed tickets";
  EXPECT_GT(a.burst.taxonomy.retried, 0);

  // Bit-identical replay: every record field that exists in the
  // simulated timeline, in the same order.
  EXPECT_EQ(a.injected, b.injected);
  ASSERT_EQ(a.burst.records.size(), b.burst.records.size());
  for (size_t i = 0; i < a.burst.records.size(); ++i) {
    const ServiceQueryRecord& x = a.burst.records[i];
    const ServiceQueryRecord& y = b.burst.records[i];
    EXPECT_EQ(x.ticket, y.ticket) << i;
    EXPECT_EQ(x.worker, y.worker) << i;
    EXPECT_EQ(x.start_seconds, y.start_seconds) << i;
    EXPECT_EQ(x.finish_seconds, y.finish_seconds) << i;
    EXPECT_EQ(x.queue_seconds, y.queue_seconds) << i;
    EXPECT_EQ(x.predicted_seconds, y.predicted_seconds) << i;
    EXPECT_EQ(x.status.ToString(), y.status.ToString()) << i;
    EXPECT_EQ(x.outcome, y.outcome) << i;
    EXPECT_EQ(x.tier, y.tier) << i;
    EXPECT_EQ(x.retries, y.retries) << i;
    EXPECT_EQ(x.degraded, y.degraded) << i;
  }
  EXPECT_EQ(a.burst.makespan_seconds, b.burst.makespan_seconds);
  EXPECT_EQ(a.burst.taxonomy.served_full, b.burst.taxonomy.served_full);
  EXPECT_EQ(a.burst.taxonomy.served_degraded,
            b.burst.taxonomy.served_degraded);
  EXPECT_EQ(a.burst.taxonomy.shed_queue_full,
            b.burst.taxonomy.shed_queue_full);
  EXPECT_EQ(a.burst.taxonomy.shed_expired, b.burst.taxonomy.shed_expired);
  EXPECT_EQ(a.burst.taxonomy.failed_permanent,
            b.burst.taxonomy.failed_permanent);
  EXPECT_EQ(a.burst.taxonomy.retried, b.burst.taxonomy.retried);
  ASSERT_EQ(a.second.records.size(), b.second.records.size());
  for (size_t i = 0; i < a.second.records.size(); ++i) {
    EXPECT_EQ(a.second.records[i].ticket, b.second.records[i].ticket) << i;
    EXPECT_EQ(a.second.records[i].outcome, b.second.records[i].outcome) << i;
  }
}

// ---------------------------------------------------------------------------
// Leg B: the pinned async chaos burst — with the workers held during
// submission and all wall-derived decisions off, every per-ticket
// outcome must equal the virtual-clock oracle's.

TEST_F(ChaosSoakServiceTest, AsyncPinnedChaosBurstMatchesSimulatedOracle) {
  // Fault-targeted tickets compile dedicated query *copies*: the rules
  // key on the subject address, so unique copies make each rule's
  // occurrence counter private to its ticket — deterministic under any
  // worker interleaving.
  std::vector<QueryGraph> doomed(2, *pool_[0]);      // fail every attempt
  std::vector<QueryGraph> transient(3, *pool_[1]);   // fail first attempt
  const size_t kN = 40;
  std::vector<Submission> subs(kN);
  for (size_t t = 0; t < kN; ++t) {
    subs[t].query = pool_[(t * 7) % pool_.size()];
  }
  subs[3].query = &doomed[0];
  subs[17].query = &doomed[1];
  subs[5].query = &transient[0];
  subs[11].query = &transient[1];
  subs[29].query = &transient[2];

  auto arm_script = [&](FaultScript& script) {
    for (const QueryGraph& q : doomed) {
      script.FailAt(kFaultPlanEnumerate, &q,
                    Status::Internal("chaos: doomed"), 0);
    }
    for (const QueryGraph& q : transient) {
      script.FailAt(kFaultPlanBind, &q,
                    Status::Internal("chaos: transient"), 1);
    }
  };
  auto make_options = [] {
    CompileServiceOptions o = ChaosBaseOptions();
    o.policy = SchedulingPolicy::kShortestEstimatedFirst;
    o.num_workers = 4;
    o.queue_capacity = 10;
    o.overload = OverloadPolicy::kShedLowestValue;
    o.max_retries = 1;
    // Wall-derived decisions stay off (no patience, no supervisor): the
    // pinned comparison only holds when nothing reads the wall clock.
    return o;
  };

  ServiceReport ra;
  int64_t injected_async = 0;
  {
    FaultScript script;
    arm_script(script);
    AsyncCompileService async(make_options());
    async.HoldWorkers();
    for (const Submission& s : subs) async.Submit(s);
    async.ReleaseWorkers();
    ra = async.Drain();
    injected_async = script.injected();
  }

  ServiceReport rs;
  int64_t injected_sim = 0;
  {
    FaultScript script;
    arm_script(script);
    VirtualClock clock;
    CompileServiceOptions o = make_options();
    o.clock = &clock;
    o.drive_clock = &clock;
    CompileService sim(o);
    rs = sim.Run(subs);
    injected_sim = script.injected();
  }

  ExpectConserved(ra, kN);
  ExpectConserved(rs, kN);
  EXPECT_GT(injected_sim, 0) << "the chaos script must actually fire";
  EXPECT_EQ(injected_async, injected_sim);
  EXPECT_GT(ra.taxonomy.shed_queue_full, 0) << "burst must overflow";

  std::vector<const ServiceQueryRecord*> sim_by_ticket(kN, nullptr);
  for (const ServiceQueryRecord& rec : rs.records) {
    sim_by_ticket[rec.ticket] = &rec;
  }
  for (size_t t = 0; t < kN; ++t) {
    const ServiceQueryRecord& x = ra.records[t];
    ASSERT_EQ(x.ticket, t);
    ASSERT_NE(sim_by_ticket[t], nullptr);
    const ServiceQueryRecord& s = *sim_by_ticket[t];
    EXPECT_EQ(x.outcome, s.outcome) << t;
    EXPECT_EQ(x.status.code(), s.status.code()) << t;
    EXPECT_EQ(x.tier, s.tier) << t;
    EXPECT_EQ(x.retries, s.retries) << t;
    EXPECT_EQ(x.degraded, s.degraded) << t;
    EXPECT_EQ(x.predicted_seconds, s.predicted_seconds) << t;
  }
  EXPECT_EQ(ra.taxonomy.served_full, rs.taxonomy.served_full);
  EXPECT_EQ(ra.taxonomy.served_degraded, rs.taxonomy.served_degraded);
  EXPECT_EQ(ra.taxonomy.shed_queue_full, rs.taxonomy.shed_queue_full);
  EXPECT_EQ(ra.taxonomy.shed_expired, rs.taxonomy.shed_expired);
  EXPECT_EQ(ra.taxonomy.failed_permanent, rs.taxonomy.failed_permanent);
  EXPECT_EQ(ra.taxonomy.retried, rs.taxonomy.retried);
}

// ---------------------------------------------------------------------------
// Leg C: cross-thread cancellation — the atomic trip flag itself, the
// supervisor actually cancelling an overstaying compile, and the armed
// supervisor *not* cancelling anything when patience is off.

TEST(ServiceBudgetCancelTest, CrossThreadTripExternalObservedAtCheckpoint) {
  ResourceBudget budget;
  ResourceLimits limits;
  limits.max_plans = 1;  // arm something so the budget is live
  budget.Arm(limits);
  ASSERT_TRUE(budget.armed());
  EXPECT_FALSE(budget.tripped());
  // The supervisor shape: another thread trips the in-flight budget.
  std::thread supervisor([&budget] { budget.TripExternal(); });
  supervisor.join();
  EXPECT_TRUE(budget.tripped());
  EXPECT_EQ(budget.tripped_limit(), BudgetLimit::kExternalCancel);
  // The owner notices at its next cooperative checkpoint, and the trip
  // maps to kCancelled — not a budget-derived code.
  EXPECT_TRUE(budget.Checkpoint());
  EXPECT_EQ(budget.TripStatus().code(), StatusCode::kCancelled);
  // First-trip-wins: a racing self-trip cannot overwrite the cancel.
  budget.ChargePlans(5);
  EXPECT_EQ(budget.tripped_limit(), BudgetLimit::kExternalCancel);
  // Re-arming erases the stale cancel (the documented retirement rule).
  budget.Arm(limits);
  EXPECT_FALSE(budget.tripped());
}

/// RAII hook that *stalls* (rather than fails) the first matching fault
/// consult: the compile sits inside its pipeline long enough for the
/// Drain supervisor to declare it overdue and TripExternal its budget —
/// a deterministic stand-in for "this compile wedged".
class StallScript {
 public:
  StallScript(const char* point, double seconds)
      : point_(point), seconds_(seconds) {
    InstallFaultHook(&StallScript::Hook, this);
  }
  ~StallScript() { ClearFaultHook(); }
  StallScript(const StallScript&) = delete;
  StallScript& operator=(const StallScript&) = delete;

 private:
  static Status Hook(void* ctx, const char* point, const void* /*subject*/) {
    auto* self = static_cast<StallScript*>(ctx);
    if (std::string_view(point) == self->point_ &&
        !self->stalled_.exchange(true)) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(self->seconds_));
    }
    return Status::OK();
  }

  const char* point_;
  double seconds_;
  std::atomic<bool> stalled_{false};
};

TEST_F(ChaosSoakServiceTest, SupervisorCancelsAnOverstayingCompile) {
  CompileServiceOptions o = ChaosBaseOptions();
  o.num_workers = 1;
  // Huge patience floor: queue-wait never demotes (wait / 1e6 == 0
  // tiers), while the supervisor threshold patience * 1e-9 = 1ms — so
  // the *only* wall-derived decision in play is the external cancel.
  o.admission.limits_policy.patience_factor = 1.0;
  o.admission.limits_policy.min_patience_seconds = 1e6;
  o.admission.limits_policy.on_trip = BudgetAction::kFail;
  o.external_cancel_factor = 1e-9;
  o.cancel_poll_seconds = 1e-3;
  // The compile stalls for 200ms right after bind; the supervisor polls
  // every 1ms with a ~1ms overdue threshold, so the trip lands long
  // before the stall ends, and the first post-stall checkpoint cancels.
  StallScript stall(kFaultPlanBind, 0.2);
  AsyncCompileService async(o);
  Submission sub;
  sub.query = pool_[pool_.size() - 1];
  async.Submit(sub);
  ServiceReport r = async.Drain();
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].status.code(), StatusCode::kCancelled)
      << r.records[0].status.ToString();
  EXPECT_EQ(r.records[0].outcome, ServiceOutcome::kFailedPermanent);
  EXPECT_EQ(r.taxonomy.failed_permanent, 1);
}

TEST_F(ChaosSoakServiceTest, ArmedSupervisorWithoutPatienceCancelsNothing) {
  // external_cancel_factor > 0 arms the supervisor poll loop, but with
  // patience disabled (factor 0) no registration is ever overdue: every
  // compile must finish untouched, however slowly it runs.
  CompileServiceOptions o = ChaosBaseOptions();
  o.num_workers = 4;
  o.external_cancel_factor = 1.0;
  o.cancel_poll_seconds = 1e-3;
  AsyncCompileService async(o);
  std::vector<Submission> subs(12);
  for (size_t t = 0; t < subs.size(); ++t) {
    subs[t].query = pool_[t % pool_.size()];
  }
  ServiceReport r = async.Run(subs);
  ExpectConserved(r, subs.size());
  for (const ServiceQueryRecord& rec : r.records) {
    EXPECT_TRUE(rec.status.ok()) << rec.status.ToString();
  }
}

// ---------------------------------------------------------------------------
// Leg D: the free-running async soak — repeated chaos bursts on one
// executor with *everything* on (bounded queue, shedding, wall-clock
// patience ladder, retries, supervisor cancellation, injected faults).
// Worker interleaving and wall time make the per-ticket outcomes
// nondeterministic here, so the assertions are the interleaving-proof
// invariants: conservation, the status vocabulary, and reusability.

TEST_F(ChaosSoakServiceTest, FreeRunningSupervisedSoakConservesEveryBurst) {
  CompileServiceOptions o = ChaosBaseOptions();
  o.policy = SchedulingPolicy::kShortestEstimatedFirst;
  o.num_workers = 4;
  o.queue_capacity = 8;
  o.overload = OverloadPolicy::kShedLowestValue;
  o.max_retries = 1;
  o.admission.limits_policy.patience_factor = 3.7;
  o.admission.limits_policy.headroom = 0.9;
  o.admission.limits_policy.on_trip = BudgetAction::kFail;
  o.external_cancel_factor = 2.0;
  o.cancel_poll_seconds = 1e-3;
  AsyncCompileService async(o);

  FaultScript script;
  script.FailAt(kFaultPlanEnumerate, nullptr,
                Status::Internal("chaos: enumerate"), 7);
  script.FailAt(kFaultPlanBind, nullptr, Status::Internal("chaos: bind"), 19);
  script.FailAt(kFaultPlanComplete, nullptr,
                Status::Internal("chaos: complete"), 31);

  for (uint64_t burst = 0; burst < 3; ++burst) {
    std::vector<Submission> subs = ChaosTrace(36, 100 + burst);
    // Async bursts submit as fast as the door allows (arrival times are
    // wall-clock); the trace just picks the query mix.
    ServiceReport r = async.Run(subs);
    ExpectConserved(r, subs.size());
    for (const ServiceQueryRecord& rec : r.records) {
      switch (rec.status.code()) {
        case StatusCode::kOk:                 // served (full or degraded)
        case StatusCode::kUnavailable:        // shed at the door
        case StatusCode::kDeadlineExceeded:   // patience ladder expiry
        case StatusCode::kResourceExhausted:  // tripped caps, retries spent
        case StatusCode::kCancelled:          // supervisor cancel
        case StatusCode::kInternal:           // injected fault, retries spent
          break;
        default:
          ADD_FAILURE() << "burst " << burst << " ticket " << rec.ticket
                        << ": unexpected status " << rec.status.ToString();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Lifecycle contract: Submit racing past Shutdown is a driver bug and
// must abort loudly, not enqueue into a stopping executor. The fixture
// name deliberately avoids "Session"/"Service" so the TSan gate never
// runs an abort-by-design test.

TEST(ChaosLifecycleDeathTest, SubmitAfterShutdownAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Workload w = LinearWorkload();
  CompileServiceOptions o;
  o.num_workers = 2;
  EXPECT_DEATH(
      {
        AsyncCompileService async(o);
        async.Shutdown();
        Submission sub;
        sub.query = &w.queries[0];
        async.Submit(sub);
      },
      "COTE_CHECK failed");
}

}  // namespace
}  // namespace cote
