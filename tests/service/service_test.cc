#include "service/compile_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/clock.h"
#include "service/arrival_trace.h"
#include "service/scheduler.h"
#include "service/trip_tracker.h"
#include "session/session.h"
#include "workload/workload.h"

// Fixture names deliberately contain "Service": tools/run_checks.sh's TSan
// gate runs `ctest -R 'Session|Service'`, and the closed-loop batch path
// below is exactly the concurrent surface that gate race-checks.

namespace cote {
namespace {

OptimizerOptions SmallOptions() {
  OptimizerOptions o;
  o.enumeration.max_composite_inner = 3;
  return o;
}

/// Synthetic per-plan coefficients: predictions scale with plan counts, so
/// queries of different sizes get genuinely different predicted seconds —
/// what the SJF and threshold tests need — without calibrating a model.
TimeModel SyntheticModel() {
  TimeModel model;
  model.ct[0] = 2e-6;
  model.ct[1] = 1e-6;
  model.ct[2] = 1.5e-6;
  model.intercept = 1e-5;
  return model;
}

/// Service options whose scheduling decisions are fully deterministic: the
/// timeline runs on predicted seconds, and the derived deadline floor is
/// far above any real compile in this suite so no wall-clock trip can
/// sneak nondeterminism into the records.
CompileServiceOptions DeterministicOptions() {
  CompileServiceOptions o;
  o.optimizer = SmallOptions();
  o.time_model = SyntheticModel();
  o.time_source = ServiceTimeSource::kEstimate;
  o.admission.limits_policy.min_deadline_seconds = 600.0;
  return o;
}

// ---------------------------------------------------------------------------
// ReadyQueue policies.

ReadyEntry Entry(size_t ticket, double predicted, double deadline = 0) {
  ReadyEntry e;
  e.ticket = ticket;
  e.predicted_seconds = predicted;
  e.deadline_seconds = deadline;
  return e;
}

std::vector<size_t> Drain(ReadyQueue* q) {
  std::vector<size_t> order;
  while (!q->empty()) order.push_back(q->PopNext().ticket);
  return order;
}

TEST(ServiceSchedulerTest, FifoPopsInTicketOrder) {
  ReadyQueue q(SchedulingPolicy::kFifo);
  q.Push(Entry(2, 0.1));
  q.Push(Entry(0, 9.0));
  q.Push(Entry(1, 0.5));
  EXPECT_EQ(Drain(&q), (std::vector<size_t>{0, 1, 2}));
}

TEST(ServiceSchedulerTest, ShortestEstimatedFirstOrdersByPrediction) {
  ReadyQueue q(SchedulingPolicy::kShortestEstimatedFirst);
  q.Push(Entry(0, 3.0));
  q.Push(Entry(1, 1.0));
  q.Push(Entry(2, 2.0));
  q.Push(Entry(3, 1.0));  // tie with ticket 1: ticket breaks it
  EXPECT_EQ(Drain(&q), (std::vector<size_t>{1, 3, 2, 0}));
}

TEST(ServiceSchedulerTest, DeadlineAwareRunsEdfThenFifo) {
  ReadyQueue q(SchedulingPolicy::kDeadlineAware);
  q.Push(Entry(0, 1.0));            // no deadline
  q.Push(Entry(1, 1.0, 0.5));
  q.Push(Entry(2, 1.0));            // no deadline
  q.Push(Entry(3, 1.0, 0.2));
  q.Push(Entry(4, 1.0, 0.5));       // deadline tie with 1: ticket order
  EXPECT_EQ(Drain(&q), (std::vector<size_t>{3, 1, 4, 0, 2}));
}

/// Deterministic key stream for the heap cross-checks: a plain LCG, so
/// the entry sets are identical on every run with plenty of duplicate
/// keys to force the ticket tie-break.
class KeyStream {
 public:
  uint64_t Next(uint64_t mod) {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return (state_ >> 33) % mod;
  }

 private:
  uint64_t state_ = 0x5eed;
};

TEST(ServiceSchedulerTest, HeapDrainMatchesSortedReferenceEveryPolicy) {
  // The heap refactor's pin: because SchedulesBefore is a strict total
  // order, draining the heap must yield exactly the sequence sorting the
  // same entries with the production comparator yields — for every
  // policy, including heavy key duplication.
  for (SchedulingPolicy policy :
       {SchedulingPolicy::kFifo, SchedulingPolicy::kShortestEstimatedFirst,
        SchedulingPolicy::kDeadlineAware}) {
    KeyStream keys;
    std::vector<ReadyEntry> entries;
    for (size_t t = 0; t < 128; ++t) {
      ReadyEntry e;
      e.ticket = t;
      e.predicted_seconds = static_cast<double>(keys.Next(8)) * 0.125;
      e.deadline_seconds =
          keys.Next(2) == 0 ? 0 : static_cast<double>(1 + keys.Next(8)) * 0.25;
      entries.push_back(e);
    }
    ReadyQueue q(policy);
    for (const ReadyEntry& e : entries) q.Push(e);
    std::vector<ReadyEntry> ref = entries;
    std::sort(ref.begin(), ref.end(),
              [policy](const ReadyEntry& a, const ReadyEntry& b) {
                return SchedulesBefore(policy, a, b);
              });
    for (size_t k = 0; k < ref.size(); ++k) {
      EXPECT_EQ(q.PopNext().ticket, ref[k].ticket)
          << SchedulingPolicyName(policy) << " position " << k;
    }
    EXPECT_TRUE(q.empty());
  }
}

TEST(ServiceSchedulerTest, InterleavedPushPopAlwaysPopsThePolicyMinimum) {
  // Pops interleaved with pushes (the async executor's live shape, which
  // the old drain-only argmin scan never saw): every pop must still be
  // the SchedulesBefore-minimum of the queue's current contents.
  KeyStream keys;
  ReadyQueue q(SchedulingPolicy::kShortestEstimatedFirst);
  std::vector<ReadyEntry> live;  // reference multiset of current contents
  size_t next_ticket = 0;
  auto push_one = [&]() {
    ReadyEntry e;
    e.ticket = next_ticket++;
    e.predicted_seconds = static_cast<double>(keys.Next(6)) * 0.25;
    q.Push(e);
    live.push_back(e);
  };
  auto pop_one = [&]() {
    auto min_it = std::min_element(
        live.begin(), live.end(), [](const ReadyEntry& a, const ReadyEntry& b) {
          return SchedulesBefore(SchedulingPolicy::kShortestEstimatedFirst, a,
                                 b);
        });
    EXPECT_EQ(q.PopNext().ticket, min_it->ticket);
    live.erase(min_it);
  };
  for (int round = 0; round < 40; ++round) {
    const uint64_t pushes = 1 + keys.Next(4);
    for (uint64_t i = 0; i < pushes; ++i) push_one();
    const uint64_t pops = keys.Next(static_cast<uint64_t>(live.size()) + 1);
    for (uint64_t i = 0; i < pops; ++i) pop_one();
    EXPECT_EQ(q.size(), live.size());
  }
  while (!live.empty()) pop_one();
  EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------------------
// Service value semantics: the constructor aliases the service's own
// members (admission → &tracker_, cache policy ctx →
// &options_.cache_admission_threshold_seconds), so a copied or moved
// service would read another object's freed or stale state through those
// pointers. The special members are explicitly deleted; these asserts
// make any future "just make it movable" change a test failure with this
// explanation attached.

TEST(ServiceValueSemanticsTest, CompileServiceIsNeitherCopyableNorMovable) {
  static_assert(!std::is_copy_constructible_v<CompileService>,
                "CompileService self-aliases; copying would alias another "
                "object's members");
  static_assert(!std::is_copy_assignable_v<CompileService>,
                "CompileService self-aliases; copy-assignment is unsound");
  static_assert(!std::is_move_constructible_v<CompileService>,
                "CompileService self-aliases; a moved-from service would "
                "leave dangling admission/cache-policy pointers");
  static_assert(!std::is_move_assignable_v<CompileService>,
                "CompileService self-aliases; move-assignment is unsound");
  SUCCEED();
}

// ---------------------------------------------------------------------------
// The shared trip predicate: every execution path (Run, CompileBatch, the
// async executor) feeds the tracker through exactly IsBudgetTrip.

TEST(ServiceTripPredicateTest, StatusPredicateMatchesBudgetTripCodes) {
  EXPECT_TRUE(IsBudgetTripStatus(Status::DeadlineExceeded("budget")));
  EXPECT_TRUE(IsBudgetTripStatus(Status::ResourceExhausted("budget")));
  EXPECT_FALSE(IsBudgetTripStatus(Status::OK()));
  EXPECT_FALSE(IsBudgetTripStatus(Status::Internal("unrelated failure")));
  EXPECT_FALSE(IsBudgetTripStatus(Status::InvalidArgument("bad query")));
}

TEST(ServiceTripPredicateTest, AnyEvidenceChannelCountsAsATrip) {
  EXPECT_FALSE(IsBudgetTrip(false, Status::OK(), false));
  // Each channel alone is sufficient — in particular the observer-only
  // case (a trip reported through stage events with no degraded result to
  // carry it), which the pre-unification CompileBatch path dropped.
  EXPECT_TRUE(IsBudgetTrip(true, Status::OK(), false));
  EXPECT_TRUE(IsBudgetTrip(false, Status::DeadlineExceeded("budget"), false));
  EXPECT_TRUE(IsBudgetTrip(false, Status::OK(), true));
  // A non-budget failure is not trip evidence on its own.
  EXPECT_FALSE(IsBudgetTrip(false, Status::Internal("unrelated"), false));
}

// ---------------------------------------------------------------------------
// Trip-rate tracker.

TEST(ServiceTripTrackerTest, WidensAfterTrippyWindowAndCapsAtMax) {
  TripTrackerOptions o;
  o.min_samples = 4;
  o.trip_rate_threshold = 0.5;
  o.widen_factor = 2.0;
  o.max_multiplier = 4.0;
  TripRateTracker tracker(o);
  EXPECT_DOUBLE_EQ(tracker.HeadroomMultiplier(10), 1.0);
  // First window: 3/4 tripped > 0.5 → ×2.
  for (int i = 0; i < 3; ++i) tracker.Record(10, true);
  tracker.Record(10, false);
  EXPECT_DOUBLE_EQ(tracker.HeadroomMultiplier(10), 2.0);
  // Second trippy window → ×2 again; third is capped at max_multiplier.
  for (int i = 0; i < 4; ++i) tracker.Record(10, true);
  EXPECT_DOUBLE_EQ(tracker.HeadroomMultiplier(10), 4.0);
  for (int i = 0; i < 4; ++i) tracker.Record(10, true);
  EXPECT_DOUBLE_EQ(tracker.HeadroomMultiplier(10), 4.0);
}

TEST(ServiceTripTrackerTest, QuietWindowDoesNotWiden) {
  TripTrackerOptions o;
  o.min_samples = 4;
  o.trip_rate_threshold = 0.5;
  TripRateTracker tracker(o);
  // Exactly at the threshold (2/4) does not widen — only exceeding it does.
  tracker.Record(3, true);
  tracker.Record(3, true);
  tracker.Record(3, false);
  tracker.Record(3, false);
  EXPECT_DOUBLE_EQ(tracker.HeadroomMultiplier(3), 1.0);
}

TEST(ServiceTripTrackerTest, ReactsPerWindowNotPerLifetimeRate) {
  // 4 early trips widen once; a long quiet stretch afterwards never widens
  // again even though the lifetime rate stays above zero.
  TripTrackerOptions o;
  o.min_samples = 4;
  TripRateTracker tracker(o);
  for (int i = 0; i < 4; ++i) tracker.Record(5, true);
  EXPECT_DOUBLE_EQ(tracker.HeadroomMultiplier(5), 2.0);
  for (int i = 0; i < 16; ++i) tracker.Record(5, false);
  EXPECT_DOUBLE_EQ(tracker.HeadroomMultiplier(5), 2.0);
}

TEST(ServiceTripTrackerTest, SnapshotListsOnlyObservedClassesAndClamps) {
  TripRateTracker tracker;
  tracker.Record(2, true);
  tracker.Record(-7, false);   // clamps to class 0
  tracker.Record(1000, false); // clamps to kMaxClass
  auto snap = tracker.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].query_class, 0);
  EXPECT_EQ(snap[1].query_class, 2);
  EXPECT_EQ(snap[1].tripped, 1);
  EXPECT_EQ(snap[2].query_class, TripRateTracker::kMaxClass);
}

// ---------------------------------------------------------------------------
// Open-loop arrival traces.

TEST(ServiceTraceTest, SameSeedSameTrace) {
  Workload w = LinearWorkload();
  std::vector<const QueryGraph*> pool;
  for (const QueryGraph& q : w.queries) pool.push_back(&q);
  ArrivalTraceOptions o;
  o.num_arrivals = 50;
  o.seed = 7;
  auto a = MakeOpenLoopTrace(pool, o);
  auto b = MakeOpenLoopTrace(pool, o);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].query, b[i].query);
    EXPECT_EQ(a[i].arrival_seconds, b[i].arrival_seconds);
    EXPECT_EQ(a[i].deadline_seconds, b[i].deadline_seconds);
  }
  // Arrivals ascend (gaps are nonnegative) and some deadlines were dealt.
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_GE(a[i].arrival_seconds, a[i - 1].arrival_seconds);
  }
  EXPECT_TRUE(std::any_of(a.begin(), a.end(), [](const Submission& s) {
    return s.deadline_seconds > 0;
  }));
}

// ---------------------------------------------------------------------------
// End-to-end service runs under the virtual clock: determinism, policy
// behavior, feedback loops.

class ServiceVirtualTest : public ::testing::Test {
 protected:
  ServiceVirtualTest()
      : linear_(LinearWorkload()),
        star_(StarWorkload()),
        random_(RandomWorkload(13, 42)) {
    // ≤ 8-table queries keep the suite fast enough for the TSan cycle
    // while still spanning ~2 orders of magnitude in predicted cost —
    // all the heterogeneity the policy tests need.
    for (const QueryGraph& q : linear_.queries) {
      if (q.num_tables() <= 8) pool_.push_back(&q);
    }
    for (const QueryGraph& q : star_.queries) {
      if (q.num_tables() <= 8) pool_.push_back(&q);
    }
    for (const QueryGraph& q : random_.queries) {
      if (q.num_tables() <= 8) pool_.push_back(&q);
    }
  }

  /// The shared overloaded mixed stream: mean predicted service time is
  /// far above the mean gap, so a queue builds and policy decides who
  /// waits.
  std::vector<Submission> MixedTrace(int n = 60) const {
    ArrivalTraceOptions o;
    o.num_arrivals = n;
    o.mean_gap_seconds = 0.0005;
    o.seed = 42;
    return MakeOpenLoopTrace(pool_, o);
  }

  Workload linear_, star_, random_;
  std::vector<const QueryGraph*> pool_;
};

TEST_F(ServiceVirtualTest, RunsAreBitIdentical) {
  const std::vector<Submission> trace = MixedTrace();
  CompileServiceOptions options = DeterministicOptions();
  options.policy = SchedulingPolicy::kShortestEstimatedFirst;
  options.num_workers = 2;

  VirtualClock clock_a, clock_b;
  CompileServiceOptions oa = options, ob = options;
  oa.clock = &clock_a;
  oa.drive_clock = &clock_a;
  ob.clock = &clock_b;
  ob.drive_clock = &clock_b;
  CompileService a(oa), b(ob);
  ServiceReport ra = a.Run(trace);
  ServiceReport rb = b.Run(trace);

  ASSERT_EQ(ra.records.size(), trace.size());
  ASSERT_EQ(ra.records.size(), rb.records.size());
  for (size_t i = 0; i < ra.records.size(); ++i) {
    const ServiceQueryRecord& x = ra.records[i];
    const ServiceQueryRecord& y = rb.records[i];
    // Bit-identical dispatch order and policy decisions.
    EXPECT_EQ(x.ticket, y.ticket) << i;
    EXPECT_EQ(x.worker, y.worker) << i;
    EXPECT_EQ(x.start_seconds, y.start_seconds) << i;
    EXPECT_EQ(x.finish_seconds, y.finish_seconds) << i;
    EXPECT_EQ(x.predicted_seconds, y.predicted_seconds) << i;
    EXPECT_EQ(x.cache_hit, y.cache_hit) << i;
    EXPECT_EQ(x.estimated, y.estimated) << i;
    EXPECT_EQ(x.cache_inserted, y.cache_inserted) << i;
    EXPECT_EQ(x.degraded, y.degraded) << i;
    EXPECT_EQ(x.limits.deadline_seconds, y.limits.deadline_seconds) << i;
    EXPECT_EQ(x.limits.max_plans, y.limits.max_plans) << i;
    EXPECT_EQ(x.headroom_multiplier, y.headroom_multiplier) << i;
    EXPECT_TRUE(x.status.ok()) << x.status.ToString();
  }
  EXPECT_EQ(ra.makespan_seconds, rb.makespan_seconds);
  EXPECT_EQ(ra.cache_hits, rb.cache_hits);
  EXPECT_EQ(ra.estimates, rb.estimates);
  // The driven clock followed the simulated timeline to its end.
  EXPECT_DOUBLE_EQ(clock_a.NowSeconds(), ra.makespan_seconds);
}

TEST_F(ServiceVirtualTest, ShortestFirstImprovesP95OverFifo) {
  const std::vector<Submission> trace = MixedTrace();
  auto run_policy = [&](SchedulingPolicy policy) {
    CompileServiceOptions o = DeterministicOptions();
    o.policy = policy;
    CompileService service(o);
    return service.Run(trace);
  };
  ServiceReport fifo = run_policy(SchedulingPolicy::kFifo);
  ServiceReport sjf = run_policy(SchedulingPolicy::kShortestEstimatedFirst);
  // Same stream, same total work — only who waits changes.
  EXPECT_DOUBLE_EQ(fifo.makespan_seconds, sjf.makespan_seconds);
  EXPECT_LT(sjf.P95QueueSeconds(), fifo.P95QueueSeconds());
  EXPECT_LT(sjf.MeanQueueSeconds(), fifo.MeanQueueSeconds());
}

TEST_F(ServiceVirtualTest, DeadlineAwareDispatchesEarliestDeadlineFirst) {
  // Six simultaneous arrivals, one server: EDF must run the deadlines in
  // order and park the deadline-less submissions at the back, FIFO.
  const QueryGraph* q = pool_[0];
  std::vector<Submission> subs(6);
  for (size_t i = 0; i < subs.size(); ++i) subs[i].query = q;
  subs[1].deadline_seconds = 0.5;
  subs[3].deadline_seconds = 0.2;
  subs[5].deadline_seconds = 0.1;
  CompileServiceOptions o = DeterministicOptions();
  o.policy = SchedulingPolicy::kDeadlineAware;
  CompileService service(o);
  ServiceReport r = service.Run(subs);
  std::vector<size_t> order;
  for (const ServiceQueryRecord& rec : r.records) order.push_back(rec.ticket);
  EXPECT_EQ(order, (std::vector<size_t>{5, 3, 1, 0, 2, 4}));
}

TEST_F(ServiceVirtualTest, TripFeedbackWidensBudgetsUntilTheClassStopsTripping) {
  // Deliberately under-derived budgets: headroom 0.5 means every compile
  // of the 8-table star query gets a plan cap below its own (accurate)
  // estimate and trips. The tracker must widen the class until the
  // derived budget clears the real cost.
  const QueryGraph& q = star_.queries[7];
  // Spaced arrivals so each admission happens after the previous dispatch
  // and sees the tracker's latest multiplier.
  std::vector<Submission> subs(12);
  for (size_t i = 0; i < subs.size(); ++i) {
    subs[i].query = &q;
    subs[i].arrival_seconds = static_cast<double>(i);
  }

  CompileServiceOptions o = DeterministicOptions();
  o.enable_cache = false;  // cache hits would skip estimation (and caps)
  o.admission.limits_policy.headroom = 0.5;
  o.trip_tracker.min_samples = 2;
  o.trip_tracker.trip_rate_threshold = 0.4;
  CompileService service(o);
  ServiceReport r = service.Run(subs);

  EXPECT_GT(r.degraded, 0);                   // early compiles tripped
  EXPECT_FALSE(r.records.back().degraded);    // widened budget stopped it
  EXPECT_GT(r.records.back().headroom_multiplier, 1.0);
  ASSERT_EQ(r.class_feedback.size(), 1u);
  EXPECT_EQ(r.class_feedback[0].query_class, ServiceQueryClass(q));
  EXPECT_GT(r.class_feedback[0].multiplier, 1.0);
  EXPECT_GT(r.class_feedback[0].tripped, 0);
  // Every compile was armed (derive_limits on, no cache path).
  EXPECT_EQ(r.class_feedback[0].armed, static_cast<int64_t>(subs.size()));
}

TEST_F(ServiceVirtualTest, RunAndBatchTrackerFeedbackAgreeOnATrippingBurst) {
  // Regression for the predicate split: Run counted observer-reported
  // trips while CompileBatch derived trips from degraded/status only.
  // Both paths now share IsBudgetTrip, so the same tripping burst must
  // leave two fresh services with identical per-query trip evidence and
  // an identical tracker snapshot. kFifo + simultaneous arrivals make
  // Run's record order equal CompileBatch's input order, so the tracker
  // sees the same Record sequence in both.
  const QueryGraph& q = star_.queries[7];
  std::vector<const QueryGraph*> queries(8, &q);
  std::vector<Submission> subs(queries.size());
  for (Submission& s : subs) s.query = &q;

  auto make_options = [] {
    CompileServiceOptions o = DeterministicOptions();
    o.enable_cache = false;  // cache hits would skip estimation (and caps)
    o.policy = SchedulingPolicy::kFifo;
    o.admission.limits_policy.headroom = 0.5;  // under-derived: trips
    o.trip_tracker.min_samples = 2;
    return o;
  };
  CompileService run_service(make_options());
  CompileService batch_service(make_options());
  ServiceReport run_report = run_service.Run(subs);
  ServiceBatchResult batch = batch_service.CompileBatch(queries);

  ASSERT_EQ(run_report.records.size(), queries.size());
  ASSERT_EQ(batch.traces.size(), queries.size());
  int64_t trips = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const ServiceQueryRecord& rec = run_report.records[i];
    ASSERT_EQ(rec.ticket, i);  // kFifo burst: dispatch order = input order
    const bool batch_degraded = batch.results[i].ok()
                                    ? batch.results[i]->degraded
                                    : false;
    EXPECT_EQ(rec.degraded, batch_degraded) << i;
    EXPECT_EQ(rec.budget_tripped, batch.traces[i].budget_tripped) << i;
    EXPECT_EQ(rec.stage_events, batch.traces[i].events) << i;
    if (IsBudgetTrip(rec.degraded, rec.status, rec.budget_tripped)) ++trips;
  }
  EXPECT_GT(trips, 0) << "workload must actually trip to test the predicate";

  auto run_snap = run_service.tracker().Snapshot();
  auto batch_snap = batch_service.tracker().Snapshot();
  ASSERT_EQ(run_snap.size(), 1u);
  ASSERT_EQ(batch_snap.size(), 1u);
  EXPECT_EQ(run_snap[0].query_class, batch_snap[0].query_class);
  EXPECT_EQ(run_snap[0].armed, batch_snap[0].armed);
  EXPECT_EQ(run_snap[0].tripped, batch_snap[0].tripped);
  EXPECT_DOUBLE_EQ(run_snap[0].multiplier, batch_snap[0].multiplier);
}

// ---------------------------------------------------------------------------
// Simulated-timeline edge cases: idle gaps and saturation. All under
// kEstimate + the virtual clock, so every assertion is exact.

class ServiceTimelineTest : public ::testing::Test {
 protected:
  ServiceTimelineTest() : linear_(LinearWorkload()) {}

  /// One submission of the (cheap, fixed) reference query at `arrival`.
  Submission At(double arrival) const {
    Submission s;
    s.query = &linear_.queries[2];
    s.arrival_seconds = arrival;
    return s;
  }

  static void CheckInvariants(const ServiceReport& r) {
    double max_finish = 0;
    for (const ServiceQueryRecord& rec : r.records) {
      EXPECT_GE(rec.start_seconds, rec.arrival_seconds) << rec.ticket;
      EXPECT_GE(rec.queue_seconds, 0) << rec.ticket;
      EXPECT_DOUBLE_EQ(rec.queue_seconds,
                       rec.start_seconds - rec.arrival_seconds)
          << rec.ticket;
      EXPECT_DOUBLE_EQ(rec.finish_seconds,
                       rec.start_seconds + rec.service_seconds)
          << rec.ticket;
      max_finish = std::max(max_finish, rec.finish_seconds);
    }
    EXPECT_DOUBLE_EQ(r.makespan_seconds, max_finish);
  }

  Workload linear_;
};

TEST_F(ServiceTimelineTest, ArrivalAfterLongIdleGapStartsAtItsArrival) {
  // A burst, then nothing for ~1000 virtual seconds, then a second burst:
  // the idle server must jump its clock to the late arrivals instead of
  // back-dating their starts (predicted service here is ≪ 1s, so the
  // first burst is long finished).
  std::vector<Submission> subs;
  for (int i = 0; i < 3; ++i) subs.push_back(At(0));
  for (int i = 0; i < 3; ++i) subs.push_back(At(1000.0));
  CompileService service(DeterministicOptions());
  ServiceReport r = service.Run(subs);
  ASSERT_EQ(r.records.size(), subs.size());
  CheckInvariants(r);
  // The first post-gap dispatch starts exactly at its arrival: no queue
  // wait was invented across the idle gap.
  const ServiceQueryRecord& first_late = r.records[3];
  EXPECT_EQ(first_late.ticket, 3u);
  EXPECT_DOUBLE_EQ(first_late.start_seconds, 1000.0);
  EXPECT_DOUBLE_EQ(first_late.queue_seconds, 0.0);
  EXPECT_GE(r.makespan_seconds, 1000.0);
}

TEST_F(ServiceTimelineTest, MidRunEmptyQueueJumpsToNextArrival) {
  // One cheap query at t=0, the next at t=5: after the first compile the
  // queue is empty mid-run, and the dispatch loop must advance the idle
  // server to t=5 (not spin or dispatch early).
  std::vector<Submission> subs = {At(0), At(5.0), At(5.0)};
  CompileService service(DeterministicOptions());
  ServiceReport r = service.Run(subs);
  ASSERT_EQ(r.records.size(), subs.size());
  CheckInvariants(r);
  EXPECT_LT(r.records[0].finish_seconds, 5.0);
  EXPECT_DOUBLE_EQ(r.records[1].start_seconds, 5.0);
  EXPECT_DOUBLE_EQ(r.records[1].queue_seconds, 0.0);
  // The third submission arrived with the second and waits behind it on
  // the single server.
  EXPECT_DOUBLE_EQ(r.records[2].start_seconds,
                   r.records[1].finish_seconds);
}

TEST_F(ServiceTimelineTest, SingleWorkerSaturatedStreamRunsBackToBack) {
  // Everything arrives at once on one server: starts chain exactly
  // (start[k] = finish[k-1]), queue waits grow monotonically, and the
  // makespan is the sum of the service times.
  std::vector<Submission> subs(10, At(0));
  CompileService service(DeterministicOptions());
  ServiceReport r = service.Run(subs);
  ASSERT_EQ(r.records.size(), subs.size());
  CheckInvariants(r);
  double sum = 0;
  for (size_t k = 0; k < r.records.size(); ++k) {
    if (k > 0) {
      EXPECT_DOUBLE_EQ(r.records[k].start_seconds,
                       r.records[k - 1].finish_seconds);
      EXPECT_GE(r.records[k].queue_seconds, r.records[k - 1].queue_seconds);
    }
    sum += r.records[k].service_seconds;
  }
  EXPECT_DOUBLE_EQ(r.makespan_seconds, sum);
}

// ---------------------------------------------------------------------------
// Cache interaction: signature hits skip estimation; the threshold gates
// admission.

class ServiceCacheTest : public ::testing::Test {
 protected:
  ServiceCacheTest() : linear_(LinearWorkload()) {}
  Workload linear_;
};

TEST_F(ServiceCacheTest, SignatureHitSkipsEstimationEntirely) {
  // Spaced arrivals: each one is admitted after the previous dispatch has
  // finished (predicted service ≪ 1s), so repeats find the cache warm.
  // Simultaneous arrivals would all admit before the first compile and
  // legitimately all miss.
  std::vector<Submission> subs(5);
  for (size_t i = 0; i < subs.size(); ++i) {
    subs[i].query = &linear_.queries[0];
    subs[i].arrival_seconds = static_cast<double>(i);
  }
  CompileService service(DeterministicOptions());
  ServiceReport r = service.Run(subs);
  EXPECT_EQ(r.estimates, 1);       // only the first arrival estimated
  EXPECT_EQ(r.cache_hits, 4);
  EXPECT_EQ(r.cache_insertions, 1);
  EXPECT_EQ(r.cache_stats.hits, 4);
  EXPECT_EQ(r.cache_stats.misses, 1);
  EXPECT_EQ(r.cache_stats.size, 1);
  // Cache-hit admissions predicted from the cached seconds, didn't
  // estimate, and got deadline-only limits (no count caps to derive).
  const ServiceQueryRecord& hit = r.records[1];
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_FALSE(hit.estimated);
  EXPECT_EQ(hit.limits.max_plans, 0);
  EXPECT_GT(hit.limits.deadline_seconds, 0);
}

TEST_F(ServiceCacheTest, ZeroThresholdAdmitsEverything) {
  std::vector<Submission> subs(3);
  for (size_t i = 0; i < subs.size(); ++i) subs[i].query = &linear_.queries[i];
  CompileServiceOptions o = DeterministicOptions();
  o.cache_admission_threshold_seconds = 0;
  CompileService service(o);
  ServiceReport r = service.Run(subs);
  EXPECT_EQ(r.cache_insertions, 3);
  EXPECT_EQ(r.cache_stats.admission_rejections, 0);
}

TEST_F(ServiceCacheTest, HugeThresholdCachesNothingAndKeepsEstimating) {
  std::vector<Submission> subs(4);
  for (size_t i = 0; i < subs.size(); ++i) subs[i].query = &linear_.queries[0];
  CompileServiceOptions o = DeterministicOptions();
  o.cache_admission_threshold_seconds = 1e9;
  CompileService service(o);
  ServiceReport r = service.Run(subs);
  // Nothing ever earns a slot, so every repeat misses and re-estimates.
  EXPECT_EQ(r.cache_insertions, 0);
  EXPECT_EQ(r.cache_hits, 0);
  EXPECT_EQ(r.estimates, 4);
  EXPECT_EQ(r.cache_stats.admission_rejections, 4);
  EXPECT_EQ(r.cache_stats.size, 0);
}

// ---------------------------------------------------------------------------
// Closed-loop batch: the policy orders, the pool's real threads compile
// under per-query limits (the concurrent surface the TSan gate races).

class ServicePoolTest : public ::testing::Test {
 protected:
  ServicePoolTest() : linear_(LinearWorkload()), random_(RandomWorkload(13, 42)) {
    // ≤ 8-table queries: enough cost spread to exercise the SJF schedule
    // while keeping this suite cheap under the TSan cycle.
    for (const QueryGraph& q : linear_.queries) {
      if (q.num_tables() <= 8) queries_.push_back(&q);
    }
    for (const QueryGraph& q : random_.queries) {
      if (q.num_tables() <= 8) queries_.push_back(&q);
    }
  }
  Workload linear_, random_;
  std::vector<const QueryGraph*> queries_;
};

TEST_F(ServicePoolTest, BatchMatchesSerialReferenceInInputOrder) {
  CompileServiceOptions o = DeterministicOptions();
  o.num_workers = 4;
  o.policy = SchedulingPolicy::kShortestEstimatedFirst;
  CompileService service(o);
  ServiceBatchResult batch = service.CompileBatch(queries_);
  ASSERT_EQ(batch.results.size(), queries_.size());
  ASSERT_EQ(batch.schedule.size(), queries_.size());

  // Serial reference: same per-query derived limits, one session.
  CompilationSession serial(SmallOptions());
  for (size_t i = 0; i < queries_.size(); ++i) {
    ASSERT_TRUE(batch.results[i].ok()) << i;
    auto ref = serial.Optimize(*queries_[i], batch.admissions[i].limits);
    ASSERT_TRUE(ref.ok()) << i;
    EXPECT_DOUBLE_EQ(batch.results[i]->stats.best_cost, ref->stats.best_cost)
        << i;
    EXPECT_EQ(batch.results[i]->stats.memo_entries, ref->stats.memo_entries)
        << i;
    EXPECT_EQ(batch.results[i]->degraded, ref->degraded) << i;
  }
}

TEST_F(ServicePoolTest, ScheduleFollowsShortestEstimatedFirst) {
  CompileServiceOptions o = DeterministicOptions();
  o.num_workers = 2;
  o.policy = SchedulingPolicy::kShortestEstimatedFirst;
  CompileService service(o);
  ServiceBatchResult batch = service.CompileBatch(queries_);
  for (size_t k = 1; k < batch.schedule.size(); ++k) {
    const double prev =
        batch.admissions[batch.schedule[k - 1]].predicted_seconds;
    const double cur = batch.admissions[batch.schedule[k]].predicted_seconds;
    EXPECT_LE(prev, cur) << "schedule position " << k;
  }
}

TEST_F(ServicePoolTest, RepeatBatchHitsTheCacheInsteadOfEstimating) {
  CompileServiceOptions o = DeterministicOptions();
  o.num_workers = 2;
  CompileService service(o);
  ServiceBatchResult first = service.CompileBatch(queries_);
  EXPECT_EQ(first.cache_hits, 0);
  EXPECT_EQ(first.estimates, static_cast<int64_t>(queries_.size()));
  ServiceBatchResult second = service.CompileBatch(queries_);
  EXPECT_EQ(second.cache_hits, static_cast<int64_t>(queries_.size()));
  EXPECT_EQ(second.estimates, 0);
}

// ---------------------------------------------------------------------------
// LimitsPolicy: the shared derivation the admission stage and the
// meta-optimizer both use.

TEST(ServiceLimitsPolicyTest, DeriveMatchesMetaOptimizerRule) {
  CompileTimeEstimate est;
  est.estimated_seconds = 0.25;
  est.enumeration.entries_created = 1000;
  est.plan_estimates.counts[0] = 4000;
  est.completion_plans = 500;
  LimitsPolicy policy;  // headroom 8, the MetaOptimizerOptions default
  ResourceLimits limits = policy.Derive(est);
  EXPECT_DOUBLE_EQ(limits.deadline_seconds, 2.0);
  EXPECT_EQ(limits.max_memo_entries, 8000);
  EXPECT_EQ(limits.max_plans, 36000);

  // Floors hold for a near-zero estimate.
  ResourceLimits floors = policy.Derive(CompileTimeEstimate{});
  EXPECT_DOUBLE_EQ(floors.deadline_seconds, 1e-3);
  EXPECT_EQ(floors.max_memo_entries, 64);
  EXPECT_EQ(floors.max_plans, 256);

  // extra_headroom composes multiplicatively (the tracker's hook).
  ResourceLimits widened = policy.Derive(est, 2.0);
  EXPECT_DOUBLE_EQ(widened.deadline_seconds, 4.0);
  EXPECT_EQ(widened.max_memo_entries, 16000);
}

TEST(ServiceLimitsPolicyTest, DeriveFromSecondsIsDeadlineOnly) {
  LimitsPolicy policy;
  ResourceLimits limits = policy.DeriveFromSeconds(0.5);
  EXPECT_DOUBLE_EQ(limits.deadline_seconds, 4.0);
  EXPECT_EQ(limits.max_memo_entries, 0);
  EXPECT_EQ(limits.max_plans, 0);
  EXPECT_DOUBLE_EQ(policy.DeriveFromSeconds(0.0).deadline_seconds, 1e-3);
}

TEST(ServiceLimitsPolicyTest, DerivePatienceIsEstimateScaledWithFloor) {
  LimitsPolicy policy;
  // Default factor 0: patience disabled, everything waits forever.
  EXPECT_DOUBLE_EQ(policy.DerivePatience(1.0), 0.0);
  policy.patience_factor = 4.0;
  EXPECT_DOUBLE_EQ(policy.DerivePatience(0.5), 2.0);
  // The floor keeps near-zero estimates from expiring instantly.
  EXPECT_DOUBLE_EQ(policy.DerivePatience(0.0), policy.min_patience_seconds);
}

// ---------------------------------------------------------------------------
// Overload vocabulary: tiers, outcomes, transient classification, limit
// halving (src/service/outcome.h).

TEST(ServiceOutcomeTest, NamesCoverEveryTierAndBucket) {
  EXPECT_STREQ(ServiceTierName(ServiceTier::kFull), "full");
  EXPECT_STREQ(ServiceTierName(ServiceTier::kBudgetHalved), "budget-halved");
  EXPECT_STREQ(ServiceTierName(ServiceTier::kGreedyOnly), "greedy-only");
  EXPECT_STREQ(ServiceTierName(ServiceTier::kShed), "shed");
  EXPECT_STREQ(ServiceOutcomeName(ServiceOutcome::kServedFull), "served-full");
  EXPECT_STREQ(ServiceOutcomeName(ServiceOutcome::kServedDegraded),
               "served-degraded");
  EXPECT_STREQ(ServiceOutcomeName(ServiceOutcome::kShedQueueFull),
               "shed-queue-full");
  EXPECT_STREQ(ServiceOutcomeName(ServiceOutcome::kShedExpired),
               "shed-expired");
  EXPECT_STREQ(ServiceOutcomeName(ServiceOutcome::kFailedPermanent),
               "failed-permanent");
}

TEST(ServiceOutcomeTest, TransientCodesAreExactlyTheRetryableOnes) {
  EXPECT_TRUE(IsTransientFailure(StatusCode::kInternal));
  EXPECT_TRUE(IsTransientFailure(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(IsTransientFailure(StatusCode::kResourceExhausted));
  // A shed is a decision, a cancel is an order: neither earns a retry.
  EXPECT_FALSE(IsTransientFailure(StatusCode::kUnavailable));
  EXPECT_FALSE(IsTransientFailure(StatusCode::kCancelled));
  EXPECT_FALSE(IsTransientFailure(StatusCode::kOk));
  EXPECT_FALSE(IsTransientFailure(StatusCode::kInvalidArgument));
}

TEST(ServiceOutcomeTest, HalveLimitsHalvesFiniteCapsAndKeepsThemPositive) {
  ResourceLimits limits;
  limits.deadline_seconds = 3.0;
  limits.max_memo_entries = 100;
  limits.max_plans = 1;
  limits.on_trip = BudgetAction::kFail;
  ResourceLimits half = HalveLimits(limits);
  EXPECT_DOUBLE_EQ(half.deadline_seconds, 1.5);
  EXPECT_EQ(half.max_memo_entries, 50);
  EXPECT_EQ(half.max_plans, 1);  // floor: a cap never halves to zero
  EXPECT_EQ(half.on_trip, BudgetAction::kFail);
  // Unlimited (0) axes stay unlimited: halving "no cap" must not
  // accidentally manufacture a cap.
  ResourceLimits open = HalveLimits(ResourceLimits());
  EXPECT_TRUE(open.Unlimited());
}

TEST(ServiceOutcomeTest, TaxonomyTotalsItsFiveTerminalBuckets) {
  OutcomeTaxonomy t;
  t.served_full = 3;
  t.served_degraded = 2;
  t.shed_queue_full = 4;
  t.shed_expired = 1;
  t.failed_permanent = 5;
  t.retried = 7;  // attempts, not tickets: excluded from the total
  EXPECT_EQ(t.TotalTickets(), 15);
}

TEST(ServiceOutcomeTest, ClassifyRecordBucketsByStatusThenTierThenDegraded) {
  ServiceQueryRecord rec;
  EXPECT_EQ(ClassifyRecord(rec), ServiceOutcome::kServedFull);
  rec.tier = static_cast<int>(ServiceTier::kBudgetHalved);
  EXPECT_EQ(ClassifyRecord(rec), ServiceOutcome::kServedFull);
  rec.tier = static_cast<int>(ServiceTier::kGreedyOnly);
  EXPECT_EQ(ClassifyRecord(rec), ServiceOutcome::kServedDegraded);
  rec.tier = 0;
  rec.degraded = true;
  EXPECT_EQ(ClassifyRecord(rec), ServiceOutcome::kServedDegraded);
  rec.degraded = false;
  rec.status = Status::Internal("boom");
  EXPECT_EQ(ClassifyRecord(rec), ServiceOutcome::kFailedPermanent);
  rec.status = Status::DeadlineExceeded("patience ladder");
  rec.tier = static_cast<int>(ServiceTier::kShed);
  EXPECT_EQ(ClassifyRecord(rec), ServiceOutcome::kShedExpired);
  // Queue-full wins over everything: the ticket never entered the queue.
  rec.status = Status::Unavailable("queue full");
  EXPECT_EQ(ClassifyRecord(rec), ServiceOutcome::kShedQueueFull);
}

// ---------------------------------------------------------------------------
// Bounded ReadyQueue: Offer under each OverloadPolicy, O(1) depth/age
// accessors (DESIGN.md §16).

TEST(ServiceOverloadQueueTest, RejectRefusesTheIncomingWhenFull) {
  ReadyQueue q(SchedulingPolicy::kFifo, /*capacity=*/2, OverloadPolicy::kReject);
  EXPECT_TRUE(q.Offer(Entry(0, 1.0)).admitted);
  EXPECT_TRUE(q.Offer(Entry(1, 2.0)).admitted);
  EXPECT_TRUE(q.Full());
  OfferOutcome out = q.Offer(Entry(2, 0.5));
  EXPECT_FALSE(out.admitted);
  EXPECT_TRUE(out.shed_incoming);
  EXPECT_FALSE(out.shed_existing);
  EXPECT_EQ(out.shed.ticket, 2u);
  EXPECT_EQ(q.size(), 2u);
  // A pop frees the slot and the door reopens.
  q.PopNext();
  EXPECT_TRUE(q.Offer(Entry(3, 0.5)).admitted);
}

TEST(ServiceOverloadQueueTest, ShedLowestValueEvictsTheWorstQueuedEntry) {
  ReadyQueue q(SchedulingPolicy::kShortestEstimatedFirst, /*capacity=*/2,
               OverloadPolicy::kShedLowestValue);
  q.Offer(Entry(0, 5.0));  // the most expensive prediction: sheds first
  q.Offer(Entry(1, 1.0));
  OfferOutcome out = q.Offer(Entry(2, 2.0));
  EXPECT_TRUE(out.admitted);
  EXPECT_TRUE(out.shed_existing);
  EXPECT_EQ(out.shed.ticket, 0u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(Drain(&q), (std::vector<size_t>{1, 2}));
}

TEST(ServiceOverloadQueueTest, ShedLowestValueRefusesAnIncomingWorstOffer) {
  ReadyQueue q(SchedulingPolicy::kShortestEstimatedFirst, /*capacity=*/2,
               OverloadPolicy::kShedLowestValue);
  q.Offer(Entry(0, 5.0));
  q.Offer(Entry(1, 1.0));
  OfferOutcome out = q.Offer(Entry(2, 9.0));  // worse than everything queued
  EXPECT_FALSE(out.admitted);
  EXPECT_TRUE(out.shed_incoming);
  EXPECT_EQ(out.shed.ticket, 2u);
  EXPECT_EQ(Drain(&q), (std::vector<size_t>{1, 0}));
}

TEST(ServiceOverloadQueueTest, ShedValueBreaksTiesTowardDeadlinesAndAge) {
  // Equal predictions: the deadline-less entry sheds before the
  // deadline-carrying one, and among deadline-less the younger ticket
  // sheds first (the longest-waiting submission keeps its slot).
  ReadyQueue q(SchedulingPolicy::kFifo, /*capacity=*/2,
               OverloadPolicy::kShedLowestValue);
  q.Offer(Entry(0, 1.0));
  q.Offer(Entry(1, 1.0, /*deadline=*/0.5));
  OfferOutcome out = q.Offer(Entry(2, 1.0));
  // Ticket 2 is deadline-less and youngest: it is its own worst offer.
  EXPECT_TRUE(out.shed_incoming);
  out = q.Offer(Entry(3, 1.0, /*deadline=*/0.2));
  // Now the deadline-less ticket 0 is the lowest value in the queue.
  EXPECT_TRUE(out.shed_existing);
  EXPECT_EQ(out.shed.ticket, 0u);
}

TEST(ServiceOverloadQueueTest, BlockPolicyAdmitsPastCapacity) {
  // kBlock's Offer never sheds: bounding is the caller's protocol (the
  // async Submit blocks on space_cv_, the simulated Run defers admission).
  ReadyQueue q(SchedulingPolicy::kFifo, /*capacity=*/1, OverloadPolicy::kBlock);
  EXPECT_TRUE(q.Offer(Entry(0, 1.0)).admitted);
  EXPECT_TRUE(q.Full());
  EXPECT_TRUE(q.Offer(Entry(1, 1.0)).admitted);
  EXPECT_EQ(q.size(), 2u);
}

ReadyEntry AgedEntry(size_t ticket, double ready) {
  ReadyEntry e;
  e.ticket = ticket;
  e.ready_seconds = ready;
  return e;
}

TEST(ServiceOverloadQueueTest, DepthAndOldestAgeAreObservable) {
  ReadyQueue q(SchedulingPolicy::kFifo);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_DOUBLE_EQ(q.OldestEnqueueSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(q.OldestAgeSeconds(10.0), 0.0);
  q.Push(AgedEntry(0, 1.0));
  q.Push(AgedEntry(1, 2.0));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_DOUBLE_EQ(q.OldestEnqueueSeconds(), 1.0);
  EXPECT_DOUBLE_EQ(q.OldestAgeSeconds(5.0), 4.0);
  q.PopNext();  // FIFO: ticket 0, the oldest, leaves
  EXPECT_DOUBLE_EQ(q.OldestEnqueueSeconds(), 2.0);
  EXPECT_DOUBLE_EQ(q.OldestAgeSeconds(5.0), 3.0);
  q.PopNext();
  EXPECT_DOUBLE_EQ(q.OldestAgeSeconds(5.0), 0.0);
}

TEST(ServiceOverloadQueueTest, EnqueueStampsClampMonotone) {
  // A retry can re-enqueue with a ready_seconds *before* a later
  // admission's (its failing attempt started earlier). The age ring
  // clamps stamps monotone so "oldest" means longest *queued*, not
  // earliest ready.
  ReadyQueue q(SchedulingPolicy::kFifo);
  q.Push(AgedEntry(0, 5.0));
  q.Push(AgedEntry(1, 3.0));  // re-enqueued "in the past"
  EXPECT_DOUBLE_EQ(q.OldestEnqueueSeconds(), 5.0);
  q.PopNext();  // ticket 0
  // Ticket 1's stamp was clamped up to 5.0 at enqueue.
  EXPECT_DOUBLE_EQ(q.OldestEnqueueSeconds(), 5.0);
  EXPECT_DOUBLE_EQ(q.OldestAgeSeconds(6.0), 1.0);
}

TEST(ServiceOverloadQueueTest, AgeRingMatchesReferenceUnderChurn) {
  // Push/pop churn with policy-order (non-FIFO) removals: the lazy
  // dead-prefix reclamation and compaction must keep OldestEnqueueSeconds
  // equal to a brute-force reference at every step.
  KeyStream keys;
  ReadyQueue q(SchedulingPolicy::kShortestEstimatedFirst);
  std::vector<std::pair<size_t, double>> live;  // (ticket, enqueue stamp)
  size_t next_ticket = 0;
  double now = 0;
  auto reference_oldest = [&]() {
    double oldest = 0;
    bool any = false;
    for (const auto& p : live) {
      if (!any || p.second < oldest) oldest = p.second;
      any = true;
    }
    return oldest;
  };
  for (int step = 0; step < 600; ++step) {
    const bool push = live.empty() || keys.Next(3) != 0;
    if (push) {
      now += 0.25;
      ReadyEntry e;
      e.ticket = next_ticket++;
      e.ready_seconds = now;
      e.predicted_seconds = static_cast<double>(keys.Next(16)) * 0.125;
      q.Push(e);
      live.emplace_back(e.ticket, now);
    } else {
      const size_t popped = q.PopNext().ticket;
      live.erase(std::find_if(live.begin(), live.end(),
                              [popped](const std::pair<size_t, double>& p) {
                                return p.first == popped;
                              }));
    }
    ASSERT_EQ(q.size(), live.size()) << "step " << step;
    ASSERT_DOUBLE_EQ(q.OldestEnqueueSeconds(), reference_oldest())
        << "step " << step;
  }
}

// ---------------------------------------------------------------------------
// End-to-end overload behavior under the virtual clock: bounded
// admission, the queue-wait degradation ladder, bounded retry.

TEST_F(ServiceVirtualTest, RejectPolicyShedsBurstOverflowWithTypedRecords) {
  // Twelve simultaneous arrivals against capacity 2 and one worker: the
  // first two tickets fill the queue, the other ten shed at admission
  // with kUnavailable — and the service keeps serving what it admitted.
  std::vector<Submission> subs(12);
  for (Submission& s : subs) s.query = pool_[0];
  CompileServiceOptions o = DeterministicOptions();
  o.queue_capacity = 2;
  o.overload = OverloadPolicy::kReject;
  VirtualClock clock;
  o.clock = &clock;
  o.drive_clock = &clock;
  CompileService service(o);
  ServiceReport r = service.Run(subs);
  ASSERT_EQ(r.records.size(), subs.size());
  EXPECT_EQ(r.taxonomy.TotalTickets(), 12);
  EXPECT_EQ(r.taxonomy.served_full, 2);
  EXPECT_EQ(r.taxonomy.shed_queue_full, 10);
  for (const ServiceQueryRecord& rec : r.records) {
    if (rec.outcome == ServiceOutcome::kShedQueueFull) {
      EXPECT_EQ(rec.worker, -1);
      EXPECT_EQ(rec.status.code(), StatusCode::kUnavailable);
      EXPECT_DOUBLE_EQ(rec.queue_seconds, 0.0);  // shed at the door
    } else {
      EXPECT_TRUE(rec.status.ok()) << rec.status.ToString();
    }
  }
}

TEST_F(ServiceVirtualTest, BlockPolicyBackpressuresInsteadOfShedding) {
  // The same burst under kBlock: admission waits for queue slots, so
  // every ticket is eventually served and nothing sheds.
  std::vector<Submission> subs(12);
  for (Submission& s : subs) s.query = pool_[0];
  CompileServiceOptions o = DeterministicOptions();
  o.queue_capacity = 2;
  o.overload = OverloadPolicy::kBlock;
  VirtualClock clock;
  o.clock = &clock;
  o.drive_clock = &clock;
  CompileService service(o);
  ServiceReport r = service.Run(subs);
  ASSERT_EQ(r.records.size(), subs.size());
  EXPECT_EQ(r.taxonomy.served_full, 12);
  EXPECT_EQ(r.taxonomy.shed_queue_full, 0);
}

TEST_F(ServiceVirtualTest, ShedLowestValueKeepsTheCheapestPredictions) {
  // A heterogeneous simultaneous burst against capacity 2: whatever ends
  // up served must predict no more than anything shed — the estimate is
  // the admission currency.
  ASSERT_GE(pool_.size(), 12u);
  std::vector<Submission> subs(12);
  for (size_t i = 0; i < subs.size(); ++i) subs[i].query = pool_[i];
  CompileServiceOptions o = DeterministicOptions();
  o.queue_capacity = 2;
  o.overload = OverloadPolicy::kShedLowestValue;
  o.enable_cache = false;
  VirtualClock clock;
  o.clock = &clock;
  o.drive_clock = &clock;
  CompileService service(o);
  ServiceReport r = service.Run(subs);
  ASSERT_EQ(r.records.size(), subs.size());
  EXPECT_EQ(r.taxonomy.served_full, 2);
  EXPECT_EQ(r.taxonomy.shed_queue_full, 10);
  double max_served = 0, min_shed = 0;
  bool any_shed = false;
  for (const ServiceQueryRecord& rec : r.records) {
    if (rec.status.ok()) {
      max_served = std::max(max_served, rec.predicted_seconds);
    } else {
      min_shed = any_shed ? std::min(min_shed, rec.predicted_seconds)
                          : rec.predicted_seconds;
      any_shed = true;
    }
  }
  ASSERT_TRUE(any_shed);
  EXPECT_LE(max_served, min_shed);
}

TEST_F(ServiceVirtualTest, PatienceLadderDemotesThenExpiresQueuedWork) {
  // Five identical simultaneous submissions, one worker, FIFO: each
  // successive ticket waits one more service time. With patience 0.9x
  // the predicted seconds, the waits land at 0, ~1.1, ~2.2, ~3.3 patience
  // intervals — so the ladder serves full, budget-halved, greedy-only,
  // then sheds the rest, all on virtual-clock reads.
  std::vector<Submission> subs(5);
  for (Submission& s : subs) s.query = pool_[0];
  CompileServiceOptions o = DeterministicOptions();
  o.enable_cache = false;  // identical predictions for all five tickets
  o.admission.limits_policy.patience_factor = 0.9;
  o.admission.limits_policy.min_patience_seconds = 1e-12;
  VirtualClock clock;
  o.clock = &clock;
  o.drive_clock = &clock;
  CompileService service(o);
  ServiceReport r = service.Run(subs);
  ASSERT_EQ(r.records.size(), subs.size());

  // FIFO over a simultaneous burst commits records in ticket order.
  const double p = r.records[0].predicted_seconds;
  ASSERT_GT(p, 0);
  EXPECT_EQ(r.records[0].ticket, 0u);
  EXPECT_EQ(r.records[0].tier, static_cast<int>(ServiceTier::kFull));
  EXPECT_EQ(r.records[0].outcome, ServiceOutcome::kServedFull);

  EXPECT_EQ(r.records[1].tier, static_cast<int>(ServiceTier::kBudgetHalved));
  EXPECT_EQ(r.records[1].outcome, ServiceOutcome::kServedFull);
  EXPECT_TRUE(r.records[1].status.ok()) << r.records[1].status.ToString();
  // The halved budget is visible in the record: the derived 600s deadline
  // floor became 300s.
  EXPECT_DOUBLE_EQ(r.records[1].limits.deadline_seconds, 300.0);

  EXPECT_EQ(r.records[2].tier, static_cast<int>(ServiceTier::kGreedyOnly));
  EXPECT_EQ(r.records[2].outcome, ServiceOutcome::kServedDegraded);
  EXPECT_TRUE(r.records[2].status.ok()) << r.records[2].status.ToString();

  for (size_t i : {size_t{3}, size_t{4}}) {
    EXPECT_EQ(r.records[i].tier, static_cast<int>(ServiceTier::kShed)) << i;
    EXPECT_EQ(r.records[i].outcome, ServiceOutcome::kShedExpired) << i;
    EXPECT_EQ(r.records[i].status.code(), StatusCode::kDeadlineExceeded) << i;
    EXPECT_EQ(r.records[i].worker, -1) << i;
    // Expiry happens at dispatch time, after the last served finish.
    EXPECT_DOUBLE_EQ(r.records[i].start_seconds, r.records[i].finish_seconds)
        << i;
  }
  EXPECT_EQ(r.taxonomy.served_full, 2);
  EXPECT_EQ(r.taxonomy.served_degraded, 1);
  EXPECT_EQ(r.taxonomy.shed_expired, 2);
  EXPECT_EQ(r.taxonomy.retried, 0);
  // Makespan is the three served compiles back to back.
  EXPECT_DOUBLE_EQ(r.makespan_seconds, p + p + p);
  // p95 over served records only ignores the expired tail.
  EXPECT_LE(r.P95ServedQueueSeconds(), p + p);
}

/// Options whose derived caps sit at the floors (memo 64, plans 256) and
/// fail on trip: an 8-table star query blows the memo floor
/// deterministically, which is what the retry ladder needs — a transient
/// ResourceExhausted that greedy-only (budget disarmed) then survives.
CompileServiceOptions FloorCapFailOptions() {
  CompileServiceOptions o = DeterministicOptions();
  o.enable_cache = false;
  o.admission.limits_policy.headroom = 1e-6;
  o.admission.limits_policy.on_trip = BudgetAction::kFail;
  return o;
}

TEST_F(ServiceVirtualTest, TransientFailureRetriesDownTheLadderAndServes) {
  const QueryGraph* big = nullptr;
  for (const QueryGraph& q : star_.queries) {
    if (q.num_tables() == 8) big = &q;
  }
  ASSERT_NE(big, nullptr);
  std::vector<Submission> subs(1);
  subs[0].query = big;
  CompileServiceOptions o = FloorCapFailOptions();
  o.max_retries = 2;
  VirtualClock clock;
  o.clock = &clock;
  o.drive_clock = &clock;
  CompileService service(o);
  ServiceReport r = service.Run(subs);
  // Full DP trips the 64-entry memo floor, the halved retry trips 32,
  // greedy-only disarms the budget and completes: one terminal record,
  // two retry attempts folded in.
  ASSERT_EQ(r.records.size(), 1u);
  const ServiceQueryRecord& rec = r.records[0];
  EXPECT_TRUE(rec.status.ok()) << rec.status.ToString();
  EXPECT_EQ(rec.tier, static_cast<int>(ServiceTier::kGreedyOnly));
  EXPECT_EQ(rec.retries, 2);
  EXPECT_EQ(rec.outcome, ServiceOutcome::kServedDegraded);
  EXPECT_EQ(r.taxonomy.served_degraded, 1);
  EXPECT_EQ(r.taxonomy.retried, 2);
  EXPECT_EQ(r.taxonomy.TotalTickets(), 1);
  // Each attempt consumed worker time: the final start is two service
  // times after arrival.
  EXPECT_GT(rec.start_seconds, 0.0);
}

TEST_F(ServiceVirtualTest, ExhaustedRetryBudgetBecomesPermanentFailure) {
  const QueryGraph* big = nullptr;
  for (const QueryGraph& q : star_.queries) {
    if (q.num_tables() == 8) big = &q;
  }
  ASSERT_NE(big, nullptr);
  std::vector<Submission> subs(1);
  subs[0].query = big;
  CompileServiceOptions o = FloorCapFailOptions();
  o.max_retries = 0;
  VirtualClock clock;
  o.clock = &clock;
  o.drive_clock = &clock;
  CompileService service(o);
  ServiceReport r = service.Run(subs);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.records[0].outcome, ServiceOutcome::kFailedPermanent);
  EXPECT_EQ(r.records[0].retries, 0);
  EXPECT_EQ(r.taxonomy.failed_permanent, 1);
  EXPECT_EQ(r.taxonomy.retried, 0);
}

TEST_F(ServiceVirtualTest, OutcomeObserverSeesEveryTerminalRecordOnce) {
  struct Seen {
    std::vector<size_t> tickets;
    std::vector<ServiceOutcome> outcomes;
  } seen;
  std::vector<Submission> subs(6);
  for (Submission& s : subs) s.query = pool_[0];
  CompileServiceOptions o = DeterministicOptions();
  o.queue_capacity = 2;
  o.overload = OverloadPolicy::kReject;
  o.outcome_observer = [](void* ctx, const ServiceQueryRecord& rec) {
    auto* s = static_cast<Seen*>(ctx);
    s->tickets.push_back(rec.ticket);
    s->outcomes.push_back(rec.outcome);
  };
  o.outcome_observer_ctx = &seen;
  VirtualClock clock;
  o.clock = &clock;
  o.drive_clock = &clock;
  CompileService service(o);
  ServiceReport r = service.Run(subs);
  ASSERT_EQ(seen.tickets.size(), subs.size());
  // One observation per ticket, matching the committed records exactly.
  for (size_t i = 0; i < r.records.size(); ++i) {
    EXPECT_EQ(seen.tickets[i], r.records[i].ticket) << i;
    EXPECT_EQ(seen.outcomes[i], r.records[i].outcome) << i;
  }
}

TEST_F(ServiceVirtualTest, OverloadRunsAreBitIdenticalAndDefaultsUnchanged) {
  // The §16 determinism pin: a full overload configuration (bounded
  // queue, shedding, patience, retries) replays bit-identically under
  // the virtual clock.
  const std::vector<Submission> trace = MixedTrace(40);
  auto run_once = [&]() {
    CompileServiceOptions o = DeterministicOptions();
    o.policy = SchedulingPolicy::kShortestEstimatedFirst;
    o.num_workers = 2;
    o.queue_capacity = 4;
    o.overload = OverloadPolicy::kShedLowestValue;
    o.admission.limits_policy.patience_factor = 6.0;
    o.max_retries = 1;
    VirtualClock clock;
    o.clock = &clock;
    o.drive_clock = &clock;
    CompileService service(o);
    return service.Run(trace);
  };
  ServiceReport a = run_once();
  ServiceReport b = run_once();
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].ticket, b.records[i].ticket) << i;
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome) << i;
    EXPECT_EQ(a.records[i].tier, b.records[i].tier) << i;
    EXPECT_EQ(a.records[i].retries, b.records[i].retries) << i;
    EXPECT_EQ(a.records[i].start_seconds, b.records[i].start_seconds) << i;
    EXPECT_EQ(a.records[i].finish_seconds, b.records[i].finish_seconds) << i;
  }
  EXPECT_EQ(a.taxonomy.served_full, b.taxonomy.served_full);
  EXPECT_EQ(a.taxonomy.served_degraded, b.taxonomy.served_degraded);
  EXPECT_EQ(a.taxonomy.shed_queue_full, b.taxonomy.shed_queue_full);
  EXPECT_EQ(a.taxonomy.shed_expired, b.taxonomy.shed_expired);
  EXPECT_EQ(a.taxonomy.failed_permanent, b.taxonomy.failed_permanent);
  EXPECT_EQ(a.taxonomy.retried, b.taxonomy.retried);
  EXPECT_EQ(a.taxonomy.TotalTickets(), static_cast<int64_t>(trace.size()));
}

}  // namespace
}  // namespace cote
