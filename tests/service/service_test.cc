#include "service/compile_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/clock.h"
#include "service/arrival_trace.h"
#include "service/scheduler.h"
#include "service/trip_tracker.h"
#include "session/session.h"
#include "workload/workload.h"

// Fixture names deliberately contain "Service": tools/run_checks.sh's TSan
// gate runs `ctest -R 'Session|Service'`, and the closed-loop batch path
// below is exactly the concurrent surface that gate race-checks.

namespace cote {
namespace {

OptimizerOptions SmallOptions() {
  OptimizerOptions o;
  o.enumeration.max_composite_inner = 3;
  return o;
}

/// Synthetic per-plan coefficients: predictions scale with plan counts, so
/// queries of different sizes get genuinely different predicted seconds —
/// what the SJF and threshold tests need — without calibrating a model.
TimeModel SyntheticModel() {
  TimeModel model;
  model.ct[0] = 2e-6;
  model.ct[1] = 1e-6;
  model.ct[2] = 1.5e-6;
  model.intercept = 1e-5;
  return model;
}

/// Service options whose scheduling decisions are fully deterministic: the
/// timeline runs on predicted seconds, and the derived deadline floor is
/// far above any real compile in this suite so no wall-clock trip can
/// sneak nondeterminism into the records.
CompileServiceOptions DeterministicOptions() {
  CompileServiceOptions o;
  o.optimizer = SmallOptions();
  o.time_model = SyntheticModel();
  o.time_source = ServiceTimeSource::kEstimate;
  o.admission.limits_policy.min_deadline_seconds = 600.0;
  return o;
}

// ---------------------------------------------------------------------------
// ReadyQueue policies.

ReadyEntry Entry(size_t ticket, double predicted, double deadline = 0) {
  ReadyEntry e;
  e.ticket = ticket;
  e.predicted_seconds = predicted;
  e.deadline_seconds = deadline;
  return e;
}

std::vector<size_t> Drain(ReadyQueue* q) {
  std::vector<size_t> order;
  while (!q->empty()) order.push_back(q->PopNext().ticket);
  return order;
}

TEST(ServiceSchedulerTest, FifoPopsInTicketOrder) {
  ReadyQueue q(SchedulingPolicy::kFifo);
  q.Push(Entry(2, 0.1));
  q.Push(Entry(0, 9.0));
  q.Push(Entry(1, 0.5));
  EXPECT_EQ(Drain(&q), (std::vector<size_t>{0, 1, 2}));
}

TEST(ServiceSchedulerTest, ShortestEstimatedFirstOrdersByPrediction) {
  ReadyQueue q(SchedulingPolicy::kShortestEstimatedFirst);
  q.Push(Entry(0, 3.0));
  q.Push(Entry(1, 1.0));
  q.Push(Entry(2, 2.0));
  q.Push(Entry(3, 1.0));  // tie with ticket 1: ticket breaks it
  EXPECT_EQ(Drain(&q), (std::vector<size_t>{1, 3, 2, 0}));
}

TEST(ServiceSchedulerTest, DeadlineAwareRunsEdfThenFifo) {
  ReadyQueue q(SchedulingPolicy::kDeadlineAware);
  q.Push(Entry(0, 1.0));            // no deadline
  q.Push(Entry(1, 1.0, 0.5));
  q.Push(Entry(2, 1.0));            // no deadline
  q.Push(Entry(3, 1.0, 0.2));
  q.Push(Entry(4, 1.0, 0.5));       // deadline tie with 1: ticket order
  EXPECT_EQ(Drain(&q), (std::vector<size_t>{3, 1, 4, 0, 2}));
}

// ---------------------------------------------------------------------------
// Trip-rate tracker.

TEST(ServiceTripTrackerTest, WidensAfterTrippyWindowAndCapsAtMax) {
  TripTrackerOptions o;
  o.min_samples = 4;
  o.trip_rate_threshold = 0.5;
  o.widen_factor = 2.0;
  o.max_multiplier = 4.0;
  TripRateTracker tracker(o);
  EXPECT_DOUBLE_EQ(tracker.HeadroomMultiplier(10), 1.0);
  // First window: 3/4 tripped > 0.5 → ×2.
  for (int i = 0; i < 3; ++i) tracker.Record(10, true);
  tracker.Record(10, false);
  EXPECT_DOUBLE_EQ(tracker.HeadroomMultiplier(10), 2.0);
  // Second trippy window → ×2 again; third is capped at max_multiplier.
  for (int i = 0; i < 4; ++i) tracker.Record(10, true);
  EXPECT_DOUBLE_EQ(tracker.HeadroomMultiplier(10), 4.0);
  for (int i = 0; i < 4; ++i) tracker.Record(10, true);
  EXPECT_DOUBLE_EQ(tracker.HeadroomMultiplier(10), 4.0);
}

TEST(ServiceTripTrackerTest, QuietWindowDoesNotWiden) {
  TripTrackerOptions o;
  o.min_samples = 4;
  o.trip_rate_threshold = 0.5;
  TripRateTracker tracker(o);
  // Exactly at the threshold (2/4) does not widen — only exceeding it does.
  tracker.Record(3, true);
  tracker.Record(3, true);
  tracker.Record(3, false);
  tracker.Record(3, false);
  EXPECT_DOUBLE_EQ(tracker.HeadroomMultiplier(3), 1.0);
}

TEST(ServiceTripTrackerTest, ReactsPerWindowNotPerLifetimeRate) {
  // 4 early trips widen once; a long quiet stretch afterwards never widens
  // again even though the lifetime rate stays above zero.
  TripTrackerOptions o;
  o.min_samples = 4;
  TripRateTracker tracker(o);
  for (int i = 0; i < 4; ++i) tracker.Record(5, true);
  EXPECT_DOUBLE_EQ(tracker.HeadroomMultiplier(5), 2.0);
  for (int i = 0; i < 16; ++i) tracker.Record(5, false);
  EXPECT_DOUBLE_EQ(tracker.HeadroomMultiplier(5), 2.0);
}

TEST(ServiceTripTrackerTest, SnapshotListsOnlyObservedClassesAndClamps) {
  TripRateTracker tracker;
  tracker.Record(2, true);
  tracker.Record(-7, false);   // clamps to class 0
  tracker.Record(1000, false); // clamps to kMaxClass
  auto snap = tracker.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].query_class, 0);
  EXPECT_EQ(snap[1].query_class, 2);
  EXPECT_EQ(snap[1].tripped, 1);
  EXPECT_EQ(snap[2].query_class, TripRateTracker::kMaxClass);
}

// ---------------------------------------------------------------------------
// Open-loop arrival traces.

TEST(ServiceTraceTest, SameSeedSameTrace) {
  Workload w = LinearWorkload();
  std::vector<const QueryGraph*> pool;
  for (const QueryGraph& q : w.queries) pool.push_back(&q);
  ArrivalTraceOptions o;
  o.num_arrivals = 50;
  o.seed = 7;
  auto a = MakeOpenLoopTrace(pool, o);
  auto b = MakeOpenLoopTrace(pool, o);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].query, b[i].query);
    EXPECT_EQ(a[i].arrival_seconds, b[i].arrival_seconds);
    EXPECT_EQ(a[i].deadline_seconds, b[i].deadline_seconds);
  }
  // Arrivals ascend (gaps are nonnegative) and some deadlines were dealt.
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_GE(a[i].arrival_seconds, a[i - 1].arrival_seconds);
  }
  EXPECT_TRUE(std::any_of(a.begin(), a.end(), [](const Submission& s) {
    return s.deadline_seconds > 0;
  }));
}

// ---------------------------------------------------------------------------
// End-to-end service runs under the virtual clock: determinism, policy
// behavior, feedback loops.

class ServiceVirtualTest : public ::testing::Test {
 protected:
  ServiceVirtualTest()
      : linear_(LinearWorkload()),
        star_(StarWorkload()),
        random_(RandomWorkload(13, 42)) {
    // ≤ 8-table queries keep the suite fast enough for the TSan cycle
    // while still spanning ~2 orders of magnitude in predicted cost —
    // all the heterogeneity the policy tests need.
    for (const QueryGraph& q : linear_.queries) {
      if (q.num_tables() <= 8) pool_.push_back(&q);
    }
    for (const QueryGraph& q : star_.queries) {
      if (q.num_tables() <= 8) pool_.push_back(&q);
    }
    for (const QueryGraph& q : random_.queries) {
      if (q.num_tables() <= 8) pool_.push_back(&q);
    }
  }

  /// The shared overloaded mixed stream: mean predicted service time is
  /// far above the mean gap, so a queue builds and policy decides who
  /// waits.
  std::vector<Submission> MixedTrace(int n = 60) const {
    ArrivalTraceOptions o;
    o.num_arrivals = n;
    o.mean_gap_seconds = 0.0005;
    o.seed = 42;
    return MakeOpenLoopTrace(pool_, o);
  }

  Workload linear_, star_, random_;
  std::vector<const QueryGraph*> pool_;
};

TEST_F(ServiceVirtualTest, RunsAreBitIdentical) {
  const std::vector<Submission> trace = MixedTrace();
  CompileServiceOptions options = DeterministicOptions();
  options.policy = SchedulingPolicy::kShortestEstimatedFirst;
  options.num_workers = 2;

  VirtualClock clock_a, clock_b;
  CompileServiceOptions oa = options, ob = options;
  oa.clock = &clock_a;
  oa.drive_clock = &clock_a;
  ob.clock = &clock_b;
  ob.drive_clock = &clock_b;
  CompileService a(oa), b(ob);
  ServiceReport ra = a.Run(trace);
  ServiceReport rb = b.Run(trace);

  ASSERT_EQ(ra.records.size(), trace.size());
  ASSERT_EQ(ra.records.size(), rb.records.size());
  for (size_t i = 0; i < ra.records.size(); ++i) {
    const ServiceQueryRecord& x = ra.records[i];
    const ServiceQueryRecord& y = rb.records[i];
    // Bit-identical dispatch order and policy decisions.
    EXPECT_EQ(x.ticket, y.ticket) << i;
    EXPECT_EQ(x.worker, y.worker) << i;
    EXPECT_EQ(x.start_seconds, y.start_seconds) << i;
    EXPECT_EQ(x.finish_seconds, y.finish_seconds) << i;
    EXPECT_EQ(x.predicted_seconds, y.predicted_seconds) << i;
    EXPECT_EQ(x.cache_hit, y.cache_hit) << i;
    EXPECT_EQ(x.estimated, y.estimated) << i;
    EXPECT_EQ(x.cache_inserted, y.cache_inserted) << i;
    EXPECT_EQ(x.degraded, y.degraded) << i;
    EXPECT_EQ(x.limits.deadline_seconds, y.limits.deadline_seconds) << i;
    EXPECT_EQ(x.limits.max_plans, y.limits.max_plans) << i;
    EXPECT_EQ(x.headroom_multiplier, y.headroom_multiplier) << i;
    EXPECT_TRUE(x.status.ok()) << x.status.ToString();
  }
  EXPECT_EQ(ra.makespan_seconds, rb.makespan_seconds);
  EXPECT_EQ(ra.cache_hits, rb.cache_hits);
  EXPECT_EQ(ra.estimates, rb.estimates);
  // The driven clock followed the simulated timeline to its end.
  EXPECT_DOUBLE_EQ(clock_a.NowSeconds(), ra.makespan_seconds);
}

TEST_F(ServiceVirtualTest, ShortestFirstImprovesP95OverFifo) {
  const std::vector<Submission> trace = MixedTrace();
  auto run_policy = [&](SchedulingPolicy policy) {
    CompileServiceOptions o = DeterministicOptions();
    o.policy = policy;
    CompileService service(o);
    return service.Run(trace);
  };
  ServiceReport fifo = run_policy(SchedulingPolicy::kFifo);
  ServiceReport sjf = run_policy(SchedulingPolicy::kShortestEstimatedFirst);
  // Same stream, same total work — only who waits changes.
  EXPECT_DOUBLE_EQ(fifo.makespan_seconds, sjf.makespan_seconds);
  EXPECT_LT(sjf.P95QueueSeconds(), fifo.P95QueueSeconds());
  EXPECT_LT(sjf.MeanQueueSeconds(), fifo.MeanQueueSeconds());
}

TEST_F(ServiceVirtualTest, DeadlineAwareDispatchesEarliestDeadlineFirst) {
  // Six simultaneous arrivals, one server: EDF must run the deadlines in
  // order and park the deadline-less submissions at the back, FIFO.
  const QueryGraph* q = pool_[0];
  std::vector<Submission> subs(6);
  for (size_t i = 0; i < subs.size(); ++i) subs[i].query = q;
  subs[1].deadline_seconds = 0.5;
  subs[3].deadline_seconds = 0.2;
  subs[5].deadline_seconds = 0.1;
  CompileServiceOptions o = DeterministicOptions();
  o.policy = SchedulingPolicy::kDeadlineAware;
  CompileService service(o);
  ServiceReport r = service.Run(subs);
  std::vector<size_t> order;
  for (const ServiceQueryRecord& rec : r.records) order.push_back(rec.ticket);
  EXPECT_EQ(order, (std::vector<size_t>{5, 3, 1, 0, 2, 4}));
}

TEST_F(ServiceVirtualTest, TripFeedbackWidensBudgetsUntilTheClassStopsTripping) {
  // Deliberately under-derived budgets: headroom 0.5 means every compile
  // of the 8-table star query gets a plan cap below its own (accurate)
  // estimate and trips. The tracker must widen the class until the
  // derived budget clears the real cost.
  const QueryGraph& q = star_.queries[7];
  // Spaced arrivals so each admission happens after the previous dispatch
  // and sees the tracker's latest multiplier.
  std::vector<Submission> subs(12);
  for (size_t i = 0; i < subs.size(); ++i) {
    subs[i].query = &q;
    subs[i].arrival_seconds = static_cast<double>(i);
  }

  CompileServiceOptions o = DeterministicOptions();
  o.enable_cache = false;  // cache hits would skip estimation (and caps)
  o.admission.limits_policy.headroom = 0.5;
  o.trip_tracker.min_samples = 2;
  o.trip_tracker.trip_rate_threshold = 0.4;
  CompileService service(o);
  ServiceReport r = service.Run(subs);

  EXPECT_GT(r.degraded, 0);                   // early compiles tripped
  EXPECT_FALSE(r.records.back().degraded);    // widened budget stopped it
  EXPECT_GT(r.records.back().headroom_multiplier, 1.0);
  ASSERT_EQ(r.class_feedback.size(), 1u);
  EXPECT_EQ(r.class_feedback[0].query_class, ServiceQueryClass(q));
  EXPECT_GT(r.class_feedback[0].multiplier, 1.0);
  EXPECT_GT(r.class_feedback[0].tripped, 0);
  // Every compile was armed (derive_limits on, no cache path).
  EXPECT_EQ(r.class_feedback[0].armed, static_cast<int64_t>(subs.size()));
}

// ---------------------------------------------------------------------------
// Cache interaction: signature hits skip estimation; the threshold gates
// admission.

class ServiceCacheTest : public ::testing::Test {
 protected:
  ServiceCacheTest() : linear_(LinearWorkload()) {}
  Workload linear_;
};

TEST_F(ServiceCacheTest, SignatureHitSkipsEstimationEntirely) {
  // Spaced arrivals: each one is admitted after the previous dispatch has
  // finished (predicted service ≪ 1s), so repeats find the cache warm.
  // Simultaneous arrivals would all admit before the first compile and
  // legitimately all miss.
  std::vector<Submission> subs(5);
  for (size_t i = 0; i < subs.size(); ++i) {
    subs[i].query = &linear_.queries[0];
    subs[i].arrival_seconds = static_cast<double>(i);
  }
  CompileService service(DeterministicOptions());
  ServiceReport r = service.Run(subs);
  EXPECT_EQ(r.estimates, 1);       // only the first arrival estimated
  EXPECT_EQ(r.cache_hits, 4);
  EXPECT_EQ(r.cache_insertions, 1);
  EXPECT_EQ(r.cache_stats.hits, 4);
  EXPECT_EQ(r.cache_stats.misses, 1);
  EXPECT_EQ(r.cache_stats.size, 1);
  // Cache-hit admissions predicted from the cached seconds, didn't
  // estimate, and got deadline-only limits (no count caps to derive).
  const ServiceQueryRecord& hit = r.records[1];
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_FALSE(hit.estimated);
  EXPECT_EQ(hit.limits.max_plans, 0);
  EXPECT_GT(hit.limits.deadline_seconds, 0);
}

TEST_F(ServiceCacheTest, ZeroThresholdAdmitsEverything) {
  std::vector<Submission> subs(3);
  for (size_t i = 0; i < subs.size(); ++i) subs[i].query = &linear_.queries[i];
  CompileServiceOptions o = DeterministicOptions();
  o.cache_admission_threshold_seconds = 0;
  CompileService service(o);
  ServiceReport r = service.Run(subs);
  EXPECT_EQ(r.cache_insertions, 3);
  EXPECT_EQ(r.cache_stats.admission_rejections, 0);
}

TEST_F(ServiceCacheTest, HugeThresholdCachesNothingAndKeepsEstimating) {
  std::vector<Submission> subs(4);
  for (size_t i = 0; i < subs.size(); ++i) subs[i].query = &linear_.queries[0];
  CompileServiceOptions o = DeterministicOptions();
  o.cache_admission_threshold_seconds = 1e9;
  CompileService service(o);
  ServiceReport r = service.Run(subs);
  // Nothing ever earns a slot, so every repeat misses and re-estimates.
  EXPECT_EQ(r.cache_insertions, 0);
  EXPECT_EQ(r.cache_hits, 0);
  EXPECT_EQ(r.estimates, 4);
  EXPECT_EQ(r.cache_stats.admission_rejections, 4);
  EXPECT_EQ(r.cache_stats.size, 0);
}

// ---------------------------------------------------------------------------
// Closed-loop batch: the policy orders, the pool's real threads compile
// under per-query limits (the concurrent surface the TSan gate races).

class ServicePoolTest : public ::testing::Test {
 protected:
  ServicePoolTest() : linear_(LinearWorkload()), random_(RandomWorkload(13, 42)) {
    // ≤ 8-table queries: enough cost spread to exercise the SJF schedule
    // while keeping this suite cheap under the TSan cycle.
    for (const QueryGraph& q : linear_.queries) {
      if (q.num_tables() <= 8) queries_.push_back(&q);
    }
    for (const QueryGraph& q : random_.queries) {
      if (q.num_tables() <= 8) queries_.push_back(&q);
    }
  }
  Workload linear_, random_;
  std::vector<const QueryGraph*> queries_;
};

TEST_F(ServicePoolTest, BatchMatchesSerialReferenceInInputOrder) {
  CompileServiceOptions o = DeterministicOptions();
  o.num_workers = 4;
  o.policy = SchedulingPolicy::kShortestEstimatedFirst;
  CompileService service(o);
  ServiceBatchResult batch = service.CompileBatch(queries_);
  ASSERT_EQ(batch.results.size(), queries_.size());
  ASSERT_EQ(batch.schedule.size(), queries_.size());

  // Serial reference: same per-query derived limits, one session.
  CompilationSession serial(SmallOptions());
  for (size_t i = 0; i < queries_.size(); ++i) {
    ASSERT_TRUE(batch.results[i].ok()) << i;
    auto ref = serial.Optimize(*queries_[i], batch.admissions[i].limits);
    ASSERT_TRUE(ref.ok()) << i;
    EXPECT_DOUBLE_EQ(batch.results[i]->stats.best_cost, ref->stats.best_cost)
        << i;
    EXPECT_EQ(batch.results[i]->stats.memo_entries, ref->stats.memo_entries)
        << i;
    EXPECT_EQ(batch.results[i]->degraded, ref->degraded) << i;
  }
}

TEST_F(ServicePoolTest, ScheduleFollowsShortestEstimatedFirst) {
  CompileServiceOptions o = DeterministicOptions();
  o.num_workers = 2;
  o.policy = SchedulingPolicy::kShortestEstimatedFirst;
  CompileService service(o);
  ServiceBatchResult batch = service.CompileBatch(queries_);
  for (size_t k = 1; k < batch.schedule.size(); ++k) {
    const double prev =
        batch.admissions[batch.schedule[k - 1]].predicted_seconds;
    const double cur = batch.admissions[batch.schedule[k]].predicted_seconds;
    EXPECT_LE(prev, cur) << "schedule position " << k;
  }
}

TEST_F(ServicePoolTest, RepeatBatchHitsTheCacheInsteadOfEstimating) {
  CompileServiceOptions o = DeterministicOptions();
  o.num_workers = 2;
  CompileService service(o);
  ServiceBatchResult first = service.CompileBatch(queries_);
  EXPECT_EQ(first.cache_hits, 0);
  EXPECT_EQ(first.estimates, static_cast<int64_t>(queries_.size()));
  ServiceBatchResult second = service.CompileBatch(queries_);
  EXPECT_EQ(second.cache_hits, static_cast<int64_t>(queries_.size()));
  EXPECT_EQ(second.estimates, 0);
}

// ---------------------------------------------------------------------------
// LimitsPolicy: the shared derivation the admission stage and the
// meta-optimizer both use.

TEST(ServiceLimitsPolicyTest, DeriveMatchesMetaOptimizerRule) {
  CompileTimeEstimate est;
  est.estimated_seconds = 0.25;
  est.enumeration.entries_created = 1000;
  est.plan_estimates.counts[0] = 4000;
  est.completion_plans = 500;
  LimitsPolicy policy;  // headroom 8, the MetaOptimizerOptions default
  ResourceLimits limits = policy.Derive(est);
  EXPECT_DOUBLE_EQ(limits.deadline_seconds, 2.0);
  EXPECT_EQ(limits.max_memo_entries, 8000);
  EXPECT_EQ(limits.max_plans, 36000);

  // Floors hold for a near-zero estimate.
  ResourceLimits floors = policy.Derive(CompileTimeEstimate{});
  EXPECT_DOUBLE_EQ(floors.deadline_seconds, 1e-3);
  EXPECT_EQ(floors.max_memo_entries, 64);
  EXPECT_EQ(floors.max_plans, 256);

  // extra_headroom composes multiplicatively (the tracker's hook).
  ResourceLimits widened = policy.Derive(est, 2.0);
  EXPECT_DOUBLE_EQ(widened.deadline_seconds, 4.0);
  EXPECT_EQ(widened.max_memo_entries, 16000);
}

TEST(ServiceLimitsPolicyTest, DeriveFromSecondsIsDeadlineOnly) {
  LimitsPolicy policy;
  ResourceLimits limits = policy.DeriveFromSeconds(0.5);
  EXPECT_DOUBLE_EQ(limits.deadline_seconds, 4.0);
  EXPECT_EQ(limits.max_memo_entries, 0);
  EXPECT_EQ(limits.max_plans, 0);
  EXPECT_DOUBLE_EQ(policy.DeriveFromSeconds(0.0).deadline_seconds, 1e-3);
}

}  // namespace
}  // namespace cote
