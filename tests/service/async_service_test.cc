#include "service/async_executor.h"

#include <gtest/gtest.h>

#include <type_traits>
#include <vector>

#include "common/clock.h"
#include "service/arrival_trace.h"
#include "service/compile_service.h"
#include "service/scheduler.h"
#include "session/session.h"
#include "workload/workload.h"

// Fixture names deliberately contain "Service": tools/run_checks.sh's TSan
// gate builds this binary and races it via `ctest -R 'Session|Service'`.
// Every fixture here runs the live executor with >= 4 worker threads, so
// the queue handoff, the per-worker sessions, and the results sink are
// exactly the surface that cycle checks.

namespace cote {
namespace {

OptimizerOptions SmallOptions() {
  OptimizerOptions o;
  o.enumeration.max_composite_inner = 3;
  return o;
}

TimeModel SyntheticModel() {
  TimeModel model;
  model.ct[0] = 2e-6;
  model.ct[1] = 1e-6;
  model.ct[2] = 1.5e-6;
  model.intercept = 1e-5;
  return model;
}

/// Options whose per-query *outcomes* are deterministic: service times
/// come from the estimate, and the derived deadline floor is far above
/// any real compile here, so no wall-clock trip can differ between the
/// async workers and the simulated oracle. (The async run still uses the
/// real SystemClock for its wall fields — those are exactly the fields
/// the oracle comparison excludes.)
CompileServiceOptions AsyncDeterministicOptions() {
  CompileServiceOptions o;
  o.optimizer = SmallOptions();
  o.time_model = SyntheticModel();
  o.time_source = ServiceTimeSource::kEstimate;
  o.admission.limits_policy.min_deadline_seconds = 600.0;
  o.num_workers = 4;
  return o;
}

TEST(AsyncServiceValueSemanticsTest, ExecutorIsNeitherCopyableNorMovable) {
  static_assert(!std::is_copy_constructible_v<AsyncCompileService>,
                "AsyncCompileService self-aliases and owns worker threads");
  static_assert(!std::is_copy_assignable_v<AsyncCompileService>,
                "AsyncCompileService self-aliases and owns worker threads");
  static_assert(!std::is_move_constructible_v<AsyncCompileService>,
                "worker threads capture `this`; a moved-from executor would "
                "leave them running on a gutted object");
  static_assert(!std::is_move_assignable_v<AsyncCompileService>,
                "worker threads capture `this`; move-assignment is unsound");
  SUCCEED();
}

class AsyncServiceTest : public ::testing::Test {
 protected:
  AsyncServiceTest()
      : linear_(LinearWorkload()),
        star_(StarWorkload()),
        random_(RandomWorkload(13, 42)) {
    for (const QueryGraph& q : linear_.queries) {
      if (q.num_tables() <= 8) pool_.push_back(&q);
    }
    for (const QueryGraph& q : star_.queries) {
      if (q.num_tables() <= 8) pool_.push_back(&q);
    }
    for (const QueryGraph& q : random_.queries) {
      if (q.num_tables() <= 8) pool_.push_back(&q);
    }
  }

  /// A seeded mixed stream collapsed into one burst (every arrival at
  /// t = 0). The burst shape is the determinism contract's precondition:
  /// in the simulated oracle all admissions then precede the first
  /// dispatch, exactly like the async path's Submit-then-Drain split, so
  /// neither run's admissions observe intra-burst feedback.
  std::vector<Submission> BurstTrace(int n = 48) const {
    ArrivalTraceOptions o;
    o.num_arrivals = n;
    o.seed = 42;
    std::vector<Submission> subs = MakeOpenLoopTrace(pool_, o);
    for (Submission& s : subs) {
      s.arrival_seconds = 0;
      s.deadline_seconds = 0;
    }
    return subs;
  }

  Workload linear_, star_, random_;
  std::vector<const QueryGraph*> pool_;
};

/// The tentpole's oracle test: the same seeded burst through the live
/// 4-worker executor and through the virtual-clock simulated Run must
/// produce identical per-query outcomes — everything except the
/// wall-clock-dependent fields (start/finish/queue seconds, worker
/// index) — plus identical feedback state (cache, tracker).
TEST_F(AsyncServiceTest, BurstMatchesSimulatedOraclePerQuery) {
  const std::vector<Submission> burst = BurstTrace();

  CompileServiceOptions async_options = AsyncDeterministicOptions();
  async_options.policy = SchedulingPolicy::kShortestEstimatedFirst;

  VirtualClock clock;
  CompileServiceOptions sim_options = async_options;
  sim_options.clock = &clock;
  sim_options.drive_clock = &clock;

  AsyncCompileService async(async_options);
  CompileService sim(sim_options);
  ServiceReport ra = async.Run(burst);
  ServiceReport rs = sim.Run(burst);

  ASSERT_EQ(ra.records.size(), burst.size());
  ASSERT_EQ(rs.records.size(), burst.size());
  // Async records are input-order recoverable: records[t].ticket == t.
  std::vector<const ServiceQueryRecord*> sim_by_ticket(burst.size(), nullptr);
  for (const ServiceQueryRecord& rec : rs.records) {
    sim_by_ticket[rec.ticket] = &rec;
  }
  for (size_t t = 0; t < burst.size(); ++t) {
    const ServiceQueryRecord& a = ra.records[t];
    ASSERT_EQ(a.ticket, t);
    ASSERT_NE(sim_by_ticket[t], nullptr);
    const ServiceQueryRecord& s = *sim_by_ticket[t];
    // Compile outcome.
    EXPECT_EQ(a.status.code(), s.status.code()) << t;
    EXPECT_EQ(a.degraded, s.degraded) << t;
    EXPECT_EQ(a.tripped_limit, s.tripped_limit) << t;
    EXPECT_EQ(a.degraded_stage, s.degraded_stage) << t;
    EXPECT_EQ(a.budget_tripped, s.budget_tripped) << t;
    EXPECT_EQ(a.stage_events, s.stage_events) << t;
    // Admission outcome.
    EXPECT_EQ(a.estimated, s.estimated) << t;
    EXPECT_EQ(a.cache_hit, s.cache_hit) << t;
    EXPECT_EQ(a.cache_inserted, s.cache_inserted) << t;
    EXPECT_EQ(a.predicted_seconds, s.predicted_seconds) << t;
    EXPECT_EQ(a.query_class, s.query_class) << t;
    EXPECT_EQ(a.headroom_multiplier, s.headroom_multiplier) << t;
    EXPECT_EQ(a.limits.deadline_seconds, s.limits.deadline_seconds) << t;
    EXPECT_EQ(a.limits.max_plans, s.limits.max_plans) << t;
    EXPECT_EQ(a.limits.max_memo_entries, s.limits.max_memo_entries) << t;
    // kEstimate: service time is the prediction on both paths.
    EXPECT_EQ(a.service_seconds, s.service_seconds) << t;
  }
  // Aggregates that don't depend on the wall clock.
  EXPECT_EQ(ra.estimates, rs.estimates);
  EXPECT_EQ(ra.cache_hits, rs.cache_hits);
  EXPECT_EQ(ra.cache_insertions, rs.cache_insertions);
  EXPECT_EQ(ra.degraded, rs.degraded);
  EXPECT_EQ(ra.failed, rs.failed);
  EXPECT_EQ(ra.cache_stats.hits, rs.cache_stats.hits);
  EXPECT_EQ(ra.cache_stats.misses, rs.cache_stats.misses);
  EXPECT_EQ(ra.cache_stats.insertions, rs.cache_stats.insertions);
  EXPECT_EQ(ra.cache_stats.size, rs.cache_stats.size);
  ASSERT_EQ(ra.class_feedback.size(), rs.class_feedback.size());
  for (size_t k = 0; k < ra.class_feedback.size(); ++k) {
    EXPECT_EQ(ra.class_feedback[k].query_class,
              rs.class_feedback[k].query_class);
    EXPECT_EQ(ra.class_feedback[k].armed, rs.class_feedback[k].armed);
    EXPECT_EQ(ra.class_feedback[k].tripped, rs.class_feedback[k].tripped);
    EXPECT_EQ(ra.class_feedback[k].multiplier,
              rs.class_feedback[k].multiplier);
  }
}

TEST_F(AsyncServiceTest, TrippingBurstMatchesOracleTripEvidence) {
  // Under-derived budgets (headroom 0.5) on an 8-table star query: the
  // compiles trip their plan caps deterministically, and the async
  // workers must report exactly the oracle's trip evidence per ticket —
  // through all three channels of the shared IsBudgetTrip predicate —
  // and leave the tracker in the oracle's exact state. kFifo makes the
  // oracle's Record order equal Drain's ticket order.
  const QueryGraph& q = star_.queries[7];
  std::vector<Submission> subs(8);
  for (Submission& s : subs) s.query = &q;

  auto make_options = [] {
    CompileServiceOptions o = AsyncDeterministicOptions();
    o.policy = SchedulingPolicy::kFifo;
    o.enable_cache = false;
    o.admission.limits_policy.headroom = 0.5;
    o.trip_tracker.min_samples = 2;
    return o;
  };
  AsyncCompileService async(make_options());

  VirtualClock clock;
  CompileServiceOptions sim_options = make_options();
  sim_options.clock = &clock;
  sim_options.drive_clock = &clock;
  CompileService sim(sim_options);

  ServiceReport ra = async.Run(subs);
  ServiceReport rs = sim.Run(subs);
  ASSERT_EQ(ra.records.size(), subs.size());
  EXPECT_GT(rs.degraded, 0) << "workload must actually trip";
  EXPECT_EQ(ra.degraded, rs.degraded);
  for (size_t t = 0; t < subs.size(); ++t) {
    const ServiceQueryRecord& a = ra.records[t];
    const ServiceQueryRecord& s = rs.records[t];  // kFifo: ticket order
    ASSERT_EQ(a.ticket, s.ticket);
    EXPECT_EQ(a.degraded, s.degraded) << t;
    EXPECT_EQ(a.budget_tripped, s.budget_tripped) << t;
    EXPECT_EQ(a.tripped_limit, s.tripped_limit) << t;
    EXPECT_EQ(a.headroom_multiplier, s.headroom_multiplier) << t;
  }
  ASSERT_EQ(ra.class_feedback.size(), 1u);
  ASSERT_EQ(rs.class_feedback.size(), 1u);
  EXPECT_EQ(ra.class_feedback[0].armed, rs.class_feedback[0].armed);
  EXPECT_EQ(ra.class_feedback[0].tripped, rs.class_feedback[0].tripped);
  EXPECT_EQ(ra.class_feedback[0].multiplier, rs.class_feedback[0].multiplier);
}

TEST_F(AsyncServiceTest, SecondBurstHitsTheCacheAndServiceIsReusable) {
  // Drain resets burst state: a second Run on the same executor must see
  // the first burst's cache insertions as signature hits and skip
  // estimation — the same across-burst behavior the simulated service
  // shows across Runs.
  const std::vector<Submission> burst = BurstTrace(24);
  AsyncCompileService async(AsyncDeterministicOptions());
  ServiceReport first = async.Run(burst);
  EXPECT_EQ(first.cache_hits, 0);
  EXPECT_GT(first.estimates, 0);
  ServiceReport second = async.Run(burst);
  EXPECT_EQ(second.cache_hits, static_cast<int64_t>(burst.size()));
  EXPECT_EQ(second.estimates, 0);
  ASSERT_EQ(second.records.size(), burst.size());
  for (size_t t = 0; t < second.records.size(); ++t) {
    EXPECT_EQ(second.records[t].ticket, t);
    EXPECT_TRUE(second.records[t].status.ok());
    EXPECT_TRUE(second.records[t].cache_hit) << t;
  }
}

TEST_F(AsyncServiceTest, SubmitDrainApiReturnsDenseTicketsAndWallSanity) {
  // The direct API (no trace): tickets are dense submission indices, and
  // the wall-clock fields obey the basic timeline invariants even though
  // their exact values are nondeterministic.
  AsyncCompileService async(AsyncDeterministicOptions());
  std::vector<Submission> subs(12);
  for (Submission& s : subs) s.query = pool_[3];
  for (size_t t = 0; t < subs.size(); ++t) {
    EXPECT_EQ(async.Submit(subs[t]), t);
  }
  ServiceReport r = async.Drain();
  ASSERT_EQ(r.records.size(), subs.size());
  for (const ServiceQueryRecord& rec : r.records) {
    EXPECT_GE(rec.arrival_seconds, 0);
    EXPECT_GE(rec.start_seconds, rec.arrival_seconds);
    EXPECT_GE(rec.queue_seconds, 0);
    EXPECT_GE(rec.finish_seconds, rec.start_seconds);
    EXPECT_GE(rec.worker, 0);
    EXPECT_LT(rec.worker, 4);
  }
  // An empty drain is legal and returns an empty report.
  ServiceReport empty = async.Drain();
  EXPECT_TRUE(empty.records.empty());
}

TEST_F(AsyncServiceTest, ZeroQueryBurstsAndRepeatedDrainsAreHarmless) {
  // Lifecycle edges: draining an executor that never saw a submission,
  // draining twice in a row, and an empty Run must all return empty
  // reports and leave the service fully usable.
  AsyncCompileService async(AsyncDeterministicOptions());
  EXPECT_TRUE(async.Drain().records.empty());
  EXPECT_TRUE(async.Drain().records.empty());
  EXPECT_TRUE(async.Run({}).records.empty());
  // Still alive: a real burst after the empty ones compiles normally.
  std::vector<Submission> subs(4);
  for (Submission& s : subs) s.query = pool_[2];
  ServiceReport r = async.Run(subs);
  ASSERT_EQ(r.records.size(), subs.size());
  for (const ServiceQueryRecord& rec : r.records) {
    EXPECT_TRUE(rec.status.ok()) << rec.status.ToString();
  }
  EXPECT_EQ(r.taxonomy.TotalTickets(), 4);
}

TEST_F(AsyncServiceTest, HoldWorkersPinsTheBacklogUntilRelease) {
  // HoldWorkers freezes dispatch so a whole burst queues up; Release lets
  // the 4 workers race over the full backlog at once — the deepest
  // contention shape the TSan gate can see from this suite.
  AsyncCompileService async(AsyncDeterministicOptions());
  async.HoldWorkers();
  std::vector<Submission> subs(24);
  for (size_t t = 0; t < subs.size(); ++t) {
    subs[t].query = pool_[t % pool_.size()];
    EXPECT_EQ(async.Submit(subs[t]), t);
  }
  async.ReleaseWorkers();
  ServiceReport r = async.Drain();
  ASSERT_EQ(r.records.size(), subs.size());
  EXPECT_EQ(r.taxonomy.TotalTickets(), static_cast<int64_t>(subs.size()));
  EXPECT_EQ(r.taxonomy.shed_queue_full, 0);
  for (size_t t = 0; t < r.records.size(); ++t) {
    EXPECT_EQ(r.records[t].ticket, t);
    EXPECT_TRUE(r.records[t].status.ok()) << r.records[t].status.ToString();
  }
}

TEST_F(AsyncServiceTest, RejectShedsAtSubmitExactlyLikeTheSimulatedOracle) {
  // With the workers held, the queue state at each Submit is a pure
  // function of the submission order — so kReject's shed set is
  // deterministic and must equal the simulated oracle's for the same
  // burst (where all admissions also precede the first dispatch).
  auto make_options = [] {
    CompileServiceOptions o = AsyncDeterministicOptions();
    o.queue_capacity = 3;
    o.overload = OverloadPolicy::kReject;
    return o;
  };
  std::vector<Submission> subs(10);
  for (size_t t = 0; t < subs.size(); ++t) {
    subs[t].query = pool_[t % pool_.size()];
  }

  AsyncCompileService async(make_options());
  async.HoldWorkers();
  for (const Submission& s : subs) async.Submit(s);
  async.ReleaseWorkers();
  ServiceReport ra = async.Drain();

  VirtualClock clock;
  CompileServiceOptions sim_options = make_options();
  sim_options.clock = &clock;
  sim_options.drive_clock = &clock;
  CompileService sim(sim_options);
  ServiceReport rs = sim.Run(subs);

  ASSERT_EQ(ra.records.size(), subs.size());
  ASSERT_EQ(rs.records.size(), subs.size());
  std::vector<const ServiceQueryRecord*> sim_by_ticket(subs.size(), nullptr);
  for (const ServiceQueryRecord& rec : rs.records) {
    sim_by_ticket[rec.ticket] = &rec;
  }
  for (size_t t = 0; t < subs.size(); ++t) {
    const ServiceQueryRecord& a = ra.records[t];
    ASSERT_EQ(a.ticket, t);
    const ServiceQueryRecord& s = *sim_by_ticket[t];
    EXPECT_EQ(a.outcome, s.outcome) << t;
    EXPECT_EQ(a.status.code(), s.status.code()) << t;
    if (a.outcome == ServiceOutcome::kShedQueueFull) {
      EXPECT_EQ(a.worker, -1) << t;
    }
  }
  EXPECT_EQ(ra.taxonomy.shed_queue_full, rs.taxonomy.shed_queue_full);
  EXPECT_EQ(ra.taxonomy.served_full, rs.taxonomy.served_full);
  EXPECT_EQ(ra.taxonomy.served_degraded, rs.taxonomy.served_degraded);
  EXPECT_EQ(ra.taxonomy.TotalTickets(), static_cast<int64_t>(subs.size()));
  EXPECT_GT(ra.taxonomy.shed_queue_full, 0) << "burst must actually overflow";
}

TEST_F(AsyncServiceTest, ShedLowestValueEvictionsMatchTheSimulatedOracle) {
  // Same pinned-burst construction for the eviction policy: who survives
  // a full queue is decided by ShedsFirst over deterministic contents,
  // so the async shed set and taxonomy must equal the oracle's.
  auto make_options = [] {
    CompileServiceOptions o = AsyncDeterministicOptions();
    o.queue_capacity = 3;
    o.overload = OverloadPolicy::kShedLowestValue;
    o.enable_cache = false;  // distinct predictions stay distinct
    return o;
  };
  std::vector<Submission> subs(10);
  for (size_t t = 0; t < subs.size(); ++t) {
    subs[t].query = pool_[t % pool_.size()];
  }

  AsyncCompileService async(make_options());
  async.HoldWorkers();
  for (const Submission& s : subs) async.Submit(s);
  async.ReleaseWorkers();
  ServiceReport ra = async.Drain();

  VirtualClock clock;
  CompileServiceOptions sim_options = make_options();
  sim_options.clock = &clock;
  sim_options.drive_clock = &clock;
  CompileService sim(sim_options);
  ServiceReport rs = sim.Run(subs);

  ASSERT_EQ(ra.records.size(), subs.size());
  std::vector<const ServiceQueryRecord*> sim_by_ticket(subs.size(), nullptr);
  for (const ServiceQueryRecord& rec : rs.records) {
    sim_by_ticket[rec.ticket] = &rec;
  }
  for (size_t t = 0; t < subs.size(); ++t) {
    EXPECT_EQ(ra.records[t].outcome, sim_by_ticket[t]->outcome) << t;
    EXPECT_EQ(ra.records[t].status.code(), sim_by_ticket[t]->status.code())
        << t;
  }
  EXPECT_EQ(ra.taxonomy.shed_queue_full, rs.taxonomy.shed_queue_full);
  EXPECT_GT(ra.taxonomy.shed_queue_full, 0) << "burst must actually overflow";
}

TEST_F(AsyncServiceTest, BlockPolicyBackpressuresSubmitAndServesEverything) {
  // kBlock + tiny capacity: Submit blocks at the door until a worker
  // frees a slot, so the whole stream is served with the queue never
  // exceeding its bound. Workers must be live (holding them would
  // deadlock the driver — documented on HoldWorkers).
  CompileServiceOptions o = AsyncDeterministicOptions();
  o.queue_capacity = 2;
  o.overload = OverloadPolicy::kBlock;
  AsyncCompileService async(o);
  std::vector<Submission> subs(20);
  for (size_t t = 0; t < subs.size(); ++t) {
    subs[t].query = pool_[t % pool_.size()];
  }
  for (const Submission& s : subs) async.Submit(s);
  ServiceReport r = async.Drain();
  ASSERT_EQ(r.records.size(), subs.size());
  EXPECT_EQ(r.taxonomy.shed_queue_full, 0);
  EXPECT_EQ(r.taxonomy.TotalTickets(), static_cast<int64_t>(subs.size()));
  for (const ServiceQueryRecord& rec : r.records) {
    EXPECT_TRUE(rec.status.ok()) << rec.status.ToString();
  }
}

TEST_F(AsyncServiceTest, ShutdownCompletesAdmittedWorkBeforeStopping) {
  // Shutdown immediately after submitting a backlog: stop must not
  // abandon admitted queries — the workers drain the queue first, so a
  // post-shutdown Drain returns every record, all compiled.
  AsyncCompileService async(AsyncDeterministicOptions());
  std::vector<Submission> subs(16);
  for (Submission& s : subs) s.query = pool_[5];
  for (const Submission& s : subs) async.Submit(s);
  async.Shutdown();
  async.Shutdown();  // idempotent
  ServiceReport r = async.Drain();
  ASSERT_EQ(r.records.size(), subs.size());
  for (const ServiceQueryRecord& rec : r.records) {
    EXPECT_TRUE(rec.status.ok()) << rec.status.ToString();
  }
}

}  // namespace
}  // namespace cote
