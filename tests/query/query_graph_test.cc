#include "query/query_graph.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "query/query_builder.h"

namespace cote {
namespace {

std::shared_ptr<Catalog> MakeCatalog(int n) {
  auto catalog = std::make_shared<Catalog>();
  for (int i = 0; i < n; ++i) {
    TableBuilder b("T" + std::to_string(i), 1000 * (i + 1));
    b.Col("a", ColumnType::kInt, 100).Col("b", ColumnType::kInt, 50);
    b.Col("c", ColumnType::kInt, 10);
    EXPECT_TRUE(catalog->AddTable(b.Build()).ok());
  }
  return catalog;
}

class QueryGraphTest : public ::testing::Test {
 protected:
  QueryGraphTest() : catalog_(MakeCatalog(5)) {}

  /// Chain t0-t1-t2-t3-t4 on column a.
  QueryGraph Chain(int n) {
    QueryBuilder qb(*catalog_);
    for (int i = 0; i < n; ++i) {
      qb.AddTable("T" + std::to_string(i), "t" + std::to_string(i));
    }
    for (int i = 0; i + 1 < n; ++i) {
      qb.Join("t" + std::to_string(i), "a", "t" + std::to_string(i + 1), "a");
    }
    auto g = qb.Build();
    EXPECT_TRUE(g.ok());
    return std::move(g).value();
  }

  std::shared_ptr<Catalog> catalog_;
};

TEST_F(QueryGraphTest, BasicAccessors) {
  QueryGraph g = Chain(3);
  EXPECT_EQ(g.num_tables(), 3);
  EXPECT_EQ(g.AllTables(), TableSet::FirstN(3));
  EXPECT_EQ(g.join_predicates().size(), 2u);
  EXPECT_EQ(g.ColumnName(ColumnRef(1, 0)), "t1.a");
  EXPECT_DOUBLE_EQ(g.ColumnNdv(ColumnRef(0, 0)), 100);
}

TEST_F(QueryGraphTest, ConnectingPredicates) {
  QueryGraph g = Chain(4);
  auto preds01 = g.ConnectingPredicates(TableSet::Single(0), TableSet::Single(1));
  EXPECT_EQ(preds01.size(), 1u);
  auto preds03 = g.ConnectingPredicates(TableSet::Single(0), TableSet::Single(3));
  EXPECT_TRUE(preds03.empty());
  // {0,1} vs {2,3} are connected through the 1-2 edge.
  EXPECT_TRUE(g.AreConnected(TableSet::FirstN(2),
                             TableSet::Single(2).With(3)));
  EXPECT_FALSE(g.AreConnected(TableSet::Single(0), TableSet::Single(2)));
}

TEST_F(QueryGraphTest, SubgraphConnectivity) {
  QueryGraph g = Chain(4);
  EXPECT_TRUE(g.IsSubgraphConnected(TableSet::Single(2)));
  EXPECT_TRUE(g.IsSubgraphConnected(TableSet::FirstN(4)));
  EXPECT_TRUE(g.IsSubgraphConnected(TableSet::Single(1).With(2)));
  EXPECT_FALSE(g.IsSubgraphConnected(TableSet::Single(0).With(2)));
  EXPECT_FALSE(g.IsSubgraphConnected(TableSet()));
}

TEST_F(QueryGraphTest, Neighbors) {
  QueryGraph g = Chain(4);
  EXPECT_EQ(g.Neighbors(TableSet::Single(0)), TableSet::Single(1));
  EXPECT_EQ(g.Neighbors(TableSet::Single(1).With(2)),
            TableSet::Single(0).With(3));
  EXPECT_EQ(g.Neighbors(TableSet::FirstN(4)), TableSet());
}

TEST_F(QueryGraphTest, LocalSelectivityMultiplies) {
  QueryBuilder qb(*catalog_);
  qb.AddTable("T0", "t0");
  qb.Local("t0", "a", LocalOp::kEq, 0.5);
  qb.Local("t0", "b", LocalOp::kRange, 0.2);
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->LocalSelectivity(0), 0.1);
}

TEST_F(QueryGraphTest, TransitiveClosureAddsCycleEdge) {
  // a chain t0.a = t1.a, t1.a = t2.a implies t0.a = t2.a.
  QueryGraph g = Chain(3);
  EXPECT_EQ(g.join_predicates().size(), 2u);
  int added = g.DeriveTransitiveClosure();
  EXPECT_EQ(added, 1);
  EXPECT_EQ(g.join_predicates().size(), 3u);
  EXPECT_TRUE(g.join_predicates()[2].derived);
  // Now {0,2} are directly connected: a cycle exists.
  EXPECT_TRUE(g.AreConnected(TableSet::Single(0), TableSet::Single(2)));
  // Idempotent.
  EXPECT_EQ(g.DeriveTransitiveClosure(), 0);
}

TEST_F(QueryGraphTest, GlobalEquivalenceMergesJoinColumns) {
  QueryGraph g = Chain(3);
  const ColumnEquivalence& eq = g.GlobalEquivalence();
  EXPECT_TRUE(eq.Equivalent(ColumnRef(0, 0), ColumnRef(2, 0)));
  EXPECT_FALSE(eq.Equivalent(ColumnRef(0, 0), ColumnRef(0, 1)));
}

TEST_F(QueryGraphTest, OuterEnabledRestrictsNullSide) {
  QueryBuilder qb(*catalog_);
  qb.AddTable("T0", "t0").AddTable("T1", "t1").AddTable("T2", "t2");
  qb.Join("t0", "a", "t1", "a", JoinKind::kLeftOuter);  // t1 null-producing
  qb.Join("t1", "b", "t2", "b");
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  // t1 alone (or with t2) cannot lead a join until t0 is in.
  EXPECT_FALSE(g->OuterEnabled(TableSet::Single(1)));
  EXPECT_FALSE(g->OuterEnabled(TableSet::Single(1).With(2)));
  EXPECT_TRUE(g->OuterEnabled(TableSet::Single(0)));
  EXPECT_TRUE(g->OuterEnabled(TableSet::FirstN(2)));
  EXPECT_TRUE(g->OuterEnabled(TableSet::FirstN(3)));
}

TEST_F(QueryGraphTest, OuterJoinOrientation) {
  QueryBuilder qb(*catalog_);
  qb.AddTable("T0", "t0").AddTable("T1", "t1");
  qb.Join("t0", "a", "t1", "a", JoinKind::kLeftOuter);
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  // Preserved side must be the outer when the predicate crosses the cut.
  EXPECT_TRUE(g->OuterJoinOrientationOk(TableSet::Single(0),
                                        TableSet::Single(1)));
  EXPECT_FALSE(g->OuterJoinOrientationOk(TableSet::Single(1),
                                         TableSet::Single(0)));
}

TEST_F(QueryGraphTest, InnerOnlyTableNotOuterEnabled) {
  QueryBuilder qb(*catalog_);
  qb.AddTable("T0", "t0").AddTable("T1", "t1");
  qb.Join("t0", "a", "t1", "a");
  qb.InnerOnly("t1");
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g->OuterEnabled(TableSet::Single(1)));
  EXPECT_TRUE(g->OuterEnabled(TableSet::Single(0)));
  // The full query result is always usable.
  EXPECT_TRUE(g->OuterEnabled(TableSet::FirstN(2)));
}

TEST_F(QueryGraphTest, OuterJoinPredicateExcludedFromClosure) {
  QueryBuilder qb(*catalog_);
  qb.AddTable("T0", "t0").AddTable("T1", "t1").AddTable("T2", "t2");
  qb.Join("t0", "a", "t1", "a", JoinKind::kLeftOuter);
  qb.Join("t1", "a", "t2", "a");
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  // Equality does not transit through the null-producing side.
  EXPECT_EQ(g->DeriveTransitiveClosure(), 0);
}

TEST_F(QueryGraphTest, BuilderErrors) {
  {
    QueryBuilder qb(*catalog_);
    qb.AddTable("NOPE");
    EXPECT_EQ(qb.Build().status().code(), StatusCode::kNotFound);
  }
  {
    QueryBuilder qb(*catalog_);
    qb.AddTable("T0", "x").AddTable("T1", "x");
    EXPECT_EQ(qb.Build().status().code(), StatusCode::kAlreadyExists);
  }
  {
    QueryBuilder qb(*catalog_);
    qb.AddTable("T0", "t0");
    qb.Join("t0", "a", "t9", "a");
    EXPECT_FALSE(qb.Build().ok());
  }
  {
    QueryBuilder qb(*catalog_);
    EXPECT_EQ(qb.Build().status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(QueryGraphTest, GroupByOrderBySetters) {
  QueryBuilder qb(*catalog_);
  qb.AddTable("T0", "t0").AddTable("T1", "t1");
  qb.Join("t0", "a", "t1", "a");
  qb.GroupBy({{"t0", "b"}, {"t1", "c"}});
  qb.OrderBy({{"t0", "c"}});
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->has_aggregation());
  EXPECT_EQ(g->group_by().size(), 2u);
  EXPECT_EQ(g->order_by().size(), 1u);
  EXPECT_EQ(g->order_by()[0], ColumnRef(0, 2));
}

}  // namespace
}  // namespace cote
