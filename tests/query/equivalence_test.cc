#include "query/equivalence.h"

#include <gtest/gtest.h>

namespace cote {
namespace {

TEST(EquivalenceTest, UnknownColumnsAreTheirOwnClass) {
  ColumnEquivalence eq;
  ColumnRef a(0, 1);
  EXPECT_EQ(eq.Find(a), a);
  EXPECT_FALSE(eq.Equivalent(a, ColumnRef(0, 2)));
  EXPECT_TRUE(eq.Equivalent(a, a));
}

TEST(EquivalenceTest, SimplePair) {
  ColumnEquivalence eq;
  ColumnRef a(0, 0), b(1, 0);
  eq.AddEquivalence(a, b);
  EXPECT_TRUE(eq.Equivalent(a, b));
  // Representative is the minimum-encoded member.
  EXPECT_EQ(eq.Find(a), a);
  EXPECT_EQ(eq.Find(b), a);
}

TEST(EquivalenceTest, TransitiveChains) {
  ColumnEquivalence eq;
  ColumnRef a(0, 0), b(1, 0), c(2, 0), d(3, 0);
  eq.AddEquivalence(c, d);
  eq.AddEquivalence(a, b);
  eq.AddEquivalence(b, c);
  EXPECT_TRUE(eq.Equivalent(a, d));
  EXPECT_EQ(eq.Find(d), a);
  EXPECT_EQ(eq.Classes().size(), 1u);
  EXPECT_EQ(eq.Classes()[0].size(), 4u);
}

TEST(EquivalenceTest, DisjointClasses) {
  ColumnEquivalence eq;
  eq.AddEquivalence(ColumnRef(0, 0), ColumnRef(1, 0));
  eq.AddEquivalence(ColumnRef(2, 5), ColumnRef(3, 5));
  EXPECT_FALSE(eq.Equivalent(ColumnRef(0, 0), ColumnRef(2, 5)));
  auto classes = eq.Classes();
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0].size(), 2u);
  EXPECT_EQ(classes[1].size(), 2u);
}

TEST(EquivalenceTest, IdempotentAdds) {
  ColumnEquivalence eq;
  ColumnRef a(0, 0), b(1, 0);
  eq.AddEquivalence(a, b);
  eq.AddEquivalence(a, b);
  eq.AddEquivalence(b, a);
  EXPECT_EQ(eq.Classes().size(), 1u);
  EXPECT_EQ(eq.Classes()[0].size(), 2u);
}

TEST(EquivalenceTest, ClassesSortedAscending) {
  ColumnEquivalence eq;
  eq.AddEquivalence(ColumnRef(5, 0), ColumnRef(2, 0));
  eq.AddEquivalence(ColumnRef(2, 0), ColumnRef(7, 3));
  auto classes = eq.Classes();
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0][0], ColumnRef(2, 0));
  EXPECT_EQ(classes[0][1], ColumnRef(5, 0));
  EXPECT_EQ(classes[0][2], ColumnRef(7, 3));
}

// Property sweep: merging stars of varying size always yields a single
// class whose representative is the minimum.
class EquivalenceStarTest : public ::testing::TestWithParam<int> {};

TEST_P(EquivalenceStarTest, StarMerge) {
  int n = GetParam();
  ColumnEquivalence eq;
  ColumnRef hub(3, 2);
  for (int i = 0; i < n; ++i) {
    eq.AddEquivalence(hub, ColumnRef(4 + i, 0));
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(eq.Find(ColumnRef(4 + i, 0)), hub);
  }
  EXPECT_EQ(eq.Classes().size(), 1u);
  EXPECT_EQ(eq.Classes()[0].size(), static_cast<size_t>(n + 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EquivalenceStarTest,
                         ::testing::Values(1, 2, 5, 10, 30));

}  // namespace
}  // namespace cote
