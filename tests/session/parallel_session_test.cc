// Session-layer behavior of parallel enumeration (parallel_workers > 1):
// equivalence to serial through the full pipeline, budget-trip
// propagation across the worker team, and warm-state invariance after a
// trip. Deliberately a trimmed query set (10-table workload queries):
// fixture names contain "Session" so tools/run_checks.sh's TSan gate
// (`ctest -R 'Session'`) races every test here on every run — the full
// 18-golden sweep lives in optimizer_test (parallel_equivalence_test.cc)
// where TSan's ~10x slowdown doesn't apply.
//
// Budget-trip comparisons check *outcomes* (degraded, tripped_limit,
// fallback plan), never partial counters: a mid-rank deadline or cap trip
// cancels sibling workers at whatever mask they happen to be on, so the
// partial stats of a tripped parallel run are timing-dependent by design
// (the outcome is not — see DESIGN.md §12).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault_points.h"
#include "common/resource_budget.h"
#include "session/session.h"
#include "tests/common/fault_injection.h"
#include "workload/workload.h"

namespace cote {
namespace {

using testing::FaultScript;

OptimizerOptions ParallelOptions(int workers) {
  OptimizerOptions o;
  o.enumeration.max_composite_inner = 3;
  o.parallel_workers = workers;
  return o;
}

ResourceLimits GenerousLimits() {
  ResourceLimits limits;
  limits.deadline_seconds = 3600.0;
  limits.max_memo_entries = int64_t{1} << 50;
  limits.max_plans = int64_t{1} << 50;
  return limits;
}

/// Limits a 10-table workload query cannot fit in.
ResourceLimits TinyLimits() {
  ResourceLimits limits;
  limits.max_memo_entries = 24;
  return limits;
}

void ExpectSameOptimize(const OptimizeResult& x, const OptimizeResult& y) {
  EXPECT_DOUBLE_EQ(x.stats.best_cost, y.stats.best_cost);
  EXPECT_EQ(x.stats.plans_stored, y.stats.plans_stored);
  EXPECT_EQ(x.stats.memo_entries, y.stats.memo_entries);
  EXPECT_EQ(x.stats.enumeration.joins_ordered,
            y.stats.enumeration.joins_ordered);
  EXPECT_EQ(x.stats.enumeration.entries_created,
            y.stats.enumeration.entries_created);
  for (int m = 0; m < kNumJoinMethods; ++m) {
    EXPECT_EQ(x.stats.join_plans_generated.counts[m],
              y.stats.join_plans_generated.counts[m]);
  }
  EXPECT_EQ(x.degraded, y.degraded);
  EXPECT_EQ(x.tripped_limit, y.tripped_limit);
}

void ExpectSameEstimate(const CompileTimeEstimate& x,
                        const CompileTimeEstimate& y) {
  for (int m = 0; m < kNumJoinMethods; ++m) {
    EXPECT_EQ(x.plan_estimates.counts[m], y.plan_estimates.counts[m]);
  }
  EXPECT_EQ(x.enumeration.joins_ordered, y.enumeration.joins_ordered);
  EXPECT_EQ(x.plan_slots, y.plan_slots);
  EXPECT_EQ(x.estimated_memo_bytes, y.estimated_memo_bytes);
  EXPECT_EQ(x.completion_plans, y.completion_plans);
  EXPECT_DOUBLE_EQ(x.estimated_seconds, y.estimated_seconds);
  EXPECT_EQ(x.degraded, y.degraded);
}

// ---------------------------------------------------------------------------
// Ungoverned equivalence through the session facade.

TEST(SessionParallelTest, MatchesSerialAcrossWorkloadShapes) {
  Workload linear = LinearWorkload();
  Workload star = StarWorkload();
  Workload random = RandomWorkload(13, 42);
  TimeModel model;
  for (const Workload* w : {&linear, &star, &random}) {
    const QueryGraph& q = w->queries[w->size() > 12 ? 12 : w->size() - 1];
    CompilationSession serial(ParallelOptions(1));
    auto s = serial.Optimize(q);
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(s->stats.parallel_workers, 1);
    for (int workers : {2, 4, 8}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      CompilationSession parallel(ParallelOptions(workers));
      auto p = parallel.Optimize(q);
      ASSERT_TRUE(p.ok());
      ExpectSameOptimize(*p, *s);
      EXPECT_EQ(p->stats.parallel_workers, workers);
      ExpectSameEstimate(parallel.Estimate(q, model),
                         serial.Estimate(q, model));
    }
  }
}

TEST(SessionParallelTest, WarmCompilesAndEstimatesStayExact) {
  // One parallel session across a mixed batch, twice over — the shard
  // counters and worker team are reused every run and must never drift.
  Workload w = StarWorkload();
  TimeModel model;
  CompilationSession parallel(ParallelOptions(4));
  CompilationSession serial(ParallelOptions(1));
  for (int round = 0; round < 2; ++round) {
    for (int i : {3, 12, 6, 12}) {
      const QueryGraph& q = w.queries[static_cast<size_t>(i)];
      auto p = parallel.Optimize(q);
      auto s = serial.Optimize(q);
      ASSERT_TRUE(p.ok() && s.ok());
      ExpectSameOptimize(*p, *s);
      ExpectSameEstimate(parallel.Estimate(q, model),
                         serial.Estimate(q, model));
    }
  }
}

TEST(SessionParallelTest, IneligibleQueriesTakeTheSerialPath) {
  // Top-down enumeration is not rank-partitionable; the gate must fall
  // back to the exact serial path, workers notwithstanding.
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[6];
  OptimizerOptions opts = ParallelOptions(4);
  opts.enumeration.kind = EnumeratorKind::kTopDown;
  CompilationSession parallel(opts);
  auto p = parallel.Optimize(q);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->stats.parallel_workers, 1);
  EXPECT_EQ(p->stats.enumeration_busy_seconds, 0.0);

  OptimizerOptions serial_opts = opts;
  serial_opts.parallel_workers = 1;
  CompilationSession serial(serial_opts);
  auto s = serial.Optimize(q);
  ASSERT_TRUE(s.ok());
  ExpectSameOptimize(*p, *s);
}

// ---------------------------------------------------------------------------
// Budget-trip propagation across the worker team (satellite 3): a trip in
// one shard cancels all workers and degrades (or fails) exactly as the
// serial governed compile does.

TEST(SessionParallelGovernanceTest, ArmedUntrippedMatchesUngoverned) {
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[12];
  TimeModel model;
  CompilationSession governed(ParallelOptions(4));
  CompilationSession plain(ParallelOptions(4));
  auto g = governed.Optimize(q, GenerousLimits());
  auto p = plain.Optimize(q);
  ASSERT_TRUE(g.ok() && p.ok());
  EXPECT_FALSE(g->degraded);
  ExpectSameOptimize(*g, *p);
  ExpectSameEstimate(governed.Estimate(q, model, GenerousLimits()),
                     plain.Estimate(q, model));
  EXPECT_EQ(governed.stats().degraded_runs, 0);
}

TEST(SessionParallelGovernanceTest, EveryLimitKindDegradesLikeSerial) {
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[12];

  ResourceLimits entry_cap = TinyLimits();
  ResourceLimits plan_cap;
  plan_cap.max_plans = 50;
  ResourceLimits checkpoint_cap;
  checkpoint_cap.max_checkpoints = 5;
  ResourceLimits deadline;
  deadline.deadline_seconds = 1e-12;

  struct Case {
    const char* name;
    const ResourceLimits* limits;
    BudgetLimit expect;
  } cases[] = {
      {"entries", &entry_cap, BudgetLimit::kMemoEntries},
      {"plans", &plan_cap, BudgetLimit::kPlans},
      {"checkpoints", &checkpoint_cap, BudgetLimit::kCheckpoints},
      {"deadline", &deadline, BudgetLimit::kDeadline},
  };
  for (const Case& c : cases) {
    for (int workers : {2, 8}) {
      SCOPED_TRACE(std::string(c.name) + " workers=" +
                   std::to_string(workers));
      CompilationSession parallel(ParallelOptions(workers));
      CompilationSession serial(ParallelOptions(1));
      auto p = parallel.Optimize(q, *c.limits);
      auto s = serial.Optimize(q, *c.limits);
      ASSERT_TRUE(p.ok() && s.ok());
      EXPECT_TRUE(p->degraded);
      EXPECT_EQ(p->tripped_limit, c.expect);
      EXPECT_EQ(p->degraded_stage, CompileStage::kEnumerate);
      // Outcome equality with serial: same trip, same greedy fallback
      // plan (the fallback rebuilds from scratch, so its cost is exact
      // even though the abandoned partial enumeration isn't compared).
      EXPECT_EQ(s->degraded, p->degraded);
      EXPECT_EQ(s->tripped_limit, p->tripped_limit);
      ASSERT_NE(p->best_plan, nullptr);
      EXPECT_DOUBLE_EQ(p->stats.best_cost, s->stats.best_cost);
      EXPECT_EQ(parallel.stats().degraded_runs, 1);
    }
  }
}

TEST(SessionParallelGovernanceTest, FailPolicyReturnsBudgetStatus) {
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[12];
  ResourceLimits exhausted = TinyLimits();
  exhausted.on_trip = BudgetAction::kFail;
  CompilationSession session(ParallelOptions(4));
  auto r = session.Optimize(q, exhausted);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);

  ResourceLimits late;
  late.deadline_seconds = 1e-12;
  late.on_trip = BudgetAction::kFail;
  auto d = session.Optimize(q, late);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kDeadlineExceeded);

  // The session survives: the next ungoverned parallel compile matches a
  // fresh serial session bit for bit.
  auto after = session.Optimize(q);
  CompilationSession fresh(ParallelOptions(1));
  auto reference = fresh.Optimize(q);
  ASSERT_TRUE(after.ok() && reference.ok());
  ExpectSameOptimize(*after, *reference);
}

TEST(SessionParallelGovernanceTest, TrippedCompileLeavesNoWarmState) {
  Workload linear = LinearWorkload();
  Workload star = StarWorkload();
  Workload random = RandomWorkload(13, 42);
  for (const Workload* w : {&linear, &star, &random}) {
    const QueryGraph& good = w->queries[3];
    const QueryGraph& heavy = w->queries[w->size() > 12 ? 12 : w->size() - 1];

    CompilationSession session(ParallelOptions(4));
    auto first = session.Optimize(good);
    auto tripped = session.Optimize(heavy, TinyLimits());
    auto second = session.Optimize(good);
    ASSERT_TRUE(first.ok() && tripped.ok() && second.ok());
    EXPECT_TRUE(tripped->degraded);

    CompilationSession fresh(ParallelOptions(1));
    auto reference = fresh.Optimize(good);
    ASSERT_TRUE(reference.ok());
    ExpectSameOptimize(*second, *reference);
    ExpectSameOptimize(*first, *reference);
  }
}

TEST(SessionParallelGovernanceTest, TrippedEstimateLeavesNoWarmState) {
  Workload star = StarWorkload();
  TimeModel model;
  const QueryGraph& good = star.queries[3];
  const QueryGraph& heavy = star.queries[12];

  CompilationSession session(ParallelOptions(4));
  CompileTimeEstimate first = session.Estimate(good, model);
  CompileTimeEstimate tripped = session.Estimate(heavy, model, TinyLimits());
  EXPECT_TRUE(tripped.degraded);
  EXPECT_EQ(tripped.tripped_limit, BudgetLimit::kMemoEntries);
  EXPECT_EQ(tripped.degraded_stage, CompileStage::kEnumerate);
  EXPECT_EQ(tripped.completion_plans, 0);
  CompileTimeEstimate second = session.Estimate(good, model);

  CompilationSession fresh(ParallelOptions(1));
  CompileTimeEstimate reference = fresh.Estimate(good, model);
  ExpectSameEstimate(second, reference);
  ExpectSameEstimate(first, reference);
}

TEST(SessionParallelGovernanceTest, PartialEstimateIsAFlaggedLowerBound) {
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[12];
  TimeModel model;
  CompilationSession session(ParallelOptions(4));
  CompileTimeEstimate full = session.Estimate(q, model);
  CompileTimeEstimate partial = session.Estimate(q, model, TinyLimits());
  EXPECT_TRUE(partial.degraded);
  EXPECT_EQ(partial.tripped_limit, BudgetLimit::kMemoEntries);
  EXPECT_LT(partial.enumeration.entries_created,
            full.enumeration.entries_created);
  EXPECT_LE(partial.plan_estimates.total(), full.plan_estimates.total());
  EXPECT_EQ(partial.completion_plans, 0);
}

// ---------------------------------------------------------------------------
// Fault injection composes with parallel enumeration: stage-boundary
// faults fire after the team has quiesced, and the session stays usable.

TEST(SessionParallelFaultTest, EnumerateFaultAbandonsCleanly) {
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[6];
  CompilationSession session(ParallelOptions(4));
  {
    FaultScript script;
    script.FailAt(kFaultPlanEnumerate, nullptr,
                  Status::Internal("injected after parallel enumerate"));
    auto r = session.Optimize(q);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInternal);
    EXPECT_GE(script.injected(), 1);
  }
  auto after = session.Optimize(q);
  CompilationSession fresh(ParallelOptions(1));
  auto reference = fresh.Optimize(q);
  ASSERT_TRUE(after.ok() && reference.ok());
  ExpectSameOptimize(*after, *reference);
}

TEST(SessionParallelFaultTest, InjectedTripAtNthCheckCancelsTheTeam) {
  // max_checkpoints is the deterministic fault-injection knob: the Nth
  // cooperative check — wherever in the mask space a worker reaches it —
  // must cancel every worker and degrade, repeatably.
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[12];
  ResourceLimits limits;
  limits.max_checkpoints = 7;
  for (int round = 0; round < 3; ++round) {
    CompilationSession session(ParallelOptions(8));
    auto r = session.Optimize(q, limits);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->degraded);
    EXPECT_EQ(r->tripped_limit, BudgetLimit::kCheckpoints);
    ASSERT_NE(r->best_plan, nullptr);
  }
}

}  // namespace
}  // namespace cote
