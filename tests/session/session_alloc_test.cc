// Runtime half of the session layer's cross-query reuse contract: the
// second estimate-mode compile of the same query through one
// CompilationSession performs ZERO heap allocations. This extends the
// within-one-query invariant of tests/optimizer/hotpath_alloc_test.cc
// ("warm enumerator re-run allocates nothing") across the whole pipeline:
// bind (warm reset) → counter reset → enumerate → completion count →
// time-model finalize.
//
// Own test binary: COTE_ALLOC_GUARD_IMPLEMENT must define the counting
// global operator new/delete in exactly one executable.

#define COTE_ALLOC_GUARD_IMPLEMENT
#include "tests/common/alloc_guard.h"

#include <gtest/gtest.h>

#include "session/session.h"
#include "workload/workload.h"

namespace cote {
namespace {

OptimizerOptions SmallOptions() {
  OptimizerOptions o;
  o.enumeration.max_composite_inner = 3;
  return o;
}

class SessionAllocTest : public ::testing::TestWithParam<const char*> {
 protected:
  static Workload MakeWorkload(const std::string& which) {
    if (which == "star") return StarWorkload();
    if (which == "linear") return LinearWorkload();
    return RandomWorkload(/*num_queries=*/6, /*seed=*/7);
  }
};

TEST_P(SessionAllocTest, SecondEstimateOfSameQueryAllocatesNothing) {
  Workload w = MakeWorkload(GetParam());
  const QueryGraph& q = w.queries[w.queries.size() / 2];
  TimeModel model;
  CompilationSession session(SmallOptions());

  CompileTimeEstimate cold = session.Estimate(q, model);

  testing::AllocationCounter counter;
  CompileTimeEstimate warm = session.Estimate(q, model);
  EXPECT_EQ(counter.delta(), 0)
      << "steady-state estimate through a warm session must not allocate";

  // The warm run must be indistinguishable from the cold one.
  for (int m = 0; m < kNumJoinMethods; ++m) {
    EXPECT_EQ(cold.plan_estimates.counts[m], warm.plan_estimates.counts[m]);
  }
  EXPECT_EQ(cold.enumeration.joins_ordered, warm.enumeration.joins_ordered);
  EXPECT_EQ(cold.plan_slots, warm.plan_slots);
  EXPECT_EQ(cold.completion_plans, warm.completion_plans);
  EXPECT_DOUBLE_EQ(cold.estimated_seconds, warm.estimated_seconds);
  EXPECT_EQ(session.stats().warm_resets, 1);
  EXPECT_EQ(session.stats().context_rebinds, 1);
}

TEST_P(SessionAllocTest, WarmEstimatesStayAllocationFreeAcrossRepeats) {
  Workload w = MakeWorkload(GetParam());
  const QueryGraph& q = w.queries[w.queries.size() / 2];
  TimeModel model;
  CompilationSession session(SmallOptions());
  session.Estimate(q, model);

  testing::AllocationCounter counter;
  for (int i = 0; i < 5; ++i) session.Estimate(q, model);
  EXPECT_EQ(counter.delta(), 0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SessionAllocTest,
                         ::testing::Values("linear", "star", "random"));

TEST(SessionAllocSteadyTest, ArmedUntrippedBudgetAllocatesNothing) {
  // The governance hot path — Arm, per-entry/per-plan charges, amortized
  // checkpoints with deadline sampling — adds ZERO heap allocations to a
  // warm estimate. The budget is session-owned POD state; tripping (not
  // exercised here) only ever flips a flag — now an atomic (so a
  // supervisor thread can TripExternal a compile in flight), but the
  // armed-untripped fast path is still a single relaxed load per check.
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[w.queries.size() / 2];
  TimeModel model;
  ResourceLimits generous;
  generous.deadline_seconds = 3600.0;
  generous.max_memo_entries = int64_t{1} << 50;
  generous.max_plans = int64_t{1} << 50;
  CompilationSession session(SmallOptions());
  session.Estimate(q, model, generous);

  testing::AllocationCounter counter;
  CompileTimeEstimate warm = session.Estimate(q, model, generous);
  EXPECT_EQ(counter.delta(), 0)
      << "an armed-but-untripped budget must stay allocation-free";
  EXPECT_FALSE(warm.degraded);
}

TEST(SessionAllocSteadyTest, CrossQueryRebindReusesArenas) {
  // Alternating between two queries is not allocation-*free* (entry
  // property lists are rebuilt per cold bind), but it must be allocation-
  // *steady*: once both queries have been seen, a further round allocates
  // no more than the round before it — the arenas stopped growing.
  Workload w = StarWorkload();
  const QueryGraph& a = w.queries[4];
  const QueryGraph& b = w.queries[9];
  TimeModel model;
  CompilationSession session(SmallOptions());
  session.Estimate(a, model);
  session.Estimate(b, model);

  testing::AllocationCounter first_round;
  session.Estimate(a, model);
  session.Estimate(b, model);
  int64_t first = first_round.delta();

  testing::AllocationCounter second_round;
  session.Estimate(a, model);
  session.Estimate(b, model);
  EXPECT_LE(second_round.delta(), first);
}

}  // namespace
}  // namespace cote
