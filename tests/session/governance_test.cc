#include <gtest/gtest.h>

#include <vector>

#include "common/resource_budget.h"
#include "core/meta_optimizer.h"
#include "session/session.h"
#include "session/session_pool.h"
#include "workload/workload.h"

namespace cote {
namespace {

OptimizerOptions SmallOptions() {
  OptimizerOptions o;
  o.enumeration.max_composite_inner = 3;
  return o;
}

/// Limits far beyond what any test query can use: the budget arms (every
/// checkpoint runs its bookkeeping) but never trips — the configuration
/// whose overhead EXPERIMENTS.md benchmarks against ungoverned runs.
ResourceLimits GenerousLimits() {
  ResourceLimits limits;
  limits.deadline_seconds = 3600.0;
  limits.max_memo_entries = int64_t{1} << 50;
  limits.max_plans = int64_t{1} << 50;
  return limits;
}

/// Limits a 10-table query cannot fit in (but tiny queries can): the
/// per-index-isolation tests rely on this split.
ResourceLimits TinyLimits() {
  ResourceLimits limits;
  limits.max_memo_entries = 24;
  return limits;
}

void ExpectSameOptimize(const OptimizeResult& x, const OptimizeResult& y) {
  EXPECT_DOUBLE_EQ(x.stats.best_cost, y.stats.best_cost);
  EXPECT_EQ(x.stats.plans_stored, y.stats.plans_stored);
  EXPECT_EQ(x.stats.memo_entries, y.stats.memo_entries);
  EXPECT_EQ(x.stats.enumeration.joins_ordered,
            y.stats.enumeration.joins_ordered);
  EXPECT_EQ(x.stats.enumeration.entries_created,
            y.stats.enumeration.entries_created);
  for (int m = 0; m < kNumJoinMethods; ++m) {
    EXPECT_EQ(x.stats.join_plans_generated.counts[m],
              y.stats.join_plans_generated.counts[m]);
  }
  EXPECT_EQ(x.degraded, y.degraded);
  EXPECT_EQ(x.tripped_limit, y.tripped_limit);
}

void ExpectSameEstimate(const CompileTimeEstimate& x,
                        const CompileTimeEstimate& y) {
  for (int m = 0; m < kNumJoinMethods; ++m) {
    EXPECT_EQ(x.plan_estimates.counts[m], y.plan_estimates.counts[m]);
  }
  EXPECT_EQ(x.enumeration.joins_ordered, y.enumeration.joins_ordered);
  EXPECT_EQ(x.plan_slots, y.plan_slots);
  EXPECT_EQ(x.estimated_memo_bytes, y.estimated_memo_bytes);
  EXPECT_EQ(x.completion_plans, y.completion_plans);
  EXPECT_DOUBLE_EQ(x.estimated_seconds, y.estimated_seconds);
  EXPECT_EQ(x.degraded, y.degraded);
}

// ---------------------------------------------------------------------------
// ResourceBudget unit behavior.

TEST(ResourceBudgetTest, UnlimitedLimitsArmNothing) {
  ResourceBudget budget;
  budget.Arm(ResourceLimits{});
  EXPECT_FALSE(budget.armed());
  EXPECT_FALSE(budget.Checkpoint());
  budget.ChargeEntries(1 << 20);
  budget.ChargePlans(1 << 20);
  EXPECT_FALSE(budget.tripped());
}

TEST(ResourceBudgetTest, EntryCapTripsOnlyPastTheCap) {
  ResourceBudget budget;
  ResourceLimits limits;
  limits.max_memo_entries = 10;
  budget.Arm(limits);
  EXPECT_TRUE(budget.armed());
  budget.ChargeEntries(10);  // exactly at the cap: not tripped
  EXPECT_FALSE(budget.tripped());
  budget.ChargeEntries(1);  // past it
  EXPECT_TRUE(budget.tripped());
  EXPECT_EQ(budget.tripped_limit(), BudgetLimit::kMemoEntries);
}

TEST(ResourceBudgetTest, CheckpointCapTripsAtTheNthCheck) {
  ResourceBudget budget;
  ResourceLimits limits;
  limits.max_checkpoints = 3;
  budget.Arm(limits);
  EXPECT_FALSE(budget.Checkpoint());
  EXPECT_FALSE(budget.Checkpoint());
  EXPECT_TRUE(budget.Checkpoint());  // trips *at* the 3rd check
  EXPECT_EQ(budget.tripped_limit(), BudgetLimit::kCheckpoints);
  EXPECT_EQ(budget.checkpoints(), 3);
}

TEST(ResourceBudgetTest, FirstTrippedLimitWins) {
  ResourceBudget budget;
  ResourceLimits limits;
  limits.max_memo_entries = 1;
  limits.max_plans = 1;
  budget.Arm(limits);
  budget.ChargeEntries(2);
  budget.ChargePlans(2);
  EXPECT_EQ(budget.tripped_limit(), BudgetLimit::kMemoEntries);
}

TEST(ResourceBudgetTest, DeadlineIsSampledAtTheFirstCheckpoint) {
  ResourceBudget budget;
  ResourceLimits limits;
  limits.deadline_seconds = 1e-12;  // armed, and already in the past
  budget.Arm(limits);
  EXPECT_TRUE(budget.Checkpoint());
  EXPECT_EQ(budget.tripped_limit(), BudgetLimit::kDeadline);
}

TEST(ResourceBudgetTest, TripStatusMapsLimitsToCodes) {
  ResourceBudget budget;
  EXPECT_TRUE(budget.TripStatus().ok());

  ResourceLimits deadline;
  deadline.deadline_seconds = 1e-12;
  budget.Arm(deadline);
  budget.Checkpoint();
  EXPECT_EQ(budget.TripStatus().code(), StatusCode::kDeadlineExceeded);

  ResourceLimits plans;
  plans.max_plans = 1;
  budget.Arm(plans);  // re-arming zeroes the prior trip
  EXPECT_FALSE(budget.tripped());
  budget.ChargePlans(2);
  EXPECT_EQ(budget.TripStatus().code(), StatusCode::kResourceExhausted);

  budget.Disarm();
  EXPECT_FALSE(budget.armed());
  EXPECT_TRUE(budget.TripStatus().ok());
}

// ---------------------------------------------------------------------------
// Governed compiles: equivalence when the budget does not trip.

TEST(GovernanceTest, UnlimitedLimitsMatchUngovernedCompile) {
  Workload linear = LinearWorkload();
  Workload star = StarWorkload();
  Workload random = RandomWorkload(13, 42);
  TimeModel model;
  for (const Workload* w : {&linear, &star, &random}) {
    const QueryGraph& q = w->queries[w->size() > 12 ? 12 : w->size() - 1];
    CompilationSession governed(SmallOptions());
    CompilationSession plain(SmallOptions());
    auto g = governed.Optimize(q, ResourceLimits{});
    auto p = plain.Optimize(q);
    ASSERT_TRUE(g.ok() && p.ok());
    EXPECT_FALSE(g->degraded);
    ExpectSameOptimize(*g, *p);
    ExpectSameEstimate(governed.Estimate(q, model, ResourceLimits{}),
                       plain.Estimate(q, model));
  }
}

TEST(GovernanceTest, ArmedButUntrippedMatchesUngoverned) {
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[12];
  TimeModel model;
  CompilationSession governed(SmallOptions());
  CompilationSession plain(SmallOptions());
  auto g = governed.Optimize(q, GenerousLimits());
  auto p = plain.Optimize(q);
  ASSERT_TRUE(g.ok() && p.ok());
  EXPECT_FALSE(g->degraded);
  ExpectSameOptimize(*g, *p);
  ExpectSameEstimate(governed.Estimate(q, model, GenerousLimits()),
                     plain.Estimate(q, model));
  EXPECT_EQ(governed.stats().degraded_runs, 0);
}

// ---------------------------------------------------------------------------
// Tripped budgets: greedy fallback, statuses, determinism.

TEST(GovernanceTest, EntryCapDegradesToGreedyPlan) {
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[12];  // 10 tables: blows a 24-entry cap
  CompilationSession session(SmallOptions());
  auto r = session.Optimize(q, TinyLimits());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->degraded);
  EXPECT_EQ(r->tripped_limit, BudgetLimit::kMemoEntries);
  EXPECT_EQ(r->degraded_stage, CompileStage::kEnumerate);
  ASSERT_NE(r->best_plan, nullptr);
  EXPECT_GT(r->stats.best_cost, 0.0);
  EXPECT_EQ(session.stats().degraded_runs, 1);

  // The fallback is exactly the kLow compile of the same query.
  OptimizerOptions low = SmallOptions();
  low.level = OptimizationLevel::kLow;
  CompilationSession low_session(low);
  auto l = low_session.Optimize(q);
  ASSERT_TRUE(l.ok());
  EXPECT_DOUBLE_EQ(r->stats.best_cost, l->stats.best_cost);
}

TEST(GovernanceTest, PlanCapDegradesToGreedyPlan) {
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[12];
  ResourceLimits limits;
  limits.max_plans = 50;
  CompilationSession session(SmallOptions());
  auto r = session.Optimize(q, limits);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->degraded);
  EXPECT_EQ(r->tripped_limit, BudgetLimit::kPlans);
  ASSERT_NE(r->best_plan, nullptr);
}

TEST(GovernanceTest, CheckpointCapIsDeterministic) {
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[12];
  ResourceLimits limits;
  limits.max_checkpoints = 5;
  CompilationSession a(SmallOptions());
  CompilationSession b(SmallOptions());
  auto ra = a.Optimize(q, limits);
  auto rb = b.Optimize(q, limits);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_TRUE(ra->degraded);
  EXPECT_EQ(ra->tripped_limit, BudgetLimit::kCheckpoints);
  ExpectSameOptimize(*ra, *rb);
}

TEST(GovernanceTest, DeadlineTripDegrades) {
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[12];
  ResourceLimits limits;
  limits.deadline_seconds = 1e-12;  // sampled (and expired) at checkpoint 1
  CompilationSession session(SmallOptions());
  auto r = session.Optimize(q, limits);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->degraded);
  EXPECT_EQ(r->tripped_limit, BudgetLimit::kDeadline);
  ASSERT_NE(r->best_plan, nullptr);
}

TEST(GovernanceTest, FailPolicyReturnsBudgetStatus) {
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[12];

  ResourceLimits exhausted = TinyLimits();
  exhausted.on_trip = BudgetAction::kFail;
  CompilationSession session(SmallOptions());
  auto r = session.Optimize(q, exhausted);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);

  ResourceLimits late;
  late.deadline_seconds = 1e-12;
  late.on_trip = BudgetAction::kFail;
  auto d = session.Optimize(q, late);
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kDeadlineExceeded);

  // The session survives the failures: a normal compile still works and
  // matches a fresh session's.
  auto after = session.Optimize(q);
  CompilationSession fresh(SmallOptions());
  auto f = fresh.Optimize(q);
  ASSERT_TRUE(after.ok() && f.ok());
  ExpectSameOptimize(*after, *f);
}

TEST(GovernanceTest, TopDownEnumeratorIsGovernedToo) {
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[12];
  OptimizerOptions opts = SmallOptions();
  opts.enumeration.kind = EnumeratorKind::kTopDown;

  CompilationSession governed(opts);
  CompilationSession plain(opts);
  auto g = governed.Optimize(q, GenerousLimits());
  auto p = plain.Optimize(q);
  ASSERT_TRUE(g.ok() && p.ok());
  EXPECT_FALSE(g->degraded);
  ExpectSameOptimize(*g, *p);

  auto tripped = governed.Optimize(q, TinyLimits());
  ASSERT_TRUE(tripped.ok());
  EXPECT_TRUE(tripped->degraded);
  EXPECT_EQ(tripped->tripped_limit, BudgetLimit::kMemoEntries);
  ASSERT_NE(tripped->best_plan, nullptr);
}

TEST(GovernanceTest, GovernedEstimateReturnsPartialCountsFlagged) {
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[12];
  TimeModel model;
  CompilationSession session(SmallOptions());
  CompileTimeEstimate full = session.Estimate(q, model);
  CompileTimeEstimate partial = session.Estimate(q, model, TinyLimits());
  EXPECT_TRUE(partial.degraded);
  EXPECT_EQ(partial.tripped_limit, BudgetLimit::kMemoEntries);
  EXPECT_EQ(partial.degraded_stage, CompileStage::kEnumerate);
  // The partial estimate covers a strict prefix of the enumeration and
  // skips completion counting entirely.
  EXPECT_LT(partial.enumeration.entries_created,
            full.enumeration.entries_created);
  EXPECT_LE(partial.plan_estimates.total(), full.plan_estimates.total());
  EXPECT_EQ(partial.completion_plans, 0);
  EXPECT_EQ(session.stats().degraded_runs, 1);
}

// ---------------------------------------------------------------------------
// Warm-state invariance: a budget-tripped compile must leave no trace —
// the next query behaves exactly as on a fresh session.

TEST(GovernanceTest, TrippedCompileLeavesNoWarmState) {
  Workload linear = LinearWorkload();
  Workload star = StarWorkload();
  Workload random = RandomWorkload(13, 42);
  for (const Workload* w : {&linear, &star, &random}) {
    const QueryGraph& good = w->queries[3];
    const QueryGraph& heavy = w->queries[w->size() > 12 ? 12 : w->size() - 1];

    CompilationSession session(SmallOptions());
    auto first = session.Optimize(good);
    auto tripped = session.Optimize(heavy, TinyLimits());
    auto second = session.Optimize(good);
    ASSERT_TRUE(first.ok() && tripped.ok() && second.ok());

    CompilationSession fresh(SmallOptions());
    auto reference = fresh.Optimize(good);
    ASSERT_TRUE(reference.ok());
    ExpectSameOptimize(*second, *reference);
    ExpectSameOptimize(*first, *reference);
  }
}

TEST(GovernanceTest, TrippedEstimateLeavesNoWarmState) {
  Workload linear = LinearWorkload();
  Workload star = StarWorkload();
  Workload random = RandomWorkload(13, 42);
  TimeModel model;
  for (const Workload* w : {&linear, &star, &random}) {
    const QueryGraph& good = w->queries[3];
    const QueryGraph& heavy = w->queries[w->size() > 12 ? 12 : w->size() - 1];

    CompilationSession session(SmallOptions());
    CompileTimeEstimate first = session.Estimate(good, model);
    CompileTimeEstimate tripped = session.Estimate(heavy, model, TinyLimits());
    EXPECT_TRUE(tripped.degraded);
    CompileTimeEstimate second = session.Estimate(good, model);

    CompilationSession fresh(SmallOptions());
    CompileTimeEstimate reference = fresh.Estimate(good, model);
    ExpectSameEstimate(second, reference);
    ExpectSameEstimate(first, reference);
  }
}

TEST(GovernanceTest, SerialGovernedBatchIsolatesPerIndex) {
  // Per-query limits: small queries sail through untouched, the 10-table
  // queries degrade — each index independent of its neighbors.
  Workload w = StarWorkload();
  std::vector<const QueryGraph*> qs;
  for (int i : {3, 12, 4, 13}) {
    qs.push_back(&w.queries[static_cast<size_t>(i)]);
  }
  // 64 entries: room for the 6-table stars (37 entries), not the 10-table
  // ones (521).
  ResourceLimits limits;
  limits.max_memo_entries = 64;
  CompilationSession governed(SmallOptions());
  auto batch = governed.CompileBatch(qs, limits);
  ASSERT_EQ(batch.size(), qs.size());
  ASSERT_TRUE(batch[0].ok() && batch[1].ok() && batch[2].ok() &&
              batch[3].ok());
  EXPECT_FALSE(batch[0]->degraded);
  EXPECT_TRUE(batch[1]->degraded);
  EXPECT_FALSE(batch[2]->degraded);
  EXPECT_TRUE(batch[3]->degraded);

  // The untouched indices match an entirely ungoverned batch.
  CompilationSession plain(SmallOptions());
  auto reference = plain.CompileBatch(qs);
  ExpectSameOptimize(*batch[0], *reference[0]);
  ExpectSameOptimize(*batch[2], *reference[2]);
  EXPECT_EQ(governed.stats().degraded_runs, 2);
}

TEST(GovernanceTest, ParallelWorkersDegradeAndRecoverLikeSerial) {
  // Smoke-level cross-check here next to the serial governance suite; the
  // full parallel trip matrix lives in parallel_session_test.cc.
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[12];
  OptimizerOptions par = SmallOptions();
  par.parallel_workers = 4;
  CompilationSession parallel(par);
  CompilationSession serial(SmallOptions());

  auto pt = parallel.Optimize(q, TinyLimits());
  auto st = serial.Optimize(q, TinyLimits());
  ASSERT_TRUE(pt.ok() && st.ok());
  EXPECT_TRUE(pt->degraded);
  EXPECT_EQ(pt->tripped_limit, st->tripped_limit);
  EXPECT_DOUBLE_EQ(pt->stats.best_cost, st->stats.best_cost);

  // Warm-invariant after the trip: the governed-then-clean sequence ends
  // bit-identical to a clean serial compile.
  auto pa = parallel.Optimize(q);
  auto sa = serial.Optimize(q);
  ASSERT_TRUE(pa.ok() && sa.ok());
  EXPECT_FALSE(pa->degraded);
  ExpectSameOptimize(*pa, *sa);
}

TEST(GovernedSessionPoolTest, PoolMatchesSerialGovernedBatch) {
  // Fixture name contains "Session" on purpose: run_checks.sh's TSan gate
  // filters `ctest -R 'Session'`, and per-query re-arming of worker-local
  // budgets is exactly the concurrency this PR adds.
  Workload linear = LinearWorkload();
  Workload star = StarWorkload();
  std::vector<const QueryGraph*> qs;
  for (const QueryGraph& q : linear.queries) qs.push_back(&q);
  for (const QueryGraph& q : star.queries) qs.push_back(&q);

  ResourceLimits limits;
  limits.max_memo_entries = 64;  // degrades big star queries, spares the rest
  SessionPool pool(4, SmallOptions());
  BatchOptimizeResult got = pool.CompileBatch(qs, limits);

  CompilationSession serial(SmallOptions());
  auto reference = serial.CompileBatch(qs, limits);
  ASSERT_EQ(got.results.size(), reference.size());
  int degraded = 0;
  for (size_t i = 0; i < qs.size(); ++i) {
    ASSERT_TRUE(got.results[i].ok() && reference[i].ok()) << i;
    EXPECT_EQ(got.results[i]->degraded, reference[i]->degraded) << i;
    ExpectSameOptimize(*got.results[i], *reference[i]);
    degraded += got.results[i]->degraded ? 1 : 0;
  }
  EXPECT_GT(degraded, 0);  // the limits really do bite...
  EXPECT_LT(degraded, static_cast<int>(qs.size()));  // ...but not everything
  EXPECT_EQ(got.stats.merged.degraded_runs, degraded);
}

// ---------------------------------------------------------------------------
// Stage observer: ordering, degraded traces, removal.

struct EventLog {
  std::vector<StageEvent> events;
  static void Record(void* ctx, const StageEvent& event) {
    static_cast<EventLog*>(ctx)->events.push_back(event);
  }
};

TEST(StageObserverTest, PlanModeFiresAllFourStagesInOrder) {
  Workload w = StarWorkload();
  CompilationSession session(SmallOptions());
  EventLog log;
  session.SetStageObserver(&EventLog::Record, &log);
  ASSERT_TRUE(session.Optimize(w.queries[6]).ok());
  ASSERT_EQ(log.events.size(), 4u);
  EXPECT_EQ(log.events[0].stage, CompileStage::kBind);
  EXPECT_EQ(log.events[1].stage, CompileStage::kEnumerate);
  EXPECT_EQ(log.events[2].stage, CompileStage::kComplete);
  EXPECT_EQ(log.events[3].stage, CompileStage::kFinalize);
  for (const StageEvent& e : log.events) {
    EXPECT_FALSE(e.estimate_mode);
    EXPECT_FALSE(e.budget_tripped);
    EXPECT_GE(e.seconds, 0.0);
  }
}

TEST(StageObserverTest, EstimateModeFiresAllFourStagesInOrder) {
  Workload w = StarWorkload();
  TimeModel model;
  CompilationSession session(SmallOptions());
  EventLog log;
  session.SetStageObserver(&EventLog::Record, &log);
  session.Estimate(w.queries[6], model);
  ASSERT_EQ(log.events.size(), 4u);
  EXPECT_EQ(log.events[0].stage, CompileStage::kBind);
  EXPECT_EQ(log.events[1].stage, CompileStage::kEnumerate);
  EXPECT_EQ(log.events[2].stage, CompileStage::kComplete);
  EXPECT_EQ(log.events[3].stage, CompileStage::kFinalize);
  for (const StageEvent& e : log.events) EXPECT_TRUE(e.estimate_mode);
}

TEST(StageObserverTest, LowLevelSkipsTheCompleteStage) {
  Workload w = StarWorkload();
  OptimizerOptions low = SmallOptions();
  low.level = OptimizationLevel::kLow;
  CompilationSession session(low);
  EventLog log;
  session.SetStageObserver(&EventLog::Record, &log);
  ASSERT_TRUE(session.Optimize(w.queries[6]).ok());
  ASSERT_EQ(log.events.size(), 3u);
  EXPECT_EQ(log.events[0].stage, CompileStage::kBind);
  EXPECT_EQ(log.events[1].stage, CompileStage::kEnumerate);
  EXPECT_EQ(log.events[2].stage, CompileStage::kFinalize);
}

TEST(StageObserverTest, DegradedCompileTracesTheTripAndSkipsComplete) {
  Workload w = StarWorkload();
  CompilationSession session(SmallOptions());
  EventLog log;
  session.SetStageObserver(&EventLog::Record, &log);
  auto r = session.Optimize(w.queries[12], TinyLimits());
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->degraded);
  // bind -> enumerate -> finalize: no complete event, and the trip is
  // visible from the enumerate event onwards.
  ASSERT_EQ(log.events.size(), 3u);
  EXPECT_EQ(log.events[0].stage, CompileStage::kBind);
  EXPECT_FALSE(log.events[0].budget_tripped);
  EXPECT_EQ(log.events[1].stage, CompileStage::kEnumerate);
  EXPECT_TRUE(log.events[1].budget_tripped);
  EXPECT_EQ(log.events[1].tripped_limit, BudgetLimit::kMemoEntries);
  EXPECT_EQ(log.events[2].stage, CompileStage::kFinalize);
  EXPECT_TRUE(log.events[2].budget_tripped);
}

TEST(StageObserverTest, RemovedObserverSeesNothing) {
  Workload w = StarWorkload();
  CompilationSession session(SmallOptions());
  EventLog log;
  session.SetStageObserver(&EventLog::Record, &log);
  ASSERT_TRUE(session.Optimize(w.queries[3]).ok());
  const size_t after_first = log.events.size();
  EXPECT_GT(after_first, 0u);
  session.SetStageObserver(nullptr, nullptr);
  ASSERT_TRUE(session.Optimize(w.queries[3]).ok());
  EXPECT_EQ(log.events.size(), after_first);
}

// ---------------------------------------------------------------------------
// Meta-optimizer governance: limits derived from the COTE estimate.

TEST(MetaGovernanceTest, DeriveLimitsAppliesHeadroomAndFloors) {
  MetaOptimizerOptions options;
  options.budget_headroom = 4.0;
  MetaOptimizer meta(options);

  CompileTimeEstimate estimate;
  estimate.estimated_seconds = 0.5;
  estimate.enumeration.entries_created = 1000;
  estimate.plan_estimates.counts[0] = 300;
  estimate.completion_plans = 100;
  ResourceLimits limits = meta.DeriveLimits(estimate);
  EXPECT_DOUBLE_EQ(limits.deadline_seconds, 2.0);
  EXPECT_EQ(limits.max_memo_entries, 4000);
  EXPECT_EQ(limits.max_plans, 1600);

  // An all-zero estimate hits every floor instead of tripping instantly.
  ResourceLimits floors = meta.DeriveLimits(CompileTimeEstimate{});
  EXPECT_DOUBLE_EQ(floors.deadline_seconds, 1e-3);
  EXPECT_EQ(floors.max_memo_entries, 64);
  EXPECT_EQ(floors.max_plans, 256);
}

TEST(MetaGovernanceTest, GovernedHighCompileMatchesUngovernedMeta) {
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[12];

  MetaOptimizerOptions plain_options;
  plain_options.high.enumeration.max_composite_inner = 3;
  plain_options.threshold = 1e12;  // force the high level to run
  // A default (all-zero) time model estimates 0 seconds, which DeriveLimits
  // floors to a 1ms deadline — instant death for a 10-table compile. Any
  // calibrated model gives the deadline real slack; the count-based caps
  // are what this test pins.
  for (int m = 0; m < kNumJoinMethods; ++m) {
    plain_options.time_model.ct[m] = 1e-4;
  }
  plain_options.time_model.intercept = 1e-3;
  MetaOptimizerOptions governed_options = plain_options;
  governed_options.govern_high = true;

  MetaOptimizer plain(plain_options);
  MetaOptimizer governed(governed_options);
  auto p = plain.Compile(q);
  auto g = governed.Compile(q);
  ASSERT_TRUE(p.ok() && g.ok());
  ASSERT_TRUE(p->reoptimized && g->reoptimized);
  // The default 8x headroom over the COTE estimate never trips a query the
  // estimator has actually seen the likes of: identical plan, with the
  // derived limits recorded for observability.
  EXPECT_FALSE(g->chosen.degraded);
  ExpectSameOptimize(g->chosen, p->chosen);
  EXPECT_GT(g->high_limits.deadline_seconds, 0.0);
  EXPECT_GT(g->high_limits.max_memo_entries, 0);
  EXPECT_GT(g->high_limits.max_plans, 0);
  // The ungoverned meta-optimizer reports all-unlimited limits.
  EXPECT_EQ(p->high_limits.max_memo_entries, 0);
}

TEST(MetaGovernanceTest, StarvedHeadroomDegradesNotHangs) {
  // A pathologically small headroom floors the caps (64 entries / 256
  // plans); a 10-table star blows past them, so the governed meta compile
  // returns the greedy plan instead of the full DP one — the runaway-guard
  // behavior, exercised end to end.
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[12];
  MetaOptimizerOptions options;
  options.high.enumeration.max_composite_inner = 3;
  options.threshold = 1e12;
  options.govern_high = true;
  options.budget_headroom = 1e-9;
  MetaOptimizer meta(options);
  auto r = meta.Compile(q);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->reoptimized);
  EXPECT_TRUE(r->chosen.degraded);
  EXPECT_NE(r->chosen.best_plan, nullptr);
}

}  // namespace
}  // namespace cote
