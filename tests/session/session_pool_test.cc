#include "session/session_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/statement_cache.h"
#include "workload/workload.h"

namespace cote {
namespace {

OptimizerOptions SmallOptions() {
  OptimizerOptions o;
  o.enumeration.max_composite_inner = 3;
  return o;
}

TimeModel BenchModel() {
  TimeModel m;
  m.ct[0] = 5e-6;
  m.ct[1] = 2e-6;
  m.ct[2] = 4e-6;
  m.intercept = 1e-4;
  return m;
}

std::vector<const QueryGraph*> Pointers(const Workload& w) {
  std::vector<const QueryGraph*> qs;
  qs.reserve(w.queries.size());
  for (const QueryGraph& q : w.queries) qs.push_back(&q);
  return qs;
}

void ExpectSameOptimize(const OptimizeResult& x, const OptimizeResult& y) {
  EXPECT_DOUBLE_EQ(x.stats.best_cost, y.stats.best_cost);
  EXPECT_EQ(x.stats.plans_stored, y.stats.plans_stored);
  EXPECT_EQ(x.stats.memo_entries, y.stats.memo_entries);
  EXPECT_EQ(x.stats.enumeration.joins_ordered,
            y.stats.enumeration.joins_ordered);
  EXPECT_EQ(x.stats.enumeration.entries_created,
            y.stats.enumeration.entries_created);
  for (int m = 0; m < kNumJoinMethods; ++m) {
    EXPECT_EQ(x.stats.join_plans_generated.counts[m],
              y.stats.join_plans_generated.counts[m]);
  }
}

void ExpectSameEstimate(const CompileTimeEstimate& x,
                        const CompileTimeEstimate& y) {
  for (int m = 0; m < kNumJoinMethods; ++m) {
    EXPECT_EQ(x.plan_estimates.counts[m], y.plan_estimates.counts[m]);
  }
  EXPECT_EQ(x.enumeration.joins_ordered, y.enumeration.joins_ordered);
  EXPECT_EQ(x.plan_slots, y.plan_slots);
  EXPECT_EQ(x.estimated_memo_bytes, y.estimated_memo_bytes);
  EXPECT_EQ(x.completion_plans, y.completion_plans);
  EXPECT_DOUBLE_EQ(x.estimated_seconds, y.estimated_seconds);
}

// ---------------------------------------------------------------------------
// Determinism: a pool batch must be bit-identical to a serial session loop,
// on every workload shape the paper evaluates.

TEST(SessionPoolTest, CompileBatchMatchesSerialLoop) {
  for (Workload w : {LinearWorkload(), StarWorkload(), RandomWorkload(13, 42),
                     TpchWorkload()}) {
    SCOPED_TRACE(w.name);
    std::vector<const QueryGraph*> qs = Pointers(w);
    CompilationSession serial(SmallOptions());
    std::vector<StatusOr<OptimizeResult>> expected = serial.CompileBatch(qs);

    SessionPool pool(4, SmallOptions());
    BatchOptimizeResult got = pool.CompileBatch(qs);
    ASSERT_EQ(got.results.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      SCOPED_TRACE(w.labels[i]);
      ASSERT_TRUE(expected[i].ok()) << expected[i].status().ToString();
      ASSERT_TRUE(got.results[i].ok()) << got.results[i].status().ToString();
      ExpectSameOptimize(*got.results[i], *expected[i]);
    }
  }
}

TEST(SessionPoolTest, EstimateBatchMatchesSerialLoop) {
  TimeModel model = BenchModel();
  for (Workload w : {LinearWorkload(), StarWorkload(), RandomWorkload(13, 42),
                     TpchWorkload()}) {
    SCOPED_TRACE(w.name);
    std::vector<const QueryGraph*> qs = Pointers(w);
    CompilationSession serial(SmallOptions());
    std::vector<CompileTimeEstimate> expected = serial.EstimateBatch(qs, model);

    SessionPool pool(4, SmallOptions());
    BatchEstimateResult got = pool.EstimateBatch(qs, model);
    ASSERT_EQ(got.results.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      SCOPED_TRACE(w.labels[i]);
      ExpectSameEstimate(got.results[i], expected[i]);
    }
  }
}

TEST(SessionPoolTest, RepeatedBatchesThroughOnePoolAreIdentical) {
  // Second batch reuses every worker's warm arenas; results must not drift.
  Workload w = RandomWorkload(13, 42);
  std::vector<const QueryGraph*> qs = Pointers(w);
  SessionPool pool(3, SmallOptions());
  BatchOptimizeResult first = pool.CompileBatch(qs);
  BatchOptimizeResult second = pool.CompileBatch(qs);
  ASSERT_EQ(first.results.size(), second.results.size());
  for (size_t i = 0; i < first.results.size(); ++i) {
    ASSERT_TRUE(first.results[i].ok() && second.results[i].ok());
    ExpectSameOptimize(*second.results[i], *first.results[i]);
  }
}

TEST(SessionPoolTest, ColdSharedGraphAcrossWorkers) {
  // The same QueryGraph object many times in one batch, compiled by the
  // pool FIRST — so the graph's lazy adjacency / global-equivalence caches
  // are built concurrently by racing workers (QueryGraph's double-checked
  // lock makes that safe; this is the TSan-visible regression for it).
  Workload w = RandomWorkload(3, 77);
  std::vector<const QueryGraph*> qs(12, &w.queries[2]);
  SessionPool pool(4, SmallOptions());
  BatchOptimizeResult got = pool.CompileBatch(qs);

  CompilationSession serial(SmallOptions());
  StatusOr<OptimizeResult> expected = serial.Optimize(w.queries[2]);
  ASSERT_TRUE(expected.ok());
  for (size_t i = 0; i < qs.size(); ++i) {
    ASSERT_TRUE(got.results[i].ok()) << got.results[i].status().ToString();
    ExpectSameOptimize(*got.results[i], *expected);
  }
}

// ---------------------------------------------------------------------------
// Stats merging and queue bookkeeping.

TEST(SessionPoolTest, BatchStatsMergeAcrossWorkers) {
  Workload w = RandomWorkload(13, 42);
  std::vector<const QueryGraph*> qs = Pointers(w);
  SessionPool pool(2, SmallOptions());
  BatchOptimizeResult r = pool.CompileBatch(qs);

  const BatchStats& st = r.stats;
  EXPECT_EQ(st.workers_used, 2);
  EXPECT_EQ(st.merged.plans_compiled, 13);
  EXPECT_EQ(st.merged.estimates_run, 0);
  // Every query is distinct, so every compile is a cold rebind.
  EXPECT_EQ(st.merged.context_rebinds, 13);
  EXPECT_EQ(st.merged.warm_resets, 0);
  EXPECT_GT(st.merged.cumulative_stages.Total(), 0.0);
  EXPECT_GT(st.wall_seconds, 0.0);
  EXPECT_GT(st.Speedup(), 0.0);

  ASSERT_EQ(st.per_worker.size(), 2u);
  int64_t claimed = 0;
  double busy = 0;
  double stage_total = 0;
  for (const WorkerSlice& slice : st.per_worker) {
    claimed += slice.queries;
    busy += slice.busy_seconds;
    stage_total += slice.stages.Total();
    // A worker's stage time happens inside its drain loop.
    EXPECT_LE(slice.stages.Total(), slice.busy_seconds);
  }
  EXPECT_EQ(claimed, 13);
  EXPECT_DOUBLE_EQ(busy, st.busy_seconds);
  // Same addends, different association (per-slice vs per-stage sums).
  EXPECT_NEAR(stage_total, st.merged.cumulative_stages.Total(), 1e-9);
}

TEST(SessionPoolTest, EstimateBatchCountsEstimates) {
  Workload w = LinearWorkload();
  std::vector<const QueryGraph*> qs = Pointers(w);
  SessionPool pool(4, SmallOptions());
  BatchEstimateResult r = pool.EstimateBatch(qs, BenchModel());
  EXPECT_EQ(r.stats.merged.estimates_run, w.size());
  EXPECT_EQ(r.stats.merged.plans_compiled, 0);
}

TEST(SessionPoolTest, WorkersNeverExceedQueries) {
  Workload w = LinearWorkload();
  std::vector<const QueryGraph*> qs = {&w.queries[0], &w.queries[1]};
  SessionPool pool(8, SmallOptions());
  EXPECT_EQ(pool.num_workers(), 8);
  BatchOptimizeResult r = pool.CompileBatch(qs);
  EXPECT_EQ(r.stats.workers_used, 2);
  EXPECT_EQ(r.stats.per_worker.size(), 2u);
}

TEST(SessionPoolTest, EmptyBatch) {
  SessionPool pool(4, SmallOptions());
  BatchOptimizeResult r = pool.CompileBatch({});
  EXPECT_TRUE(r.results.empty());
  EXPECT_EQ(r.stats.merged.plans_compiled, 0);
  EXPECT_EQ(r.stats.workers_used, 0);
  EXPECT_EQ(r.stats.wall_seconds, 0.0);
  EXPECT_EQ(r.stats.Speedup(), 0.0);
}

TEST(SessionPoolTest, ErrorsLandAtTheirIndex) {
  Workload w = LinearWorkload();
  QueryGraph empty;
  std::vector<const QueryGraph*> qs = {&w.queries[0], &empty, nullptr,
                                       &w.queries[1]};
  SessionPool pool(3, SmallOptions());
  BatchOptimizeResult r = pool.CompileBatch(qs);
  ASSERT_EQ(r.results.size(), 4u);
  EXPECT_TRUE(r.results[0].ok());
  EXPECT_FALSE(r.results[1].ok());  // no tables
  EXPECT_FALSE(r.results[2].ok());  // null pointer
  EXPECT_TRUE(r.results[3].ok());
  // The failures still leave the successes bit-identical to serial.
  CompilationSession serial(SmallOptions());
  auto sr = serial.Optimize(w.queries[1]);
  ASSERT_TRUE(sr.ok());
  ExpectSameOptimize(*r.results[3], *sr);
}

// ---------------------------------------------------------------------------
// Stress: >= 4 workers hammering a replicated workload. Repeats of the
// same graph object exercise the warm-reset path concurrently (each worker
// privately; sessions share nothing). Run under TSan by the tier-2 gate.

TEST(SessionPoolTest, StressReplicatedBatchMatchesSerial) {
  Workload w = RandomWorkload(13, 7);
  std::vector<const QueryGraph*> qs;
  for (int rep = 0; rep < 8; ++rep) {
    for (const QueryGraph& q : w.queries) qs.push_back(&q);
  }
  TimeModel model = BenchModel();
  CompilationSession serial(SmallOptions());
  std::vector<CompileTimeEstimate> expected = serial.EstimateBatch(qs, model);

  SessionPool pool(4, SmallOptions());
  BatchEstimateResult got = pool.EstimateBatch(qs, model);
  ASSERT_EQ(got.results.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ExpectSameEstimate(got.results[i], expected[i]);
  }
  EXPECT_EQ(got.stats.merged.estimates_run,
            static_cast<int64_t>(qs.size()));
  // 8 repetitions: at least some claims repeat a graph a worker has
  // already bound — but whether a warm hit happens depends on claim
  // interleaving, so only the sum is deterministic.
  EXPECT_EQ(got.stats.merged.context_rebinds + got.stats.merged.warm_resets,
            static_cast<int64_t>(qs.size()));
}

// ---------------------------------------------------------------------------
// Shared statement cache under the pool: a hit must return the seconds
// recorded for *that* signature, never another query's (the pre-fix
// Signature collided on selectivity-only differences, which under
// concurrency turns into cross-query value leakage).

TEST(SessionPoolTest, SharedCacheCompileThroughReturnsOwnSeconds) {
  Workload w = RandomWorkload(8, 21);
  CompileTimeCache cache(/*capacity=*/64);
  for (int i = 0; i < w.size(); ++i) {
    cache.Insert(w.queries[static_cast<size_t>(i)], 100.0 + i);
  }
  constexpr int kThreads = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &w, &mismatches, t]() {
      CompilationSession session(SmallOptions());
      for (int iter = 0; iter < 64; ++iter) {
        size_t i = static_cast<size_t>((iter * 7 + t) % w.size());
        if (t == 0 && iter % 8 == 0) {
          // One writer refreshes entries mid-stream; values stay pinned
          // to their signature.
          cache.Insert(w.queries[i], 100.0 + static_cast<double>(i));
        }
        StatusOr<double> got = cache.CompileThrough(&session, w.queries[i]);
        if (!got.ok() || *got != 100.0 + static_cast<double>(i)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(cache.size(), static_cast<size_t>(w.size()));
}

TEST(SessionPoolTest, PerQueryLimitsApplyAtTheirOwnIndex) {
  // The scheduler hook: each query runs under its *own* limits. A tiny
  // entry cap pinned to the 10-table queries degrades exactly those
  // indices; everything else must be bit-identical to an ungoverned batch.
  Workload w = StarWorkload();
  std::vector<const QueryGraph*> qs = Pointers(w);
  std::vector<ResourceLimits> per_query(qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    if (w.queries[i].num_tables() >= 10) per_query[i].max_memo_entries = 24;
  }

  SessionPool pool(4, SmallOptions());
  BatchOptimizeResult governed = pool.CompileBatch(qs, per_query);
  SessionPool plain_pool(4, SmallOptions());
  BatchOptimizeResult plain = plain_pool.CompileBatch(qs);

  ASSERT_EQ(governed.results.size(), qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    ASSERT_TRUE(governed.results[i].ok()) << i;
    ASSERT_TRUE(plain.results[i].ok()) << i;
    if (w.queries[i].num_tables() >= 10) {
      EXPECT_TRUE(governed.results[i]->degraded) << i;
      EXPECT_EQ(governed.results[i]->tripped_limit, BudgetLimit::kMemoEntries)
          << i;
    } else {
      EXPECT_FALSE(governed.results[i]->degraded) << i;
      ExpectSameOptimize(*governed.results[i], *plain.results[i]);
    }
  }
}

TEST(SessionPoolTest, PerQueryLimitsSizeMismatchIsFatal) {
  Workload w = LinearWorkload();
  std::vector<const QueryGraph*> qs = Pointers(w);
  SessionPool pool(2, SmallOptions());
  std::vector<ResourceLimits> wrong(qs.size() - 1);
  EXPECT_DEATH(pool.CompileBatch(qs, wrong), "");
}

TEST(SessionPoolTest, SharedCacheEvictionUnderContention) {
  // Capacity smaller than the working set: Lookup / Insert / eviction race
  // on the same shards. Values cannot be asserted (each miss re-measures),
  // but every returned time must be a positive measurement and the cache
  // must respect its capacity — and TSan must stay quiet.
  Workload w = RandomWorkload(8, 33);
  CompileTimeCache cache(/*capacity=*/3);
  constexpr int kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &w, &failures, t]() {
      CompilationSession session(SmallOptions());
      for (int iter = 0; iter < 12; ++iter) {
        size_t i = static_cast<size_t>((iter + t) % w.size());
        StatusOr<double> got = cache.CompileThrough(&session, w.queries[i]);
        if (!got.ok() || *got <= 0) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(cache.size(), 3u);
}

}  // namespace
}  // namespace cote
