#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/fault_points.h"
#include "common/resource_budget.h"
#include "service/compile_service.h"
#include "session/session.h"
#include "session/session_pool.h"
#include "tests/common/fault_injection.h"
#include "workload/workload.h"

// Fixture names deliberately contain "Session": tools/run_checks.sh's TSan
// gate runs `ctest -R 'Session'`, and the pool fault tests are exactly the
// concurrent paths that gate exists to race-check.

namespace cote {
namespace {

using testing::FaultScript;

OptimizerOptions SmallOptions() {
  OptimizerOptions o;
  o.enumeration.max_composite_inner = 3;
  return o;
}

void ExpectSameOptimize(const OptimizeResult& x, const OptimizeResult& y) {
  EXPECT_DOUBLE_EQ(x.stats.best_cost, y.stats.best_cost);
  EXPECT_EQ(x.stats.plans_stored, y.stats.plans_stored);
  EXPECT_EQ(x.stats.memo_entries, y.stats.memo_entries);
  EXPECT_EQ(x.stats.enumeration.joins_ordered,
            y.stats.enumeration.joins_ordered);
  EXPECT_EQ(x.stats.enumeration.entries_created,
            y.stats.enumeration.entries_created);
  for (int m = 0; m < kNumJoinMethods; ++m) {
    EXPECT_EQ(x.stats.join_plans_generated.counts[m],
              y.stats.join_plans_generated.counts[m]);
  }
}

// ---------------------------------------------------------------------------
// Harness plumbing.

TEST(SessionFaultTest, HookIsClearedOnScopeExit) {
  EXPECT_FALSE(FaultHookInstalled());
  {
    FaultScript script;
    EXPECT_TRUE(FaultHookInstalled());
  }
  EXPECT_FALSE(FaultHookInstalled());
}

// ---------------------------------------------------------------------------
// Plan mode: an injected failure at every stage boundary surfaces as that
// exact Status, and the session stays usable afterwards.

TEST(SessionFaultTest, PlanModeFailsAtEveryStageBoundary) {
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[6];
  CompilationSession session(SmallOptions());

  for (const char* point : {kFaultPlanBind, kFaultPlanEnumerate,
                            kFaultPlanComplete, kFaultPlanFinalize}) {
    FaultScript script;
    script.FailAt(point, nullptr,
                  Status::Internal(std::string("injected at ") + point));
    auto r = session.Optimize(q);
    ASSERT_FALSE(r.ok()) << point;
    EXPECT_EQ(r.status().code(), StatusCode::kInternal) << point;
    EXPECT_NE(r.status().message().find(point), std::string::npos) << point;
    EXPECT_GE(script.injected(), 1) << point;
  }

  // Reusable after all four failures: next compile matches a fresh session.
  auto after = session.Optimize(q);
  CompilationSession fresh(SmallOptions());
  auto reference = fresh.Optimize(q);
  ASSERT_TRUE(after.ok() && reference.ok());
  ExpectSameOptimize(*after, *reference);
}

TEST(SessionFaultTest, LowLevelConsultsBindEnumerateFinalizeOnly) {
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[6];
  OptimizerOptions low = SmallOptions();
  low.level = OptimizationLevel::kLow;
  CompilationSession session(low);

  for (const char* point :
       {kFaultPlanBind, kFaultPlanEnumerate, kFaultPlanFinalize}) {
    FaultScript script;
    script.FailAt(point, nullptr, Status::Internal("injected"));
    auto r = session.Optimize(q);
    ASSERT_FALSE(r.ok()) << point;
  }

  // kLow has no completion stage, so a complete-point rule never fires.
  FaultScript script;
  script.FailAt(kFaultPlanComplete, nullptr, Status::Internal("unreached"),
                /*occurrence=*/0);
  auto r = session.Optimize(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(script.injected(), 0);
}

TEST(SessionFaultTest, EstimateModeConsultsNoFaultPoints) {
  // Estimates have no Status channel, so the pipeline deliberately consults
  // nothing in estimate mode — an armed script must never fire.
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[6];
  TimeModel model;
  CompilationSession session(SmallOptions());

  FaultScript script;
  for (const char* point : {kFaultPlanBind, kFaultPlanEnumerate,
                            kFaultPlanComplete, kFaultPlanFinalize}) {
    script.FailAt(point, nullptr, Status::Internal("unreached"),
                  /*occurrence=*/0);
  }
  CompileTimeEstimate e = session.Estimate(q, model);
  EXPECT_GT(e.plan_estimates.total(), 0);
  EXPECT_EQ(script.consults(), 0);
}

TEST(SessionFaultTest, OccurrenceScriptingFailsTheNthConsult) {
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[6];
  CompilationSession session(SmallOptions());

  FaultScript script;
  script.FailAt(kFaultPlanBind, nullptr, Status::Internal("third bind"),
                /*occurrence=*/3);
  ASSERT_TRUE(session.Optimize(q).ok());
  ASSERT_TRUE(session.Optimize(q).ok());
  auto r = session.Optimize(q);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "third bind");
  ASSERT_TRUE(session.Optimize(q).ok());  // occurrence 3 fires exactly once
  EXPECT_EQ(script.injected(), 1);
}

TEST(SessionFaultTest, SubjectTargetedFaultHitsOnlyThatQuery) {
  Workload w = StarWorkload();
  const QueryGraph& qa = w.queries[3];
  const QueryGraph& qb = w.queries[6];
  CompilationSession session(SmallOptions());

  FaultScript script;
  script.FailAt(kFaultPlanEnumerate, &qb, Status::Internal("only b"),
                /*occurrence=*/0);
  EXPECT_TRUE(session.Optimize(qa).ok());
  EXPECT_FALSE(session.Optimize(qb).ok());
  EXPECT_TRUE(session.Optimize(qa).ok());
}

// ---------------------------------------------------------------------------
// Faults and budgets interacting.

TEST(SessionFaultTest, EnumerateFaultWinsOverBudgetTrip) {
  // The fault consult sits at the stage boundary, before the trip check:
  // an injected enumerate failure surfaces even when the budget tripped
  // during that same enumeration.
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[12];
  ResourceLimits limits;
  limits.max_memo_entries = 24;
  CompilationSession session(SmallOptions());

  FaultScript script;
  script.FailAt(kFaultPlanEnumerate, nullptr, Status::Internal("boom"));
  auto r = session.Optimize(q, limits);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "boom");
}

TEST(SessionFaultTest, DegradedPathSkipsCompleteAndFinalizeConsults) {
  // A budget-tripped compile takes the greedy fallback, which — like kLow —
  // has no completion stage and returns before the DP finalize boundary:
  // rules on those points must not fire.
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[12];
  ResourceLimits limits;
  limits.max_memo_entries = 24;
  CompilationSession session(SmallOptions());

  FaultScript script;
  script.FailAt(kFaultPlanComplete, nullptr, Status::Internal("unreached"),
                /*occurrence=*/0);
  script.FailAt(kFaultPlanFinalize, nullptr, Status::Internal("unreached"),
                /*occurrence=*/0);
  auto r = session.Optimize(q, limits);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->degraded);
  EXPECT_EQ(script.injected(), 0);
}

TEST(SessionFaultTest, InjectedTripAtNthCooperativeCheck) {
  // max_checkpoints is the deterministic "fail at the Nth cooperative
  // check" injection: same N, same query -> same cut, run after run.
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[12];
  ResourceLimits limits;
  limits.max_checkpoints = 7;
  limits.on_trip = BudgetAction::kFail;
  CompilationSession session(SmallOptions());

  auto first = session.Optimize(q, limits);
  auto second = session.Optimize(q, limits);
  ASSERT_FALSE(first.ok());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(first.status().ToString(), second.status().ToString());
}

TEST(SessionFaultTest, ParallelEnumerateFaultWinsOverBudgetTrip) {
  // Same boundary ordering with the rank-parallel enumerator: the fault
  // consult runs on the coordinator after the worker team has quiesced,
  // and still precedes the trip check.
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[12];
  ResourceLimits limits;
  limits.max_memo_entries = 24;
  OptimizerOptions par = SmallOptions();
  par.parallel_workers = 4;
  CompilationSession session(par);

  FaultScript script;
  script.FailAt(kFaultPlanEnumerate, nullptr, Status::Internal("boom"));
  auto r = session.Optimize(q, limits);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "boom");

  // The abandoned binding leaves no trace: a clean parallel compile next.
  auto after = session.Optimize(q);
  CompilationSession fresh(SmallOptions());
  auto reference = fresh.Optimize(q);
  ASSERT_TRUE(after.ok() && reference.ok());
  ExpectSameOptimize(*after, *reference);
}

// ---------------------------------------------------------------------------
// SessionPool under scripted faults: per-index isolation, determinism,
// and pool reusability. Runs under TSan via run_checks.sh.

std::vector<const QueryGraph*> BigBatch(const Workload& linear,
                                        const Workload& star,
                                        const Workload& random) {
  std::vector<const QueryGraph*> qs;
  for (const QueryGraph& q : linear.queries) qs.push_back(&q);
  for (const QueryGraph& q : star.queries) qs.push_back(&q);
  for (const QueryGraph& q : random.queries) qs.push_back(&q);
  return qs;  // 15 + 15 + 13 = 43 queries
}

TEST(SessionPoolFaultTest, ScriptedFaultsHitFixedIndicesOnly) {
  Workload linear = LinearWorkload();
  Workload star = StarWorkload();
  Workload random = RandomWorkload(13, 42);
  std::vector<const QueryGraph*> qs = BigBatch(linear, star, random);
  ASSERT_GE(qs.size(), 32u);
  const std::vector<size_t> doomed = {5, 17, 29};

  SessionPool pool(4, SmallOptions());
  FaultScript script;
  for (size_t i : doomed) {
    // Subject-matched rules fail fixed *input indices* no matter which
    // worker claims them or in what order.
    script.FailAt(kFaultPlanEnumerate, qs[i],
                  Status::Internal("doomed " + std::to_string(i)),
                  /*occurrence=*/0);
  }
  BatchOptimizeResult faulted = pool.CompileBatch(qs);
  ASSERT_EQ(faulted.results.size(), qs.size());
  for (size_t i : doomed) {
    ASSERT_FALSE(faulted.results[i].ok()) << i;
    EXPECT_EQ(faulted.results[i].status().message(),
              "doomed " + std::to_string(i));
  }

  // Every other index is bit-identical to an unfaulted serial compile.
  CompilationSession reference(SmallOptions());
  for (size_t i = 0; i < qs.size(); ++i) {
    if (std::find(doomed.begin(), doomed.end(), i) != doomed.end()) continue;
    ASSERT_TRUE(faulted.results[i].ok()) << i;
    auto ref = reference.Optimize(*qs[i]);
    ASSERT_TRUE(ref.ok());
    ExpectSameOptimize(*faulted.results[i], *ref);
  }

  // Determinism: the same script against the same batch fails the same
  // indices with the same statuses.
  FaultScript rerun_script;
  for (size_t i : doomed) {
    rerun_script.FailAt(kFaultPlanEnumerate, qs[i],
                        Status::Internal("doomed " + std::to_string(i)),
                        /*occurrence=*/0);
  }
  BatchOptimizeResult again = pool.CompileBatch(qs);
  for (size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(again.results[i].ok(), faulted.results[i].ok()) << i;
    if (!again.results[i].ok()) {
      EXPECT_EQ(again.results[i].status().ToString(),
                faulted.results[i].status().ToString());
    }
  }
}

TEST(SessionPoolFaultTest, PoolIsReusableAfterFaultedBatch) {
  Workload star = StarWorkload();
  std::vector<const QueryGraph*> qs;
  for (const QueryGraph& q : star.queries) qs.push_back(&q);

  SessionPool pool(4, SmallOptions());
  {
    FaultScript script;
    script.FailAt(kFaultPlanBind, nullptr, Status::Internal("flaky"),
                  /*occurrence=*/0);
    BatchOptimizeResult faulted = pool.CompileBatch(qs);
    for (const auto& r : faulted.results) EXPECT_FALSE(r.ok());
  }
  // Script gone: the same pool now matches a fresh serial session per index.
  BatchOptimizeResult clean = pool.CompileBatch(qs);
  CompilationSession reference(SmallOptions());
  for (size_t i = 0; i < qs.size(); ++i) {
    ASSERT_TRUE(clean.results[i].ok()) << i;
    auto ref = reference.Optimize(*qs[i]);
    ASSERT_TRUE(ref.ok());
    ExpectSameOptimize(*clean.results[i], *ref);
  }
}

TEST(SessionPoolFaultTest, MixedFaultsAndBudgetTripsStayPerIndex) {
  // One batch, three outcomes: scripted hard failures at fixed indices,
  // budget degradation for the queries that cannot fit the limits, clean
  // compiles for everything else — each strictly per input index.
  Workload linear = LinearWorkload();
  Workload star = StarWorkload();
  Workload random = RandomWorkload(13, 42);
  std::vector<const QueryGraph*> qs = BigBatch(linear, star, random);
  ResourceLimits limits;
  limits.max_memo_entries = 64;

  SessionPool pool(4, SmallOptions());
  FaultScript script;
  const std::vector<size_t> doomed = {2, 33};
  for (size_t i : doomed) {
    script.FailAt(kFaultPlanBind, qs[i], Status::Internal("scripted"),
                  /*occurrence=*/0);
  }
  BatchOptimizeResult got = pool.CompileBatch(qs, limits);

  // Serial governed reference on one fresh session (same script active:
  // subject rules are occurrence 0, so both runs see identical faults).
  CompilationSession serial(SmallOptions());
  for (size_t i = 0; i < qs.size(); ++i) {
    auto ref = serial.Optimize(*qs[i], limits);
    ASSERT_EQ(got.results[i].ok(), ref.ok()) << i;
    if (!ref.ok()) {
      EXPECT_EQ(got.results[i].status().ToString(), ref.status().ToString());
      continue;
    }
    EXPECT_EQ(got.results[i]->degraded, ref->degraded) << i;
    ExpectSameOptimize(*got.results[i], *ref);
  }
  EXPECT_GT(got.stats.merged.degraded_runs, 0);
}

// ---------------------------------------------------------------------------
// Compile service: a scripted fault mid-queue fails exactly its own
// record; the queue drains, and the service stays reusable afterwards.

CompileServiceOptions ServiceOptions() {
  CompileServiceOptions o;
  o.optimizer = SmallOptions();
  o.time_source = ServiceTimeSource::kEstimate;
  o.admission.limits_policy.min_deadline_seconds = 600.0;
  return o;
}

TEST(ServiceFaultTest, MidQueueFaultDrainsAndServiceStaysReusable) {
  Workload w = LinearWorkload();
  // Three distinct queries; the doomed one appears twice in the stream.
  std::vector<Submission> subs(6);
  subs[0].query = &w.queries[0];
  subs[1].query = &w.queries[5];  // doomed, first occurrence
  subs[2].query = &w.queries[1];
  subs[3].query = &w.queries[2];
  subs[4].query = &w.queries[5];  // same statement again
  subs[5].query = &w.queries[3];

  CompileService service(ServiceOptions());
  {
    FaultScript script;
    script.FailAt(kFaultPlanEnumerate, &w.queries[5],
                  Status::Internal("scripted mid-queue"));
    ServiceReport r = service.Run(subs);
    ASSERT_EQ(r.records.size(), subs.size());
    EXPECT_EQ(r.failed, 1);
    for (const ServiceQueryRecord& rec : r.records) {
      if (rec.ticket == 1) {
        EXPECT_EQ(rec.status.code(), StatusCode::kInternal);
        // A failed compile must not poison the cache with a bogus entry.
        EXPECT_FALSE(rec.cache_inserted);
      } else {
        EXPECT_TRUE(rec.status.ok()) << rec.ticket;
      }
    }
    // The queue drained past the fault: every submission got a record,
    // including the second occurrence of the doomed statement.
  }
  // Hook cleared; the same service instance serves a clean stream fully.
  ServiceReport again = service.Run(subs);
  EXPECT_EQ(again.failed, 0);
  ASSERT_EQ(again.records.size(), subs.size());
}

TEST(ServiceFaultTest, BatchFaultLandsAtItsInputIndexOnly) {
  Workload w = LinearWorkload();
  std::vector<const QueryGraph*> qs;
  for (const QueryGraph& q : w.queries) qs.push_back(&q);

  CompileServiceOptions o = ServiceOptions();
  o.num_workers = 4;
  o.policy = SchedulingPolicy::kShortestEstimatedFirst;
  CompileService service(o);
  FaultScript script;
  script.FailAt(kFaultPlanComplete, qs[7], Status::Internal("scripted"),
                /*occurrence=*/0);
  ServiceBatchResult batch = service.CompileBatch(qs);
  ASSERT_EQ(batch.results.size(), qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    if (i == 7) {
      EXPECT_FALSE(batch.results[i].ok());
      EXPECT_EQ(batch.results[i].status().code(), StatusCode::kInternal);
    } else {
      EXPECT_TRUE(batch.results[i].ok()) << i;
    }
  }
}

}  // namespace
}  // namespace cote
