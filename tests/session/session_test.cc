#include "session/session.h"

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "core/statement_cache.h"
#include "parser/binder.h"
#include "workload/workload.h"

namespace cote {
namespace {

OptimizerOptions SmallOptions() {
  OptimizerOptions o;
  o.enumeration.max_composite_inner = 3;
  return o;
}

// ---------------------------------------------------------------------------
// OptimizerOptions::Normalize — pins the reconciliation the optimizer ctor
// historically performed (and which both compilation modes now share).

TEST(OptimizerOptionsTest, NormalizeSerialIsIdentity) {
  OptimizerOptions o;
  o.Normalize();
  EXPECT_EQ(o.num_nodes, 1);
  EXPECT_FALSE(o.plangen.parallel);
  EXPECT_EQ(o.cost.num_nodes, 1);
}

TEST(OptimizerOptionsTest, NormalizeNumNodesWins) {
  OptimizerOptions o;
  o.num_nodes = 8;
  o.Normalize();
  EXPECT_TRUE(o.plangen.parallel);
  EXPECT_EQ(o.cost.num_nodes, 8);
  EXPECT_EQ(o.num_nodes, 8);
}

TEST(OptimizerOptionsTest, NormalizeParallelFlagDefaultsToFourNodes) {
  OptimizerOptions o;
  o.plangen.parallel = true;
  o.Normalize();
  EXPECT_EQ(o.num_nodes, 4);
  EXPECT_EQ(o.cost.num_nodes, 4);
  EXPECT_TRUE(o.plangen.parallel);
}

TEST(OptimizerOptionsTest, NormalizeQuirkTrustsExplicitCostNodeCount) {
  // The deliberate quirk: plangen.parallel with an explicit cost-model
  // node count leaves num_nodes alone — the caller has already chosen
  // their environment.
  OptimizerOptions o;
  o.plangen.parallel = true;
  o.cost.num_nodes = 16;
  o.Normalize();
  EXPECT_EQ(o.num_nodes, 1);
  EXPECT_EQ(o.cost.num_nodes, 16);
  EXPECT_TRUE(o.plangen.parallel);
}

TEST(OptimizerOptionsTest, NormalizeIsIdempotent) {
  OptimizerOptions o = OptimizerOptions::Parallel(6);
  o.Normalize();
  OptimizerOptions once = o;
  o.Normalize();
  EXPECT_EQ(o.num_nodes, once.num_nodes);
  EXPECT_EQ(o.cost.num_nodes, once.cost.num_nodes);
  EXPECT_EQ(o.plangen.parallel, once.plangen.parallel);
}

// ---------------------------------------------------------------------------
// Cross-query reuse: one shared session must be observationally identical
// to a fresh session per query, in both compilation modes.

void ExpectSameOptimize(const OptimizeResult& x, const OptimizeResult& y) {
  EXPECT_DOUBLE_EQ(x.stats.best_cost, y.stats.best_cost);
  EXPECT_EQ(x.stats.plans_stored, y.stats.plans_stored);
  EXPECT_EQ(x.stats.memo_entries, y.stats.memo_entries);
  EXPECT_EQ(x.stats.enumeration.joins_ordered,
            y.stats.enumeration.joins_ordered);
  EXPECT_EQ(x.stats.enumeration.entries_created,
            y.stats.enumeration.entries_created);
  for (int m = 0; m < kNumJoinMethods; ++m) {
    EXPECT_EQ(x.stats.join_plans_generated.counts[m],
              y.stats.join_plans_generated.counts[m]);
  }
}

void ExpectSameEstimate(const CompileTimeEstimate& x,
                        const CompileTimeEstimate& y) {
  for (int m = 0; m < kNumJoinMethods; ++m) {
    EXPECT_EQ(x.plan_estimates.counts[m], y.plan_estimates.counts[m]);
  }
  EXPECT_EQ(x.enumeration.joins_ordered, y.enumeration.joins_ordered);
  EXPECT_EQ(x.plan_slots, y.plan_slots);
  EXPECT_EQ(x.estimated_memo_bytes, y.estimated_memo_bytes);
  EXPECT_EQ(x.completion_plans, y.completion_plans);
  EXPECT_DOUBLE_EQ(x.estimated_seconds, y.estimated_seconds);
}

TEST(CompilationSessionTest, CrossQueryPlanModeMatchesFreshSessions) {
  Workload w = StarWorkload();
  const QueryGraph& a = w.queries[3];
  const QueryGraph& b = w.queries[6];

  CompilationSession shared(SmallOptions());
  auto sa = shared.Optimize(a);
  auto sb = shared.Optimize(b);
  auto sa2 = shared.Optimize(a);  // back to a: cold rebind, same result
  ASSERT_TRUE(sa.ok() && sb.ok() && sa2.ok());

  CompilationSession fresh_a(SmallOptions());
  CompilationSession fresh_b(SmallOptions());
  auto fa = fresh_a.Optimize(a);
  auto fb = fresh_b.Optimize(b);
  ASSERT_TRUE(fa.ok() && fb.ok());

  ExpectSameOptimize(*sa, *fa);
  ExpectSameOptimize(*sb, *fb);
  ExpectSameOptimize(*sa2, *fa);
}

TEST(CompilationSessionTest, CrossQueryEstimateModeMatchesFreshSessions) {
  Workload w = StarWorkload();
  const QueryGraph& a = w.queries[4];
  const QueryGraph& b = w.queries[7];
  TimeModel model;

  CompilationSession shared(SmallOptions());
  CompileTimeEstimate sa = shared.Estimate(a, model);
  CompileTimeEstimate sb = shared.Estimate(b, model);
  CompileTimeEstimate sa2 = shared.Estimate(a, model);

  CompilationSession fresh_a(SmallOptions());
  CompilationSession fresh_b(SmallOptions());
  CompileTimeEstimate fa = fresh_a.Estimate(a, model);
  CompileTimeEstimate fb = fresh_b.Estimate(b, model);

  ExpectSameEstimate(sa, fa);
  ExpectSameEstimate(sb, fb);
  ExpectSameEstimate(sa2, fa);
}

TEST(CompilationSessionTest, ParallelEstimateMatchesFreshSession) {
  Workload w = LinearWorkload();
  const QueryGraph& a = w.queries[2];
  const QueryGraph& b = w.queries[4];
  TimeModel model;
  OptimizerOptions par = OptimizerOptions::Parallel(4);
  par.enumeration.max_composite_inner = 3;

  CompilationSession shared(par);
  CompileTimeEstimate sa = shared.Estimate(a, model);
  CompileTimeEstimate sb = shared.Estimate(b, model);
  CompilationSession fresh_a(par);
  CompilationSession fresh_b(par);
  ExpectSameEstimate(sa, fresh_a.Estimate(a, model));
  ExpectSameEstimate(sb, fresh_b.Estimate(b, model));
}

TEST(CompilationSessionTest, MixedModesShareOneContext) {
  // Optimize and estimate the same query through one session; the
  // estimate must match a dedicated estimator's.
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[5];
  TimeModel model;
  CompilationSession session(SmallOptions());
  auto plan = session.Optimize(q);
  ASSERT_TRUE(plan.ok());
  CompileTimeEstimate est = session.Estimate(q, model);
  CompileTimeEstimator dedicated(model, SmallOptions());
  ExpectSameEstimate(est, dedicated.Estimate(q));
}

// ---------------------------------------------------------------------------
// Session bookkeeping.

TEST(CompilationSessionTest, StatsTrackWarmAndColdBinds) {
  Workload w = StarWorkload();
  const QueryGraph& a = w.queries[3];
  const QueryGraph& b = w.queries[5];
  TimeModel model;
  CompilationSession session(SmallOptions());
  session.Estimate(a, model);  // cold
  session.Estimate(a, model);  // warm: same object, same fingerprint
  session.Estimate(b, model);  // cold
  const CompilationStats& st = session.stats();
  EXPECT_EQ(st.estimates_run, 3);
  EXPECT_EQ(st.context_rebinds, 2);
  EXPECT_EQ(st.warm_resets, 1);
  EXPECT_EQ(st.plans_compiled, 0);
  EXPECT_GE(st.cumulative_stages.Total(), st.last_stages.Total());
}

TEST(CompilationSessionTest, EstimateCountsCompletionPlans) {
  auto catalog = MakeTpchCatalog();
  auto agg = Binder::BindSql(*catalog, R"(
      SELECT n.n_name, SUM(l.l_extendedprice)
      FROM lineitem l, supplier s, nation n
      WHERE l.l_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey
      GROUP BY n.n_name ORDER BY n.n_name)");
  ASSERT_TRUE(agg.ok());
  auto join = Binder::BindSql(*catalog, R"(
      SELECT * FROM orders o, lineitem l
      WHERE o.o_orderkey = l.l_orderkey)");
  ASSERT_TRUE(join.ok());

  TimeModel model;
  CompilationSession session(SmallOptions());
  // Two group-by candidates (sort- and hash-based) + one final sort.
  EXPECT_EQ(session.Estimate(*agg, model).completion_plans, 3);
  // A bare join has no completion work.
  EXPECT_EQ(session.Estimate(*join, model).completion_plans, 0);
}

TEST(CompilationSessionTest, StageSumNeverExceedsTotal) {
  // Regression: the finalize stage's timer used to stop *after* the total
  // was snapshotted, so bind+enumerate+complete+finalize could exceed the
  // recorded total. The pool's per-stage fraction reporting relies on
  // this invariant. (Holds exactly despite microsecond truncation: each
  // stage interval lies inside the total window and truncation is
  // subadditive.)
  Workload w = StarWorkload();
  TimeModel model;
  CompilationSession session(SmallOptions());
  for (size_t i = 3; i <= 6; ++i) {
    auto r = session.Optimize(w.queries[i]);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(session.stats().last_stages.Total(), r->stats.total_seconds);
    CompileTimeEstimate e = session.Estimate(w.queries[i], model);
    EXPECT_LE(session.stats().last_stages.Total(), e.estimation_seconds);
  }
  OptimizerOptions low = SmallOptions();
  low.level = OptimizationLevel::kLow;
  CompilationSession low_session(low);
  auto r = low_session.Optimize(w.queries[3]);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(low_session.stats().last_stages.Total(), r->stats.total_seconds);
}

TEST(CompilationSessionTest, SerialBatchMatchesLoop) {
  Workload w = LinearWorkload();
  std::vector<const QueryGraph*> qs;
  for (size_t i = 2; i <= 5; ++i) qs.push_back(&w.queries[i]);
  CompilationSession batch_session(SmallOptions());
  auto batch = batch_session.CompileBatch(qs);
  ASSERT_EQ(batch.size(), qs.size());
  CompilationSession loop_session(SmallOptions());
  for (size_t i = 0; i < qs.size(); ++i) {
    auto expected = loop_session.Optimize(*qs[i]);
    ASSERT_TRUE(expected.ok() && batch[i].ok());
    ExpectSameOptimize(*batch[i], *expected);
  }
  EXPECT_EQ(batch_session.stats().plans_compiled,
            static_cast<int64_t>(qs.size()));
}

TEST(CompilationSessionTest, StatementCacheCompileThrough) {
  Workload w = LinearWorkload();
  const QueryGraph& q = w.queries[3];
  CompileTimeCache cache(/*capacity=*/4);
  CompilationSession session(SmallOptions());

  auto first = cache.CompileThrough(&session, q);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_GT(*first, 0);

  auto second = cache.CompileThrough(&session, q);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache.hits(), 1);
  // A hit returns the cached measurement verbatim — no recompilation.
  EXPECT_DOUBLE_EQ(*second, *first);
  EXPECT_EQ(session.stats().plans_compiled, 1);
}

TEST(CompilationSessionTest, OptimizerFacadeMatchesDirectSession) {
  Workload w = StarWorkload();
  Optimizer facade(SmallOptions());
  CompilationSession session(SmallOptions());
  for (size_t i = 3; i <= 6; ++i) {
    auto f = facade.Optimize(w.queries[i]);
    auto s = session.Optimize(w.queries[i]);
    ASSERT_TRUE(f.ok() && s.ok());
    ExpectSameOptimize(*f, *s);
  }
}

TEST(CompilationSessionTest, EmptyGraphIsRejected) {
  QueryGraph empty;
  CompilationSession session(SmallOptions());
  auto r = session.Optimize(empty);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace cote
