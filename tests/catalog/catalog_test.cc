#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "catalog/table.h"

namespace cote {
namespace {

Table MakeOrders() {
  return TableBuilder("orders", 1000)
      .Col("o_id", ColumnType::kBigInt, 1000)
      .Col("o_custkey", ColumnType::kInt, 100)
      .Col("o_date", ColumnType::kDate)
      .PrimaryKey({"o_id"})
      .Idx("orders_pk", {"o_id"}, /*unique=*/true)
      .Idx("orders_cust", {"o_custkey", "o_date"})
      .Fk({"o_custkey"}, "customer", {"c_id"})
      .HashPartition({"o_id"})
      .Pages(123)
      .Build();
}

TEST(TableBuilderTest, ColumnsAndStats) {
  Table t = MakeOrders();
  EXPECT_EQ(t.name(), "orders");
  EXPECT_EQ(t.num_columns(), 3);
  EXPECT_DOUBLE_EQ(t.row_count(), 1000);
  EXPECT_DOUBLE_EQ(t.pages(), 123);
  EXPECT_EQ(t.FindColumn("o_custkey"), 1);
  EXPECT_EQ(t.FindColumn("nope"), -1);
  // Primary key column NDV is promoted to the row count.
  EXPECT_DOUBLE_EQ(t.column(0).ndv, 1000);
  // Defaulted NDV = 10% of rows.
  EXPECT_DOUBLE_EQ(t.column(2).ndv, 100);
}

TEST(TableBuilderTest, IndexesAndKeys) {
  Table t = MakeOrders();
  ASSERT_EQ(t.indexes().size(), 2u);
  EXPECT_TRUE(t.indexes()[0].unique);
  EXPECT_EQ(t.indexes()[1].key_columns, (std::vector<int>{1, 2}));
  EXPECT_EQ(t.primary_key(), (std::vector<int>{0}));
  ASSERT_EQ(t.foreign_keys().size(), 1u);
  EXPECT_EQ(t.foreign_keys()[0].referenced_table, "customer");
}

TEST(TableBuilderTest, Partitioning) {
  Table t = MakeOrders();
  EXPECT_EQ(t.partitioning().kind, PartitionKind::kHash);
  EXPECT_EQ(t.partitioning().key_columns, (std::vector<int>{0}));

  Table r = TableBuilder("r", 10).Col("a", ColumnType::kInt).Replicate().Build();
  EXPECT_EQ(r.partitioning().kind, PartitionKind::kReplicated);

  Table s = TableBuilder("s", 10).Col("a", ColumnType::kInt).Build();
  EXPECT_EQ(s.partitioning().kind, PartitionKind::kSingleNode);
}

TEST(TableBuilderTest, DefaultPages) {
  Table t = TableBuilder("t", 500).Col("a", ColumnType::kInt).Build();
  EXPECT_DOUBLE_EQ(t.pages(), 10);  // 50 rows per page
}

TEST(CatalogTest, AddAndFind) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeOrders()).ok());
  EXPECT_NE(catalog.FindTable("orders"), nullptr);
  EXPECT_EQ(catalog.FindTable("nope"), nullptr);
  EXPECT_EQ(catalog.num_tables(), 1);

  auto got = catalog.GetTable("orders");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->name(), "orders");
  EXPECT_EQ(catalog.GetTable("nope").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, DuplicateRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeOrders()).ok());
  Status s = catalog.AddTable(MakeOrders());
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, PointersStableAcrossGrowth) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeOrders()).ok());
  const Table* first = catalog.FindTable("orders");
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(catalog
                    .AddTable(TableBuilder("t" + std::to_string(i), 10)
                                  .Col("a", ColumnType::kInt)
                                  .Build())
                    .ok());
  }
  EXPECT_EQ(catalog.FindTable("orders"), first);
}

TEST(ColumnTypeTest, Names) {
  EXPECT_STREQ(ColumnTypeName(ColumnType::kInt), "INT");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kVarchar), "VARCHAR");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kDate), "DATE");
}

}  // namespace
}  // namespace cote
