#include "catalog/histogram.h"

#include <gtest/gtest.h>

#include "catalog/table.h"

namespace cote {
namespace {

TEST(HistogramTest, Deterministic) {
  Histogram a = Histogram::Synthesize(10000, 500, 32, 7);
  Histogram b = Histogram::Synthesize(10000, 500, 32, 7);
  ASSERT_EQ(a.num_buckets(), b.num_buckets());
  for (int i = 0; i < a.num_buckets(); ++i) {
    EXPECT_DOUBLE_EQ(a.boundary(i), b.boundary(i));
    EXPECT_DOUBLE_EQ(a.row_fraction(i), b.row_fraction(i));
  }
  Histogram c = Histogram::Synthesize(10000, 500, 32, 8);
  EXPECT_NE(a.row_fraction(0), c.row_fraction(0));
}

TEST(HistogramTest, WellFormed) {
  Histogram h = Histogram::Synthesize(1000000, 2500, 32, 3);
  EXPECT_EQ(h.num_buckets(), 32);
  EXPECT_DOUBLE_EQ(h.boundary(0), 0.0);
  EXPECT_DOUBLE_EQ(h.boundary(32), 1.0);
  double sum = 0;
  for (int i = 0; i < 32; ++i) {
    EXPECT_LT(h.boundary(i), h.boundary(i + 1));
    EXPECT_GT(h.row_fraction(i), 0);
    sum += h.row_fraction(i);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(HistogramTest, CumulativeMonotone) {
  Histogram h = Histogram::Synthesize(50000, 100, 16, 11);
  double prev = 0;
  for (double p = 0; p <= 1.0; p += 0.01) {
    double cdf = h.LessThanSelectivity(p);
    EXPECT_GE(cdf, prev - 1e-12);
    EXPECT_GE(cdf, 0);
    EXPECT_LE(cdf, 1);
    prev = cdf;
  }
  EXPECT_DOUBLE_EQ(h.LessThanSelectivity(0), 0);
  EXPECT_DOUBLE_EQ(h.LessThanSelectivity(1), 1);
  EXPECT_DOUBLE_EQ(h.LessThanSelectivity(-1), 0);
  EXPECT_DOUBLE_EQ(h.LessThanSelectivity(2), 1);
}

TEST(HistogramTest, RangeConsistentWithCdf) {
  Histogram h = Histogram::Synthesize(50000, 100, 16, 13);
  EXPECT_NEAR(h.RangeSelectivity(0.2, 0.7),
              h.LessThanSelectivity(0.7) - h.LessThanSelectivity(0.2),
              1e-12);
  // Swapped bounds are normalized.
  EXPECT_NEAR(h.RangeSelectivity(0.7, 0.2), h.RangeSelectivity(0.2, 0.7),
              1e-12);
  EXPECT_DOUBLE_EQ(h.RangeSelectivity(0.4, 0.4), 0);
}

TEST(HistogramTest, EqualityNearInverseNdv) {
  Histogram h = Histogram::Synthesize(1000000, 1000, 32, 17);
  for (double p : {0.05, 0.3, 0.77, 0.99}) {
    double sel = h.EqualitySelectivity(p);
    // Within an order of magnitude of the uniform 1/NDV.
    EXPECT_GT(sel, 0.1 / 1000);
    EXPECT_LT(sel, 10.0 / 1000);
  }
}

TEST(HistogramTest, LiteralPositionStableAndSpread) {
  double a = Histogram::LiteralPosition("1995-06-17");
  EXPECT_DOUBLE_EQ(a, Histogram::LiteralPosition("1995-06-17"));
  EXPECT_NE(a, Histogram::LiteralPosition("1995-06-18"));
  for (const char* s : {"a", "b", "42", "", "long literal value"}) {
    double p = Histogram::LiteralPosition(s);
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 1);
  }
}

TEST(HistogramTest, TableBuilderAttachesHistograms) {
  Table t = TableBuilder("t", 5000)
                .Col("a", ColumnType::kInt, 100)
                .Col("b", ColumnType::kInt, 100)
                .Build();
  EXPECT_EQ(t.column(0).histogram.num_buckets(), 32);
  EXPECT_DOUBLE_EQ(t.column(0).histogram.ndv(), 100);
  // Different columns get different (seeded-by-name) histograms.
  EXPECT_NE(t.column(0).histogram.row_fraction(0),
            t.column(1).histogram.row_fraction(0));
  // Same schema rebuilt yields identical statistics.
  Table t2 = TableBuilder("t", 5000)
                 .Col("a", ColumnType::kInt, 100)
                 .Col("b", ColumnType::kInt, 100)
                 .Build();
  EXPECT_DOUBLE_EQ(t.column(0).histogram.row_fraction(3),
                   t2.column(0).histogram.row_fraction(3));
}

}  // namespace
}  // namespace cote
