#include "optimizer/properties/order_property.h"

#include <gtest/gtest.h>

namespace cote {
namespace {

ColumnRef C(int t, int c) { return ColumnRef(t, c); }

TEST(OrderPropertyTest, NoneAndBasics) {
  OrderProperty none = OrderProperty::None();
  EXPECT_TRUE(none.IsNone());
  EXPECT_EQ(none.size(), 0);
  EXPECT_EQ(none.ToString(), "DC");

  OrderProperty o({C(0, 1), C(1, 2)});
  EXPECT_FALSE(o.IsNone());
  EXPECT_EQ(o.size(), 2);
  EXPECT_EQ(o.ToString(), "(t0.c1,t1.c2)");
}

TEST(OrderPropertyTest, PrefixSatisfaction) {
  OrderProperty ab({C(0, 0), C(0, 1)});
  OrderProperty a({C(0, 0)});
  OrderProperty b({C(0, 1)});
  // Everything satisfies the empty requirement.
  EXPECT_TRUE(ab.SatisfiesPrefix(OrderProperty::None()));
  EXPECT_TRUE(a.SatisfiesPrefix(a));
  EXPECT_TRUE(ab.SatisfiesPrefix(a));   // (a,b) serves a request for (a)
  EXPECT_FALSE(a.SatisfiesPrefix(ab));  // (a) cannot serve (a,b)
  EXPECT_FALSE(ab.SatisfiesPrefix(b));  // b is not a leading prefix
  EXPECT_FALSE(OrderProperty::None().SatisfiesPrefix(a));
}

TEST(OrderPropertyTest, SetSatisfaction) {
  OrderProperty ba({C(0, 1), C(0, 0)});
  OrderProperty ab_req({C(0, 0), C(0, 1)});
  // Grouping on {a,b} is served by ANY permutation prefix.
  EXPECT_TRUE(ba.SatisfiesSet(ab_req));
  EXPECT_FALSE(ba.SatisfiesPrefix(ab_req));
  OrderProperty bc({C(0, 1), C(0, 2)});
  EXPECT_FALSE(bc.SatisfiesSet(ab_req));
  // Longer orders with the required set as prefix also qualify.
  OrderProperty bax({C(0, 1), C(0, 0), C(0, 7)});
  EXPECT_TRUE(bax.SatisfiesSet(ab_req));
  // But required columns buried after unrelated ones do not.
  OrderProperty xab({C(0, 7), C(0, 0), C(0, 1)});
  EXPECT_FALSE(xab.SatisfiesSet(ab_req));
}

TEST(OrderPropertyTest, StrictSubsumption) {
  OrderProperty a({C(0, 0)});
  OrderProperty ab({C(0, 0), C(0, 1)});
  // The paper's ≺: a ≺ ab (ab is more general).
  EXPECT_TRUE(a.StrictlySubsumedBy(ab));
  EXPECT_FALSE(ab.StrictlySubsumedBy(a));
  EXPECT_FALSE(a.StrictlySubsumedBy(a));
}

TEST(OrderPropertyTest, CanonicalizeMapsToRepresentatives) {
  ColumnEquivalence eq;
  eq.AddEquivalence(C(0, 0), C(1, 0));  // rep = t0.c0
  OrderProperty o({C(1, 0), C(1, 2)});
  OrderProperty canon = o.Canonicalize(eq);
  EXPECT_EQ(canon.columns()[0], C(0, 0));
  EXPECT_EQ(canon.columns()[1], C(1, 2));
}

TEST(OrderPropertyTest, CanonicalizeDropsDuplicates) {
  ColumnEquivalence eq;
  eq.AddEquivalence(C(0, 0), C(1, 0));
  // After R.a = S.a, an order (R.a, S.a, S.b) is really (rep, S.b).
  OrderProperty o({C(0, 0), C(1, 0), C(1, 1)});
  OrderProperty canon = o.Canonicalize(eq);
  EXPECT_EQ(canon.size(), 2);
  EXPECT_EQ(canon.columns()[0], C(0, 0));
  EXPECT_EQ(canon.columns()[1], C(1, 1));
}

TEST(OrderPropertyTest, EquivalentOrdersBecomeEqualAfterCanonicalization) {
  // The paper's example: orders on R.a and S.a are equivalent once
  // R.a = S.a has been applied (§3.3).
  ColumnEquivalence eq;
  eq.AddEquivalence(C(0, 0), C(1, 0));
  OrderProperty ra({C(0, 0)}), sa({C(1, 0)});
  EXPECT_NE(ra, sa);
  EXPECT_EQ(ra.Canonicalize(eq), sa.Canonicalize(eq));
}

TEST(OrderPropertyTest, ExtendSkipsExisting) {
  OrderProperty a({C(0, 0)});
  OrderProperty ext = a.Extend(OrderProperty({C(0, 0), C(0, 1)}));
  EXPECT_EQ(ext.size(), 2);
  EXPECT_EQ(ext.columns()[1], C(0, 1));
}

TEST(OrderPropertyTest, Tables) {
  OrderProperty o({C(2, 0), C(0, 1), C(2, 3)});
  EXPECT_EQ(o.Tables(), (std::vector<int>{2, 0}));
}

TEST(OrderPropertyTest, HashEqualForEqualOrders) {
  OrderPropertyHash h;
  OrderProperty a({C(0, 0), C(1, 1)});
  OrderProperty b({C(0, 0), C(1, 1)});
  OrderProperty c({C(1, 1), C(0, 0)});
  EXPECT_EQ(h(a), h(b));
  EXPECT_NE(h(a), h(c));  // order-sensitive (overwhelmingly likely)
}

}  // namespace
}  // namespace cote
