#include "optimizer/enumerator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "catalog/catalog.h"
#include "core/join_count_baseline.h"
#include "query/query_builder.h"

namespace cote {
namespace {

std::shared_ptr<Catalog> MakeCatalog(int n) {
  auto catalog = std::make_shared<Catalog>();
  for (int i = 0; i < n; ++i) {
    TableBuilder b("T" + std::to_string(i), 1000);
    b.Col("a", ColumnType::kInt, 100).Col("b", ColumnType::kInt, 100);
    EXPECT_TRUE(catalog->AddTable(b.Build()).ok());
  }
  return catalog;
}

QueryGraph MakeShape(const Catalog& catalog, int n, const std::string& shape) {
  QueryBuilder qb(catalog);
  for (int i = 0; i < n; ++i) {
    qb.AddTable("T" + std::to_string(i), "t" + std::to_string(i));
  }
  if (shape == "chain") {
    for (int i = 0; i + 1 < n; ++i) {
      qb.Join("t" + std::to_string(i), "a", "t" + std::to_string(i + 1), "a");
    }
  } else if (shape == "star") {
    for (int i = 1; i < n; ++i) {
      qb.Join("t0", "a", "t" + std::to_string(i), "a");
    }
  } else {  // clique
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        qb.Join("t" + std::to_string(i), "a", "t" + std::to_string(j), "b");
      }
    }
  }
  auto g = qb.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

EnumeratorOptions FullBushy() {
  EnumeratorOptions o;
  o.cartesian_when_card_one = false;  // pure connectivity-driven DP
  return o;
}

/// Recording visitor for structural assertions.
class RecordingVisitor : public JoinVisitor {
 public:
  void InitializeEntry(TableSet s) override { entries.push_back(s); }
  double EntryCardinality(TableSet s) override {
    (void)s;
    return 1000;  // never card-1: Cartesian heuristic stays off
  }
  void OnJoin(TableSet outer, TableSet inner, const std::vector<int>& preds,
              bool cartesian) override {
    joins.push_back({outer, inner});
    pred_counts.push_back(static_cast<int>(preds.size()));
    cartesians.push_back(cartesian);
  }

  std::vector<TableSet> entries;
  std::vector<std::pair<TableSet, TableSet>> joins;
  std::vector<int> pred_counts;
  std::vector<bool> cartesians;
};

// ---- Closed-formula property sweeps (validates both the enumerator and
// the Ono-Lohman baseline formulas against each other).

class ShapeCountTest
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(ShapeCountTest, MatchesClosedFormula) {
  auto [n, shape] = GetParam();
  auto catalog = MakeCatalog(n);
  QueryGraph g = MakeShape(*catalog, n, shape);
  EnumerationStats stats = JoinCountBaseline::CountJoins(g, FullBushy());
  int64_t expected = shape == "chain" ? JoinCountBaseline::ChainJoins(n)
                     : shape == "star" ? JoinCountBaseline::StarJoins(n)
                                       : JoinCountBaseline::CliqueJoins(n);
  EXPECT_EQ(stats.joins_unordered, expected) << shape << " n=" << n;
  // No outer joins: every unordered pair emits both orientations.
  EXPECT_EQ(stats.joins_ordered, 2 * expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeCountTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 10),
                       ::testing::Values(std::string("chain"),
                                         std::string("star"),
                                         std::string("clique"))));

TEST(EnumeratorTest, EntriesAreConnectedSubgraphs) {
  auto catalog = MakeCatalog(5);
  QueryGraph g = MakeShape(*catalog, 5, "chain");
  RecordingVisitor v;
  JoinEnumerator e(g, FullBushy());
  e.Run(&v);
  for (TableSet s : v.entries) {
    EXPECT_TRUE(g.IsSubgraphConnected(s)) << s.ToString();
  }
  // Chain of 5: connected subsets = 5 singletons + 4+3+2+1 intervals.
  EXPECT_EQ(v.entries.size(), 15u);
}

TEST(EnumeratorTest, EntriesInitializedBeforeTheirJoins) {
  // Every OnJoin must see existing entries for outer, inner, AND the
  // joined set — and each entry is initialized exactly once.
  class OrderCheckingVisitor : public JoinVisitor {
   public:
    void InitializeEntry(TableSet s) override {
      EXPECT_EQ(std::find(seen.begin(), seen.end(), s), seen.end())
          << "double init of " << s.ToString();
      seen.push_back(s);
    }
    double EntryCardinality(TableSet s) override {
      (void)s;
      return 1000;
    }
    void OnJoin(TableSet outer, TableSet inner, const std::vector<int>&,
                bool) override {
      auto has = [&](TableSet s) {
        return std::find(seen.begin(), seen.end(), s) != seen.end();
      };
      EXPECT_TRUE(has(outer));
      EXPECT_TRUE(has(inner));
      EXPECT_TRUE(has(outer.Union(inner)));
    }
    std::vector<TableSet> seen;
  };
  auto catalog = MakeCatalog(4);
  QueryGraph g = MakeShape(*catalog, 4, "star");
  OrderCheckingVisitor v;
  JoinEnumerator e(g, FullBushy());
  e.Run(&v);
  EXPECT_FALSE(v.seen.empty());
}

TEST(EnumeratorTest, CompositeInnerLimit) {
  auto catalog = MakeCatalog(6);
  QueryGraph g = MakeShape(*catalog, 6, "chain");
  for (int limit : {1, 2, 3}) {
    EnumeratorOptions opt = FullBushy();
    opt.max_composite_inner = limit;
    RecordingVisitor v;
    JoinEnumerator e(g, opt);
    e.Run(&v);
    for (const auto& [outer, inner] : v.joins) {
      (void)outer;
      EXPECT_LE(inner.size(), limit);
    }
    // The final entry must still be reachable (left-deep always works on
    // connected graphs).
    EXPECT_NE(std::find(v.entries.begin(), v.entries.end(),
                        TableSet::FirstN(6)),
              v.entries.end());
  }
}

TEST(EnumeratorTest, LeftDeepCountsForChain) {
  // With inner limit 1 a chain of n has exactly sum over interval lengths
  // of (ways to extend by one end) joins: intervals [i,j] built from
  // [i+1,j] or [i,j-1] => (n-1) + 2*(number of intervals of length >= 3)…
  // simpler: count distinct (interval, removed-end) pairs.
  auto catalog = MakeCatalog(6);
  const int n = 6;
  QueryGraph g = MakeShape(*catalog, n, "chain");
  EnumeratorOptions opt = FullBushy();
  opt.max_composite_inner = 1;
  EnumerationStats stats = JoinCountBaseline::CountJoins(g, opt);
  int64_t expected = 0;
  for (int len = 2; len <= n; ++len) {
    int intervals = n - len + 1;
    expected += intervals * (len == 2 ? 1 : 2);  // extend left or right end
  }
  EXPECT_EQ(stats.joins_unordered, expected);
}

TEST(EnumeratorTest, DisconnectedGraphWithoutCartesianNeverCompletes) {
  auto catalog = MakeCatalog(4);
  QueryBuilder qb(*catalog);
  qb.AddTable("T0", "t0").AddTable("T1", "t1").AddTable("T2", "t2");
  qb.Join("t0", "a", "t1", "a");  // t2 disconnected
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  RecordingVisitor v;
  JoinEnumerator e(*g, FullBushy());
  e.Run(&v);
  EXPECT_EQ(std::find(v.entries.begin(), v.entries.end(), TableSet::FirstN(3)),
            v.entries.end());
}

TEST(EnumeratorTest, CartesianWhenCardOne) {
  auto catalog = MakeCatalog(4);
  QueryBuilder qb(*catalog);
  qb.AddTable("T0", "t0").AddTable("T1", "t1").AddTable("T2", "t2");
  qb.Join("t0", "a", "t1", "a");
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());

  // A visitor whose cardinality model reports 1 row for t2.
  class CardOneVisitor : public RecordingVisitor {
   public:
    double EntryCardinality(TableSet s) override {
      return s == TableSet::Single(2) ? 1.0 : 1000.0;
    }
  };
  CardOneVisitor v;
  EnumeratorOptions opt;
  opt.cartesian_when_card_one = true;
  JoinEnumerator e(*g, opt);
  e.Run(&v);
  // The Cartesian product with t2 makes the full query reachable.
  EXPECT_NE(std::find(v.entries.begin(), v.entries.end(), TableSet::FirstN(3)),
            v.entries.end());
  bool saw_cartesian = false;
  for (bool c : v.cartesians) saw_cartesian |= c;
  EXPECT_TRUE(saw_cartesian);
}

TEST(EnumeratorTest, AllowAllCartesianCompletesDisconnected) {
  auto catalog = MakeCatalog(3);
  QueryBuilder qb(*catalog);
  qb.AddTable("T0", "t0").AddTable("T1", "t1");
  auto g = qb.Build();  // no predicates at all
  ASSERT_TRUE(g.ok());
  EnumeratorOptions opt;
  opt.allow_all_cartesian = true;
  RecordingVisitor v;
  JoinEnumerator e(*g, opt);
  e.Run(&v);
  EXPECT_NE(std::find(v.entries.begin(), v.entries.end(), TableSet::FirstN(2)),
            v.entries.end());
}

TEST(EnumeratorTest, OuterJoinRestrictsEmissions) {
  auto catalog = MakeCatalog(3);
  QueryBuilder qb(*catalog);
  qb.AddTable("T0", "t0").AddTable("T1", "t1");
  qb.Join("t0", "a", "t1", "a", JoinKind::kLeftOuter);
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  RecordingVisitor v;
  JoinEnumerator e(*g, FullBushy());
  e.Run(&v);
  // Only (t0 outer, t1 inner) is legal.
  ASSERT_EQ(v.joins.size(), 1u);
  EXPECT_EQ(v.joins[0].first, TableSet::Single(0));
  EXPECT_EQ(v.joins[0].second, TableSet::Single(1));
}

TEST(EnumeratorTest, MultiPredicateJoinReportsAllPredicates) {
  auto catalog = MakeCatalog(2);
  QueryBuilder qb(*catalog);
  qb.AddTable("T0", "t0").AddTable("T1", "t1");
  qb.Join("t0", "a", "t1", "a").Join("t0", "b", "t1", "b");
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  RecordingVisitor v;
  JoinEnumerator e(*g, FullBushy());
  e.Run(&v);
  ASSERT_EQ(v.pred_counts.size(), 2u);  // two orientations
  EXPECT_EQ(v.pred_counts[0], 2);
}

TEST(EnumeratorTest, SingleTableQuery) {
  auto catalog = MakeCatalog(1);
  QueryBuilder qb(*catalog);
  qb.AddTable("T0", "t0");
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  RecordingVisitor v;
  JoinEnumerator e(*g, FullBushy());
  EnumerationStats stats = e.Run(&v);
  EXPECT_EQ(stats.entries_created, 1);
  EXPECT_EQ(stats.joins_ordered, 0);
}

}  // namespace
}  // namespace cote
