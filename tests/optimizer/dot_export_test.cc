#include "optimizer/plan/dot_export.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "optimizer/optimizer.h"
#include "parser/binder.h"
#include "workload/workload.h"

namespace cote {
namespace {

class DotExportTest : public ::testing::Test {
 protected:
  DotExportTest() : catalog_(MakeTpchCatalog()) {}
  std::shared_ptr<Catalog> catalog_;
};

TEST_F(DotExportTest, QueryGraphNodesAndEdges) {
  auto g = Binder::BindSql(*catalog_,
                           "SELECT * FROM orders o LEFT JOIN lineitem l "
                           "ON o.o_orderkey = l.l_orderkey");
  ASSERT_TRUE(g.ok());
  std::string dot = QueryGraphToDot(*g);
  EXPECT_NE(dot.find("graph join_graph {"), std::string::npos);
  EXPECT_NE(dot.find("t0 [label=\"o"), std::string::npos);
  EXPECT_NE(dot.find("t1 [label=\"l"), std::string::npos);
  EXPECT_NE(dot.find("t0 -- t1"), std::string::npos);
  // Outer join styled with direction toward the null-producing side.
  EXPECT_NE(dot.find("dir=forward"), std::string::npos);
  EXPECT_EQ(dot.find("style=dashed];"), std::string::npos);  // no derived
}

TEST_F(DotExportTest, DerivedPredicatesDashed) {
  auto g = Binder::BindSql(*catalog_,
                           "SELECT * FROM supplier s, lineitem l, partsupp ps "
                           "WHERE s.s_suppkey = l.l_suppkey "
                           "AND ps.ps_suppkey = l.l_suppkey");
  ASSERT_TRUE(g.ok());
  std::string dot = QueryGraphToDot(*g);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST_F(DotExportTest, PlanTreeWellFormed) {
  auto g = Binder::BindSql(*catalog_,
                           "SELECT * FROM orders o, lineitem l "
                           "WHERE o.o_orderkey = l.l_orderkey "
                           "ORDER BY o.o_orderdate");
  ASSERT_TRUE(g.ok());
  Optimizer opt;
  auto r = opt.Optimize(*g);
  ASSERT_TRUE(r.ok());
  std::string dot = PlanToDot(r->best_plan);
  EXPECT_NE(dot.find("digraph plan {"), std::string::npos);
  EXPECT_NE(dot.find("n0 [label="), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  // Balanced braces; one node line per plan node reachable from the root.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST_F(DotExportTest, NullPlanHandled) {
  std::string dot = PlanToDot(nullptr);
  EXPECT_NE(dot.find("digraph plan {"), std::string::npos);
}

}  // namespace
}  // namespace cote
