#include "optimizer/memo.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "query/query_builder.h"

namespace cote {
namespace {

class MemoTest : public ::testing::Test {
 protected:
  MemoTest() {
    for (int i = 0; i < 3; ++i) {
      TableBuilder b("T" + std::to_string(i), 1000);
      b.Col("a", ColumnType::kInt, 100).Col("b", ColumnType::kInt, 10);
      EXPECT_TRUE(catalog_.AddTable(b.Build()).ok());
    }
    QueryBuilder qb(catalog_);
    qb.AddTable("T0", "t0").AddTable("T1", "t1").AddTable("T2", "t2");
    qb.Join("t0", "a", "t1", "a").Join("t1", "b", "t2", "b");
    auto g = qb.Build();
    EXPECT_TRUE(g.ok());
    graph_ = std::move(g).value();
  }

  Plan* MakePlan(Memo* memo, double cost, OrderProperty order,
                 PartitionProperty part = PartitionProperty::Serial()) {
    Plan* p = memo->NewPlan();
    p->cost = cost;
    p->order = std::move(order);
    p->partition = std::move(part);
    return p;
  }

  Catalog catalog_;
  QueryGraph graph_;
};

TEST_F(MemoTest, GetOrCreateIdempotent) {
  Memo memo(graph_);
  bool created = false;
  MemoEntry* e1 = memo.GetOrCreate(TableSet::Single(0), &created);
  EXPECT_TRUE(created);
  MemoEntry* e2 = memo.GetOrCreate(TableSet::Single(0), &created);
  EXPECT_FALSE(created);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(memo.num_entries(), 1);
  EXPECT_EQ(memo.Find(TableSet::Single(1)), nullptr);
}

TEST_F(MemoTest, EntryEquivalenceFromAppliedPredicates) {
  Memo memo(graph_);
  MemoEntry* e01 = memo.GetOrCreate(TableSet::FirstN(2));
  EXPECT_TRUE(e01->equivalence().Equivalent(ColumnRef(0, 0), ColumnRef(1, 0)));
  // Predicate t1.b = t2.b not inside {0,1}.
  EXPECT_FALSE(e01->equivalence().Equivalent(ColumnRef(1, 1), ColumnRef(2, 1)));
  MemoEntry* all = memo.GetOrCreate(TableSet::FirstN(3));
  EXPECT_TRUE(all->equivalence().Equivalent(ColumnRef(1, 1), ColumnRef(2, 1)));
}

TEST_F(MemoTest, InsertKeepsCheaperSameProperty) {
  Memo memo(graph_);
  MemoEntry* e = memo.GetOrCreate(TableSet::Single(0));
  Plan* expensive = MakePlan(&memo, 100, OrderProperty::None());
  Plan* cheap = MakePlan(&memo, 10, OrderProperty::None());
  EXPECT_TRUE(memo.Insert(e, expensive));
  EXPECT_TRUE(memo.Insert(e, cheap));  // replaces
  ASSERT_EQ(e->plans().size(), 1u);
  EXPECT_EQ(e->plans()[0], cheap);
  // A later more expensive same-property plan is rejected.
  EXPECT_FALSE(memo.Insert(e, MakePlan(&memo, 50, OrderProperty::None())));
}

TEST_F(MemoTest, DistinctOrdersCoexist) {
  Memo memo(graph_);
  MemoEntry* e = memo.GetOrCreate(TableSet::Single(0));
  OrderProperty oa({ColumnRef(0, 0)}), ob({ColumnRef(0, 1)});
  EXPECT_TRUE(memo.Insert(e, MakePlan(&memo, 10, OrderProperty::None())));
  EXPECT_TRUE(memo.Insert(e, MakePlan(&memo, 20, oa)));
  EXPECT_TRUE(memo.Insert(e, MakePlan(&memo, 20, ob)));
  EXPECT_EQ(e->plans().size(), 3u);
}

TEST_F(MemoTest, GeneralOrderPrunesSpecific) {
  // Plan sharing (§5.2): a cheaper plan on (a,b) prunes a plan on (a).
  Memo memo(graph_);
  MemoEntry* e = memo.GetOrCreate(TableSet::Single(0));
  OrderProperty a({ColumnRef(0, 0)});
  OrderProperty ab({ColumnRef(0, 0), ColumnRef(0, 1)});
  EXPECT_TRUE(memo.Insert(e, MakePlan(&memo, 30, a)));
  EXPECT_TRUE(memo.Insert(e, MakePlan(&memo, 20, ab)));
  ASSERT_EQ(e->plans().size(), 1u);
  EXPECT_EQ(e->plans()[0]->order, ab);
  // And the reverse arrival order also converges to one plan.
  MemoEntry* e2 = memo.GetOrCreate(TableSet::Single(1));
  EXPECT_TRUE(memo.Insert(e2, MakePlan(&memo, 20, ab)));
  EXPECT_FALSE(memo.Insert(e2, MakePlan(&memo, 30, a)));
}

TEST_F(MemoTest, SpecificOrderSurvivesIfCheaper) {
  Memo memo(graph_);
  MemoEntry* e = memo.GetOrCreate(TableSet::Single(0));
  OrderProperty a({ColumnRef(0, 0)});
  OrderProperty ab({ColumnRef(0, 0), ColumnRef(0, 1)});
  EXPECT_TRUE(memo.Insert(e, MakePlan(&memo, 10, a)));
  EXPECT_TRUE(memo.Insert(e, MakePlan(&memo, 20, ab)));
  EXPECT_EQ(e->plans().size(), 2u);  // Pareto frontier
}

TEST_F(MemoTest, PartitionDominance) {
  Memo memo(graph_);
  MemoEntry* e = memo.GetOrCreate(TableSet::Single(0));
  PartitionProperty h = PartitionProperty::Hash({ColumnRef(0, 0)});
  // Replicated satisfies hash requirements, so a cheaper replicated plan
  // prunes the hash-partitioned one.
  EXPECT_TRUE(memo.Insert(
      e, MakePlan(&memo, 30, OrderProperty::None(), h)));
  EXPECT_TRUE(memo.Insert(
      e, MakePlan(&memo, 10, OrderProperty::None(),
                  PartitionProperty::Replicated())));
  ASSERT_EQ(e->plans().size(), 1u);
  EXPECT_EQ(e->plans()[0]->partition.kind(),
            PartitionProperty::Kind::kReplicated);
}

TEST_F(MemoTest, CheapestSatisfying) {
  Memo memo(graph_);
  MemoEntry* e = memo.GetOrCreate(TableSet::Single(0));
  OrderProperty a({ColumnRef(0, 0)});
  Plan* dc = MakePlan(&memo, 10, OrderProperty::None());
  Plan* ordered = MakePlan(&memo, 25, a);
  memo.Insert(e, dc);
  memo.Insert(e, ordered);
  EXPECT_EQ(e->Cheapest(), dc);
  EXPECT_EQ(e->CheapestSatisfying(a, PartitionProperty::Serial()), ordered);
  EXPECT_EQ(e->CheapestSatisfying(OrderProperty({ColumnRef(0, 1)}),
                                  PartitionProperty::Serial()),
            nullptr);
}

TEST_F(MemoTest, StatsAndMemory) {
  Memo memo(graph_);
  MemoEntry* e = memo.GetOrCreate(TableSet::Single(0));
  memo.Insert(e, MakePlan(&memo, 10, OrderProperty::None()));
  memo.Insert(e, MakePlan(&memo, 20, OrderProperty({ColumnRef(0, 0)})));
  EXPECT_EQ(memo.plans_allocated(), 2);
  EXPECT_EQ(memo.plans_stored(), 2);
  EXPECT_GT(memo.ApproxMemoryBytes(), 0);
  EXPECT_EQ(memo.entries_in_order().size(), 1u);
}

TEST_F(MemoTest, OuterEnabledFlagFromGraph) {
  QueryBuilder qb(catalog_);
  qb.AddTable("T0", "t0").AddTable("T1", "t1");
  qb.Join("t0", "a", "t1", "a", JoinKind::kLeftOuter);
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  Memo memo(*g);
  EXPECT_TRUE(memo.GetOrCreate(TableSet::Single(0))->outer_enabled());
  EXPECT_FALSE(memo.GetOrCreate(TableSet::Single(1))->outer_enabled());
}

}  // namespace
}  // namespace cote
