#include "optimizer/properties/partition_property.h"

#include <gtest/gtest.h>

namespace cote {
namespace {

ColumnRef C(int t, int c) { return ColumnRef(t, c); }

TEST(PartitionPropertyTest, Kinds) {
  EXPECT_EQ(PartitionProperty::Serial().kind(),
            PartitionProperty::Kind::kSerial);
  EXPECT_EQ(PartitionProperty::Replicated().kind(),
            PartitionProperty::Kind::kReplicated);
  EXPECT_EQ(PartitionProperty::SingleNode().kind(),
            PartitionProperty::Kind::kSingleNode);
  EXPECT_EQ(PartitionProperty::Hash({C(0, 0)}).kind(),
            PartitionProperty::Kind::kHash);
}

TEST(PartitionPropertyTest, HashKeysAreSetSemantics) {
  PartitionProperty a = PartitionProperty::Hash({C(1, 0), C(0, 0)});
  PartitionProperty b = PartitionProperty::Hash({C(0, 0), C(1, 0), C(0, 0)});
  EXPECT_EQ(a, b);  // sorted + deduped
  EXPECT_EQ(a.columns().size(), 2u);
}

TEST(PartitionPropertyTest, SerialSatisfiesEverythingRequiredSerial) {
  PartitionProperty req = PartitionProperty::Serial();
  EXPECT_TRUE(PartitionProperty::Serial().Satisfies(req));
  EXPECT_TRUE(PartitionProperty::Hash({C(0, 0)}).Satisfies(req));
  EXPECT_TRUE(PartitionProperty::Replicated().Satisfies(req));
}

TEST(PartitionPropertyTest, HashRequirement) {
  PartitionProperty req = PartitionProperty::Hash({C(0, 0)});
  EXPECT_TRUE(PartitionProperty::Hash({C(0, 0)}).Satisfies(req));
  EXPECT_FALSE(PartitionProperty::Hash({C(0, 1)}).Satisfies(req));
  // A replicated copy co-locates with any partitioning.
  EXPECT_TRUE(PartitionProperty::Replicated().Satisfies(req));
  EXPECT_FALSE(PartitionProperty::SingleNode().Satisfies(req));
}

TEST(PartitionPropertyTest, ReplicatedRequirement) {
  PartitionProperty req = PartitionProperty::Replicated();
  EXPECT_TRUE(PartitionProperty::Replicated().Satisfies(req));
  EXPECT_FALSE(PartitionProperty::Hash({C(0, 0)}).Satisfies(req));
  EXPECT_FALSE(PartitionProperty::SingleNode().Satisfies(req));
}

TEST(PartitionPropertyTest, SingleNodeRequirement) {
  PartitionProperty req = PartitionProperty::SingleNode();
  EXPECT_TRUE(PartitionProperty::SingleNode().Satisfies(req));
  EXPECT_TRUE(PartitionProperty::Replicated().Satisfies(req));
  EXPECT_FALSE(PartitionProperty::Hash({C(0, 0)}).Satisfies(req));
}

TEST(PartitionPropertyTest, KeysSubsetOf) {
  PartitionProperty p = PartitionProperty::Hash({C(0, 0)});
  std::vector<ColumnRef> jcols{C(0, 0), C(1, 1)};
  EXPECT_TRUE(p.KeysSubsetOf(jcols));
  EXPECT_FALSE(PartitionProperty::Hash({C(2, 2)}).KeysSubsetOf(jcols));
  EXPECT_FALSE(PartitionProperty::Replicated().KeysSubsetOf(jcols));
  // Composite keys: all must be join columns.
  EXPECT_TRUE(PartitionProperty::Hash({C(0, 0), C(1, 1)}).KeysSubsetOf(jcols));
  EXPECT_FALSE(
      PartitionProperty::Hash({C(0, 0), C(3, 3)}).KeysSubsetOf(jcols));
}

TEST(PartitionPropertyTest, CanonicalizeMergesEquivalentKeys) {
  ColumnEquivalence eq;
  eq.AddEquivalence(C(0, 0), C(1, 0));
  PartitionProperty on_s = PartitionProperty::Hash({C(1, 0)});
  PartitionProperty on_r = PartitionProperty::Hash({C(0, 0)});
  EXPECT_NE(on_s, on_r);
  EXPECT_EQ(on_s.Canonicalize(eq), on_r.Canonicalize(eq));
  // Non-hash kinds canonicalize to themselves.
  EXPECT_EQ(PartitionProperty::Replicated().Canonicalize(eq),
            PartitionProperty::Replicated());
}

TEST(PartitionPropertyTest, ToStringForms) {
  EXPECT_EQ(PartitionProperty::Serial().ToString(), "serial");
  EXPECT_EQ(PartitionProperty::Replicated().ToString(), "replicated");
  EXPECT_EQ(PartitionProperty::Hash({C(0, 0)}).ToString(), "hash(t0.c0)");
}

}  // namespace
}  // namespace cote
