// Runtime half of the hot-path purity contract (the static half is
// tools/hotpath_lint.py): after one warm-up enumeration, re-running the
// same enumeration must perform ZERO heap allocations — every buffer the
// hot path touches is scratch whose capacity survives across runs.
//
// Covered modes (n = 12, the paper's DP sweet spot, on three shapes):
//  * estimate mode: JoinEnumerator driving a PlanCounter with default
//    options (serial, kSeparate) — the configuration whose per-join cost
//    the paper's estimator charges;
//  * pure enumeration: JoinEnumerator driving a do-nothing visitor, which
//    isolates the enumeration substrate itself.
//
// The test uses the counting operator-new hook from
// tests/common/alloc_guard.h; this TU provides the hook's definitions, so
// this file must stay in its own test binary.

#define COTE_ALLOC_GUARD_IMPLEMENT
#include "tests/common/alloc_guard.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "core/plan_counter.h"
#include "optimizer/cost/cardinality.h"
#include "optimizer/enumerator.h"
#include "optimizer/properties/interesting_orders.h"
#include "query/query_builder.h"

namespace cote {
namespace {

constexpr int kNumTables = 12;

std::shared_ptr<Catalog> MakeCatalog(int n) {
  auto catalog = std::make_shared<Catalog>();
  for (int i = 0; i < n; ++i) {
    TableBuilder b("T" + std::to_string(i), 1000 + 37 * i);
    b.Col("a", ColumnType::kInt, 100)
        .Col("b", ColumnType::kInt, 50)
        .Col("c", ColumnType::kInt, 25);
    EXPECT_TRUE(catalog->AddTable(b.Build()).ok());
  }
  return catalog;
}

// Same shape generator as the golden-equivalence tests, so the zero-alloc
// property is proven on the exact graphs whose outputs are pinned.
QueryGraph MakeShape(const Catalog& catalog, const std::string& shape,
                     int n) {
  QueryBuilder qb(catalog);
  for (int i = 0; i < n; ++i) {
    qb.AddTable("T" + std::to_string(i), "t" + std::to_string(i));
  }
  const char* cols[] = {"a", "b", "c"};
  auto edge = [&](int x, int y, int e) {
    qb.Join("t" + std::to_string(x), cols[e % 3], "t" + std::to_string(y),
            cols[e % 3]);
  };
  if (shape == "linear") {
    for (int i = 0; i + 1 < n; ++i) edge(i, i + 1, i);
  } else if (shape == "star") {
    for (int i = 1; i < n; ++i) edge(0, i, i - 1);
  } else {  // random
    Rng rng(0xc0feULL + static_cast<uint64_t>(n));
    for (int i = 1; i < n; ++i) {
      edge(static_cast<int>(rng.Uniform(static_cast<uint64_t>(i))), i, i);
    }
    for (int extra = 0; extra < n / 2; ++extra) {
      int a = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
      int b = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
      if (a != b) edge(std::min(a, b), std::max(a, b), extra);
    }
  }
  qb.OrderBy({{"t0", "b"}});
  qb.GroupBy({{"t1", "c"}});
  auto g = qb.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

/// Visitor that does nothing: isolates the enumeration substrate.
class NullVisitor : public JoinVisitor {
 public:
  void InitializeEntry(TableSet) override {}
  double EntryCardinality(TableSet) override { return 1000.0; }
  void OnJoin(TableSet, TableSet, const std::vector<int>&, bool) override {}
};

// The hook must actually be linked in, otherwise every zero-delta below
// would be vacuous.
TEST(AllocGuard, CountsHeapAllocations) {
  testing::AllocationCounter alloc;
  auto* v = new std::vector<int>(64);
  EXPECT_GT(alloc.delta(), 0);
  delete v;
}

class HotpathAllocTest : public ::testing::TestWithParam<const char*> {};

TEST_P(HotpathAllocTest, EstimateModeSteadyStateAllocatesNothing) {
  auto catalog = MakeCatalog(kNumTables);
  QueryGraph g = MakeShape(*catalog, GetParam(), kNumTables);
  InterestingOrders interesting(g);
  CardinalityModel card(g, /*use_key_refinement=*/false);

  EnumeratorOptions opt;
  opt.max_composite_inner = 2;  // the paper's DP limit
  PlanCounter counter(g, interesting, card, PlanCounterOptions{});
  JoinEnumerator enumerator(g, opt);

  // Warm-up: builds the MEMO index, entry states, property lists, the
  // cardinality cache, and every scratch buffer's capacity.
  EnumerationStats first = enumerator.Run(&counter);
  const int64_t nljn1 = counter.estimated_plans().nljn();
  const int64_t mgjn1 = counter.estimated_plans().mgjn();
  const int64_t hsjn1 = counter.estimated_plans().hsjn();

  testing::AllocationCounter alloc;
  EnumerationStats second = enumerator.Run(&counter);
  EXPECT_EQ(alloc.delta(), 0)
      << "estimate-mode steady state performed heap allocations";

  // The steady-state run must also be behaviorally identical: same join
  // sequence (stats equal) and exactly-doubled accumulated plan counts.
  EXPECT_EQ(second.entries_created, first.entries_created);
  EXPECT_EQ(second.joins_unordered, first.joins_unordered);
  EXPECT_EQ(second.joins_ordered, first.joins_ordered);
  EXPECT_EQ(counter.estimated_plans().nljn(), 2 * nljn1);
  EXPECT_EQ(counter.estimated_plans().mgjn(), 2 * mgjn1);
  EXPECT_EQ(counter.estimated_plans().hsjn(), 2 * hsjn1);
}

TEST_P(HotpathAllocTest, NullVisitorSteadyStateAllocatesNothing) {
  auto catalog = MakeCatalog(kNumTables);
  QueryGraph g = MakeShape(*catalog, GetParam(), kNumTables);

  EnumeratorOptions opt;
  opt.max_composite_inner = 2;
  NullVisitor visitor;
  JoinEnumerator enumerator(g, opt);

  EnumerationStats first = enumerator.Run(&visitor);
  testing::AllocationCounter alloc;
  EnumerationStats second = enumerator.Run(&visitor);
  EXPECT_EQ(alloc.delta(), 0)
      << "pure enumeration steady state performed heap allocations";
  EXPECT_EQ(second.entries_created, first.entries_created);
  EXPECT_EQ(second.joins_unordered, first.joins_unordered);
  EXPECT_EQ(second.joins_ordered, first.joins_ordered);
}

TEST(HotpathAllocFullBushyTest, LinearFullBushySteadyStateAllocatesNothing) {
  auto catalog = MakeCatalog(kNumTables);
  QueryGraph g = MakeShape(*catalog, "linear", kNumTables);
  InterestingOrders interesting(g);
  CardinalityModel card(g, /*use_key_refinement=*/false);

  EnumeratorOptions opt;
  opt.max_composite_inner = 64;  // full bushy search space
  PlanCounter counter(g, interesting, card, PlanCounterOptions{});
  JoinEnumerator enumerator(g, opt);

  enumerator.Run(&counter);
  testing::AllocationCounter alloc;
  enumerator.Run(&counter);
  EXPECT_EQ(alloc.delta(), 0)
      << "full-bushy estimate-mode steady state performed heap allocations";
}

INSTANTIATE_TEST_SUITE_P(Shapes, HotpathAllocTest,
                         ::testing::Values("linear", "star", "random"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

}  // namespace
}  // namespace cote
