#include "optimizer/plan_generator.h"

#include <gtest/gtest.h>

#include <functional>

#include "catalog/catalog.h"
#include "optimizer/optimizer.h"
#include "query/query_builder.h"

namespace cote {
namespace {

std::shared_ptr<Catalog> MakeCatalog(bool with_indexes) {
  auto catalog = std::make_shared<Catalog>();
  for (int i = 0; i < 5; ++i) {
    TableBuilder b("T" + std::to_string(i), 10000 * (i + 1));
    b.Col("a", ColumnType::kInt, 1000).Col("b", ColumnType::kInt, 100);
    b.Col("c", ColumnType::kInt, 10);
    if (with_indexes) b.Idx("idx_a" + std::to_string(i), {"a"});
    b.HashPartition({"a"});
    EXPECT_TRUE(catalog->AddTable(b.Build()).ok());
  }
  return catalog;
}

QueryGraph Chain(const Catalog& catalog, int n, bool order_by = false) {
  QueryBuilder qb(catalog);
  for (int i = 0; i < n; ++i) {
    qb.AddTable("T" + std::to_string(i), "t" + std::to_string(i));
  }
  for (int i = 0; i + 1 < n; ++i) {
    qb.Join("t" + std::to_string(i), "a", "t" + std::to_string(i + 1), "a");
  }
  if (order_by) qb.OrderBy({{"t0", "b"}});
  auto g = qb.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

OptimizeResult Optimize(const QueryGraph& g, OptimizerOptions opt = {}) {
  Optimizer optimizer(opt);
  auto r = optimizer.Optimize(g);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(PlanGeneratorTest, SingleTablePlans) {
  auto catalog = MakeCatalog(true);
  QueryBuilder qb(*catalog);
  qb.AddTable("T0", "t0");
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  OptimizeResult r = Optimize(*g);
  EXPECT_TRUE(r.best_plan->op == OpType::kTableScan ||
              r.best_plan->op == OpType::kIndexScan);
  EXPECT_GT(r.stats.scan_plans, 0);
  EXPECT_EQ(r.stats.join_plans_generated.total(), 0);
}

TEST(PlanGeneratorTest, TwoWayJoinGeneratesAllThreeMethods) {
  auto catalog = MakeCatalog(false);
  QueryGraph g = Chain(*catalog, 2);
  OptimizeResult r = Optimize(g);
  const JoinTypeCounts& c = r.stats.join_plans_generated;
  EXPECT_GT(c.nljn(), 0);
  EXPECT_GT(c.mgjn(), 0);
  EXPECT_GT(c.hsjn(), 0);
  EXPECT_TRUE(r.best_plan->IsJoin());
}

TEST(PlanGeneratorTest, SerialHsjnExactlyTwiceJoins) {
  // HSJN propagates no property: exactly one plan per ordered emission —
  // twice the unordered join count (§5.2, exact in the serial version).
  auto catalog = MakeCatalog(true);
  for (int n : {2, 3, 4, 5}) {
    QueryGraph g = Chain(*catalog, n);
    OptimizeResult r = Optimize(g);
    EXPECT_EQ(r.stats.join_plans_generated.hsjn(),
              r.stats.enumeration.joins_ordered);
    EXPECT_EQ(r.stats.enumeration.joins_ordered,
              2 * r.stats.enumeration.joins_unordered);
  }
}

TEST(PlanGeneratorTest, HsjnOutputCarriesNoOrder) {
  auto catalog = MakeCatalog(true);
  QueryGraph g = Chain(*catalog, 3);
  OptimizeResult r = Optimize(g);
  for (const MemoEntry* e : r.memo->entries_in_order()) {
    for (const Plan* p : e->plans()) {
      if (p->op == OpType::kHsjn) {
        EXPECT_TRUE(p->order.IsNone());
      }
    }
  }
}

TEST(PlanGeneratorTest, NljnPropagatesOuterOrder) {
  auto catalog = MakeCatalog(true);
  // ORDER BY t0.b keeps a t0-ordered plan interesting all the way up.
  QueryGraph g = Chain(*catalog, 3, /*order_by=*/true);
  OptimizeResult r = Optimize(g);
  const MemoEntry* top = r.memo->Find(g.AllTables());
  ASSERT_NE(top, nullptr);
  bool found_ordered = false;
  for (const Plan* p : top->plans()) {
    if (p->op == OpType::kNljn &&
        p->order.SatisfiesPrefix(OrderProperty({ColumnRef(0, 1)}))) {
      found_ordered = true;
    }
  }
  EXPECT_TRUE(found_ordered);
}

TEST(PlanGeneratorTest, OrderByIncreasesPlansStored) {
  // Figure 3's point: adding ORDER BY increases stored plans though the
  // join graph is unchanged.
  auto catalog = MakeCatalog(false);
  QueryGraph without = Chain(*catalog, 3, false);
  QueryGraph with = Chain(*catalog, 3, true);
  OptimizeResult r1 = Optimize(without);
  OptimizeResult r2 = Optimize(with);
  EXPECT_EQ(r1.stats.enumeration.joins_unordered,
            r2.stats.enumeration.joins_unordered);
  EXPECT_GT(r2.stats.plans_stored, r1.stats.plans_stored);
  EXPECT_GT(r2.stats.join_plans_generated.total(),
            r1.stats.join_plans_generated.total());
}

TEST(PlanGeneratorTest, EagerSortEnforcersAtBaseTables) {
  auto catalog = MakeCatalog(false);  // no indexes: orders need SORTs
  QueryGraph g = Chain(*catalog, 2);
  OptimizeResult r = Optimize(g);
  const MemoEntry* t0 = r.memo->Find(TableSet::Single(0));
  ASSERT_NE(t0, nullptr);
  bool has_sort = false;
  for (const Plan* p : t0->plans()) has_sort |= (p->op == OpType::kSort);
  EXPECT_TRUE(has_sort);
  EXPECT_GT(r.stats.enforcer_plans, 0);
}

TEST(PlanGeneratorTest, LazyOrderPolicyGeneratesFewerPlans) {
  auto catalog = MakeCatalog(false);
  QueryGraph g = Chain(*catalog, 4);
  OptimizerOptions eager;
  OptimizerOptions lazy;
  lazy.plangen.eager_orders = false;
  OptimizeResult re = Optimize(g, eager);
  OptimizeResult rl = Optimize(g, lazy);
  // The eager policy generates a larger search space (§3.2).
  EXPECT_GT(re.stats.join_plans_generated.total(),
            rl.stats.join_plans_generated.total());
  // Both find a complete plan.
  EXPECT_NE(re.best_plan, nullptr);
  EXPECT_NE(rl.best_plan, nullptr);
}

TEST(PlanGeneratorTest, BestPlanTreeIsWellFormed) {
  auto catalog = MakeCatalog(true);
  QueryGraph g = Chain(*catalog, 5);
  OptimizeResult r = Optimize(g);
  // Walk the tree: joins have two children covering disjoint table sets.
  std::function<void(const Plan*)> check = [&](const Plan* p) {
    ASSERT_NE(p, nullptr);
    EXPECT_GT(p->rows, 0);
    EXPECT_GE(p->cost, 0);
    if (p->IsJoin()) {
      ASSERT_NE(p->child, nullptr);
      ASSERT_NE(p->inner, nullptr);
      EXPECT_FALSE(p->child->tables.Overlaps(p->inner->tables));
      EXPECT_EQ(p->child->tables.Union(p->inner->tables), p->tables);
      EXPECT_GE(p->cost, p->child->cost);
      check(p->child);
      check(p->inner);
    } else if (p->child != nullptr) {
      EXPECT_EQ(p->child->tables, p->tables);
      check(p->child);
    }
  };
  check(r.best_plan);
  EXPECT_EQ(r.best_plan->tables, g.AllTables());
}

TEST(PlanGeneratorTest, PilotPassPrunesExpensivePlans) {
  auto catalog = MakeCatalog(true);
  QueryGraph g = Chain(*catalog, 4);
  OptimizeResult base = Optimize(g);

  OptimizerOptions opt;
  opt.plangen.pilot_pass = true;
  opt.plangen.pilot_cost = base.stats.best_cost * 1.2;
  OptimizeResult pruned = Optimize(g, opt);
  EXPECT_GT(pruned.stats.pruned_by_pilot, 0);
  // Pruning must not change the winner (cost within noise of each other).
  EXPECT_NEAR(pruned.stats.best_cost, base.stats.best_cost,
              base.stats.best_cost * 1e-9);
}

TEST(PlanGeneratorTest, RedundantNljnKnobAddsPlans) {
  auto catalog = MakeCatalog(true);
  QueryGraph g = Chain(*catalog, 3);
  OptimizerOptions normal;
  OptimizerOptions redundant;
  redundant.plangen.redundant_nljn_inner = true;
  int64_t n1 = Optimize(g, normal).stats.join_plans_generated.nljn();
  int64_t n2 = Optimize(g, redundant).stats.join_plans_generated.nljn();
  EXPECT_GT(n2, n1);
}

// ---- Parallel planning ----------------------------------------------------

TEST(PlanGeneratorTest, ParallelPlansCarryPartitions) {
  auto catalog = MakeCatalog(true);
  QueryGraph g = Chain(*catalog, 3);
  OptimizeResult r = Optimize(g, OptimizerOptions::Parallel(4));
  const MemoEntry* top = r.memo->Find(g.AllTables());
  ASSERT_NE(top, nullptr);
  for (const Plan* p : top->plans()) {
    EXPECT_NE(p->partition.kind(), PartitionProperty::Kind::kSerial);
  }
}

TEST(PlanGeneratorTest, ParallelGeneratesMorePlansThanSerial) {
  auto catalog = MakeCatalog(true);
  QueryGraph g = Chain(*catalog, 4);
  OptimizeResult serial = Optimize(g);
  OptimizeResult parallel = Optimize(g, OptimizerOptions::Parallel(4));
  EXPECT_GE(parallel.stats.join_plans_generated.total(),
            serial.stats.join_plans_generated.total());
}

TEST(PlanGeneratorTest, RepartitionEnforcersAppearWhenKeysMismatch) {
  // Join on column b while tables are partitioned on a: both sides must be
  // repartitioned (the DB2 heuristic, §4).
  auto catalog = MakeCatalog(false);
  QueryBuilder qb(*catalog);
  qb.AddTable("T0", "t0").AddTable("T1", "t1");
  qb.Join("t0", "b", "t1", "b");
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  OptimizeResult r = Optimize(*g, OptimizerOptions::Parallel(4));
  bool saw_move = false;
  for (const MemoEntry* e : r.memo->entries_in_order()) {
    for (const Plan* p : e->plans()) {
      std::function<void(const Plan*)> walk = [&](const Plan* q) {
        if (q == nullptr) return;
        if (q->op == OpType::kRepartition || q->op == OpType::kReplicate) {
          saw_move = true;
        }
        walk(q->child);
        walk(q->inner);
      };
      walk(p);
    }
  }
  EXPECT_TRUE(saw_move);
}

}  // namespace
}  // namespace cote
