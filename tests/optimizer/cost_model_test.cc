#include "optimizer/cost/cost_model.h"

#include <gtest/gtest.h>

namespace cote {
namespace {

Table MakeTable(double rows) {
  TableBuilder b("t", rows);
  b.Col("a", ColumnType::kInt, rows);
  b.Idx("t_a", {"a"}, true);
  return b.Build();
}

TEST(CostModelTest, ScanCostGrowsWithTableSize) {
  CostModel m{CostParams{}};
  Table small = MakeTable(1000), big = MakeTable(1000000);
  EXPECT_LT(m.TableScan(small, 1000), m.TableScan(big, 1000000));
  EXPECT_GT(m.TableScan(small, 1000), 0);
}

TEST(CostModelTest, SelectiveIndexScanBeatsTableScan) {
  CostModel m{CostParams{}};
  Table t = MakeTable(1000000);
  double scan = m.TableScan(t, 1000000);
  double iscan = m.IndexScan(t, t.indexes()[0], /*match=*/0.0001, 100);
  EXPECT_LT(iscan, scan);
}

TEST(CostModelTest, UnselectiveIndexScanLosesToTableScan) {
  CostModel m{CostParams{}};
  Table t = MakeTable(1000000);
  double scan = m.TableScan(t, 1000000);
  double iscan = m.IndexScan(t, t.indexes()[0], /*match=*/1.0, 1000000);
  EXPECT_GT(iscan, scan);
}

TEST(CostModelTest, SortSuperlinear) {
  CostModel m{CostParams{}};
  double s1 = m.Sort(1000, 1);
  double s10 = m.Sort(10000, 1);
  EXPECT_GT(s10, 10 * s1);  // n log n
  EXPECT_GT(m.Sort(1000, 4), m.Sort(1000, 1));  // wider keys cost more
}

TEST(CostModelTest, JoinCostsIncludeInputCosts) {
  CostModel m{CostParams{}};
  double inputs = 500 + 300;
  EXPECT_GT(m.Nljn(1000, 500, 2000, 300), inputs);
  EXPECT_GT(m.Mgjn(1000, 500, 2000, 300, 1500), inputs);
  EXPECT_GT(m.Hsjn(1000, 500, 2000, 300, 1500), inputs);
}

TEST(CostModelTest, HashJoinSpillPenalty) {
  CostParams p;
  p.buffer_pages = 10;  // tiny memory: 10k build rows no longer fit
  CostModel small_mem{p};
  CostModel big_mem{CostParams{}};
  double with_spill = small_mem.Hsjn(1000, 0, 10000, 0, 1000);
  double without = big_mem.Hsjn(1000, 0, 10000, 0, 1000);
  EXPECT_GT(with_spill, without);
}

TEST(CostModelTest, ParallelismReducesLocalWork) {
  CostParams serial;
  CostParams par = serial;
  par.num_nodes = 4;
  Table t = MakeTable(1000000);
  EXPECT_LT(CostModel{par}.TableScan(t, 1000000),
            CostModel{serial}.TableScan(t, 1000000));
}

TEST(CostModelTest, NetworkCosts) {
  CostParams p;
  p.num_nodes = 4;
  CostModel m{p};
  EXPECT_GT(m.Repartition(100000), 0);
  // Broadcasting to all nodes moves more data than repartitioning.
  EXPECT_GT(m.Replicate(100000), m.Repartition(100000));
  // Serial configuration moves nothing.
  CostModel serial{CostParams{}};
  EXPECT_DOUBLE_EQ(serial.Repartition(100000), 0 +
                   100000 * CostParams{}.cpu_row_cost * 0.2);
}

TEST(CostModelTest, GroupByVariants) {
  CostModel m{CostParams{}};
  EXPECT_GT(m.GroupBySort(100000, 100), 0);
  EXPECT_GT(m.GroupByHash(100000, 100), 0);
  // Sort-based grouping of unsorted input dominates hash for large inputs.
  EXPECT_GT(m.GroupBySort(1000000, 10), m.GroupByHash(1000000, 10));
}

TEST(CostModelTest, CostToSeconds) {
  CostParams p;
  p.seconds_per_cost_unit = 0.5;
  CostModel m{p};
  EXPECT_DOUBLE_EQ(m.CostToSeconds(4.0), 2.0);
}

TEST(CostModelTest, HistogramFactorNearOne) {
  CostModel m{CostParams{}};
  double f = m.HistogramJoinFactor(1e6, 1e5, 5);
  EXPECT_GT(f, 0.99);
  EXPECT_LT(f, 1.1);
  // Disabled histograms yield exactly 1.
  CostParams p;
  p.histogram_buckets = 0;
  EXPECT_DOUBLE_EQ(CostModel{p}.HistogramJoinFactor(1e6, 1e5, 5), 1.0);
}

}  // namespace
}  // namespace cote
