#include "optimizer/properties/interesting_orders.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "query/query_builder.h"

namespace cote {
namespace {

class InterestingOrdersTest : public ::testing::Test {
 protected:
  InterestingOrdersTest() {
    for (int i = 0; i < 4; ++i) {
      TableBuilder b("T" + std::to_string(i), 10000);
      b.Col("a", ColumnType::kInt, 1000).Col("b", ColumnType::kInt, 100);
      b.Col("c", ColumnType::kInt, 10).Col("d", ColumnType::kInt, 10);
      EXPECT_TRUE(catalog_.AddTable(b.Build()).ok());
    }
  }

  Catalog catalog_;
};

TEST_F(InterestingOrdersTest, JoinColumnInterests) {
  QueryBuilder qb(catalog_);
  qb.AddTable("T0", "t0").AddTable("T1", "t1");
  qb.Join("t0", "a", "t1", "a");
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  InterestingOrders io(*g);
  // One single-column interest per predicate side.
  ASSERT_EQ(io.interests().size(), 2u);
  EXPECT_EQ(io.interests()[0].source, OrderSource::kJoin);
  EXPECT_EQ(io.interests()[0].order, OrderProperty({ColumnRef(0, 0)}));
  EXPECT_EQ(io.interests()[1].order, OrderProperty({ColumnRef(1, 0)}));
}

TEST_F(InterestingOrdersTest, MultiPredicatePairGetsConcatenatedOrder) {
  QueryBuilder qb(catalog_);
  qb.AddTable("T0", "t0").AddTable("T1", "t1");
  qb.Join("t0", "a", "t1", "a").Join("t0", "b", "t1", "b");
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  InterestingOrders io(*g);
  // 4 single-column + 2 concatenated (one per side).
  EXPECT_EQ(io.interests().size(), 6u);
  bool found_concat = false;
  for (const OrderInterest& i : io.interests()) {
    if (i.order.size() == 2) found_concat = true;
  }
  EXPECT_TRUE(found_concat);
}

TEST_F(InterestingOrdersTest, OrderByPrefixes) {
  QueryBuilder qb(catalog_);
  qb.AddTable("T0", "t0").AddTable("T1", "t1");
  qb.Join("t0", "a", "t1", "a");
  qb.OrderBy({{"t0", "b"}, {"t1", "b"}});
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  InterestingOrders io(*g);
  // Each ORDER BY prefix is interesting; the 1-prefix only needs t0.
  int order_by_interests = 0;
  for (const OrderInterest& i : io.interests()) {
    if (i.source == OrderSource::kOrderBy) {
      ++order_by_interests;
      if (i.order.size() == 1) {
        EXPECT_EQ(i.tables, TableSet::Single(0));
        EXPECT_TRUE(io.ActiveFor(i, TableSet::Single(0)));
      } else {
        EXPECT_EQ(i.tables, TableSet::FirstN(2));
        EXPECT_FALSE(io.ActiveFor(i, TableSet::Single(0)));
        EXPECT_TRUE(io.ActiveFor(i, TableSet::FirstN(2)));
      }
    }
  }
  EXPECT_EQ(order_by_interests, 2);
}

TEST_F(InterestingOrdersTest, GroupByFullSetAndProjections) {
  QueryBuilder qb(catalog_);
  qb.AddTable("T0", "t0").AddTable("T1", "t1");
  qb.Join("t0", "a", "t1", "a");
  qb.GroupBy({{"t0", "c"}, {"t1", "c"}});
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  InterestingOrders io(*g);
  int group_interests = 0;
  for (const OrderInterest& i : io.interests()) {
    if (i.source == OrderSource::kGroupBy) ++group_interests;
  }
  // Full set + one projection per table.
  EXPECT_EQ(group_interests, 3);
}

TEST_F(InterestingOrdersTest, JoinInterestRetiresWhenPredicateConsumed) {
  QueryBuilder qb(catalog_);
  qb.AddTable("T0", "t0").AddTable("T1", "t1").AddTable("T2", "t2");
  qb.Join("t0", "a", "t1", "a").Join("t1", "b", "t2", "b");
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  InterestingOrders io(*g);

  const OrderInterest* t0a = nullptr;
  const OrderInterest* t1b = nullptr;
  for (const OrderInterest& i : io.interests()) {
    if (i.order == OrderProperty({ColumnRef(0, 0)})) t0a = &i;
    if (i.order == OrderProperty({ColumnRef(1, 1)})) t1b = &i;
  }
  ASSERT_NE(t0a, nullptr);
  ASSERT_NE(t1b, nullptr);
  // t0.a interesting at {0}, retired once {0,1} joined.
  EXPECT_TRUE(io.ActiveFor(*t0a, TableSet::Single(0)));
  EXPECT_FALSE(io.ActiveFor(*t0a, TableSet::FirstN(2)));
  // t1.b stays interesting at {0,1} (t2 still outside), retires at {0,1,2}.
  EXPECT_TRUE(io.ActiveFor(*t1b, TableSet::FirstN(2)));
  EXPECT_FALSE(io.ActiveFor(*t1b, TableSet::FirstN(3)));
}

TEST_F(InterestingOrdersTest, OrderByNeverRetires) {
  QueryBuilder qb(catalog_);
  qb.AddTable("T0", "t0").AddTable("T1", "t1");
  qb.Join("t0", "a", "t1", "a");
  qb.OrderBy({{"t0", "b"}});
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  InterestingOrders io(*g);
  for (const OrderInterest& i : io.interests()) {
    if (i.source == OrderSource::kOrderBy) {
      EXPECT_TRUE(io.ActiveFor(i, TableSet::FirstN(2)));
    }
  }
}

TEST_F(InterestingOrdersTest, UsefulRespectsSemantics) {
  QueryBuilder qb(catalog_);
  qb.AddTable("T0", "t0").AddTable("T1", "t1");
  qb.Join("t0", "a", "t1", "a");
  qb.GroupBy({{"t0", "c"}, {"t0", "d"}});
  qb.OrderBy({{"t0", "b"}});
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  InterestingOrders io(*g);
  ColumnEquivalence eq;  // base entry: no equivalences
  TableSet t0 = TableSet::Single(0);

  // (b) satisfies the ORDER BY interest via prefix.
  EXPECT_TRUE(io.Useful(OrderProperty({ColumnRef(0, 1)}), t0, eq));
  // (d,c) satisfies the GROUP BY via set semantics.
  EXPECT_TRUE(io.Useful(
      OrderProperty({ColumnRef(0, 3), ColumnRef(0, 2)}), t0, eq));
  // (d) alone covers only part of the grouping set of t0: there is also a
  // per-table projection interest {c,d} for t0, which (d) doesn't cover.
  EXPECT_FALSE(io.Useful(OrderProperty({ColumnRef(0, 3)}), t0, eq));
  // DC is never "useful".
  EXPECT_FALSE(io.Useful(OrderProperty::None(), t0, eq));
}

}  // namespace
}  // namespace cote
