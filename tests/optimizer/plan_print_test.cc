#include <gtest/gtest.h>

#include "optimizer/optimizer.h"
#include "parser/binder.h"
#include "workload/workload.h"

namespace cote {
namespace {

TEST(PlanPrintTest, DescribeContainsKeyFacts) {
  Plan p;
  p.op = OpType::kMgjn;
  p.tables = TableSet::Single(0).With(2);
  p.rows = 42.5;
  p.cost = 10.25;
  p.order = OrderProperty({ColumnRef(0, 1)});
  std::string d = p.Describe();
  EXPECT_NE(d.find("MGJN"), std::string::npos);
  EXPECT_NE(d.find("{0,2}"), std::string::npos);
  EXPECT_NE(d.find("42.5"), std::string::npos);
  EXPECT_NE(d.find("(t0.c1)"), std::string::npos);
  // Serial partition omitted from output.
  EXPECT_EQ(d.find("part="), std::string::npos);

  p.partition = PartitionProperty::Replicated();
  EXPECT_NE(p.Describe().find("part=replicated"), std::string::npos);
}

TEST(PlanPrintTest, TreeIndentation) {
  auto catalog = MakeTpchCatalog();
  auto g = Binder::BindSql(
      *catalog,
      "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey");
  ASSERT_TRUE(g.ok());
  Optimizer opt;
  auto r = opt.Optimize(*g);
  ASSERT_TRUE(r.ok());
  std::string out = PrintPlan(r->best_plan);
  // One line per node, children indented by two spaces.
  EXPECT_GE(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_NE(out.find("\n  "), std::string::npos);
}

TEST(PlanPrintTest, NullPlan) {
  EXPECT_EQ(PrintPlan(nullptr), "(null)\n");
}

TEST(PlanPrintTest, OpTypeNamesComplete) {
  for (OpType op : {OpType::kTableScan, OpType::kIndexScan, OpType::kSort,
                    OpType::kRepartition, OpType::kReplicate, OpType::kNljn,
                    OpType::kMgjn, OpType::kHsjn, OpType::kGroupBySort,
                    OpType::kGroupByHash}) {
    EXPECT_STRNE(OpTypeName(op), "?");
  }
}

}  // namespace
}  // namespace cote
