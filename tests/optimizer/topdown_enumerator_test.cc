// The top-down (transformation-style) enumerator must explore exactly the
// same search space as the bottom-up DP enumerator — only the relative
// order of joins may differ, which §3.1 of the paper argues is irrelevant
// to compilation complexity. These tests verify join-set equality, full
// optimizer equivalence, and estimator equivalence across both kinds.

#include "optimizer/topdown_enumerator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "core/estimator.h"
#include "optimizer/optimizer.h"
#include "query/query_builder.h"
#include "workload/workload.h"

namespace cote {
namespace {

/// Collects the join multiset as canonical (outer, inner) pairs.
class CollectingVisitor : public JoinVisitor {
 public:
  explicit CollectingVisitor(const QueryGraph& graph)
      : card_(graph, false) {}

  void InitializeEntry(TableSet s) override { entries.insert(s.bits()); }
  double EntryCardinality(TableSet s) override { return card_.JoinRows(s); }
  void OnJoin(TableSet outer, TableSet inner, const std::vector<int>& preds,
              bool cartesian) override {
    joins.insert({outer.bits(), inner.bits(),
                  static_cast<uint64_t>(preds.size()),
                  cartesian ? uint64_t{1} : uint64_t{0}});
  }

  std::set<uint64_t> entries;
  std::set<std::tuple<uint64_t, uint64_t, uint64_t, uint64_t>> joins;

 private:
  CardinalityModel card_;
};

class EnumeratorEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EnumeratorEquivalenceTest, SameJoinSetOnEveryWorkloadQuery) {
  auto [workload_id, inner_limit] = GetParam();
  Workload w = workload_id == 0   ? LinearWorkload()
               : workload_id == 1 ? StarWorkload()
               : workload_id == 2 ? CyclicWorkload()
                                  : Real1Workload();
  EnumeratorOptions bottom_up;
  bottom_up.max_composite_inner = inner_limit;
  EnumeratorOptions top_down = bottom_up;
  top_down.kind = EnumeratorKind::kTopDown;

  for (int i = 0; i < w.size(); ++i) {
    CollectingVisitor vb(w.queries[i]), vt(w.queries[i]);
    EnumerationStats sb = RunEnumeration(w.queries[i], bottom_up, &vb);
    EnumerationStats st = RunEnumeration(w.queries[i], top_down, &vt);
    EXPECT_EQ(vb.entries, vt.entries) << w.labels[i];
    EXPECT_EQ(vb.joins, vt.joins) << w.labels[i];
    EXPECT_EQ(sb.joins_unordered, st.joins_unordered) << w.labels[i];
    EXPECT_EQ(sb.joins_ordered, st.joins_ordered) << w.labels[i];
    EXPECT_EQ(sb.entries_created, st.entries_created) << w.labels[i];
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsAndLimits, EnumeratorEquivalenceTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1, 2, 64)));

TEST(TopDownEnumeratorTest, FullOptimizerEquivalence) {
  // The plan generator run by either enumerator must produce the same
  // plan counts, stored plans, and best cost.
  Workload w = StarWorkload();
  OptimizerOptions bu;
  bu.enumeration.max_composite_inner = 2;
  OptimizerOptions td = bu;
  td.enumeration.kind = EnumeratorKind::kTopDown;
  Optimizer ob(bu), ot(td);
  for (int i : {0, 4, 7, 12}) {
    auto rb = ob.Optimize(w.queries[i]);
    auto rt = ot.Optimize(w.queries[i]);
    ASSERT_TRUE(rb.ok());
    ASSERT_TRUE(rt.ok());
    EXPECT_DOUBLE_EQ(rb->stats.best_cost, rt->stats.best_cost)
        << w.labels[i];
    for (int m = 0; m < kNumJoinMethods; ++m) {
      EXPECT_EQ(rb->stats.join_plans_generated.counts[m],
                rt->stats.join_plans_generated.counts[m])
          << w.labels[i] << " method " << m;
    }
    EXPECT_EQ(rb->stats.plans_stored, rt->stats.plans_stored);
    EXPECT_EQ(rb->stats.memo_entries, rt->stats.memo_entries);
  }
}

TEST(TopDownEnumeratorTest, EstimatorEquivalence) {
  // The COTE gives identical plan estimates on either enumerator — the
  // framework carries over to top-down optimizers (§6.2).
  Workload w = CyclicWorkload();
  TimeModel model;
  model.ct[0] = model.ct[1] = model.ct[2] = 1e-6;
  OptimizerOptions bu;
  OptimizerOptions td;
  td.enumeration.kind = EnumeratorKind::kTopDown;
  CompileTimeEstimator cb(model, bu), ct(model, td);
  for (int i = 0; i < w.size(); ++i) {
    CompileTimeEstimate eb = cb.Estimate(w.queries[i]);
    CompileTimeEstimate et = ct.Estimate(w.queries[i]);
    for (int m = 0; m < kNumJoinMethods; ++m) {
      EXPECT_EQ(eb.plan_estimates.counts[m], et.plan_estimates.counts[m])
          << w.labels[i];
    }
    EXPECT_EQ(eb.plan_slots, et.plan_slots) << w.labels[i];
  }
}

TEST(TopDownEnumeratorTest, OuterJoinEligibilityRespected) {
  Catalog catalog;
  for (int i = 0; i < 3; ++i) {
    TableBuilder b("T" + std::to_string(i), 1000);
    b.Col("a", ColumnType::kInt, 100);
    ASSERT_TRUE(catalog.AddTable(b.Build()).ok());
  }
  QueryBuilder qb(catalog);
  qb.AddTable("T0", "t0").AddTable("T1", "t1").AddTable("T2", "t2");
  qb.Join("t0", "a", "t1", "a", JoinKind::kLeftOuter);
  qb.Join("t1", "a", "t2", "a");
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());

  EnumeratorOptions td;
  td.kind = EnumeratorKind::kTopDown;
  CollectingVisitor v(*g);
  RunEnumeration(*g, td, &v);
  // No join may have the null-producing side leading without t0.
  for (const auto& [outer, inner, preds, cart] : v.joins) {
    (void)preds;
    (void)cart;
    TableSet o(outer);
    (void)inner;
    EXPECT_TRUE(g->OuterEnabled(o)) << o.ToString();
  }
}

TEST(TopDownEnumeratorTest, SingleTableQuery) {
  Catalog catalog;
  TableBuilder b("T0", 100);
  b.Col("a", ColumnType::kInt, 10);
  ASSERT_TRUE(catalog.AddTable(b.Build()).ok());
  QueryBuilder qb(catalog);
  qb.AddTable("T0", "t0");
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  EnumeratorOptions td;
  td.kind = EnumeratorKind::kTopDown;
  CollectingVisitor v(*g);
  EnumerationStats st = RunEnumeration(*g, td, &v);
  EXPECT_EQ(st.entries_created, 1);
  EXPECT_EQ(st.joins_ordered, 0);
}

}  // namespace
}  // namespace cote
