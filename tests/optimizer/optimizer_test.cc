#include "optimizer/optimizer.h"

#include <gtest/gtest.h>

#include "optimizer/greedy_optimizer.h"
#include "query/query_builder.h"
#include "parser/binder.h"
#include "workload/workload.h"

namespace cote {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : catalog_(MakeTpchCatalog()) {}

  QueryGraph Bind(const std::string& sql) {
    auto g = Binder::BindSql(*catalog_, sql);
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    return std::move(g).value();
  }

  std::shared_ptr<Catalog> catalog_;
};

TEST_F(OptimizerTest, EmptyQueryRejected) {
  Optimizer opt;
  QueryGraph empty;
  EXPECT_EQ(opt.Optimize(empty).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(OptimizerTest, FindsPlanForComplexQuery) {
  QueryGraph g = Bind(
      "SELECT * FROM customer c, orders o, lineitem l, nation n "
      "WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey "
      "AND c.c_nationkey = n.n_nationkey");
  Optimizer opt;
  auto r = opt.Optimize(g);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->best_plan->tables, g.AllTables());
  EXPECT_GT(r->stats.best_cost, 0);
  EXPECT_GT(r->stats.total_seconds, 0);
}

TEST_F(OptimizerTest, OrderByHonoredByFinalPlan) {
  QueryGraph g = Bind(
      "SELECT * FROM orders o, lineitem l "
      "WHERE o.o_orderkey = l.l_orderkey ORDER BY o.o_orderdate");
  Optimizer opt;
  auto r = opt.Optimize(g);
  ASSERT_TRUE(r.ok());
  const MemoEntry* top = r->memo->Find(g.AllTables());
  OrderProperty ob =
      OrderProperty(g.order_by()).Canonicalize(top->equivalence());
  EXPECT_TRUE(r->best_plan->order.SatisfiesPrefix(ob))
      << PrintPlan(r->best_plan);
}

TEST_F(OptimizerTest, AggregationPlanned) {
  QueryGraph g = Bind(
      "SELECT n.n_name, COUNT(*) FROM supplier s, nation n "
      "WHERE s.s_nationkey = n.n_nationkey GROUP BY n.n_name");
  Optimizer opt;
  auto r = opt.Optimize(g);
  ASSERT_TRUE(r.ok());
  // The top of the plan must be an aggregation (possibly under a sort).
  const Plan* p = r->best_plan;
  if (p->op == OpType::kSort) p = p->child;
  EXPECT_TRUE(p->op == OpType::kGroupBySort || p->op == OpType::kGroupByHash);
  EXPECT_LE(p->rows, 25.0 + 1);  // at most |nation| groups
}

TEST_F(OptimizerTest, CheaperLevelsSearchLess) {
  QueryGraph g = Bind(
      "SELECT * FROM customer c, orders o, lineitem l, supplier s, nation n "
      "WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey "
      "AND l.l_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey");
  OptimizerOptions bushy;
  OptimizerOptions left_deep;
  left_deep.enumeration.max_composite_inner = 1;
  Optimizer ob(bushy), old(left_deep);
  auto rb = ob.Optimize(g);
  auto rl = old.Optimize(g);
  ASSERT_TRUE(rb.ok());
  ASSERT_TRUE(rl.ok());
  EXPECT_LT(rl->stats.enumeration.joins_ordered,
            rb->stats.enumeration.joins_ordered);
  EXPECT_LT(rl->stats.join_plans_generated.total(),
            rb->stats.join_plans_generated.total());
  // Bushy search can only improve (or match) the plan.
  EXPECT_LE(rb->stats.best_cost, rl->stats.best_cost * (1 + 1e-9));
}

TEST_F(OptimizerTest, GreedyLevelProducesValidPlanFast) {
  QueryGraph g = Bind(
      "SELECT * FROM customer c, orders o, lineitem l, supplier s, nation n "
      "WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey "
      "AND l.l_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey");
  OptimizerOptions low;
  low.level = OptimizationLevel::kLow;
  Optimizer greedy(low);
  auto r = greedy.Optimize(g);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->best_plan->tables, g.AllTables());

  // Greedy never beats exhaustive DP.
  Optimizer high;
  auto rh = high.Optimize(g);
  ASSERT_TRUE(rh.ok());
  EXPECT_LE(rh->stats.best_cost, r->stats.best_cost * (1 + 1e-9));
}

TEST_F(OptimizerTest, StatsPhaseTimesSumBelowTotal) {
  QueryGraph g = Bind(
      "SELECT * FROM customer c, orders o, lineitem l "
      "WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey");
  Optimizer opt;
  auto r = opt.Optimize(g);
  ASSERT_TRUE(r.ok());
  const OptimizeStats& st = r->stats;
  double parts = st.gen_seconds[0] + st.gen_seconds[1] + st.gen_seconds[2] +
                 st.save_seconds + st.init_seconds + st.enum_seconds;
  EXPECT_LE(parts, st.total_seconds * 1.05);
  EXPECT_GE(st.other_seconds(), 0);
  EXPECT_GT(st.memo_entries, 0);
  EXPECT_GT(st.memo_bytes, 0);
  EXPECT_EQ(st.plans_stored, r->memo->plans_stored());
}

TEST_F(OptimizerTest, ParallelFacadeWiresNodeCount) {
  QueryGraph g = Bind(
      "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey");
  Optimizer opt(OptimizerOptions::Parallel(4));
  auto r = opt.Optimize(g);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->best_plan->partition.kind(), PartitionProperty::Kind::kSerial);
}

TEST_F(OptimizerTest, DeterministicAcrossRuns) {
  QueryGraph g = Bind(
      "SELECT * FROM customer c, orders o, lineitem l "
      "WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey");
  Optimizer opt;
  auto r1 = opt.Optimize(g);
  auto r2 = opt.Optimize(g);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r1->stats.best_cost, r2->stats.best_cost);
  EXPECT_EQ(r1->stats.join_plans_generated.total(),
            r2->stats.join_plans_generated.total());
  EXPECT_EQ(r1->stats.plans_stored, r2->stats.plans_stored);
}

TEST(GreedyOptimizerTest, HandlesDisconnectedGraphWithCartesian) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddTable(TableBuilder("a", 100)
                                .Col("x", ColumnType::kInt, 10)
                                .Build())
                  .ok());
  ASSERT_TRUE(catalog
                  .AddTable(TableBuilder("b", 200)
                                .Col("y", ColumnType::kInt, 10)
                                .Build())
                  .ok());
  QueryBuilder qb(catalog);
  qb.AddTable("a").AddTable("b");  // no predicate: forced Cartesian
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  OptimizerOptions low;
  low.level = OptimizationLevel::kLow;
  Optimizer greedy(low);
  auto r = greedy.Optimize(*g);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->best_plan->tables, TableSet::FirstN(2));
}

}  // namespace
}  // namespace cote
