// Boundary tests of the Gosper-rank partitioner (satellite of the
// parallel-enumerator PR): worker slices must exactly tile every rank in
// ascending mask order — no matter how the rank size and worker count
// divide — because the rank-barrier merge replays slices in worker order
// and any gap, overlap, or misordering would silently break the
// bit-identical-to-serial guarantee.

#include "optimizer/gosper_partition.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace cote {
namespace {

int Popcount(uint64_t x) {
  int n = 0;
  for (; x != 0; x &= x - 1) ++n;
  return n;
}

/// All rank-k masks of an n-bit universe via Gosper's hack — the exact
/// iteration the serial enumerator performs.
std::vector<uint64_t> GosperSequence(int n, int k) {
  std::vector<uint64_t> masks;
  if (k < 1 || k > n) return masks;
  const uint64_t limit = uint64_t{1} << n;
  uint64_t mask = (uint64_t{1} << k) - 1;
  while (mask < limit) {
    masks.push_back(mask);
    const uint64_t low = mask & (~mask + 1);
    const uint64_t carry = mask + low;
    if (carry >= limit) break;
    mask = carry | (((mask ^ carry) >> 2) / low);
  }
  return masks;
}

TEST(GosperRankSizeTest, MatchesIterationCounts) {
  for (int n = 1; n <= 12; ++n) {
    for (int k = 1; k <= n; ++k) {
      EXPECT_EQ(GosperRankSize(n, k),
                static_cast<int64_t>(GosperSequence(n, k).size()))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(GosperUnrankTest, ReproducesTheFullSequence) {
  for (int n = 1; n <= 10; ++n) {
    for (int k = 1; k <= n; ++k) {
      const std::vector<uint64_t> seq = GosperSequence(n, k);
      for (int64_t m = 0; m < static_cast<int64_t>(seq.size()); ++m) {
        EXPECT_EQ(GosperUnrank(n, k, m), seq[static_cast<size_t>(m)])
            << "n=" << n << " k=" << k << " m=" << m;
      }
    }
  }
}

TEST(GosperUnrankTest, CeilingWidthSpotChecks) {
  const int n = kGosperPartitionMaxTables;
  for (int k = 1; k <= n; ++k) {
    // First and last mask of every rank at the n=20 ceiling: the first
    // rank-k mask is the low k bits, the last is the high k bits.
    const int64_t total = GosperRankSize(n, k);
    EXPECT_EQ(GosperUnrank(n, k, 0), (uint64_t{1} << k) - 1);
    EXPECT_EQ(GosperUnrank(n, k, total - 1),
              ((uint64_t{1} << k) - 1) << (n - k));
  }
  // C(20, 10) = 184756, the widest rank at the ceiling.
  EXPECT_EQ(GosperRankSize(n, 10), 184756);
}

/// Collects worker slices of one rank and checks they tile the Gosper
/// sequence: ascending within and across workers, disjoint, complete.
void CheckTiling(int n, int k, int workers) {
  const std::vector<uint64_t> seq = GosperSequence(n, k);
  std::vector<uint64_t> tiled;
  int64_t last_count = GosperRankSize(n, k) + 1;
  for (int w = 0; w < workers; ++w) {
    const GosperSlice slice = PartitionGosperRank(n, k, w, workers);
    // Remainder masks go to the lowest-numbered workers: counts are
    // non-increasing in w and differ by at most one.
    EXPECT_LE(slice.count, last_count) << "n=" << n << " k=" << k;
    last_count = slice.count;
    uint64_t mask = slice.first_mask;
    for (int64_t i = 0; i < slice.count; ++i) {
      EXPECT_EQ(Popcount(mask), k);
      tiled.push_back(mask);
      const uint64_t low = mask & (~mask + 1);
      const uint64_t carry = mask + low;
      if (i + 1 < slice.count) {
        mask = carry | (((mask ^ carry) >> 2) / low);
      }
    }
  }
  ASSERT_EQ(tiled.size(), seq.size()) << "n=" << n << " k=" << k;
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(tiled[i], seq[i]) << "n=" << n << " k=" << k << " i=" << i;
  }
}

TEST(PartitionGosperRankTest, TilesEveryRankExactly) {
  for (int n : {2, 3, 5, 8, 11}) {
    for (int k = 1; k <= n; ++k) {
      for (int workers : {1, 2, 3, 4, 7, 8}) CheckTiling(n, k, workers);
    }
  }
}

TEST(PartitionGosperRankTest, FewerMasksThanWorkers) {
  // Rank of 3 masks (n=3, k=2) split 8 ways: workers 0..2 get one mask
  // each, workers 3..7 get empty slices.
  const int n = 3, k = 2, workers = 8;
  ASSERT_EQ(GosperRankSize(n, k), 3);
  for (int w = 0; w < workers; ++w) {
    const GosperSlice slice = PartitionGosperRank(n, k, w, workers);
    if (w < 3) {
      EXPECT_EQ(slice.count, 1);
      EXPECT_EQ(slice.first_mask, GosperUnrank(n, k, w));
    } else {
      EXPECT_EQ(slice.count, 0);
    }
  }
  CheckTiling(n, k, workers);
}

TEST(PartitionGosperRankTest, SingleMaskRanks) {
  // Popcount-1 of a 1-bit universe and popcount-n ranks hold one mask:
  // worker 0 gets it, everyone else an empty slice.
  for (int n : {1, 4, kGosperPartitionMaxTables}) {
    for (int workers : {1, 2, 8}) {
      ASSERT_EQ(GosperRankSize(n, n), 1);
      const GosperSlice first = PartitionGosperRank(n, n, 0, workers);
      EXPECT_EQ(first.count, 1);
      EXPECT_EQ(first.first_mask, (uint64_t{1} << n) - 1);
      for (int w = 1; w < workers; ++w) {
        EXPECT_EQ(PartitionGosperRank(n, n, w, workers).count, 0);
      }
    }
  }
}

TEST(PartitionGosperRankTest, CeilingRankTiling) {
  // The n=20 ceiling with an uneven split: C(20,3) = 1140 masks over 7
  // workers (1140 = 7*162 + 6 — six workers carry a remainder mask).
  CheckTiling(kGosperPartitionMaxTables, 3, 7);
  CheckTiling(kGosperPartitionMaxTables, 1, 3);
  CheckTiling(kGosperPartitionMaxTables, 19, 4);
}

}  // namespace
}  // namespace cote
