#include "optimizer/cost/cardinality.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "query/query_builder.h"

namespace cote {
namespace {

class CardinalityTest : public ::testing::Test {
 protected:
  CardinalityTest() {
    EXPECT_TRUE(catalog_
                    .AddTable(TableBuilder("fact", 100000)
                                  .Col("f_id", ColumnType::kBigInt, 100000)
                                  .Col("f_dim", ColumnType::kInt, 1000)
                                  .Col("f_x", ColumnType::kInt, 10)
                                  .PrimaryKey({"f_id"})
                                  .Build())
                    .ok());
    EXPECT_TRUE(catalog_
                    .AddTable(TableBuilder("dim", 1000)
                                  .Col("d_id", ColumnType::kInt, 1000)
                                  .Col("d_y", ColumnType::kInt, 10)
                                  .PrimaryKey({"d_id"})
                                  .Build())
                    .ok());
    EXPECT_TRUE(catalog_
                    .AddTable(TableBuilder("other", 5000)
                                  .Col("o_dim", ColumnType::kInt, 1000)
                                  .Col("o_z", ColumnType::kInt, 10)
                                  .Build())
                    .ok());
  }

  Catalog catalog_;
};

TEST_F(CardinalityTest, BaseRowsApplyLocalSelectivity) {
  QueryBuilder qb(catalog_);
  qb.AddTable("fact", "f");
  qb.Local("f", "f_x", LocalOp::kEq, 0.1);
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  CardinalityModel m(*g, true);
  EXPECT_NEAR(m.BaseRows(0), 10000, 1e-6);
}

TEST_F(CardinalityTest, FkPkJoinPreservesFactRows) {
  QueryBuilder qb(catalog_);
  qb.AddTable("fact", "f").AddTable("dim", "d");
  qb.Join("f", "f_dim", "d", "d_id");
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  CardinalityModel m(*g, true);
  // 100000 * 1000 / max(1000,1000) = 100000.
  EXPECT_NEAR(m.JoinRows(TableSet::FirstN(2)), 100000, 1);
}

TEST_F(CardinalityTest, KeyRefinementCapsResult) {
  QueryBuilder qb(catalog_);
  qb.AddTable("fact", "f").AddTable("dim", "d");
  qb.Join("f", "f_dim", "d", "d_id");
  // Extra filter on dim: refined estimate must not exceed fact rows.
  qb.Local("d", "d_y", LocalOp::kEq, 0.5);
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  CardinalityModel refined(*g, true);
  CardinalityModel simple(*g, false);
  double r = refined.JoinRows(TableSet::FirstN(2));
  double s = simple.JoinRows(TableSet::FirstN(2));
  EXPECT_LE(r, s + 1e-9);        // refinement can only reduce
  EXPECT_LE(r, 100000 * 0.5 + 1);  // capped at fact rows × dim filter
}

TEST_F(CardinalityTest, SimpleModelSkipsRefinement) {
  QueryBuilder qb(catalog_);
  qb.AddTable("fact", "f").AddTable("dim", "d");
  qb.Join("f", "f_dim", "d", "d_id");
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  CardinalityModel simple(*g, false);
  EXPECT_FALSE(simple.use_key_refinement());
  // Raw: 1e5 * 1e3 * 1e-3 = 1e5 (same here since no extra filters).
  EXPECT_NEAR(simple.JoinRows(TableSet::FirstN(2)), 100000, 1);
}

TEST_F(CardinalityTest, TransitiveClosureNotDoubleCounted) {
  // Triangle f.f_dim = d.d_id = o.o_dim: the derived predicate must not
  // multiply selectivity a third time.
  QueryBuilder qb(catalog_);
  qb.AddTable("fact", "f").AddTable("dim", "d").AddTable("other", "o");
  qb.Join("f", "f_dim", "d", "d_id").Join("d", "d_id", "o", "o_dim");
  qb.WithTransitiveClosure();
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->join_predicates().size(), 3u);  // 2 written + 1 derived
  CardinalityModel m(*g, false);
  // Spanning tree applies 2 of the 3 equivalent selectivities:
  // 1e5 * 1e3 * 5e3 * 1e-3 * 1e-3 = 5e5.
  EXPECT_NEAR(m.JoinRows(TableSet::FirstN(3)), 500000, 500000 * 0.01);
}

TEST_F(CardinalityTest, CachedResultsStable) {
  QueryBuilder qb(catalog_);
  qb.AddTable("fact", "f").AddTable("dim", "d");
  qb.Join("f", "f_dim", "d", "d_id");
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  CardinalityModel m(*g, true);
  double first = m.JoinRows(TableSet::FirstN(2));
  double second = m.JoinRows(TableSet::FirstN(2));
  EXPECT_DOUBLE_EQ(first, second);
}

TEST_F(CardinalityTest, NeverBelowFloor) {
  QueryBuilder qb(catalog_);
  qb.AddTable("dim", "d").AddTable("other", "o");
  qb.Join("d", "d_id", "o", "o_dim");
  qb.Local("d", "d_y", LocalOp::kEq, 1e-9);
  qb.Local("o", "o_z", LocalOp::kEq, 1e-9);
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  CardinalityModel m(*g, true);
  EXPECT_GT(m.JoinRows(TableSet::FirstN(2)), 0);
}

}  // namespace
}  // namespace cote
