// Asserts the paper's Table 2: how each join method propagates the order
// and partition properties (NLJN full / MGJN partial / HSJN none for
// orders; full for partitions).

#include <gtest/gtest.h>

#include "optimizer/join_method.h"

namespace cote {
namespace {

TEST(Table2Test, OrderPropagationClasses) {
  EXPECT_EQ(OrderPropagation(JoinMethod::kNljn), Propagation::kFull);
  EXPECT_EQ(OrderPropagation(JoinMethod::kMgjn), Propagation::kPartial);
  EXPECT_EQ(OrderPropagation(JoinMethod::kHsjn), Propagation::kNone);
}

TEST(Table2Test, PartitionPropagationIsFullForAllMethods) {
  for (JoinMethod m :
       {JoinMethod::kNljn, JoinMethod::kMgjn, JoinMethod::kHsjn}) {
    EXPECT_EQ(PartitionPropagation(m), Propagation::kFull);
  }
}

TEST(Table2Test, MethodNames) {
  EXPECT_STREQ(JoinMethodName(JoinMethod::kNljn), "NLJN");
  EXPECT_STREQ(JoinMethodName(JoinMethod::kMgjn), "MGJN");
  EXPECT_STREQ(JoinMethodName(JoinMethod::kHsjn), "HSJN");
}

}  // namespace
}  // namespace cote
