// Golden equivalence for the rank-parallel enumerator.
//
// The parallel bottom-up enumerator (optimizer/parallel_enumerator.h)
// must be *behaviorally invisible* at every worker count: identical
// EnumerationStats, identical per-join-method counts in estimate mode,
// and — in plan mode — a bit-identical MEMO (entry creation order, plan
// lists, costs) and best plan. The goldens are the same 18 cases
// enumerator_equivalence_test.cc pins against the pre-rewrite serial
// enumerator (kept in sync by hand; regenerate there); the serial run is
// additionally used as a direct oracle for plan mode, which has no
// golden table.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "core/time_model.h"
#include "query/query_builder.h"
#include "session/session.h"

namespace cote {
namespace {

std::shared_ptr<Catalog> MakeCatalog(int n) {
  auto catalog = std::make_shared<Catalog>();
  for (int i = 0; i < n; ++i) {
    TableBuilder b("T" + std::to_string(i), 1000 + 37 * i);
    b.Col("a", ColumnType::kInt, 100)
        .Col("b", ColumnType::kInt, 50)
        .Col("c", ColumnType::kInt, 25);
    EXPECT_TRUE(catalog->AddTable(b.Build()).ok());
  }
  return catalog;
}

/// Same shapes as enumerator_equivalence_test.cc (kept in sync by hand).
QueryGraph MakeShape(const Catalog& catalog, const std::string& shape,
                     int n) {
  QueryBuilder qb(catalog);
  for (int i = 0; i < n; ++i) {
    qb.AddTable("T" + std::to_string(i), "t" + std::to_string(i));
  }
  const char* cols[] = {"a", "b", "c"};
  auto edge = [&](int x, int y, int e) {
    qb.Join("t" + std::to_string(x), cols[e % 3], "t" + std::to_string(y),
            cols[e % 3]);
  };
  if (shape == "linear") {
    for (int i = 0; i + 1 < n; ++i) edge(i, i + 1, i);
  } else if (shape == "star") {
    for (int i = 1; i < n; ++i) edge(0, i, i - 1);
  } else if (shape == "cyclic") {
    for (int i = 0; i < n; ++i) edge(i, (i + 1) % n, i);
    if (n >= 7) edge(0, n / 2, 1);
  } else {  // random
    Rng rng(0xc0feULL + static_cast<uint64_t>(n));
    for (int i = 1; i < n; ++i) {
      edge(static_cast<int>(rng.Uniform(static_cast<uint64_t>(i))), i, i);
    }
    for (int extra = 0; extra < n / 2; ++extra) {
      int a = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
      int b = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
      if (a != b) edge(std::min(a, b), std::max(a, b), extra);
    }
  }
  qb.OrderBy({{"t0", "b"}});
  qb.GroupBy({{"t1", "c"}});
  auto g = qb.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

struct GoldenCase {
  const char* shape;
  int n;
  int max_composite_inner;
  int64_t entries_created;
  int64_t joins_unordered;
  int64_t joins_ordered;
  int64_t nljn;
  int64_t mgjn;
  int64_t hsjn;
};

// The 18 cases of enumerator_equivalence_test.cc (same values).
const GoldenCase kGoldens[] = {
    {"linear", 4, 2, 10, 10, 18, 58, 18, 18},
    {"linear", 8, 2, 36, 74, 98, 310, 98, 98},
    {"linear", 12, 2, 78, 202, 242, 754, 242, 242},
    {"linear", 14, 2, 105, 290, 338, 1048, 338, 338},
    {"linear", 10, 64, 55, 165, 330, 1026, 330, 330},
    {"star", 4, 2, 11, 12, 21, 65, 21, 21},
    {"star", 8, 2, 135, 448, 497, 1977, 497, 497},
    {"star", 12, 2, 2059, 11264, 11385, 48957, 11385, 11385},
    {"star", 14, 2, 8205, 53248, 53417, 234591, 53417, 53417},
    {"star", 10, 64, 521, 2304, 4608, 14720, 4608, 4608},
    {"cyclic", 5, 2, 21, 40, 60, 218, 70, 60},
    {"cyclic", 8, 2, 93, 351, 400, 1786, 501, 400},
    {"cyclic", 10, 2, 191, 857, 914, 4654, 1116, 914},
    {"cyclic", 8, 64, 93, 400, 800, 3168, 1074, 800},
    {"random", 8, 2, 90, 331, 386, 2128, 666, 386},
    {"random", 12, 2, 838, 5337, 5465, 32167, 8212, 5465},
    {"random", 14, 2, 3102, 24688, 24905, 174695, 41425, 24905},
    {"random", 10, 64, 345, 2592, 5184, 26700, 9818, 5184},
};

const int kWorkerCounts[] = {1, 2, 4, 8};

class ParallelGoldenEquivalenceTest
    : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(ParallelGoldenEquivalenceTest, EstimateMatchesGoldensAtEveryWorkerCount) {
  const GoldenCase& gc = GetParam();
  auto catalog = MakeCatalog(gc.n);
  QueryGraph g = MakeShape(*catalog, gc.shape, gc.n);
  const TimeModel tm;

  for (int workers : kWorkerCounts) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    OptimizerOptions opts;
    opts.enumeration.max_composite_inner = gc.max_composite_inner;
    opts.parallel_workers = workers;
    CompilationSession session(opts);
    CompileTimeEstimate est = session.Estimate(g, tm);

    EXPECT_EQ(est.enumeration.entries_created, gc.entries_created);
    EXPECT_EQ(est.enumeration.joins_unordered, gc.joins_unordered);
    EXPECT_EQ(est.enumeration.joins_ordered, gc.joins_ordered);
    EXPECT_EQ(est.plan_estimates.nljn(), gc.nljn);
    EXPECT_EQ(est.plan_estimates.mgjn(), gc.mgjn);
    EXPECT_EQ(est.plan_estimates.hsjn(), gc.hsjn);
    EXPECT_EQ(est.parallel_workers, workers);
    if (workers == 1) {
      // parallel_workers = 1 is the exact serial code path: no team, no
      // shards, no busy accounting.
      EXPECT_EQ(est.enumeration_busy_seconds, 0.0);
    } else {
      EXPECT_GT(est.enumeration_busy_seconds, 0.0);
    }

    // Warm re-estimate through the same session: the shard counters are
    // reused (arena reuse) and must reproduce the counts exactly.
    CompileTimeEstimate warm = session.Estimate(g, tm);
    EXPECT_EQ(warm.enumeration.entries_created, gc.entries_created);
    EXPECT_EQ(warm.enumeration.joins_unordered, gc.joins_unordered);
    EXPECT_EQ(warm.enumeration.joins_ordered, gc.joins_ordered);
    EXPECT_EQ(warm.plan_estimates.nljn(), gc.nljn);
    EXPECT_EQ(warm.plan_estimates.mgjn(), gc.mgjn);
    EXPECT_EQ(warm.plan_estimates.hsjn(), gc.hsjn);
    EXPECT_EQ(warm.plan_slots, est.plan_slots);
  }
}

TEST_P(ParallelGoldenEquivalenceTest, PlanModeBitIdenticalToSerial) {
  const GoldenCase& gc = GetParam();
  auto catalog = MakeCatalog(gc.n);
  QueryGraph g = MakeShape(*catalog, gc.shape, gc.n);

  OptimizerOptions serial_opts;
  serial_opts.enumeration.max_composite_inner = gc.max_composite_inner;
  CompilationSession serial_session(serial_opts);
  StatusOr<OptimizeResult> serial = serial_session.Optimize(g);
  ASSERT_TRUE(serial.ok());
  const OptimizeResult& s = serial.value();
  EXPECT_EQ(s.stats.parallel_workers, 1);
  EXPECT_EQ(s.stats.enumeration.entries_created, gc.entries_created);

  for (int workers : kWorkerCounts) {
    if (workers == 1) continue;  // the serial run above *is* workers=1
    SCOPED_TRACE("workers=" + std::to_string(workers));
    OptimizerOptions opts = serial_opts;
    opts.parallel_workers = workers;
    CompilationSession session(opts);
    StatusOr<OptimizeResult> parallel = session.Optimize(g);
    ASSERT_TRUE(parallel.ok());
    const OptimizeResult& p = parallel.value();

    // Identical enumeration and generation counters.
    EXPECT_EQ(p.stats.enumeration.entries_created, gc.entries_created);
    EXPECT_EQ(p.stats.enumeration.joins_unordered, gc.joins_unordered);
    EXPECT_EQ(p.stats.enumeration.joins_ordered, gc.joins_ordered);
    for (int m = 0; m < kNumJoinMethods; ++m) {
      EXPECT_EQ(p.stats.join_plans_generated.counts[m],
                s.stats.join_plans_generated.counts[m]);
    }
    EXPECT_EQ(p.stats.enforcer_plans, s.stats.enforcer_plans);
    EXPECT_EQ(p.stats.scan_plans, s.stats.scan_plans);
    EXPECT_EQ(p.stats.plans_stored, s.stats.plans_stored);
    EXPECT_EQ(p.stats.memo_entries, s.stats.memo_entries);
    EXPECT_EQ(p.stats.memo_bytes, s.stats.memo_bytes);
    EXPECT_EQ(p.stats.parallel_workers, workers);

    // Bit-identical plan choice.
    ASSERT_NE(p.best_plan, nullptr);
    EXPECT_EQ(p.best_plan->cost, s.best_plan->cost);
    EXPECT_EQ(p.stats.best_cost, s.stats.best_cost);

    // Bit-identical MEMO: same entry creation order (dense-id layout),
    // and per entry the same plan list — length, cost sequence (insertion
    // order matters: it encodes the pruning tie-breaks), and properties.
    const auto& se = s.memo->entries_in_order();
    const auto& pe = p.memo->entries_in_order();
    ASSERT_EQ(pe.size(), se.size());
    for (size_t i = 0; i < se.size(); ++i) {
      EXPECT_EQ(pe[i]->set().bits(), se[i]->set().bits()) << "entry " << i;
      EXPECT_EQ(pe[i]->cardinality(), se[i]->cardinality()) << "entry " << i;
      const auto& sp = se[i]->plans();
      const auto& pp = pe[i]->plans();
      ASSERT_EQ(pp.size(), sp.size()) << "entry " << i;
      for (size_t j = 0; j < sp.size(); ++j) {
        EXPECT_EQ(pp[j]->cost, sp[j]->cost) << "entry " << i << " plan " << j;
        EXPECT_EQ(pp[j]->op, sp[j]->op) << "entry " << i << " plan " << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Goldens, ParallelGoldenEquivalenceTest, ::testing::ValuesIn(kGoldens),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return std::string(info.param.shape) + "_n" +
             std::to_string(info.param.n) + "_ci" +
             std::to_string(info.param.max_composite_inner);
    });

}  // namespace
}  // namespace cote
