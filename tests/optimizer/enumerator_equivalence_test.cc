// Equivalence guard for the enumeration fast path.
//
// The rewritten enumeration substrate (bitmap adjacency in QueryGraph,
// Gosper-iteration + flat existence bitmap in JoinEnumerator, flat MEMO)
// must be *behaviorally invisible*: identical EnumerationStats and
// identical per-join-method plan counts from the counting visitor, on
// every graph shape. The golden values below were recorded from the
// pre-rewrite enumerator (the original O(n·2^n) skip-scan over an
// unordered_set, with linear predicate scans); any divergence means the
// fast path changed enumeration semantics, which also breaks the paper's
// core invariant that estimate mode and optimize mode traverse identical
// join sequences (§3.1).
//
// Regenerate goldens (e.g. after an *intentional* semantic change) with:
//   COTE_PRINT_GOLDENS=1 ./optimizer_test
//       --gtest_filter='EnumGoldenEquivalence*' 2>/dev/null

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "core/plan_counter.h"
#include "optimizer/cost/cardinality.h"
#include "optimizer/enumerator.h"
#include "optimizer/properties/interesting_orders.h"
#include "query/query_builder.h"

namespace cote {
namespace {

std::shared_ptr<Catalog> MakeCatalog(int n) {
  auto catalog = std::make_shared<Catalog>();
  for (int i = 0; i < n; ++i) {
    TableBuilder b("T" + std::to_string(i), 1000 + 37 * i);
    b.Col("a", ColumnType::kInt, 100)
        .Col("b", ColumnType::kInt, 50)
        .Col("c", ColumnType::kInt, 25);
    EXPECT_TRUE(catalog->AddTable(b.Build()).ok());
  }
  return catalog;
}

/// Builds the graph for one golden case. Shapes:
///  linear: t0-t1-...-t{n-1}
///  star:   t0 as hub
///  cyclic: chain closed into a ring, chord for n >= 7
///  random: seeded spanning tree + chords (deterministic per n)
QueryGraph MakeShape(const Catalog& catalog, const std::string& shape,
                     int n) {
  QueryBuilder qb(catalog);
  for (int i = 0; i < n; ++i) {
    qb.AddTable("T" + std::to_string(i), "t" + std::to_string(i));
  }
  const char* cols[] = {"a", "b", "c"};
  auto edge = [&](int x, int y, int e) {
    qb.Join("t" + std::to_string(x), cols[e % 3], "t" + std::to_string(y),
            cols[e % 3]);
  };
  if (shape == "linear") {
    for (int i = 0; i + 1 < n; ++i) edge(i, i + 1, i);
  } else if (shape == "star") {
    for (int i = 1; i < n; ++i) edge(0, i, i - 1);
  } else if (shape == "cyclic") {
    for (int i = 0; i < n; ++i) edge(i, (i + 1) % n, i);
    if (n >= 7) edge(0, n / 2, 1);
  } else {  // random
    Rng rng(0xc0feULL + static_cast<uint64_t>(n));
    for (int i = 1; i < n; ++i) {
      edge(static_cast<int>(rng.Uniform(static_cast<uint64_t>(i))), i, i);
    }
    for (int extra = 0; extra < n / 2; ++extra) {
      int a = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
      int b = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
      if (a != b) edge(std::min(a, b), std::max(a, b), extra);
    }
  }
  // Interesting orders so the plan counter exercises propagation.
  qb.OrderBy({{"t0", "b"}});
  qb.GroupBy({{"t1", "c"}});
  auto g = qb.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

struct GoldenCase {
  const char* shape;
  int n;
  int max_composite_inner;  // 2 = the paper's DP limit, 64 = full bushy
  // EnumerationStats
  int64_t entries_created;
  int64_t joins_unordered;
  int64_t joins_ordered;
  // Per-join-method estimated plan counts from the counting visitor.
  int64_t nljn;
  int64_t mgjn;
  int64_t hsjn;
};

// Golden values recorded from the pre-rewrite enumerator (seed commit).
const GoldenCase kGoldens[] = {
    // shape, n, limit, entries, unordered, ordered, nljn, mgjn, hsjn
    {"linear", 4, 2, 10, 10, 18, 58, 18, 18},
    {"linear", 8, 2, 36, 74, 98, 310, 98, 98},
    {"linear", 12, 2, 78, 202, 242, 754, 242, 242},
    {"linear", 14, 2, 105, 290, 338, 1048, 338, 338},
    {"linear", 10, 64, 55, 165, 330, 1026, 330, 330},
    {"star", 4, 2, 11, 12, 21, 65, 21, 21},
    {"star", 8, 2, 135, 448, 497, 1977, 497, 497},
    {"star", 12, 2, 2059, 11264, 11385, 48957, 11385, 11385},
    {"star", 14, 2, 8205, 53248, 53417, 234591, 53417, 53417},
    {"star", 10, 64, 521, 2304, 4608, 14720, 4608, 4608},
    {"cyclic", 5, 2, 21, 40, 60, 218, 70, 60},
    {"cyclic", 8, 2, 93, 351, 400, 1786, 501, 400},
    {"cyclic", 10, 2, 191, 857, 914, 4654, 1116, 914},
    {"cyclic", 8, 64, 93, 400, 800, 3168, 1074, 800},
    {"random", 8, 2, 90, 331, 386, 2128, 666, 386},
    {"random", 12, 2, 838, 5337, 5465, 32167, 8212, 5465},
    {"random", 14, 2, 3102, 24688, 24905, 174695, 41425, 24905},
    {"random", 10, 64, 345, 2592, 5184, 26700, 9818, 5184},
};

class EnumGoldenEquivalenceTest
    : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(EnumGoldenEquivalenceTest, MatchesPreRewriteGoldens) {
  const GoldenCase& gc = GetParam();
  auto catalog = MakeCatalog(gc.n);
  QueryGraph g = MakeShape(*catalog, gc.shape, gc.n);

  EnumeratorOptions opt;
  opt.max_composite_inner = gc.max_composite_inner;

  InterestingOrders interesting(g);
  CardinalityModel card(g, /*use_key_refinement=*/false);
  PlanCounter counter(g, interesting, card, PlanCounterOptions{});
  JoinEnumerator enumerator(g, opt);
  EnumerationStats stats = enumerator.Run(&counter);

  if (std::getenv("COTE_PRINT_GOLDENS") != nullptr) {
    std::printf(
        "    {\"%s\", %d, %d, %lld, %lld, %lld, %lld, %lld, %lld},\n",
        gc.shape, gc.n, gc.max_composite_inner,
        static_cast<long long>(stats.entries_created),
        static_cast<long long>(stats.joins_unordered),
        static_cast<long long>(stats.joins_ordered),
        static_cast<long long>(counter.estimated_plans().nljn()),
        static_cast<long long>(counter.estimated_plans().mgjn()),
        static_cast<long long>(counter.estimated_plans().hsjn()));
    return;
  }

  EXPECT_EQ(stats.entries_created, gc.entries_created);
  EXPECT_EQ(stats.joins_unordered, gc.joins_unordered);
  EXPECT_EQ(stats.joins_ordered, gc.joins_ordered);
  EXPECT_EQ(counter.estimated_plans().nljn(), gc.nljn);
  EXPECT_EQ(counter.estimated_plans().mgjn(), gc.mgjn);
  EXPECT_EQ(counter.estimated_plans().hsjn(), gc.hsjn);

  // The top-down search order must enumerate the identical join set
  // (paper §3.1 / §6.2): same unordered and ordered counts, same entries.
  EnumeratorOptions td = opt;
  td.kind = EnumeratorKind::kTopDown;
  PlanCounter td_counter(g, interesting, card, PlanCounterOptions{});
  EnumerationStats td_stats = RunEnumeration(g, td, &td_counter);
  EXPECT_EQ(td_stats.entries_created, gc.entries_created);
  EXPECT_EQ(td_stats.joins_unordered, gc.joins_unordered);
  EXPECT_EQ(td_stats.joins_ordered, gc.joins_ordered);
}

INSTANTIATE_TEST_SUITE_P(
    Goldens, EnumGoldenEquivalenceTest, ::testing::ValuesIn(kGoldens),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return std::string(info.param.shape) + "_n" +
             std::to_string(info.param.n) + "_ci" +
             std::to_string(info.param.max_composite_inner);
    });

}  // namespace
}  // namespace cote
