// Tests for the pipelinable physical property (paper Table 1): interesting
// for first-n-rows queries; destroyed by SORTs, hash-join builds and hash
// aggregation; propagated by streaming operators.

#include <gtest/gtest.h>

#include <functional>

#include "optimizer/optimizer.h"
#include "parser/binder.h"
#include "workload/workload.h"

namespace cote {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() : catalog_(MakeTpchCatalog()) {}

  QueryGraph Bind(const std::string& sql) {
    auto g = Binder::BindSql(*catalog_, sql);
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    return std::move(g).value();
  }

  std::shared_ptr<Catalog> catalog_;
};

TEST_F(PipelineTest, ParserAcceptsFetchFirstAndLimit) {
  QueryGraph g1 = Bind("SELECT * FROM orders o FETCH FIRST 10 ROWS ONLY");
  EXPECT_EQ(g1.fetch_first(), 10);
  EXPECT_TRUE(g1.wants_first_rows());
  QueryGraph g2 = Bind("SELECT * FROM orders o LIMIT 25");
  EXPECT_EQ(g2.fetch_first(), 25);
  QueryGraph g3 = Bind("SELECT * FROM orders o");
  EXPECT_FALSE(g3.wants_first_rows());
}

TEST_F(PipelineTest, ScansPipelineSortsDoNot) {
  QueryGraph g = Bind(
      "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey "
      "FETCH FIRST 10 ROWS ONLY");
  Optimizer opt;
  auto r = opt.Optimize(g);
  ASSERT_TRUE(r.ok());
  for (const MemoEntry* e : r->memo->entries_in_order()) {
    for (const Plan* p : e->plans()) {
      std::function<void(const Plan*)> walk = [&](const Plan* q) {
        if (q == nullptr) return;
        switch (q->op) {
          case OpType::kTableScan:
          case OpType::kIndexScan:
            EXPECT_TRUE(q->pipelinable);
            break;
          case OpType::kSort:
          case OpType::kHsjn:
            EXPECT_FALSE(q->pipelinable);
            break;
          case OpType::kNljn:
          case OpType::kMgjn:
            EXPECT_EQ(q->pipelinable,
                      q->child->pipelinable && q->inner->pipelinable);
            break;
          default:
            break;
        }
        walk(q->child);
        walk(q->inner);
      };
      walk(p);
    }
  }
}

TEST_F(PipelineTest, PipelinableKeptAsParetoDimensionOnlyForFirstRows) {
  const char* base =
      "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey";
  QueryGraph plain = Bind(base);
  QueryGraph topn = Bind(std::string(base) + " FETCH FIRST 5 ROWS ONLY");
  Optimizer opt;
  auto r1 = opt.Optimize(plain);
  auto r2 = opt.Optimize(topn);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  // Tracking one more property can only grow the MEMO (§3.2: properties
  // violate the principle of optimality and multiply kept plans).
  EXPECT_GE(r2->stats.plans_stored, r1->stats.plans_stored);
}

TEST_F(PipelineTest, FirstRowsPrefersPipelinablePlan) {
  // Join on keys with matching indexes: a fully pipelined NLJN/MGJN plan
  // exists; with FETCH FIRST it must win over the hash join even though
  // the hash join is cheaper for the full result.
  QueryGraph topn = Bind(
      "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey "
      "FETCH FIRST 10 ROWS ONLY");
  Optimizer opt;
  auto r = opt.Optimize(topn);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->best_plan->pipelinable) << PrintPlan(r->best_plan);

  QueryGraph plain = Bind(
      "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey");
  auto rp = opt.Optimize(plain);
  ASSERT_TRUE(rp.ok());
  // Without FETCH FIRST the full-result optimum is chosen on raw cost.
  EXPECT_GE(r->best_plan->cost, rp->best_plan->cost - 1e-9);
}

TEST_F(PipelineTest, GroupByHashBreaksPipeline) {
  QueryGraph g = Bind(
      "SELECT o.o_custkey, COUNT(*) FROM orders o GROUP BY o.o_custkey "
      "FETCH FIRST 3 ROWS ONLY");
  Optimizer opt;
  auto r = opt.Optimize(g);
  ASSERT_TRUE(r.ok());
  const Plan* p = r->best_plan;
  if (p->op == OpType::kSort) p = p->child;
  if (p->op == OpType::kGroupByHash) {
    EXPECT_FALSE(p->pipelinable);
  }
}

TEST_F(PipelineTest, SerialPlanCountsUnchangedByFetchFirst) {
  // Plan *generation* is property-blind; FETCH FIRST changes pruning and
  // final choice, not the generated count per join — so the COTE needs no
  // extra work for it (§3: only kept plans multiply).
  const char* base =
      "SELECT * FROM customer c, orders o, lineitem l "
      "WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey";
  Optimizer opt;
  auto r1 = opt.Optimize(Bind(base));
  auto r2 = opt.Optimize(Bind(std::string(base) + " LIMIT 7"));
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->stats.join_plans_generated.total(),
            r2->stats.join_plans_generated.total());
}

}  // namespace
}  // namespace cote
