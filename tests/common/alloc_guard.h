#ifndef COTE_TESTS_COMMON_ALLOC_GUARD_H_
#define COTE_TESTS_COMMON_ALLOC_GUARD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

/// \file
/// Counting operator-new hook: the runtime half of the hot-path purity
/// contract (the static half is tools/hotpath_lint.py).
///
/// Usage: exactly one translation unit in the test binary defines
/// COTE_ALLOC_GUARD_IMPLEMENT before including this header; that TU gets
/// the replacement global operator new/delete definitions, which count
/// every heap allocation in the process. Tests then bracket a region with
/// AllocationCounter and assert on delta().
///
/// The hook counts — it never fails by itself — so it is safe to link
/// into a binary that also runs ordinary allocating tests.

namespace cote {
namespace testing {

inline std::atomic<int64_t>& GlobalAllocCount() {
  static std::atomic<int64_t> count{0};
  return count;
}

/// Counts heap allocations performed between construction (or Reset())
/// and delta().
class AllocationCounter {
 public:
  AllocationCounter() : start_(GlobalAllocCount().load()) {}
  void Reset() { start_ = GlobalAllocCount().load(); }
  int64_t delta() const { return GlobalAllocCount().load() - start_; }

 private:
  int64_t start_;
};

}  // namespace testing
}  // namespace cote

#ifdef COTE_ALLOC_GUARD_IMPLEMENT

namespace {
void* CountedAlloc(std::size_t size) {
  cote::testing::GlobalAllocCount().fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* CountedAllocAligned(std::size_t size, std::size_t align) {
  cote::testing::GlobalAllocCount().fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = align;
  void* p = std::aligned_alloc(align, (size + align - 1) / align * align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  cote::testing::GlobalAllocCount().fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  cote::testing::GlobalAllocCount().fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // COTE_ALLOC_GUARD_IMPLEMENT

#endif  // COTE_TESTS_COMMON_ALLOC_GUARD_H_
