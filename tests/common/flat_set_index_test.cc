#include "common/flat_set_index.h"

#include <gtest/gtest.h>

#include <vector>

namespace cote {
namespace {

TEST(FlatSetIndexTest, DenseAssignsInsertionOrderIndices) {
  FlatSetIndex idx(8);  // dense mode
  bool created = false;
  EXPECT_EQ(idx.FindOrInsert(0b101, &created), 0);
  EXPECT_TRUE(created);
  EXPECT_EQ(idx.FindOrInsert(0b11, &created), 1);
  EXPECT_TRUE(created);
  EXPECT_EQ(idx.FindOrInsert(0b101, &created), 0);
  EXPECT_FALSE(created);
  EXPECT_EQ(idx.size(), 2);
  EXPECT_EQ(idx.Find(0b101), 0);
  EXPECT_EQ(idx.Find(0b11), 1);
  EXPECT_EQ(idx.Find(0b1), -1);
}

TEST(FlatSetIndexTest, HashedModeMatchesDenseSemantics) {
  FlatSetIndex idx(40);  // beyond kDenseMaxTables: open addressing
  bool created = false;
  std::vector<uint64_t> keys;
  // Enough insertions to force several growth/rehash rounds.
  for (uint64_t i = 0; i < 5000; ++i) {
    uint64_t key = (i + 1) * 0x9e3779b97f4a7c15ULL;  // non-zero, distinct
    EXPECT_EQ(idx.FindOrInsert(key, &created), static_cast<int32_t>(i));
    EXPECT_TRUE(created);
    keys.push_back(key);
  }
  EXPECT_EQ(idx.size(), 5000);
  for (uint64_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(idx.Find(keys[i]), static_cast<int32_t>(i));
    EXPECT_EQ(idx.FindOrInsert(keys[i], &created), static_cast<int32_t>(i));
    EXPECT_FALSE(created);
  }
  EXPECT_EQ(idx.Find(0x1234567890ULL), -1);
}

TEST(FlatSetIndexTest, DenseBoundaryIsTwentyTables) {
  // 2^20 masks stay dense; lookups at the top of the range work.
  FlatSetIndex idx(FlatSetIndex::kDenseMaxTables);
  bool created = false;
  const uint64_t top = (uint64_t{1} << FlatSetIndex::kDenseMaxTables) - 1;
  EXPECT_EQ(idx.FindOrInsert(top, &created), 0);
  EXPECT_EQ(idx.Find(top), 0);
  EXPECT_EQ(idx.Find(1), -1);
}

}  // namespace
}  // namespace cote
