#ifndef COTE_TESTS_COMMON_FAULT_INJECTION_H_
#define COTE_TESTS_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/fault_points.h"
#include "common/status.h"

/// \file
/// Deterministic fault scripting over the production fault registry
/// (src/common/fault_points.h) — test binaries only. Production code
/// carries just the registry; this harness is what makes a consult fail.

namespace cote {
namespace testing {

/// \brief RAII fault script: installs itself as the process-wide hook on
/// construction, clears it on destruction, so a test can never leak an
/// armed hook into later tests (one live script at a time).
///
/// Rules match on (point, subject, occurrence):
///
///   script.FailAt(kFaultPlanBind, &graph, Status::Internal("boom"));
///
/// fails the first bind-stage consult for exactly that query and no
/// other. `occurrence` N fails the Nth matching consult (1-based);
/// 0 fails every matching consult. A null subject matches any query —
/// the per-query form is what lets a SessionPool batch fail at fixed
/// *input indices* regardless of which worker claims them.
///
/// Thread-safe: pool workers consult concurrently, so all mutable state
/// is mutex-guarded. (Only the test path pays the lock; production code
/// with no hook installed takes the lock-free null-check path.)
class FaultScript {
 public:
  FaultScript() { InstallFaultHook(&FaultScript::Hook, this); }
  ~FaultScript() { ClearFaultHook(); }
  FaultScript(const FaultScript&) = delete;
  FaultScript& operator=(const FaultScript&) = delete;

  /// Adds one rule: fail the `occurrence`-th consult of `point` whose
  /// subject is `subject` (null: any) with `status`. Occurrences count
  /// per rule, only over matching consults.
  void FailAt(const char* point, const void* subject, Status status,
              int64_t occurrence = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    rules_.push_back(Rule{point, subject, std::move(status), occurrence, 0});
  }

  /// Total consults seen (all points, injected or not) / faults injected.
  int64_t consults() const {
    std::lock_guard<std::mutex> lock(mu_);
    return consults_;
  }
  int64_t injected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_;
  }

 private:
  struct Rule {
    std::string point;
    const void* subject;
    Status status;
    int64_t occurrence;  ///< 1-based; 0 = every matching consult
    int64_t seen;        ///< matching consults so far
  };

  static Status Hook(void* ctx, const char* point, const void* subject) {
    return static_cast<FaultScript*>(ctx)->Consult(point, subject);
  }

  Status Consult(const char* point, const void* subject) {
    std::lock_guard<std::mutex> lock(mu_);
    ++consults_;
    for (Rule& r : rules_) {
      if (r.point != point) continue;
      if (r.subject != nullptr && r.subject != subject) continue;
      ++r.seen;
      if (r.occurrence == 0 || r.seen == r.occurrence) {
        ++injected_;
        return r.status;
      }
    }
    return Status::OK();
  }

  mutable std::mutex mu_;
  std::vector<Rule> rules_;
  int64_t consults_ = 0;
  int64_t injected_ = 0;
};

}  // namespace testing
}  // namespace cote

#endif  // COTE_TESTS_COMMON_FAULT_INJECTION_H_
