#include "common/str_util.h"

#include <gtest/gtest.h>

namespace cote {
namespace {

TEST(StrUtilTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("x=%d", 42), "x=42");
  EXPECT_EQ(StrFormat("%s/%s", "a", "b"), "a/b");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrUtilTest, JoinVariants) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StrUtilTest, ToLower) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToLower("abc_123"), "abc_123");
}

TEST(StrUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("selects", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("selecd", "select"));
}

TEST(StrUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

}  // namespace
}  // namespace cote
