// Death tests for the COTE contract macros (src/common/check.h) at the
// trust boundaries they guard. The always-on COTE_CHECKs fire in every
// build type; the COTE_DCHECK tests compile out under NDEBUG (the default
// RelWithDebInfo build) and are skipped there — tools/run_checks.sh runs
// them for real in its Debug sanitizer cycle.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "common/check.h"
#include "common/clock.h"
#include "common/flat_set_index.h"
#include "common/table_set.h"

namespace cote {
namespace {

using ContractsDeathTest = ::testing::Test;

TEST(ContractsDeathTest, FlatSetIndexRejectsOverWideUniverse) {
  // Always-on boundary CHECK: the index sizes bitmask-keyed storage, so a
  // universe wider than 64 tables would shift out of range.
  EXPECT_DEATH(FlatSetIndex(65), "COTE_CHECK failed");
  EXPECT_DEATH(FlatSetIndex(-1), "COTE_CHECK failed");
}

#ifndef NDEBUG

TEST(ContractsDeathTest, FlatSetIndexRejectsEmptyKey) {
  // Key 0 is the dense sentinel for "absent"; probing with it would
  // silently report a phantom entry.
  FlatSetIndex index(8);
  EXPECT_DEATH(index.Find(0), "COTE_CHECK failed");
  bool created = false;
  EXPECT_DEATH(index.FindOrInsert(0, &created), "COTE_CHECK failed");
}

TEST(ContractsDeathTest, FlatSetIndexRejectsKeyOutsideDenseUniverse) {
  // In dense mode the key indexes a 2^n array directly; a set containing
  // a table >= n would read past it.
  FlatSetIndex index(8);
  EXPECT_DEATH(index.Find(uint64_t{1} << 9), "COTE_CHECK failed");
}

TEST(ContractsDeathTest, TableSetRejectsOverWidthIndices) {
  TableSet s = TableSet::FirstN(4);
  EXPECT_DEATH(s.Contains(64), "COTE_CHECK failed");
  EXPECT_DEATH(s.Contains(-1), "COTE_CHECK failed");
  EXPECT_DEATH(TableSet::Single(64), "COTE_CHECK failed");
}

TEST(ContractsDeathTest, EmptySetHasNoFirstTable) {
  TableSet empty;
  EXPECT_DEATH(empty.First(), "COTE_CHECK failed");
}

TEST(ContractsDeathTest, VirtualClockRejectsOffThreadAccess) {
  // VirtualClock is deliberately unsynchronized (determinism over
  // generality): every access must come from the constructing thread.
  // A worker thread reading an injected VirtualClock is the exact bug
  // this owner check exists to catch before TSan has to.
  VirtualClock clock;
  clock.Advance(1.0);  // owner access is fine
  EXPECT_DEATH(
      {
        std::thread t([&clock] { clock.NowSeconds(); });
        t.join();
      },
      "COTE_CHECK failed");
  EXPECT_DEATH(
      {
        std::thread t([&clock] { clock.Advance(1.0); });
        t.join();
      },
      "COTE_CHECK failed");
}

#else  // NDEBUG

TEST(ContractsDeathTest, DebugOnlyContractsCompiledOut) {
  GTEST_SKIP() << "COTE_DCHECK contracts compile out under NDEBUG; "
                  "tools/run_checks.sh exercises them in a Debug build.";
}

#endif  // NDEBUG

}  // namespace
}  // namespace cote
