// Negative thread-safety fixture (tests/common/thread_annotations_test).
//
// Reads and writes a COTE_GUARDED_BY member without holding its mutex —
// the canonical forgotten-lock bug. Under Clang `-Wthread-safety` this
// MUST produce a diagnostic (the test asserts the analysis actually
// fires); without the flag, or on non-Clang compilers, it must compile
// cleanly, proving the annotations are zero-cost no-ops with no runtime
// semantics. Compiled with -fsyntax-only by the test; never linked.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Guarded {
 public:
  // Seeded violation: unguarded access to a guarded member.
  int Unlocked() { return value_; }
  void UnlockedWrite(int v) { value_ = v; }

  void Set(int v) COTE_EXCLUDES(mu_) {
    cote::MutexLock lock(mu_);
    value_ = v;
  }

 private:
  cote::Mutex mu_;
  int value_ COTE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int cote_fixture_entry() {
  Guarded g;
  g.Set(2);
  g.UnlockedWrite(3);
  return g.Unlocked();
}
