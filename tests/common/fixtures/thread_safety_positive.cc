// Positive thread-safety fixture (tests/common/thread_annotations_test).
//
// Includes every annotated header in the tree and exercises the locking
// vocabulary correctly. Must compile cleanly on any compiler, and — the
// interesting half — cleanly under Clang `-Wthread-safety -Werror`,
// proving the deployed annotations describe the code's actual locking.
// Compiled with -fsyntax-only by the test; never linked.
#include "common/fault_points.h"
#include "common/mutex.h"
#include "common/resource_budget.h"
#include "common/thread_annotations.h"
#include "common/worker_team.h"
#include "core/statement_cache.h"
#include "optimizer/parallel_enumerator.h"
#include "query/query_graph.h"
#include "session/session_pool.h"

namespace {

class Guarded {
 public:
  void Set(int v) COTE_EXCLUDES(mu_) {
    cote::MutexLock lock(mu_);
    value_ = v;
  }
  int Get() COTE_EXCLUDES(mu_) {
    cote::MutexLock lock(mu_);
    return value_;
  }
  /// Capability-passing style: the caller already holds the mutex.
  int GetLocked() const COTE_REQUIRES(mu_) { return value_; }

 private:
  mutable cote::Mutex mu_;
  int value_ COTE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int cote_fixture_entry() {
  Guarded g;
  g.Set(1);
  return g.Get();
}
