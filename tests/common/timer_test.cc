#include "common/timer.h"

#include <gtest/gtest.h>

#include "query/column_ref.h"

namespace cote {
namespace {

TEST(StopWatchTest, MeasuresElapsedTime) {
  StopWatch w;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  EXPECT_GT(w.ElapsedMicros(), 0);
  EXPECT_GT(w.ElapsedSeconds(), 0);
  int64_t first = w.ElapsedMicros();
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  EXPECT_GE(w.ElapsedMicros(), first);  // monotone
  w.Restart();
  EXPECT_LE(w.ElapsedMicros(), first + 1000000);
}

TEST(TimeAccumulatorTest, AccumulatesIntervals) {
  TimeAccumulator acc;
  EXPECT_EQ(acc.TotalNanos(), 0);
  volatile double sink = 0;
  for (int rep = 0; rep < 3; ++rep) {
    acc.Start();
    for (int i = 0; i < 50000; ++i) sink = sink + i;
    acc.Stop();
  }
  int64_t total = acc.TotalNanos();
  EXPECT_GT(total, 0);
  EXPECT_NEAR(acc.TotalSeconds(), total / 1e9, 1e-12);
  EXPECT_NEAR(acc.TotalMicros(), total / 1e3, 1e-6);
  acc.Reset();
  EXPECT_EQ(acc.TotalNanos(), 0);
}

TEST(ScopedTimerTest, AddsScopeLifetime) {
  TimeAccumulator acc;
  {
    ScopedTimer t(&acc);
    volatile double sink = 0;
    for (int i = 0; i < 50000; ++i) sink = sink + i;
  }
  EXPECT_GT(acc.TotalNanos(), 0);
  // Null accumulator is a no-op.
  { ScopedTimer t(nullptr); }
}

TEST(ColumnRefTest, EncodeRoundTripAndOrdering) {
  ColumnRef a(3, 7);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(ColumnRef().valid());
  EXPECT_EQ(a.Encode(), (3u << 16) | 7u);
  EXPECT_EQ(a.ToString(), "t3.c7");
  ColumnRef b(3, 8), c(4, 0);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, ColumnRef(3, 7));
  EXPECT_NE(a, b);
  ColumnRefHash h;
  EXPECT_NE(h(a), h(b));
}

}  // namespace
}  // namespace cote
