// Compile-fixture proof that the thread-safety annotation layer works.
//
// The interesting property of src/common/thread_annotations.h cannot be
// tested by running code: it is a *compile-time* property — under Clang,
// `-Wthread-safety` must reject an unguarded access to a COTE_GUARDED_BY
// member, and must accept the correctly-locked tree. So this test shells
// out to the same compiler that built it (CMake passes the path and id
// through compile definitions) and compiles two fixtures with
// -fsyntax-only:
//
//   fixtures/thread_safety_positive.cc  — includes every annotated header
//       and locks correctly; must always compile, and must stay clean
//       under `-Wthread-safety -Werror`.
//   fixtures/thread_safety_negative.cc  — a seeded forgotten-lock bug;
//       must compile WITHOUT the analysis (annotations are no-ops) and
//       must FAIL under `-Wthread-safety -Werror`.
//
// The two analysis cases are Clang-only (GCC has no thread safety
// analysis; the macros expand to nothing there) and GTEST_SKIP with a
// notice on other compilers, so the suite stays green on any toolchain
// while proving the full property wherever Clang is available.

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

#ifndef COTE_TA_CXX
#error "build must define COTE_TA_CXX (path of the configured C++ compiler)"
#endif

namespace cote {
namespace {

bool CompilerIsClang() {
  return std::string(COTE_TA_CXX_ID).find("Clang") != std::string::npos;
}

struct CompileOutcome {
  int exit_code = -1;
  std::string diagnostics;
};

// Runs `$CXX -std=c++20 -fsyntax-only <extra_flags> -I src <fixture>`,
// capturing stderr so failures can assert on the diagnostic text.
CompileOutcome CompileFixture(const std::string& fixture,
                              const std::string& extra_flags) {
  const std::string log = ::testing::TempDir() + "cote_ta_diag.txt";
  std::string cmd = std::string("\"") + COTE_TA_CXX +
                    "\" -std=c++20 -fsyntax-only " + extra_flags + " -I \"" +
                    COTE_TA_SRC_DIR + "\" \"" + COTE_TA_FIXTURE_DIR "/" +
                    fixture + "\" 2> \"" + log + "\"";
  CompileOutcome out;
  out.exit_code = std::system(cmd.c_str());
  std::ifstream in(log);
  std::stringstream ss;
  ss << in.rdbuf();
  out.diagnostics = ss.str();
  return out;
}

// The annotations must never change what compiles: the buggy fixture is
// valid C++ and has to build on every supported compiler when the
// analysis is off. This is the zero-cost half of the design contract.
TEST(ThreadAnnotationsTest, AnnotationsAreNoOpsWithoutAnalysis) {
  CompileOutcome out = CompileFixture("thread_safety_negative.cc", "");
  EXPECT_EQ(out.exit_code, 0) << "negative fixture must compile when the "
                                 "analysis is off:\n"
                              << out.diagnostics;
}

// Every annotated header in the tree compiles together — catches a macro
// definition or annotation placement that only breaks when headers meet.
TEST(ThreadAnnotationsTest, AllAnnotatedHeadersCompileTogether) {
  CompileOutcome out = CompileFixture("thread_safety_positive.cc", "");
  EXPECT_EQ(out.exit_code, 0) << "positive fixture must compile:\n"
                              << out.diagnostics;
}

// Clang only: the analysis accepts the correctly-locked tree. A false
// positive here would mean the deployed annotations misdescribe the
// code's locking and the -Werror gate would block every build.
TEST(ThreadAnnotationsTest, AnalysisAcceptsCorrectLocking) {
  if (!CompilerIsClang()) {
    GTEST_SKIP() << "thread safety analysis requires Clang; configured "
                    "compiler is "
                 << COTE_TA_CXX_ID << " (annotations are no-ops there)";
  }
  CompileOutcome out =
      CompileFixture("thread_safety_positive.cc", "-Wthread-safety -Werror");
  EXPECT_EQ(out.exit_code, 0)
      << "annotated headers must be clean under -Wthread-safety -Werror:\n"
      << out.diagnostics;
}

// Clang only: the seeded forgotten-lock bug is rejected. This is the
// negative fixture the issue demands — proof the analysis actually fires
// rather than silently expanding to nothing.
TEST(ThreadAnnotationsTest, AnalysisRejectsUnguardedAccess) {
  if (!CompilerIsClang()) {
    GTEST_SKIP() << "thread safety analysis requires Clang; configured "
                    "compiler is "
                 << COTE_TA_CXX_ID << " (annotations are no-ops there)";
  }
  CompileOutcome out =
      CompileFixture("thread_safety_negative.cc", "-Wthread-safety -Werror");
  EXPECT_NE(out.exit_code, 0)
      << "seeded unguarded access compiled clean: the analysis did not fire";
  EXPECT_NE(out.diagnostics.find("guarded by"), std::string::npos)
      << "expected a -Wthread-safety 'guarded by' diagnostic, got:\n"
      << out.diagnostics;
}

}  // namespace
}  // namespace cote
