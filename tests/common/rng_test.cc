#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace cote {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // mean of uniform(0,1)
}

TEST(RngTest, BernoulliRate) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, PickReturnsMember) {
  Rng rng(17);
  std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    int p = rng.Pick(v);
    EXPECT_TRUE(p == 10 || p == 20 || p == 30);
  }
}

}  // namespace
}  // namespace cote
