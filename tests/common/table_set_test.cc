#include "common/table_set.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace cote {
namespace {

TEST(TableSetTest, EmptyAndSingle) {
  TableSet empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0);

  TableSet s = TableSet::Single(5);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.size(), 1);
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.First(), 5);
}

TEST(TableSetTest, FirstN) {
  EXPECT_EQ(TableSet::FirstN(0).size(), 0);
  EXPECT_EQ(TableSet::FirstN(3).bits(), 0b111u);
  EXPECT_EQ(TableSet::FirstN(64).size(), 64);
}

TEST(TableSetTest, SetAlgebra) {
  TableSet a = TableSet::Single(0).With(2).With(4);
  TableSet b = TableSet::Single(2).With(3);
  EXPECT_EQ(a.Union(b).size(), 4);
  EXPECT_EQ(a.Intersect(b).size(), 1);
  EXPECT_TRUE(a.Intersect(b).Contains(2));
  EXPECT_EQ(a.Minus(b).size(), 2);
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_FALSE(a.Minus(b).Overlaps(b));
  EXPECT_TRUE(a.Union(b).ContainsAll(a));
  EXPECT_FALSE(a.ContainsAll(b));
}

TEST(TableSetTest, IterationInOrder) {
  TableSet s = TableSet::Single(7).With(1).With(63).With(0);
  std::vector<int> got;
  for (int t : s) got.push_back(t);
  EXPECT_EQ(got, (std::vector<int>{0, 1, 7, 63}));
}

TEST(TableSetTest, IterationEmptyAndSingleton) {
  // begin() == end() on the empty set: the loop body never runs.
  for (int t : TableSet()) {
    FAIL() << "empty set yielded element " << t;
  }
  EXPECT_EQ(TableSet().begin(), TableSet().end());

  TableSet s = TableSet::Single(42);
  auto it = s.begin();
  EXPECT_NE(it, s.end());
  EXPECT_EQ(*it, 42);
  EXPECT_EQ(++it, s.end());
}

TEST(TableSetTest, IteratorMatchesFirstAndContains) {
  // Sweep all 8-table subsets: iteration visits exactly the members, in
  // increasing order, starting at First().
  for (uint64_t bits = 1; bits < 256; ++bits) {
    TableSet s(bits);
    EXPECT_EQ(*s.begin(), s.First());
    int count = 0, prev = -1;
    for (int t : s) {
      EXPECT_TRUE(s.Contains(t));
      EXPECT_GT(t, prev);
      prev = t;
      ++count;
    }
    EXPECT_EQ(count, s.size());
  }
}

TEST(TableSetTest, ToStringFormat) {
  EXPECT_EQ(TableSet().ToString(), "{}");
  EXPECT_EQ(TableSet::Single(3).With(1).ToString(), "{1,3}");
}

TEST(TableSetTest, HashDistributesDistinctSets) {
  TableSetHash h;
  std::set<size_t> hashes;
  for (uint64_t i = 1; i <= 256; ++i) hashes.insert(h(TableSet(i)));
  // No collisions expected among 256 small masks with SplitMix finalizer.
  EXPECT_EQ(hashes.size(), 256u);
}

// Property sweep: Union/Minus/Intersect are consistent with element
// membership for all subsets of a small universe.
class TableSetAlgebraTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TableSetAlgebraTest, UnionMinusIntersectConsistency) {
  uint64_t bits = GetParam();
  TableSet a(bits & 0b10110101u);
  TableSet b(bits & 0b01101011u);
  for (int t = 0; t < 8; ++t) {
    EXPECT_EQ(a.Union(b).Contains(t), a.Contains(t) || b.Contains(t));
    EXPECT_EQ(a.Intersect(b).Contains(t), a.Contains(t) && b.Contains(t));
    EXPECT_EQ(a.Minus(b).Contains(t), a.Contains(t) && !b.Contains(t));
  }
  EXPECT_EQ(a.Union(b).size() + a.Intersect(b).size(), a.size() + b.size());
}

INSTANTIATE_TEST_SUITE_P(AllMasks, TableSetAlgebraTest,
                         ::testing::Range(uint64_t{0}, uint64_t{256}));

}  // namespace
}  // namespace cote
