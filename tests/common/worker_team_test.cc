#include "common/worker_team.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace cote {
namespace {

TEST(WorkerTeamTest, SingleWorkerRunsInline) {
  WorkerTeam team(1);
  int calls = 0;
  struct Ctx {
    int* calls;
  } ctx{&calls};
  team.Run(
      [](void* c, int worker) {
        EXPECT_EQ(worker, 0);
        ++*static_cast<Ctx*>(c)->calls;
      },
      &ctx);
  EXPECT_EQ(calls, 1);
}

TEST(WorkerTeamTest, EveryWorkerRunsOncePerRound) {
  constexpr int kWorkers = 4;
  constexpr int kRounds = 200;
  WorkerTeam team(kWorkers);
  struct Ctx {
    std::atomic<int> per_worker[kWorkers];
  } ctx;
  for (auto& c : ctx.per_worker) c.store(0);
  for (int r = 0; r < kRounds; ++r) {
    team.Run(
        [](void* c, int worker) {
          static_cast<Ctx*>(c)->per_worker[worker].fetch_add(1);
        },
        &ctx);
    // Run() is a barrier: after it returns, every worker of this round —
    // including the caller-as-worker-0 — has finished.
    for (int w = 0; w < kWorkers; ++w) {
      EXPECT_EQ(ctx.per_worker[w].load(), r + 1) << "worker " << w;
    }
  }
}

TEST(WorkerTeamTest, WorkerWritesAreVisibleAfterRun) {
  // Plain (non-atomic) writes by workers must be visible to the caller
  // after Run() returns — the happens-before edge the rank-barrier merge
  // depends on.
  constexpr int kWorkers = 8;
  WorkerTeam team(kWorkers);
  std::vector<int> out(kWorkers, 0);
  struct Ctx {
    std::vector<int>* out;
  } ctx{&out};
  for (int r = 1; r <= 50; ++r) {
    team.Run(
        [](void* c, int worker) {
          ++(*static_cast<Ctx*>(c)->out)[static_cast<size_t>(worker)];
        },
        &ctx);
    for (int w = 0; w < kWorkers; ++w) EXPECT_EQ(out[static_cast<size_t>(w)], r);
  }
}

TEST(WorkerTeamTest, TeamsAreReusableAndDestructible) {
  // Construct/use/destroy several teams back to back: shutdown must join
  // every thread (TSan/ASan would flag leaks or races here).
  for (int workers = 1; workers <= 5; ++workers) {
    WorkerTeam team(workers);
    std::atomic<int> total{0};
    team.Run(
        [](void* c, int) { static_cast<std::atomic<int>*>(c)->fetch_add(1); },
        &total);
    EXPECT_EQ(total.load(), workers);
  }
}

}  // namespace
}  // namespace cote
