#include "common/status.h"

#include <gtest/gtest.h>

namespace cote {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table foo");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "table foo");
  EXPECT_EQ(s.ToString(), "NotFound: table foo");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::BindError("x").code(), StatusCode::kBindError);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
}

TEST(StatusTest, GovernanceCodesPrintTheirNames) {
  EXPECT_EQ(Status::DeadlineExceeded("compile budget: 2ms past").ToString(),
            "DeadlineExceeded: compile budget: 2ms past");
  EXPECT_EQ(Status::ResourceExhausted("memo entries: 65 > 64").ToString(),
            "ResourceExhausted: memo entries: 65 > 64");
}

TEST(StatusTest, OverloadCodesPrintTheirNames) {
  // The overload-resilience vocabulary (DESIGN.md §16): a shed submission
  // is kUnavailable, an externally tripped compile is kCancelled.
  EXPECT_EQ(Status::Unavailable("compile queue full").ToString(),
            "Unavailable: compile queue full");
  EXPECT_EQ(Status::Cancelled("supervisor tripped budget").ToString(),
            "Cancelled: supervisor tripped budget");
}

StatusOr<int> Exhausted() { return Status::ResourceExhausted("cap"); }

TEST(StatusOrTest, GovernanceStatusPropagatesThroughStatusOr) {
  StatusOr<int> v = Exhausted();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kResourceExhausted);
  Status s = [] {
    COTE_RETURN_NOT_OK(Exhausted().status());
    return Status::OK();
  }();
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.message(), "cap");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::Internal("boom");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello world");
  std::string out = std::move(v).value();
  EXPECT_EQ(out, "hello world");
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseMacro(int x) {
  COTE_RETURN_NOT_OK(ParsePositive(x).status());
  return Status::OK();
}

TEST(StatusOrTest, ReturnNotOkMacro) {
  EXPECT_TRUE(UseMacro(1).ok());
  EXPECT_FALSE(UseMacro(-1).ok());
}

}  // namespace
}  // namespace cote
