// Deep invariant sweep: every plan the optimizer stores, for every query
// of every workload, in serial and parallel mode, on both enumerators,
// must satisfy the PlanValidator's structural invariants — including that
// each MEMO entry's plan list is a true Pareto frontier.

#include "optimizer/plan/plan_validator.h"

#include <gtest/gtest.h>

#include "optimizer/optimizer.h"
#include "query/query_builder.h"
#include "workload/workload.h"

namespace cote {
namespace {

struct SweepCase {
  std::string name;
  Workload (*factory)();
  bool parallel;
  EnumeratorKind kind;
};

void PrintTo(const SweepCase& c, std::ostream* os) { *os << c.name; }

class ValidatorSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ValidatorSweepTest, AllStoredPlansValid) {
  const SweepCase& c = GetParam();
  Workload w = c.factory();
  OptimizerOptions options =
      c.parallel ? OptimizerOptions::Parallel(4) : OptimizerOptions{};
  options.enumeration.max_composite_inner = 2;
  options.enumeration.kind = c.kind;
  Optimizer opt(options);
  for (int i = 0; i < w.size(); ++i) {
    auto r = opt.Optimize(w.queries[i]);
    ASSERT_TRUE(r.ok()) << w.labels[i];
    PlanValidator validator(w.queries[i]);
    Status plan_ok = validator.ValidatePlan(r->best_plan);
    EXPECT_TRUE(plan_ok.ok()) << w.labels[i] << ": " << plan_ok.ToString();
    Status memo_ok = validator.ValidateMemo(*r->memo);
    EXPECT_TRUE(memo_ok.ok()) << w.labels[i] << ": " << memo_ok.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ValidatorSweepTest,
    ::testing::Values(
        SweepCase{"linear_serial", &LinearWorkload, false,
                  EnumeratorKind::kBottomUp},
        SweepCase{"star_serial", &StarWorkload, false,
                  EnumeratorKind::kBottomUp},
        SweepCase{"star_parallel", &StarWorkload, true,
                  EnumeratorKind::kBottomUp},
        SweepCase{"real1_parallel", &Real1Workload, true,
                  EnumeratorKind::kBottomUp},
        SweepCase{"tpch_serial", &TpchWorkload, false,
                  EnumeratorKind::kBottomUp},
        SweepCase{"tpch_topdown", &TpchWorkload, false,
                  EnumeratorKind::kTopDown},
        SweepCase{"cyclic_topdown_par", &CyclicWorkload, true,
                  EnumeratorKind::kTopDown},
        SweepCase{"random_parallel",
                  [] { return RandomWorkload(6, 1234); }, true,
                  EnumeratorKind::kBottomUp}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.name;
    });

TEST(PlanValidatorTest, CatchesBrokenPlans) {
  Catalog catalog;
  TableBuilder b("T0", 100);
  b.Col("a", ColumnType::kInt, 10);
  ASSERT_TRUE(catalog.AddTable(b.Build()).ok());
  QueryBuilder qb(catalog);
  qb.AddTable("T0", "t0");
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  PlanValidator validator(*g);

  EXPECT_FALSE(validator.ValidatePlan(nullptr).ok());

  Plan scan;
  scan.op = OpType::kTableScan;
  scan.tables = TableSet::Single(0);
  scan.rows = 100;
  scan.cost = 10;
  EXPECT_TRUE(validator.ValidatePlan(&scan).ok());

  Plan bad_rows = scan;
  bad_rows.rows = 0;
  EXPECT_FALSE(validator.ValidatePlan(&bad_rows).ok());

  Plan bad_cost = scan;
  bad_cost.cost = -1;
  EXPECT_FALSE(validator.ValidatePlan(&bad_cost).ok());

  Plan pipelinable_sort = scan;
  pipelinable_sort.op = OpType::kSort;
  pipelinable_sort.order = OrderProperty({ColumnRef(0, 0)});
  pipelinable_sort.child = &scan;
  pipelinable_sort.pipelinable = true;
  EXPECT_FALSE(validator.ValidatePlan(&pipelinable_sort).ok());
  pipelinable_sort.pipelinable = false;
  EXPECT_TRUE(validator.ValidatePlan(&pipelinable_sort).ok());

  Plan ordered_hsjn = scan;
  ordered_hsjn.op = OpType::kHsjn;
  ordered_hsjn.order = OrderProperty({ColumnRef(0, 0)});
  EXPECT_FALSE(validator.ValidatePlan(&ordered_hsjn).ok());
}

}  // namespace
}  // namespace cote
