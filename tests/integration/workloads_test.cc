// End-to-end checks over every shipped workload: all queries bind, all
// optimize (serial and parallel), and the estimator runs within sane
// bounds on each. This is the broad safety net under the benches.

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "optimizer/optimizer.h"
#include "workload/workload.h"

namespace cote {
namespace {

OptimizerOptions BenchOptions(bool parallel) {
  OptimizerOptions o = parallel ? OptimizerOptions::Parallel(4)
                                : OptimizerOptions{};
  o.enumeration.max_composite_inner = 2;
  return o;
}

class WorkloadCase {
 public:
  WorkloadCase(std::string name, Workload (*factory)())
      : name_(std::move(name)), factory_(factory) {}
  std::string name_;
  Workload (*factory_)();
};

void PrintTo(const WorkloadCase& c, std::ostream* os) { *os << c.name_; }

class WorkloadTest : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(WorkloadTest, ShapeMatchesPaperDescription) {
  Workload w = GetParam().factory_();
  EXPECT_FALSE(w.queries.empty());
  EXPECT_EQ(w.queries.size(), w.labels.size());
  if (w.name == "linear" || w.name == "star") {
    ASSERT_EQ(w.size(), 15);  // 3 batches of 5 (§5)
    for (int b = 0; b < 3; ++b) {
      int tables = 6 + 2 * b;
      for (int k = 0; k < 5; ++k) {
        EXPECT_EQ(w.queries[b * 5 + k].num_tables(), tables);
      }
    }
  }
  if (w.name == "real1") {
    EXPECT_EQ(w.size(), 8);
  }
  if (w.name == "real2") {
    EXPECT_EQ(w.size(), 17);
    // The 14-table monster described in §5.
    int max_tables = 0;
    for (const QueryGraph& q : w.queries) {
      max_tables = std::max(max_tables, q.num_tables());
    }
    EXPECT_EQ(max_tables, 14);
  }
  if (w.name == "tpch") {
    EXPECT_EQ(w.size(), 7);
  }
  if (w.name == "tpch_full") {
    EXPECT_EQ(w.size(), 22);
  }
}

TEST_P(WorkloadTest, AllQueriesOptimizeSerial) {
  Workload w = GetParam().factory_();
  Optimizer opt(BenchOptions(false));
  for (int i = 0; i < w.size(); ++i) {
    auto r = opt.Optimize(w.queries[i]);
    ASSERT_TRUE(r.ok()) << w.name << " " << w.labels[i] << ": "
                        << r.status().ToString();
    EXPECT_EQ(r->best_plan->tables, w.queries[i].AllTables());
    if (w.queries[i].num_tables() > 1) {
      EXPECT_GT(r->stats.join_plans_generated.total(), 0);
    }
  }
}

TEST_P(WorkloadTest, AllQueriesOptimizeParallel) {
  Workload w = GetParam().factory_();
  Optimizer opt(BenchOptions(true));
  for (int i = 0; i < w.size(); ++i) {
    auto r = opt.Optimize(w.queries[i]);
    ASSERT_TRUE(r.ok()) << w.name << " " << w.labels[i];
    EXPECT_EQ(r->best_plan->tables, w.queries[i].AllTables());
  }
}

TEST_P(WorkloadTest, EstimatorRunsOnEveryQuery) {
  Workload w = GetParam().factory_();
  TimeModel flat;
  flat.ct[0] = flat.ct[1] = flat.ct[2] = 1e-6;
  CompileTimeEstimator cote(flat, BenchOptions(false));
  for (int i = 0; i < w.size(); ++i) {
    CompileTimeEstimate est = cote.Estimate(w.queries[i]);
    if (w.queries[i].num_tables() > 1) {
      EXPECT_GT(est.plan_estimates.total(), 0) << w.labels[i];
      EXPECT_GT(est.estimated_seconds, 0) << w.labels[i];
      EXPECT_GT(est.enumeration.joins_unordered, 0) << w.labels[i];
    } else {
      EXPECT_EQ(est.enumeration.entries_created, 1) << w.labels[i];
    }
  }
}

TEST_P(WorkloadTest, PlanEstimateAccuracyAggregate) {
  // Figure 5-style check, aggregated: total estimated plans within a
  // factor of total actual plans per join method.
  Workload w = GetParam().factory_();
  Optimizer opt(BenchOptions(false));
  TimeModel flat;
  CompileTimeEstimator cote(flat, BenchOptions(false));
  JoinTypeCounts est_total, act_total;
  for (const QueryGraph& q : w.queries) {
    auto r = opt.Optimize(q);
    ASSERT_TRUE(r.ok());
    act_total += r->stats.join_plans_generated;
    est_total += cote.Estimate(q).plan_estimates;
  }
  for (int m = 0; m < kNumJoinMethods; ++m) {
    double est = static_cast<double>(est_total.counts[m]);
    double act = static_cast<double>(act_total.counts[m]);
    if (act < 10) continue;
    double err = std::abs(est - act) / act;
    EXPECT_LT(err, 0.5) << w.name << " "
                        << JoinMethodName(static_cast<JoinMethod>(m))
                        << " est=" << est << " act=" << act;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadTest,
    ::testing::Values(
        WorkloadCase("linear", &LinearWorkload),
        WorkloadCase("star", &StarWorkload),
        WorkloadCase("cyclic", &CyclicWorkload),
        WorkloadCase("real1", &Real1Workload),
        WorkloadCase("real2", &Real2Workload),
        WorkloadCase("tpch", &TpchWorkload),
        WorkloadCase("tpch_full", &TpchFullWorkload),
        WorkloadCase("training", &TrainingWorkload),
        WorkloadCase("random", [] { return RandomWorkload(6, 42); })),
    [](const ::testing::TestParamInfo<WorkloadCase>& info) {
      return info.param.name_;
    });

TEST(RandomWorkloadTest, SeedReproducible) {
  Workload a = RandomWorkload(5, 7);
  Workload b = RandomWorkload(5, 7);
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.queries[i].num_tables(), b.queries[i].num_tables());
    EXPECT_EQ(a.queries[i].join_predicates().size(),
              b.queries[i].join_predicates().size());
  }
  Workload c = RandomWorkload(5, 8);
  bool any_diff = false;
  for (int i = 0; i < a.size(); ++i) {
    any_diff |= a.queries[i].num_tables() != c.queries[i].num_tables() ||
                a.queries[i].join_predicates().size() !=
                    c.queries[i].join_predicates().size();
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomWorkloadTest, PrefersFkJoins) {
  Workload w = RandomWorkload(10, 123);
  for (const QueryGraph& q : w.queries) {
    EXPECT_GE(q.num_tables(), 2);
    EXPECT_FALSE(q.join_predicates().empty());
    // Connected (possibly through derived predicates).
    EXPECT_TRUE(q.IsSubgraphConnected(q.AllTables()));
  }
}

}  // namespace
}  // namespace cote
