// Property generation policies (§3.2, §5.4): eager vs lazy for orders and
// partitions, on both the optimizer and the estimator side.

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "optimizer/optimizer.h"
#include "query/query_builder.h"
#include "workload/workload.h"

namespace cote {
namespace {

QueryGraph StarQuery(const Catalog& catalog, int tables = 6) {
  QueryBuilder qb(catalog);
  for (int t = 0; t < tables; ++t) {
    qb.AddTable("T" + std::to_string(t), "t" + std::to_string(t));
  }
  for (int t = 1; t < tables; ++t) {
    qb.Join("t0", "c1", "t" + std::to_string(t), "c1");
  }
  qb.OrderBy({{"t0", "c5"}});
  auto g = qb.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(PolicyTest, CatalogExVariantsRespectParameters) {
  auto none = MakeSyntheticCatalogEx(4, 0, "");
  EXPECT_TRUE(none->FindTable("T0")->indexes().empty());
  EXPECT_EQ(none->FindTable("T0")->partitioning().kind,
            PartitionKind::kSingleNode);

  auto three = MakeSyntheticCatalogEx(4, 3, "c2");
  EXPECT_EQ(three->FindTable("T0")->indexes().size(), 3u);
  EXPECT_EQ(three->FindTable("T0")->partitioning().key_columns,
            std::vector<int>{2});

  auto mixed = MakeSyntheticCatalogEx(4, 1, "mix");
  EXPECT_EQ(mixed->FindTable("T0")->partitioning().key_columns,
            std::vector<int>{1});  // c1 on even tables
  EXPECT_EQ(mixed->FindTable("T1")->partitioning().key_columns,
            std::vector<int>{2});  // c2 on odd tables
}

TEST(PolicyTest, EagerPartitionsGenerateRepartitionEnforcersAtBase) {
  auto catalog = MakeSyntheticCatalogEx(4, 1, "c5");  // useless partitioning
  QueryGraph g = StarQuery(*catalog, 4);

  OptimizerOptions lazy = OptimizerOptions::Parallel(4);
  OptimizerOptions eager = lazy;
  eager.plangen.eager_partitions = true;
  Optimizer ol(lazy), oe(eager);
  auto rl = ol.Optimize(g);
  auto re = oe.Optimize(g);
  ASSERT_TRUE(rl.ok());
  ASSERT_TRUE(re.ok());

  // Eager policy: base entries carry hash(c1) plans despite c5 partitioning.
  const MemoEntry* t0 = re->memo->Find(TableSet::Single(0));
  bool has_join_col_partition = false;
  for (const Plan* p : t0->plans()) {
    if (p->partition.kind() == PartitionProperty::Kind::kHash &&
        p->partition.columns() == std::vector<ColumnRef>{ColumnRef(0, 1)}) {
      has_join_col_partition = true;
    }
  }
  EXPECT_TRUE(has_join_col_partition);
  // Lazy policy leaves the base entry on its physical partition only.
  const MemoEntry* t0_lazy = rl->memo->Find(TableSet::Single(0));
  for (const Plan* p : t0_lazy->plans()) {
    if (p->partition.kind() == PartitionProperty::Kind::kHash) {
      EXPECT_EQ(p->partition.columns(),
                std::vector<ColumnRef>{ColumnRef(0, 5)});
    }
  }
  // Eager search space is at least as large.
  EXPECT_GE(re->stats.join_plans_generated.total(),
            rl->stats.join_plans_generated.total());
  // The base-level plan is an actual repartition enforcer. (Total
  // enforcer counts can go either way: materializing partitions once at
  // the base saves per-join repartitioning later.)
  bool base_repartition = false;
  for (const Plan* p : t0->plans()) {
    base_repartition |= p->op == OpType::kRepartition;
  }
  EXPECT_TRUE(base_repartition);
}

TEST(PolicyTest, EstimatorMirrorsEagerPartitions) {
  auto catalog = MakeSyntheticCatalogEx(4, 1, "c5");
  QueryGraph g = StarQuery(*catalog, 4);
  TimeModel flat;

  OptimizerOptions lazy = OptimizerOptions::Parallel(4);
  OptimizerOptions eager = lazy;
  eager.plangen.eager_partitions = true;
  CompileTimeEstimator cl(flat, lazy), ce(flat, eager);
  CompileTimeEstimate el = cl.Estimate(g);
  CompileTimeEstimate ee = ce.Estimate(g);
  EXPECT_GE(ee.plan_estimates.total(), el.plan_estimates.total());

  // And the eager estimate still tracks the eager actuals within bounds.
  Optimizer oe(eager);
  auto re = oe.Optimize(g);
  ASSERT_TRUE(re.ok());
  double act = static_cast<double>(re->stats.join_plans_generated.total());
  double est = static_cast<double>(ee.plan_estimates.total());
  EXPECT_LT(std::abs(est - act) / act, 0.5) << est << " vs " << act;
}

TEST(PolicyTest, EagerPartitionsRemoveDesignSensitivity) {
  // With eager partitions, a join-column design and a useless design
  // produce the same generated plan count.
  auto good = MakeSyntheticCatalogEx(4, 1, "c1");
  auto bad = MakeSyntheticCatalogEx(4, 1, "c5");
  OptimizerOptions eager = OptimizerOptions::Parallel(4);
  eager.plangen.eager_partitions = true;
  Optimizer opt(eager);
  auto rg = opt.Optimize(StarQuery(*good, 4));
  auto rb = opt.Optimize(StarQuery(*bad, 4));
  ASSERT_TRUE(rg.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(rg->stats.join_plans_generated.total(),
            rb->stats.join_plans_generated.total());
}

}  // namespace
}  // namespace cote
