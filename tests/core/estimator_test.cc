#include "core/estimator.h"

#include <gtest/gtest.h>

#include "core/regression.h"
#include "workload/workload.h"

namespace cote {
namespace {

/// Shared expensive setup: calibrate one serial time model.
class EstimatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    training_ = new Workload(TrainingWorkload());
    Optimizer opt(SerialOptions());
    // Paper-faithful model: no intercept; relative weighting balances the
    // wide spread of per-query compile times.
    TimeModelCalibrator cal(/*with_intercept=*/false,
                            /*relative_weighting=*/true);
    for (const QueryGraph& q : training_->queries) {
      auto r = opt.Optimize(q);
      ASSERT_TRUE(r.ok());
      cal.AddObservation(r->stats);
    }
    auto model = cal.Fit();
    ASSERT_TRUE(model.ok());
    model_ = new TimeModel(std::move(model).value());
  }
  static void TearDownTestSuite() {
    delete training_;
    delete model_;
    training_ = nullptr;
    model_ = nullptr;
  }

  static OptimizerOptions SerialOptions() {
    OptimizerOptions o;
    o.enumeration.max_composite_inner = 3;
    return o;
  }

  static Workload* training_;
  static TimeModel* model_;
};

Workload* EstimatorTest::training_ = nullptr;
TimeModel* EstimatorTest::model_ = nullptr;

TEST_F(EstimatorTest, CalibratedModelHasPositiveCoefficients) {
  int positive = 0;
  for (int m = 0; m < kNumJoinMethods; ++m) {
    positive += (model_->ct[m] > 0);
  }
  EXPECT_GE(positive, 2) << model_->RatioString();
}

TEST_F(EstimatorTest, TimeEstimateTracksActualOnHeldOutQueries) {
  // Held-out evaluation: linear workload, serial version (Figure 6 style).
  Workload eval = LinearWorkload();
  CompileTimeEstimator cote(*model_, SerialOptions());
  Optimizer opt(SerialOptions());
  double total_err = 0;
  int n = 0;
  for (const QueryGraph& q : eval.queries) {
    auto r = opt.Optimize(q);
    ASSERT_TRUE(r.ok());
    CompileTimeEstimate est = cote.Estimate(q);
    double actual = r->stats.total_seconds;
    ASSERT_GT(actual, 0);
    total_err += std::abs(est.estimated_seconds - actual) / actual;
    ++n;
  }
  // Paper: ≤30% average error. Allow headroom for timing noise at
  // millisecond scales (this is a wall-clock-based assertion).
  EXPECT_LT(total_err / n, 0.50);
}

TEST_F(EstimatorTest, OverheadSmallFractionOfCompilation) {
  // Figure 4's claim: estimation costs a few percent of compilation.
  Workload eval = StarWorkload();
  CompileTimeEstimator cote(*model_, SerialOptions());
  Optimizer opt(SerialOptions());
  double total_actual = 0, total_overhead = 0;
  for (const QueryGraph& q : eval.queries) {
    auto r = opt.Optimize(q);
    ASSERT_TRUE(r.ok());
    CompileTimeEstimate est = cote.Estimate(q);
    total_actual += r->stats.total_seconds;
    total_overhead += est.estimation_seconds;
  }
#ifdef NDEBUG
  constexpr double kMaxOverheadRatio = 0.10;
#else
  // Debug/sanitized builds distort the ratio: the contracts and the
  // sanitizer instrumentation tax the counter's tight loops relatively
  // harder than plan generation's allocation-heavy work, and the ratio
  // sits right at ~0.10 there (on this PR's parent commit too).
  constexpr double kMaxOverheadRatio = 0.20;
#endif
  EXPECT_LT(total_overhead / total_actual, kMaxOverheadRatio)
      << "overhead " << total_overhead << "s vs " << total_actual << "s";
}

TEST_F(EstimatorTest, EstimateIsDeterministic) {
  Workload eval = LinearWorkload();
  CompileTimeEstimator cote(*model_, SerialOptions());
  CompileTimeEstimate a = cote.Estimate(eval.queries[0]);
  CompileTimeEstimate b = cote.Estimate(eval.queries[0]);
  for (int m = 0; m < kNumJoinMethods; ++m) {
    EXPECT_EQ(a.plan_estimates.counts[m], b.plan_estimates.counts[m]);
  }
  EXPECT_DOUBLE_EQ(a.estimated_seconds, b.estimated_seconds);
}

TEST_F(EstimatorTest, SameJoinsEnumeratedAsOptimizer) {
  // The core reuse claim (§3.1): plan-estimate mode enumerates the same
  // joins as normal mode (up to cardinality-heuristic deviations, absent
  // in this synthetic workload).
  Workload eval = LinearWorkload();
  CompileTimeEstimator cote(*model_, SerialOptions());
  Optimizer opt(SerialOptions());
  for (int i = 0; i < 5; ++i) {
    const QueryGraph& q = eval.queries[i];
    auto r = opt.Optimize(q);
    ASSERT_TRUE(r.ok());
    CompileTimeEstimate est = cote.Estimate(q);
    EXPECT_EQ(est.enumeration.joins_unordered,
              r->stats.enumeration.joins_unordered);
    EXPECT_EQ(est.enumeration.joins_ordered,
              r->stats.enumeration.joins_ordered);
    EXPECT_EQ(est.enumeration.entries_created,
              r->stats.enumeration.entries_created);
  }
}

TEST_F(EstimatorTest, MemoryLowerBoundHolds) {
  // §6.2: the property-list-based bound stays below (or near) the actual
  // MEMO footprint, and correlates with it.
  Workload eval = LinearWorkload();
  CompileTimeEstimator cote(*model_, SerialOptions());
  Optimizer opt(SerialOptions());
  for (int i = 0; i < 8; ++i) {
    const QueryGraph& q = eval.queries[i];
    auto r = opt.Optimize(q);
    ASSERT_TRUE(r.ok());
    CompileTimeEstimate est = cote.Estimate(q);
    EXPECT_GT(est.estimated_memo_bytes, 0);
    // A *lower bound* modulo the per-plan size approximation: allow 1.5x.
    EXPECT_LT(est.estimated_memo_bytes,
              static_cast<int64_t>(r->stats.memo_bytes * 1.5) + 4096);
  }
}

TEST_F(EstimatorTest, ParallelEstimatorUsesParallelCounter) {
  Workload eval = LinearWorkload();
  OptimizerOptions par = OptimizerOptions::Parallel(4);
  par.enumeration.max_composite_inner = 3;
  CompileTimeEstimator serial_cote(*model_, SerialOptions());
  CompileTimeEstimator par_cote(*model_, par);
  const QueryGraph& q = eval.queries[10];
  // The parallel search space is larger: so are the plan estimates.
  EXPECT_GT(par_cote.Estimate(q).plan_estimates.total(),
            serial_cote.Estimate(q).plan_estimates.total());
}

}  // namespace
}  // namespace cote
