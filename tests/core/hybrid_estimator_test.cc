#include "core/hybrid_estimator.h"

#include <gtest/gtest.h>

#include "parser/binder.h"
#include "workload/workload.h"

namespace cote {
namespace {

class HybridEstimatorTest : public ::testing::Test {
 protected:
  HybridEstimatorTest() : catalog_(MakeTpchCatalog()) {
    model_.ct[0] = model_.ct[1] = model_.ct[2] = 1e-6;
  }

  QueryGraph Bind(const std::string& sql) {
    auto g = Binder::BindSql(*catalog_, sql);
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    return std::move(g).value();
  }

  std::shared_ptr<Catalog> catalog_;
  TimeModel model_;
};

TEST_F(HybridEstimatorTest, MissUsesCoteHitUsesMeasurement) {
  HybridEstimator est(model_, OptimizerOptions{});
  QueryGraph q = Bind(
      "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey");

  auto first = est.Estimate(q);
  EXPECT_FALSE(first.from_cache);
  EXPECT_GT(first.estimated_seconds, 0);
  EXPECT_GT(first.cote.plan_estimates.total(), 0);

  est.RecordMeasured(q, 0.123);
  auto second = est.Estimate(q);
  EXPECT_TRUE(second.from_cache);
  EXPECT_DOUBLE_EQ(second.estimated_seconds, 0.123);
  EXPECT_EQ(est.cache().hits(), 1);
}

TEST_F(HybridEstimatorTest, ParameterizedReuseHitsCache) {
  HybridEstimator est(model_, OptimizerOptions{});
  // Same statement shape, different constant: the measured time applies —
  // provided the binder derives the same selectivity for both (LIKE has a
  // fixed 1/10). Constants that shift the derived selectivity change what
  // the optimizer compiles and correctly miss (see statement_cache_test's
  // RangeLiteralsChangeSelectivityAndSignature).
  QueryGraph a = Bind("SELECT * FROM orders o WHERE o.o_clerk LIKE 'a%'");
  QueryGraph b = Bind("SELECT * FROM orders o WHERE o.o_clerk LIKE 'b%'");
  est.RecordMeasured(a, 0.5);
  EXPECT_TRUE(est.Estimate(b).from_cache);
}

TEST_F(HybridEstimatorTest, AdHocWorkloadFallsBackToCote) {
  HybridEstimator est(model_, OptimizerOptions{});
  Workload w = RandomWorkload(8, 777);
  int cote_used = 0;
  for (const QueryGraph& q : w.queries) {
    auto r = est.Estimate(q);
    cote_used += !r.from_cache;
    est.RecordMeasured(q, 0.01);
  }
  // Every distinct ad-hoc query misses (the paper's §1.2 point).
  EXPECT_EQ(cote_used, w.size());
}

}  // namespace
}  // namespace cote
