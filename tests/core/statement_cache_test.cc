#include "core/statement_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/time_model.h"
#include "parser/binder.h"
#include "session/session.h"
#include "workload/workload.h"

namespace cote {
namespace {

class StatementCacheTest : public ::testing::Test {
 protected:
  StatementCacheTest() : catalog_(MakeTpchCatalog()) {}

  QueryGraph Bind(const std::string& sql) {
    auto g = Binder::BindSql(*catalog_, sql);
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    return std::move(g).value();
  }

  std::shared_ptr<Catalog> catalog_;
};

TEST_F(StatementCacheTest, HitOnIdenticalStatement) {
  CompileTimeCache cache;
  QueryGraph q = Bind(
      "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey");
  EXPECT_FALSE(cache.Lookup(q).has_value());
  cache.Insert(q, 0.42);
  auto hit = cache.Lookup(q);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 0.42);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST_F(StatementCacheTest, LiteralsWithEqualSelectivityShareSignature) {
  // Statements whose compilations see identical inputs share an entry
  // (§1.2's cache works for parameterized reuse). LIKE predicates carry a
  // fixed 1/10 selectivity regardless of the pattern, so only the literal
  // text differs — and literal text is not part of the signature.
  QueryGraph a = Bind("SELECT * FROM orders o WHERE o.o_clerk LIKE 'a%'");
  QueryGraph b = Bind("SELECT * FROM orders o WHERE o.o_clerk LIKE 'b%'");
  ASSERT_DOUBLE_EQ(a.local_predicates()[0].selectivity,
                   b.local_predicates()[0].selectivity);
  EXPECT_EQ(CompileTimeCache::Signature(a), CompileTimeCache::Signature(b));
}

TEST_F(StatementCacheTest, RangeLiteralsChangeSelectivityAndSignature) {
  // Regression: the binder derives a different selectivity from each range
  // literal, and the optimizer costs plans with it — the old signature
  // ignored selectivity, so these two collided and the cache returned a
  // stale compile time for whichever was compiled second.
  QueryGraph a = Bind("SELECT * FROM orders o WHERE o.o_orderdate > 5");
  QueryGraph b = Bind("SELECT * FROM orders o WHERE o.o_orderdate > 99");
  ASSERT_NE(a.local_predicates()[0].selectivity,
            b.local_predicates()[0].selectivity);
  EXPECT_NE(CompileTimeCache::Signature(a), CompileTimeCache::Signature(b));
}

TEST_F(StatementCacheTest, StructuralChangesChangeSignature) {
  QueryGraph base = Bind(
      "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey");
  QueryGraph extra_table = Bind(
      "SELECT * FROM orders o, lineitem l, customer c "
      "WHERE o.o_orderkey = l.l_orderkey AND c.c_custkey = o.o_custkey");
  QueryGraph with_order = Bind(
      "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey "
      "ORDER BY o.o_orderdate");
  QueryGraph with_limit = Bind(
      "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey "
      "LIMIT 5");
  uint64_t s0 = CompileTimeCache::Signature(base);
  EXPECT_NE(s0, CompileTimeCache::Signature(extra_table));
  EXPECT_NE(s0, CompileTimeCache::Signature(with_order));
  EXPECT_NE(s0, CompileTimeCache::Signature(with_limit));
}

TEST_F(StatementCacheTest, LruEviction) {
  CompileTimeCache cache(/*capacity=*/2);
  QueryGraph a = Bind("SELECT * FROM orders o");
  QueryGraph b = Bind("SELECT * FROM lineitem l");
  QueryGraph c = Bind("SELECT * FROM customer c");
  cache.Insert(a, 1);
  cache.Insert(b, 2);
  EXPECT_TRUE(cache.Lookup(a).has_value());  // refreshes a
  cache.Insert(c, 3);                        // evicts b (LRU)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(a).has_value());
  EXPECT_FALSE(cache.Lookup(b).has_value());
  EXPECT_TRUE(cache.Lookup(c).has_value());
}

TEST_F(StatementCacheTest, InsertUpdatesExisting) {
  CompileTimeCache cache;
  QueryGraph a = Bind("SELECT * FROM orders o");
  cache.Insert(a, 1.0);
  cache.Insert(a, 2.0);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(*cache.Lookup(a), 2.0);
}

// ---------------------------------------------------------------------------
// Signature collision regressions. These graphs are built directly (not
// through the binder) so a single field can be varied in isolation; each
// pair collided under the pre-fix Signature.

class SignatureCollisionTest : public ::testing::Test {
 protected:
  SignatureCollisionTest() : catalog_(MakeSyntheticCatalog(2)) {}

  /// T0 join T1 on c0 with one local predicate on t0.c1; the callback
  /// tweaks one field of the otherwise-identical query before the
  /// predicates are installed and the signature is taken.
  template <typename Tweak>
  uint64_t SignatureOf(const Tweak& tweak) {
    QueryGraph g;
    g.AddTableRef(catalog_->FindTable("T0"), "t0");
    g.AddTableRef(catalog_->FindTable("T1"), "t1");
    JoinPredicate jp;
    jp.left = ColumnRef(0, 0);
    jp.right = ColumnRef(1, 0);
    jp.selectivity = 0.1;
    LocalPredicate lp;
    lp.column = ColumnRef(0, 1);
    lp.selectivity = 0.1;
    tweak(&g, &jp, &lp);
    g.AddJoinPredicate(jp);
    g.AddLocalPredicate(lp);
    return CompileTimeCache::Signature(g);
  }

  std::shared_ptr<Catalog> catalog_;
};

using G = QueryGraph;
using JP = JoinPredicate;
using LP = LocalPredicate;

TEST_F(SignatureCollisionTest, JoinSelectivityChangesSignature) {
  uint64_t base = SignatureOf([](G*, JP*, LP*) {});
  uint64_t tweaked =
      SignatureOf([](G*, JP* jp, LP*) { jp->selectivity = 0.25; });
  EXPECT_NE(base, tweaked);
}

TEST_F(SignatureCollisionTest, DerivedFlagChangesSignature) {
  uint64_t base = SignatureOf([](G*, JP*, LP*) {});
  uint64_t tweaked = SignatureOf([](G*, JP* jp, LP*) { jp->derived = true; });
  EXPECT_NE(base, tweaked);
}

TEST_F(SignatureCollisionTest, LocalSelectivityChangesSignature) {
  uint64_t base = SignatureOf([](G*, JP*, LP*) {});
  uint64_t tweaked =
      SignatureOf([](G*, JP*, LP* lp) { lp->selectivity = 0.9; });
  EXPECT_NE(base, tweaked);
}

TEST_F(SignatureCollisionTest, SectionBoundaryShiftChangesSignature) {
  // t0.c0 encodes to 0, so its GROUP BY mix (0 * 2654435761) and ORDER BY
  // mix (0 * 40503) produced the same value in the same sequence position
  // under the pre-fix hash: GROUP BY t0.c0 and ORDER BY t0.c0 collided.
  // The per-section length delimiters tell them apart.
  uint64_t grouped = SignatureOf(
      [](G* g, JP*, LP*) { g->SetGroupBy({ColumnRef(0, 0)}); });
  uint64_t ordered = SignatureOf(
      [](G* g, JP*, LP*) { g->SetOrderBy({ColumnRef(0, 0)}); });
  EXPECT_NE(grouped, ordered);
}

// ---------------------------------------------------------------------------
// Capacity edge cases.

TEST_F(StatementCacheTest, ZeroCapacityIsClampedToOne) {
  // Regression: capacity 0 used to evict the entry Insert() had just
  // added, so the cache could never hold anything.
  CompileTimeCache cache(/*capacity=*/0);
  EXPECT_EQ(cache.capacity(), 1u);
  QueryGraph a = Bind("SELECT * FROM orders o");
  cache.Insert(a, 1.5);
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.Lookup(a);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 1.5);
}

TEST_F(StatementCacheTest, CapacityOneReinsertStaysConsistent) {
  CompileTimeCache cache(/*capacity=*/1);
  QueryGraph a = Bind("SELECT * FROM orders o");
  QueryGraph b = Bind("SELECT * FROM lineitem l");
  for (int round = 0; round < 3; ++round) {
    cache.Insert(a, 1.0 + round);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_DOUBLE_EQ(*cache.Lookup(a), 1.0 + round);
  }
  cache.Insert(b, 9.0);  // evicts a
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.Lookup(a).has_value());
  EXPECT_DOUBLE_EQ(*cache.Lookup(b), 9.0);
}

TEST_F(StatementCacheTest, UselessForAdHocWorkload) {
  // The paper's motivation: ad-hoc queries never repeat, so the cache
  // cannot help — every distinct random query misses.
  CompileTimeCache cache;
  Workload w = RandomWorkload(10, 99);
  int hits = 0;
  for (const QueryGraph& q : w.queries) {
    if (cache.Lookup(q).has_value()) ++hits;
    cache.Insert(q, 0.1);
  }
  EXPECT_EQ(hits, 0);
}

// ---------------------------------------------------------------------------
// CacheStats: one coherent snapshot instead of racing two relaxed loads.

TEST_F(StatementCacheTest, StatsSnapshotIsCoherent) {
  CompileTimeCache cache(/*capacity=*/2);
  QueryGraph a = Bind("SELECT * FROM orders o");
  QueryGraph b = Bind("SELECT * FROM lineitem l");
  QueryGraph c = Bind("SELECT * FROM part p");
  EXPECT_FALSE(cache.Lookup(a).has_value());  // miss
  EXPECT_TRUE(cache.Insert(a, 0.1));
  EXPECT_TRUE(cache.Insert(b, 0.2));
  EXPECT_TRUE(cache.Lookup(a).has_value());   // hit
  EXPECT_TRUE(cache.Insert(c, 0.3));          // evicts LRU (b)

  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 3);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.admission_rejections, 0);
  EXPECT_EQ(stats.size, 2);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
  // The relaxed accessors agree in single-threaded use.
  EXPECT_EQ(stats.hits, cache.hits());
  EXPECT_EQ(stats.misses, cache.misses());
  EXPECT_FALSE(cache.Lookup(b).has_value());  // b was the eviction victim
}

// ---------------------------------------------------------------------------
// Injectable admission policy.

bool ThresholdPolicy(void* ctx, uint64_t /*signature*/, double cost_seconds) {
  return cost_seconds >= *static_cast<const double*>(ctx);
}

TEST_F(StatementCacheTest, AdmissionPolicyGatesNewEntriesOnly) {
  CompileTimeCache cache(/*capacity=*/4);
  double threshold = 1.0;
  cache.SetAdmissionPolicy(&ThresholdPolicy, &threshold);
  QueryGraph cheap = Bind("SELECT * FROM orders o");
  QueryGraph costly = Bind("SELECT * FROM lineitem l");

  EXPECT_FALSE(cache.Insert(cheap, 0.5));  // below threshold: rejected
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.Insert(costly, 2.0));  // clears it

  // Refreshing an existing entry never consults the policy, even with a
  // now-below-threshold cost: the entry already earned its slot.
  EXPECT_TRUE(cache.Insert(costly, 0.1));
  EXPECT_DOUBLE_EQ(*cache.Lookup(costly), 0.1);

  // The separate admission-cost channel: cache the measured seconds while
  // gating on a different (predicted) quantity.
  EXPECT_TRUE(cache.Insert(cheap, 0.5, /*admission_cost_seconds=*/3.0));
  EXPECT_DOUBLE_EQ(*cache.Lookup(cheap), 0.5);

  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.admission_rejections, 1);
  EXPECT_EQ(stats.insertions, 2);

  // Clearing the policy re-admits everything.
  cache.SetAdmissionPolicy(nullptr, nullptr);
  QueryGraph other = Bind("SELECT * FROM part p");
  EXPECT_TRUE(cache.Insert(other, 0.001));
}

TEST_F(StatementCacheTest, ThresholdEdgeCases) {
  QueryGraph q = Bind("SELECT * FROM orders o");
  // Threshold 0 admits everything (cost 0 included: >= 0 holds).
  {
    CompileTimeCache cache;
    double threshold = 0;
    cache.SetAdmissionPolicy(&ThresholdPolicy, &threshold);
    EXPECT_TRUE(cache.Insert(q, 0.0));
  }
  // A huge threshold admits nothing, ever.
  {
    CompileTimeCache cache;
    double threshold = 1e18;
    cache.SetAdmissionPolicy(&ThresholdPolicy, &threshold);
    EXPECT_FALSE(cache.Insert(q, 1e12));
    EXPECT_EQ(cache.Stats().admission_rejections, 1);
    EXPECT_EQ(cache.size(), 0u);
  }
}

// ---------------------------------------------------------------------------
// The regression the service's cache threshold exists for: on a stream
// where cheap ad-hoc churn interleaves with a hot set of expensive
// statements, plain LRU thrashes — every access evicts what the next
// round needed — while estimate-gated admission keeps the hot set
// resident.

TEST_F(StatementCacheTest, EstimateGatedAdmissionBeatsPlainLruUnderThrash) {
  Workload linear = LinearWorkload();
  // Hot set: four property-rich 10-table chains (expensive to compile —
  // not queries[10], whose single-predicate edges carry no interesting
  // orders and estimate cheaper than a property-rich 6-table chain).
  // Churn: four 6-table chains standing in for cheap ad-hoc traffic.
  std::vector<const QueryGraph*> hot = {
      &linear.queries[11], &linear.queries[12], &linear.queries[13],
      &linear.queries[14]};
  std::vector<const QueryGraph*> churn = {
      &linear.queries[0], &linear.queries[1], &linear.queries[2],
      &linear.queries[3]};

  // Estimated compile seconds via the COTE with synthetic per-plan
  // coefficients — the quantity the service's admission gate sees.
  TimeModel model;
  model.ct[0] = 2e-6;
  model.ct[1] = 1e-6;
  model.ct[2] = 1.5e-6;
  CompilationSession session;
  auto estimate = [&](const QueryGraph& q) {
    return session.Estimate(q, model).estimated_seconds;
  };
  double min_hot = 1e30, max_churn = 0;
  std::vector<double> hot_cost, churn_cost;
  for (const QueryGraph* q : hot) {
    hot_cost.push_back(estimate(*q));
    min_hot = std::min(min_hot, hot_cost.back());
  }
  for (const QueryGraph* q : churn) {
    churn_cost.push_back(estimate(*q));
    max_churn = std::max(max_churn, churn_cost.back());
  }
  // The premise the threshold exploits: the estimator separates the two
  // populations.
  ASSERT_GT(min_hot, max_churn);
  double threshold = (min_hot + max_churn) / 2;

  // Same stream against both caches: rounds of hot set then churn burst,
  // capacity exactly the hot-set size.
  auto run_stream = [&](CompileTimeCache* cache) {
    for (int round = 0; round < 6; ++round) {
      for (size_t i = 0; i < hot.size(); ++i) {
        if (!cache->Lookup(*hot[i]).has_value()) {
          cache->Insert(*hot[i], hot_cost[i]);
        }
      }
      for (size_t i = 0; i < churn.size(); ++i) {
        if (!cache->Lookup(*churn[i]).has_value()) {
          cache->Insert(*churn[i], churn_cost[i]);
        }
      }
    }
  };

  CompileTimeCache plain(/*capacity=*/4);
  run_stream(&plain);

  CompileTimeCache gated(/*capacity=*/4);
  gated.SetAdmissionPolicy(&ThresholdPolicy, &threshold);
  run_stream(&gated);

  CacheStats plain_stats = plain.Stats();
  CacheStats gated_stats = gated.Stats();
  // Plain LRU: 8 distinct statements cycle through 4 slots — by the time
  // a hot statement comes back, churn has evicted it. Zero hits.
  EXPECT_EQ(plain_stats.hits, 0);
  // Gated: churn never earns a slot, so the hot set stays resident and
  // hits on every round after the first.
  EXPECT_EQ(gated_stats.hits, 4 * 5);
  EXPECT_EQ(gated_stats.admission_rejections, 4 * 6);
  EXPECT_GT(gated_stats.HitRate(), plain_stats.HitRate());
}

}  // namespace
}  // namespace cote
