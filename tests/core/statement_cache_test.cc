#include "core/statement_cache.h"

#include <gtest/gtest.h>

#include "parser/binder.h"
#include "workload/workload.h"

namespace cote {
namespace {

class StatementCacheTest : public ::testing::Test {
 protected:
  StatementCacheTest() : catalog_(MakeTpchCatalog()) {}

  QueryGraph Bind(const std::string& sql) {
    auto g = Binder::BindSql(*catalog_, sql);
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    return std::move(g).value();
  }

  std::shared_ptr<Catalog> catalog_;
};

TEST_F(StatementCacheTest, HitOnIdenticalStatement) {
  CompileTimeCache cache;
  QueryGraph q = Bind(
      "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey");
  EXPECT_FALSE(cache.Lookup(q).has_value());
  cache.Insert(q, 0.42);
  auto hit = cache.Lookup(q);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 0.42);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST_F(StatementCacheTest, LiteralsWithEqualSelectivityShareSignature) {
  // Statements whose compilations see identical inputs share an entry
  // (§1.2's cache works for parameterized reuse). LIKE predicates carry a
  // fixed 1/10 selectivity regardless of the pattern, so only the literal
  // text differs — and literal text is not part of the signature.
  QueryGraph a = Bind("SELECT * FROM orders o WHERE o.o_clerk LIKE 'a%'");
  QueryGraph b = Bind("SELECT * FROM orders o WHERE o.o_clerk LIKE 'b%'");
  ASSERT_DOUBLE_EQ(a.local_predicates()[0].selectivity,
                   b.local_predicates()[0].selectivity);
  EXPECT_EQ(CompileTimeCache::Signature(a), CompileTimeCache::Signature(b));
}

TEST_F(StatementCacheTest, RangeLiteralsChangeSelectivityAndSignature) {
  // Regression: the binder derives a different selectivity from each range
  // literal, and the optimizer costs plans with it — the old signature
  // ignored selectivity, so these two collided and the cache returned a
  // stale compile time for whichever was compiled second.
  QueryGraph a = Bind("SELECT * FROM orders o WHERE o.o_orderdate > 5");
  QueryGraph b = Bind("SELECT * FROM orders o WHERE o.o_orderdate > 99");
  ASSERT_NE(a.local_predicates()[0].selectivity,
            b.local_predicates()[0].selectivity);
  EXPECT_NE(CompileTimeCache::Signature(a), CompileTimeCache::Signature(b));
}

TEST_F(StatementCacheTest, StructuralChangesChangeSignature) {
  QueryGraph base = Bind(
      "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey");
  QueryGraph extra_table = Bind(
      "SELECT * FROM orders o, lineitem l, customer c "
      "WHERE o.o_orderkey = l.l_orderkey AND c.c_custkey = o.o_custkey");
  QueryGraph with_order = Bind(
      "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey "
      "ORDER BY o.o_orderdate");
  QueryGraph with_limit = Bind(
      "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey "
      "LIMIT 5");
  uint64_t s0 = CompileTimeCache::Signature(base);
  EXPECT_NE(s0, CompileTimeCache::Signature(extra_table));
  EXPECT_NE(s0, CompileTimeCache::Signature(with_order));
  EXPECT_NE(s0, CompileTimeCache::Signature(with_limit));
}

TEST_F(StatementCacheTest, LruEviction) {
  CompileTimeCache cache(/*capacity=*/2);
  QueryGraph a = Bind("SELECT * FROM orders o");
  QueryGraph b = Bind("SELECT * FROM lineitem l");
  QueryGraph c = Bind("SELECT * FROM customer c");
  cache.Insert(a, 1);
  cache.Insert(b, 2);
  EXPECT_TRUE(cache.Lookup(a).has_value());  // refreshes a
  cache.Insert(c, 3);                        // evicts b (LRU)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(a).has_value());
  EXPECT_FALSE(cache.Lookup(b).has_value());
  EXPECT_TRUE(cache.Lookup(c).has_value());
}

TEST_F(StatementCacheTest, InsertUpdatesExisting) {
  CompileTimeCache cache;
  QueryGraph a = Bind("SELECT * FROM orders o");
  cache.Insert(a, 1.0);
  cache.Insert(a, 2.0);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(*cache.Lookup(a), 2.0);
}

// ---------------------------------------------------------------------------
// Signature collision regressions. These graphs are built directly (not
// through the binder) so a single field can be varied in isolation; each
// pair collided under the pre-fix Signature.

class SignatureCollisionTest : public ::testing::Test {
 protected:
  SignatureCollisionTest() : catalog_(MakeSyntheticCatalog(2)) {}

  /// T0 join T1 on c0 with one local predicate on t0.c1; the callback
  /// tweaks one field of the otherwise-identical query before the
  /// predicates are installed and the signature is taken.
  template <typename Tweak>
  uint64_t SignatureOf(const Tweak& tweak) {
    QueryGraph g;
    g.AddTableRef(catalog_->FindTable("T0"), "t0");
    g.AddTableRef(catalog_->FindTable("T1"), "t1");
    JoinPredicate jp;
    jp.left = ColumnRef(0, 0);
    jp.right = ColumnRef(1, 0);
    jp.selectivity = 0.1;
    LocalPredicate lp;
    lp.column = ColumnRef(0, 1);
    lp.selectivity = 0.1;
    tweak(&g, &jp, &lp);
    g.AddJoinPredicate(jp);
    g.AddLocalPredicate(lp);
    return CompileTimeCache::Signature(g);
  }

  std::shared_ptr<Catalog> catalog_;
};

using G = QueryGraph;
using JP = JoinPredicate;
using LP = LocalPredicate;

TEST_F(SignatureCollisionTest, JoinSelectivityChangesSignature) {
  uint64_t base = SignatureOf([](G*, JP*, LP*) {});
  uint64_t tweaked =
      SignatureOf([](G*, JP* jp, LP*) { jp->selectivity = 0.25; });
  EXPECT_NE(base, tweaked);
}

TEST_F(SignatureCollisionTest, DerivedFlagChangesSignature) {
  uint64_t base = SignatureOf([](G*, JP*, LP*) {});
  uint64_t tweaked = SignatureOf([](G*, JP* jp, LP*) { jp->derived = true; });
  EXPECT_NE(base, tweaked);
}

TEST_F(SignatureCollisionTest, LocalSelectivityChangesSignature) {
  uint64_t base = SignatureOf([](G*, JP*, LP*) {});
  uint64_t tweaked =
      SignatureOf([](G*, JP*, LP* lp) { lp->selectivity = 0.9; });
  EXPECT_NE(base, tweaked);
}

TEST_F(SignatureCollisionTest, SectionBoundaryShiftChangesSignature) {
  // t0.c0 encodes to 0, so its GROUP BY mix (0 * 2654435761) and ORDER BY
  // mix (0 * 40503) produced the same value in the same sequence position
  // under the pre-fix hash: GROUP BY t0.c0 and ORDER BY t0.c0 collided.
  // The per-section length delimiters tell them apart.
  uint64_t grouped = SignatureOf(
      [](G* g, JP*, LP*) { g->SetGroupBy({ColumnRef(0, 0)}); });
  uint64_t ordered = SignatureOf(
      [](G* g, JP*, LP*) { g->SetOrderBy({ColumnRef(0, 0)}); });
  EXPECT_NE(grouped, ordered);
}

// ---------------------------------------------------------------------------
// Capacity edge cases.

TEST_F(StatementCacheTest, ZeroCapacityIsClampedToOne) {
  // Regression: capacity 0 used to evict the entry Insert() had just
  // added, so the cache could never hold anything.
  CompileTimeCache cache(/*capacity=*/0);
  EXPECT_EQ(cache.capacity(), 1u);
  QueryGraph a = Bind("SELECT * FROM orders o");
  cache.Insert(a, 1.5);
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.Lookup(a);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 1.5);
}

TEST_F(StatementCacheTest, CapacityOneReinsertStaysConsistent) {
  CompileTimeCache cache(/*capacity=*/1);
  QueryGraph a = Bind("SELECT * FROM orders o");
  QueryGraph b = Bind("SELECT * FROM lineitem l");
  for (int round = 0; round < 3; ++round) {
    cache.Insert(a, 1.0 + round);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_DOUBLE_EQ(*cache.Lookup(a), 1.0 + round);
  }
  cache.Insert(b, 9.0);  // evicts a
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.Lookup(a).has_value());
  EXPECT_DOUBLE_EQ(*cache.Lookup(b), 9.0);
}

TEST_F(StatementCacheTest, UselessForAdHocWorkload) {
  // The paper's motivation: ad-hoc queries never repeat, so the cache
  // cannot help — every distinct random query misses.
  CompileTimeCache cache;
  Workload w = RandomWorkload(10, 99);
  int hits = 0;
  for (const QueryGraph& q : w.queries) {
    if (cache.Lookup(q).has_value()) ++hits;
    cache.Insert(q, 0.1);
  }
  EXPECT_EQ(hits, 0);
}

}  // namespace
}  // namespace cote
