#include "core/statement_cache.h"

#include <gtest/gtest.h>

#include "parser/binder.h"
#include "workload/workload.h"

namespace cote {
namespace {

class StatementCacheTest : public ::testing::Test {
 protected:
  StatementCacheTest() : catalog_(MakeTpchCatalog()) {}

  QueryGraph Bind(const std::string& sql) {
    auto g = Binder::BindSql(*catalog_, sql);
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    return std::move(g).value();
  }

  std::shared_ptr<Catalog> catalog_;
};

TEST_F(StatementCacheTest, HitOnIdenticalStatement) {
  CompileTimeCache cache;
  QueryGraph q = Bind(
      "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey");
  EXPECT_FALSE(cache.Lookup(q).has_value());
  cache.Insert(q, 0.42);
  auto hit = cache.Lookup(q);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 0.42);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST_F(StatementCacheTest, LiteralsDoNotChangeSignature) {
  // Same statement shape with different constants compiles identically:
  // the signature must match (§1.2's cache works for parameterized reuse).
  QueryGraph a = Bind("SELECT * FROM orders o WHERE o.o_orderdate > 5");
  QueryGraph b = Bind("SELECT * FROM orders o WHERE o.o_orderdate > 99");
  EXPECT_EQ(CompileTimeCache::Signature(a), CompileTimeCache::Signature(b));
}

TEST_F(StatementCacheTest, StructuralChangesChangeSignature) {
  QueryGraph base = Bind(
      "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey");
  QueryGraph extra_table = Bind(
      "SELECT * FROM orders o, lineitem l, customer c "
      "WHERE o.o_orderkey = l.l_orderkey AND c.c_custkey = o.o_custkey");
  QueryGraph with_order = Bind(
      "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey "
      "ORDER BY o.o_orderdate");
  QueryGraph with_limit = Bind(
      "SELECT * FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey "
      "LIMIT 5");
  uint64_t s0 = CompileTimeCache::Signature(base);
  EXPECT_NE(s0, CompileTimeCache::Signature(extra_table));
  EXPECT_NE(s0, CompileTimeCache::Signature(with_order));
  EXPECT_NE(s0, CompileTimeCache::Signature(with_limit));
}

TEST_F(StatementCacheTest, LruEviction) {
  CompileTimeCache cache(/*capacity=*/2);
  QueryGraph a = Bind("SELECT * FROM orders o");
  QueryGraph b = Bind("SELECT * FROM lineitem l");
  QueryGraph c = Bind("SELECT * FROM customer c");
  cache.Insert(a, 1);
  cache.Insert(b, 2);
  EXPECT_TRUE(cache.Lookup(a).has_value());  // refreshes a
  cache.Insert(c, 3);                        // evicts b (LRU)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(a).has_value());
  EXPECT_FALSE(cache.Lookup(b).has_value());
  EXPECT_TRUE(cache.Lookup(c).has_value());
}

TEST_F(StatementCacheTest, InsertUpdatesExisting) {
  CompileTimeCache cache;
  QueryGraph a = Bind("SELECT * FROM orders o");
  cache.Insert(a, 1.0);
  cache.Insert(a, 2.0);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(*cache.Lookup(a), 2.0);
}

TEST_F(StatementCacheTest, UselessForAdHocWorkload) {
  // The paper's motivation: ad-hoc queries never repeat, so the cache
  // cannot help — every distinct random query misses.
  CompileTimeCache cache;
  Workload w = RandomWorkload(10, 99);
  int hits = 0;
  for (const QueryGraph& q : w.queries) {
    if (cache.Lookup(q).has_value()) ++hits;
    cache.Insert(q, 0.1);
  }
  EXPECT_EQ(hits, 0);
}

}  // namespace
}  // namespace cote
