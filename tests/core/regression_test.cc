#include "core/regression.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace cote {
namespace {

TEST(LeastSquaresTest, ExactFit) {
  // y = 2a + 3b
  std::vector<std::vector<double>> x{{1, 0}, {0, 1}, {1, 1}, {2, 1}};
  std::vector<double> y{2, 3, 5, 7};
  auto c = LeastSquares(x, y);
  ASSERT_TRUE(c.ok());
  EXPECT_NEAR((*c)[0], 2.0, 1e-9);
  EXPECT_NEAR((*c)[1], 3.0, 1e-9);
}

TEST(LeastSquaresTest, OverdeterminedNoisy) {
  Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    double a = rng.NextDouble() * 10, b = rng.NextDouble() * 10;
    x.push_back({a, b, 1.0});
    y.push_back(4 * a + 0.5 * b + 2 + (rng.NextDouble() - 0.5) * 0.01);
  }
  auto c = LeastSquares(x, y);
  ASSERT_TRUE(c.ok());
  EXPECT_NEAR((*c)[0], 4.0, 0.01);
  EXPECT_NEAR((*c)[1], 0.5, 0.01);
  EXPECT_NEAR((*c)[2], 2.0, 0.05);
}

TEST(LeastSquaresTest, Degenerate) {
  EXPECT_FALSE(LeastSquares({}, {}).ok());
  EXPECT_FALSE(LeastSquares({{1, 2}}, {1}).ok());  // fewer rows than cols
  // Rank deficiency: identical columns.
  std::vector<std::vector<double>> x{{1, 1}, {2, 2}, {3, 3}};
  EXPECT_FALSE(LeastSquares(x, {1, 2, 3}).ok());
  // Ragged matrix.
  EXPECT_FALSE(LeastSquares({{1, 2}, {1}}, {1, 2}).ok());
}

JoinTypeCounts Counts(int64_t n, int64_t m, int64_t h) {
  JoinTypeCounts c;
  c[JoinMethod::kNljn] = n;
  c[JoinMethod::kMgjn] = m;
  c[JoinMethod::kHsjn] = h;
  return c;
}

TEST(TimeModelCalibratorTest, RecoversPlantedCoefficients) {
  // Planted model: T = 2e-6*Pn + 5e-6*Pm + 4e-6*Ph + 1e-3.
  TimeModelCalibrator cal;
  Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    int64_t n = 100 + static_cast<int64_t>(rng.Uniform(5000));
    int64_t m = 50 + static_cast<int64_t>(rng.Uniform(3000));
    int64_t h = 20 + static_cast<int64_t>(rng.Uniform(1000));
    double t = 2e-6 * n + 5e-6 * m + 4e-6 * h + 1e-3;
    cal.AddObservation(Counts(n, m, h), t);
  }
  auto model = cal.Fit();
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->ct[static_cast<int>(JoinMethod::kNljn)], 2e-6, 1e-8);
  EXPECT_NEAR(model->ct[static_cast<int>(JoinMethod::kMgjn)], 5e-6, 1e-8);
  EXPECT_NEAR(model->ct[static_cast<int>(JoinMethod::kHsjn)], 4e-6, 1e-8);
  EXPECT_NEAR(model->intercept, 1e-3, 1e-5);
  // Paper-style ratio string: Cm : Cn : Ch normalized by the smallest.
  EXPECT_EQ(model->RatioString(), "2.5 : 1.0 : 2.0");
}

TEST(TimeModelCalibratorTest, NegativeCoefficientsClampedToZero) {
  // Make HSJN counts anti-correlated with time: its coefficient would come
  // out negative and must be dropped.
  TimeModelCalibrator cal(/*with_intercept=*/false);
  Rng rng(11);
  for (int i = 0; i < 40; ++i) {
    int64_t n = 100 + static_cast<int64_t>(rng.Uniform(5000));
    int64_t m = 50 + static_cast<int64_t>(rng.Uniform(3000));
    int64_t h = 6000 - n / 2;
    double t = 2e-6 * n + 5e-6 * m;  // h contributes nothing
    cal.AddObservation(Counts(n, m, h), t);
  }
  auto model = cal.Fit();
  ASSERT_TRUE(model.ok());
  for (int i = 0; i < kNumJoinMethods; ++i) {
    EXPECT_GE(model->ct[i], 0.0);
  }
}

TEST(TimeModelCalibratorTest, RelativeWeightingRecoversCoefficients) {
  // With observations spanning 4 orders of magnitude, relative weighting
  // must still recover an exact planted model...
  TimeModelCalibrator cal(/*with_intercept=*/false,
                          /*relative_weighting=*/true);
  Rng rng(13);
  for (int i = 0; i < 40; ++i) {
    double scale = std::pow(10.0, static_cast<double>(rng.Uniform(5)));
    int64_t n = static_cast<int64_t>((1 + rng.Uniform(9)) * scale);
    int64_t m = static_cast<int64_t>((1 + rng.Uniform(9)) * scale);
    int64_t h = static_cast<int64_t>((1 + rng.Uniform(9)) * scale);
    cal.AddObservation(Counts(n, m, h), 2e-6 * n + 5e-6 * m + 4e-6 * h);
  }
  auto model = cal.Fit();
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->ct[static_cast<int>(JoinMethod::kNljn)], 2e-6, 1e-9);
  EXPECT_NEAR(model->ct[static_cast<int>(JoinMethod::kMgjn)], 5e-6, 1e-9);
  EXPECT_NEAR(model->ct[static_cast<int>(JoinMethod::kHsjn)], 4e-6, 1e-9);
}

TEST(TimeModelCalibratorTest, RelativeWeightingBalancesScales) {
  // ...and, on a noisy mixed-scale set, must not let the huge queries
  // dominate: small-query relative error should stay bounded.
  auto make = [](bool weighted) {
    TimeModelCalibrator cal(false, weighted);
    Rng rng(17);
    for (int i = 0; i < 60; ++i) {
      bool big = i % 2 == 0;
      double scale = big ? 1e5 : 10;
      int64_t n = static_cast<int64_t>((1 + rng.Uniform(9)) * scale);
      int64_t m = static_cast<int64_t>((1 + rng.Uniform(9)) * scale);
      int64_t h = static_cast<int64_t>((1 + rng.Uniform(9)) * scale);
      // Big queries have a 30% higher per-plan cost (systematic skew).
      double f = big ? 1.3 : 1.0;
      cal.AddObservation(Counts(n, m, h),
                         f * (2e-6 * n + 5e-6 * m + 4e-6 * h));
    }
    return cal.Fit();
  };
  auto weighted = make(true);
  auto unweighted = make(false);
  ASSERT_TRUE(weighted.ok());
  ASSERT_TRUE(unweighted.ok());
  // Evaluate relative error on a small query.
  JoinTypeCounts small = Counts(20, 20, 20);
  double truth = 2e-6 * 20 + 5e-6 * 20 + 4e-6 * 20;
  double werr = std::abs(weighted->EstimateSeconds(small) - truth) / truth;
  double uerr = std::abs(unweighted->EstimateSeconds(small) - truth) / truth;
  EXPECT_LT(werr, uerr + 1e-12);
}

TEST(TimeModelCalibratorTest, NeedsEnoughObservations) {
  TimeModelCalibrator cal;
  cal.AddObservation(Counts(1, 1, 1), 1.0);
  EXPECT_FALSE(cal.Fit().ok());
  EXPECT_EQ(cal.num_observations(), 1);
}

TEST(TimeModelTest, EstimateSeconds) {
  TimeModel model;
  model.ct[0] = 1e-6;
  model.ct[1] = 2e-6;
  model.ct[2] = 3e-6;
  model.intercept = 0.5;
  EXPECT_NEAR(model.EstimateSeconds(Counts(1000, 1000, 1000)),
              0.5 + 6e-3, 1e-12);
  EXPECT_EQ(TimeModel{}.EstimateSeconds(Counts(5, 5, 5)), 0.0);
}

TEST(TimeModelTest, RatioStringWithZeros) {
  TimeModel model;  // all zero
  EXPECT_EQ(model.RatioString(), "0 : 0 : 0");
}

}  // namespace
}  // namespace cote
