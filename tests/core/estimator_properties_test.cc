// Property sweeps over the estimator's structural invariants: estimates
// must respond monotonically to anything that can only grow the search
// space (more tables, more permissive inner limits, more interesting
// properties), and must be exactly reproducible.

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "query/query_builder.h"
#include "workload/workload.h"

namespace cote {
namespace {

class EstimatorPropertiesTest : public ::testing::TestWithParam<int> {
 protected:
  EstimatorPropertiesTest() : catalog_(MakeSyntheticCatalog(10)) {}

  QueryGraph Chain(int n, int order_cols = 0) {
    QueryBuilder qb(*catalog_);
    for (int i = 0; i < n; ++i) {
      qb.AddTable("T" + std::to_string(i), "t" + std::to_string(i));
    }
    for (int i = 0; i + 1 < n; ++i) {
      qb.Join("t" + std::to_string(i), "c1", "t" + std::to_string(i + 1),
              "c1");
    }
    std::vector<std::pair<std::string, std::string>> ob;
    const char* cols[] = {"c5", "c6", "c7"};
    for (int i = 0; i < order_cols; ++i) ob.emplace_back("t0", cols[i]);
    if (!ob.empty()) qb.OrderBy(ob);
    auto g = qb.Build();
    EXPECT_TRUE(g.ok());
    return std::move(g).value();
  }

  JoinTypeCounts Estimate(const QueryGraph& g, int inner_limit = 64,
                          bool parallel = false) {
    OptimizerOptions o = parallel ? OptimizerOptions::Parallel(4)
                                  : OptimizerOptions{};
    o.enumeration.max_composite_inner = inner_limit;
    TimeModel flat;
    CompileTimeEstimator cote(flat, o);
    return cote.Estimate(g).plan_estimates;
  }

  std::shared_ptr<Catalog> catalog_;
};

TEST_P(EstimatorPropertiesTest, MonotoneInTableCount) {
  int n = GetParam();
  if (n < 3) return;
  JoinTypeCounts smaller = Estimate(Chain(n - 1));
  JoinTypeCounts larger = Estimate(Chain(n));
  for (int m = 0; m < kNumJoinMethods; ++m) {
    EXPECT_GE(larger.counts[m], smaller.counts[m]) << "n=" << n;
  }
}

TEST_P(EstimatorPropertiesTest, MonotoneInInnerLimit) {
  int n = GetParam();
  QueryGraph g = Chain(n);
  int64_t prev = 0;
  for (int limit : {1, 2, 3, 64}) {
    int64_t total = Estimate(g, limit).total();
    EXPECT_GE(total, prev) << "n=" << n << " limit=" << limit;
    prev = total;
  }
}

TEST_P(EstimatorPropertiesTest, MonotoneInOrderByWidth) {
  int n = GetParam();
  int64_t prev = 0;
  for (int ob = 0; ob <= 3; ++ob) {
    int64_t total = Estimate(Chain(n, ob)).total();
    EXPECT_GE(total, prev) << "n=" << n << " order_cols=" << ob;
    prev = total;
  }
}

TEST_P(EstimatorPropertiesTest, ParallelAtLeastSerial) {
  int n = GetParam();
  QueryGraph g = Chain(n, 1);
  EXPECT_GE(Estimate(g, 64, true).total(), Estimate(g, 64, false).total());
}

TEST_P(EstimatorPropertiesTest, ExactlyReproducible) {
  int n = GetParam();
  QueryGraph g = Chain(n, 2);
  JoinTypeCounts a = Estimate(g);
  JoinTypeCounts b = Estimate(g);
  for (int m = 0; m < kNumJoinMethods; ++m) {
    EXPECT_EQ(a.counts[m], b.counts[m]);
  }
}

INSTANTIATE_TEST_SUITE_P(ChainSizes, EstimatorPropertiesTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8));

TEST(EstimatorPropertiesSingle, RandomSeedsSweepSerialHsjnExact) {
  // Across arbitrary generated queries, the serial HSJN estimate stays
  // exact whenever estimate-mode and normal-mode enumerate the same joins
  // (it may differ only via the cardinality-heuristic divergence, §5.2).
  TimeModel flat;
  OptimizerOptions o;
  o.enumeration.max_composite_inner = 2;
  CompileTimeEstimator cote(flat, o);
  Optimizer opt(o);
  for (uint64_t seed : {1u, 22u, 333u}) {
    Workload w = RandomWorkload(4, seed);
    for (int i = 0; i < w.size(); ++i) {
      auto r = opt.Optimize(w.queries[i]);
      ASSERT_TRUE(r.ok());
      CompileTimeEstimate est = cote.Estimate(w.queries[i]);
      if (est.enumeration.joins_ordered ==
          r->stats.enumeration.joins_ordered) {
        EXPECT_EQ(est.plan_estimates.hsjn(),
                  r->stats.join_plans_generated.hsjn())
            << "seed=" << seed << " " << w.labels[i];
      }
    }
  }
}

}  // namespace
}  // namespace cote
