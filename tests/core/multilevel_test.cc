#include "core/multilevel.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/estimator.h"
#include "workload/workload.h"

namespace cote {
namespace {

TimeModel FlatModel() {
  TimeModel m;
  m.ct[0] = m.ct[1] = m.ct[2] = 1e-6;
  return m;
}

TEST(MultiLevelTest, LevelsAreMonotone) {
  Workload w = LinearWorkload();
  MultiLevelEstimator ml(FlatModel(), OptimizerOptions{}, {1, 2, 64});
  for (int qi : {4, 9, 14}) {  // the largest query of each batch
    auto result = ml.Estimate(w.queries[qi]);
    ASSERT_EQ(result.levels.size(), 3u);
    // More permissive levels enumerate at least as many joins and plans.
    for (size_t i = 1; i < result.levels.size(); ++i) {
      EXPECT_GE(result.levels[i].joins_ordered,
                result.levels[i - 1].joins_ordered);
      EXPECT_GE(result.levels[i].plan_estimates.total(),
                result.levels[i - 1].plan_estimates.total());
      EXPECT_GE(result.levels[i].estimated_seconds,
                result.levels[i - 1].estimated_seconds);
    }
  }
}

TEST(MultiLevelTest, PiggybackMatchesDedicatedPasses) {
  // §6.2: one shared pass must reproduce what per-level estimation finds.
  Workload w = LinearWorkload();
  const QueryGraph& q = w.queries[7];
  MultiLevelEstimator ml(FlatModel(), OptimizerOptions{}, {1, 3, 64});
  auto shared = ml.Estimate(q);

  for (const auto& level : shared.levels) {
    OptimizerOptions opt;
    opt.enumeration.max_composite_inner = level.inner_limit;
    CompileTimeEstimator dedicated(FlatModel(), opt);
    CompileTimeEstimate est = dedicated.Estimate(q);
    for (int m = 0; m < kNumJoinMethods; ++m) {
      EXPECT_EQ(level.plan_estimates.counts[m],
                est.plan_estimates.counts[m])
          << "limit=" << level.inner_limit << " method=" << m;
    }
  }
}

TEST(MultiLevelTest, SharedPassCheaperThanSeparatePasses) {
  Workload w = StarWorkload();
  const QueryGraph& q = w.queries[14];  // 10-table star
  MultiLevelEstimator ml(FlatModel(), OptimizerOptions{}, {1, 2, 3, 64});

  // Wall-clock comparison: take the best of three for each side to shake
  // off scheduler noise, and allow generous slack — the structural claim
  // (estimates identical to dedicated passes) is asserted elsewhere.
  double shared_time = 1e18, separate_time = 1e18;
  MultiLevelEstimator::Result shared;
  for (int rep = 0; rep < 3; ++rep) {
    StopWatch shared_watch;
    shared = ml.Estimate(q);
    shared_time = std::min(shared_time, shared_watch.ElapsedSeconds());

    StopWatch separate_watch;
    for (int limit : {1, 2, 3, 64}) {
      OptimizerOptions opt;
      opt.enumeration.max_composite_inner = limit;
      CompileTimeEstimator dedicated(FlatModel(), opt);
      dedicated.Estimate(q);
    }
    separate_time = std::min(separate_time, separate_watch.ElapsedSeconds());
  }
  EXPECT_LT(shared_time, separate_time * 1.5);
  EXPECT_GT(shared.estimation_seconds, 0);
}

TEST(MultiLevelTest, TopLevelMatchesSingleEstimator) {
  Workload w = LinearWorkload();
  const QueryGraph& q = w.queries[3];
  MultiLevelEstimator ml(FlatModel(), OptimizerOptions{}, {64});
  auto result = ml.Estimate(q);
  CompileTimeEstimator single(FlatModel(), OptimizerOptions{});
  CompileTimeEstimate est = single.Estimate(q);
  EXPECT_EQ(result.levels[0].plan_estimates.total(),
            est.plan_estimates.total());
}

}  // namespace
}  // namespace cote
