#include "core/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace cote {
namespace {

TimeModel Sample() {
  TimeModel m;
  m.ct[0] = 1.23456789e-6;
  m.ct[1] = 9.87654321e-6;
  m.ct[2] = 4.2e-7;
  m.intercept = 3.14159e-4;
  return m;
}

TEST(ModelIoTest, StringRoundTripExact) {
  TimeModel m = Sample();
  auto back = TimeModelFromString(TimeModelToString(m));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  for (int i = 0; i < kNumJoinMethods; ++i) {
    EXPECT_DOUBLE_EQ(back->ct[i], m.ct[i]);
  }
  EXPECT_DOUBLE_EQ(back->intercept, m.intercept);
}

TEST(ModelIoTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/cote_model_test.txt";
  TimeModel m = Sample();
  ASSERT_TRUE(SaveTimeModel(path, m).ok());
  auto back = LoadTimeModel(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  for (int i = 0; i < kNumJoinMethods; ++i) {
    EXPECT_DOUBLE_EQ(back->ct[i], m.ct[i]);
  }
  std::remove(path.c_str());
}

TEST(ModelIoTest, RejectsBadInput) {
  EXPECT_FALSE(TimeModelFromString("").ok());
  EXPECT_FALSE(TimeModelFromString("not a model\n").ok());
  EXPECT_FALSE(
      TimeModelFromString("cote-time-model v1\nnljn 0x1p-20\n").ok());
  EXPECT_FALSE(TimeModelFromString(
                   "cote-time-model v1\nnljn 0x1p-20\nmgjn 0x1p-20\n"
                   "hsjn 0x1p-20\nintercept 0x0p+0\nbogus 1\n")
                   .ok());
  EXPECT_FALSE(TimeModelFromString("cote-time-model v1\nnljn\n").ok());
}

TEST(ModelIoTest, LoadMissingFile) {
  EXPECT_EQ(LoadTimeModel("/nonexistent/dir/model.txt").status().code(),
            StatusCode::kNotFound);
}

TEST(ModelIoTest, ZeroModelRoundTrips) {
  auto back = TimeModelFromString(TimeModelToString(TimeModel{}));
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back->EstimateSeconds(JoinTypeCounts{}), 0.0);
}

}  // namespace
}  // namespace cote
