#include "core/meta_optimizer.h"

#include <gtest/gtest.h>

#include "core/memory_estimator.h"
#include "core/regression.h"
#include "workload/workload.h"

namespace cote {
namespace {

TimeModel CalibratedModel() {
  Optimizer opt;
  TimeModelCalibrator cal;
  Workload training = TrainingWorkload();
  for (const QueryGraph& q : training.queries) {
    auto r = opt.Optimize(q);
    EXPECT_TRUE(r.ok());
    cal.AddObservation(r->stats);
  }
  auto model = cal.Fit();
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

TEST(MetaOptimizerTest, ReoptimizesWhenExecutionDwarfsCompilation) {
  // Expensive queries (huge scans, seconds of estimated execution) easily
  // justify a few ms of high-level optimization.
  MetaOptimizerOptions opt;
  opt.time_model = CalibratedModel();
  MetaOptimizer mop(opt);

  Workload w = LinearWorkload();
  auto r = mop.Compile(w.queries[0]);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->reoptimized);
  EXPECT_GT(r->low_exec_seconds, r->est_high_compile_seconds);
  EXPECT_NE(r->chosen.best_plan, nullptr);
}

TEST(MetaOptimizerTest, KeepsLowPlanWhenCompilationDominates) {
  // Force the decision the other way with a huge threshold-free compile
  // estimate: a time model with absurd per-plan cost.
  MetaOptimizerOptions opt;
  opt.time_model.ct[0] = opt.time_model.ct[1] = opt.time_model.ct[2] = 1e3;
  MetaOptimizer mop(opt);

  Workload w = LinearWorkload();
  auto r = mop.Compile(w.queries[0]);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->reoptimized);
  EXPECT_NE(r->chosen.best_plan, nullptr);
  EXPECT_GT(r->est_high_compile_seconds, r->low_exec_seconds);
}

TEST(MetaOptimizerTest, ThresholdShiftsDecision) {
  MetaOptimizerOptions opt;
  opt.time_model = CalibratedModel();
  Workload w = LinearWorkload();

  // Find the E/C ratio of a query, then set thresholds on each side of it.
  MetaOptimizer probe(opt);
  auto r = probe.Compile(w.queries[5]);
  ASSERT_TRUE(r.ok());
  double ratio = r->est_high_compile_seconds / r->low_exec_seconds;

  MetaOptimizerOptions strict = opt;
  strict.threshold = ratio * 0.5;  // C < 0.5·ratio·E fails
  MetaOptimizerOptions lax = opt;
  lax.threshold = ratio * 2.0;

  auto rs = MetaOptimizer(strict).Compile(w.queries[5]);
  auto rl = MetaOptimizer(lax).Compile(w.queries[5]);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rl.ok());
  EXPECT_FALSE(rs->reoptimized);
  EXPECT_TRUE(rl->reoptimized);
}

TEST(MetaOptimizerTest, HighPlanNoWorseThanLowWhenReoptimized) {
  MetaOptimizerOptions opt;
  opt.time_model = CalibratedModel();
  MetaOptimizer mop(opt);
  Workload w = StarWorkload();
  for (int i : {0, 7}) {
    auto r = mop.Compile(w.queries[i]);
    ASSERT_TRUE(r.ok());
    if (r->reoptimized) {
      Optimizer low_opt(opt.low);
      auto low = low_opt.Optimize(w.queries[i]);
      ASSERT_TRUE(low.ok());
      EXPECT_LE(r->chosen.stats.best_cost,
                low->stats.best_cost * (1 + 1e-9));
    }
  }
}

TEST(MemoryEstimatorTest, BudgetGate) {
  Workload w = LinearWorkload();
  MemoryEstimator mem((OptimizerOptions()));
  MemoryEstimate est = mem.Estimate(w.queries[14]);  // 10-table query
  EXPECT_GT(est.estimated_bytes, 0);
  EXPECT_GT(est.plan_slots, 0);
  EXPECT_TRUE(mem.ExceedsBudget(w.queries[14], est.estimated_bytes / 2));
  EXPECT_FALSE(mem.ExceedsBudget(w.queries[14], est.estimated_bytes * 2));
}

TEST(MemoryEstimatorTest, GrowsWithQuerySize) {
  Workload w = LinearWorkload();
  MemoryEstimator mem((OptimizerOptions()));
  // Batches: queries 0 (6 tables), 5 (8 tables), 10 (10 tables).
  int64_t b6 = mem.Estimate(w.queries[0]).estimated_bytes;
  int64_t b8 = mem.Estimate(w.queries[5]).estimated_bytes;
  int64_t b10 = mem.Estimate(w.queries[10]).estimated_bytes;
  EXPECT_LT(b6, b8);
  EXPECT_LT(b8, b10);
}

}  // namespace
}  // namespace cote
