#include "core/join_count_baseline.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "query/query_builder.h"
#include "workload/workload.h"

namespace cote {
namespace {

TEST(JoinCountBaselineTest, ClosedFormulasSmallCases) {
  // Hand-checked values.
  EXPECT_EQ(JoinCountBaseline::ChainJoins(2), 1);
  EXPECT_EQ(JoinCountBaseline::ChainJoins(3), 4);
  EXPECT_EQ(JoinCountBaseline::ChainJoins(4), 10);
  EXPECT_EQ(JoinCountBaseline::ChainJoins(10), 165);

  EXPECT_EQ(JoinCountBaseline::StarJoins(2), 1);
  EXPECT_EQ(JoinCountBaseline::StarJoins(3), 4);
  EXPECT_EQ(JoinCountBaseline::StarJoins(4), 12);
  EXPECT_EQ(JoinCountBaseline::StarJoins(10), 9 * 256);

  EXPECT_EQ(JoinCountBaseline::CliqueJoins(2), 1);
  EXPECT_EQ(JoinCountBaseline::CliqueJoins(3), 6);
  EXPECT_EQ(JoinCountBaseline::CliqueJoins(4), 25);

  // Degenerate sizes.
  EXPECT_EQ(JoinCountBaseline::ChainJoins(1), 0);
  EXPECT_EQ(JoinCountBaseline::StarJoins(0), 0);
  EXPECT_EQ(JoinCountBaseline::CliqueJoins(1), 0);
}

TEST(JoinCountBaselineTest, ChainEqualsStarForThreeTables) {
  // A 3-chain and a 3-star are the same graph.
  EXPECT_EQ(JoinCountBaseline::ChainJoins(3), JoinCountBaseline::StarJoins(3));
}

TEST(JoinCountBaselineTest, CountJoinsHandlesCycles) {
  // The whole reason the paper reuses the enumerator: analytic counting is
  // #P-complete for cyclic graphs, but the enumerator just counts.
  Catalog catalog;
  for (int i = 0; i < 4; ++i) {
    TableBuilder b("T" + std::to_string(i), 1000);
    b.Col("a", ColumnType::kInt, 100);
    ASSERT_TRUE(catalog.AddTable(b.Build()).ok());
  }
  QueryBuilder qb(catalog);
  for (int i = 0; i < 4; ++i) {
    qb.AddTable("T" + std::to_string(i), "t" + std::to_string(i));
  }
  for (int i = 0; i < 4; ++i) {  // 4-cycle
    qb.Join("t" + std::to_string(i), "a", "t" + std::to_string((i + 1) % 4),
            "a");
  }
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  EnumeratorOptions opt;
  opt.cartesian_when_card_one = false;
  EnumerationStats stats = JoinCountBaseline::CountJoins(*g, opt);
  // 4-cycle: more joins than the 4-chain (10), fewer than the clique (25).
  EXPECT_GT(stats.joins_unordered, JoinCountBaseline::ChainJoins(4));
  EXPECT_LT(stats.joins_unordered, JoinCountBaseline::CliqueJoins(4));
}

TEST(JoinCountBaselineTest, EstimateSecondsLinear) {
  EXPECT_DOUBLE_EQ(JoinCountBaseline::EstimateSeconds(100, 0.01), 1.0);
  EXPECT_DOUBLE_EQ(JoinCountBaseline::EstimateSeconds(0, 0.01), 0.0);
}

TEST(JoinCountBaselineTest, JoinCountBlindToProperties) {
  // The baseline's fatal flaw (§5.3): queries differing only in ORDER BY /
  // predicate width have identical join counts.
  Workload star = StarWorkload();
  // Queries 0..4 form one batch: same tables, different properties.
  EnumeratorOptions opt;
  int64_t first =
      JoinCountBaseline::CountJoins(star.queries[0], opt).joins_unordered;
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(
        JoinCountBaseline::CountJoins(star.queries[i], opt).joins_unordered,
        first);
  }
}

}  // namespace
}  // namespace cote
