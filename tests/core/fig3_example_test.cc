// Reproduces the paper's Figure 3: a 3-way join A ⋈ B ⋈ C with
// A.1 = B.1 and B.2 = C.2. Both variants enumerate the same 4 joins, but
// adding "ORDER BY A.2" grows the number of plans stored in the MEMO from
// 12 to 15 — the number of joins cannot see the difference, the number of
// plans can.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "optimizer/optimizer.h"
#include "query/query_builder.h"

namespace cote {
namespace {

class Fig3Test : public ::testing::Test {
 protected:
  Fig3Test() {
    // Plain tables, no indexes (the figure's MEMO has scan + SORT plans
    // only), sized so no Cartesian-product heuristics trigger.
    for (const char* name : {"A", "B", "C"}) {
      TableBuilder b(name, 10000);
      b.Col("c1", ColumnType::kInt, 1000);
      b.Col("c2", ColumnType::kInt, 1000);
      EXPECT_TRUE(catalog_.AddTable(b.Build()).ok());
    }
  }

  QueryGraph MakeQuery(bool with_order_by) {
    QueryBuilder qb(catalog_);
    qb.AddTable("A", "a").AddTable("B", "b").AddTable("C", "c");
    qb.Join("a", "c1", "b", "c1");
    qb.Join("b", "c2", "c", "c2");
    if (with_order_by) qb.OrderBy({{"a", "c2"}});
    auto g = qb.Build();
    EXPECT_TRUE(g.ok());
    return std::move(g).value();
  }

  OptimizeResult Optimize(const QueryGraph& g) {
    Optimizer opt;
    auto r = opt.Optimize(g);
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  }

  int PlansIn(const OptimizeResult& r, TableSet s) {
    const MemoEntry* e = r.memo->Find(s);
    return e == nullptr ? 0 : static_cast<int>(e->plans().size());
  }

  Catalog catalog_;
};

TEST_F(Fig3Test, BothQueriesHaveFourJoins) {
  for (bool ob : {false, true}) {
    OptimizeResult r = Optimize(MakeQuery(ob));
    EXPECT_EQ(r.stats.enumeration.joins_unordered, 4);
  }
}

TEST_F(Fig3Test, WithoutOrderByTwelvePlans) {
  OptimizeResult r = Optimize(MakeQuery(false));
  // Figure 3(a): A:[A.1,DC]=2, B:[B.1,B.2,DC]=3, C:[C.2,DC]=2,
  // AB:[B.2,DC]=2, BC:[B.1,DC]=2, ABC:[DC]=1 — 12 plans.
  EXPECT_EQ(PlansIn(r, TableSet::Single(0)), 2);
  EXPECT_EQ(PlansIn(r, TableSet::Single(1)), 3);
  EXPECT_EQ(PlansIn(r, TableSet::Single(2)), 2);
  EXPECT_EQ(PlansIn(r, TableSet::Single(0).With(1)), 2);
  EXPECT_EQ(PlansIn(r, TableSet::Single(1).With(2)), 2);
  EXPECT_EQ(PlansIn(r, TableSet::FirstN(3)), 1);
  EXPECT_EQ(r.stats.plans_stored, 12);
}

TEST_F(Fig3Test, WithOrderByFifteenPlans) {
  OptimizeResult r = Optimize(MakeQuery(true));
  // Figure 3(b): A gains A.2, AB gains A.2, ABC gains A.2 — 15 plans.
  EXPECT_EQ(PlansIn(r, TableSet::Single(0)), 3);
  EXPECT_EQ(PlansIn(r, TableSet::Single(1)), 3);
  EXPECT_EQ(PlansIn(r, TableSet::Single(2)), 2);
  EXPECT_EQ(PlansIn(r, TableSet::Single(0).With(1)), 3);
  EXPECT_EQ(PlansIn(r, TableSet::Single(1).With(2)), 2);
  EXPECT_EQ(PlansIn(r, TableSet::FirstN(3)), 2);
  EXPECT_EQ(r.stats.plans_stored, 15);
}

TEST_F(Fig3Test, RetiredOrdersCollapseToDc) {
  // In ABC every join-column order has retired: no stored plan may carry
  // an order on a join column.
  OptimizeResult r = Optimize(MakeQuery(false));
  const MemoEntry* top = r.memo->Find(TableSet::FirstN(3));
  ASSERT_NE(top, nullptr);
  for (const Plan* p : top->plans()) {
    EXPECT_TRUE(p->order.IsNone()) << p->order.ToString();
  }
}

}  // namespace
}  // namespace cote
