#include "core/plan_counter.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "core/estimator.h"
#include "optimizer/optimizer.h"
#include "query/query_builder.h"

namespace cote {
namespace {

std::shared_ptr<Catalog> MakeCatalog() {
  auto catalog = std::make_shared<Catalog>();
  for (int i = 0; i < 6; ++i) {
    TableBuilder b("T" + std::to_string(i), 20000 * (i + 1));
    b.Col("a", ColumnType::kInt, 2000).Col("b", ColumnType::kInt, 200);
    b.Col("c", ColumnType::kInt, 20);
    b.Idx("idx" + std::to_string(i), {"a"});
    b.HashPartition({"a"});
    EXPECT_TRUE(catalog->AddTable(b.Build()).ok());
  }
  return catalog;
}

QueryGraph Chain(const Catalog& catalog, int n, int preds_per_edge = 1,
                 bool order_by = false) {
  QueryBuilder qb(catalog);
  const char* cols[] = {"a", "b", "c"};
  for (int i = 0; i < n; ++i) {
    qb.AddTable("T" + std::to_string(i), "t" + std::to_string(i));
  }
  for (int i = 0; i + 1 < n; ++i) {
    for (int p = 0; p < preds_per_edge; ++p) {
      qb.Join("t" + std::to_string(i), cols[p], "t" + std::to_string(i + 1),
              cols[p]);
    }
  }
  if (order_by) qb.OrderBy({{"t0", "c"}});
  auto g = qb.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

/// Runs the counter through the real enumerator.
JoinTypeCounts Count(const QueryGraph& g, PlanCounterOptions copt = {},
                     EnumeratorOptions eopt = {}) {
  CardinalityModel card(g, false);
  InterestingOrders interesting(g);
  PlanCounter counter(g, interesting, card, copt);
  JoinEnumerator enumerator(g, eopt);
  enumerator.Run(&counter);
  return counter.estimated_plans();
}

JoinTypeCounts Actual(const QueryGraph& g, OptimizerOptions opt = {}) {
  Optimizer optimizer(opt);
  auto r = optimizer.Optimize(g);
  EXPECT_TRUE(r.ok());
  return r->stats.join_plans_generated;
}

TEST(PlanCounterTest, SerialHsjnEstimateIsExact) {
  // The paper's exactness claim (§5.2): in the serial version HSJN
  // estimates equal the actuals because HSJN propagates nothing.
  auto catalog = MakeCatalog();
  for (int n : {2, 3, 4, 5}) {
    for (bool ob : {false, true}) {
      QueryGraph g = Chain(*catalog, n, 1, ob);
      EXPECT_EQ(Count(g).hsjn(), Actual(g).hsjn()) << n << " ob=" << ob;
    }
  }
}

TEST(PlanCounterTest, EstimatesWithinPaperBounds) {
  // NLJN/MGJN estimates are approximate; the paper reports ≤30% error for
  // NLJN and ≤14% for MGJN on its 6-10 table synthetic workloads. Allow
  // headroom across shapes (tiny queries amplify the plan-sharing bias).
  auto catalog = MakeCatalog();
  for (int n : {4, 5, 6}) {
    for (int preds : {1, 2}) {
      QueryGraph g = Chain(*catalog, n, preds, /*order_by=*/true);
      JoinTypeCounts est = Count(g);
      JoinTypeCounts act = Actual(g);
      for (JoinMethod m : {JoinMethod::kNljn, JoinMethod::kMgjn}) {
        double e = static_cast<double>(est[m]);
        double a = static_cast<double>(act[m]);
        ASSERT_GT(a, 0);
        EXPECT_LT(std::abs(e - a) / a, 0.45)
            << JoinMethodName(m) << " n=" << n << " preds=" << preds
            << " est=" << e << " act=" << a;
      }
    }
  }
}

TEST(PlanCounterTest, OrderByIncreasesEstimates) {
  auto catalog = MakeCatalog();
  QueryGraph without = Chain(*catalog, 4, 1, false);
  QueryGraph with = Chain(*catalog, 4, 1, true);
  EXPECT_GT(Count(with).nljn(), Count(without).nljn());
  // HSJN ignores orders entirely.
  EXPECT_EQ(Count(with).hsjn(), Count(without).hsjn());
}

TEST(PlanCounterTest, MorePredicatesMoreMergePlans) {
  auto catalog = MakeCatalog();
  QueryGraph one = Chain(*catalog, 3, 1);
  QueryGraph three = Chain(*catalog, 3, 3);
  EXPECT_GT(Count(three).mgjn(), Count(one).mgjn());
}

TEST(PlanCounterTest, PropertyListsAccumulateBottomUp) {
  auto catalog = MakeCatalog();
  QueryGraph g = Chain(*catalog, 3, 1, /*order_by=*/true);
  CardinalityModel card(g, false);
  InterestingOrders interesting(g);
  PlanCounter counter(g, interesting, card, {});
  JoinEnumerator enumerator(g, {});
  enumerator.Run(&counter);

  // Base t0: join order (a) + ORDER BY order (c) + index order.
  const auto* t0 = counter.FindState(TableSet::Single(0));
  ASSERT_NE(t0, nullptr);
  EXPECT_GE(t0->orders.size(), 2u);

  // Top entry: join orders retired; the ORDER BY order survives.
  const auto* top = counter.FindState(TableSet::FirstN(3));
  ASSERT_NE(top, nullptr);
  bool has_orderby = false;
  for (const OrderProperty& o : top->orders) {
    has_orderby |= o.SatisfiesPrefix(OrderProperty({ColumnRef(0, 2)}));
    // No retired join-column orders may survive.
    EXPECT_FALSE(o == OrderProperty({ColumnRef(0, 0)}));
  }
  EXPECT_TRUE(has_orderby);
  EXPECT_GT(counter.TotalPlanSlots(), 0);
  EXPECT_EQ(counter.num_entries(), 6);  // 3 singletons + {01} {12} {012}
}

TEST(PlanCounterTest, FirstJoinOnlyPropagationCloseToFull) {
  // §4 item 4: propagating on the first join only barely changes counts.
  auto catalog = MakeCatalog();
  QueryGraph g = Chain(*catalog, 5, 2, true);
  PlanCounterOptions first_only;
  PlanCounterOptions every;
  every.first_join_propagation_only = false;
  JoinTypeCounts a = Count(g, first_only);
  JoinTypeCounts b = Count(g, every);
  for (int m = 0; m < kNumJoinMethods; ++m) {
    double da = static_cast<double>(a.counts[m]);
    double db = static_cast<double>(b.counts[m]);
    EXPECT_LT(std::abs(da - db) / std::max(db, 1.0), 0.15)
        << JoinMethodName(static_cast<JoinMethod>(m));
  }
}

TEST(PlanCounterTest, ParallelSeparateListsCountPartitions) {
  auto catalog = MakeCatalog();
  QueryGraph g = Chain(*catalog, 4, 1, true);
  PlanCounterOptions par;
  par.parallel = true;
  JoinTypeCounts serial = Count(g);
  JoinTypeCounts parallel = Count(g, par);
  // Parallel planning multiplies in the partition dimension.
  EXPECT_GE(parallel.total(), serial.total());
  // And tracks the actual parallel optimizer within a factor.
  JoinTypeCounts act = Actual(g, OptimizerOptions::Parallel(4));
  EXPECT_GT(act.total(), 0);
  double ratio = static_cast<double>(parallel.total()) /
                 static_cast<double>(act.total());
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 2.5);
}

TEST(PlanCounterTest, CompoundModeAtLeastSeparate) {
  // Separate lists drop (retired-order, live-partition) combinations and
  // thus underestimate relative to the compound representation (§3.4).
  auto catalog = MakeCatalog();
  QueryGraph g = Chain(*catalog, 4, 2, true);
  PlanCounterOptions sep;
  sep.parallel = true;
  PlanCounterOptions comp = sep;
  comp.multi_property = MultiPropertyMode::kCompound;
  EXPECT_GE(Count(g, comp).nljn(), Count(g, sep).nljn());
}

TEST(PlanCounterTest, RespectsEnumeratorKnobs) {
  auto catalog = MakeCatalog();
  QueryGraph g = Chain(*catalog, 5);
  EnumeratorOptions bushy;
  EnumeratorOptions left_deep;
  left_deep.max_composite_inner = 1;
  EXPECT_LT(Count(g, {}, left_deep).total(), Count(g, {}, bushy).total());
}

TEST(PlanCounterTest, ReRunningEnumerationIsIdempotent) {
  // Regression: InitializeEntry's base-table partition / compound seeding
  // used un-guarded pushes, so driving the same counter through a second
  // enumeration run duplicated every seeded value and inflated the
  // second run's counts. All list pushes must dedupe (set semantics).
  auto catalog = MakeCatalog();
  QueryGraph g = Chain(*catalog, 5, /*preds_per_edge=*/2, /*order_by=*/true);
  for (MultiPropertyMode mode :
       {MultiPropertyMode::kSeparate, MultiPropertyMode::kCompound}) {
    PlanCounterOptions copt;
    copt.parallel = true;
    copt.eager_partitions = true;
    copt.multi_property = mode;
    CardinalityModel card(g, false);
    InterestingOrders interesting(g);
    PlanCounter counter(g, interesting, card, copt);
    JoinEnumerator enumerator(g, {});
    enumerator.Run(&counter);
    const int64_t slots1 = counter.TotalPlanSlots();
    const int64_t nljn1 = counter.estimated_plans().nljn();
    const int64_t mgjn1 = counter.estimated_plans().mgjn();
    enumerator.Run(&counter);
    // Property lists are quiescent: the MEMO-size proxy must not move,
    // and the second run must accumulate exactly the same plan counts.
    EXPECT_EQ(counter.TotalPlanSlots(), slots1);
    EXPECT_EQ(counter.estimated_plans().nljn(), 2 * nljn1);
    EXPECT_EQ(counter.estimated_plans().mgjn(), 2 * mgjn1);
  }
}

TEST(PlanCounterTest, CartesianJoinsCountNljnOnly) {
  auto catalog = MakeCatalog();
  QueryBuilder qb(*catalog);
  qb.AddTable("T0", "t0").AddTable("T1", "t1");
  // No predicate; force pure Cartesian enumeration.
  auto g = qb.Build();
  ASSERT_TRUE(g.ok());
  EnumeratorOptions opt;
  opt.allow_all_cartesian = true;
  JoinTypeCounts c = Count(*g, {}, opt);
  EXPECT_GT(c.nljn(), 0);
  EXPECT_EQ(c.mgjn(), 0);
  EXPECT_EQ(c.hsjn(), 0);
}

}  // namespace
}  // namespace cote
