"""Shared machinery for the COTE source lints.

Both tree lints — tools/hotpath_lint.py (allocation purity of the hot
path) and tools/determinism_lint.py (nondeterminism sources on the
enumeration / merge / plan-choice / signature paths) — follow the same
discipline:

  * a hardcoded manifest maps translation units to the functions under
    contract (reviewed like code; a function cannot silently leave the
    contract by being renamed or deleted — stale entries are a hard
    configuration error, exit 2);
  * function bodies are located by a brace-counting parser over
    comment/string-stripped lines;
  * every rule has an escape hatch: a line (or its predecessor) carrying
    `// <tag>: <reason>` is exempt, and the reason is mandatory.

This module holds the shared parser, the Violation type, and the escape
annotation handling so the two lints cannot drift apart.

Manifest names may be qualified (`Memo::Find`) or unqualified (`Find`).
A qualified name matches only the definition of that class's member —
this is the stale-entry fix: an unqualified `Find` in a file defining
both `Memo::Find` and `MemoShard::Find` kept "passing" after one twin
was deleted, because the other still matched. Qualified entries track
each definition individually.
"""

import re


def strip_comments_and_strings(line):
    """Removes // comments, string and char literals (keeps structure).

    Line-based by design: the codebase style keeps block comments on
    their own `/* ... */` lines or leading-`*` continuation lines, which
    the column-0 definition filter already rejects.
    """
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                if line[i] == "\\":
                    i += 1
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class Violation:
    def __init__(self, path, line_no, func, message, text):
        self.path = path
        self.line_no = line_no
        self.func = func
        self.message = message
        self.text = text.strip()

    def __str__(self):
        return (f"{self.path}:{self.line_no}: [{self.func}] {self.message}\n"
                f"    {self.text}")


def escape_annotation_re(tag):
    """Regex for the escape hatch `// <tag>: <reason>` (reason required)."""
    return re.compile(r"//\s*%s\s*:\s*\S" % re.escape(tag))


def is_escaped(lines, idx, annotation):
    """True if line idx or its predecessor carries the escape annotation."""
    return bool(annotation.search(lines[idx]) or
                (idx > 0 and annotation.search(lines[idx - 1])))


_CONTROL_KEYWORD = re.compile(
    r"\s*(?:if|for|while|switch|return|else|do|case)\b")


def _name_pattern(name):
    """Definition-site pattern for a manifest name.

    Qualified names (`Memo::Find`) must appear literally; unqualified
    names match with or without a one-level class qualifier.
    """
    if "::" in name:
        return re.compile(r"\b%s\s*\(" % re.escape(name))
    return re.compile(r"\b(?:[A-Za-z_][A-Za-z0-9_]*::)?%s\s*\("
                      % re.escape(name))


def find_functions(lines, wanted, allow_indented=False):
    """Yields (manifest_name, start_idx, end_idx) for wanted definitions.

    Brace-counting parser: a definition is a line mentioning `name(`
    whose statement ends with `{` rather than `;`. By default only
    column-0 lines qualify (file-scope definitions — the style the .cc
    files are written in); `allow_indented` additionally accepts indented
    definitions, which is what header-inline member functions need.

    Raises RuntimeError on unbalanced braces (configuration error).
    """
    spans = []
    i = 0
    n = len(lines)
    while i < n:
        stripped = strip_comments_and_strings(lines[i])
        matched = None
        candidate = bool(lines[i]) and not lines[i].lstrip().startswith(
            ("}", "#", "//", "/*", "*"))
        if candidate and not allow_indented:
            candidate = not lines[i][0].isspace()
        if candidate and not _CONTROL_KEYWORD.match(stripped):
            for name in wanted:
                if _name_pattern(name).search(stripped):
                    matched = name
                    break
        if matched is not None:
            # Scan forward to the first '{' or ';' that closes the
            # declarator (at paren depth 0).
            j = i
            paren = 0
            body_start = None
            is_decl_only = False
            while j < n:
                s = strip_comments_and_strings(lines[j])
                for k, ch in enumerate(s):
                    if ch == "(":
                        paren += 1
                    elif ch == ")":
                        paren -= 1
                    elif ch == ";" and paren == 0:
                        is_decl_only = True
                        break
                    elif ch == "{" and paren == 0:
                        body_start = (j, k)
                        break
                if body_start or is_decl_only:
                    break
                j += 1
            if is_decl_only or body_start is None:
                i += 1
                continue
            # Brace-count from body_start to the matching close.
            bj, bk = body_start
            brace = 0
            end = None
            for jj in range(bj, n):
                s = strip_comments_and_strings(lines[jj])
                start_k = bk if jj == bj else 0
                for ch in s[start_k:]:
                    if ch == "{":
                        brace += 1
                    elif ch == "}":
                        brace -= 1
                        if brace == 0:
                            end = jj
                            break
                if end is not None:
                    break
            if end is None:
                raise RuntimeError(
                    f"unbalanced braces scanning function '{matched}'")
            spans.append((matched, i, end))
            i = end + 1
            continue
        i += 1
    return spans


def scan_manifest_file(root, rel, wanted, allow_indented=False):
    """Loads one manifested file and locates its contracted functions.

    Returns (lines, spans, config_errors). Config errors — a missing
    file, a manifest name with no surviving definition (stale entry), or
    an unparseable body — must fail the lint with exit status 2: a
    rename or deletion can never silently turn a contract off.
    """
    errors = []
    path = root / rel
    if not path.exists():
        return [], [], [f"manifested file missing: {rel}"]
    lines = path.read_text().splitlines()
    try:
        spans = find_functions(lines, wanted, allow_indented=allow_indented)
    except RuntimeError as e:
        return lines, [], [f"{rel}: {e}"]
    found = {name for name, _, _ in spans}
    for name in wanted:
        if name not in found:
            errors.append(
                f"{rel}: manifested function '{name}' not found "
                f"(renamed or deleted? update the lint manifest)")
    return lines, spans, errors
