// Known-bad fixture: un-annotated float accumulation in a merge-tagged
// function. FP addition is non-associative — folding worker results in
// completion order instead of a pinned order changes low bits.
// expect-fail: float-accumulation
// lint-tags: merge

struct Slice {
  double busy_total = 0;
};

double g_acc_seconds = 0;

void TestFn(const Slice& s) {
  g_acc_seconds += s.busy_total;  // fold order unpinned, no escape
}
