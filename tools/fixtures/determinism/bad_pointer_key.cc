// Known-bad fixture: pointer values used as ordering/hash keys. Heap
// addresses differ run to run (ASLR, allocation order), so any
// plan-visible decision keyed on them is nondeterministic.
// expect-fail: pointer-key
#include <cstdint>

struct Plan;

uint64_t TestFn(const Plan* p) {
  return reinterpret_cast<uintptr_t>(p) * 0x9e3779b97f4a7c15ull;
}
