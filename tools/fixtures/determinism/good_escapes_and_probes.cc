// Known-good fixture: everything here is the deterministic counterpart
// of a banned pattern, or a banned pattern behind a reasoned escape.
// expect-pass
// lint-tags: merge
#include <chrono>
#include <map>
#include <unordered_set>
#include <vector>

struct Slice {
  double busy_total = 0;
  long queries = 0;
};

std::unordered_set<unsigned long> g_exists;
std::map<int, int> g_ordered;
double g_acc_seconds = 0;
long g_acc_queries = 0;

double TestFn(const std::vector<Slice>& slices, unsigned long mask) {
  // Probing an unordered container is fine — only iteration is banned;
  // the find()/end() sentinel comparison is a probe, not an iteration.
  if (g_exists.find(mask) == g_exists.end()) g_exists.insert(mask);
  // Iterating an *ordered* container is fine.
  int sum = 0;
  for (const auto& kv : g_ordered) sum += kv.second;
  // Integer accumulation in a merge is fine at any order.
  for (const Slice& s : slices) g_acc_queries += s.queries;
  // Float folds are allowed when the order is pinned and annotated:
  // `slices` is indexed in worker order by contract.
  for (const Slice& s : slices) {
    g_acc_seconds += s.busy_total;  // det-ok: fixed worker-order fold
  }
  // det-ok: instrumentation only, reading never feeds plan choice
  auto t0 = std::chrono::steady_clock::now();
  (void)t0;
  return g_acc_seconds + sum;
}
