// Known-bad fixture: explicit begin() over an unordered container —
// the iterator form of the same hash-order hazard as a range-for.
// expect-fail: unordered-iteration
#include <unordered_set>

std::unordered_set<long> g_seen;

long TestFn() {
  return g_seen.empty() ? 0 : *g_seen.begin();
}
