// Known-bad fixture: thread identity feeding a value. Which worker runs
// a slice is a scheduling accident; results must depend on the slice,
// never on the thread that happened to claim it.
// expect-fail: thread-identity
#include <functional>
#include <thread>

size_t TestFn() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}
