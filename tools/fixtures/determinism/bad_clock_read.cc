// Known-bad fixture: a wall-clock read inside a determinism-critical
// function with no escape annotation. Timing may legitimately be
// *measured* on these paths (instrumentation), but every such read must
// carry a reasoned escape asserting it never feeds plan choice.
// expect-fail: time-source
#include <chrono>

long TestFn() {
  auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}
