// Known-bad fixture: iterating an unordered container in a manifested
// function. Hash order varies across implementations and runs, so any
// plan-visible effect of this loop would break bit-identical plan choice.
// expect-fail: unordered-iteration
#include <unordered_map>

std::unordered_map<int, int> g_by_key;

int TestFn() {
  int sum = 0;
  for (const auto& kv : g_by_key) {  // iteration order is hash order
    sum = sum * 31 + kv.second;
  }
  return sum;
}
