// Known-bad fixture: a random source in a manifested function.
// expect-fail: random-source
#include <cstdlib>

int TestFn(int n) {
  return rand() % n;  // tie-breaking by RNG is nondeterministic
}
