#!/usr/bin/env python3
"""Hot-path purity linter for the COTE enumeration core.

PR 1 made the enumeration hot path allocation- and hash-free; this check
keeps it that way. It parses the hot-path translation units, locates the
functions that run once per enumerated join (or per MEMO probe), and
fails on constructs that would reintroduce per-join heap traffic:

  * `new` expressions and `std::function` objects anywhere in a hot
    function;
  * construction of node-based / hashed containers (`std::unordered_map`,
    `std::unordered_set`, `std::map`, `std::set`) anywhere in a hot
    function;
  * container growth calls (`push_back`, `emplace_back`, `emplace`,
    `insert`, `resize`, `assign`, `reserve`) whose receiver is not a
    registered scratch buffer, entry-state list, or arena;
  * declarations of local standard containers inside loops of a hot
    function.

Escape hatch: a line (or its predecessor) carrying `// hotpath-ok: <why>`
is exempt — the reason is mandatory and reviewed like any comment. The
linter also fails (exit 2) if a configured hot function disappears, so a
rename cannot silently turn the check off; where a file defines same-named
twins (Memo:: / MemoShard::), the manifest lists each qualified name so
deleting one twin cannot hide behind the other.

The parser, manifest validation, and escape handling live in
tools/lint_common.py, shared with tools/determinism_lint.py.

Runtime counterpart: tests/optimizer/hotpath_alloc_test.cc asserts zero
steady-state allocations with a counting operator-new hook; this file is
the static half of that contract.

Usage: tools/hotpath_lint.py [--repo-root PATH]
Exit status: 0 clean, 1 violations, 2 configuration/parse errors.
"""

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lint_common import (Violation, escape_annotation_re, is_escaped,
                         scan_manifest_file, strip_comments_and_strings)

# ---------------------------------------------------------------------------
# Configuration: the hot path, and what is allowed to grow.

# Per file: the functions that run per enumerated join / per probe.
# Matching is by definition site; qualified names (`Memo::Find`) pin one
# class's member, unqualified names accept any enclosing class.
HOT_FUNCTIONS = {
    "src/optimizer/enumerator.cc": [
        "RunBottomUp",
        "Run",  # JoinEnumerator::Run
    ],
    "src/optimizer/topdown_enumerator.cc": [
        "Lookup",
        "Store",
        "Run",
        "Explore",
    ],
    "src/core/plan_counter.cc": [
        "EntryIndex",
        "State",
        "FindState",
        "EntryCardinality",
        "InitializeEntry",
        "PropagateOrders",
        "PropagatePartitions",
        "JoinPartitions",
        "OnJoin",
        "AddPlans",  # per-join accumulation funnel, charges the budget
        "AdoptShardRank",  # rank-barrier merge: swaps slots, never copies
    ],
    # Rank-parallel enumeration: RunRankSlice is the serial mask/split
    # loop run per worker slice (the whole per-join hot path under
    # parallelism); the Gosper helpers run once per (rank, worker) to
    # compute slice boundaries and must stay pure arithmetic.
    "src/optimizer/parallel_enumerator.cc": [
        "RunRankSlice",
    ],
    "src/optimizer/gosper_partition.cc": [
        "GosperRankSize",
        "GosperUnrank",
        "PartitionGosperRank",
    ],
    # Resource governance: the slow half of ResourceBudget::Checkpoint()
    # runs once per deadline stride inside the enumeration loop. (The fast
    # half and the charge methods are inline in the header; their runtime
    # proof is session_alloc_test's armed-budget case.)
    "src/common/resource_budget.cc": [
        "CheckDeadlineSlow",
    ],
    # Session layer: these run once per compile, and the warm path
    # (repeat estimate of the same query) must stay allocation-free —
    # tests/session/session_alloc_test.cc is the runtime half.
    "src/session/compilation_context.cc": [
        "Reset",
        "Fingerprint",
        "Enumerate",
    ],
    "src/session/pipeline.cc": [
        "CompileEstimate",
        "EstimateImpl",  # the estimate path proper (arming + checkpoints)
        "Notify",        # stage observer dispatch: raw fn pointer, no heap
    ],
    "src/session/session.cc": [
        "Estimate",   # multi-block aggregation loop
        "FoldBlock",  # per-block estimate fold (degraded-flag propagation)
    ],
    # Session pool: these run once per claimed batch item (CompileOne /
    # EstimateOne) or once per worker at merge time; keeping them pure
    # keeps the batch path's heap traffic identical to the serial loop's.
    "src/session/session_pool.cc": [
        "CompileOne",
        "EstimateOne",
        "MergeDelta",
    ],
    # Service front-end: these run once per arrival (admission + ready-
    # queue pop) or once per pipeline stage event (the observer thunk);
    # the estimate they lean on is the warm zero-allocation path, so the
    # wrapper must not reintroduce heap traffic around it.
    "src/service/admission.cc": [
        "Admit",
    ],
    "src/service/scheduler.cc": [
        "SchedulesBefore",  # the policy comparator, pure arithmetic
        "ShedsFirst",       # the eviction comparator, pure arithmetic
        "Push",     # heap sift-up; heap_ retains capacity (see receivers)
        "PopNext",  # heap sift-down + pop_back; never reallocates
        "Enqueue",  # shared Push/Offer tail: heap_ + slots_ only
        "MarkDead", # slot-ring bookkeeping, amortized O(1), no heap
        "Offer",    # capacity gate + O(capacity) eviction scan, no heap
    ],
    "src/service/trip_tracker.cc": [
        "Record",
        "HeadroomMultiplier",
    ],
    "src/service/arrival_trace.cc": [
        "NextGapSeconds",  # per-arrival inversion sample, pure arithmetic
    ],
    "src/service/compile_service.cc": [
        "DispatchTraceObserver",  # runs inside the compile per stage event
        "ThresholdAdmission",     # runs under the cache mutex per insert
        "ClassifyRecord",         # per-terminal-record bucket map, pure
    ],
    # Async executor: CompileEntry is the per-dispatch body every worker
    # thread runs between the two mutex scopes (pop → compile → publish);
    # any heap traffic here is multiplied by every live dispatch, so it
    # must stay as pure as the simulated Run's dispatch body.
    "src/service/async_executor.cc": [
        "CompileEntry",
    ],
    # Query completion: runs once per plan-mode compile; its counting twin
    # runs once per estimate and must never touch the heap.
    "src/optimizer/completion.cc": [
        "CompleteQuery",
        "CountCompletionPlans",
    ],
    # Property canonicalization runs per enumerated join (via
    # PropagateOrders / Useful), so its Into-variants are hot too.
    "src/optimizer/properties/order_property.cc": [
        "CanonicalizeInto",
    ],
    "src/optimizer/properties/partition_property.cc": [
        "CanonicalizeInto",
    ],
    "src/optimizer/properties/interesting_orders.cc": [
        "ActiveInterests",
        "Useful",
    ],
    # Union-find: Root runs per canonicalized column; AddEquivalence runs
    # per internal predicate per entry (quiescent after the first run).
    "src/query/equivalence.cc": [
        "Root",
        "AddEquivalence",
    ],
    # Memo and its MemoShard shard-fill twin both live in this TU; every
    # twin is manifested under its qualified name so deleting or renaming
    # one can no longer hide behind the survivor (the stale-entry hole the
    # old unqualified matching had). Memo::AdoptShardRank is the per-rank
    # merge (pointer adoption only — entries and plans stay in the shard
    # arenas they were born in).
    "src/optimizer/memo.cc": [
        "Memo::Index",
        "Memo::GetOrCreate",
        "MemoShard::GetOrCreate",
        "Memo::Find",
        "MemoShard::Find",
        "Memo::NewPlan",
        "MemoShard::NewPlan",
        "Memo::Insert",
        "MemoShard::Insert",
        "Memo::AdoptShardRank",
    ],
    "src/query/query_graph.cc": [
        "ConnectingPredicates",
        "InternalPredicates",
        "AreConnected",
        "IsSubgraphConnected",
        "Neighbors",
        "OuterEnabled",
        "OuterJoinOrientationOk",
    ],
}

# Receivers allowed to call growth methods inside hot functions.
ALLOWED_RECEIVERS = {
    # Scratch buffers: cleared per call, capacity retained across calls.
    "out", "out_cols", "preds", "preds_", "pred_scratch", "pred_scratch_",
    "jcols_", "jparts_", "canon_inputs_", "listp_", "listc_",
    "distinct_orders_", "exists_", "cols_scratch_", "active_scratch_",
    # Entry-state property lists: grow only while new distinct property
    # values appear, so they are quiescent in steady state (and the
    # dedupe before every push is part of the Table 3 algorithm).
    "orders", "partitions", "compound",
    # Arenas and per-run structures: amortized growth by design (deque
    # arenas for entries/plans, flat bitmaps sized once per run).
    "plans", "plans_", "entry_arena_", "creation_order_", "arena_",
    "states_", "explored_flat_", "constructible_flat_",
    # Shard rank lists: one push per entry *created* in the rank (not per
    # join), cleared at the rank-barrier merge with capacity retained — so
    # they are quiescent on warm reruns like the arenas above.
    "created_", "created_masks_",
    # ReadyQueue's heap vector: push_back + sift; pops shrink it without
    # releasing capacity, so a steady-state queue stops allocating.
    "heap_",
    # ReadyQueue's age slot ring: one push per enqueue, reclaimed lazily
    # from the front with amortized compaction — bounded by the churn of
    # one queue residence window, like heap_.
    "slots_",
}

BANNED_ANYWHERE = [
    (re.compile(r"\bnew\b(?!\s*\()?"), "operator new in a hot function"),
    (re.compile(r"\bstd::unordered_map\s*<"), "std::unordered_map in a hot function"),
    (re.compile(r"\bstd::unordered_set\s*<"), "std::unordered_set in a hot function"),
    (re.compile(r"\bstd::map\s*<"), "std::map in a hot function"),
    (re.compile(r"\bstd::set\s*<"), "std::set in a hot function"),
    (re.compile(r"\bstd::function\s*<"), "std::function in a hot function"),
    (re.compile(r"\bstd::make_unique\s*<|\bstd::make_shared\s*<"),
     "heap-owning smart pointer in a hot function"),
]

GROWTH_CALL = re.compile(
    r"([A-Za-z_][A-Za-z0-9_]*(?:\s*(?:\.|->)\s*[A-Za-z_][A-Za-z0-9_]*)*)"
    r"\s*(?:\.|->)\s*"
    r"(push_back|emplace_back|emplace|insert|resize|assign|reserve)\s*\(")

LOCAL_CONTAINER_IN_LOOP = re.compile(
    r"\bstd::(?:vector|string|deque|list)\s*<[^;]*>\s+[A-Za-z_]"
    r"|\bstd::string\s+[A-Za-z_]")

ANNOTATION = escape_annotation_re("hotpath-ok")


def lint_function(path, lines, name, start, end):
    violations = []
    # Loop depth tracking within the function body.
    loop_depth_stack = []  # brace depths at which a loop body began
    brace = 0
    pending_loop = False
    for idx in range(start, end + 1):
        raw = lines[idx]
        stripped = strip_comments_and_strings(raw)
        annotated = is_escaped(lines, idx, ANNOTATION)

        in_loop = len(loop_depth_stack) > 0
        if not annotated:
            for pattern, message in BANNED_ANYWHERE:
                if pattern.search(stripped):
                    violations.append(
                        Violation(path, idx + 1, name, message, raw))
            for m in GROWTH_CALL.finditer(stripped):
                receiver = re.split(r"\s*(?:\.|->)\s*", m.group(1))[-1]
                base = re.split(r"\s*(?:\.|->)\s*", m.group(1))[0]
                if receiver not in ALLOWED_RECEIVERS and \
                        base not in ALLOWED_RECEIVERS:
                    violations.append(Violation(
                        path, idx + 1, name,
                        f"growth call {m.group(2)}() on non-scratch "
                        f"receiver '{m.group(1)}'", raw))
            if in_loop and LOCAL_CONTAINER_IN_LOOP.search(stripped):
                violations.append(Violation(
                    path, idx + 1, name,
                    "local standard container declared inside a loop", raw))

        if re.search(r"\b(?:for|while)\s*\(", stripped) or \
                re.search(r"\bdo\s*\{", stripped):
            pending_loop = True
        for ch in stripped:
            if ch == "{":
                brace += 1
                if pending_loop:
                    loop_depth_stack.append(brace)
                    pending_loop = False
            elif ch == "}":
                if loop_depth_stack and loop_depth_stack[-1] == brace:
                    loop_depth_stack.pop()
                brace -= 1
    return violations


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo-root", default=None,
                        help="repository root (default: parent of tools/)")
    args = parser.parse_args()
    root = Path(args.repo_root) if args.repo_root else \
        Path(__file__).resolve().parent.parent

    all_violations = []
    config_errors = []
    for rel, wanted in HOT_FUNCTIONS.items():
        lines, spans, errors = scan_manifest_file(root, rel, wanted)
        config_errors.extend(errors)
        for name, start, end in spans:
            all_violations.extend(lint_function(rel, lines, name, start, end))

    for err in config_errors:
        print(f"hotpath_lint: config error: {err}", file=sys.stderr)
    for v in all_violations:
        print(v, file=sys.stderr)
    if config_errors:
        return 2
    if all_violations:
        print(f"hotpath_lint: {len(all_violations)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"hotpath_lint: clean "
          f"({sum(len(v) for v in HOT_FUNCTIONS.values())} hot functions "
          f"across {len(HOT_FUNCTIONS)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
