#!/usr/bin/env python3
"""Hot-path purity linter for the COTE enumeration core.

PR 1 made the enumeration hot path allocation- and hash-free; this check
keeps it that way. It parses the hot-path translation units, locates the
functions that run once per enumerated join (or per MEMO probe), and
fails on constructs that would reintroduce per-join heap traffic:

  * `new` expressions and `std::function` objects anywhere in a hot
    function;
  * construction of node-based / hashed containers (`std::unordered_map`,
    `std::unordered_set`, `std::map`, `std::set`) anywhere in a hot
    function;
  * container growth calls (`push_back`, `emplace_back`, `emplace`,
    `insert`, `resize`, `assign`, `reserve`) whose receiver is not a
    registered scratch buffer, entry-state list, or arena;
  * declarations of local standard containers inside loops of a hot
    function.

Escape hatch: a line (or its predecessor) carrying `// hotpath-ok: <why>`
is exempt — the reason is mandatory and reviewed like any comment. The
linter also fails if a configured hot function disappears, so a rename
cannot silently turn the check off.

Runtime counterpart: tests/optimizer/hotpath_alloc_test.cc asserts zero
steady-state allocations with a counting operator-new hook; this file is
the static half of that contract.

Usage: tools/hotpath_lint.py [--repo-root PATH]
Exit status: 0 clean, 1 violations, 2 configuration/parse errors.
"""

import argparse
import re
import sys
from pathlib import Path

# ---------------------------------------------------------------------------
# Configuration: the hot path, and what is allowed to grow.

# Per file: the functions that run per enumerated join / per probe.
# Matching is by unqualified name on a definition at file scope.
HOT_FUNCTIONS = {
    "src/optimizer/enumerator.cc": [
        "RunBottomUp",
        "Run",  # JoinEnumerator::Run
    ],
    "src/optimizer/topdown_enumerator.cc": [
        "Lookup",
        "Store",
        "Run",
        "Explore",
    ],
    "src/core/plan_counter.cc": [
        "EntryIndex",
        "State",
        "FindState",
        "EntryCardinality",
        "InitializeEntry",
        "PropagateOrders",
        "PropagatePartitions",
        "JoinPartitions",
        "OnJoin",
        "AddPlans",  # per-join accumulation funnel, charges the budget
        "AdoptShardRank",  # rank-barrier merge: swaps slots, never copies
    ],
    # Rank-parallel enumeration: RunRankSlice is the serial mask/split
    # loop run per worker slice (the whole per-join hot path under
    # parallelism); the Gosper helpers run once per (rank, worker) to
    # compute slice boundaries and must stay pure arithmetic.
    "src/optimizer/parallel_enumerator.cc": [
        "RunRankSlice",
    ],
    "src/optimizer/gosper_partition.cc": [
        "GosperRankSize",
        "GosperUnrank",
        "PartitionGosperRank",
    ],
    # Resource governance: the slow half of ResourceBudget::Checkpoint()
    # runs once per deadline stride inside the enumeration loop. (The fast
    # half and the charge methods are inline in the header; their runtime
    # proof is session_alloc_test's armed-budget case.)
    "src/common/resource_budget.cc": [
        "CheckDeadlineSlow",
    ],
    # Session layer: these run once per compile, and the warm path
    # (repeat estimate of the same query) must stay allocation-free —
    # tests/session/session_alloc_test.cc is the runtime half.
    "src/session/compilation_context.cc": [
        "Reset",
        "Fingerprint",
        "Enumerate",
    ],
    "src/session/pipeline.cc": [
        "CompileEstimate",
        "EstimateImpl",  # the estimate path proper (arming + checkpoints)
        "Notify",        # stage observer dispatch: raw fn pointer, no heap
    ],
    "src/session/session.cc": [
        "Estimate",   # multi-block aggregation loop
        "FoldBlock",  # per-block estimate fold (degraded-flag propagation)
    ],
    # Session pool: these run once per claimed batch item (CompileOne /
    # EstimateOne) or once per worker at merge time; keeping them pure
    # keeps the batch path's heap traffic identical to the serial loop's.
    "src/session/session_pool.cc": [
        "CompileOne",
        "EstimateOne",
        "MergeDelta",
    ],
    # Query completion: runs once per plan-mode compile; its counting twin
    # runs once per estimate and must never touch the heap.
    "src/optimizer/completion.cc": [
        "CompleteQuery",
        "CountCompletionPlans",
    ],
    # Property canonicalization runs per enumerated join (via
    # PropagateOrders / Useful), so its Into-variants are hot too.
    "src/optimizer/properties/order_property.cc": [
        "CanonicalizeInto",
    ],
    "src/optimizer/properties/partition_property.cc": [
        "CanonicalizeInto",
    ],
    "src/optimizer/properties/interesting_orders.cc": [
        "ActiveInterests",
        "Useful",
    ],
    # Union-find: Root runs per canonicalized column; AddEquivalence runs
    # per internal predicate per entry (quiescent after the first run).
    "src/query/equivalence.cc": [
        "Root",
        "AddEquivalence",
    ],
    # Matching is by unqualified name, so GetOrCreate / Find / NewPlan /
    # Insert cover both Memo:: and the MemoShard:: shard-fill twins in
    # this TU; AdoptShardRank is the per-rank merge (pointer adoption
    # only — entries and plans stay in the shard arenas they were born in).
    "src/optimizer/memo.cc": [
        "Index",
        "GetOrCreate",
        "Find",
        "NewPlan",
        "Insert",
        "AdoptShardRank",
    ],
    "src/query/query_graph.cc": [
        "ConnectingPredicates",
        "InternalPredicates",
        "AreConnected",
        "IsSubgraphConnected",
        "Neighbors",
        "OuterEnabled",
        "OuterJoinOrientationOk",
    ],
}

# Receivers allowed to call growth methods inside hot functions.
ALLOWED_RECEIVERS = {
    # Scratch buffers: cleared per call, capacity retained across calls.
    "out", "out_cols", "preds", "preds_", "pred_scratch", "pred_scratch_",
    "jcols_", "jparts_", "canon_inputs_", "listp_", "listc_",
    "distinct_orders_", "exists_", "cols_scratch_", "active_scratch_",
    # Entry-state property lists: grow only while new distinct property
    # values appear, so they are quiescent in steady state (and the
    # dedupe before every push is part of the Table 3 algorithm).
    "orders", "partitions", "compound",
    # Arenas and per-run structures: amortized growth by design (deque
    # arenas for entries/plans, flat bitmaps sized once per run).
    "plans", "plans_", "entry_arena_", "creation_order_", "arena_",
    "states_", "explored_flat_", "constructible_flat_",
    # Shard rank lists: one push per entry *created* in the rank (not per
    # join), cleared at the rank-barrier merge with capacity retained — so
    # they are quiescent on warm reruns like the arenas above.
    "created_", "created_masks_",
}

BANNED_ANYWHERE = [
    (re.compile(r"\bnew\b(?!\s*\()?"), "operator new in a hot function"),
    (re.compile(r"\bstd::unordered_map\s*<"), "std::unordered_map in a hot function"),
    (re.compile(r"\bstd::unordered_set\s*<"), "std::unordered_set in a hot function"),
    (re.compile(r"\bstd::map\s*<"), "std::map in a hot function"),
    (re.compile(r"\bstd::set\s*<"), "std::set in a hot function"),
    (re.compile(r"\bstd::function\s*<"), "std::function in a hot function"),
    (re.compile(r"\bstd::make_unique\s*<|\bstd::make_shared\s*<"),
     "heap-owning smart pointer in a hot function"),
]

GROWTH_CALL = re.compile(
    r"([A-Za-z_][A-Za-z0-9_]*(?:\s*(?:\.|->)\s*[A-Za-z_][A-Za-z0-9_]*)*)"
    r"\s*(?:\.|->)\s*"
    r"(push_back|emplace_back|emplace|insert|resize|assign|reserve)\s*\(")

LOCAL_CONTAINER_IN_LOOP = re.compile(
    r"\bstd::(?:vector|string|deque|list)\s*<[^;]*>\s+[A-Za-z_]"
    r"|\bstd::string\s+[A-Za-z_]")

ANNOTATION = re.compile(r"//\s*hotpath-ok\s*:\s*\S")

FUNC_DEF = re.compile(
    r"^(?!\s*//)[A-Za-z_][\w:<>,&*\s]*?\b(?:[A-Za-z_][A-Za-z0-9_]*::)?"
    r"(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\([^;]*$|"
    r"^(?!\s*//)[A-Za-z_][\w:<>,&*\s]*?\b(?:[A-Za-z_][A-Za-z0-9_]*::)?"
    r"(?P<name2>[A-Za-z_][A-Za-z0-9_]*)\s*\(.*\)\s*(?:const)?\s*\{")


def strip_comments_and_strings(line):
    """Removes // comments, string and char literals (keeps structure)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                if line[i] == "\\":
                    i += 1
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class Violation:
    def __init__(self, path, line_no, func, message, text):
        self.path = path
        self.line_no = line_no
        self.func = func
        self.message = message
        self.text = text.strip()

    def __str__(self):
        return (f"{self.path}:{self.line_no}: [{self.func}] {self.message}\n"
                f"    {self.text}")


def find_functions(lines, wanted):
    """Yields (name, start_idx, end_idx) for wanted function definitions.

    Brace-counting parser: a definition is a column-0 line (the style the
    codebase is written in — statements are always indented) mentioning
    `name(` whose statement ends with `{` rather than `;`.
    """
    spans = []
    i = 0
    n = len(lines)
    while i < n:
        stripped = strip_comments_and_strings(lines[i])
        matched = None
        at_col0 = bool(lines[i]) and not lines[i][0].isspace() and \
            not lines[i].startswith(("}", "#", "//", "/*"))
        if at_col0:
            for name in wanted:
                if re.search(r"\b%s\s*\(" % re.escape(name), stripped) and \
                        not re.match(r"\s*(?:if|for|while|switch|return)\b",
                                     stripped):
                    matched = name
                    break
        if matched is not None:
            # Scan forward to the first '{' or ';' that closes the
            # declarator (at paren depth 0).
            j = i
            paren = 0
            body_start = None
            is_decl_only = False
            while j < n:
                s = strip_comments_and_strings(lines[j])
                for k, ch in enumerate(s):
                    if ch == "(":
                        paren += 1
                    elif ch == ")":
                        paren -= 1
                    elif ch == ";" and paren == 0:
                        is_decl_only = True
                        break
                    elif ch == "{" and paren == 0:
                        body_start = (j, k)
                        break
                if body_start or is_decl_only:
                    break
                j += 1
            if is_decl_only or body_start is None:
                i += 1
                continue
            # Brace-count from body_start to the matching close.
            bj, bk = body_start
            brace = 0
            end = None
            for jj in range(bj, n):
                s = strip_comments_and_strings(lines[jj])
                start_k = bk if jj == bj else 0
                for ch in s[start_k:]:
                    if ch == "{":
                        brace += 1
                    elif ch == "}":
                        brace -= 1
                        if brace == 0:
                            end = jj
                            break
                if end is not None:
                    break
            if end is None:
                raise RuntimeError(
                    f"unbalanced braces scanning function '{matched}'")
            spans.append((matched, i, end))
            i = end + 1
            continue
        i += 1
    return spans


def lint_function(path, lines, name, start, end):
    violations = []
    # Loop depth tracking within the function body.
    loop_depth_stack = []  # brace depths at which a loop body began
    brace = 0
    pending_loop = False
    for idx in range(start, end + 1):
        raw = lines[idx]
        stripped = strip_comments_and_strings(raw)
        annotated = (ANNOTATION.search(raw) or
                     (idx > 0 and ANNOTATION.search(lines[idx - 1])))

        in_loop = len(loop_depth_stack) > 0
        if not annotated:
            for pattern, message in BANNED_ANYWHERE:
                if pattern.search(stripped):
                    violations.append(
                        Violation(path, idx + 1, name, message, raw))
            for m in GROWTH_CALL.finditer(stripped):
                receiver = re.split(r"\s*(?:\.|->)\s*", m.group(1))[-1]
                base = re.split(r"\s*(?:\.|->)\s*", m.group(1))[0]
                if receiver not in ALLOWED_RECEIVERS and \
                        base not in ALLOWED_RECEIVERS:
                    violations.append(Violation(
                        path, idx + 1, name,
                        f"growth call {m.group(2)}() on non-scratch "
                        f"receiver '{m.group(1)}'", raw))
            if in_loop and LOCAL_CONTAINER_IN_LOOP.search(stripped):
                violations.append(Violation(
                    path, idx + 1, name,
                    "local standard container declared inside a loop", raw))

        if re.search(r"\b(?:for|while)\s*\(", stripped) or \
                re.search(r"\bdo\s*\{", stripped):
            pending_loop = True
        for ch in stripped:
            if ch == "{":
                brace += 1
                if pending_loop:
                    loop_depth_stack.append(brace)
                    pending_loop = False
            elif ch == "}":
                if loop_depth_stack and loop_depth_stack[-1] == brace:
                    loop_depth_stack.pop()
                brace -= 1
    return violations


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo-root", default=None,
                        help="repository root (default: parent of tools/)")
    args = parser.parse_args()
    root = Path(args.repo_root) if args.repo_root else \
        Path(__file__).resolve().parent.parent

    all_violations = []
    config_errors = []
    for rel, wanted in HOT_FUNCTIONS.items():
        path = root / rel
        if not path.exists():
            config_errors.append(f"hot-path file missing: {rel}")
            continue
        lines = path.read_text().splitlines()
        try:
            spans = find_functions(lines, wanted)
        except RuntimeError as e:
            config_errors.append(f"{rel}: {e}")
            continue
        found = {name for name, _, _ in spans}
        for name in wanted:
            if name not in found:
                config_errors.append(
                    f"{rel}: configured hot function '{name}' not found "
                    f"(renamed? update tools/hotpath_lint.py)")
        for name, start, end in spans:
            all_violations.extend(lint_function(rel, lines, name, start, end))

    for err in config_errors:
        print(f"hotpath_lint: config error: {err}", file=sys.stderr)
    for v in all_violations:
        print(v, file=sys.stderr)
    if config_errors:
        return 2
    if all_violations:
        print(f"hotpath_lint: {len(all_violations)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"hotpath_lint: clean "
          f"({sum(len(v) for v in HOT_FUNCTIONS.values())} hot functions "
          f"across {len(HOT_FUNCTIONS)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
