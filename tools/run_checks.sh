#!/usr/bin/env bash
# Tier-2 gate for the COTE repo: one driver that runs every static and
# dynamic check this codebase ships. Exits non-zero if any gate fails,
# and ends with a one-line PASS/SKIP/FAIL summary table per gate.
#
#   1. warnings-as-errors build      (-DCOTE_WERROR=ON, src/ scope)
#   2. full test suite               (ctest on the werror build)
#   3. clang-format check            (--dry-run -Werror; skipped w/ notice
#                                     if clang-format is not installed)
#   4. clang-tidy                    (.clang-tidy profile over src/;
#                                     skipped w/ notice if not installed)
#   5. hot-path purity lint          (tools/hotpath_lint.py)
#   6. determinism lint              (tools/determinism_lint.py: banned
#                                     nondeterminism on the enumeration/
#                                     merge/plan-choice/signature paths +
#                                     sync_inventory.json cross-check +
#                                     fixture selftest)
#   7. thread-safety analysis        (Clang -Wthread-safety -Werror over
#                                     the annotated tree, plus the seeded
#                                     negative fixture, which must FAIL to
#                                     compile; skipped w/ notice when no
#                                     clang++ is installed — the GCC gates
#                                     still prove the macros are no-ops)
#   8. Debug + ASan/UBSan cycle      (-DCOTE_SANITIZE=address,undefined;
#                                     Debug so COTE_DCHECK contracts and
#                                     their death tests run for real — and
#                                     asserts the fault-injection and
#                                     parallel-session suites ran in it)
#   9. TSan cycle                    (-DCOTE_SANITIZE=thread over the
#                                     session + fault-injection + parallel-
#                                     enumerator + compile-service +
#                                     async-executor tests: vets the pool's
#                                     queue cursor, stats merge, the shared
#                                     statement cache, per-query budget
#                                     re-arming, the fault hook's install/
#                                     consult protocol, the rank-
#                                     parallel enumerator's shard fill /
#                                     barrier merge / cancel broadcast, and
#                                     the async executor's condvar/ready-
#                                     queue worker handoff; ends with the
#                                     bounded fixed-seed chaos-soak gate —
#                                     overload + faults + trips + external
#                                     cancels through both front-ends,
#                                     30 s per-test ceiling)
#
# Usage: tools/run_checks.sh [--skip-san] [--jobs N]
#   --skip-san   skip the (slow) sanitizer configure/build/test cycles
#   --jobs N     parallelism for builds and ctest (default: nproc)
#
# Build trees live under build-checks/ (werror), build-checks-san/
# (sanitized Debug), build-checks-tsan/ and build-checks-tsa/ (clang
# thread-safety); all are disposable and gitignored.

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
SKIP_SAN=0

while [ $# -gt 0 ]; do
  case "$1" in
    --skip-san) SKIP_SAN=1 ;;
    --jobs) shift; JOBS="$1" ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

FAILURES=0
GATE_NAMES=()
GATE_STATUSES=()
CURRENT=-1

# gate "<n/total>" "<name>" opens a summary row; fail/skip inside the
# gate downgrade its status (FAIL sticks; SKIP only from PASS, so a gate
# that both skipped something and failed something reports FAIL).
gate() {
  CURRENT=$((CURRENT+1))
  GATE_NAMES+=("$2")
  GATE_STATUSES+=("PASS")
  printf '\n== [%s] %s\n' "$1" "$2"
}
fail() {
  printf 'run_checks: FAIL: %s\n' "$*" >&2
  FAILURES=$((FAILURES+1))
  GATE_STATUSES[$CURRENT]="FAIL"
}
skip() {
  printf 'run_checks: SKIP: %s\n' "$*"
  if [ "${GATE_STATUSES[$CURRENT]}" = "PASS" ]; then
    GATE_STATUSES[$CURRENT]="SKIP"
  fi
}

# ---- 1. warnings-as-errors build ------------------------------------------
gate "1/9" "warnings-as-errors build (COTE_WERROR=ON)"
WERROR_DIR="$ROOT/build-checks"
if cmake -S "$ROOT" -B "$WERROR_DIR" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCOTE_WERROR=ON >/dev/null \
   && cmake --build "$WERROR_DIR" -j "$JOBS" >/dev/null; then
  echo "werror build: OK"
else
  fail "werror build (re-run: cmake --build $WERROR_DIR -j $JOBS)"
fi

# ---- 2. full test suite ----------------------------------------------------
gate "2/9" "full test suite (ctest)"
if [ -f "$WERROR_DIR/CTestTestfile.cmake" ]; then
  if (cd "$WERROR_DIR" && ctest -j "$JOBS" --output-on-failure \
        >ctest.log 2>&1); then
    echo "ctest: OK ($(grep -c 'Passed' "$WERROR_DIR/ctest.log" || true) passed)"
  else
    tail -40 "$WERROR_DIR/ctest.log"
    fail "ctest (full log: $WERROR_DIR/ctest.log)"
  fi
else
  fail "ctest: no test tree in $WERROR_DIR (werror build failed?)"
fi

# ---- 3. clang-format (check-only; never reformats) -------------------------
gate "3/9" "clang-format --dry-run -Werror"
if command -v clang-format >/dev/null 2>&1; then
  FMT_FILES="$(cd "$ROOT" && git ls-files 'src/*.h' 'src/*.cc' \
               'tests/*.h' 'tests/*.cc' 'bench/*.cc' 'examples/*.cpp')"
  if (cd "$ROOT" && echo "$FMT_FILES" | xargs clang-format --dry-run -Werror); then
    echo "clang-format: OK"
  else
    fail "clang-format (files diverge from .clang-format; do NOT bulk-reformat — fix the lines you touched)"
  fi
else
  skip "clang-format not installed; .clang-format profile not enforced here"
fi

# ---- 4. clang-tidy ---------------------------------------------------------
gate "4/9" "clang-tidy (.clang-tidy profile over src/)"
if command -v clang-tidy >/dev/null 2>&1; then
  # The werror tree always has a compilation database: the top-level
  # CMakeLists defaults CMAKE_EXPORT_COMPILE_COMMANDS to ON.
  TIDY_SRCS="$(cd "$ROOT" && git ls-files 'src/*.cc')"
  if (cd "$ROOT" && echo "$TIDY_SRCS" | \
        xargs clang-tidy -p "$WERROR_DIR" --quiet); then
    echo "clang-tidy: OK"
  else
    fail "clang-tidy"
  fi
else
  skip "clang-tidy not installed; .clang-tidy profile not enforced here"
fi

# ---- 5. hot-path purity lint ----------------------------------------------
gate "5/9" "hot-path purity lint (tools/hotpath_lint.py)"
if python3 "$ROOT/tools/hotpath_lint.py" --repo-root "$ROOT"; then
  echo "hotpath_lint: OK"
else
  fail "hotpath_lint"
fi

# The session layer owns the warm compile path and the service layer sits
# directly in front of it (admission runs the estimate on every arrival),
# so every src/session/ and src/service/ TU must be registered in the lint
# manifest — new code on those paths cannot dodge the purity check by
# simply not being listed.
MISSING_SESSION=""
for f in "$ROOT"/src/session/*.cc "$ROOT"/src/service/*.cc; do
  rel="${f#"$ROOT"/}"
  if ! grep -q "\"$rel\"" "$ROOT/tools/hotpath_lint.py"; then
    MISSING_SESSION="$MISSING_SESSION $rel"
  fi
done
if [ -n "$MISSING_SESSION" ]; then
  fail "hotpath_lint manifest is missing session/service TU(s):$MISSING_SESSION"
else
  echo "session/service lint manifest coverage: OK"
fi

# ---- 6. determinism lint ---------------------------------------------------
# Selftest first (the lint must still catch its known-bad fixtures —
# otherwise a clean tree result means nothing), then the tree + the
# sync_inventory.json cross-check.
gate "6/9" "determinism lint (tools/determinism_lint.py)"
if python3 "$ROOT/tools/determinism_lint.py" --selftest; then
  echo "determinism_lint selftest: OK"
else
  fail "determinism_lint selftest (the lint itself regressed)"
fi
if python3 "$ROOT/tools/determinism_lint.py" --repo-root "$ROOT"; then
  echo "determinism_lint: OK"
else
  fail "determinism_lint"
fi

# Every scheduling/admission decision must replay bit-identically under a
# virtual clock, so every src/service/ TU must be in the determinism
# manifest too.
MISSING_SERVICE_DET=""
for f in "$ROOT"/src/service/*.cc; do
  rel="src/service/$(basename "$f")"
  if ! grep -q "\"$rel\"" "$ROOT/tools/determinism_lint.py"; then
    MISSING_SERVICE_DET="$MISSING_SERVICE_DET $rel"
  fi
done
if [ -n "$MISSING_SERVICE_DET" ]; then
  fail "determinism_lint manifest is missing service TU(s):$MISSING_SERVICE_DET"
else
  echo "service determinism manifest coverage: OK"
fi

# ---- 7. Clang thread-safety analysis ---------------------------------------
# Builds the annotated tree under -Wthread-safety -Werror (wired into
# COTE_WERROR for Clang in src/CMakeLists.txt) and then proves the
# analysis actually fires by compiling the seeded forgotten-lock fixture,
# which MUST fail. GCC-only machines skip: the macros are no-ops there
# (gates 1/2/8/9 still compile and run them), and
# tests/common/thread_annotations_test re-checks all of this in-suite.
gate "7/9" "Clang thread-safety analysis (-Wthread-safety -Werror)"
if command -v clang++ >/dev/null 2>&1; then
  TSA_DIR="$ROOT/build-checks-tsa"
  if cmake -S "$ROOT" -B "$TSA_DIR" -DCMAKE_CXX_COMPILER=clang++ \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCOTE_WERROR=ON >/dev/null \
     && cmake --build "$TSA_DIR" -j "$JOBS" \
          --target cote_common cote_query cote_optimizer cote_core \
          cote_service >/dev/null; then
    echo "clang -Wthread-safety build: OK"
  else
    fail "clang -Wthread-safety build (annotations out of sync with locking)"
  fi
  if clang++ -std=c++20 -fsyntax-only -Wthread-safety -Werror \
        -I "$ROOT/src" \
        "$ROOT/tests/common/fixtures/thread_safety_negative.cc" \
        >/dev/null 2>&1; then
    fail "seeded unguarded-access fixture compiled clean: the analysis did not fire"
  else
    echo "negative fixture rejected by -Wthread-safety: OK"
  fi
else
  skip "clang++ not installed; thread-safety analysis not enforced here"
fi

# ---- 8. Debug + ASan/UBSan cycle ------------------------------------------
# Debug (no NDEBUG) turns the COTE_DCHECK contracts on, so this cycle is
# the one that actually executes the debug-only death tests; the
# sanitizers vet the bit-twiddling enumeration fast path. The fault-
# injection and parallel-session suites must demonstrably run inside it —
# their error paths are exactly where sanitizers earn their keep.
if [ "$SKIP_SAN" = 1 ]; then
  gate "8/9" "Debug + ASan/UBSan cycle"
  skip "sanitizer cycle (--skip-san)"
else
  gate "8/9" "Debug + ASan/UBSan cycle (COTE_SANITIZE=address,undefined)"
  SAN_DIR="$ROOT/build-checks-san"
  if cmake -S "$ROOT" -B "$SAN_DIR" -DCMAKE_BUILD_TYPE=Debug \
        -DCOTE_SANITIZE=address,undefined >/dev/null \
     && cmake --build "$SAN_DIR" -j "$JOBS" >/dev/null; then
    for bin in fault_injection_test parallel_session_test; do
      if [ ! -x "$SAN_DIR/tests/$bin" ]; then
        fail "sanitized Debug build did not produce tests/$bin"
      fi
    done
    if (cd "$SAN_DIR" && ctest -j "$JOBS" --output-on-failure \
          >ctest.log 2>&1); then
      echo "sanitized Debug ctest: OK"
      for fixture in SessionFaultTest SessionParallel; do
        if grep -q "$fixture" "$SAN_DIR/ctest.log"; then
          echo "sanitized coverage includes $fixture: OK"
        else
          fail "sanitized ctest ran no $fixture fixtures (suite renamed or not discovered?)"
        fi
      done
    else
      tail -40 "$SAN_DIR/ctest.log"
      fail "sanitized Debug ctest (full log: $SAN_DIR/ctest.log)"
    fi
  else
    fail "sanitized Debug build"
  fi
fi

# ---- 9. TSan cycle over the session layer ----------------------------------
# The pool's synchronization points are the queue cursor, the stats merge
# at join, the mutex-guarded statement cache, and (new with governance) the
# worker-local budget re-arm per claimed query plus the fault hook's
# release/acquire install-consult pair; running the session tests (pool
# determinism, stress, shared-cache contention) and the fault-injection
# suite (SessionFaultTest / SessionPoolFaultTest fixtures — scripted pool
# faults under concurrency) vets all of them. The rank-parallel enumerator
# adds parallel_session_test (SessionParallel* fixtures: shard fill /
# rank-barrier merge, the shared cancel flag, budget fold-and-trip, and
# team teardown under injected faults — this run IS the race-freedom proof
# the golden-equivalence suite assumes). The compile service's closed-loop
# batch path (service_test, Service* fixtures) drives the pool's real
# threads through per-query limits and the shared statement cache, so it
# races here too, and async_service_test (AsyncService* fixtures, >= 4
# worker threads) races the live executor's condvar/ready-queue handoff,
# per-worker warm sessions, and guarded results sink — the TSan run is the
# dynamic half of the oracle test's determinism claim. chaos_soak_test
# (ChaosSoakServiceTest / ServiceBudgetCancelTest fixtures) is the
# overload-resilience soak: seeded overload + injected faults + budget
# trips + supervisor cancels through both front-ends; it runs as its own
# bounded step below (fixed seeds in the test source, 30 s per-test
# ceiling) so a wedged soak fails the gate instead of hanging it. Only
# these six targets are built — the full suite under TSan would be
# prohibitively slow and single-threaded tests have nothing for TSan to
# find.
if [ "$SKIP_SAN" = 1 ]; then
  gate "9/9" "TSan cycle"
  skip "TSan cycle (--skip-san)"
else
  gate "9/9" "ThreadSanitizer cycle (COTE_SANITIZE=thread, session+service)"
  TSAN_DIR="$ROOT/build-checks-tsan"
  if cmake -S "$ROOT" -B "$TSAN_DIR" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCOTE_SANITIZE=thread >/dev/null \
     && cmake --build "$TSAN_DIR" -j "$JOBS" \
          --target session_test fault_injection_test parallel_session_test \
          service_test async_service_test chaos_soak_test >/dev/null; then
    # -R hits the session + service fixtures; unbuilt targets only register
    # lowercase *_NOT_BUILT placeholders, which the regex cannot match.
    # The chaos soak runs as its own bounded step, so exclude it here.
    if (cd "$TSAN_DIR" && ctest -j "$JOBS" -R 'Session|Service' \
          -E 'ChaosSoak|BudgetCancel' --output-on-failure >ctest.log 2>&1); then
      echo "TSan session+service ctest: OK"
    else
      tail -40 "$TSAN_DIR/ctest.log"
      fail "TSan session+service ctest (full log: $TSAN_DIR/ctest.log)"
    fi
    # Bounded chaos-soak gate: the seeds are fixed in the test source, so
    # this is a deterministic replay, and --timeout turns a wedged soak
    # (lost ticket, stuck Drain, supervisor deadlock) into a FAIL within
    # 30 s per test instead of hanging the whole gate.
    if (cd "$TSAN_DIR" && ctest -j "$JOBS" -R 'ChaosSoak|BudgetCancel' \
          --timeout 30 --output-on-failure >ctest-chaos.log 2>&1); then
      if grep -q 'ChaosSoakServiceTest' "$TSAN_DIR/ctest-chaos.log"; then
        echo "TSan chaos-soak gate: OK"
      else
        fail "TSan chaos gate ran no ChaosSoakServiceTest fixtures (suite renamed or not discovered?)"
      fi
    else
      tail -40 "$TSAN_DIR/ctest-chaos.log"
      fail "TSan chaos-soak gate (full log: $TSAN_DIR/ctest-chaos.log)"
    fi
  else
    fail "TSan build"
  fi
fi

# ---------------------------------------------------------------------------
printf '\n== gate summary\n'
i=0
while [ $i -le $CURRENT ]; do
  printf '  %-4s  %s\n' "${GATE_STATUSES[$i]}" "${GATE_NAMES[$i]}"
  i=$((i+1))
done
printf '\n'
if [ "$FAILURES" -gt 0 ]; then
  echo "run_checks: $FAILURES gate(s) FAILED"
  exit 1
fi
echo "run_checks: all gates passed"
