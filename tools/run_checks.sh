#!/usr/bin/env bash
# Tier-2 gate for the COTE repo: one driver that runs every static and
# dynamic check this codebase ships. Exits non-zero if any gate fails.
#
#   1. warnings-as-errors build      (-DCOTE_WERROR=ON, src/ scope)
#   2. full test suite               (ctest on the werror build)
#   3. clang-format check            (--dry-run -Werror; skipped w/ notice
#                                     if clang-format is not installed)
#   4. clang-tidy                    (.clang-tidy profile over src/;
#                                     skipped w/ notice if not installed)
#   5. hot-path purity lint          (tools/hotpath_lint.py)
#   6. Debug + ASan/UBSan cycle      (-DCOTE_SANITIZE=address,undefined;
#                                     Debug so COTE_DCHECK contracts and
#                                     their death tests run for real — this
#                                     is also where the fault-injection
#                                     suite's error paths run sanitized)
#   7. TSan cycle                    (-DCOTE_SANITIZE=thread over the
#                                     session + fault-injection + parallel-
#                                     enumerator tests: vets the pool's
#                                     queue cursor, stats merge, the shared
#                                     statement cache, per-query budget
#                                     re-arming, the fault hook's install/
#                                     consult protocol, and the rank-
#                                     parallel enumerator's shard fill /
#                                     barrier merge / cancel broadcast)
#
# Usage: tools/run_checks.sh [--skip-san] [--jobs N]
#   --skip-san   skip the (slow) sanitizer configure/build/test cycles
#   --jobs N     parallelism for builds and ctest (default: nproc)
#
# Build trees live under build-checks/ (werror), build-checks-san/
# (sanitized Debug) and build-checks-tsan/; all are disposable and
# gitignored.

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
SKIP_SAN=0

while [ $# -gt 0 ]; do
  case "$1" in
    --skip-san) SKIP_SAN=1 ;;
    --jobs) shift; JOBS="$1" ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

FAILURES=0
note()  { printf '\n== %s\n' "$*"; }
fail()  { printf 'run_checks: FAIL: %s\n' "$*" >&2; FAILURES=$((FAILURES+1)); }
skip()  { printf 'run_checks: SKIP: %s\n' "$*"; }

# ---- 1. warnings-as-errors build ------------------------------------------
note "[1/7] warnings-as-errors build (COTE_WERROR=ON)"
WERROR_DIR="$ROOT/build-checks"
if cmake -S "$ROOT" -B "$WERROR_DIR" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCOTE_WERROR=ON >/dev/null \
   && cmake --build "$WERROR_DIR" -j "$JOBS" >/dev/null; then
  echo "werror build: OK"
else
  fail "werror build (re-run: cmake --build $WERROR_DIR -j $JOBS)"
fi

# ---- 2. full test suite ----------------------------------------------------
note "[2/7] full test suite (ctest)"
if [ -f "$WERROR_DIR/CTestTestfile.cmake" ]; then
  if (cd "$WERROR_DIR" && ctest -j "$JOBS" --output-on-failure \
        >ctest.log 2>&1); then
    echo "ctest: OK ($(grep -c 'Passed' "$WERROR_DIR/ctest.log" || true) passed)"
  else
    tail -40 "$WERROR_DIR/ctest.log"
    fail "ctest (full log: $WERROR_DIR/ctest.log)"
  fi
else
  fail "ctest: no test tree in $WERROR_DIR (werror build failed?)"
fi

# ---- 3. clang-format (check-only; never reformats) -------------------------
note "[3/7] clang-format --dry-run -Werror"
if command -v clang-format >/dev/null 2>&1; then
  FMT_FILES="$(cd "$ROOT" && git ls-files 'src/*.h' 'src/*.cc' \
               'tests/*.h' 'tests/*.cc' 'bench/*.cc' 'examples/*.cpp')"
  if (cd "$ROOT" && echo "$FMT_FILES" | xargs clang-format --dry-run -Werror); then
    echo "clang-format: OK"
  else
    fail "clang-format (files diverge from .clang-format; do NOT bulk-reformat — fix the lines you touched)"
  fi
else
  skip "clang-format not installed; .clang-format profile not enforced here"
fi

# ---- 4. clang-tidy ---------------------------------------------------------
note "[4/7] clang-tidy (.clang-tidy profile over src/)"
if command -v clang-tidy >/dev/null 2>&1; then
  # The werror tree has a compilation database when configured with
  # CMAKE_EXPORT_COMPILE_COMMANDS; generate it on demand.
  cmake -S "$ROOT" -B "$WERROR_DIR" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    >/dev/null
  TIDY_SRCS="$(cd "$ROOT" && git ls-files 'src/*.cc')"
  if (cd "$ROOT" && echo "$TIDY_SRCS" | \
        xargs clang-tidy -p "$WERROR_DIR" --quiet); then
    echo "clang-tidy: OK"
  else
    fail "clang-tidy"
  fi
else
  skip "clang-tidy not installed; .clang-tidy profile not enforced here"
fi

# ---- 5. hot-path purity lint ----------------------------------------------
note "[5/7] hot-path purity lint (tools/hotpath_lint.py)"
if python3 "$ROOT/tools/hotpath_lint.py" --repo-root "$ROOT"; then
  echo "hotpath_lint: OK"
else
  fail "hotpath_lint"
fi

# The session layer owns the warm compile path, so every src/session/ TU
# must be registered in the lint manifest — new session code cannot dodge
# the purity check by simply not being listed.
MISSING_SESSION=""
for f in "$ROOT"/src/session/*.cc; do
  rel="src/session/$(basename "$f")"
  if ! grep -q "\"$rel\"" "$ROOT/tools/hotpath_lint.py"; then
    MISSING_SESSION="$MISSING_SESSION $rel"
  fi
done
if [ -n "$MISSING_SESSION" ]; then
  fail "hotpath_lint manifest is missing session TU(s):$MISSING_SESSION"
else
  echo "session lint manifest coverage: OK"
fi

# ---- 6. Debug + ASan/UBSan cycle ------------------------------------------
# Debug (no NDEBUG) turns the COTE_DCHECK contracts on, so this cycle is
# the one that actually executes the debug-only death tests; the
# sanitizers vet the bit-twiddling enumeration fast path.
if [ "$SKIP_SAN" = 1 ]; then
  note "[6/7] sanitizer cycle"
  skip "sanitizer cycle (--skip-san)"
else
  note "[6/7] Debug + ASan/UBSan cycle (COTE_SANITIZE=address,undefined)"
  SAN_DIR="$ROOT/build-checks-san"
  if cmake -S "$ROOT" -B "$SAN_DIR" -DCMAKE_BUILD_TYPE=Debug \
        -DCOTE_SANITIZE=address,undefined >/dev/null \
     && cmake --build "$SAN_DIR" -j "$JOBS" >/dev/null; then
    if (cd "$SAN_DIR" && ctest -j "$JOBS" --output-on-failure \
          >ctest.log 2>&1); then
      echo "sanitized Debug ctest: OK"
    else
      tail -40 "$SAN_DIR/ctest.log"
      fail "sanitized Debug ctest (full log: $SAN_DIR/ctest.log)"
    fi
  else
    fail "sanitized Debug build"
  fi
fi

# ---- 7. TSan cycle over the session layer ----------------------------------
# The pool's synchronization points are the queue cursor, the stats merge
# at join, the mutex-guarded statement cache, and (new with governance) the
# worker-local budget re-arm per claimed query plus the fault hook's
# release/acquire install-consult pair; running the session tests (pool
# determinism, stress, shared-cache contention) and the fault-injection
# suite (SessionFaultTest / SessionPoolFaultTest fixtures — scripted pool
# faults under concurrency) vets all of them. The rank-parallel enumerator
# adds parallel_session_test (SessionParallel* fixtures: shard fill /
# rank-barrier merge, the shared cancel flag, budget fold-and-trip, and
# team teardown under injected faults — this run IS the race-freedom proof
# the golden-equivalence suite assumes). Only these three targets are
# built — the full suite under TSan would be prohibitively slow and
# single-threaded tests have nothing for TSan to find.
if [ "$SKIP_SAN" = 1 ]; then
  note "[7/7] TSan cycle"
  skip "TSan cycle (--skip-san)"
else
  note "[7/7] ThreadSanitizer cycle (COTE_SANITIZE=thread, tests/session)"
  TSAN_DIR="$ROOT/build-checks-tsan"
  if cmake -S "$ROOT" -B "$TSAN_DIR" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCOTE_SANITIZE=thread >/dev/null \
     && cmake --build "$TSAN_DIR" -j "$JOBS" \
          --target session_test fault_injection_test parallel_session_test \
          >/dev/null; then
    # -R Session hits the session fixtures; unbuilt targets only register
    # lowercase *_NOT_BUILT placeholders, which the regex cannot match.
    if (cd "$TSAN_DIR" && ctest -j "$JOBS" -R 'Session' --output-on-failure \
          >ctest.log 2>&1); then
      echo "TSan session ctest: OK"
    else
      tail -40 "$TSAN_DIR/ctest.log"
      fail "TSan session ctest (full log: $TSAN_DIR/ctest.log)"
    fi
  else
    fail "TSan build"
  fi
fi

# ---------------------------------------------------------------------------
printf '\n'
if [ "$FAILURES" -gt 0 ]; then
  echo "run_checks: $FAILURES gate(s) FAILED"
  exit 1
fi
echo "run_checks: all gates passed"
