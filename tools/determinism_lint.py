#!/usr/bin/env python3
"""Determinism lint for the COTE enumeration / merge / plan-choice paths.

The repo's headline concurrency guarantee is *bit-identical plan choice*:
parallel enumeration, batch compilation, and the statement cache must
produce exactly the plans (and costs, and signatures) a serial run
produces (DESIGN.md §13; pinned dynamically by the 18 golden equivalence
tests and the parallel/serial oracle suites). This lint bans the statically
detectable ways that guarantee quietly rots:

  unordered-iteration   iterating a std::unordered_{map,set,...} in a
                        manifested function (hash-order is
                        implementation- and run-dependent; probes like
                        find()/count() are fine and unflagged)
  pointer-key           std::hash/std::less over pointer types, or
                        pointer-to-integer reinterpret_casts — address-
                        dependent ordering differs run to run under ASLR
  time-source           std::chrono / clock ::now() / StopWatch readings
                        inside a determinism-critical function
  random-source         rand()/srand()/std::mt19937/random_device
  thread-identity       std::this_thread::get_id / std::thread::id
  float-accumulation    `x += f` on a float/double in a merge-tagged
                        function: FP addition is non-associative, so the
                        fold order must be pinned (worker order / input
                        order) and the line annotated
  sync-inventory        drift between tools/sync_inventory.json and the
                        actual mutex/atomic/condvar declarations in src/
                        (both directions: undocumented primitive, or
                        stale inventory entry)

Escape hatch: `// det-ok: <reason>` on the line or the line above, reason
mandatory — for deliberate, documented uses (e.g. instrumentation timers
whose readings never feed plan choice, or float folds whose order is
pinned at a barrier).

Shares the manifest/parser/escape machinery with tools/hotpath_lint.py
via tools/lint_common.py, including the stale-entry discipline: a
manifested function that no longer exists is a configuration error.

Exit status: 0 clean, 1 violations, 2 configuration error.
--selftest runs the lint over its known-bad/known-good fixtures in
tools/fixtures/determinism/ plus regressions for the shared machinery.
"""

import argparse
import json
import re
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lint_common import (Violation, escape_annotation_re, is_escaped,
                         scan_manifest_file, strip_comments_and_strings)

DET_OK = escape_annotation_re("det-ok")

# file -> {manifest function name -> tags}. The only tag today is
# "merge": the function folds worker/shard results and additionally gets
# the float-accumulation check. Header files are parsed with
# allow_indented (class-inline definitions).
DET_FUNCTIONS = {
    "src/optimizer/enumerator.cc": {
        "JoinEnumerator::Run": (),
    },
    "src/optimizer/topdown_enumerator.cc": {
        "TopDownEnumerator::Run": (),
        "TopDownEnumerator::Explore": (),
        "TopDownEnumerator::Lookup": (),
        "TopDownEnumerator::Store": (),
    },
    "src/optimizer/parallel_enumerator.cc": {
        "ParallelEnumerator::Run": ("merge",),
        "ParallelEnumerator::RunRankSlice": (),
        "ParallelEnumerator::FoldBudgets": ("merge",),
    },
    "src/optimizer/gosper_partition.cc": {
        "GosperRankSize": (),
        "GosperUnrank": (),
        "PartitionGosperRank": (),
    },
    "src/optimizer/memo.cc": {
        "Memo::Insert": (),
        "Memo::InsertPruned": (),
        "Memo::AdoptShardRank": ("merge",),
        "MemoShard::Insert": (),
        "MemoEntry::Cheapest": (),
        "MemoEntry::CheapestSatisfying": (),
    },
    "src/core/plan_counter.cc": {
        "PlanCounter::AdoptShardRank": ("merge",),
        "PlanCounter::OnJoin": (),
        "PlanCounter::AddPlans": (),
    },
    "src/optimizer/greedy_optimizer.cc": {
        "GreedyOptimizer::ScanPlan": (),
        "GreedyOptimizer::Run": (),
    },
    "src/core/statement_cache.cc": {
        "CompileTimeCache::Signature": (),
    },
    "src/session/compilation_context.cc": {
        "CompilationContext::Fingerprint": (),
    },
    "src/session/session_pool.cc": {
        "MergeDelta": ("merge",),
        "SessionPool::RunBatch": ("merge",),
    },
    # Service front-end: every scheduling/admission decision must replay
    # bit-identically under a virtual clock (the service_test determinism
    # anchor). Run's only time reads go through the injected Clock, and
    # the trace generator's only randomness is the seeded cote::Rng.
    "src/service/scheduler.cc": {
        "SchedulesBefore": (),
        "ShedsFirst": (),
        "ReadyQueue::Push": (),
        "ReadyQueue::PopNext": (),
        "ReadyQueue::Offer": (),
    },
    "src/service/admission.cc": {
        "AdmissionStage::Admit": (),
    },
    "src/service/trip_tracker.cc": {
        "TripRateTracker::Record": (),
    },
    "src/service/arrival_trace.cc": {
        "MakeOpenLoopTrace": (),
    },
    "src/service/compile_service.cc": {
        "CompileService::Run": (),
        "ClassifyRecord": (),
        "BuildTaxonomy": (),
    },
    # Cross-thread cancellation wire: the trip itself must stay a pure
    # CAS on the atomic flag — no clock reads, no randomness — so a
    # supervisor trip replays identically wherever it lands.
    "src/common/resource_budget.h": {
        "FoldShardCharges": ("merge",),
        # TripExternal is a one-line delegate to Trip; contracting Trip
        # covers both (the parser attributes the delegate's body to the
        # Trip call inside it anyway).
        "Trip": (),
    },
    # Live async executor: Submit (admission + ticket assignment) and
    # Drain (ticket-order feedback application) are the two halves of its
    # determinism contract — the async-vs-simulated oracle test holds
    # exactly because neither depends on worker interleaving. The worker
    # loop itself is deliberately NOT determinism-critical: its wall-time
    # fields are the documented exclusion.
    "src/service/async_executor.cc": {
        "AsyncCompileService::Submit": (),
        "AsyncCompileService::Drain": (),
    },
}

UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<.*>\s+"
    r"([A-Za-z_]\w*)")
RANGE_FOR = re.compile(r"\bfor\s*\([^;()]*:\s*([^)]+)\)")
# begin() only: `it != m.end()` is the universal find()-probe sentinel
# and deterministic; you cannot start iterating without a begin().
ITER_CALL = re.compile(r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*c?begin\s*\(")

POINTER_KEY = [
    (re.compile(r"\bstd::hash\s*<[^>]*\*\s*>"),
     "std::hash over a pointer type (address-dependent, varies under ASLR)"),
    (re.compile(r"\bstd::less\s*<[^>]*\*\s*>"),
     "std::less over a pointer type (address order varies run to run)"),
    (re.compile(r"\breinterpret_cast\s*<\s*(?:std::)?(?:u?intptr_t|size_t)"
                r"\s*>"),
     "pointer-to-integer cast: feeding an address into a key or hash is "
     "nondeterministic across runs"),
]

TIME_SOURCE = [
    (re.compile(r"\bstd::chrono\b"), "std::chrono use"),
    (re.compile(r"::now\s*\("), "clock read"),
    (re.compile(r"\b(?:StopWatch|ScopedTimer)\b"),
     "timer in a determinism-critical function (instrumentation must "
     "carry a det-ok annotation)"),
]
RANDOM_SOURCE = [
    (re.compile(r"\b(?:rand|srand)\s*\("), "C random source"),
    (re.compile(r"\bstd::mt19937(?:_64)?\b|\brandom_device\b"),
     "std random source"),
]
THREAD_IDENTITY = [
    (re.compile(r"\bthis_thread\s*::\s*get_id\b|\bstd::thread::id\b"),
     "thread identity read (scheduling-dependent value)"),
]

FLOAT_FIELD_DECL = re.compile(
    r"\b(?:double|float)\s+([A-Za-z_]\w*)\s*(?:=[^;,()]*|\{[^;]*\})?\s*;")
ACCUM = re.compile(
    r"([A-Za-z_]\w*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*)\s*[+\-]=")

# Sync-primitive declaration, applied to comment/string-stripped lines.
# Matches defining member/global/local declarations of std::mutex,
# condition variables, std::atomic<...>, and the annotated cote wrappers;
# `extern` re-declarations and references/parameters do not match.
SYNC_DECL = re.compile(
    r"(?<![\w:])(?:"
    r"(?:std::)?(?P<m>mutex)|"
    r"(?:std::)?(?P<cv>condition_variable(?:_any)?)|"
    r"std::(?P<at>atomic)\s*<[^;{]*>|"
    r"(?P<wm>Mutex)|(?P<wcv>CondVar)"
    r")\s+(?P<name>[A-Za-z_]\w*)\s*(?:\{[^;]*\})?\s*;")


def collect_float_fields(lines):
    """Float/double field and variable names declared in `lines`."""
    out = set()
    for line in lines:
        s = strip_comments_and_strings(line)
        for m in FLOAT_FIELD_DECL.finditer(s):
            out.add(m.group(1))
    return out


def collect_unordered_names(lines):
    out = set()
    for line in lines:
        s = strip_comments_and_strings(line)
        for m in UNORDERED_DECL.finditer(s):
            out.add(m.group(1))
    return out


def lint_span(rel, lines, name, tags, start, end, unordered_names,
              float_fields):
    """All determinism checks over one function body."""
    violations = []
    local_floats = collect_float_fields(lines[start:end + 1])

    def flag(idx, message):
        if not is_escaped(lines, idx, DET_OK):
            violations.append(
                Violation(rel, idx + 1, name, message, lines[idx]))

    for idx in range(start, end + 1):
        s = strip_comments_and_strings(lines[idx])
        iterated = set()
        for m in RANGE_FOR.finditer(s):
            seq = m.group(1)
            for v in unordered_names:
                if re.search(r"\b%s\b" % re.escape(v), seq):
                    iterated.add(v)
            if "unordered" in seq:
                iterated.add(seq.strip())
        for m in ITER_CALL.finditer(s):
            if m.group(1) in unordered_names:
                iterated.add(m.group(1))
        for v in sorted(iterated):
            flag(idx, f"[unordered-iteration] iterates unordered container "
                      f"'{v}': hash order is not deterministic (probe with "
                      f"find()/count() or iterate a sorted copy)")
        for pat, why in POINTER_KEY:
            if pat.search(s):
                flag(idx, f"[pointer-key] {why}")
                break
        for pat, why in TIME_SOURCE:
            if pat.search(s):
                flag(idx, f"[time-source] {why}")
                break
        for pat, why in RANDOM_SOURCE:
            if pat.search(s):
                flag(idx, f"[random-source] {why}")
                break
        for pat, why in THREAD_IDENTITY:
            if pat.search(s):
                flag(idx, f"[thread-identity] {why}")
                break
        if "merge" in tags:
            for m in ACCUM.finditer(s):
                leaf = re.split(r"\.|->", m.group(1).replace(" ", ""))[-1]
                if leaf in float_fields or leaf in local_floats:
                    flag(idx,
                         f"[float-accumulation] '{m.group(1).strip()} +=' on "
                         f"a float in a merge fold: FP addition is "
                         f"non-associative, so the fold order must be "
                         f"pinned and the line det-ok-annotated")
    return violations


def lint_manifest(root, manifest, float_fields):
    """Runs the function checks for a manifest. Returns (violations, errs)."""
    violations, config_errors = [], []
    for rel in sorted(manifest):
        wanted = manifest[rel]
        lines, spans, errors = scan_manifest_file(
            root, rel, sorted(wanted), allow_indented=rel.endswith(".h"))
        config_errors.extend(errors)
        if not lines:
            continue
        unordered = set(collect_unordered_names(lines))
        header = root / (rel[:-3] + ".h")
        if rel.endswith(".cc") and header.exists():
            unordered |= collect_unordered_names(
                header.read_text().splitlines())
        file_floats = float_fields | collect_float_fields(lines)
        for name, start, end in spans:
            violations.extend(
                lint_span(rel, lines, name, wanted[name], start, end,
                          unordered, file_floats))
    return violations, config_errors


def scan_sync_decls(src_root):
    """All defining sync-primitive declarations under src/.

    Returns a set of (relative file, name, kind) with kind in
    {mutex, condvar, atomic}.
    """
    found = set()
    for path in sorted(src_root.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = str(path.relative_to(src_root.parent))
        for line in path.read_text().splitlines():
            s = strip_comments_and_strings(line)
            if re.search(r"\bextern\b|\busing\b|^\s*#", s):
                continue
            for m in SYNC_DECL.finditer(s):
                if m.group("m") or m.group("wm"):
                    kind = "mutex"
                elif m.group("cv") or m.group("wcv"):
                    kind = "condvar"
                else:
                    kind = "atomic"
                found.add((rel, m.group("name"), kind))
    return found


def check_sync_inventory(repo_root, inventory_path):
    """Cross-checks sync_inventory.json against src/ in both directions."""
    violations, config_errors = [], []
    if not inventory_path.exists():
        return [], [f"sync inventory missing: {inventory_path}"]
    try:
        inventory = json.loads(inventory_path.read_text())
        entries = {(e["file"], e["name"], e["kind"])
                   for e in inventory["entries"]}
    except (json.JSONDecodeError, KeyError, TypeError) as e:
        return [], [f"sync inventory unreadable: {inventory_path}: {e}"]
    declared = scan_sync_decls(repo_root / "src")
    inv_rel = str(inventory_path.relative_to(repo_root))
    for file, name, kind in sorted(declared - entries):
        violations.append(Violation(
            file, 0, name,
            f"[sync-inventory] undocumented {kind} '{name}': every "
            f"synchronization primitive in src/ must have an entry in "
            f"{inv_rel}", f"{kind} {name}"))
    for file, name, kind in sorted(entries - declared):
        violations.append(Violation(
            inv_rel, 0, name,
            f"[sync-inventory] stale entry: no {kind} named '{name}' is "
            f"declared in {file} (renamed or deleted? update the "
            f"inventory)", f"{kind} {name}"))
    return violations, config_errors


def run_tree_lint(repo_root):
    repo_root = Path(repo_root)
    float_fields = set()
    for path in sorted((repo_root / "src").rglob("*.h")):
        float_fields |= collect_float_fields(path.read_text().splitlines())
    violations, config_errors = lint_manifest(
        repo_root, DET_FUNCTIONS, float_fields)
    inv_v, inv_e = check_sync_inventory(
        repo_root, repo_root / "tools" / "sync_inventory.json")
    violations.extend(inv_v)
    config_errors.extend(inv_e)

    if config_errors:
        for e in config_errors:
            print(f"determinism_lint: config error: {e}", file=sys.stderr)
        return 2
    if violations:
        for v in violations:
            print(v, file=sys.stderr)
        print(f"determinism_lint: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    n_funcs = sum(len(v) for v in DET_FUNCTIONS.values())
    print(f"determinism_lint: clean ({n_funcs} functions across "
          f"{len(DET_FUNCTIONS)} files; sync inventory consistent)")
    return 0


# ---------------------------------------------------------------------------
# Selftest: fixtures + shared-machinery regressions.

FIXTURE_EXPECT = re.compile(r"//\s*expect-(fail|pass)\s*:?\s*([\w-]*)")
FIXTURE_TAGS = re.compile(r"//\s*lint-tags:\s*(.*)")


def selftest_fixtures(fixtures_dir):
    failures = []
    fixtures = sorted(fixtures_dir.glob("*.cc"))
    if not fixtures:
        return [f"no fixtures found in {fixtures_dir}"]
    for path in fixtures:
        lines = path.read_text().splitlines()
        text = "\n".join(lines)
        expects = FIXTURE_EXPECT.findall(text)
        if not expects:
            failures.append(f"{path.name}: no expect-fail/expect-pass marker")
            continue
        tags_m = FIXTURE_TAGS.search(text)
        tags = tuple(tags_m.group(1).split()) if tags_m else ()
        manifest = {path.name: {"TestFn": tags}}
        violations, errors = lint_manifest(
            fixtures_dir, manifest, collect_float_fields(lines))
        if errors:
            failures.append(f"{path.name}: config errors: {errors}")
            continue
        got = {m.group(1) for v in violations
               for m in [re.match(r"\[([\w-]+)\]", v.message)] if m}
        for kind, category in expects:
            if kind == "pass":
                if violations:
                    failures.append(
                        f"{path.name}: expected clean, got: "
                        + "; ".join(str(v) for v in violations))
            elif category not in got:
                failures.append(
                    f"{path.name}: expected a [{category}] violation, "
                    f"got categories {sorted(got) or ['<none>']}")
    return failures


def selftest_stale_manifest(tmp):
    """The shared stale-entry discipline (hotpath_lint regression).

    The historical hole: with unqualified names, deleting one of two
    same-named member functions (Memo::Find vs MemoShard::Find) kept the
    lint green because the survivor still matched. Qualified manifest
    names must catch exactly that.
    """
    failures = []
    twin = tmp / "twin.cc"
    twin.write_text("int A::F(int x) {\n  return x;\n}\n"
                    "int B::F(int x) {\n  return x + 1;\n}\n")
    _, _, errors = scan_manifest_file(tmp, "twin.cc", ["A::F", "B::F"])
    if errors:
        failures.append(f"both twins present, expected clean: {errors}")
    twin.write_text("int A::F(int x) {\n  return x;\n}\n")
    _, _, errors = scan_manifest_file(tmp, "twin.cc", ["A::F", "B::F"])
    if not errors:
        failures.append("deleted twin B::F not reported as stale manifest "
                        "entry (the unqualified-name hole is back)")
    _, _, errors = scan_manifest_file(tmp, "missing.cc", ["F"])
    if not errors:
        failures.append("missing manifested file not reported")
    import hotpath_lint
    if "Memo::Find" not in hotpath_lint.HOT_FUNCTIONS.get(
            "src/optimizer/memo.cc", ()):
        failures.append("hotpath_lint memo.cc manifest no longer uses "
                        "qualified twin names")
    return failures


def selftest_inventory(tmp):
    failures = []
    src = tmp / "src"
    src.mkdir()
    (src / "thing.h").write_text(
        "class Thing {\n"
        "  std::mutex mu_;\n"
        "  std::atomic<bool> flag_{false};\n"
        "  std::mutex& ref_;     // reference: not a declaration\n"
        "};\n"
        "extern std::atomic<int> global_count;  // extern: skipped\n")
    inv = tmp / "inv.json"

    inv.write_text(json.dumps({"entries": [
        {"file": "src/thing.h", "name": "mu_", "kind": "mutex"},
        {"file": "src/thing.h", "name": "flag_", "kind": "atomic"},
    ]}))
    v, e = check_sync_inventory(tmp, inv)
    if v or e:
        failures.append(f"consistent inventory flagged: {[str(x) for x in v]}"
                        f" {e}")

    inv.write_text(json.dumps({"entries": [
        {"file": "src/thing.h", "name": "mu_", "kind": "mutex"},
    ]}))
    v, _ = check_sync_inventory(tmp, inv)
    if not any("undocumented" in x.message for x in v):
        failures.append("undocumented atomic not flagged")

    inv.write_text(json.dumps({"entries": [
        {"file": "src/thing.h", "name": "mu_", "kind": "mutex"},
        {"file": "src/thing.h", "name": "flag_", "kind": "atomic"},
        {"file": "src/thing.h", "name": "gone_", "kind": "mutex"},
    ]}))
    v, _ = check_sync_inventory(tmp, inv)
    if not any("stale entry" in x.message for x in v):
        failures.append("stale inventory entry not flagged")

    inv.write_text("{not json")
    _, e = check_sync_inventory(tmp, inv)
    if not e:
        failures.append("unreadable inventory not a config error")
    return failures


def run_selftest():
    here = Path(__file__).resolve().parent
    failures = selftest_fixtures(here / "fixtures" / "determinism")
    with tempfile.TemporaryDirectory() as td:
        failures += selftest_stale_manifest(Path(td))
    with tempfile.TemporaryDirectory() as td:
        failures += selftest_inventory(Path(td))
    if failures:
        for f in failures:
            print(f"determinism_lint selftest: FAIL: {f}", file=sys.stderr)
        return 1
    print("determinism_lint selftest: all fixtures and regressions pass")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo-root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the lint over its own fixtures")
    args = parser.parse_args()
    if args.selftest:
        return run_selftest()
    root = Path(args.repo_root) if args.repo_root else (
        Path(__file__).resolve().parent.parent)
    return run_tree_lint(root)


if __name__ == "__main__":
    sys.exit(main())
