#ifndef COTE_SERVICE_ARRIVAL_TRACE_H_
#define COTE_SERVICE_ARRIVAL_TRACE_H_

#include <cstdint>
#include <vector>

namespace cote {

class QueryGraph;

/// One query submitted to the compile service.
struct Submission {
  const QueryGraph* query = nullptr;
  /// When the client submits, in trace seconds. Open-loop: arrivals do not
  /// wait for prior completions.
  double arrival_seconds = 0;
  /// Absolute completion deadline in trace seconds; <= 0 means none. Only
  /// the kDeadlineAware policy reads it.
  double deadline_seconds = 0;
  /// Feedback class for the trip-rate tracker; -1 lets the admission
  /// stage derive it from the query shape (ServiceQueryClass).
  int query_class = -1;
};

struct ArrivalTraceOptions {
  /// Number of submissions to generate.
  int num_arrivals = 100;
  /// Mean inter-arrival gap. Open-loop offered load = (mean compile
  /// seconds) / mean_gap_seconds; > 1 means overload, which is where
  /// scheduling policy starts to matter.
  double mean_gap_seconds = 0.01;
  uint64_t seed = 42;
  /// Fraction of submissions carrying a deadline (for kDeadlineAware).
  double deadline_fraction = 0.5;
  /// A deadline-carrying submission's deadline is its arrival plus a
  /// uniform slack from this range.
  double deadline_slack_min_seconds = 0.05;
  double deadline_slack_max_seconds = 0.5;
};

/// \brief Seeded open-loop arrival trace over a query pool.
///
/// Queries are drawn uniformly from `pool`, inter-arrival gaps are
/// exponential with the given mean (a Poisson arrival process — the
/// standard open-loop model), and deadlines are assigned by seeded coin
/// flip. Everything derives from one cote::Rng stream, so the same
/// (pool, options) produce the identical trace on every run — the
/// determinism anchor for the service tests and for comparing scheduling
/// policies on *the same* stream.
std::vector<Submission> MakeOpenLoopTrace(
    const std::vector<const QueryGraph*>& pool,
    const ArrivalTraceOptions& options);

}  // namespace cote

#endif  // COTE_SERVICE_ARRIVAL_TRACE_H_
