#ifndef COTE_SERVICE_OUTCOME_H_
#define COTE_SERVICE_OUTCOME_H_

#include <cstdint>

#include "common/resource_budget.h"
#include "common/status.h"

namespace cote {

/// \brief Degradation ladder and outcome taxonomy of the overload-
/// resilient compile service (DESIGN.md §16).
///
/// Both service front-ends — the simulated CompileService::Run and the
/// live AsyncCompileService — speak this vocabulary, and build their
/// reports through the same classification helpers, so the async run's
/// taxonomy can be pinned ticket-for-ticket against the virtual-clock
/// oracle's.

/// The service's graceful-degradation ladder. An entry is admitted at
/// kFull (or, on retry, one tier below its failed attempt); at dispatch
/// it is demoted one tier per whole patience interval it waited. The
/// ladder trades result quality for service time monotonically: each
/// step strictly cheapens the compile, and the bottom step sheds it.
enum class ServiceTier {
  /// The full governed compile under the admission-derived limits.
  kFull = 0,
  /// Full DP under half the derived budget: the compile still produces a
  /// DP-quality plan when it fits, and trips into its fallback twice as
  /// early when it doesn't.
  kBudgetHalved = 1,
  /// Greedy-only (CompilationSession::OptimizeGreedy): polynomial time,
  /// no estimation, no budget — the service-side analogue of optimizing
  /// without estimates. Still a valid plan.
  kGreedyOnly = 2,
  /// Not compiled at all: shed with a typed status.
  kShed = 3,
};

inline const char* ServiceTierName(ServiceTier tier) {
  switch (tier) {
    case ServiceTier::kFull:
      return "full";
    case ServiceTier::kBudgetHalved:
      return "budget-halved";
    case ServiceTier::kGreedyOnly:
      return "greedy-only";
    case ServiceTier::kShed:
      return "shed";
  }
  return "unknown";
}

/// Exactly one bucket per submitted ticket — the chaos-soak harness's
/// conservation law. (Retries are attempts, not tickets: a retried query
/// still lands in exactly one terminal bucket, and the attempt count is
/// reported separately.)
enum class ServiceOutcome {
  /// Compiled at kFull/kBudgetHalved without degradation.
  kServedFull = 0,
  /// Served a valid plan of reduced quality: the compile degraded to its
  /// greedy fallback (budget trip), or ran at the kGreedyOnly tier.
  kServedDegraded,
  /// Never compiled: refused or evicted by the overload policy while the
  /// queue was full (StatusCode::kUnavailable).
  kShedQueueFull,
  /// Never compiled: waited past the bottom of the degradation ladder
  /// (StatusCode::kDeadlineExceeded with a queue-wait message).
  kShedExpired,
  /// Compiled and failed with a Status that no retry tier could absorb
  /// (non-transient, or the retry budget ran out).
  kFailedPermanent,
};

inline const char* ServiceOutcomeName(ServiceOutcome outcome) {
  switch (outcome) {
    case ServiceOutcome::kServedFull:
      return "served-full";
    case ServiceOutcome::kServedDegraded:
      return "served-degraded";
    case ServiceOutcome::kShedQueueFull:
      return "shed-queue-full";
    case ServiceOutcome::kShedExpired:
      return "shed-expired";
    case ServiceOutcome::kFailedPermanent:
      return "failed-permanent";
  }
  return "unknown";
}

/// Per-burst outcome counts, one terminal bucket per ticket plus the
/// retry-attempt tally. Surfaced through ServiceReport.
struct OutcomeTaxonomy {
  int64_t served_full = 0;
  int64_t served_degraded = 0;
  int64_t shed_queue_full = 0;
  int64_t shed_expired = 0;
  int64_t failed_permanent = 0;
  /// Total re-enqueues across all tickets (attempts beyond the first).
  int64_t retried = 0;

  /// Tickets accounted for — must equal the burst size (every ticket in
  /// exactly one bucket).
  int64_t TotalTickets() const {
    return served_full + served_degraded + shed_queue_full + shed_expired +
           failed_permanent;
  }
};

/// True for failure codes the retry ladder treats as transient — worth
/// one more attempt a tier down: injected/internal faults and kFail
/// budget trips. kCancelled is deliberately excluded (an external cancel
/// is a verdict, not bad luck), as are the admission-side shed codes.
inline bool IsTransientFailure(StatusCode code) {
  return code == StatusCode::kInternal ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kResourceExhausted;
}

/// The kBudgetHalved tier transform: every finite limit is halved (the
/// deadline in seconds, the count caps integer-halved but kept >= 1 so a
/// cap never silently becomes "unlimited"); unlimited fields stay
/// unlimited and the trip action is preserved. Halving an Unlimited()
/// limits is the identity, so the tier is a no-op for ungoverned runs.
inline ResourceLimits HalveLimits(const ResourceLimits& limits) {
  ResourceLimits out = limits;
  if (out.deadline_seconds > 0) out.deadline_seconds *= 0.5;
  if (out.max_memo_entries > 0) {
    out.max_memo_entries = out.max_memo_entries > 1 ? out.max_memo_entries / 2
                                                    : 1;
  }
  if (out.max_plans > 0) {
    out.max_plans = out.max_plans > 1 ? out.max_plans / 2 : 1;
  }
  if (out.max_checkpoints > 0) {
    out.max_checkpoints = out.max_checkpoints > 1 ? out.max_checkpoints / 2
                                                  : 1;
  }
  return out;
}

}  // namespace cote

#endif  // COTE_SERVICE_OUTCOME_H_
