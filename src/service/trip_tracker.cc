#include "service/trip_tracker.h"

#include <algorithm>

#include "common/check.h"
#include "query/query_graph.h"

namespace cote {

int ServiceQueryClass(const QueryGraph& graph) {
  return std::min(graph.num_tables(), TripRateTracker::kMaxClass);
}

bool IsBudgetTripStatus(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kResourceExhausted;
}

bool IsBudgetTrip(bool degraded, const Status& status, bool observer_tripped) {
  return degraded || observer_tripped || IsBudgetTripStatus(status);
}

TripRateTracker::TripRateTracker(TripTrackerOptions options)
    : options_(options) {
  COTE_CHECK(options_.min_samples >= 1);
  COTE_CHECK(options_.widen_factor >= 1.0);
  COTE_CHECK(options_.max_multiplier >= 1.0);
}

int TripRateTracker::ClampClass(int query_class) {
  if (query_class < 0) return 0;
  return std::min(query_class, kMaxClass);
}

void TripRateTracker::Record(int query_class, bool tripped) {
  ClassStats& c = classes_[static_cast<size_t>(ClampClass(query_class))];
  ++c.armed;
  ++c.window_armed;
  if (tripped) {
    ++c.tripped;
    ++c.window_tripped;
  }
  if (c.window_armed < options_.min_samples) return;
  // Window complete: widen once if the rate crossed the threshold, then
  // start a fresh window either way — old windows are stale evidence once
  // the multiplier (and thus the budgets being tripped) has changed.
  const double rate = static_cast<double>(c.window_tripped) /
                      static_cast<double>(c.window_armed);
  if (rate > options_.trip_rate_threshold) {
    c.multiplier =
        std::min(c.multiplier * options_.widen_factor, options_.max_multiplier);
  }
  c.window_armed = 0;
  c.window_tripped = 0;
}

double TripRateTracker::HeadroomMultiplier(int query_class) const {
  return classes_[static_cast<size_t>(ClampClass(query_class))].multiplier;
}

std::vector<TripRateTracker::ClassSnapshot> TripRateTracker::Snapshot() const {
  std::vector<ClassSnapshot> out;
  for (int k = 0; k <= kMaxClass; ++k) {
    const ClassStats& c = classes_[static_cast<size_t>(k)];
    if (c.armed == 0) continue;
    out.push_back(ClassSnapshot{k, c.armed, c.tripped, c.multiplier});
  }
  return out;
}

}  // namespace cote
