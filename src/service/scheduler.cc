#include "service/scheduler.h"

#include "common/check.h"

namespace cote {

namespace {

/// true when `a` should run before `b` under kShortestEstimatedFirst.
inline bool ShorterFirst(const ReadyEntry& a, const ReadyEntry& b) {
  if (a.predicted_seconds != b.predicted_seconds) {
    return a.predicted_seconds < b.predicted_seconds;
  }
  return a.ticket < b.ticket;
}

/// true when `a` should run before `b` under kDeadlineAware (EDF;
/// deadline-less entries after every deadline-carrying one, FIFO among
/// themselves).
inline bool EarlierDeadlineFirst(const ReadyEntry& a, const ReadyEntry& b) {
  const bool a_has = a.deadline_seconds > 0;
  const bool b_has = b.deadline_seconds > 0;
  if (a_has != b_has) return a_has;
  if (a_has && a.deadline_seconds != b.deadline_seconds) {
    return a.deadline_seconds < b.deadline_seconds;
  }
  return a.ticket < b.ticket;
}

}  // namespace

const char* SchedulingPolicyName(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kFifo:
      return "fifo";
    case SchedulingPolicy::kShortestEstimatedFirst:
      return "sjf";
    case SchedulingPolicy::kDeadlineAware:
      return "edf";
  }
  return "unknown";
}

size_t ReadyQueue::PickIndex() const {
  COTE_DCHECK(!entries_.empty());
  size_t best = 0;
  for (size_t i = 1; i < entries_.size(); ++i) {
    const ReadyEntry& a = entries_[i];
    const ReadyEntry& b = entries_[best];
    bool before = false;
    switch (policy_) {
      case SchedulingPolicy::kFifo:
        before = a.ticket < b.ticket;
        break;
      case SchedulingPolicy::kShortestEstimatedFirst:
        before = ShorterFirst(a, b);
        break;
      case SchedulingPolicy::kDeadlineAware:
        before = EarlierDeadlineFirst(a, b);
        break;
    }
    if (before) best = i;
  }
  return best;
}

ReadyEntry ReadyQueue::PopNext() {
  COTE_CHECK(!entries_.empty());
  const size_t i = PickIndex();
  ReadyEntry out = entries_[i];
  // Swap-remove: O(1), keeps capacity. Vector order becomes
  // history-dependent, but PickIndex is order-blind (unique-ticket
  // tie-breaks), so dispatch order stays deterministic.
  entries_[i] = entries_.back();
  entries_.pop_back();
  return out;
}

}  // namespace cote
