#include "service/scheduler.h"

#include <algorithm>

#include "common/check.h"

namespace cote {

namespace {

/// true when `a` should run before `b` under kShortestEstimatedFirst.
inline bool ShorterFirst(const ReadyEntry& a, const ReadyEntry& b) {
  if (a.predicted_seconds != b.predicted_seconds) {
    return a.predicted_seconds < b.predicted_seconds;
  }
  return a.ticket < b.ticket;
}

/// true when `a` should run before `b` under kDeadlineAware (EDF;
/// deadline-less entries after every deadline-carrying one, FIFO among
/// themselves).
inline bool EarlierDeadlineFirst(const ReadyEntry& a, const ReadyEntry& b) {
  const bool a_has = a.deadline_seconds > 0;
  const bool b_has = b.deadline_seconds > 0;
  if (a_has != b_has) return a_has;
  if (a_has && a.deadline_seconds != b.deadline_seconds) {
    return a.deadline_seconds < b.deadline_seconds;
  }
  return a.ticket < b.ticket;
}

/// Heap comparator: std::push_heap/pop_heap build a max-heap, so the
/// "largest" element — the one every other entry schedules before — must
/// be the next dispatch. Inverting SchedulesBefore does exactly that.
struct DispatchesLater {
  SchedulingPolicy policy;
  bool operator()(const ReadyQueue::Item& a, const ReadyQueue::Item& b) const {
    return SchedulesBefore(policy, b.entry, a.entry);
  }
};

}  // namespace

const char* SchedulingPolicyName(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kFifo:
      return "fifo";
    case SchedulingPolicy::kShortestEstimatedFirst:
      return "sjf";
    case SchedulingPolicy::kDeadlineAware:
      return "edf";
  }
  return "unknown";
}

const char* OverloadPolicyName(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kReject:
      return "reject";
    case OverloadPolicy::kShedLowestValue:
      return "shed";
  }
  return "unknown";
}

bool SchedulesBefore(SchedulingPolicy policy, const ReadyEntry& a,
                     const ReadyEntry& b) {
  switch (policy) {
    case SchedulingPolicy::kFifo:
      return a.ticket < b.ticket;
    case SchedulingPolicy::kShortestEstimatedFirst:
      return ShorterFirst(a, b);
    case SchedulingPolicy::kDeadlineAware:
      return EarlierDeadlineFirst(a, b);
  }
  return a.ticket < b.ticket;
}

bool ShedsFirst(const ReadyEntry& a, const ReadyEntry& b) {
  // Worst estimate-derived value sheds first: the priciest compile buys
  // the least served work per queue slot.
  if (a.predicted_seconds != b.predicted_seconds) {
    return a.predicted_seconds > b.predicted_seconds;
  }
  // Urgency: deadline-less work sheds before deadline-carrying work, and
  // the later deadline sheds before the earlier one.
  const bool a_has = a.deadline_seconds > 0;
  const bool b_has = b.deadline_seconds > 0;
  if (a_has != b_has) return !a_has;
  if (a_has && a.deadline_seconds != b.deadline_seconds) {
    return a.deadline_seconds > b.deadline_seconds;
  }
  // The younger ticket sheds first: preserve the oldest work's FIFO claim.
  return a.ticket > b.ticket;
}

void ReadyQueue::Enqueue(const ReadyEntry& entry) {
  // Amortized slot-ring compaction: once the dead prefix dominates, slide
  // the live span to the front and rebase the heap's slot indices. Cost
  // O(live + heap), paid at most once per O(reclaimed) enqueues.
  if (slots_head_ > 64 && slots_head_ * 2 > slots_.size()) {
    slots_.erase(slots_.begin(),
                 slots_.begin() + static_cast<ptrdiff_t>(slots_head_));
    for (Item& item : heap_) item.slot -= slots_head_;
    slots_head_ = 0;
  }
  if (entry.ready_seconds > last_enqueue_seconds_) {
    last_enqueue_seconds_ = entry.ready_seconds;
  }
  Item item;
  item.entry = entry;
  item.slot = slots_.size();
  AgeSlot slot;
  slot.enqueue_seconds = last_enqueue_seconds_;
  slot.alive = true;
  slots_.push_back(slot);
  heap_.push_back(item);
  std::push_heap(heap_.begin(), heap_.end(), DispatchesLater{policy_});
}

void ReadyQueue::MarkDead(size_t slot) {
  slots_[slot].alive = false;
  // Lazy dead-prefix reclamation: each slot is skipped at most once, so
  // the loop is amortized O(1) across queue operations.
  while (slots_head_ < slots_.size() && !slots_[slots_head_].alive) {
    ++slots_head_;
  }
}

void ReadyQueue::Push(const ReadyEntry& entry) { Enqueue(entry); }

OfferOutcome ReadyQueue::Offer(const ReadyEntry& entry) {
  OfferOutcome out;
  if (!Full() || overload_ == OverloadPolicy::kBlock) {
    // kBlock admits past capacity by design: the bound is enforced by the
    // caller's blocking protocol, not by shedding (see OverloadPolicy).
    Enqueue(entry);
    out.admitted = true;
    return out;
  }
  if (overload_ == OverloadPolicy::kReject) {
    out.shed_incoming = true;
    out.shed = entry;
    return out;
  }
  // kShedLowestValue: the worst of (queued ∪ incoming) is shed. The O(n)
  // scan runs only on the overload path — Full() implies size ==
  // capacity, so this is O(capacity), never O(backlog).
  size_t worst = 0;
  for (size_t i = 1; i < heap_.size(); ++i) {
    if (ShedsFirst(heap_[i].entry, heap_[worst].entry)) worst = i;
  }
  if (ShedsFirst(entry, heap_[worst].entry)) {
    out.shed_incoming = true;
    out.shed = entry;
    return out;
  }
  out.shed_existing = true;
  out.shed = heap_[worst].entry;
  MarkDead(heap_[worst].slot);
  heap_[worst] = heap_.back();
  heap_.pop_back();
  // Swap-with-back can break the heap property anywhere; rebuild. O(n) on
  // the overload path only.
  std::make_heap(heap_.begin(), heap_.end(), DispatchesLater{policy_});
  Enqueue(entry);
  out.admitted = true;
  return out;
}

ReadyEntry ReadyQueue::PopNext() {
  COTE_CHECK(!heap_.empty());
  // pop_heap moves the root (the unique SchedulesBefore-minimum) to the
  // back and re-heaps in O(log n); pop_back keeps capacity, so a steady
  // push/pop regime allocates nothing.
  std::pop_heap(heap_.begin(), heap_.end(), DispatchesLater{policy_});
  Item out = heap_.back();
  heap_.pop_back();
  MarkDead(out.slot);
  return out.entry;
}

}  // namespace cote
