#include "service/scheduler.h"

#include <algorithm>

#include "common/check.h"

namespace cote {

namespace {

/// true when `a` should run before `b` under kShortestEstimatedFirst.
inline bool ShorterFirst(const ReadyEntry& a, const ReadyEntry& b) {
  if (a.predicted_seconds != b.predicted_seconds) {
    return a.predicted_seconds < b.predicted_seconds;
  }
  return a.ticket < b.ticket;
}

/// true when `a` should run before `b` under kDeadlineAware (EDF;
/// deadline-less entries after every deadline-carrying one, FIFO among
/// themselves).
inline bool EarlierDeadlineFirst(const ReadyEntry& a, const ReadyEntry& b) {
  const bool a_has = a.deadline_seconds > 0;
  const bool b_has = b.deadline_seconds > 0;
  if (a_has != b_has) return a_has;
  if (a_has && a.deadline_seconds != b.deadline_seconds) {
    return a.deadline_seconds < b.deadline_seconds;
  }
  return a.ticket < b.ticket;
}

/// Heap comparator: std::push_heap/pop_heap build a max-heap, so the
/// "largest" element — the one every other entry schedules before — must
/// be the next dispatch. Inverting SchedulesBefore does exactly that.
struct DispatchesLater {
  SchedulingPolicy policy;
  bool operator()(const ReadyEntry& a, const ReadyEntry& b) const {
    return SchedulesBefore(policy, b, a);
  }
};

}  // namespace

const char* SchedulingPolicyName(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kFifo:
      return "fifo";
    case SchedulingPolicy::kShortestEstimatedFirst:
      return "sjf";
    case SchedulingPolicy::kDeadlineAware:
      return "edf";
  }
  return "unknown";
}

bool SchedulesBefore(SchedulingPolicy policy, const ReadyEntry& a,
                     const ReadyEntry& b) {
  switch (policy) {
    case SchedulingPolicy::kFifo:
      return a.ticket < b.ticket;
    case SchedulingPolicy::kShortestEstimatedFirst:
      return ShorterFirst(a, b);
    case SchedulingPolicy::kDeadlineAware:
      return EarlierDeadlineFirst(a, b);
  }
  return a.ticket < b.ticket;
}

void ReadyQueue::Push(const ReadyEntry& entry) {
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), DispatchesLater{policy_});
}

ReadyEntry ReadyQueue::PopNext() {
  COTE_CHECK(!heap_.empty());
  // pop_heap moves the root (the unique SchedulesBefore-minimum) to the
  // back and re-heaps in O(log n); pop_back keeps capacity, so a steady
  // push/pop regime allocates nothing.
  std::pop_heap(heap_.begin(), heap_.end(), DispatchesLater{policy_});
  ReadyEntry out = heap_.back();
  heap_.pop_back();
  return out;
}

}  // namespace cote
