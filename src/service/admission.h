#ifndef COTE_SERVICE_ADMISSION_H_
#define COTE_SERVICE_ADMISSION_H_

#include "core/statement_cache.h"
#include "core/time_model.h"
#include "session/limits_policy.h"
#include "session/session.h"
#include "service/trip_tracker.h"

namespace cote {

struct AdmissionOptions {
  /// Signature hit in the statement cache ⇒ reuse the cached measured
  /// seconds as the prediction and skip estimation entirely — the hit
  /// already answers the only question the estimate would.
  bool skip_estimate_on_cache_hit = true;
  /// Derive per-query ResourceLimits from the prediction; off = every
  /// query runs ungoverned (unlimited).
  bool derive_limits = true;
  LimitsPolicy limits_policy;
};

/// What admission decided for one submission.
struct AdmissionOutcome {
  /// Predicted compile seconds: the COTE estimate, or the cached measured
  /// seconds on a signature hit. The scheduling key.
  double predicted_seconds = 0;
  /// True when the estimate path ran (estimate below is meaningful).
  bool estimated = false;
  /// True when the statement cache answered by signature.
  bool cache_hit = false;
  CompileTimeEstimate estimate;
  /// Limits the compile should run under (unlimited when derive_limits is
  /// off).
  ResourceLimits limits;
  /// Estimate-derived queue-wait patience in seconds
  /// (LimitsPolicy::DerivePatience); <= 0 means the query waits forever.
  /// Each whole patience interval spent queued demotes the compile one
  /// degradation tier at dispatch.
  double patience_seconds = 0;
  /// Trip-tracker multiplier folded into the limits (1.0 = no widening).
  double headroom_multiplier = 1.0;
  int query_class = 0;
};

/// \brief The estimate-first admission stage.
///
/// Every submission passes through here before it is scheduled: consult
/// the statement cache by structural signature (skipping estimation on a
/// hit), otherwise run the warm zero-allocation estimate path, then
/// derive the query's ResourceLimits from its own prediction via the
/// shared LimitsPolicy — widened by the trip-rate tracker's multiplier
/// for classes whose derived budgets keep tripping.
///
/// Owns one warm estimate-mode CompilationSession, so a long-lived
/// service estimates every arrival without per-query model setup — the
/// paper's premise (§4: estimation ≈ 3% of compilation) made into the
/// front door. Not thread-safe: one admission stage per service, driven
/// from the dispatch loop.
class AdmissionStage {
 public:
  /// `cache` and `tracker` may be null (no cache consultation / no
  /// feedback); both must outlive the stage when given.
  AdmissionStage(const OptimizerOptions& options,
                 const PlanCounterOptions& counter_options,
                 const TimeModel& time_model, const AdmissionOptions& admission,
                 CompileTimeCache* cache, const TripRateTracker* tracker);

  /// Admits one submission. `query_class` < 0 derives the class from the
  /// query shape.
  AdmissionOutcome Admit(const QueryGraph& graph, int query_class);

  /// The estimator session's cumulative stats — estimates_run counts how
  /// often the estimate path actually ran (the cache-skip tests' probe).
  const CompilationStats& stats() const { return session_.stats(); }

 private:
  TimeModel time_model_;
  AdmissionOptions admission_;
  CompileTimeCache* cache_;          // not owned, nullable
  const TripRateTracker* tracker_;   // not owned, nullable
  CompilationSession session_;       // warm estimate-mode session
};

}  // namespace cote

#endif  // COTE_SERVICE_ADMISSION_H_
