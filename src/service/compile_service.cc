#include "service/compile_service.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace cote {

double ServiceReport::MeanQueueSeconds() const {
  if (records.empty()) return 0;
  double sum = 0;
  // det-ok: record-order fold of timeline arithmetic, order pinned by Run
  for (const ServiceQueryRecord& r : records) sum += r.queue_seconds;
  return sum / static_cast<double>(records.size());
}

double ServiceReport::P95QueueSeconds() const {
  if (records.empty()) return 0;
  std::vector<double> q;
  q.reserve(records.size());
  for (const ServiceQueryRecord& r : records) q.push_back(r.queue_seconds);
  std::sort(q.begin(), q.end());
  // Nearest-rank p95: smallest value ≥ 95% of the sample.
  const size_t rank = (q.size() * 95 + 99) / 100;  // ceil(0.95 n)
  return q[rank == 0 ? 0 : rank - 1];
}

void DispatchTraceObserver(void* ctx, const StageEvent& event) {
  auto* trace = static_cast<DispatchTrace*>(ctx);
  ++trace->events;
  if (event.budget_tripped) trace->budget_tripped = true;
}

bool ThresholdAdmission(void* ctx, uint64_t /*signature*/,
                        double cost_seconds) {
  return cost_seconds >= *static_cast<const double*>(ctx);
}

CompileService::CompileService(CompileServiceOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : SystemClock::Get()),
      cache_(options_.enable_cache
                 ? std::make_unique<CompileTimeCache>(options_.cache_capacity)
                 : nullptr),
      tracker_(options_.trip_tracker),
      admission_(options_.optimizer, options_.counter, options_.time_model,
                 options_.admission, cache_.get(), &tracker_),
      pool_(options_.num_workers, options_.optimizer, options_.counter) {
  if (cache_ != nullptr) {
    // The ctx points at this service's own options member, so the
    // threshold stays adjustable per service without any allocation.
    cache_->SetAdmissionPolicy(
        &ThresholdAdmission, &options_.cache_admission_threshold_seconds);
  }
}

ServiceReport CompileService::Run(const std::vector<Submission>& arrivals) {
  ServiceReport report;
  const size_t n = arrivals.size();
  report.records.reserve(n);
  std::vector<double> worker_free(static_cast<size_t>(pool_.num_workers()), 0);
  std::vector<AdmissionOutcome> admitted(n);
  ReadyQueue queue(options_.policy);
  size_t next = 0;  // first not-yet-admitted arrival

  // Admits every arrival at or before trace time `t` — admission runs at
  // arrival on the front end, so by the time a server picks, everything
  // that has arrived is in the ready queue with its estimate attached.
  auto admit_up_to = [&](double t) {
    while (next < n && arrivals[next].arrival_seconds <= t) {
      const Submission& s = arrivals[next];
      COTE_CHECK(s.query != nullptr);
      COTE_CHECK(next == 0 ||
                 s.arrival_seconds >= arrivals[next - 1].arrival_seconds);
      admitted[next] = admission_.Admit(*s.query, s.query_class);
      ReadyEntry entry;
      entry.ticket = next;
      entry.ready_seconds = s.arrival_seconds;
      entry.predicted_seconds = admitted[next].predicted_seconds;
      entry.deadline_seconds = s.deadline_seconds;
      queue.Push(entry);
      ++next;
    }
  };

  while (next < n || !queue.empty()) {
    // The server that frees first dispatches next (lowest index on ties —
    // a deterministic argmin).
    size_t w = 0;
    for (size_t k = 1; k < worker_free.size(); ++k) {
      if (worker_free[k] < worker_free[w]) w = k;
    }
    double t = worker_free[w];
    // An idle server with an empty queue jumps to the next arrival.
    if (queue.empty()) t = std::max(t, arrivals[next].arrival_seconds);
    admit_up_to(t);
    if (queue.empty()) continue;

    const ReadyEntry entry = queue.PopNext();
    const Submission& sub = arrivals[entry.ticket];
    const AdmissionOutcome& adm = admitted[entry.ticket];

    ServiceQueryRecord rec;
    rec.ticket = entry.ticket;
    rec.worker = static_cast<int>(w);
    rec.query_class = adm.query_class;
    rec.arrival_seconds = sub.arrival_seconds;
    rec.start_seconds = t;
    rec.queue_seconds = t - sub.arrival_seconds;
    rec.deadline_seconds = sub.deadline_seconds;
    rec.predicted_seconds = adm.predicted_seconds;
    rec.estimated = adm.estimated;
    rec.cache_hit = adm.cache_hit;
    rec.headroom_multiplier = adm.headroom_multiplier;
    rec.limits = adm.limits;

    // The real compile, on this simulated server's warm session. The
    // observer context attributes this run's stage events (and any budget
    // trip) to this queue entry — the fn + ctx observer shape exists for
    // exactly this.
    DispatchTrace trace;
    CompilationSession& session = pool_.session(static_cast<int>(w));
    session.SetStageObserver(&DispatchTraceObserver, &trace);
    const double wall_before = clock_->NowSeconds();
    StatusOr<OptimizeResult> result =
        adm.limits.Unlimited() ? session.Optimize(*sub.query)
                               : session.Optimize(*sub.query, adm.limits);
    const double measured_seconds = clock_->NowSeconds() - wall_before;
    session.SetStageObserver(nullptr, nullptr);

    rec.stage_events = trace.events;
    rec.budget_tripped = trace.budget_tripped;
    if (result.ok()) {
      rec.degraded = result->degraded;
      rec.tripped_limit = result->tripped_limit;
      rec.degraded_stage = result->degraded_stage;
    } else {
      rec.status = result.status();
    }

    rec.service_seconds = options_.time_source == ServiceTimeSource::kClock
                              ? measured_seconds
                              : adm.predicted_seconds;
    rec.finish_seconds = rec.start_seconds + rec.service_seconds;
    worker_free[w] = rec.finish_seconds;
    if (options_.drive_clock != nullptr) {
      options_.drive_clock->SetAtLeast(rec.finish_seconds);
    }

    // Close the two feedback loops. Cache: store what this statement
    // actually cost, gated (inside the cache) on what admission predicted
    // it would cost. Tracker: an armed compile that tripped its derived
    // budget is evidence the estimator runs low for this class.
    if (cache_ != nullptr && !adm.cache_hit && result.ok()) {
      rec.cache_inserted =
          cache_->Insert(*sub.query, rec.service_seconds,
                         adm.predicted_seconds);
    }
    if (!adm.limits.Unlimited()) {
      tracker_.Record(
          adm.query_class,
          IsBudgetTrip(rec.degraded, rec.status, rec.budget_tripped));
    }

    if (rec.estimated) ++report.estimates;
    if (rec.cache_hit) ++report.cache_hits;
    if (rec.cache_inserted) ++report.cache_insertions;
    if (rec.degraded) ++report.degraded;
    if (!rec.status.ok()) ++report.failed;
    if (rec.deadline_seconds > 0 &&
        rec.finish_seconds > rec.deadline_seconds) {
      ++report.deadline_misses;
    }
    report.makespan_seconds =
        std::max(report.makespan_seconds, rec.finish_seconds);
    report.records.push_back(rec);
  }

  if (cache_ != nullptr) report.cache_stats = cache_->Stats();
  report.class_feedback = tracker_.Snapshot();
  return report;
}

ServiceBatchResult CompileService::CompileBatch(
    const std::vector<const QueryGraph*>& queries) {
  ServiceBatchResult out;
  const size_t n = queries.size();
  out.admissions.resize(n);
  ReadyQueue queue(options_.policy);
  for (size_t i = 0; i < n; ++i) {
    COTE_CHECK(queries[i] != nullptr);
    out.admissions[i] = admission_.Admit(*queries[i], -1);
    ReadyEntry entry;
    entry.ticket = i;
    entry.predicted_seconds = out.admissions[i].predicted_seconds;
    queue.Push(entry);
    if (out.admissions[i].estimated) ++out.estimates;
    if (out.admissions[i].cache_hit) ++out.cache_hits;
  }

  // Drain by policy to fix the dispatch order, then hand the ordered
  // batch — with each query's own derived limits — to the pool's real
  // worker threads (the per-query-limits scheduler hook). Each query also
  // gets its own DispatchTrace wired through the pool's observer hook, so
  // the batch path sees the same observer-side trip evidence the
  // open-loop Run sees per dispatch.
  std::vector<const QueryGraph*> ordered;
  std::vector<ResourceLimits> per_query;
  ordered.reserve(n);
  per_query.reserve(n);
  out.schedule.reserve(n);
  while (!queue.empty()) {
    const ReadyEntry entry = queue.PopNext();
    out.schedule.push_back(entry.ticket);
    ordered.push_back(queries[entry.ticket]);
    per_query.push_back(out.admissions[entry.ticket].limits);
  }
  std::vector<DispatchTrace> ordered_traces(n);
  std::vector<void*> trace_ctx(n);
  for (size_t k = 0; k < n; ++k) trace_ctx[k] = &ordered_traces[k];
  BatchOptimizeResult batch = pool_.CompileBatch(
      ordered, per_query, &DispatchTraceObserver, trace_ctx.data());
  out.stats = std::move(batch.stats);

  out.results.assign(n, StatusOr<OptimizeResult>(
                            Status::Internal("query was not compiled")));
  out.traces.resize(n);
  for (size_t k = 0; k < n; ++k) {
    out.results[out.schedule[k]] = std::move(batch.results[k]);
    out.traces[out.schedule[k]] = ordered_traces[k];
  }

  for (size_t i = 0; i < n; ++i) {
    const AdmissionOutcome& adm = out.admissions[i];
    if (cache_ != nullptr && !adm.cache_hit && out.results[i].ok()) {
      cache_->Insert(*queries[i], out.results[i]->stats.total_seconds,
                     adm.predicted_seconds);
    }
    if (!adm.limits.Unlimited()) {
      // The same trip predicate Run feeds the tracker with — degraded
      // flag, budget-trip Status, or observer evidence — so per-class
      // headroom feedback cannot diverge between execution paths.
      const bool degraded = out.results[i].ok() && out.results[i]->degraded;
      const Status status =
          out.results[i].ok() ? Status() : out.results[i].status();
      tracker_.Record(adm.query_class,
                      IsBudgetTrip(degraded, status,
                                   out.traces[i].budget_tripped));
    }
  }
  return out;
}

}  // namespace cote
