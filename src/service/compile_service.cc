#include "service/compile_service.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/str_util.h"

namespace cote {

namespace {

/// p95 of queue_seconds over records passing `served_only` filtering.
double P95Queue(const std::vector<ServiceQueryRecord>& records,
                bool served_only) {
  std::vector<double> q;
  q.reserve(records.size());
  for (const ServiceQueryRecord& r : records) {
    if (served_only && r.outcome != ServiceOutcome::kServedFull &&
        r.outcome != ServiceOutcome::kServedDegraded) {
      continue;
    }
    q.push_back(r.queue_seconds);
  }
  if (q.empty()) return 0;
  std::sort(q.begin(), q.end());
  // Nearest-rank p95: smallest value ≥ 95% of the sample.
  const size_t rank = (q.size() * 95 + 99) / 100;  // ceil(0.95 n)
  return q[rank == 0 ? 0 : rank - 1];
}

/// Whole patience intervals `entry` waited by dispatch time `now` — the
/// tier demotion count. Patience <= 0 never demotes.
int Demotions(const ReadyEntry& entry, double now) {
  if (entry.patience_seconds <= 0) return 0;
  const double waited = now - entry.ready_seconds;
  if (waited < entry.patience_seconds) return 0;
  return static_cast<int>(waited / entry.patience_seconds);
}

}  // namespace

double ServiceReport::MeanQueueSeconds() const {
  if (records.empty()) return 0;
  double sum = 0;
  // det-ok: record-order fold of timeline arithmetic, order pinned by Run
  for (const ServiceQueryRecord& r : records) sum += r.queue_seconds;
  return sum / static_cast<double>(records.size());
}

double ServiceReport::P95QueueSeconds() const {
  return P95Queue(records, /*served_only=*/false);
}

double ServiceReport::P95ServedQueueSeconds() const {
  return P95Queue(records, /*served_only=*/true);
}

void DispatchTraceObserver(void* ctx, const StageEvent& event) {
  auto* trace = static_cast<DispatchTrace*>(ctx);
  ++trace->events;
  if (event.budget_tripped) trace->budget_tripped = true;
}

bool ThresholdAdmission(void* ctx, uint64_t /*signature*/,
                        double cost_seconds) {
  return cost_seconds >= *static_cast<const double*>(ctx);
}

ServiceOutcome ClassifyRecord(const ServiceQueryRecord& record) {
  // The two shed shapes are typed by construction: queue-full sheds carry
  // kUnavailable, expiry sheds sit at the ladder's bottom tier.
  if (record.status.code() == StatusCode::kUnavailable) {
    return ServiceOutcome::kShedQueueFull;
  }
  if (record.tier >= static_cast<int>(ServiceTier::kShed)) {
    return ServiceOutcome::kShedExpired;
  }
  if (!record.status.ok()) return ServiceOutcome::kFailedPermanent;
  if (record.degraded ||
      record.tier >= static_cast<int>(ServiceTier::kGreedyOnly)) {
    return ServiceOutcome::kServedDegraded;
  }
  return ServiceOutcome::kServedFull;
}

OutcomeTaxonomy BuildTaxonomy(const std::vector<ServiceQueryRecord>& records) {
  OutcomeTaxonomy out;
  for (const ServiceQueryRecord& r : records) {
    switch (r.outcome) {
      case ServiceOutcome::kServedFull:
        ++out.served_full;
        break;
      case ServiceOutcome::kServedDegraded:
        ++out.served_degraded;
        break;
      case ServiceOutcome::kShedQueueFull:
        ++out.shed_queue_full;
        break;
      case ServiceOutcome::kShedExpired:
        ++out.shed_expired;
        break;
      case ServiceOutcome::kFailedPermanent:
        ++out.failed_permanent;
        break;
    }
    out.retried += r.retries;
  }
  return out;
}

CompileService::CompileService(CompileServiceOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : SystemClock::Get()),
      cache_(options_.enable_cache
                 ? std::make_unique<CompileTimeCache>(options_.cache_capacity)
                 : nullptr),
      tracker_(options_.trip_tracker),
      admission_(options_.optimizer, options_.counter, options_.time_model,
                 options_.admission, cache_.get(), &tracker_),
      pool_(options_.num_workers, options_.optimizer, options_.counter) {
  if (cache_ != nullptr) {
    // The ctx points at this service's own options member, so the
    // threshold stays adjustable per service without any allocation.
    cache_->SetAdmissionPolicy(
        &ThresholdAdmission, &options_.cache_admission_threshold_seconds);
  }
}

ServiceReport CompileService::Run(const std::vector<Submission>& arrivals) {
  ServiceReport report;
  const size_t n = arrivals.size();
  report.records.reserve(n);
  std::vector<double> worker_free(static_cast<size_t>(pool_.num_workers()), 0);
  std::vector<AdmissionOutcome> admitted(n);
  std::vector<int> retry_count(n, 0);
  ReadyQueue queue(options_.policy, options_.queue_capacity,
                   options_.overload);
  size_t next = 0;  // first not-yet-admitted arrival

  // Commits one terminal record: classify, count, notify. Every path that
  // finishes a ticket — served, failed, or shed — funnels through here,
  // so "exactly one bucket per ticket" holds by construction.
  auto commit = [&](ServiceQueryRecord& rec) {
    rec.outcome = ClassifyRecord(rec);
    if (rec.estimated) ++report.estimates;
    if (rec.cache_hit) ++report.cache_hits;
    if (rec.cache_inserted) ++report.cache_insertions;
    if (rec.degraded) ++report.degraded;
    if (!rec.status.ok()) ++report.failed;
    if (rec.deadline_seconds > 0 &&
        rec.finish_seconds > rec.deadline_seconds) {
      ++report.deadline_misses;
    }
    report.makespan_seconds =
        std::max(report.makespan_seconds, rec.finish_seconds);
    report.records.push_back(rec);
    if (options_.outcome_observer != nullptr) {
      options_.outcome_observer(options_.outcome_observer_ctx,
                                report.records.back());
    }
  };

  // A shed record: never dispatched (worker -1, bottom tier, no service
  // time); `at` is the trace instant the shed decision was taken.
  auto make_shed = [&](const ReadyEntry& entry, double at, Status status) {
    const Submission& s = arrivals[entry.ticket];
    const AdmissionOutcome& adm = admitted[entry.ticket];
    ServiceQueryRecord rec;
    rec.ticket = entry.ticket;
    rec.worker = -1;
    rec.query_class = adm.query_class;
    rec.arrival_seconds = s.arrival_seconds;
    rec.start_seconds = at;
    rec.finish_seconds = at;
    rec.queue_seconds = at - s.arrival_seconds;
    rec.deadline_seconds = s.deadline_seconds;
    rec.predicted_seconds = adm.predicted_seconds;
    rec.estimated = adm.estimated;
    rec.cache_hit = adm.cache_hit;
    rec.headroom_multiplier = adm.headroom_multiplier;
    rec.status = std::move(status);
    rec.tier = static_cast<int>(ServiceTier::kShed);
    rec.retries = entry.retries;
    commit(rec);
  };

  // Admits every arrival at or before trace time `t` — admission runs at
  // arrival on the front end, so by the time a server picks, everything
  // that has arrived is in the ready queue with its estimate attached.
  // Under kBlock with a bounded queue the door closes while the queue is
  // full (backpressure: the submitter waits, so admission resumes only
  // after a dispatch frees a slot); under the shedding policies the
  // estimate is still paid first — the shed decision *is* estimate-derived
  // — and Offer says who, if anyone, was refused.
  auto admit_up_to = [&](double t) {
    while (next < n && arrivals[next].arrival_seconds <= t) {
      if (options_.overload == OverloadPolicy::kBlock && queue.Full()) break;
      const Submission& s = arrivals[next];
      COTE_CHECK(s.query != nullptr);
      COTE_CHECK(next == 0 ||
                 s.arrival_seconds >= arrivals[next - 1].arrival_seconds);
      admitted[next] = admission_.Admit(*s.query, s.query_class);
      ReadyEntry entry;
      entry.ticket = next;
      entry.ready_seconds = s.arrival_seconds;
      entry.predicted_seconds = admitted[next].predicted_seconds;
      entry.deadline_seconds = s.deadline_seconds;
      entry.patience_seconds = admitted[next].patience_seconds;
      ++next;
      const OfferOutcome offer = queue.Offer(entry);
      if (offer.shed_incoming || offer.shed_existing) {
        // The shed instant is the incoming arrival's own timestamp: that
        // is when the queue was observed full.
        make_shed(offer.shed, s.arrival_seconds,
                  Status::Unavailable(StrFormat(
                      "compile queue full (capacity %zu, policy %s)",
                      queue.capacity(),
                      OverloadPolicyName(options_.overload))));
      }
    }
  };

  while (next < n || !queue.empty()) {
    // The server that frees first dispatches next (lowest index on ties —
    // a deterministic argmin).
    size_t w = 0;
    for (size_t k = 1; k < worker_free.size(); ++k) {
      if (worker_free[k] < worker_free[w]) w = k;
    }
    double t = worker_free[w];
    // An idle server with an empty queue jumps to the next arrival.
    if (queue.empty()) t = std::max(t, arrivals[next].arrival_seconds);
    admit_up_to(t);
    if (queue.empty()) continue;

    ReadyEntry entry = queue.PopNext();
    // Queue-wait expiry: each whole patience interval waited demotes one
    // tier; past the ladder's bottom the entry is shed, the worker stays
    // free at t, and the loop immediately picks again.
    const int tier = std::min(
        static_cast<int>(ServiceTier::kShed),
        entry.tier + Demotions(entry, t));
    if (tier >= static_cast<int>(ServiceTier::kShed)) {
      make_shed(entry, t,
                Status::DeadlineExceeded(StrFormat(
                    "queue wait %.3fs exhausted patience %.3fs ladder",
                    t - entry.ready_seconds, entry.patience_seconds)));
      admit_up_to(t);  // the shed freed a slot — reopen the door
      continue;
    }

    const Submission& sub = arrivals[entry.ticket];
    const AdmissionOutcome& adm = admitted[entry.ticket];
    // The tier transform: full limits, halved limits, or the ungoverned
    // greedy-only compile.
    ResourceLimits limits = adm.limits;
    if (tier == static_cast<int>(ServiceTier::kBudgetHalved)) {
      limits = HalveLimits(limits);
    } else if (tier == static_cast<int>(ServiceTier::kGreedyOnly)) {
      limits = ResourceLimits();
    }

    ServiceQueryRecord rec;
    rec.ticket = entry.ticket;
    rec.worker = static_cast<int>(w);
    rec.query_class = adm.query_class;
    rec.arrival_seconds = sub.arrival_seconds;
    rec.start_seconds = t;
    rec.queue_seconds = t - sub.arrival_seconds;
    rec.deadline_seconds = sub.deadline_seconds;
    rec.predicted_seconds = adm.predicted_seconds;
    rec.estimated = adm.estimated;
    rec.cache_hit = adm.cache_hit;
    rec.headroom_multiplier = adm.headroom_multiplier;
    rec.limits = limits;
    rec.tier = tier;
    rec.retries = entry.retries;

    // The real compile, on this simulated server's warm session. The
    // observer context attributes this run's stage events (and any budget
    // trip) to this queue entry — the fn + ctx observer shape exists for
    // exactly this.
    DispatchTrace trace;
    CompilationSession& session = pool_.session(static_cast<int>(w));
    session.SetStageObserver(&DispatchTraceObserver, &trace);
    const double wall_before = clock_->NowSeconds();
    StatusOr<OptimizeResult> result =
        tier == static_cast<int>(ServiceTier::kGreedyOnly)
            ? session.OptimizeGreedy(*sub.query)
            : (limits.Unlimited() ? session.Optimize(*sub.query)
                                  : session.Optimize(*sub.query, limits));
    const double measured_seconds = clock_->NowSeconds() - wall_before;
    session.SetStageObserver(nullptr, nullptr);

    rec.stage_events = trace.events;
    rec.budget_tripped = trace.budget_tripped;
    if (result.ok()) {
      rec.degraded = result->degraded;
      rec.tripped_limit = result->tripped_limit;
      rec.degraded_stage = result->degraded_stage;
    } else {
      rec.status = result.status();
    }

    rec.service_seconds = options_.time_source == ServiceTimeSource::kClock
                              ? measured_seconds
                              : adm.predicted_seconds;
    rec.finish_seconds = rec.start_seconds + rec.service_seconds;
    worker_free[w] = rec.finish_seconds;
    if (options_.drive_clock != nullptr) {
      options_.drive_clock->SetAtLeast(rec.finish_seconds);
    }

    // Bounded retry-with-degradation: a transient failure with budget
    // left re-enqueues one tier down (capacity-blind — the ticket paid
    // admission once) and commits no record; only the final attempt does.
    if (!result.ok() && IsTransientFailure(result.status().code()) &&
        retry_count[entry.ticket] < options_.max_retries) {
      ++retry_count[entry.ticket];
      ReadyEntry again = entry;
      again.ready_seconds = rec.finish_seconds;
      again.tier = std::min(static_cast<int>(ServiceTier::kGreedyOnly),
                            tier + 1);
      again.retries = retry_count[entry.ticket];
      queue.Push(again);
      continue;
    }

    // Close the two feedback loops — terminal compiled attempts only
    // (sheds never ran, retried attempts aren't final). Cache: store what
    // this statement actually cost, gated (inside the cache) on what
    // admission predicted it would cost. Tracker: an armed compile that
    // tripped its *applied* budget is evidence the estimator runs low for
    // this class — a greedy-tier run applied no budget, so it is silent.
    if (cache_ != nullptr && !adm.cache_hit && result.ok()) {
      rec.cache_inserted =
          cache_->Insert(*sub.query, rec.service_seconds,
                         adm.predicted_seconds);
    }
    if (!limits.Unlimited()) {
      tracker_.Record(
          adm.query_class,
          IsBudgetTrip(rec.degraded, rec.status, rec.budget_tripped));
    }

    commit(rec);
  }

  report.taxonomy = BuildTaxonomy(report.records);
  if (cache_ != nullptr) report.cache_stats = cache_->Stats();
  report.class_feedback = tracker_.Snapshot();
  return report;
}

ServiceBatchResult CompileService::CompileBatch(
    const std::vector<const QueryGraph*>& queries) {
  ServiceBatchResult out;
  const size_t n = queries.size();
  out.admissions.resize(n);
  out.results.assign(n, StatusOr<OptimizeResult>(
                            Status::Internal("query was not compiled")));
  out.traces.resize(n);
  out.schedule.reserve(n);
  ReadyQueue queue(options_.policy, options_.queue_capacity,
                   options_.overload);

  // Closed-loop admission under a bounded queue. kBlock drains the queue
  // in capacity-sized windows (backpressure: the batch waits at the door,
  // nothing is lost); the shedding policies admit the whole batch through
  // Offer and the refused indices land as typed kUnavailable results —
  // under kShedLowestValue that keeps the best `capacity` submissions by
  // estimate-derived value.
  std::vector<const QueryGraph*> ordered;
  std::vector<ResourceLimits> per_query;
  ordered.reserve(n);
  per_query.reserve(n);
  auto drain = [&] {
    while (!queue.empty()) {
      const ReadyEntry entry = queue.PopNext();
      out.schedule.push_back(entry.ticket);
      ordered.push_back(queries[entry.ticket]);
      per_query.push_back(out.admissions[entry.ticket].limits);
    }
  };
  for (size_t i = 0; i < n; ++i) {
    COTE_CHECK(queries[i] != nullptr);
    out.admissions[i] = admission_.Admit(*queries[i], -1);
    if (out.admissions[i].estimated) ++out.estimates;
    if (out.admissions[i].cache_hit) ++out.cache_hits;
    ReadyEntry entry;
    entry.ticket = i;
    entry.predicted_seconds = out.admissions[i].predicted_seconds;
    if (options_.overload == OverloadPolicy::kBlock) {
      if (queue.Full()) drain();  // window boundary: free the whole queue
      queue.Push(entry);
      continue;
    }
    const OfferOutcome offer = queue.Offer(entry);
    if (offer.shed_incoming || offer.shed_existing) {
      out.results[offer.shed.ticket] = StatusOr<OptimizeResult>(
          Status::Unavailable(StrFormat(
              "compile queue full (capacity %zu, policy %s)",
              queue.capacity(), OverloadPolicyName(options_.overload))));
      ++out.taxonomy.shed_queue_full;
    }
  }
  drain();

  // The policy-fixed dispatch order goes to the pool's real worker
  // threads with each query's own derived limits (the per-query-limits
  // scheduler hook). Each query also gets its own DispatchTrace wired
  // through the pool's observer hook, so the batch path sees the same
  // observer-side trip evidence the open-loop Run sees per dispatch.
  const size_t m = ordered.size();
  std::vector<DispatchTrace> ordered_traces(m);
  std::vector<void*> trace_ctx(m);
  for (size_t k = 0; k < m; ++k) trace_ctx[k] = &ordered_traces[k];
  BatchOptimizeResult batch = pool_.CompileBatch(
      ordered, per_query, &DispatchTraceObserver, trace_ctx.data());
  out.stats = std::move(batch.stats);

  for (size_t k = 0; k < m; ++k) {
    out.results[out.schedule[k]] = std::move(batch.results[k]);
    out.traces[out.schedule[k]] = ordered_traces[k];
  }

  for (size_t i = 0; i < n; ++i) {
    const AdmissionOutcome& adm = out.admissions[i];
    const bool shed =
        out.results[i].status().code() == StatusCode::kUnavailable;
    if (shed) continue;  // never compiled: no feedback, already counted
    if (cache_ != nullptr && !adm.cache_hit && out.results[i].ok()) {
      cache_->Insert(*queries[i], out.results[i]->stats.total_seconds,
                     adm.predicted_seconds);
    }
    if (!adm.limits.Unlimited()) {
      // The same trip predicate Run feeds the tracker with — degraded
      // flag, budget-trip Status, or observer evidence — so per-class
      // headroom feedback cannot diverge between execution paths.
      const bool degraded = out.results[i].ok() && out.results[i]->degraded;
      const Status status =
          out.results[i].ok() ? Status() : out.results[i].status();
      tracker_.Record(adm.query_class,
                      IsBudgetTrip(degraded, status,
                                   out.traces[i].budget_tripped));
    }
    if (!out.results[i].ok()) {
      ++out.taxonomy.failed_permanent;
    } else if (out.results[i]->degraded) {
      ++out.taxonomy.served_degraded;
    } else {
      ++out.taxonomy.served_full;
    }
  }
  return out;
}

}  // namespace cote
