#ifndef COTE_SERVICE_TRIP_TRACKER_H_
#define COTE_SERVICE_TRIP_TRACKER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace cote {

class QueryGraph;

/// Maps a query to its feedback class: queries of similar enumeration
/// shape share estimator bias, and join count (table count) is the
/// dominant axis of COTE error (§5's per-size error tables). Classes
/// above TripRateTracker::kMaxClass share the last bucket.
int ServiceQueryClass(const QueryGraph& graph);

/// A failed compile whose Status is the budget's own (kFail trip) is trip
/// evidence just like a degraded result.
bool IsBudgetTripStatus(const Status& status);

/// The one trip predicate every execution path feeds the tracker with:
/// an armed compile counts as tripped when its result degraded
/// (kGreedyFallback), when its failure Status is the budget's own
/// (kFail), or when the stage observer saw the budget flag raise
/// (`observer_tripped`) — the last catches trips detected after
/// enumeration already finished, where the result is neither degraded
/// nor failed. The simulated Run, the closed-loop CompileBatch, and the
/// async executor all call exactly this function, so per-class headroom
/// feedback cannot diverge by execution path (pinned by
/// ServiceTripPredicateTest).
bool IsBudgetTrip(bool degraded, const Status& status, bool observer_tripped);

struct TripTrackerOptions {
  /// A class whose windowed trip rate exceeds this gets wider budgets.
  double trip_rate_threshold = 0.5;
  /// Observations per decision window: react after this many armed
  /// compiles of a class, not after a single unlucky trip.
  int min_samples = 4;
  /// Multiplier growth per widening decision.
  double widen_factor = 2.0;
  /// Ceiling on the accumulated headroom multiplier: beyond this the
  /// estimator is so biased the budget is effectively advisory, and
  /// unbounded widening would disable governance entirely.
  double max_multiplier = 64.0;
};

/// \brief Per-query-class budget trip-rate feedback.
///
/// The service derives each query's ResourceLimits from its own COTE
/// estimate; a class of queries that keeps tripping those derived budgets
/// is evidence the estimator is biased *low* for that class (the paper's
/// §5 error analysis says bias clusters by query shape). The tracker
/// counts armed-compile outcomes per class in fixed windows and widens
/// the class's headroom multiplier when the windowed trip rate crosses
/// the threshold — the "Online Sketch-based Query Optimization" pattern
/// of feeding observed outcomes back into policy without stopping the
/// service.
///
/// Deterministic and allocation-free after construction: fixed arrays,
/// integer counters, multiplicative widening. Single-writer by design —
/// the service's (single-threaded) dispatch loop records outcomes; the
/// admission stage only reads multipliers.
class TripRateTracker {
 public:
  /// Classes 0..kMaxClass; ServiceQueryClass clamps into this range.
  static constexpr int kMaxClass = 32;

  explicit TripRateTracker(TripTrackerOptions options = {});

  /// Records the outcome of one *armed* compile of `query_class`:
  /// `tripped` is whether the derived budget tripped (degraded result or
  /// budget-trip failure). Unarmed compiles are not evidence — don't
  /// record them.
  void Record(int query_class, bool tripped);

  /// Current headroom multiplier for the class (≥ 1.0), composed into
  /// LimitsPolicy::Derive's extra_headroom by the admission stage.
  double HeadroomMultiplier(int query_class) const;

  struct ClassSnapshot {
    int query_class = 0;
    int64_t armed = 0;    ///< total armed compiles recorded
    int64_t tripped = 0;  ///< total trips among them
    double multiplier = 1.0;
  };

  /// Classes with at least one recorded observation, ascending class id.
  std::vector<ClassSnapshot> Snapshot() const;

 private:
  struct ClassStats {
    int64_t armed = 0;
    int64_t tripped = 0;
    int window_armed = 0;
    int window_tripped = 0;
    double multiplier = 1.0;
  };

  static int ClampClass(int query_class);

  TripTrackerOptions options_;
  std::array<ClassStats, kMaxClass + 1> classes_;
};

}  // namespace cote

#endif  // COTE_SERVICE_TRIP_TRACKER_H_
