#include "service/admission.h"

namespace cote {

AdmissionStage::AdmissionStage(const OptimizerOptions& options,
                               const PlanCounterOptions& counter_options,
                               const TimeModel& time_model,
                               const AdmissionOptions& admission,
                               CompileTimeCache* cache,
                               const TripRateTracker* tracker)
    : time_model_(time_model),
      admission_(admission),
      cache_(cache),
      tracker_(tracker),
      session_(options, counter_options) {}

AdmissionOutcome AdmissionStage::Admit(const QueryGraph& graph,
                                       int query_class) {
  AdmissionOutcome out;
  out.query_class =
      query_class >= 0 ? query_class : ServiceQueryClass(graph);
  out.headroom_multiplier =
      tracker_ != nullptr ? tracker_->HeadroomMultiplier(out.query_class) : 1.0;

  if (cache_ != nullptr) {
    if (std::optional<double> cached = cache_->Lookup(graph)) {
      out.cache_hit = true;
      if (admission_.skip_estimate_on_cache_hit) {
        // The cached *measured* seconds stand in for the estimate. Only a
        // deadline can be derived from seconds alone — the count caps
        // stay unlimited (LimitsPolicy::DeriveFromSeconds).
        out.predicted_seconds = *cached;
        out.patience_seconds =
            admission_.limits_policy.DerivePatience(out.predicted_seconds);
        if (admission_.derive_limits) {
          out.limits = admission_.limits_policy.DeriveFromSeconds(
              *cached, out.headroom_multiplier);
        }
        return out;
      }
    }
  }

  out.estimate = session_.Estimate(graph, time_model_);
  out.estimated = true;
  out.predicted_seconds = out.estimate.estimated_seconds;
  out.patience_seconds =
      admission_.limits_policy.DerivePatience(out.predicted_seconds);
  if (admission_.derive_limits) {
    out.limits = admission_.limits_policy.Derive(out.estimate,
                                                 out.headroom_multiplier);
  }
  return out;
}

}  // namespace cote
