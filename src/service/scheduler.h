#ifndef COTE_SERVICE_SCHEDULER_H_
#define COTE_SERVICE_SCHEDULER_H_

#include <cstddef>
#include <vector>

namespace cote {

/// Queue discipline of the compile service. Every policy is a pure,
/// deterministic function of the ready set — ties always break on ticket
/// (submission order), so two runs over the same trace dispatch in the
/// same order bit for bit.
enum class SchedulingPolicy {
  /// Dispatch in arrival order. The estimate-blind baseline.
  kFifo,
  /// Shortest-estimated-compile-first: dispatch the ready query with the
  /// smallest predicted compile seconds. The paper's §6 "workload
  /// management" application — the ~3%-cost estimate is exactly what SJF
  /// needs and what a compiler normally never has.
  kShortestEstimatedFirst,
  /// Earliest-deadline-first over queries that carry a deadline;
  /// deadline-less queries run FIFO behind every deadline-carrying one.
  kDeadlineAware,
};

const char* SchedulingPolicyName(SchedulingPolicy policy);

/// One admitted submission waiting for a worker.
struct ReadyEntry {
  /// Submission index in the arrival trace: unique, and the universal
  /// deterministic tie-break.
  size_t ticket = 0;
  /// Virtual/wall seconds at which the entry became ready (admitted).
  double ready_seconds = 0;
  /// Predicted compile seconds (estimate, or cached measurement on a
  /// signature hit) — the SJF key.
  double predicted_seconds = 0;
  /// Absolute deadline in trace time; <= 0 means none — the EDF key.
  double deadline_seconds = 0;
};

/// True when `a` should dispatch before `b` under `policy`. A strict
/// total order for any entry set with unique tickets (every comparison
/// ends in the ticket tie-break), so the dispatch sequence is a pure
/// function of the ready set's *contents* — never of insertion or heap
/// history. Exported so tests (and any external scheduler) can sort a
/// reference sequence with the exact production comparator.
bool SchedulesBefore(SchedulingPolicy policy, const ReadyEntry& a,
                     const ReadyEntry& b);

/// \brief The service's ready queue: admitted-but-not-yet-dispatched
/// submissions, popped by policy.
///
/// A binary heap over a capacity-retained vector, ordered by
/// SchedulesBefore: Push and PopNext are O(log n), which the live async
/// executor needs — its workers pop under a mutex, so a linear scan per
/// pop (the previous implementation: O(n²) per drain) would serialize the
/// whole pool behind queue maintenance on deep backlogs. Because
/// SchedulesBefore is a strict total order (unique-ticket tie-break),
/// heap pops yield exactly the sorted dispatch sequence the old argmin
/// scan produced — pinned against the scheduler tests' expected orders
/// and a sorted-reference cross-check.
class ReadyQueue {
 public:
  explicit ReadyQueue(SchedulingPolicy policy) : policy_(policy) {}

  SchedulingPolicy policy() const { return policy_; }
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// O(log n) sift-up insert.
  void Push(const ReadyEntry& entry);

  /// Removes and returns the entry the policy picks next (the heap root).
  /// O(log n). Queue must be non-empty.
  ReadyEntry PopNext();

 private:
  SchedulingPolicy policy_;
  /// Max-heap under "dispatches later", so the root is the next dispatch.
  std::vector<ReadyEntry> heap_;
};

}  // namespace cote

#endif  // COTE_SERVICE_SCHEDULER_H_
