#ifndef COTE_SERVICE_SCHEDULER_H_
#define COTE_SERVICE_SCHEDULER_H_

#include <cstddef>
#include <vector>

namespace cote {

/// Queue discipline of the compile service. Every policy is a pure,
/// deterministic function of the ready set — ties always break on ticket
/// (submission order), so two runs over the same trace dispatch in the
/// same order bit for bit.
enum class SchedulingPolicy {
  /// Dispatch in arrival order. The estimate-blind baseline.
  kFifo,
  /// Shortest-estimated-compile-first: dispatch the ready query with the
  /// smallest predicted compile seconds. The paper's §6 "workload
  /// management" application — the ~3%-cost estimate is exactly what SJF
  /// needs and what a compiler normally never has.
  kShortestEstimatedFirst,
  /// Earliest-deadline-first over queries that carry a deadline;
  /// deadline-less queries run FIFO behind every deadline-carrying one.
  kDeadlineAware,
};

const char* SchedulingPolicyName(SchedulingPolicy policy);

/// What a bounded ReadyQueue does when an Offer arrives while it is full.
/// Like the scheduling policies, every decision is a pure function of the
/// queue contents and the offered entry — no clock reads, no randomness —
/// so overload behavior replays bit-identically under the virtual clock.
enum class OverloadPolicy {
  /// Offer() admits unconditionally; bounding the queue is the *caller's*
  /// protocol (the async service's Submit blocks on a condvar until a
  /// worker frees a slot; the closed-loop batch path admits in windows).
  /// The right choice when the producer can absorb backpressure.
  kBlock,
  /// Refuse the incoming submission with a typed kUnavailable outcome.
  /// The open-loop choice when arrivals cannot wait at the door.
  kReject,
  /// Evict whichever entry — queued or incoming — has the worst
  /// estimate-derived value (ShedsFirst), so cheap and urgent work
  /// survives overload. The estimate-as-admission-currency policy the
  /// paper's §6 implies: nothing else in a compiler knows which queued
  /// query is cheapest to serve.
  kShedLowestValue,
};

const char* OverloadPolicyName(OverloadPolicy policy);

/// One admitted submission waiting for a worker.
struct ReadyEntry {
  /// Submission index in the arrival trace: unique, and the universal
  /// deterministic tie-break. At most one entry per ticket is ever queued
  /// (a retry re-enqueues only after its previous attempt popped).
  size_t ticket = 0;
  /// Virtual/wall seconds at which the entry became ready (admitted; for
  /// a retry, the failing attempt's finish time).
  double ready_seconds = 0;
  /// Predicted compile seconds (estimate, or cached measurement on a
  /// signature hit) — the SJF key and the shed-value key.
  double predicted_seconds = 0;
  /// Absolute deadline in trace time; <= 0 means none — the EDF key.
  double deadline_seconds = 0;
  /// Estimate-derived queue-wait patience (LimitsPolicy::DerivePatience);
  /// <= 0 means infinite. Each whole patience interval waited demotes the
  /// entry one degradation tier at dispatch.
  double patience_seconds = 0;
  /// Degradation tier this entry is admitted at (ServiceTier as int; 0 =
  /// full service). Retries re-enqueue one tier down.
  int tier = 0;
  /// How many times this ticket has been re-enqueued after a transient
  /// failure.
  int retries = 0;
};

/// True when `a` should dispatch before `b` under `policy`. A strict
/// total order for any entry set with unique tickets (every comparison
/// ends in the ticket tie-break), so the dispatch sequence is a pure
/// function of the ready set's *contents* — never of insertion or heap
/// history. Exported so tests (and any external scheduler) can sort a
/// reference sequence with the exact production comparator.
bool SchedulesBefore(SchedulingPolicy policy, const ReadyEntry& a,
                     const ReadyEntry& b);

/// True when `a` should be shed before `b` under kShedLowestValue: the
/// more expensive prediction sheds first (serving it buys the least
/// throughput per queue slot), then deadline-less before
/// deadline-carrying, then the later deadline, then the younger ticket.
/// A strict total order under unique tickets, like SchedulesBefore, so
/// the eviction choice is deterministic. Exported for the same reason.
bool ShedsFirst(const ReadyEntry& a, const ReadyEntry& b);

/// What Offer() did with a submission against a full queue.
struct OfferOutcome {
  /// The offered entry is now queued.
  bool admitted = false;
  /// The offered entry itself was refused (kReject, or it was the
  /// lowest-value entry under kShedLowestValue). `shed` holds it.
  bool shed_incoming = false;
  /// A previously queued entry was evicted to make room (`shed` holds
  /// it); the offered entry was admitted.
  bool shed_existing = false;
  ReadyEntry shed;
};

/// \brief The service's ready queue: admitted-but-not-yet-dispatched
/// submissions, popped by policy.
///
/// A binary heap over a capacity-retained vector, ordered by
/// SchedulesBefore: Push and PopNext are O(log n), which the live async
/// executor needs — its workers pop under a mutex, so a linear scan per
/// pop (the previous implementation: O(n²) per drain) would serialize the
/// whole pool behind queue maintenance on deep backlogs. Because
/// SchedulesBefore is a strict total order (unique-ticket tie-break),
/// heap pops yield exactly the sorted dispatch sequence the old argmin
/// scan produced — pinned against the scheduler tests' expected orders
/// and a sorted-reference cross-check.
///
/// Bounded admission: with `capacity` > 0 the queue is full once it holds
/// `capacity` entries, and Offer() applies the OverloadPolicy; Push()
/// stays capacity-blind by design (retry re-admission re-enqueues work
/// the service already accepted — eviction paid its admission once).
///
/// Observability: size() is the depth and OldestEnqueueSeconds() the
/// enqueue stamp of the longest-queued entry, both O(1) — the overload
/// monitors' two numbers, previously unobservable from outside. Age
/// tracking rides on a FIFO slot ring in enqueue order with lazy
/// dead-prefix reclamation (amortized O(1) per queue operation);
/// enqueue stamps are clamped monotone so "oldest" is exact even when a
/// retry's re-enqueue time interleaves with late arrival admissions.
class ReadyQueue {
 public:
  explicit ReadyQueue(SchedulingPolicy policy, size_t capacity = 0,
                      OverloadPolicy overload = OverloadPolicy::kBlock)
      : policy_(policy), capacity_(capacity), overload_(overload) {}

  /// Heap element: the entry plus its index into the age slot ring.
  /// Public only so the heap comparator in scheduler.cc can see it; not
  /// part of the queue's interface.
  struct Item {
    ReadyEntry entry;
    size_t slot = 0;
  };

  SchedulingPolicy policy() const { return policy_; }
  size_t capacity() const { return capacity_; }  ///< 0 = unbounded
  OverloadPolicy overload_policy() const { return overload_; }
  bool empty() const { return heap_.empty(); }
  /// Queue depth, O(1).
  size_t size() const { return heap_.size(); }
  bool Full() const { return capacity_ > 0 && heap_.size() >= capacity_; }

  /// Enqueue stamp (monotone-clamped ready_seconds) of the entry that has
  /// been queued longest; 0 when empty. O(1).
  double OldestEnqueueSeconds() const {
    return slots_head_ < slots_.size() ? slots_[slots_head_].enqueue_seconds
                                       : 0;
  }
  /// Age of the longest-queued entry at time `now`; 0 when empty. O(1).
  double OldestAgeSeconds(double now) const {
    if (empty()) return 0;
    const double age = now - OldestEnqueueSeconds();
    return age > 0 ? age : 0;
  }

  /// O(log n) sift-up insert, capacity-blind (see the class doc).
  void Push(const ReadyEntry& entry);

  /// Capacity-aware insert: admits while there is room (or under kBlock),
  /// otherwise applies the overload policy. The outcome says who, if
  /// anyone, was shed.
  OfferOutcome Offer(const ReadyEntry& entry);

  /// Removes and returns the entry the policy picks next (the heap root).
  /// O(log n). Queue must be non-empty.
  ReadyEntry PopNext();

 private:
  /// One enqueue in FIFO order; dead once its entry popped or shed.
  struct AgeSlot {
    double enqueue_seconds = 0;
    bool alive = false;
  };

  /// Appends to heap and slot ring (the shared tail of Push/Offer).
  void Enqueue(const ReadyEntry& entry);
  /// Marks a slot dead and reclaims the dead prefix.
  void MarkDead(size_t slot);

  SchedulingPolicy policy_;
  size_t capacity_;
  OverloadPolicy overload_;
  /// Max-heap under "dispatches later", so the root is the next dispatch.
  std::vector<Item> heap_;
  /// Enqueue-order slot ring behind the O(1) age accessors. Slots die in
  /// arbitrary (policy) order but are reclaimed lazily from the front;
  /// Enqueue compacts the dead prefix away once it dominates, so the live
  /// span stays bounded by the churn within one queue residence window.
  std::vector<AgeSlot> slots_;
  size_t slots_head_ = 0;
  /// Monotone clamp for enqueue stamps (retries can re-enqueue "earlier"
  /// than a late admission's arrival stamp).
  double last_enqueue_seconds_ = 0;
};

}  // namespace cote

#endif  // COTE_SERVICE_SCHEDULER_H_
