#ifndef COTE_SERVICE_SCHEDULER_H_
#define COTE_SERVICE_SCHEDULER_H_

#include <cstddef>
#include <vector>

namespace cote {

/// Queue discipline of the compile service. Every policy is a pure,
/// deterministic function of the ready set — ties always break on ticket
/// (submission order), so two runs over the same trace dispatch in the
/// same order bit for bit.
enum class SchedulingPolicy {
  /// Dispatch in arrival order. The estimate-blind baseline.
  kFifo,
  /// Shortest-estimated-compile-first: dispatch the ready query with the
  /// smallest predicted compile seconds. The paper's §6 "workload
  /// management" application — the ~3%-cost estimate is exactly what SJF
  /// needs and what a compiler normally never has.
  kShortestEstimatedFirst,
  /// Earliest-deadline-first over queries that carry a deadline;
  /// deadline-less queries run FIFO behind every deadline-carrying one.
  kDeadlineAware,
};

const char* SchedulingPolicyName(SchedulingPolicy policy);

/// One admitted submission waiting for a worker.
struct ReadyEntry {
  /// Submission index in the arrival trace: unique, and the universal
  /// deterministic tie-break.
  size_t ticket = 0;
  /// Virtual/wall seconds at which the entry became ready (admitted).
  double ready_seconds = 0;
  /// Predicted compile seconds (estimate, or cached measurement on a
  /// signature hit) — the SJF key.
  double predicted_seconds = 0;
  /// Absolute deadline in trace time; <= 0 means none — the EDF key.
  double deadline_seconds = 0;
};

/// \brief The service's ready queue: admitted-but-not-yet-dispatched
/// submissions, popped by policy.
///
/// A linear-scan priority queue over a capacity-retained vector. The
/// service dispatches compiles that take milliseconds to seconds, and
/// ready sets are tens of entries, so an O(n) scan per pop is noise next
/// to one compile — and a plain vector keeps Pop deterministic, simple to
/// reason about, and free of heap churn in steady state (swap-remove,
/// capacity retained).
class ReadyQueue {
 public:
  explicit ReadyQueue(SchedulingPolicy policy) : policy_(policy) {}

  SchedulingPolicy policy() const { return policy_; }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  void Push(const ReadyEntry& entry) { entries_.push_back(entry); }

  /// Removes and returns the entry the policy picks next. Queue must be
  /// non-empty.
  ReadyEntry PopNext();

 private:
  /// Index of the policy's pick; deterministic for any vector order
  /// because every comparison ends in the unique ticket.
  size_t PickIndex() const;

  SchedulingPolicy policy_;
  std::vector<ReadyEntry> entries_;
};

}  // namespace cote

#endif  // COTE_SERVICE_SCHEDULER_H_
