#ifndef COTE_SERVICE_ASYNC_EXECUTOR_H_
#define COTE_SERVICE_ASYNC_EXECUTOR_H_

#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "service/admission.h"
#include "service/arrival_trace.h"
#include "service/compile_service.h"
#include "service/scheduler.h"
#include "service/trip_tracker.h"
#include "session/session_pool.h"

namespace cote {

/// \brief Live async twin of CompileService: real worker threads blocking
/// on a condition variable over the shared ready queue.
///
/// CompileService::Run simulates the service timeline (discrete-event,
/// virtual clock) while compiling on the calling thread; this class runs
/// the *same* front-end — estimate-first admission, policy-ordered
/// ReadyQueue, estimate-derived per-query limits, estimate-gated caching
/// — as an actual server: `num_workers` threads each own one warm pool
/// session, block on `ready_cv_` while the queue is empty, pop by
/// SchedulingPolicy, compile outside the lock, and publish a
/// ServiceQueryRecord into the guarded results sink.
///
/// Queue protocol (all shared state under the one `mu_`):
///
///   Submit (caller thread)                Worker w
///   ----------------------                --------
///   admit (warm estimate session)         lock mu_
///   lock mu_                              while (!stop_ && queue empty)
///     pending_[t] = outcome                 ready_cv_.Wait(mu_)
///     queue_.Push(ticket t)               if (queue empty) exit  // stop
///     ++submitted_                        entry = queue_.PopNext()
///   unlock; ready_cv_.NotifyOne()         copy pending_[ticket]; unlock
///                                         compile on own session
///                                         lock mu_
///                                           completed_.push_back(rec)
///                                           ++finished_
///                                         unlock; done_cv_.NotifyOne()
///
/// Happens-before: every record field a worker writes is published to
/// Drain() through the `mu_` release (worker) / acquire (Drain) pair, and
/// every pending admission a worker reads was published through the same
/// mutex by Submit — no field crosses threads outside the lock. The
/// compile itself touches only the worker's own session and stack-local
/// state, so it runs lock-free.
///
/// Determinism contract (pinned by tests/service/async_service_test.cc
/// against the virtual-clock CompileService::Run oracle): admission runs
/// at Submit on the caller thread, and *all* feedback — statement-cache
/// inserts and trip-tracker records — is deferred to Drain(), where it is
/// applied in ticket order on the caller thread. Intra-burst admissions
/// therefore never observe intra-burst feedback, exactly like a simulated
/// burst whose arrivals all precede the first dispatch; per-query
/// outcomes (status, degraded, trip evidence, cache decisions) then
/// depend only on (query, options, limits) — warm-session invariance —
/// and match the simulated run's regardless of which worker ran what in
/// which order. Wall-clock fields (start/finish/queue seconds, worker
/// index) are the only fields that may differ.
///
/// Shutdown protocol: Shutdown() sets `stop_` and wakes every worker;
/// a worker exits only when the queue is *empty*, so every admitted query
/// still compiles and lands in the sink — stop never abandons admitted
/// work. The destructor calls Shutdown(). Submit after Shutdown is a
/// programming error (checked).
///
/// Driver threading: Submit/Drain/Run/Shutdown are single-caller (one
/// driver thread), like CompileService; only the workers are concurrent.
class AsyncCompileService {
 public:
  explicit AsyncCompileService(CompileServiceOptions options = {});
  ~AsyncCompileService();

  // Non-copyable, non-movable for CompileService's reasons (admission and
  // cache policy hold pointers into our own members) plus the worker
  // threads' `this` capture.
  AsyncCompileService(const AsyncCompileService&) = delete;
  AsyncCompileService& operator=(const AsyncCompileService&) = delete;
  AsyncCompileService(AsyncCompileService&&) = delete;
  AsyncCompileService& operator=(AsyncCompileService&&) = delete;

  /// Admits one submission (on the calling thread) and enqueues it for
  /// the workers. Returns the submission's ticket: its index within the
  /// current burst, and its index into Drain()'s records. The submitted
  /// query must stay alive until the burst is drained.
  size_t Submit(const Submission& submission) COTE_EXCLUDES(mu_);

  /// Blocks until every submitted query has compiled, applies the
  /// deferred feedback (cache inserts, tracker records) in ticket order,
  /// and returns the burst's report with records in ticket (submission)
  /// order — input-order recovery is `report.records[ticket]`, unlike
  /// Run-the-simulation's dispatch-ordered records. Resets burst state,
  /// so the service is immediately reusable for the next burst.
  ServiceReport Drain() COTE_EXCLUDES(mu_);

  /// Submit-all + Drain. With `pace_arrivals` the caller thread sleeps
  /// each submission until its arrival_seconds offset on the service
  /// clock (open-loop replay in real time — the bench's async mode);
  /// without it the whole trace is submitted as one burst, which is the
  /// deterministic shape the oracle test compares.
  ServiceReport Run(const std::vector<Submission>& arrivals,
                    bool pace_arrivals = false) COTE_EXCLUDES(mu_);

  /// Stops the workers after the queue drains and joins them. Idempotent.
  /// Called by the destructor; call it earlier to bound worker lifetime.
  void Shutdown() COTE_EXCLUDES(mu_);

  const CompileServiceOptions& options() const { return options_; }
  /// Null when the cache is disabled.
  CompileTimeCache* cache() { return cache_.get(); }
  const TripRateTracker& tracker() const { return tracker_; }
  SessionPool& pool() { return pool_; }

 private:
  /// One admitted-but-not-drained submission, indexed by ticket.
  struct Pending {
    Submission submission;
    AdmissionOutcome admission;
    /// Service-clock seconds from the burst epoch at Submit time.
    double arrival_seconds = 0;
  };

  /// Body of worker thread `worker` (owning pool session `worker`).
  void WorkerLoop(int worker) COTE_EXCLUDES(mu_);

  /// The per-dispatch hot path: compiles `work` on worker `worker`'s own
  /// session and builds its record. Touches only worker-private state —
  /// no lock, no allocation (tools/hotpath_lint.py manifests it).
  ServiceQueryRecord CompileEntry(int worker, size_t ticket,
                                  const Pending& work, double epoch);

  CompileServiceOptions options_;
  Clock* clock_;  // never null after construction
  std::unique_ptr<CompileTimeCache> cache_;  // null when disabled
  TripRateTracker tracker_;
  AdmissionStage admission_;
  SessionPool pool_;

  Mutex mu_;
  /// Workers wait here for work (or stop). Signaled by Submit/Shutdown.
  CondVar ready_cv_;
  /// Drain waits here for the burst to finish. Signaled per completion.
  CondVar done_cv_;
  ReadyQueue queue_ COTE_GUARDED_BY(mu_);
  /// Burst state, reset by Drain. `pending_` is indexed by ticket and
  /// only ever grows within a burst, so a worker's copy-out never races
  /// a reallocation observed without the lock.
  std::vector<Pending> pending_ COTE_GUARDED_BY(mu_);
  std::vector<ServiceQueryRecord> completed_ COTE_GUARDED_BY(mu_);
  size_t submitted_ COTE_GUARDED_BY(mu_) = 0;
  size_t finished_ COTE_GUARDED_BY(mu_) = 0;
  /// Service-clock reading at the burst's first Submit; all per-record
  /// times are offsets from it.
  double burst_epoch_ COTE_GUARDED_BY(mu_) = 0;
  /// Stop flag for the workers (poison condition, not a poison pill: the
  /// wait predicate is `stop_ || !queue_.empty()`, and exit additionally
  /// requires the queue empty so admitted work always completes).
  bool stop_ COTE_GUARDED_BY(mu_) = false;

  /// Spawned in the constructor, joined by Shutdown. Immutable in
  /// between; touched only by the driver thread.
  std::vector<std::thread> threads_;
};

}  // namespace cote

#endif  // COTE_SERVICE_ASYNC_EXECUTOR_H_
