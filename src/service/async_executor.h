#ifndef COTE_SERVICE_ASYNC_EXECUTOR_H_
#define COTE_SERVICE_ASYNC_EXECUTOR_H_

#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/resource_budget.h"
#include "common/thread_annotations.h"
#include "service/admission.h"
#include "service/arrival_trace.h"
#include "service/compile_service.h"
#include "service/scheduler.h"
#include "service/trip_tracker.h"
#include "session/session_pool.h"

namespace cote {

/// \brief Live async twin of CompileService: real worker threads blocking
/// on a condition variable over the shared ready queue.
///
/// CompileService::Run simulates the service timeline (discrete-event,
/// virtual clock) while compiling on the calling thread; this class runs
/// the *same* front-end — estimate-first admission, policy-ordered
/// ReadyQueue, estimate-derived per-query limits, estimate-gated caching
/// — as an actual server: `num_workers` threads each own one warm pool
/// session, block on `ready_cv_` while the queue is empty, pop by
/// SchedulingPolicy, compile outside the lock, and publish a
/// ServiceQueryRecord into the guarded results sink.
///
/// Queue protocol (all shared state under the one `mu_`):
///
///   Submit (caller thread)                Worker w
///   ----------------------                --------
///   admit (warm estimate session)         lock mu_
///   lock mu_                              while (!stop_ && (hold_ ||
///     [kBlock] while full:                       queue empty))
///       space_cv_.Wait(mu_)                 ready_cv_.Wait(mu_)
///     Offer(ticket t):                    if (queue empty) exit  // stop
///       admitted  -> queue                entry = queue_.PopNext()
///       shed      -> completed_ now       copy pending_[ticket]
///     ++submitted_                        register inflight_[w]; unlock
///   unlock; ready_cv_.NotifyOne()         space_cv_.NotifyOne()
///                                         compile on own session
///                                         lock mu_; clear inflight_[w]
///                                           retry? -> queue_.Push(t)
///                                           else completed_.push_back
///                                                ++finished_
///                                         unlock; done_cv_.NotifyOne()
///
/// Happens-before: every record field a worker writes is published to
/// Drain() through the `mu_` release (worker) / acquire (Drain) pair, and
/// every pending admission a worker reads was published through the same
/// mutex by Submit — no field crosses threads outside the lock. The
/// compile itself touches only the worker's own session and stack-local
/// state, so it runs lock-free.
///
/// Overload resilience (DESIGN.md §16), mirroring CompileService::Run:
/// with queue_capacity > 0, kBlock back-pressures Submit on `space_cv_`
/// while kReject/kShedLowestValue shed on the caller thread — the shed
/// record is complete at Submit, so shed tickets count submitted *and*
/// finished immediately and ticket conservation holds. At pop, the wall
/// queue wait demotes the entry down the degradation ladder (tiered
/// limits applied in CompileEntry); transient failures re-enqueue one
/// tier down, up to max_retries, without touching submitted_/finished_.
///
/// Cross-thread cancellation: each worker registers its in-flight compile
/// (start time, patience, the session's ResourceBudget) in `inflight_`
/// under `mu_` before compiling and deregisters after. With
/// external_cancel_factor > 0, Drain doubles as supervisor: it polls on
/// `done_cv_` and calls ResourceBudget::TripExternal on any compile whose
/// wall time exceeds patience * factor. The trip is best-effort and safe
/// by the registration protocol: a worker only re-arms its budget after a
/// later pop, which requires `mu_`, so a supervisor trip taken under
/// `mu_` while the registration is active can only land on the intended
/// compile (cancelling it at its next checkpoint) or on an already
/// disarmed budget, where the next Arm() resets it harmlessly. Whether a
/// cancel surfaces as Status kCancelled or as a degraded greedy result is
/// the budget's on_trip action, exactly like any other trip.
///
/// Determinism contract (pinned by tests/service/async_service_test.cc
/// against the virtual-clock CompileService::Run oracle): admission runs
/// at Submit on the caller thread, and *all* feedback — statement-cache
/// inserts and trip-tracker records — is deferred to Drain(), where it is
/// applied in ticket order on the caller thread. Intra-burst admissions
/// therefore never observe intra-burst feedback, exactly like a simulated
/// burst whose arrivals all precede the first dispatch; per-query
/// outcomes (status, degraded, trip evidence, cache decisions) then
/// depend only on (query, options, limits) — warm-session invariance —
/// and match the simulated run's regardless of which worker ran what in
/// which order. Wall-clock fields (start/finish/queue seconds, worker
/// index) are the only fields that may differ. Wall-derived *decisions*
/// (patience demotion, external cancel) are deterministic only when off
/// (patience/factor 0) — the pinned oracle legs run them off; the chaos
/// harness runs them on with interleaving-robust assertions.
///
/// Shutdown protocol: Shutdown() sets `stop_` and wakes every worker;
/// a worker exits only when the queue is *empty*, so every admitted query
/// still compiles and lands in the sink — stop never abandons admitted
/// work. The destructor calls Shutdown(). Submit after Shutdown is a
/// programming error (checked).
///
/// Driver threading: Submit/Drain/Run/Shutdown/HoldWorkers are
/// single-caller (one driver thread), like CompileService; only the
/// workers are concurrent.
class AsyncCompileService {
 public:
  explicit AsyncCompileService(CompileServiceOptions options = {});
  ~AsyncCompileService();

  // Non-copyable, non-movable for CompileService's reasons (admission and
  // cache policy hold pointers into our own members) plus the worker
  // threads' `this` capture.
  AsyncCompileService(const AsyncCompileService&) = delete;
  AsyncCompileService& operator=(const AsyncCompileService&) = delete;
  AsyncCompileService(AsyncCompileService&&) = delete;
  AsyncCompileService& operator=(AsyncCompileService&&) = delete;

  /// Admits one submission (on the calling thread) and enqueues it for
  /// the workers. Returns the submission's ticket: its index within the
  /// current burst, and its index into Drain()'s records. The submitted
  /// query must stay alive until the burst is drained. Under kBlock with
  /// a bounded queue this blocks while the queue is full (backpressure);
  /// under the shedding policies a refused ticket's terminal record is
  /// already complete when Submit returns.
  size_t Submit(const Submission& submission) COTE_EXCLUDES(mu_);

  /// Blocks until every submitted query has compiled, applies the
  /// deferred feedback (cache inserts, tracker records) in ticket order,
  /// and returns the burst's report with records in ticket (submission)
  /// order — input-order recovery is `report.records[ticket]`, unlike
  /// Run-the-simulation's dispatch-ordered records. Resets burst state,
  /// so the service is immediately reusable for the next burst. With
  /// external_cancel_factor > 0 this loop is also the cancellation
  /// supervisor (see the class doc).
  ServiceReport Drain() COTE_EXCLUDES(mu_);

  /// Submit-all + Drain. With `pace_arrivals` the caller thread sleeps
  /// each submission until its arrival_seconds offset on the service
  /// clock (open-loop replay in real time — the bench's async mode);
  /// without it the whole trace is submitted as one burst, which is the
  /// deterministic shape the oracle test compares.
  ServiceReport Run(const std::vector<Submission>& arrivals,
                    bool pace_arrivals = false) COTE_EXCLUDES(mu_);

  /// Parks the workers: they finish their current compile but pop nothing
  /// more until ReleaseWorkers(). Lets a test (or a staged replay) build
  /// a whole burst in the queue first, so pop order is the pure policy
  /// order over the full burst — the exact shape of a simulated burst
  /// whose arrivals all precede the first dispatch. Caution: holding the
  /// workers while a kBlock Submit is blocked on a full queue would
  /// deadlock the driver; release first.
  void HoldWorkers() COTE_EXCLUDES(mu_);
  void ReleaseWorkers() COTE_EXCLUDES(mu_);

  /// Stops the workers after the queue drains and joins them. Idempotent.
  /// Called by the destructor; call it earlier to bound worker lifetime.
  void Shutdown() COTE_EXCLUDES(mu_);

  const CompileServiceOptions& options() const { return options_; }
  /// Null when the cache is disabled.
  CompileTimeCache* cache() { return cache_.get(); }
  const TripRateTracker& tracker() const { return tracker_; }
  SessionPool& pool() { return pool_; }

 private:
  /// One admitted-but-not-drained submission, indexed by ticket.
  struct Pending {
    Submission submission;
    AdmissionOutcome admission;
    /// Service-clock seconds from the burst epoch at Submit time.
    double arrival_seconds = 0;
  };

  /// One worker's currently compiling entry, for the cancellation
  /// supervisor. Registered/cleared by the worker and read (and tripped)
  /// by Drain, all under mu_.
  struct InFlight {
    bool active = false;
    size_t ticket = 0;
    /// Absolute service-clock seconds the compile started.
    double start_seconds = 0;
    double patience_seconds = 0;
    /// The worker session's budget — the cross-thread cancellation wire.
    ResourceBudget* budget = nullptr;
  };

  /// Body of worker thread `worker` (owning pool session `worker`).
  void WorkerLoop(int worker) COTE_EXCLUDES(mu_);

  /// The per-dispatch hot path: compiles `entry` on worker `worker`'s own
  /// session at degradation tier `tier` and builds its record. Touches
  /// only worker-private state — no lock, no allocation
  /// (tools/hotpath_lint.py manifests it).
  ServiceQueryRecord CompileEntry(int worker, const ReadyEntry& entry,
                                  const Pending& work, double epoch,
                                  int tier);

  /// Terminal record for a ticket that was never dispatched (queue-full
  /// or expiry shed) — the caller classifies and publishes it.
  ServiceQueryRecord MakeShedRecord(const ReadyEntry& entry,
                                    const Pending& work, double at_offset,
                                    Status status) const;

  CompileServiceOptions options_;
  Clock* clock_;  // never null after construction
  std::unique_ptr<CompileTimeCache> cache_;  // null when disabled
  TripRateTracker tracker_;
  AdmissionStage admission_;
  SessionPool pool_;

  Mutex mu_;
  /// Workers wait here for work (or stop). Signaled by Submit, retry
  /// re-enqueues, ReleaseWorkers, and Shutdown.
  CondVar ready_cv_;
  /// Drain waits here for the burst to finish. Signaled per completion.
  CondVar done_cv_;
  /// A kBlock Submit waits here for queue room. Signaled per worker pop
  /// (and by Shutdown, so a blocked submitter cannot outlive the stop).
  CondVar space_cv_;
  ReadyQueue queue_ COTE_GUARDED_BY(mu_);
  /// Burst state, reset by Drain. `pending_` is indexed by ticket and
  /// only ever grows within a burst, so a worker's copy-out never races
  /// a reallocation observed without the lock.
  std::vector<Pending> pending_ COTE_GUARDED_BY(mu_);
  std::vector<ServiceQueryRecord> completed_ COTE_GUARDED_BY(mu_);
  size_t submitted_ COTE_GUARDED_BY(mu_) = 0;
  size_t finished_ COTE_GUARDED_BY(mu_) = 0;
  /// Service-clock reading at the burst's first Submit; all per-record
  /// times are offsets from it.
  double burst_epoch_ COTE_GUARDED_BY(mu_) = 0;
  /// Stop flag for the workers (poison condition, not a poison pill: the
  /// wait predicate is `stop_ || (!hold_ && !queue_.empty())`, and exit
  /// additionally requires the queue empty so admitted work always
  /// completes).
  bool stop_ COTE_GUARDED_BY(mu_) = false;
  /// HoldWorkers() latch: parked workers pop nothing while set.
  bool hold_ COTE_GUARDED_BY(mu_) = false;
  /// Per-worker in-flight registry for the cancellation supervisor.
  std::vector<InFlight> inflight_ COTE_GUARDED_BY(mu_);

  /// Spawned in the constructor, joined by Shutdown. Immutable in
  /// between; touched only by the driver thread.
  std::vector<std::thread> threads_;
};

}  // namespace cote

#endif  // COTE_SERVICE_ASYNC_EXECUTOR_H_
