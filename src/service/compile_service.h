#ifndef COTE_SERVICE_COMPILE_SERVICE_H_
#define COTE_SERVICE_COMPILE_SERVICE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "core/statement_cache.h"
#include "core/time_model.h"
#include "service/admission.h"
#include "service/arrival_trace.h"
#include "service/outcome.h"
#include "service/scheduler.h"
#include "service/trip_tracker.h"
#include "session/session_pool.h"

namespace cote {

/// Where the simulated timeline's per-query service time comes from.
enum class ServiceTimeSource {
  /// Measured compile wall seconds (through the injected clock). The
  /// real-workload mode the bench uses.
  kClock,
  /// The admission-time prediction. Fully deterministic — the mode the
  /// virtual-clock tests use, and the timeline every policy comparison
  /// can replay bit-identically.
  kEstimate,
};

struct ServiceQueryRecord;

/// Per-terminal-record observer: invoked once per ticket with its final
/// record, in the order records are committed (Run: event order; the
/// async executor: ticket order at Drain). The service-level analogue of
/// the pipeline's stage observer — the hook overload monitors watch shed
/// and degradation decisions through, without polling reports.
using ServiceOutcomeObserverFn = void (*)(void* ctx,
                                          const ServiceQueryRecord& record);

struct CompileServiceOptions {
  OptimizerOptions optimizer;
  PlanCounterOptions counter;
  /// Calibrated model behind the admission estimates.
  TimeModel time_model;
  /// Simulated compile servers (and pool sessions). <= 0 selects
  /// hardware concurrency, like SessionPool.
  int num_workers = 1;
  SchedulingPolicy policy = SchedulingPolicy::kFifo;
  ServiceTimeSource time_source = ServiceTimeSource::kClock;
  /// Clock behind every wall-time read the service makes; null selects
  /// the process SystemClock. Tests inject a VirtualClock.
  Clock* clock = nullptr;
  /// When set, Run() advances this clock along the simulated timeline
  /// (to each dispatch's finish time), so components sharing the clock
  /// observe simulation time instead of wall time.
  VirtualClock* drive_clock = nullptr;

  /// Statement cache in front of admission (estimation is skipped on a
  /// signature hit).
  bool enable_cache = true;
  size_t cache_capacity = 1024;
  /// Cache admission gate: only statements whose *predicted* compile
  /// seconds clear this threshold earn a cache slot (<= 0 admits all).
  /// Cheap statements are cheap to recompile; caching them evicts the
  /// entries whose reuse actually pays.
  double cache_admission_threshold_seconds = 0;

  AdmissionOptions admission;
  TripTrackerOptions trip_tracker;

  // ---- Overload resilience (DESIGN.md §16) -------------------------------
  /// Ready-queue capacity; 0 = unbounded (every overload knob below is
  /// then inert and the service behaves exactly as before this existed).
  size_t queue_capacity = 0;
  /// What a full queue does with the next submission. kBlock applies
  /// backpressure (Run stops admitting until a dispatch frees a slot; the
  /// async Submit blocks the caller); kReject and kShedLowestValue shed
  /// with a typed kUnavailable record instead.
  OverloadPolicy overload = OverloadPolicy::kBlock;
  /// Re-enqueue budget per ticket: a compile that fails with a transient
  /// Status (IsTransientFailure) is re-admitted at the next degradation
  /// tier up to this many times before the failure becomes permanent.
  /// Queue-wait patience itself comes from the admission LimitsPolicy
  /// (patience_factor) — estimate-derived, like everything else here.
  int max_retries = 0;
  /// Optional terminal-record observer (see ServiceOutcomeObserverFn).
  ServiceOutcomeObserverFn outcome_observer = nullptr;
  void* outcome_observer_ctx = nullptr;
  /// Async-only: with factor k > 0, AsyncCompileService::Drain acts as a
  /// cancellation supervisor and externally trips (ResourceBudget::
  /// TripExternal) any in-flight compile whose wall time exceeds
  /// patience * k. 0 disables; ignored by the simulated front-end, whose
  /// compiles run on the driver thread.
  double external_cancel_factor = 0;
  /// Supervisor poll interval while Drain waits (seconds).
  double cancel_poll_seconds = 0.002;
};

/// Everything the service did for one submission: exactly one terminal
/// record per ticket (retried attempts fold into the final one).
struct ServiceQueryRecord {
  size_t ticket = 0;  ///< index into the arrival trace
  int worker = 0;     ///< simulated server that ran the compile; -1 = shed
  int query_class = 0;

  // Simulated timeline (trace seconds).
  double arrival_seconds = 0;
  double start_seconds = 0;
  double finish_seconds = 0;
  double queue_seconds = 0;  ///< start - arrival: what p95 is taken over
  double service_seconds = 0;
  double deadline_seconds = 0;  ///< copied from the submission; <= 0 none

  // Admission outcome.
  double predicted_seconds = 0;
  bool estimated = false;
  bool cache_hit = false;
  bool cache_inserted = false;
  double headroom_multiplier = 1.0;
  ResourceLimits limits;

  // Compile outcome.
  Status status;  ///< OK, or why this compile failed (rest unaffected)
  bool degraded = false;
  BudgetLimit tripped_limit = BudgetLimit::kNone;
  CompileStage degraded_stage = CompileStage::kNone;
  /// Budget trip seen by the stage observer — also set on the kFail path,
  /// where no degraded result exists to carry it.
  bool budget_tripped = false;
  /// Pipeline stage events attributed to this dispatch via observer ctx.
  int stage_events = 0;

  // Overload outcome (DESIGN.md §16).
  /// The one terminal bucket this ticket landed in (== ClassifyRecord on
  /// the rest of this record — stored so reports are self-describing).
  ServiceOutcome outcome = ServiceOutcome::kServedFull;
  /// Degradation tier the *final* attempt ran at (ServiceTier as int;
  /// kShed for shed records).
  int tier = 0;
  /// Transient-failure re-enqueues this ticket consumed before the final
  /// attempt.
  int retries = 0;
};

/// Classifies a finished record into its terminal bucket. Pure function
/// of the record — both service front-ends go through it, so the async
/// taxonomy can be pinned field-for-field against the simulated oracle's.
ServiceOutcome ClassifyRecord(const ServiceQueryRecord& record);

/// Folds per-ticket outcomes (and retry attempts) into the burst
/// taxonomy; TotalTickets() == records.size() by construction.
OutcomeTaxonomy BuildTaxonomy(const std::vector<ServiceQueryRecord>& records);

/// \brief Outcome of one open-loop Run() over an arrival trace.
struct ServiceReport {
  std::vector<ServiceQueryRecord> records;  ///< dispatch order
  double makespan_seconds = 0;              ///< last finish, trace seconds
  int64_t estimates = 0;
  int64_t cache_hits = 0;
  int64_t cache_insertions = 0;
  int64_t degraded = 0;
  int64_t failed = 0;  ///< records with a non-OK Status, sheds included
  int64_t deadline_misses = 0;
  /// One terminal bucket per ticket (BuildTaxonomy over `records`).
  OutcomeTaxonomy taxonomy;
  /// Coherent cache counters at the end of the run (all-zero when the
  /// cache is disabled).
  CacheStats cache_stats;
  /// Trip-rate tracker state per observed class at the end of the run.
  std::vector<TripRateTracker::ClassSnapshot> class_feedback;

  double QueriesPerSecond() const {
    return makespan_seconds > 0
               ? static_cast<double>(records.size()) / makespan_seconds
               : 0;
  }
  double MeanQueueSeconds() const;
  /// p95 of queue_seconds over all records (0 when empty).
  double P95QueueSeconds() const;
  /// p95 of queue_seconds over *served* records only (outcome kServedFull
  /// or kServedDegraded; 0 when none) — the overload bench's headline:
  /// under kShedLowestValue this stays bounded at 2x load while the
  /// unbounded-FIFO p95 grows with trace length.
  double P95ServedQueueSeconds() const;
};

/// Per-dispatch observer context: counts stage events and latches budget
/// trips for one queue entry only. Shared by every execution path — the
/// simulated Run, the closed-loop CompileBatch (via the SessionPool's
/// per-query observer-ctx hook), and the async executor — so all three
/// gather identical trip evidence for the tracker.
struct DispatchTrace {
  int events = 0;
  bool budget_tripped = false;
};

/// The StageObserverFn that fills a DispatchTrace (ctx points at one).
void DispatchTraceObserver(void* ctx, const StageEvent& event);

/// Cache admission policy shared by both service front-ends: a statement
/// earns a cache slot only when its predicted compile seconds reach the
/// threshold `ctx` points at (a double — each service points it at its
/// own options member, so the gate stays adjustable without allocation).
bool ThresholdAdmission(void* ctx, uint64_t signature, double cost_seconds);

/// Closed-loop batch outcome: compile results in *input* order, the
/// policy's dispatch order alongside.
struct ServiceBatchResult {
  std::vector<StatusOr<OptimizeResult>> results;   ///< input order
  std::vector<AdmissionOutcome> admissions;        ///< input order
  std::vector<size_t> schedule;  ///< input indices in dispatch order
  /// Stage events + observer-side budget-trip evidence, input order.
  std::vector<DispatchTrace> traces;
  BatchStats stats;
  int64_t estimates = 0;
  int64_t cache_hits = 0;
  /// Terminal buckets for the batch (no retries on the closed-loop path,
  /// so `retried` stays 0; sheds land at their input index as
  /// kUnavailable results).
  OutcomeTaxonomy taxonomy;
};

/// \brief The compile service front-end: estimate-first admission,
/// policy scheduling, estimate-derived budgets, estimate-gated caching.
///
/// Composes the layers built in PRs 3–7 into the server shape the paper's
/// §6 applications assume. Every submission is admitted through the warm
/// estimate path first (unless its signature hits the statement cache),
/// and that one cheap number then drives everything downstream:
///
///   * scheduling  — the ready queue pops by policy (FIFO baseline,
///     shortest-estimated-first, deadline-aware EDF);
///   * governance  — per-query ResourceLimits derived from the query's
///     own estimate (shared LimitsPolicy), widened per query class by the
///     trip-rate tracker when derived budgets keep tripping;
///   * caching     — statement-cache admission is gated on the predicted
///     compile cost clearing a threshold, so cheap-to-recompile
///     statements never displace expensive ones.
///
/// Run() replays an open-loop arrival trace against `num_workers`
/// simulated compile servers: the timeline (queueing, start/finish
/// times) is discrete-event simulated while the compiles themselves
/// execute for real through the pool's warm per-worker sessions on the
/// calling thread. With ServiceTimeSource::kEstimate and a VirtualClock
/// the whole run — dispatch order, every policy decision, every record —
/// is bit-identical across runs; with kClock the timeline carries
/// measured service times, which is what the throughput bench records.
/// Admission runs at arrival on the front end, off the workers' critical
/// path (the ~3% estimate cost is the paper's admission fee), so queue
/// latency is start − arrival.
///
/// CompileBatch() is the closed-loop sibling: admit and order the whole
/// batch by policy, then compile it on the pool's real threads with
/// per-query limits (the SessionPool scheduler hook).
///
/// Overload resilience (DESIGN.md §16): with queue_capacity > 0 the ready
/// queue is bounded and the OverloadPolicy decides what a full queue does
/// (backpressure, typed rejection, or lowest-estimated-value shedding);
/// with a LimitsPolicy patience_factor each query's estimate also prices
/// its queue-wait patience, and a dispatch that waited k whole patience
/// intervals runs k tiers down the degradation ladder (full -> half
/// budget -> greedy-only -> shed). Transient failures re-enqueue one tier
/// down up to max_retries times. Every decision is a pure function of
/// trace time and queue contents, so overload runs replay bit-identically
/// under a VirtualClock, and the defaults (capacity 0, no patience, no
/// retries) reproduce the pre-overload service exactly.
///
/// Not thread-safe; one Run()/CompileBatch() at a time.
class CompileService {
 public:
  explicit CompileService(CompileServiceOptions options = {});

  // Neither copyable nor movable — and deliberately *explicitly* so: the
  // constructor wires `admission_` to `&tracker_` and the cache's
  // admission policy to `&options_.cache_admission_threshold_seconds`,
  // both pointers into this object's own members. A moved-from service
  // would leave the cache policy and the admission stage reading freed
  // (or stale) memory through those aliases. Member types already forbid
  // the implicit operations today, but that is an accident of their
  // composition; deleting them here makes the self-aliasing constraint
  // part of the contract (static-asserted in service_test.cc).
  CompileService(const CompileService&) = delete;
  CompileService& operator=(const CompileService&) = delete;
  CompileService(CompileService&&) = delete;
  CompileService& operator=(CompileService&&) = delete;

  /// Replays `arrivals` (ascending arrival_seconds; MakeOpenLoopTrace's
  /// output qualifies) through admission, the ready queue, and the
  /// simulated servers. A failing compile lands at its record with a
  /// Status; the queue keeps draining — the service stays usable, pinned
  /// by the fault-injection tests. Records are in event order: shed
  /// records commit when the shed happens (admission-time for queue-full
  /// sheds, dispatch-time for expiries), served ones at dispatch; exactly
  /// one terminal record per ticket either way.
  ServiceReport Run(const std::vector<Submission>& arrivals);

  /// Closed-loop batch: everything is ready at once, the policy orders
  /// it, the pool compiles it concurrently under per-query derived
  /// limits. Results in input order.
  ServiceBatchResult CompileBatch(
      const std::vector<const QueryGraph*>& queries);

  const CompileServiceOptions& options() const { return options_; }
  /// Null when the cache is disabled.
  CompileTimeCache* cache() { return cache_.get(); }
  const TripRateTracker& tracker() const { return tracker_; }
  SessionPool& pool() { return pool_; }

 private:
  CompileServiceOptions options_;
  Clock* clock_;  // never null after construction
  std::unique_ptr<CompileTimeCache> cache_;  // null when disabled
  TripRateTracker tracker_;
  AdmissionStage admission_;
  SessionPool pool_;
};

}  // namespace cote

#endif  // COTE_SERVICE_COMPILE_SERVICE_H_
