#include "service/arrival_trace.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "query/query_graph.h"

namespace cote {

namespace {

/// One exponential inter-arrival gap via inversion sampling. 1 - u is in
/// (0, 1] (NextDouble() < 1), so the log argument never hits zero.
inline double NextGapSeconds(Rng* rng, double mean_gap_seconds) {
  return -mean_gap_seconds * std::log(1.0 - rng->NextDouble());
}

}  // namespace

std::vector<Submission> MakeOpenLoopTrace(
    const std::vector<const QueryGraph*>& pool,
    const ArrivalTraceOptions& options) {
  COTE_CHECK(!pool.empty());
  COTE_CHECK(options.num_arrivals >= 0);
  COTE_CHECK(options.mean_gap_seconds > 0);
  COTE_CHECK(options.deadline_slack_min_seconds <=
             options.deadline_slack_max_seconds);
  Rng rng(options.seed);
  std::vector<Submission> trace;
  trace.reserve(static_cast<size_t>(options.num_arrivals));
  double now = 0;
  for (int i = 0; i < options.num_arrivals; ++i) {
    now += NextGapSeconds(&rng, options.mean_gap_seconds);
    Submission s;
    s.query = pool[rng.Uniform(pool.size())];
    s.arrival_seconds = now;
    if (rng.Bernoulli(options.deadline_fraction)) {
      const double span = options.deadline_slack_max_seconds -
                          options.deadline_slack_min_seconds;
      s.deadline_seconds = now + options.deadline_slack_min_seconds +
                           span * rng.NextDouble();
    }
    trace.push_back(s);
  }
  return trace;
}

}  // namespace cote
