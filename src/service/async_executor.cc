#include "service/async_executor.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "common/str_util.h"
#include "service/outcome.h"

namespace cote {

namespace {

/// Whole patience intervals waited by `now_offset` — the tier demotion
/// count (same arithmetic as the simulated front-end's, over wall time).
int Demotions(const ReadyEntry& entry, double now_offset) {
  if (entry.patience_seconds <= 0) return 0;
  const double waited = now_offset - entry.ready_seconds;
  if (waited < entry.patience_seconds) return 0;
  return static_cast<int>(waited / entry.patience_seconds);
}

}  // namespace

AsyncCompileService::AsyncCompileService(CompileServiceOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : SystemClock::Get()),
      cache_(options_.enable_cache
                 ? std::make_unique<CompileTimeCache>(options_.cache_capacity)
                 : nullptr),
      tracker_(options_.trip_tracker),
      admission_(options_.optimizer, options_.counter, options_.time_model,
                 options_.admission, cache_.get(), &tracker_),
      pool_(options_.num_workers, options_.optimizer, options_.counter),
      queue_(options_.policy, options_.queue_capacity, options_.overload) {
  if (cache_ != nullptr) {
    cache_->SetAdmissionPolicy(
        &ThresholdAdmission, &options_.cache_admission_threshold_seconds);
  }
  const int workers = pool_.num_workers();
  {
    MutexLock lock(mu_);
    inflight_.resize(static_cast<size_t>(workers));
  }
  threads_.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads_.emplace_back(&AsyncCompileService::WorkerLoop, this, w);
  }
}

AsyncCompileService::~AsyncCompileService() { Shutdown(); }

ServiceQueryRecord AsyncCompileService::MakeShedRecord(
    const ReadyEntry& entry, const Pending& work, double at_offset,
    Status status) const {
  const AdmissionOutcome& adm = work.admission;
  ServiceQueryRecord rec;
  rec.ticket = entry.ticket;
  rec.worker = -1;
  rec.query_class = adm.query_class;
  rec.arrival_seconds = work.arrival_seconds;
  rec.start_seconds = at_offset;
  rec.finish_seconds = at_offset;
  rec.queue_seconds = at_offset - work.arrival_seconds;
  rec.deadline_seconds = work.submission.deadline_seconds;
  rec.predicted_seconds = adm.predicted_seconds;
  rec.estimated = adm.estimated;
  rec.cache_hit = adm.cache_hit;
  rec.headroom_multiplier = adm.headroom_multiplier;
  rec.status = std::move(status);
  rec.tier = static_cast<int>(ServiceTier::kShed);
  rec.retries = entry.retries;
  rec.outcome = ClassifyRecord(rec);
  return rec;
}

size_t AsyncCompileService::Submit(const Submission& submission) {
  COTE_CHECK(submission.query != nullptr);
  // Admission on the caller thread: the stage's warm estimate session is
  // single-threaded, and the cache + tracker it consults are only ever
  // mutated on this same thread (at Drain), so admission never races the
  // workers — they touch neither. The estimate is paid before the
  // overload decision on purpose: the shed choice *is* estimate-derived.
  Pending p;
  p.submission = submission;
  p.admission = admission_.Admit(*submission.query, submission.query_class);
  const double now = clock_->NowSeconds();

  size_t ticket;
  bool notify_worker = false;
  {
    MutexLock lock(mu_);
    COTE_CHECK(!stop_);  // Submit after Shutdown is a driver bug
    if (options_.overload == OverloadPolicy::kBlock) {
      // Backpressure: the submitter waits at the door for a worker pop.
      // stop_ cannot rise mid-wait (Shutdown runs on this same driver
      // thread), so the predicate needs no stop clause.
      while (queue_.Full()) space_cv_.Wait(mu_);
    }
    if (pending_.empty()) burst_epoch_ = now;
    p.arrival_seconds = now - burst_epoch_;
    ticket = pending_.size();
    ReadyEntry entry;
    entry.ticket = ticket;
    entry.ready_seconds = p.arrival_seconds;
    entry.predicted_seconds = p.admission.predicted_seconds;
    entry.deadline_seconds = submission.deadline_seconds;
    entry.patience_seconds = p.admission.patience_seconds;
    pending_.push_back(p);
    ++submitted_;
    const OfferOutcome offer = queue_.Offer(entry);
    notify_worker = offer.admitted;
    if (offer.shed_incoming || offer.shed_existing) {
      // The refused ticket terminates right here on the caller thread:
      // its record is complete, it counts finished, and no worker will
      // ever see it — ticket conservation by construction.
      completed_.push_back(MakeShedRecord(
          offer.shed, pending_[offer.shed.ticket], p.arrival_seconds,
          Status::Unavailable(StrFormat(
              "compile queue full (capacity %zu, policy %s)",
              queue_.capacity(), OverloadPolicyName(options_.overload)))));
      ++finished_;
    }
  }
  if (notify_worker) ready_cv_.NotifyOne();
  return ticket;
}

void AsyncCompileService::WorkerLoop(int worker) {
  for (;;) {
    ReadyEntry entry;
    Pending work;
    double epoch;
    int tier;
    {
      MutexLock lock(mu_);
      while (!stop_ && (hold_ || queue_.empty())) ready_cv_.Wait(mu_);
      // Stop only takes effect on an empty queue: everything admitted
      // before Shutdown still compiles (shutdown never abandons work).
      if (queue_.empty()) return;
      entry = queue_.PopNext();
      work = pending_[entry.ticket];
      epoch = burst_epoch_;
      const double now_offset = clock_->NowSeconds() - epoch;
      // Queue-wait expiry on the wall clock: each whole patience interval
      // waited demotes one tier; past the ladder's bottom the entry is
      // shed without compiling.
      tier = std::min(static_cast<int>(ServiceTier::kShed),
                      entry.tier + Demotions(entry, now_offset));
      if (tier >= static_cast<int>(ServiceTier::kShed)) {
        completed_.push_back(MakeShedRecord(
            entry, work, now_offset,
            Status::DeadlineExceeded(StrFormat(
                "queue wait %.3fs exhausted patience %.3fs ladder",
                now_offset - entry.ready_seconds, entry.patience_seconds))));
        ++finished_;
      } else {
        // Register for the cancellation supervisor before the compile
        // starts. The budget pointer stays valid for the pool's lifetime;
        // the registration is cleared under mu_ after the compile, so a
        // supervisor trip can never land on a *later* armed compile.
        InFlight& f = inflight_[static_cast<size_t>(worker)];
        f.active = true;
        f.ticket = entry.ticket;
        f.start_seconds = clock_->NowSeconds();
        f.patience_seconds = entry.patience_seconds;
        f.budget = &pool_.session(worker).context().budget();
      }
    }
    // The pop freed a queue slot either way; wake a kBlock submitter.
    space_cv_.NotifyOne();
    if (tier >= static_cast<int>(ServiceTier::kShed)) {
      done_cv_.NotifyOne();
      continue;
    }

    const ServiceQueryRecord rec =
        CompileEntry(worker, entry, work, epoch, tier);

    bool retried = false;
    {
      MutexLock lock(mu_);
      inflight_[static_cast<size_t>(worker)].active = false;
      inflight_[static_cast<size_t>(worker)].budget = nullptr;
      // Bounded retry-with-degradation, same rule as the simulated
      // front-end: a transient failure with budget left re-enqueues one
      // tier down (capacity-blind — admission was paid once) and touches
      // neither submitted_ nor finished_.
      if (!rec.status.ok() && IsTransientFailure(rec.status.code()) &&
          entry.retries < options_.max_retries) {
        ReadyEntry again = entry;
        again.ready_seconds = clock_->NowSeconds() - epoch;
        again.tier =
            std::min(static_cast<int>(ServiceTier::kGreedyOnly), tier + 1);
        again.retries = entry.retries + 1;
        queue_.Push(again);
        retried = true;
      } else {
        completed_.push_back(rec);
        ++finished_;
      }
    }
    if (retried) {
      ready_cv_.NotifyOne();
    } else {
      done_cv_.NotifyOne();
    }
  }
}

ServiceQueryRecord AsyncCompileService::CompileEntry(int worker,
                                                     const ReadyEntry& entry,
                                                     const Pending& work,
                                                     double epoch, int tier) {
  const Submission& sub = work.submission;
  const AdmissionOutcome& adm = work.admission;
  ServiceQueryRecord rec;
  rec.ticket = entry.ticket;
  rec.worker = worker;
  rec.query_class = adm.query_class;
  rec.arrival_seconds = work.arrival_seconds;
  rec.deadline_seconds = sub.deadline_seconds;
  rec.predicted_seconds = adm.predicted_seconds;
  rec.estimated = adm.estimated;
  rec.cache_hit = adm.cache_hit;
  rec.headroom_multiplier = adm.headroom_multiplier;
  rec.tier = tier;
  rec.retries = entry.retries;
  // The tier transform, identical to the simulated front-end's: full
  // limits, halved limits, or the ungoverned greedy-only compile.
  ResourceLimits limits = adm.limits;
  if (tier == static_cast<int>(ServiceTier::kBudgetHalved)) {
    limits = HalveLimits(limits);
  } else if (tier == static_cast<int>(ServiceTier::kGreedyOnly)) {
    limits = ResourceLimits();
  }
  rec.limits = limits;

  // The real compile, lock-free on this worker's own warm session; the
  // observer ctx is stack-local, so trip evidence lands on this record
  // no matter how dispatches interleave across workers.
  DispatchTrace trace;
  CompilationSession& session = pool_.session(worker);
  session.SetStageObserver(&DispatchTraceObserver, &trace);
  const double wall_before = clock_->NowSeconds();
  StatusOr<OptimizeResult> result =
      tier == static_cast<int>(ServiceTier::kGreedyOnly)
          ? session.OptimizeGreedy(*sub.query)
          : (limits.Unlimited() ? session.Optimize(*sub.query)
                                : session.Optimize(*sub.query, limits));
  const double wall_after = clock_->NowSeconds();
  session.SetStageObserver(nullptr, nullptr);

  rec.start_seconds = wall_before - epoch;
  rec.queue_seconds = rec.start_seconds - rec.arrival_seconds;
  rec.stage_events = trace.events;
  rec.budget_tripped = trace.budget_tripped;
  if (result.ok()) {
    rec.degraded = result->degraded;
    rec.tripped_limit = result->tripped_limit;
    rec.degraded_stage = result->degraded_stage;
  } else {
    rec.status = result.status();
  }
  rec.service_seconds = options_.time_source == ServiceTimeSource::kClock
                            ? wall_after - wall_before
                            : adm.predicted_seconds;
  rec.finish_seconds = rec.start_seconds + rec.service_seconds;
  rec.outcome = ClassifyRecord(rec);
  return rec;
}

ServiceReport AsyncCompileService::Drain() {
  std::vector<ServiceQueryRecord> records;
  std::vector<Pending> pending;
  {
    MutexLock lock(mu_);
    while (finished_ < submitted_) {
      if (options_.external_cancel_factor <= 0) {
        done_cv_.Wait(mu_);
        continue;
      }
      // Supervisor mode: poll instead of park, and externally trip any
      // registered compile that has overstayed patience * factor. The
      // trip is taken under mu_ while the registration is active, so it
      // can only reach the compile it names (see the class doc); the
      // cancelled compile notices at its next cooperative checkpoint.
      done_cv_.WaitFor(mu_, options_.cancel_poll_seconds);
      const double now = clock_->NowSeconds();
      for (InFlight& f : inflight_) {
        if (!f.active || f.patience_seconds <= 0) continue;
        if (now - f.start_seconds >
            f.patience_seconds * options_.external_cancel_factor) {
          // Deliberately re-tripped every poll while the registration
          // stays active: TripExternal is an idempotent first-trip-wins
          // CAS, and re-arming (the compile's own Arm resets the flag
          // before any charge) can erase a trip that landed in the
          // register-to-Arm window — the next poll simply lands it again.
          f.budget->TripExternal();
        }
      }
    }
    records = std::move(completed_);
    pending = std::move(pending_);
    completed_.clear();
    pending_.clear();
    submitted_ = 0;
    finished_ = 0;
    burst_epoch_ = 0;
  }
  // Ticket order: input-order recovery, and — more importantly — a
  // *deterministic* feedback order. Cache inserts and tracker records
  // below run on this thread in ticket order regardless of the workers'
  // completion interleaving, which is what lets the async burst match the
  // simulated oracle's feedback state exactly.
  std::sort(records.begin(), records.end(),
            [](const ServiceQueryRecord& a, const ServiceQueryRecord& b) {
              return a.ticket < b.ticket;
            });

  ServiceReport report;
  report.records = std::move(records);
  for (ServiceQueryRecord& rec : report.records) {
    const Pending& p = pending[rec.ticket];
    const AdmissionOutcome& adm = p.admission;
    // Feedback for compiled terminal attempts only — sheds never ran
    // (their !ok status already skips the cache; their unlimited default
    // limits already skip the tracker), and a greedy-tier run applied no
    // budget, so it is silent toward the tracker. Mirrors the simulated
    // front-end exactly: both test rec.limits, the *applied* limits.
    if (cache_ != nullptr && !adm.cache_hit && rec.status.ok()) {
      rec.cache_inserted =
          cache_->Insert(*p.submission.query, rec.service_seconds,
                         adm.predicted_seconds);
    }
    if (!rec.limits.Unlimited()) {
      // Identical trip predicate to Run/CompileBatch (trip_tracker.h).
      tracker_.Record(adm.query_class,
                      IsBudgetTrip(rec.degraded, rec.status,
                                   rec.budget_tripped));
    }

    if (rec.estimated) ++report.estimates;
    if (rec.cache_hit) ++report.cache_hits;
    if (rec.cache_inserted) ++report.cache_insertions;
    if (rec.degraded) ++report.degraded;
    if (!rec.status.ok()) ++report.failed;
    if (rec.deadline_seconds > 0 &&
        rec.finish_seconds > rec.deadline_seconds) {
      ++report.deadline_misses;
    }
    report.makespan_seconds =
        std::max(report.makespan_seconds, rec.finish_seconds);
    if (options_.outcome_observer != nullptr) {
      options_.outcome_observer(options_.outcome_observer_ctx, rec);
    }
  }

  report.taxonomy = BuildTaxonomy(report.records);
  if (cache_ != nullptr) report.cache_stats = cache_->Stats();
  report.class_feedback = tracker_.Snapshot();
  return report;
}

ServiceReport AsyncCompileService::Run(const std::vector<Submission>& arrivals,
                                       bool pace_arrivals) {
  const double t0 = clock_->NowSeconds();
  for (const Submission& s : arrivals) {
    if (pace_arrivals) {
      // Open-loop replay: hold each submission until its trace offset on
      // the service clock. Sleep in short slices so an injected clock
      // that advances coarsely cannot strand the replay.
      for (;;) {
        const double wait = s.arrival_seconds - (clock_->NowSeconds() - t0);
        if (wait <= 0) break;
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::min(wait, 0.001)));
      }
    }
    Submit(s);
  }
  return Drain();
}

void AsyncCompileService::HoldWorkers() {
  MutexLock lock(mu_);
  hold_ = true;
}

void AsyncCompileService::ReleaseWorkers() {
  {
    MutexLock lock(mu_);
    hold_ = false;
  }
  ready_cv_.NotifyAll();
}

void AsyncCompileService::Shutdown() {
  {
    MutexLock lock(mu_);
    if (stop_ && threads_.empty()) return;  // already shut down
    stop_ = true;
    hold_ = false;  // a held worker must still observe the stop
  }
  ready_cv_.NotifyAll();
  space_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

}  // namespace cote
