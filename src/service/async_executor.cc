#include "service/async_executor.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"

namespace cote {

AsyncCompileService::AsyncCompileService(CompileServiceOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : SystemClock::Get()),
      cache_(options_.enable_cache
                 ? std::make_unique<CompileTimeCache>(options_.cache_capacity)
                 : nullptr),
      tracker_(options_.trip_tracker),
      admission_(options_.optimizer, options_.counter, options_.time_model,
                 options_.admission, cache_.get(), &tracker_),
      pool_(options_.num_workers, options_.optimizer, options_.counter),
      queue_(options_.policy) {
  if (cache_ != nullptr) {
    cache_->SetAdmissionPolicy(
        &ThresholdAdmission, &options_.cache_admission_threshold_seconds);
  }
  const int workers = pool_.num_workers();
  threads_.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads_.emplace_back(&AsyncCompileService::WorkerLoop, this, w);
  }
}

AsyncCompileService::~AsyncCompileService() { Shutdown(); }

size_t AsyncCompileService::Submit(const Submission& submission) {
  COTE_CHECK(submission.query != nullptr);
  // Admission on the caller thread: the stage's warm estimate session is
  // single-threaded, and the cache + tracker it consults are only ever
  // mutated on this same thread (at Drain), so admission never races the
  // workers — they touch neither.
  Pending p;
  p.submission = submission;
  p.admission = admission_.Admit(*submission.query, submission.query_class);
  const double now = clock_->NowSeconds();

  size_t ticket;
  {
    MutexLock lock(mu_);
    COTE_CHECK(!stop_);  // Submit after Shutdown is a driver bug
    if (pending_.empty()) burst_epoch_ = now;
    p.arrival_seconds = now - burst_epoch_;
    ticket = pending_.size();
    ReadyEntry entry;
    entry.ticket = ticket;
    entry.ready_seconds = p.arrival_seconds;
    entry.predicted_seconds = p.admission.predicted_seconds;
    entry.deadline_seconds = submission.deadline_seconds;
    pending_.push_back(p);
    queue_.Push(entry);
    ++submitted_;
  }
  ready_cv_.NotifyOne();
  return ticket;
}

void AsyncCompileService::WorkerLoop(int worker) {
  for (;;) {
    ReadyEntry entry;
    Pending work;
    double epoch;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) ready_cv_.Wait(mu_);
      // Stop only takes effect on an empty queue: everything admitted
      // before Shutdown still compiles (shutdown never abandons work).
      if (queue_.empty()) return;
      entry = queue_.PopNext();
      work = pending_[entry.ticket];
      epoch = burst_epoch_;
    }

    const ServiceQueryRecord rec =
        CompileEntry(worker, entry.ticket, work, epoch);

    {
      MutexLock lock(mu_);
      completed_.push_back(rec);
      ++finished_;
    }
    done_cv_.NotifyOne();
  }
}

ServiceQueryRecord AsyncCompileService::CompileEntry(int worker,
                                                     size_t ticket,
                                                     const Pending& work,
                                                     double epoch) {
  const Submission& sub = work.submission;
  const AdmissionOutcome& adm = work.admission;
  ServiceQueryRecord rec;
  rec.ticket = ticket;
  rec.worker = worker;
  rec.query_class = adm.query_class;
  rec.arrival_seconds = work.arrival_seconds;
  rec.deadline_seconds = sub.deadline_seconds;
  rec.predicted_seconds = adm.predicted_seconds;
  rec.estimated = adm.estimated;
  rec.cache_hit = adm.cache_hit;
  rec.headroom_multiplier = adm.headroom_multiplier;
  rec.limits = adm.limits;

  // The real compile, lock-free on this worker's own warm session; the
  // observer ctx is stack-local, so trip evidence lands on this record
  // no matter how dispatches interleave across workers.
  DispatchTrace trace;
  CompilationSession& session = pool_.session(worker);
  session.SetStageObserver(&DispatchTraceObserver, &trace);
  const double wall_before = clock_->NowSeconds();
  StatusOr<OptimizeResult> result =
      adm.limits.Unlimited() ? session.Optimize(*sub.query)
                             : session.Optimize(*sub.query, adm.limits);
  const double wall_after = clock_->NowSeconds();
  session.SetStageObserver(nullptr, nullptr);

  rec.start_seconds = wall_before - epoch;
  rec.queue_seconds = rec.start_seconds - rec.arrival_seconds;
  rec.stage_events = trace.events;
  rec.budget_tripped = trace.budget_tripped;
  if (result.ok()) {
    rec.degraded = result->degraded;
    rec.tripped_limit = result->tripped_limit;
    rec.degraded_stage = result->degraded_stage;
  } else {
    rec.status = result.status();
  }
  rec.service_seconds = options_.time_source == ServiceTimeSource::kClock
                            ? wall_after - wall_before
                            : adm.predicted_seconds;
  rec.finish_seconds = rec.start_seconds + rec.service_seconds;
  return rec;
}

ServiceReport AsyncCompileService::Drain() {
  std::vector<ServiceQueryRecord> records;
  std::vector<Pending> pending;
  {
    MutexLock lock(mu_);
    while (finished_ < submitted_) done_cv_.Wait(mu_);
    records = std::move(completed_);
    pending = std::move(pending_);
    completed_.clear();
    pending_.clear();
    submitted_ = 0;
    finished_ = 0;
    burst_epoch_ = 0;
  }
  // Ticket order: input-order recovery, and — more importantly — a
  // *deterministic* feedback order. Cache inserts and tracker records
  // below run on this thread in ticket order regardless of the workers'
  // completion interleaving, which is what lets the async burst match the
  // simulated oracle's feedback state exactly.
  std::sort(records.begin(), records.end(),
            [](const ServiceQueryRecord& a, const ServiceQueryRecord& b) {
              return a.ticket < b.ticket;
            });

  ServiceReport report;
  report.records = std::move(records);
  for (ServiceQueryRecord& rec : report.records) {
    const Pending& p = pending[rec.ticket];
    const AdmissionOutcome& adm = p.admission;
    if (cache_ != nullptr && !adm.cache_hit && rec.status.ok()) {
      rec.cache_inserted =
          cache_->Insert(*p.submission.query, rec.service_seconds,
                         adm.predicted_seconds);
    }
    if (!adm.limits.Unlimited()) {
      // Identical trip predicate to Run/CompileBatch (trip_tracker.h).
      tracker_.Record(adm.query_class,
                      IsBudgetTrip(rec.degraded, rec.status,
                                   rec.budget_tripped));
    }

    if (rec.estimated) ++report.estimates;
    if (rec.cache_hit) ++report.cache_hits;
    if (rec.cache_inserted) ++report.cache_insertions;
    if (rec.degraded) ++report.degraded;
    if (!rec.status.ok()) ++report.failed;
    if (rec.deadline_seconds > 0 &&
        rec.finish_seconds > rec.deadline_seconds) {
      ++report.deadline_misses;
    }
    report.makespan_seconds =
        std::max(report.makespan_seconds, rec.finish_seconds);
  }

  if (cache_ != nullptr) report.cache_stats = cache_->Stats();
  report.class_feedback = tracker_.Snapshot();
  return report;
}

ServiceReport AsyncCompileService::Run(const std::vector<Submission>& arrivals,
                                       bool pace_arrivals) {
  const double t0 = clock_->NowSeconds();
  for (const Submission& s : arrivals) {
    if (pace_arrivals) {
      // Open-loop replay: hold each submission until its trace offset on
      // the service clock. Sleep in short slices so an injected clock
      // that advances coarsely cannot strand the replay.
      for (;;) {
        const double wait = s.arrival_seconds - (clock_->NowSeconds() - t0);
        if (wait <= 0) break;
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::min(wait, 0.001)));
      }
    }
    Submit(s);
  }
  return Drain();
}

void AsyncCompileService::Shutdown() {
  {
    MutexLock lock(mu_);
    if (stop_ && threads_.empty()) return;  // already shut down
    stop_ = true;
  }
  ready_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

}  // namespace cote
