#include "common/status.h"

namespace cote {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace cote
