#ifndef COTE_COMMON_MUTEX_H_
#define COTE_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace cote {

/// \brief Annotated mutex vocabulary for Clang Thread Safety Analysis.
///
/// libstdc++'s `std::mutex` / `std::lock_guard` carry no capability
/// attributes, so `-Wthread-safety` cannot see through them; these
/// zero-cost wrappers (inline forwarding, identical layout semantics)
/// give the analysis the acquire/release structure it needs. Every
/// shared-state structure in src/ uses this vocabulary so an unguarded
/// access to a COTE_GUARDED_BY member is a *build* error on Clang, not a
/// flaky TSan repro.
///
/// `Mutex` satisfies BasicLockable/Lockable (lowercase lock/unlock), so
/// standard facilities still accept it where needed; prefer `MutexLock`
/// for scoping and `CondVar` for waits, which keep the analysis engaged.
class COTE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() COTE_ACQUIRE() { mu_.lock(); }
  void unlock() COTE_RELEASE() { mu_.unlock(); }
  bool try_lock() COTE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scope holding a Mutex; the annotated twin of std::lock_guard.
class COTE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) COTE_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() COTE_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable waiting on a cote::Mutex.
///
/// Wait() requires the capability: the caller holds the mutex via a
/// MutexLock, and the wait releases/reacquires it internally (through
/// std::condition_variable_any, which treats Mutex as BasicLockable) —
/// held on entry, held on exit, which is exactly what the analysis
/// checks. Use explicit `while (!predicate) cv.Wait(mu);` loops rather
/// than predicate overloads: the analysis cannot attach REQUIRES to a
/// lambda, but it checks the guarded reads in an inline while-condition.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) COTE_REQUIRES(mu) { cv_.wait(mu); }
  /// Timed wait: blocks at most `seconds`, then returns whether it was
  /// notified (false = timed out). Same lock discipline as Wait(). The
  /// async service's Drain watchdog uses this as its poll cadence —
  /// spurious wakeups and timeouts are both fine because callers re-check
  /// their predicate in a loop either way.
  bool WaitFor(Mutex& mu, double seconds) COTE_REQUIRES(mu) {
    return cv_.wait_for(mu, std::chrono::duration<double>(seconds)) ==
           std::cv_status::no_timeout;
  }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace cote

#endif  // COTE_COMMON_MUTEX_H_
