#ifndef COTE_COMMON_RESOURCE_BUDGET_H_
#define COTE_COMMON_RESOURCE_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace cote {

/// Pipeline-stage vocabulary shared by the resource-governance layer: a
/// degraded result records the stage it was abandoned in, and the stage
/// observer (session/pipeline.h) reports events in the same terms. Lives
/// here rather than in the session layer because OptimizeResult (below
/// the session in the include graph) carries a CompileStage.
enum class CompileStage {
  kNone = 0,
  kBind,
  kEnumerate,
  kComplete,
  kFinalize,
};

/// Which limit of a ResourceBudget tripped first.
enum class BudgetLimit {
  kNone = 0,
  kDeadline,     ///< wall-clock deadline passed
  kMemoEntries,  ///< MEMO-entry cap exceeded
  kPlans,        ///< plan-count cap exceeded
  kCheckpoints,  ///< cooperative-check cap reached (deterministic work cap)
  /// A supervisor thread cancelled the compile from outside
  /// (ResourceBudget::TripExternal) — e.g. the async service's watchdog
  /// decided the run outlived its queue-wait patience. Maps to
  /// StatusCode::kCancelled, not a budget-derived code.
  kExternalCancel,
};

/// What the plan-mode pipeline does when a budget trips mid-compile.
enum class BudgetAction {
  /// Degrade gracefully: fall back to the greedy optimizer for this query
  /// and return ok() with OptimizeResult::degraded = true.
  kGreedyFallback,
  /// Fail the compile with the budget's Status (kDeadlineExceeded or
  /// kResourceExhausted).
  kFail,
};

/// \brief Per-query resource limits.
///
/// Zero/negative values mean "unlimited"; a fully unlimited ResourceLimits
/// arms nothing, so compiling with it is bit-identical to compiling with
/// no limits at all (pinned by the governance equivalence tests).
struct ResourceLimits {
  /// Wall-clock deadline for the compile, in seconds (<= 0: none). The
  /// clock is sampled every ResourceBudget::kDeadlineStride-th cooperative
  /// checkpoint, so the overshoot past the deadline is bounded by one
  /// sampling stride of mask batches.
  double deadline_seconds = 0;
  /// Cap on MEMO entries created during enumeration (<= 0: none). Trips
  /// once the count *exceeds* the cap.
  int64_t max_memo_entries = 0;
  /// Cap on plans generated (plan mode) or counted (estimate mode)
  /// (<= 0: none). Trips once the count *exceeds* the cap.
  int64_t max_plans = 0;
  /// Cap on cooperative checkpoints (<= 0: none); trips *at* the Nth
  /// check. Checkpoints are a deterministic proxy for enumeration work
  /// (one per mask batch), which makes this the fault-injection knob:
  /// "trip at the Nth cooperative check" is exact and repeatable, unlike
  /// a wall-clock deadline.
  int64_t max_checkpoints = 0;
  /// Plan-mode policy when a limit trips. Estimate mode has no Status
  /// channel, so it always returns a partial estimate flagged degraded.
  BudgetAction on_trip = BudgetAction::kGreedyFallback;

  bool Unlimited() const {
    return deadline_seconds <= 0 && max_memo_entries <= 0 && max_plans <= 0 &&
           max_checkpoints <= 0;
  }
};

/// \brief Cooperatively checked per-query compile budget.
///
/// Owned by the CompilationContext; the pipeline arms it per governed
/// compile. Two kinds of call sites feed it:
///
///  * chargers — the enumerators charge each MEMO entry they create, the
///    plan-mode MEMO charges each plan it allocates, and the plan counter
///    charges each counted plan. Charging is integer bookkeeping that only
///    raises the tripped flag; it never cancels anything by itself.
///  * checkpoints — Checkpoint() is the single cooperative cancellation
///    point, called once per enumeration mask batch. It observes the
///    tripped flag, enforces the checkpoint cap, and samples the deadline
///    clock every kDeadlineStride checks, so the per-mask cost is a
///    couple of integer compares (the <2% bench budget in EXPERIMENTS.md).
///
/// Everything is allocation-free and stays within the hot-path lint; the
/// armed-but-untripped path performs no heap traffic (session_alloc_test).
///
/// Threading: every field except `tripped_` is single-owner per compile —
/// the parallel enumerator gives each worker a *private* budget and folds
/// deltas at rank barriers (FoldShardCharges), so the charge counters are
/// never touched by two threads. The tripped flag alone is a
/// std::atomic<BudgetLimit> (inventoried in tools/sync_inventory.json):
/// a supervisor thread may call TripExternal() on a budget whose compile
/// is in flight on another thread, and the owner observes the cancel at
/// its next cooperative Checkpoint(). All flag accesses are relaxed — the
/// flag carries no payload, only "stop soon"; every field the supervisor
/// or the owner reads *about* the cancelled compile crosses threads
/// through an external mutex (the async service's `mu_`), which provides
/// the happens-before. The relaxed fast-path load keeps the
/// armed-but-untripped Checkpoint() cost at a couple of integer compares
/// (the <2% bench budget in EXPERIMENTS.md survives the atomic change).
///
/// TripExternal races Arm()/Disarm() only if the supervisor fires at a
/// budget whose compile already retired; callers must bound that window —
/// the async service only cancels budgets registered as in-flight under
/// its mutex, and a worker deregisters (under the same mutex) before the
/// session can re-arm the budget for another query, so a late cancel can
/// land only on a still-armed, already-finished budget, where the next
/// Arm() reset erases it harmlessly.
class ResourceBudget {
 public:
  /// Deadline sampling stride: the clock is read at checkpoints 1,
  /// 1 + kDeadlineStride, ... — early first sample, then amortized.
  static constexpr int64_t kDeadlineStride = 64;

  ResourceBudget() = default;
  ResourceBudget(const ResourceBudget&) = delete;
  ResourceBudget& operator=(const ResourceBudget&) = delete;

  /// Arms the budget for one compile: adopts `limits`, zeroes all charge
  /// counters, and starts the deadline clock. A fully unlimited `limits`
  /// leaves the budget disarmed.
  void Arm(const ResourceLimits& limits);
  /// Returns to the unarmed state (no limits, no charges).
  void Disarm();

  bool armed() const { return armed_; }
  bool tripped() const {
    return tripped_.load(std::memory_order_relaxed) != BudgetLimit::kNone;
  }
  BudgetLimit tripped_limit() const {
    return tripped_.load(std::memory_order_relaxed);
  }
  const ResourceLimits& limits() const { return limits_; }
  int64_t checkpoints() const { return checkpoints_; }
  int64_t entries_charged() const { return entries_; }
  int64_t plans_charged() const { return plans_; }

  /// Charges `n` MEMO entries against the entry cap.
  void ChargeEntries(int64_t n) {
    entries_ += n;
    if (limits_.max_memo_entries > 0 && entries_ > limits_.max_memo_entries) {
      Trip(BudgetLimit::kMemoEntries);
    }
  }

  /// Charges `n` generated/counted plans against the plan cap.
  void ChargePlans(int64_t n) {
    plans_ += n;
    if (limits_.max_plans > 0 && plans_ > limits_.max_plans) {
      Trip(BudgetLimit::kPlans);
    }
  }

  /// Cancels the compile from another thread: first-trip-wins against any
  /// concurrent self-trip, observed by the owner at its next Checkpoint().
  /// Safe to call at any time on an in-flight budget (see the class doc
  /// for the retirement race the caller must bound); a cancel landing on
  /// a disarmed or finished budget is erased by the next Arm().
  void TripExternal() { Trip(BudgetLimit::kExternalCancel); }

  /// The cooperative cancellation point. Returns true once the budget is
  /// exhausted; the caller stops enumerating (the overshoot is whatever
  /// the current mask batch emitted since the previous check). The
  /// tripped read is the relaxed fast path — one untripped atomic load
  /// per mask batch.
  bool Checkpoint() {
    ++checkpoints_;
    if (tripped_.load(std::memory_order_relaxed) != BudgetLimit::kNone) {
      return true;
    }
    if (limits_.max_checkpoints > 0 &&
        checkpoints_ >= limits_.max_checkpoints) {
      Trip(BudgetLimit::kCheckpoints);
      return true;
    }
    if (has_deadline_ && (checkpoints_ % kDeadlineStride) == 1) {
      return CheckDeadlineSlow();
    }
    return false;
  }

  /// Folds one parallel-enumeration shard's charge deltas into this (the
  /// master) budget. Shards charge private budgets during a rank — no
  /// shared mutable state on the hot path — and the coordinator folds each
  /// shard's per-rank delta here at the rank barrier. Count caps are thus
  /// enforced globally at rank granularity (a shard whose private count
  /// alone exceeds a cap still trips mid-rank and cancels the team); the
  /// shard's own trip, recorded strictly earlier, wins over any cap the
  /// folded totals newly exceed.
  void FoldShardCharges(int64_t entries, int64_t plans, int64_t checkpoints,
                        BudgetLimit shard_trip) {
    if (!armed_) return;
    if (shard_trip != BudgetLimit::kNone) Trip(shard_trip);
    checkpoints_ += checkpoints;
    if (limits_.max_checkpoints > 0 &&
        checkpoints_ >= limits_.max_checkpoints) {
      Trip(BudgetLimit::kCheckpoints);
    }
    ChargeEntries(entries);
    ChargePlans(plans);
  }

  /// Maps the tripped limit to its error Status: kDeadlineExceeded for the
  /// deadline, kResourceExhausted for the count caps; OK if not tripped.
  Status TripStatus() const;

 private:
  /// First limit to trip wins; later trips never overwrite it. The CAS
  /// makes first-wins hold even when an owner self-trip races an external
  /// cancel — exactly one limit is ever recorded.
  void Trip(BudgetLimit limit) {
    BudgetLimit expected = BudgetLimit::kNone;
    tripped_.compare_exchange_strong(expected, limit,
                                     std::memory_order_relaxed);
  }
  /// Cold half of Checkpoint(): reads the clock, trips on expiry.
  bool CheckDeadlineSlow();

  ResourceLimits limits_;
  bool armed_ = false;
  bool has_deadline_ = false;
  /// The only cross-thread field (see the class doc); everything else is
  /// owner-private, so nothing here needs a mutex or GUARDED_BY.
  std::atomic<BudgetLimit> tripped_{BudgetLimit::kNone};
  int64_t checkpoints_ = 0;
  int64_t entries_ = 0;
  int64_t plans_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace cote

#endif  // COTE_COMMON_RESOURCE_BUDGET_H_
