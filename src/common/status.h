#ifndef COTE_COMMON_STATUS_H_
#define COTE_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace cote {

/// Error categories used across the library. Mirrors the conventional
/// database-system idiom (RocksDB/Arrow style) of returning rich status
/// objects instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kParseError,
  kBindError,
  /// A per-query compilation deadline (ResourceLimits::deadline_seconds)
  /// passed before the compile finished.
  kDeadlineExceeded,
  /// A countable per-query resource cap (MEMO entries, plans, cooperative
  /// checkpoints) was exhausted before the compile finished.
  kResourceExhausted,
  /// The service declined the work outright — e.g. a bounded ready queue
  /// was full under OverloadPolicy::kReject, or the submission was the
  /// lowest-value entry under kShedLowestValue. Retrying later (when the
  /// backlog drains) is reasonable; retrying immediately is not.
  kUnavailable,
  /// The compile was cancelled from outside — a supervisor tripped the
  /// in-flight budget (ResourceBudget::TripExternal) because the run
  /// outlived its usefulness. Unlike kDeadlineExceeded this is a verdict
  /// about the *caller's* interest, not the compile's own budget.
  kCancelled,
};

/// \brief Result of an operation that can fail.
///
/// A `Status` is cheap to copy in the common OK case (no message
/// allocation). Non-OK statuses carry a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable rendering, e.g. "ParseError: unexpected token".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Holds either a value of type `T` or an error `Status`.
///
/// Minimal StatusOr in the spirit of absl::StatusOr. Accessing the value
/// of a failed result aborts in debug builds.
template <typename T>
class StatusOr {
 public:
  /* implicit */ StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)), has_value_(true) {}
  /* implicit */ StatusOr(Status status)  // NOLINT
      : status_(std::move(status)), has_value_(false) {
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(has_value_);
    return value_;
  }
  T& value() & {
    assert(has_value_);
    return value_;
  }
  T&& value() && {
    assert(has_value_);
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
  bool has_value_;
};

/// Propagates a non-OK status to the caller.
#define COTE_RETURN_NOT_OK(expr)         \
  do {                                   \
    ::cote::Status _st = (expr);         \
    if (!_st.ok()) return _st;           \
  } while (0)

}  // namespace cote

#endif  // COTE_COMMON_STATUS_H_
