#ifndef COTE_COMMON_FAULT_POINTS_H_
#define COTE_COMMON_FAULT_POINTS_H_

#include <atomic>

#include "common/status.h"

namespace cote {

/// \brief Process-global fault-injection registry.
///
/// Production code ships only this registry: named fault points the
/// compilation pipeline consults at its stage boundaries. With no hook
/// installed — the production state — a consult is one relaxed atomic
/// load and an OK return; the points sit at the four stage boundaries,
/// never on the per-join hot path. The deterministic scripting harness
/// that makes consults fail (tests/common/fault_injection.h) is linked
/// into test binaries only.
///
/// `subject` identifies what is being compiled (the pipeline passes the
/// QueryGraph address), so a script can target one query of a SessionPool
/// batch regardless of which worker claims it.
using FaultHookFn = Status (*)(void* ctx, const char* point,
                               const void* subject);

/// Installs the process-wide hook. Install/clear must not race with
/// running compiles: tests install before issuing work and clear after
/// joining it (thread creation/join provides the ordering).
void InstallFaultHook(FaultHookFn fn, void* ctx);
void ClearFaultHook();
bool FaultHookInstalled();

namespace fault_internal {
// The registry's whole shared state: two atomics (inventoried in
// tools/sync_inventory.json; the determinism lint cross-checks that file
// against the declarations in fault_points.cc). hook_fn's acquire load
// is the consult-side synchronization point; hook_ctx piggybacks on it.
extern std::atomic<FaultHookFn> hook_fn;
extern std::atomic<void*> hook_ctx;
}  // namespace fault_internal

/// Consults the hook at a named fault point; OK when no hook is installed
/// (one relaxed load) or when the installed hook declines to inject.
inline Status ConsultFaultPoint(const char* point, const void* subject) {
  FaultHookFn fn = fault_internal::hook_fn.load(std::memory_order_acquire);
  if (fn == nullptr) return Status::OK();
  return fn(fault_internal::hook_ctx.load(std::memory_order_relaxed), point,
            subject);
}

/// Fault points the plan-mode pipeline consults, one per stage boundary
/// (kLow compiles skip "plan.complete" — that stage does not run there).
inline constexpr char kFaultPlanBind[] = "plan.bind";
inline constexpr char kFaultPlanEnumerate[] = "plan.enumerate";
inline constexpr char kFaultPlanComplete[] = "plan.complete";
inline constexpr char kFaultPlanFinalize[] = "plan.finalize";

}  // namespace cote

#endif  // COTE_COMMON_FAULT_POINTS_H_
