#ifndef COTE_COMMON_CLOCK_H_
#define COTE_COMMON_CLOCK_H_

#include <chrono>
#ifndef NDEBUG
#include <thread>

#include "common/check.h"
#endif

namespace cote {

/// \brief Injectable monotonic clock.
///
/// The compile service front-end (src/service/) reads wall time only
/// through this interface, so the whole service can run under a
/// VirtualClock in tests: a seeded arrival trace plus virtual service
/// times makes every scheduling decision, queue latency, and report field
/// bit-identical across runs. Production code passes no clock and gets
/// the process-wide SystemClock.
///
/// The existing StopWatch/TimeAccumulator instrumentation (common/timer.h)
/// deliberately stays on std::chrono directly: those measure *real* stage
/// seconds for benchmarks and never feed scheduling or plan choice.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic seconds since an arbitrary epoch (fixed per instance).
  virtual double NowSeconds() = 0;
};

/// Wall clock over std::chrono::steady_clock; epoch = construction time.
class SystemClock final : public Clock {
 public:
  SystemClock() : epoch_(std::chrono::steady_clock::now()) {}

  double NowSeconds() override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  /// Process-wide instance (epoch = first use). Not for tests — inject a
  /// VirtualClock there instead.
  static SystemClock* Get() {
    static SystemClock clock;
    return &clock;
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Deterministic clock for tests: time moves only when the owner (or the
/// component driving it, e.g. CompileService::Run with `drive_clock` set)
/// advances it. Single-threaded by design, like the service event loop
/// that drives it — `now_` is a plain double with no synchronization, so
/// sharing one across threads (e.g. injecting it into the async
/// executor, whose workers read the clock concurrently) is a data race.
/// Debug builds enforce the contract: every call COTE_DCHECKs that it
/// runs on the constructing thread (pinned by the contracts death test);
/// release builds compile the check — and the owner id — out entirely.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(double start_seconds = 0) : now_(start_seconds) {
#ifndef NDEBUG
    owner_ = std::this_thread::get_id();
#endif
  }

  double NowSeconds() override {
    CheckOwner();
    return now_;
  }

  void Advance(double seconds) {
    CheckOwner();
    if (seconds > 0) now_ += seconds;
  }
  /// Monotonic set: never moves time backwards.
  void SetAtLeast(double seconds) {
    CheckOwner();
    if (seconds > now_) now_ = seconds;
  }

 private:
  void CheckOwner() const {
#ifndef NDEBUG
    COTE_DCHECK(std::this_thread::get_id() == owner_ &&
                "VirtualClock is single-threaded: accessed off its "
                "constructing thread");
#endif
  }

  double now_;
#ifndef NDEBUG
  std::thread::id owner_;
#endif
};

}  // namespace cote

#endif  // COTE_COMMON_CLOCK_H_
