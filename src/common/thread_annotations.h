#ifndef COTE_COMMON_THREAD_ANNOTATIONS_H_
#define COTE_COMMON_THREAD_ANNOTATIONS_H_

/// \file
/// Clang Thread Safety Analysis annotations for the COTE concurrency
/// surface (-Wthread-safety; see src/common/mutex.h for the annotated
/// mutex vocabulary the attributes attach to).
///
/// Every macro expands to a Clang `__attribute__` under Clang and to
/// nothing elsewhere, so the annotations are a pure compile-time
/// contract: zero code, zero data, zero runtime cost on every compiler,
/// and a build error under `-Wthread-safety -Werror` (wired into the
/// COTE_WERROR build on Clang) when a guarded member is touched without
/// its capability. GCC builds — including this repo's sanitizer gates —
/// see plain declarations.
///
/// Deployment inventory (what is annotated and why) lives in DESIGN.md
/// §13; the machine-readable sync inventory the determinism lint
/// cross-checks is tools/sync_inventory.json.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define COTE_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef COTE_THREAD_ANNOTATION_
#define COTE_THREAD_ANNOTATION_(x)  // no-op on non-Clang compilers
#endif

/// Declares a type to be a capability (lockable): cote::Mutex carries it.
#define COTE_CAPABILITY(x) COTE_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor (cote::MutexLock).
#define COTE_SCOPED_CAPABILITY COTE_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define COTE_GUARDED_BY(x) COTE_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define COTE_PT_GUARDED_BY(x) COTE_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and exit).
#define COTE_REQUIRES(...) \
  COTE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the capability (held on exit, not on entry).
#define COTE_ACQUIRE(...) \
  COTE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on exit).
#define COTE_RELEASE(...) \
  COTE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define COTE_TRY_ACQUIRE(...) \
  COTE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called while holding the capability (deadlock
/// guard for non-reentrant mutexes).
#define COTE_EXCLUDES(...) COTE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations between capabilities.
#define COTE_ACQUIRED_BEFORE(...) \
  COTE_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define COTE_ACQUIRED_AFTER(...) \
  COTE_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define COTE_RETURN_CAPABILITY(x) COTE_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining the out-of-band synchronization (in this
/// codebase: acquire/release publication of lazily built caches, whose
/// happens-before edge the static analysis cannot model). Uses are
/// reviewed like hotpath-ok / det-ok lint escapes.
#define COTE_NO_THREAD_SAFETY_ANALYSIS \
  COTE_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // COTE_COMMON_THREAD_ANNOTATIONS_H_
