#include "common/resource_budget.h"

#include "common/str_util.h"

namespace cote {

void ResourceBudget::Arm(const ResourceLimits& limits) {
  limits_ = limits;
  armed_ = !limits.Unlimited();
  has_deadline_ = limits.deadline_seconds > 0;
  tripped_.store(BudgetLimit::kNone, std::memory_order_relaxed);
  checkpoints_ = 0;
  entries_ = 0;
  plans_ = 0;
  if (has_deadline_) {
    deadline_ =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(limits.deadline_seconds));
  }
}

void ResourceBudget::Disarm() {
  limits_ = ResourceLimits{};
  armed_ = false;
  has_deadline_ = false;
  tripped_.store(BudgetLimit::kNone, std::memory_order_relaxed);
  checkpoints_ = 0;
  entries_ = 0;
  plans_ = 0;
}

bool ResourceBudget::CheckDeadlineSlow() {
  if (std::chrono::steady_clock::now() >= deadline_) {
    Trip(BudgetLimit::kDeadline);
    return true;
  }
  return false;
}

Status ResourceBudget::TripStatus() const {
  switch (tripped_.load(std::memory_order_relaxed)) {
    case BudgetLimit::kNone:
      return Status::OK();
    case BudgetLimit::kDeadline:
      return Status::DeadlineExceeded(StrFormat(
          "compilation deadline of %gs exceeded after %lld checkpoints",
          limits_.deadline_seconds, static_cast<long long>(checkpoints_)));
    case BudgetLimit::kMemoEntries:
      return Status::ResourceExhausted(StrFormat(
          "MEMO-entry budget of %lld exceeded (%lld entries created)",
          static_cast<long long>(limits_.max_memo_entries),
          static_cast<long long>(entries_)));
    case BudgetLimit::kPlans:
      return Status::ResourceExhausted(
          StrFormat("plan budget of %lld exceeded (%lld plans charged)",
                    static_cast<long long>(limits_.max_plans),
                    static_cast<long long>(plans_)));
    case BudgetLimit::kCheckpoints:
      return Status::ResourceExhausted(
          StrFormat("checkpoint budget of %lld reached",
                    static_cast<long long>(limits_.max_checkpoints)));
    case BudgetLimit::kExternalCancel:
      return Status::Cancelled(
          StrFormat("compile cancelled externally after %lld checkpoints",
                    static_cast<long long>(checkpoints_)));
  }
  return Status::Internal("unknown budget limit");
}

}  // namespace cote
