#ifndef COTE_COMMON_STR_UTIL_H_
#define COTE_COMMON_STR_UTIL_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace cote {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins the elements with `sep`, e.g. Join({"a","b"}, ", ") -> "a, b".
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Lower-cases ASCII.
std::string ToLower(const std::string& s);

/// True if `s` equals `t` ignoring ASCII case.
bool EqualsIgnoreCase(const std::string& s, const std::string& t);

/// Renders a double with `prec` decimal digits.
std::string FormatDouble(double v, int prec = 3);

}  // namespace cote

#endif  // COTE_COMMON_STR_UTIL_H_
