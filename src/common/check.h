#ifndef COTE_COMMON_CHECK_H_
#define COTE_COMMON_CHECK_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <type_traits>

/// \file
/// Contract macros for trust boundaries, and overflow-guarded bitmask
/// helpers for the enumeration fast path.
///
/// COTE_CHECK* are always on, in every build type: they guard boundaries
/// whose violation would corrupt the MEMO / enumeration state (mode
/// switches, arena index ranges, mask widths at construction time). They
/// print the failed condition with both operand values and abort.
///
/// COTE_DCHECK* compile out under NDEBUG (Release / RelWithDebInfo): they
/// sit on per-lookup hot paths (FlatSetIndex::Find, TableSet::Contains)
/// where even a predictable branch is measurable at O(3^n) call rates.
/// `tools/run_checks.sh` exercises them via a Debug sanitizer cycle.
///
/// Both families are usable inside constexpr functions: when the
/// condition holds, the failing branch is not evaluated; when a constant
/// evaluation reaches a failing check, compilation fails — which is the
/// strongest diagnostic available.

namespace cote {
namespace check_internal {

inline void PrintValue(long long v) { std::fprintf(stderr, "%lld", v); }
inline void PrintValue(unsigned long long v) {
  std::fprintf(stderr, "%llu", v);
}
inline void PrintValue(double v) { std::fprintf(stderr, "%.17g", v); }
inline void PrintValue(const void* v) { std::fprintf(stderr, "%p", v); }

template <typename T>
void Print(const T& v) {
  if constexpr (std::is_floating_point_v<T>) {
    PrintValue(static_cast<double>(v));
  } else if constexpr (std::is_pointer_v<T>) {
    PrintValue(static_cast<const void*>(v));
  } else if constexpr (std::is_enum_v<T>) {
    PrintValue(static_cast<long long>(v));
  } else if constexpr (std::is_signed_v<T>) {
    PrintValue(static_cast<long long>(v));
  } else {
    PrintValue(static_cast<unsigned long long>(v));
  }
}

[[noreturn]] inline void Fail(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "COTE_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

template <typename A, typename B>
[[noreturn]] void FailOp(const char* file, int line, const char* expr,
                         const A& a, const B& b) {
  std::fprintf(stderr, "COTE_CHECK failed: %s (", expr);
  Print(a);
  std::fprintf(stderr, " vs ");
  Print(b);
  std::fprintf(stderr, ") at %s:%d\n", file, line);
  std::abort();
}

}  // namespace check_internal
}  // namespace cote

#define COTE_CHECK(cond)                                            \
  ((cond) ? static_cast<void>(0)                                    \
          : ::cote::check_internal::Fail(__FILE__, __LINE__, #cond))

#define COTE_CHECK_OP_IMPL(op, a, b)                                       \
  do {                                                                     \
    const auto& cote_check_a_ = (a);                                       \
    const auto& cote_check_b_ = (b);                                       \
    if (!(cote_check_a_ op cote_check_b_)) {                               \
      ::cote::check_internal::FailOp(__FILE__, __LINE__,                   \
                                     #a " " #op " " #b, cote_check_a_,     \
                                     cote_check_b_);                       \
    }                                                                      \
  } while (false)

#define COTE_CHECK_EQ(a, b) COTE_CHECK_OP_IMPL(==, a, b)
#define COTE_CHECK_NE(a, b) COTE_CHECK_OP_IMPL(!=, a, b)
#define COTE_CHECK_LT(a, b) COTE_CHECK_OP_IMPL(<, a, b)
#define COTE_CHECK_LE(a, b) COTE_CHECK_OP_IMPL(<=, a, b)
#define COTE_CHECK_GT(a, b) COTE_CHECK_OP_IMPL(>, a, b)
#define COTE_CHECK_GE(a, b) COTE_CHECK_OP_IMPL(>=, a, b)

#ifdef NDEBUG
#define COTE_DCHECK(cond) static_cast<void>(0)
#define COTE_DCHECK_EQ(a, b) static_cast<void>(0)
#define COTE_DCHECK_NE(a, b) static_cast<void>(0)
#define COTE_DCHECK_LT(a, b) static_cast<void>(0)
#define COTE_DCHECK_LE(a, b) static_cast<void>(0)
#define COTE_DCHECK_GT(a, b) static_cast<void>(0)
#define COTE_DCHECK_GE(a, b) static_cast<void>(0)
#else
#define COTE_DCHECK(cond) COTE_CHECK(cond)
#define COTE_DCHECK_EQ(a, b) COTE_CHECK_EQ(a, b)
#define COTE_DCHECK_NE(a, b) COTE_CHECK_NE(a, b)
#define COTE_DCHECK_LT(a, b) COTE_CHECK_LT(a, b)
#define COTE_DCHECK_LE(a, b) COTE_CHECK_LE(a, b)
#define COTE_DCHECK_GT(a, b) COTE_CHECK_GT(a, b)
#define COTE_DCHECK_GE(a, b) COTE_CHECK_GE(a, b)
#endif

namespace cote {

/// Overflow-guarded bitmask helpers. `uint64_t{1} << n` is undefined for
/// n >= 64 and `(1 << n) - 1` additionally wraps for n == 64; every mask
/// construction in the enumeration core funnels through these so the
/// width contract is stated (and, in debug builds, enforced) in exactly
/// one place.

/// The mask {0, 1, ..., n-1}; n must be in [0, 64]. MaskFirstN(64) is the
/// full mask — the case the naive shift gets undefined.
constexpr uint64_t MaskFirstN(int n) {
  COTE_DCHECK_GE(n, 0);
  COTE_DCHECK_LE(n, 64);
  return n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
}

/// The single-bit mask for position i; i must be in [0, 64).
constexpr uint64_t BitAt(int i) {
  COTE_DCHECK_GE(i, 0);
  COTE_DCHECK_LT(i, 64);
  return uint64_t{1} << i;
}

/// Lowest set bit of x (x & -x without the signed-negation reading).
constexpr uint64_t LowestBit(uint64_t x) { return x & (~x + 1); }

/// True iff x has exactly one bit set.
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace cote

#endif  // COTE_COMMON_CHECK_H_
