#ifndef COTE_COMMON_FLAT_SET_INDEX_H_
#define COTE_COMMON_FLAT_SET_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/table_set.h"

namespace cote {

/// \brief Maps non-empty table-set masks to dense int32 indices.
///
/// The enumeration fast path replaces every per-set hash container
/// (MEMO directory, plan-counter state map, existence sets) with this
/// structure: for queries of up to kDenseMaxTables tables it is a
/// direct-indexed array of 2^n int32 slots — a lookup is a single load —
/// and above that it degrades to an open-addressing table (SplitMix64
/// hash, linear probing, key 0 as the empty sentinel; valid because an
/// indexed set is never empty). Assigned indices are dense and count up
/// from 0 in insertion order, so callers can use them to address a
/// side arena of per-set payloads.
class FlatSetIndex {
 public:
  /// Direct indexing caps at 2^20 slots (4 MiB of int32); beyond that the
  /// open-addressing table is both smaller and still O(1).
  static constexpr int kDenseMaxTables = 20;

  explicit FlatSetIndex(int num_tables) {
    // Trust boundary: the dense/hashed mode switch. A table count outside
    // [0, 64] means the caller's query graph is corrupt; a silent clamp
    // here would turn that into wrong lookups later.
    COTE_CHECK_GE(num_tables, 0);
    COTE_CHECK_LE(num_tables, 64);
    if (num_tables <= kDenseMaxTables) {
      dense_.assign(size_t{1} << num_tables, -1);
    } else {
      keys_.assign(kInitialSlots, 0);
      vals_.assign(kInitialSlots, -1);
    }
  }

  /// Index previously assigned to `bits`, or -1. `bits` must be non-zero
  /// and, in dense mode, within the table count given at construction.
  int32_t Find(uint64_t bits) const {
    COTE_DCHECK_NE(bits, uint64_t{0});
    if (!dense_.empty()) {
      COTE_DCHECK_LT(bits, dense_.size());
      return dense_[bits];
    }
    size_t i = Slot(bits);
    while (keys_[i] != 0) {
      if (keys_[i] == bits) return vals_[i];
      i = (i + 1) & (keys_.size() - 1);
    }
    return -1;
  }

  /// Existing index of `bits`, or the next dense index if absent;
  /// `*created` reports which happened.
  int32_t FindOrInsert(uint64_t bits, bool* created) {
    COTE_DCHECK_NE(bits, uint64_t{0});
    if (!dense_.empty()) {
      COTE_DCHECK_LT(bits, dense_.size());
      int32_t& slot = dense_[bits];
      *created = slot < 0;
      if (slot < 0) slot = count_++;
      return slot;
    }
    size_t i = Slot(bits);
    while (keys_[i] != 0) {
      if (keys_[i] == bits) {
        *created = false;
        return vals_[i];
      }
      i = (i + 1) & (keys_.size() - 1);
    }
    *created = true;
    const int32_t idx = count_++;
    keys_[i] = bits;
    vals_[i] = idx;
    MaybeGrow();
    return idx;
  }

  int32_t size() const { return count_; }

  /// Re-keys the index for a (possibly different) table count without
  /// releasing storage: the dense array / hash slots are overwritten in
  /// place, so a reset to the same-or-smaller table count performs no heap
  /// allocation. This is what lets a session-owned PlanCounter rebind to a
  /// new query while staying allocation-steady across a workload.
  void Reset(int num_tables) {
    COTE_CHECK_GE(num_tables, 0);
    COTE_CHECK_LE(num_tables, 64);
    count_ = 0;
    if (num_tables <= kDenseMaxTables) {
      keys_.clear();
      vals_.clear();
      dense_.assign(size_t{1} << num_tables, -1);
    } else {
      dense_.clear();
      if (keys_.empty()) {
        keys_.assign(kInitialSlots, 0);
        vals_.assign(kInitialSlots, -1);
      } else {
        std::fill(keys_.begin(), keys_.end(), uint64_t{0});
        std::fill(vals_.begin(), vals_.end(), int32_t{-1});
      }
    }
  }

 private:
  static constexpr size_t kInitialSlots = 1024;  // power of two

  size_t Slot(uint64_t bits) const {
    return TableSetHash{}(TableSet(bits)) & (keys_.size() - 1);
  }

  void MaybeGrow() {
    // Keep load below ~70%.
    if (static_cast<size_t>(count_) * 10 < keys_.size() * 7) return;
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<int32_t> old_vals = std::move(vals_);
    keys_.assign(old_keys.size() * 2, 0);
    vals_.assign(old_vals.size() * 2, -1);
    for (size_t k = 0; k < old_keys.size(); ++k) {
      if (old_keys[k] == 0) continue;
      size_t i = Slot(old_keys[k]);
      while (keys_[i] != 0) i = (i + 1) & (keys_.size() - 1);
      keys_[i] = old_keys[k];
      vals_[i] = old_vals[k];
    }
  }

  std::vector<int32_t> dense_;  ///< direct index; empty in hashed mode
  std::vector<uint64_t> keys_;  ///< open addressing; 0 = empty slot
  std::vector<int32_t> vals_;
  int32_t count_ = 0;
};

}  // namespace cote

#endif  // COTE_COMMON_FLAT_SET_INDEX_H_
