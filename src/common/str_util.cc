#include "common/str_util.h"

#include <cctype>
#include <cstdio>

namespace cote {

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), static_cast<size_t>(n) + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(const std::string& s, const std::string& t) {
  if (s.size() != t.size()) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(t[i]))) {
      return false;
    }
  }
  return true;
}

std::string FormatDouble(double v, int prec) {
  return StrFormat("%.*f", prec, v);
}

}  // namespace cote
