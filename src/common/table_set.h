#ifndef COTE_COMMON_TABLE_SET_H_
#define COTE_COMMON_TABLE_SET_H_

#include <bit>
#include <cstdint>
#include <string>

#include "common/check.h"

namespace cote {

/// \brief A set of query table references, represented as a 64-bit bitmap.
///
/// MEMO entries, join-graph connectivity and enumeration state are all keyed
/// by table sets. Table references are identified by their position
/// (0-based) in the query's FROM list, so a query may join at most 64 tables
/// — far beyond what dynamic-programming enumeration can handle anyway.
class TableSet {
 public:
  constexpr TableSet() : bits_(0) {}
  constexpr explicit TableSet(uint64_t bits) : bits_(bits) {}

  /// The singleton set {table}; `table` must be in [0, 64).
  static constexpr TableSet Single(int table) {
    return TableSet(BitAt(table));
  }

  /// The set {0, 1, ..., n-1}; `n` must be in [0, 64].
  static constexpr TableSet FirstN(int n) {
    return TableSet(MaskFirstN(n));
  }

  constexpr uint64_t bits() const { return bits_; }
  constexpr bool empty() const { return bits_ == 0; }
  constexpr int size() const { return std::popcount(bits_); }

  constexpr bool Contains(int table) const {
    COTE_DCHECK_GE(table, 0);
    COTE_DCHECK_LT(table, 64);
    return (bits_ >> table) & 1;
  }
  constexpr bool ContainsAll(TableSet other) const {
    return (bits_ & other.bits_) == other.bits_;
  }
  constexpr bool Overlaps(TableSet other) const {
    return (bits_ & other.bits_) != 0;
  }

  constexpr TableSet Union(TableSet other) const {
    return TableSet(bits_ | other.bits_);
  }
  constexpr TableSet Intersect(TableSet other) const {
    return TableSet(bits_ & other.bits_);
  }
  constexpr TableSet Minus(TableSet other) const {
    return TableSet(bits_ & ~other.bits_);
  }
  constexpr TableSet With(int table) const {
    return Union(Single(table));
  }

  /// Index of the lowest-numbered table in the set. Set must be non-empty.
  constexpr int First() const {
    COTE_DCHECK(!empty());
    return std::countr_zero(bits_);
  }

  /// Iterates the members of the set in increasing order.
  ///
  ///   for (auto it = s.begin(); it != s.end(); ++it) { int t = *it; ... }
  class Iterator {
   public:
    constexpr explicit Iterator(uint64_t bits) : bits_(bits) {}
    constexpr int operator*() const { return std::countr_zero(bits_); }
    constexpr Iterator& operator++() {
      bits_ &= bits_ - 1;  // clear lowest set bit
      return *this;
    }
    constexpr bool operator!=(const Iterator& other) const {
      return bits_ != other.bits_;
    }
    constexpr bool operator==(const Iterator& other) const {
      return bits_ == other.bits_;
    }

   private:
    uint64_t bits_;
  };

  constexpr Iterator begin() const { return Iterator(bits_); }
  constexpr Iterator end() const { return Iterator(0); }

  constexpr bool operator==(const TableSet& other) const {
    return bits_ == other.bits_;
  }
  constexpr bool operator!=(const TableSet& other) const {
    return bits_ != other.bits_;
  }
  /// Orders sets by bitmap value; used only for deterministic containers.
  constexpr bool operator<(const TableSet& other) const {
    return bits_ < other.bits_;
  }

  /// Renders like "{0,2,5}".
  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    for (int t : *this) {
      if (!first) out += ",";
      out += std::to_string(t);
      first = false;
    }
    out += "}";
    return out;
  }

 private:
  uint64_t bits_;
};

struct TableSetHash {
  size_t operator()(const TableSet& s) const {
    // SplitMix64 finalizer: good avalanche for dense small bitmaps.
    uint64_t x = s.bits();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

}  // namespace cote

#endif  // COTE_COMMON_TABLE_SET_H_
