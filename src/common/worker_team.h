#ifndef COTE_COMMON_WORKER_TEAM_H_
#define COTE_COMMON_WORKER_TEAM_H_

#include <cstdint>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cote {

/// \brief Persistent worker threads with a barrier-style dispatch round.
///
/// A team of `workers` logical workers backed by `workers - 1` persistent
/// threads; the caller's thread acts as worker 0 so a one-worker team runs
/// inline with zero synchronization. Run() hands every worker the same
/// task function and blocks until all of them return — the mutex hand-off
/// on both sides of the round is the happens-before edge that lets workers
/// publish results with plain (unsynchronized) writes, which is exactly
/// the discipline the parallel enumerator's rank barrier needs: all
/// rank-(k-1) shard state written before the barrier is visible to every
/// worker after it.
///
/// The entire dispatch state is COTE_GUARDED_BY(mu_), so the hand-off
/// discipline is statically checked under Clang -Wthread-safety: touching
/// `round_` / `pending_` / the task slot outside the mutex is a build
/// error, not a TSan finding.
///
/// The task is a plain function pointer plus context (same style as the
/// session layer's StageObserverFn) so dispatch stays allocation-free.
/// Threads are spawned once in the constructor and parked on a condition
/// variable between rounds; the destructor shuts them down. Reusable by
/// any fan-out/barrier consumer (e.g. SessionPool-style batch drivers).
class WorkerTeam {
 public:
  using TaskFn = void (*)(void* ctx, int worker);

  explicit WorkerTeam(int workers);
  ~WorkerTeam();

  WorkerTeam(const WorkerTeam&) = delete;
  WorkerTeam& operator=(const WorkerTeam&) = delete;

  int workers() const { return workers_; }

  /// Runs fn(ctx, w) for every worker w in [0, workers), worker 0 on the
  /// calling thread, and returns once all have finished. Not reentrant:
  /// one round at a time.
  void Run(TaskFn fn, void* ctx) COTE_EXCLUDES(mu_);

 private:
  void ThreadMain(int index) COTE_EXCLUDES(mu_);

  const int workers_;
  std::vector<std::thread> threads_;
  Mutex mu_;
  CondVar round_cv_;  // workers wait here between rounds
  CondVar done_cv_;   // the caller waits here during one
  TaskFn fn_ COTE_GUARDED_BY(mu_) = nullptr;
  void* ctx_ COTE_GUARDED_BY(mu_) = nullptr;
  uint64_t round_ COTE_GUARDED_BY(mu_) = 0;
  int pending_ COTE_GUARDED_BY(mu_) = 0;
  bool shutdown_ COTE_GUARDED_BY(mu_) = false;
};

}  // namespace cote

#endif  // COTE_COMMON_WORKER_TEAM_H_
