#include "common/worker_team.h"

#include "common/check.h"

namespace cote {

WorkerTeam::WorkerTeam(int workers) : workers_(workers) {
  COTE_CHECK(workers >= 1);
  threads_.reserve(static_cast<size_t>(workers_ - 1));
  for (int i = 1; i < workers_; ++i) {
    threads_.emplace_back([this, i] { ThreadMain(i); });
  }
}

WorkerTeam::~WorkerTeam() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  round_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void WorkerTeam::Run(TaskFn fn, void* ctx) {
  if (workers_ == 1) {
    fn(ctx, 0);
    return;
  }
  {
    MutexLock lock(mu_);
    fn_ = fn;
    ctx_ = ctx;
    pending_ = workers_ - 1;
    ++round_;
  }
  round_cv_.NotifyAll();
  fn(ctx, 0);
  MutexLock lock(mu_);
  while (pending_ != 0) done_cv_.Wait(mu_);
}

void WorkerTeam::ThreadMain(int index) {
  uint64_t seen_round = 0;
  for (;;) {
    TaskFn fn;
    void* ctx;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && round_ == seen_round) round_cv_.Wait(mu_);
      if (shutdown_) return;
      seen_round = round_;
      fn = fn_;
      ctx = ctx_;
    }
    fn(ctx, index);
    {
      MutexLock lock(mu_);
      --pending_;
      if (pending_ > 0) continue;
    }
    done_cv_.NotifyOne();
  }
}

}  // namespace cote
