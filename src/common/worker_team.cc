#include "common/worker_team.h"

#include "common/check.h"

namespace cote {

WorkerTeam::WorkerTeam(int workers) : workers_(workers) {
  COTE_CHECK(workers >= 1);
  threads_.reserve(static_cast<size_t>(workers_ - 1));
  for (int i = 1; i < workers_; ++i) {
    threads_.emplace_back([this, i] { ThreadMain(i); });
  }
}

WorkerTeam::~WorkerTeam() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  round_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerTeam::Run(TaskFn fn, void* ctx) {
  if (workers_ == 1) {
    fn(ctx, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = fn;
    ctx_ = ctx;
    pending_ = workers_ - 1;
    ++round_;
  }
  round_cv_.notify_all();
  fn(ctx, 0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

void WorkerTeam::ThreadMain(int index) {
  uint64_t seen_round = 0;
  for (;;) {
    TaskFn fn;
    void* ctx;
    {
      std::unique_lock<std::mutex> lock(mu_);
      round_cv_.wait(lock, [this, seen_round] {
        return shutdown_ || round_ != seen_round;
      });
      if (shutdown_) return;
      seen_round = round_;
      fn = fn_;
      ctx = ctx_;
    }
    fn(ctx, index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
      if (pending_ > 0) continue;
    }
    done_cv_.notify_one();
  }
}

}  // namespace cote
