#ifndef COTE_COMMON_TIMER_H_
#define COTE_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace cote {

/// \brief Wall-clock stopwatch with microsecond resolution.
///
/// Used to measure actual optimizer compilation time and the estimator's own
/// overhead (the paper's Figure 4), and to attribute time to optimizer
/// phases (Figure 2).
class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Accumulates time across many intervals (nanosecond resolution).
///
/// The optimizer instrumentation uses one accumulator per phase
/// (plan generation per join type, plan saving, enumeration, ...).
class TimeAccumulator {
 public:
  void Start() { start_ = Clock::now(); }
  void Stop() {
    total_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                     Clock::now() - start_)
                     .count();
  }
  void Reset() { total_ns_ = 0; }

  int64_t TotalNanos() const { return total_ns_; }
  double TotalMicros() const { return static_cast<double>(total_ns_) / 1e3; }
  double TotalSeconds() const { return static_cast<double>(total_ns_) / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  int64_t total_ns_ = 0;
};

/// RAII helper: accumulates the lifetime of the scope into `acc`.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimeAccumulator* acc) : acc_(acc) {
    if (acc_ != nullptr) acc_->Start();
  }
  ~ScopedTimer() {
    if (acc_ != nullptr) acc_->Stop();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimeAccumulator* acc_;
};

}  // namespace cote

#endif  // COTE_COMMON_TIMER_H_
