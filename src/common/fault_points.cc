#include "common/fault_points.h"

namespace cote {

namespace fault_internal {
// The context pointer is published before the function pointer (release)
// and the consult loads the function first (acquire), so a hook never
// observes a stale context.
std::atomic<FaultHookFn> hook_fn{nullptr};
std::atomic<void*> hook_ctx{nullptr};
}  // namespace fault_internal

void InstallFaultHook(FaultHookFn fn, void* ctx) {
  fault_internal::hook_ctx.store(ctx, std::memory_order_relaxed);
  fault_internal::hook_fn.store(fn, std::memory_order_release);
}

void ClearFaultHook() {
  fault_internal::hook_fn.store(nullptr, std::memory_order_release);
  fault_internal::hook_ctx.store(nullptr, std::memory_order_relaxed);
}

bool FaultHookInstalled() {
  return fault_internal::hook_fn.load(std::memory_order_acquire) != nullptr;
}

}  // namespace cote
