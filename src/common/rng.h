#ifndef COTE_COMMON_RNG_H_
#define COTE_COMMON_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cote {

/// \brief Deterministic pseudo-random number generator (xoshiro256**).
///
/// Workload generators must be reproducible across runs and platforms, so we
/// avoid std::mt19937 seeding subtleties and own the implementation.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 to spread the seed across the state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    assert(!v.empty());
    return v[Uniform(v.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Uniform(i)]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace cote

#endif  // COTE_COMMON_RNG_H_
