#ifndef COTE_PARSER_TOKEN_H_
#define COTE_PARSER_TOKEN_H_

#include <string>

namespace cote {

enum class TokenType {
  kIdent,      ///< identifier or keyword (keywords matched case-insensitively)
  kNumber,     ///< numeric literal
  kString,     ///< 'quoted string'
  kSymbol,     ///< punctuation: ( ) , . = < > <= >= <> * +
  kEnd,        ///< end of input
};

/// \brief A lexed token with its source offset (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  int offset = 0;

  bool IsSymbol(const char* s) const {
    return type == TokenType::kSymbol && text == s;
  }
  /// Case-insensitive keyword check; only valid for identifiers.
  bool IsKeyword(const char* kw) const;

  std::string ToString() const;
};

}  // namespace cote

#endif  // COTE_PARSER_TOKEN_H_
