#include "parser/binder.h"

#include <algorithm>

#include "common/str_util.h"
#include "parser/parser.h"

namespace cote {

StatusOr<QueryGraph> Binder::BindSql(const Catalog& catalog,
                                     const std::string& sql,
                                     BinderOptions options) {
  auto stmt = Parser::Parse(sql);
  if (!stmt.ok()) return stmt.status();
  Binder binder(catalog, options);
  return binder.Bind(stmt.value());
}

StatusOr<MultiBlockQuery> Binder::BindSqlMulti(const Catalog& catalog,
                                               const std::string& sql,
                                               BinderOptions options) {
  auto stmt = Parser::Parse(sql);
  if (!stmt.ok()) return stmt.status();
  Binder binder(catalog, options);
  return binder.BindMulti(stmt.value());
}

StatusOr<MultiBlockQuery> Binder::BindMulti(const ast::SelectStatement& stmt) {
  MultiBlockQuery out;
  collected_blocks_ = &out.subquery_blocks;
  auto main = Bind(stmt);
  collected_blocks_ = nullptr;
  if (!main.ok()) return main.status();
  out.main = std::move(main).value();
  return out;
}

StatusOr<ColumnRef> Binder::Resolve(const ast::ColumnName& name,
                                    const QueryGraph& graph) {
  if (!name.qualifier.empty()) {
    auto it = alias_to_ref_.find(name.qualifier);
    if (it == alias_to_ref_.end()) {
      return Status::BindError("unknown table or alias " + name.qualifier);
    }
    int ref = it->second;
    int ord = graph.table_ref(ref).table->FindColumn(name.column);
    if (ord < 0) {
      return Status::BindError("column " + name.ToString() + " not found");
    }
    return ColumnRef(ref, ord);
  }
  // Unqualified: must resolve uniquely across all FROM tables.
  ColumnRef found;
  int matches = 0;
  for (int t = 0; t < graph.num_tables(); ++t) {
    int ord = graph.table_ref(t).table->FindColumn(name.column);
    if (ord >= 0) {
      found = ColumnRef(t, ord);
      ++matches;
    }
  }
  if (matches == 0) {
    return Status::BindError("column " + name.column + " not found");
  }
  if (matches > 1) {
    return Status::BindError("column " + name.column + " is ambiguous");
  }
  return found;
}

double Binder::LocalSelectivity(const ast::Predicate& pred, ColumnRef col,
                                const QueryGraph& graph) const {
  double ndv = std::max(1.0, graph.ColumnNdv(col));
  const Histogram& hist =
      graph.table_ref(col.table).table->column(col.column).histogram;
  // Literal values map to a stable pseudo-position in the column's
  // normalized domain; the histogram converts positions to selectivities.
  // Subquery comparisons have no literal — use the domain midpoint.
  double pos = pred.subquery != nullptr
                   ? 0.5
                   : Histogram::LiteralPosition(pred.literal.text);
  switch (pred.op) {
    case ast::CompareOp::kEq:
      return std::clamp(hist.EqualitySelectivity(pos), 1e-9, 1.0);
    case ast::CompareOp::kNe:
      return 1.0 - std::clamp(hist.EqualitySelectivity(pos), 1e-9, 1.0);
    case ast::CompareOp::kLt:
    case ast::CompareOp::kLe:
      return std::clamp(hist.LessThanSelectivity(pos), 0.02, 0.98);
    case ast::CompareOp::kGt:
    case ast::CompareOp::kGe:
      return std::clamp(1.0 - hist.LessThanSelectivity(pos), 0.02, 0.98);
    case ast::CompareOp::kBetween: {
      double hi = Histogram::LiteralPosition(pred.literal2.text);
      return std::clamp(hist.RangeSelectivity(std::min(pos, hi),
                                              std::max(pos, hi)),
                        0.02, 0.9);
    }
    case ast::CompareOp::kLike:
      return 1.0 / 10.0;
  }
  (void)ndv;
  return 0.1;
}

Status Binder::BindPredicate(const ast::Predicate& pred, bool left_outer,
                             int null_side_ref, QueryGraph* graph) {
  auto left = Resolve(pred.left, *graph);
  if (!left.ok()) return left.status();
  if (pred.subquery != nullptr) {
    // Uncorrelated scalar subquery: its block is compiled independently;
    // for THIS block it acts like a comparison with an (unknown) constant.
    if (collected_blocks_ != nullptr) {
      Binder sub_binder(catalog_, options_);
      sub_binder.collected_blocks_ = collected_blocks_;
      auto sub = sub_binder.Bind(*pred.subquery);
      if (!sub.ok()) return sub.status();
      collected_blocks_->push_back(std::move(sub).value());
    }
    LocalPredicate lp;
    lp.column = *left;
    lp.op = pred.op == ast::CompareOp::kEq ? LocalOp::kEq : LocalOp::kRange;
    lp.selectivity = LocalSelectivity(pred, *left, *graph);
    graph->AddLocalPredicate(lp);
    return Status::OK();
  }
  if (pred.is_join) {
    auto right = Resolve(pred.right, *graph);
    if (!right.ok()) return right.status();
    if (left->table == right->table) {
      return Status::BindError("self-join predicates within one table ref "
                               "are not supported: " +
                               pred.left.ToString() + " = " +
                               pred.right.ToString());
    }
    JoinPredicate jp;
    jp.left = *left;
    jp.right = *right;
    if (left_outer && (left->table == null_side_ref ||
                       right->table == null_side_ref)) {
      jp.kind = JoinKind::kLeftOuter;
      // Orient so that `right` is the null-producing side.
      if (jp.left.table == null_side_ref) std::swap(jp.left, jp.right);
    } else {
      jp.kind = JoinKind::kInner;
    }
    jp.selectivity = 1.0 / std::max({graph->ColumnNdv(jp.left),
                                     graph->ColumnNdv(jp.right), 1.0});
    graph->AddJoinPredicate(jp);
    return Status::OK();
  }
  LocalPredicate lp;
  lp.column = *left;
  switch (pred.op) {
    case ast::CompareOp::kEq:
    case ast::CompareOp::kNe:
      lp.op = LocalOp::kEq;
      break;
    case ast::CompareOp::kLike:
      lp.op = LocalOp::kLike;
      break;
    default:
      lp.op = LocalOp::kRange;
      break;
  }
  lp.selectivity = LocalSelectivity(pred, *left, *graph);
  graph->AddLocalPredicate(lp);
  return Status::OK();
}

StatusOr<QueryGraph> Binder::Bind(const ast::SelectStatement& stmt) {
  QueryGraph graph;
  alias_to_ref_.clear();

  // Pass 1: register all table refs so ON/WHERE can see every alias.
  struct PendingJoin {
    const ast::JoinClause* clause;
    int new_ref;
  };
  std::vector<PendingJoin> pending;
  for (const ast::FromItem& item : stmt.from) {
    auto add_ref = [&](const ast::TableRef& ref) -> StatusOr<int> {
      const Table* t = catalog_.FindTable(ref.table_name);
      if (t == nullptr) {
        return Status::BindError("unknown table " + ref.table_name);
      }
      std::string alias = ref.alias.empty() ? ref.table_name : ref.alias;
      if (alias_to_ref_.count(alias) > 0) {
        return Status::BindError("duplicate table alias " + alias);
      }
      int id = graph.AddTableRef(t, alias);
      alias_to_ref_[alias] = id;
      return id;
    };
    auto base = add_ref(item.table);
    if (!base.ok()) return base.status();
    for (const ast::JoinClause& jc : item.joins) {
      auto ref = add_ref(jc.table);
      if (!ref.ok()) return ref.status();
      pending.push_back(PendingJoin{&jc, ref.value()});
    }
  }

  // Pass 2: bind ON conditions and WHERE conjuncts.
  for (const PendingJoin& pj : pending) {
    for (const ast::Predicate& pred : pj.clause->on) {
      COTE_RETURN_NOT_OK(BindPredicate(pred, pj.clause->left_outer,
                                       pj.new_ref, &graph));
    }
  }
  for (const ast::Predicate& pred : stmt.where) {
    COTE_RETURN_NOT_OK(
        BindPredicate(pred, /*left_outer=*/false, /*null_side_ref=*/-1,
                      &graph));
  }

  // GROUP BY / ORDER BY interest lists.
  std::vector<ColumnRef> group_by;
  for (const ast::ColumnName& name : stmt.group_by) {
    auto c = Resolve(name, graph);
    if (!c.ok()) return c.status();
    group_by.push_back(*c);
  }
  if (!group_by.empty()) {
    graph.SetGroupBy(std::move(group_by));
    graph.set_has_aggregation(true);
  }
  std::vector<ColumnRef> order_by;
  for (const ast::OrderItem& item : stmt.order_by) {
    auto c = Resolve(item.column, graph);
    if (!c.ok()) return c.status();
    order_by.push_back(*c);
  }
  if (!order_by.empty()) graph.SetOrderBy(std::move(order_by));

  std::vector<ColumnRef> select_cols;
  for (const ast::SelectItem& item : stmt.select_list) {
    if (item.agg != ast::AggFunc::kNone) graph.set_has_aggregation(true);
    if (!item.star && !item.column.column.empty()) {
      auto c = Resolve(item.column, graph);
      if (!c.ok()) return c.status();
      select_cols.push_back(*c);
    }
  }

  // SELECT DISTINCT deduplicates on the select list — it plans exactly
  // like a GROUP BY on those columns, so their orders become interesting.
  if (stmt.distinct && graph.group_by().empty() && !select_cols.empty()) {
    graph.SetGroupBy(std::move(select_cols));
    graph.set_has_aggregation(true);
  }

  if (stmt.fetch_first > 0) graph.set_fetch_first(stmt.fetch_first);

  if (options_.transitive_closure) graph.DeriveTransitiveClosure();
  return graph;
}

}  // namespace cote
