#ifndef COTE_PARSER_PARSER_H_
#define COTE_PARSER_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "parser/ast.h"
#include "parser/token.h"

namespace cote {

/// \brief Recursive-descent parser for the supported SQL subset.
///
/// Grammar (case-insensitive keywords):
///
///   select    := SELECT [DISTINCT] select_list FROM from_list
///                [WHERE conj] [GROUP BY columns] [ORDER BY order_items] [;]
///   select_list := '*' | item (',' item)*
///   item      := column [AS ident]
///              | (COUNT|SUM|AVG|MIN|MAX) '(' (column | '*') ')' [AS ident]
///   from_list := from_item (',' from_item)*
///   from_item := table_ref (join_clause)*
///   join_clause := [LEFT [OUTER] | INNER] JOIN table_ref ON conj
///   table_ref := ident [[AS] ident]
///   conj      := pred (AND pred)*
///   pred      := column '=' column
///              | column cmp literal
///              | column BETWEEN literal AND literal
///              | column LIKE string
///   column    := ident | ident '.' ident
///
/// Only the join graph, filters, GROUP BY and ORDER BY matter to the
/// optimizer; expressions beyond the grammar are rejected with a
/// ParseError that points at the offending token.
class Parser {
 public:
  /// Parses one SELECT statement from `sql`.
  static StatusOr<ast::SelectStatement> Parse(const std::string& sql);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<ast::SelectStatement> ParseSelect(bool top_level);
  Status ParseSelectList(ast::SelectStatement* stmt);
  Status ParseFromList(ast::SelectStatement* stmt);
  StatusOr<ast::TableRef> ParseTableRef();
  StatusOr<std::vector<ast::Predicate>> ParseConjunction();
  StatusOr<ast::Predicate> ParsePredicate();
  StatusOr<ast::ColumnName> ParseColumn();
  StatusOr<ast::Literal> ParseLiteral();

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }
  bool AcceptKeyword(const char* kw);
  bool AcceptSymbol(const char* sym);
  Status ExpectKeyword(const char* kw);
  Status ExpectSymbol(const char* sym);
  Status ErrorAt(const Token& tok, const std::string& what) const;

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace cote

#endif  // COTE_PARSER_PARSER_H_
