#ifndef COTE_PARSER_AST_H_
#define COTE_PARSER_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace cote {
namespace ast {

struct SelectStatement;

/// Column reference as written: optional qualifier + column name.
struct ColumnName {
  std::string qualifier;  ///< table name or alias; empty if unqualified
  std::string column;

  std::string ToString() const {
    return qualifier.empty() ? column : qualifier + "." + column;
  }
};

/// Aggregate functions recognized in the select list.
enum class AggFunc { kNone, kCount, kSum, kAvg, kMin, kMax };

/// One select-list item: a column or an aggregate over a column / '*'.
struct SelectItem {
  AggFunc agg = AggFunc::kNone;
  bool star = false;  ///< COUNT(*) or bare '*'
  ColumnName column;  ///< unused when star
  std::string output_alias;
};

/// One FROM-list entry.
struct TableRef {
  std::string table_name;
  std::string alias;  ///< empty = use table name
};

/// Comparison operators in predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kBetween, kLike };

/// Literal operand of a local predicate.
struct Literal {
  enum class Kind { kNumber, kString } kind = Kind::kNumber;
  std::string text;
};

/// A conjunct of the WHERE clause / an ON condition: a column-column
/// equality (join), a column-literal comparison (local filter), or a
/// column-subquery comparison (uncorrelated scalar subquery — a separate
/// query block, compiled independently; §3.3 of the paper).
struct Predicate {
  bool is_join = false;
  ColumnName left;
  CompareOp op = CompareOp::kEq;
  // Join form:
  ColumnName right;
  // Local form:
  Literal literal;
  Literal literal2;  ///< upper bound of BETWEEN
  // Scalar-subquery form (shared_ptr keeps Predicate copyable):
  std::shared_ptr<SelectStatement> subquery;
};

/// A JOIN ... ON clause attached to a FROM entry.
struct JoinClause {
  bool left_outer = false;
  TableRef table;
  std::vector<Predicate> on;  ///< conjunctive ON condition
};

/// One FROM item: a base table followed by zero or more JOIN clauses.
struct FromItem {
  TableRef table;
  std::vector<JoinClause> joins;
};

/// Sort direction (parsed but not semantically significant for planning —
/// both directions are served by the same interesting order).
struct OrderItem {
  ColumnName column;
  bool descending = false;
};

/// \brief A parsed single-block SELECT statement.
struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> select_list;
  std::vector<FromItem> from;
  std::vector<Predicate> where;  ///< conjunctive
  std::vector<ColumnName> group_by;
  std::vector<OrderItem> order_by;
  /// FETCH FIRST n ROWS ONLY / LIMIT n; -1 when absent. Makes the
  /// "pipelinable" physical property interesting (paper Table 1).
  long long fetch_first = -1;
};

}  // namespace ast
}  // namespace cote

#endif  // COTE_PARSER_AST_H_
