#include "parser/parser.h"

#include <cstdlib>
#include <memory>

#include "common/str_util.h"
#include "parser/lexer.h"

namespace cote {

namespace {

bool IsReserved(const Token& tok) {
  static const char* kReserved[] = {
      "select", "from",  "where", "group", "order",    "by",    "and",
      "join",   "left",  "outer", "inner", "on",       "as",    "distinct",
      "count",  "sum",   "avg",   "min",   "max",      "like",  "between",
      "fetch",  "first", "rows",  "only",  "limit",    "desc",  "asc",
  };
  if (tok.type != TokenType::kIdent) return false;
  for (const char* kw : kReserved) {
    if (tok.IsKeyword(kw)) return true;
  }
  return false;
}

}  // namespace

StatusOr<ast::SelectStatement> Parser::Parse(const std::string& sql) {
  Lexer lexer(sql);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseSelect(/*top_level=*/true);
}

bool Parser::AcceptKeyword(const char* kw) {
  if (Peek().IsKeyword(kw)) {
    Next();
    return true;
  }
  return false;
}

bool Parser::AcceptSymbol(const char* sym) {
  if (Peek().IsSymbol(sym)) {
    Next();
    return true;
  }
  return false;
}

Status Parser::ExpectKeyword(const char* kw) {
  if (!AcceptKeyword(kw)) {
    return ErrorAt(Peek(), StrFormat("expected %s", kw));
  }
  return Status::OK();
}

Status Parser::ExpectSymbol(const char* sym) {
  if (!AcceptSymbol(sym)) {
    return ErrorAt(Peek(), StrFormat("expected '%s'", sym));
  }
  return Status::OK();
}

Status Parser::ErrorAt(const Token& tok, const std::string& what) const {
  return Status::ParseError(StrFormat("%s, found %s at offset %d",
                                      what.c_str(), tok.ToString().c_str(),
                                      tok.offset));
}

StatusOr<ast::SelectStatement> Parser::ParseSelect(bool top_level) {
  COTE_RETURN_NOT_OK(ExpectKeyword("select"));
  ast::SelectStatement stmt;
  stmt.distinct = AcceptKeyword("distinct");
  COTE_RETURN_NOT_OK(ParseSelectList(&stmt));
  COTE_RETURN_NOT_OK(ExpectKeyword("from"));
  COTE_RETURN_NOT_OK(ParseFromList(&stmt));
  if (AcceptKeyword("where")) {
    auto conj = ParseConjunction();
    if (!conj.ok()) return conj.status();
    stmt.where = std::move(conj).value();
  }
  if (AcceptKeyword("group")) {
    COTE_RETURN_NOT_OK(ExpectKeyword("by"));
    do {
      auto col = ParseColumn();
      if (!col.ok()) return col.status();
      stmt.group_by.push_back(std::move(col).value());
    } while (AcceptSymbol(","));
  }
  if (AcceptKeyword("order")) {
    COTE_RETURN_NOT_OK(ExpectKeyword("by"));
    do {
      auto col = ParseColumn();
      if (!col.ok()) return col.status();
      ast::OrderItem item;
      item.column = std::move(col).value();
      if (AcceptKeyword("desc")) {
        item.descending = true;
      } else {
        AcceptKeyword("asc");
      }
      stmt.order_by.push_back(std::move(item));
    } while (AcceptSymbol(","));
  }
  // FETCH FIRST n ROWS ONLY | LIMIT n.
  if (AcceptKeyword("fetch")) {
    COTE_RETURN_NOT_OK(ExpectKeyword("first"));
    const Token& n = Peek();
    if (n.type != TokenType::kNumber) {
      return ErrorAt(n, "expected row count after FETCH FIRST");
    }
    stmt.fetch_first = std::atoll(Next().text.c_str());
    COTE_RETURN_NOT_OK(ExpectKeyword("rows"));
    COTE_RETURN_NOT_OK(ExpectKeyword("only"));
  } else if (AcceptKeyword("limit")) {
    const Token& n = Peek();
    if (n.type != TokenType::kNumber) {
      return ErrorAt(n, "expected row count after LIMIT");
    }
    stmt.fetch_first = std::atoll(Next().text.c_str());
  }
  if (top_level) {
    AcceptSymbol(";");
    if (Peek().type != TokenType::kEnd) {
      return ErrorAt(Peek(), "expected end of statement");
    }
  }
  return stmt;
}

Status Parser::ParseSelectList(ast::SelectStatement* stmt) {
  if (AcceptSymbol("*")) {
    ast::SelectItem item;
    item.star = true;
    stmt->select_list.push_back(item);
    return Status::OK();
  }
  do {
    ast::SelectItem item;
    const Token& tok = Peek();
    auto agg = ast::AggFunc::kNone;
    if (tok.IsKeyword("count")) agg = ast::AggFunc::kCount;
    else if (tok.IsKeyword("sum")) agg = ast::AggFunc::kSum;
    else if (tok.IsKeyword("avg")) agg = ast::AggFunc::kAvg;
    else if (tok.IsKeyword("min")) agg = ast::AggFunc::kMin;
    else if (tok.IsKeyword("max")) agg = ast::AggFunc::kMax;
    if (agg != ast::AggFunc::kNone) {
      Next();
      item.agg = agg;
      COTE_RETURN_NOT_OK(ExpectSymbol("("));
      if (AcceptSymbol("*")) {
        item.star = true;
      } else {
        auto col = ParseColumn();
        if (!col.ok()) return col.status();
        item.column = std::move(col).value();
      }
      COTE_RETURN_NOT_OK(ExpectSymbol(")"));
    } else {
      auto col = ParseColumn();
      if (!col.ok()) return col.status();
      item.column = std::move(col).value();
    }
    if (AcceptKeyword("as")) {
      const Token& alias = Peek();
      if (alias.type != TokenType::kIdent) {
        return ErrorAt(alias, "expected output alias");
      }
      item.output_alias = Next().text;
    }
    stmt->select_list.push_back(std::move(item));
  } while (AcceptSymbol(","));
  return Status::OK();
}

StatusOr<ast::TableRef> Parser::ParseTableRef() {
  const Token& name = Peek();
  if (name.type != TokenType::kIdent || IsReserved(name)) {
    return Status(StatusCode::kParseError,
                  StrFormat("expected table name, found %s at offset %d",
                            name.ToString().c_str(), name.offset));
  }
  ast::TableRef ref;
  ref.table_name = Next().text;
  if (AcceptKeyword("as")) {
    const Token& alias = Peek();
    if (alias.type != TokenType::kIdent) {
      return ErrorAt(alias, "expected alias after AS");
    }
    ref.alias = Next().text;
  } else if (Peek().type == TokenType::kIdent && !IsReserved(Peek())) {
    ref.alias = Next().text;
  }
  return ref;
}

Status Parser::ParseFromList(ast::SelectStatement* stmt) {
  do {
    auto base = ParseTableRef();
    if (!base.ok()) return base.status();
    ast::FromItem item;
    item.table = std::move(base).value();
    while (true) {
      bool left_outer = false;
      if (Peek().IsKeyword("left")) {
        Next();
        AcceptKeyword("outer");
        left_outer = true;
        COTE_RETURN_NOT_OK(ExpectKeyword("join"));
      } else if (Peek().IsKeyword("inner")) {
        Next();
        COTE_RETURN_NOT_OK(ExpectKeyword("join"));
      } else if (Peek().IsKeyword("join")) {
        Next();
      } else {
        break;
      }
      auto ref = ParseTableRef();
      if (!ref.ok()) return ref.status();
      COTE_RETURN_NOT_OK(ExpectKeyword("on"));
      auto conj = ParseConjunction();
      if (!conj.ok()) return conj.status();
      ast::JoinClause jc;
      jc.left_outer = left_outer;
      jc.table = std::move(ref).value();
      jc.on = std::move(conj).value();
      item.joins.push_back(std::move(jc));
    }
    stmt->from.push_back(std::move(item));
  } while (AcceptSymbol(","));
  return Status::OK();
}

StatusOr<std::vector<ast::Predicate>> Parser::ParseConjunction() {
  std::vector<ast::Predicate> preds;
  do {
    auto p = ParsePredicate();
    if (!p.ok()) return p.status();
    preds.push_back(std::move(p).value());
  } while (AcceptKeyword("and"));
  return preds;
}

StatusOr<ast::Predicate> Parser::ParsePredicate() {
  auto left = ParseColumn();
  if (!left.ok()) return left.status();
  ast::Predicate pred;
  pred.left = std::move(left).value();

  if (AcceptKeyword("between")) {
    pred.op = ast::CompareOp::kBetween;
    auto lo = ParseLiteral();
    if (!lo.ok()) return lo.status();
    pred.literal = std::move(lo).value();
    COTE_RETURN_NOT_OK(ExpectKeyword("and"));
    auto hi = ParseLiteral();
    if (!hi.ok()) return hi.status();
    pred.literal2 = std::move(hi).value();
    return pred;
  }
  if (AcceptKeyword("like")) {
    pred.op = ast::CompareOp::kLike;
    auto lit = ParseLiteral();
    if (!lit.ok()) return lit.status();
    if (lit.value().kind != ast::Literal::Kind::kString) {
      return ErrorAt(Peek(), "LIKE requires a string pattern");
    }
    pred.literal = std::move(lit).value();
    return pred;
  }

  const Token& op = Peek();
  ast::CompareOp cmp;
  if (op.IsSymbol("=")) cmp = ast::CompareOp::kEq;
  else if (op.IsSymbol("<>")) cmp = ast::CompareOp::kNe;
  else if (op.IsSymbol("<")) cmp = ast::CompareOp::kLt;
  else if (op.IsSymbol("<=")) cmp = ast::CompareOp::kLe;
  else if (op.IsSymbol(">")) cmp = ast::CompareOp::kGt;
  else if (op.IsSymbol(">=")) cmp = ast::CompareOp::kGe;
  else return ErrorAt(op, "expected comparison operator");
  Next();
  pred.op = cmp;

  // '(' SELECT ... ')' on the right side is an uncorrelated scalar
  // subquery: a separate query block.
  if (Peek().IsSymbol("(") && tokens_[pos_ + 1].IsKeyword("select")) {
    Next();  // consume '('
    auto sub = ParseSelect(/*top_level=*/false);
    if (!sub.ok()) return sub.status();
    COTE_RETURN_NOT_OK(ExpectSymbol(")"));
    pred.subquery =
        std::make_shared<ast::SelectStatement>(std::move(sub).value());
    return pred;
  }

  // Column = column is a join predicate; otherwise expect a literal
  // (DATE '...'-style literals start with the non-reserved ident DATE).
  const Token& rhs = Peek();
  if (rhs.type == TokenType::kIdent && !IsReserved(rhs) &&
      !rhs.IsKeyword("date")) {
    auto right = ParseColumn();
    if (!right.ok()) return right.status();
    if (cmp != ast::CompareOp::kEq) {
      return ErrorAt(rhs, "only equality join predicates are supported");
    }
    pred.is_join = true;
    pred.right = std::move(right).value();
    return pred;
  }
  auto lit = ParseLiteral();
  if (!lit.ok()) return lit.status();
  pred.literal = std::move(lit).value();
  return pred;
}

StatusOr<ast::ColumnName> Parser::ParseColumn() {
  const Token& first = Peek();
  if (first.type != TokenType::kIdent || IsReserved(first)) {
    return Status(StatusCode::kParseError,
                  StrFormat("expected column, found %s at offset %d",
                            first.ToString().c_str(), first.offset));
  }
  ast::ColumnName col;
  std::string a = Next().text;
  if (AcceptSymbol(".")) {
    const Token& second = Peek();
    if (second.type != TokenType::kIdent) {
      return ErrorAt(second, "expected column name after '.'");
    }
    col.qualifier = std::move(a);
    col.column = Next().text;
  } else {
    col.column = std::move(a);
  }
  return col;
}

StatusOr<ast::Literal> Parser::ParseLiteral() {
  const Token& tok = Peek();
  ast::Literal lit;
  if (tok.type == TokenType::kNumber) {
    lit.kind = ast::Literal::Kind::kNumber;
    lit.text = Next().text;
    return lit;
  }
  if (tok.type == TokenType::kString) {
    lit.kind = ast::Literal::Kind::kString;
    lit.text = Next().text;
    return lit;
  }
  // DATE 'yyyy-mm-dd' literals.
  if (tok.IsKeyword("date")) {
    Next();
    const Token& str = Peek();
    if (str.type != TokenType::kString) {
      return ErrorAt(str, "expected string after DATE");
    }
    lit.kind = ast::Literal::Kind::kString;
    lit.text = Next().text;
    return lit;
  }
  return ErrorAt(tok, "expected literal");
}

}  // namespace cote
