#ifndef COTE_PARSER_BINDER_H_
#define COTE_PARSER_BINDER_H_

#include <string>
#include <unordered_map>

#include "catalog/catalog.h"
#include "common/status.h"
#include "parser/ast.h"
#include "query/multi_block.h"
#include "query/query_graph.h"

namespace cote {

/// \brief Options controlling semantic analysis.
struct BinderOptions {
  /// Derive implied predicates through transitive closure (what commercial
  /// systems do; introduces cycles into the join graph, §2.2 of the paper).
  bool transitive_closure = true;
};

/// \brief Resolves a parsed statement against a catalog into a QueryGraph.
///
/// Local predicate selectivities are estimated from catalog statistics:
/// equality = 1/NDV, range = 1/3 per bound, BETWEEN = 1/4, LIKE = 1/10,
/// <> = 1 - 1/NDV. Join predicate selectivity = 1/max(NDV of either side).
class Binder {
 public:
  explicit Binder(const Catalog& catalog, BinderOptions options = {})
      : catalog_(catalog), options_(options) {}

  /// Binds the top-level block only; uncorrelated scalar subqueries are
  /// folded into local predicates (their blocks are dropped).
  StatusOr<QueryGraph> Bind(const ast::SelectStatement& stmt);

  /// Binds all query blocks: the main block plus one QueryGraph per
  /// uncorrelated scalar subquery (recursively).
  StatusOr<MultiBlockQuery> BindMulti(const ast::SelectStatement& stmt);

  /// Convenience: parse + bind (top block) in one call.
  static StatusOr<QueryGraph> BindSql(const Catalog& catalog,
                                      const std::string& sql,
                                      BinderOptions options = {});

  /// Convenience: parse + bind all blocks in one call.
  static StatusOr<MultiBlockQuery> BindSqlMulti(const Catalog& catalog,
                                                const std::string& sql,
                                                BinderOptions options = {});

 private:
  StatusOr<ColumnRef> Resolve(const ast::ColumnName& name,
                              const QueryGraph& graph);
  Status BindPredicate(const ast::Predicate& pred, bool left_outer,
                       int null_side_ref, QueryGraph* graph);
  double LocalSelectivity(const ast::Predicate& pred, ColumnRef col,
                          const QueryGraph& graph) const;

  const Catalog& catalog_;
  BinderOptions options_;
  std::unordered_map<std::string, int> alias_to_ref_;
  /// When non-null, BindPredicate appends bound subquery blocks here.
  std::vector<QueryGraph>* collected_blocks_ = nullptr;
};

}  // namespace cote

#endif  // COTE_PARSER_BINDER_H_
