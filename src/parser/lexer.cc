#include "parser/lexer.h"

#include <cctype>

#include "common/str_util.h"

namespace cote {

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kIdent && EqualsIgnoreCase(text, kw);
}

std::string Token::ToString() const {
  switch (type) {
    case TokenType::kIdent:
      return "ident(" + text + ")";
    case TokenType::kNumber:
      return "num(" + text + ")";
    case TokenType::kString:
      return "str('" + text + "')";
    case TokenType::kSymbol:
      return "sym(" + text + ")";
    case TokenType::kEnd:
      return "<end>";
  }
  return "?";
}

StatusOr<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  const std::string& s = input_;
  size_t i = 0;
  const size_t n = s.size();
  while (i < n) {
    char c = s[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && s[i + 1] == '-') {
      while (i < n && s[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = static_cast<int>(i);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(s[j])) ||
                       s[j] == '_')) {
        ++j;
      }
      tok.type = TokenType::kIdent;
      tok.text = s.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(s[i + 1])))) {
      size_t j = i;
      bool seen_dot = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(s[j])) ||
                       (s[j] == '.' && !seen_dot))) {
        if (s[j] == '.') seen_dot = true;
        ++j;
      }
      tok.type = TokenType::kNumber;
      tok.text = s.substr(i, j - i);
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      std::string text;
      bool closed = false;
      while (j < n) {
        if (s[j] == '\'') {
          if (j + 1 < n && s[j + 1] == '\'') {  // escaped quote
            text += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text += s[j];
        ++j;
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string literal at offset %zu", i));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(text);
      i = j;
    } else {
      // Multi-char operators first.
      static const char* kTwoChar[] = {"<=", ">=", "<>", "!="};
      std::string two = s.substr(i, 2);
      bool matched = false;
      for (const char* op : kTwoChar) {
        if (two == op) {
          tok.type = TokenType::kSymbol;
          tok.text = two == "!=" ? "<>" : two;
          i += 2;
          matched = true;
          break;
        }
      }
      if (!matched) {
        static const std::string kOneChar = "(),.*=<>+-/;";
        if (kOneChar.find(c) == std::string::npos) {
          return Status::ParseError(
              StrFormat("unexpected character '%c' at offset %zu", c, i));
        }
        tok.type = TokenType::kSymbol;
        tok.text = std::string(1, c);
        ++i;
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = static_cast<int>(n);
  tokens.push_back(end);
  return tokens;
}

}  // namespace cote
