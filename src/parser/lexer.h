#ifndef COTE_PARSER_LEXER_H_
#define COTE_PARSER_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "parser/token.h"

namespace cote {

/// \brief Tokenizes SQL text into a flat token stream.
///
/// Comments (`-- ...` to end of line) and whitespace are skipped. The final
/// token is always kEnd. Fails on unterminated strings and unknown bytes.
class Lexer {
 public:
  explicit Lexer(std::string input) : input_(std::move(input)) {}

  StatusOr<std::vector<Token>> Tokenize();

 private:
  std::string input_;
};

}  // namespace cote

#endif  // COTE_PARSER_LEXER_H_
