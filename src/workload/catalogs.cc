#include "workload/workload.h"

#include <cassert>

#include "catalog/table.h"
#include "common/str_util.h"

namespace cote {

std::shared_ptr<Catalog> MakeSyntheticCatalog(int num_tables) {
  return MakeSyntheticCatalogEx(num_tables, /*indexes_per_table=*/1, "c0");
}

std::shared_ptr<Catalog> MakeSyntheticCatalogEx(
    int num_tables, int indexes_per_table, const std::string& partition_col) {
  auto catalog = std::make_shared<Catalog>();
  // Row counts cycle through a spread so join directions matter.
  const double kRows[] = {1000000, 50000, 200000, 10000, 500000,
                          25000,   100000, 75000, 300000, 40000};
  for (int i = 0; i < num_tables; ++i) {
    double rows = kRows[i % 10] * (1 + i / 10);
    TableBuilder b(StrFormat("T%d", i), rows);
    // c0 is the "key-ish" column; c1..c4 are join columns with moderate
    // NDV (so stacking several predicates between the same pair does not
    // collapse cardinalities to ~0); c5..c7 serve ORDER BY / GROUP BY.
    b.Col("c0", ColumnType::kBigInt, rows);
    b.Col("c1", ColumnType::kInt, rows / 2);
    b.Col("c2", ColumnType::kInt, 1000);
    b.Col("c3", ColumnType::kInt, 500);
    b.Col("c4", ColumnType::kInt, 100);
    b.Col("c5", ColumnType::kInt, 50);
    b.Col("c6", ColumnType::kDate, 2500);
    b.Col("c7", ColumnType::kVarchar, 10000);
    b.PrimaryKey({"c0"});
    if (indexes_per_table >= 1) {
      b.Idx(StrFormat("T%d_pk", i), {"c0"}, /*unique=*/true);
    }
    if (indexes_per_table >= 2) b.Idx(StrFormat("T%d_i1", i), {"c1"});
    if (indexes_per_table >= 3) b.Idx(StrFormat("T%d_i2", i), {"c3"});
    // "mix" staggers the partitioning key across tables (c1/c2), the
    // design that makes several interesting partition values coexist.
    if (partition_col == "mix") {
      b.HashPartition({i % 2 == 0 ? "c1" : "c2"});
    } else if (!partition_col.empty()) {
      b.HashPartition({partition_col});
    }
    Status s = catalog->AddTable(b.Build());
    assert(s.ok());
    (void)s;
  }
  return catalog;
}

std::shared_ptr<Catalog> MakeRetailCatalog() {
  auto catalog = std::make_shared<Catalog>();
  auto add = [&catalog](Table t) {
    Status s = catalog->AddTable(std::move(t));
    assert(s.ok());
    (void)s;
  };

  // Dimensions.
  add(TableBuilder("store", 1000)
          .Col("s_id", ColumnType::kInt, 1000)
          .Col("s_region_id", ColumnType::kInt, 50)
          .Col("s_city", ColumnType::kVarchar, 400)
          .Col("s_size", ColumnType::kInt, 20)
          .Col("s_open_date", ColumnType::kDate, 900)
          .PrimaryKey({"s_id"})
          .Idx("store_pk", {"s_id"}, true)
          .Replicate()
          .Build());
  add(TableBuilder("region", 50)
          .Col("r_id", ColumnType::kInt, 50)
          .Col("r_name", ColumnType::kVarchar, 50)
          .Col("r_country", ColumnType::kVarchar, 12)
          .PrimaryKey({"r_id"})
          .Idx("region_pk", {"r_id"}, true)
          .Replicate()
          .Build());
  add(TableBuilder("product", 200000)
          .Col("p_id", ColumnType::kInt, 200000)
          .Col("p_category_id", ColumnType::kInt, 500)
          .Col("p_brand_id", ColumnType::kInt, 2000)
          .Col("p_name", ColumnType::kVarchar, 190000)
          .Col("p_price", ColumnType::kDecimal, 8000)
          .Col("p_intro_date", ColumnType::kDate, 3000)
          .PrimaryKey({"p_id"})
          .Idx("product_pk", {"p_id"}, true)
          .Idx("product_cat", {"p_category_id", "p_id"})
          .HashPartition({"p_id"})
          .Build());
  add(TableBuilder("category", 500)
          .Col("cat_id", ColumnType::kInt, 500)
          .Col("cat_name", ColumnType::kVarchar, 500)
          .Col("cat_dept", ColumnType::kVarchar, 30)
          .PrimaryKey({"cat_id"})
          .Idx("category_pk", {"cat_id"}, true)
          .Replicate()
          .Build());
  add(TableBuilder("brand", 2000)
          .Col("b_id", ColumnType::kInt, 2000)
          .Col("b_name", ColumnType::kVarchar, 2000)
          .Col("b_vendor_id", ColumnType::kInt, 300)
          .PrimaryKey({"b_id"})
          .Idx("brand_pk", {"b_id"}, true)
          .Replicate()
          .Build());
  add(TableBuilder("vendor", 300)
          .Col("v_id", ColumnType::kInt, 300)
          .Col("v_name", ColumnType::kVarchar, 300)
          .Col("v_region_id", ColumnType::kInt, 50)
          .PrimaryKey({"v_id"})
          .Idx("vendor_pk", {"v_id"}, true)
          .Replicate()
          .Build());
  add(TableBuilder("customer", 500000)
          .Col("c_id", ColumnType::kInt, 500000)
          .Col("c_region_id", ColumnType::kInt, 50)
          .Col("c_segment", ColumnType::kVarchar, 8)
          .Col("c_since", ColumnType::kDate, 4000)
          .Col("c_city", ColumnType::kVarchar, 2000)
          .PrimaryKey({"c_id"})
          .Idx("customer_pk", {"c_id"}, true)
          .Idx("customer_region", {"c_region_id", "c_id"})
          .HashPartition({"c_id"})
          .Build());
  add(TableBuilder("calendar", 3650)
          .Col("d_date", ColumnType::kDate, 3650)
          .Col("d_month", ColumnType::kInt, 120)
          .Col("d_quarter", ColumnType::kInt, 40)
          .Col("d_year", ColumnType::kInt, 10)
          .Col("d_weekday", ColumnType::kInt, 7)
          .PrimaryKey({"d_date"})
          .Idx("calendar_pk", {"d_date"}, true)
          .Replicate()
          .Build());
  add(TableBuilder("promotion", 5000)
          .Col("pr_id", ColumnType::kInt, 5000)
          .Col("pr_product_id", ColumnType::kInt, 4500)
          .Col("pr_start", ColumnType::kDate, 1200)
          .Col("pr_type", ColumnType::kVarchar, 12)
          .PrimaryKey({"pr_id"})
          .Idx("promotion_pk", {"pr_id"}, true)
          .Fk({"pr_product_id"}, "product", {"p_id"})
          .Replicate()
          .Build());
  add(TableBuilder("warehouse", 200)
          .Col("w_id", ColumnType::kInt, 200)
          .Col("w_region_id", ColumnType::kInt, 50)
          .Col("w_capacity", ColumnType::kInt, 150)
          .PrimaryKey({"w_id"})
          .Idx("warehouse_pk", {"w_id"}, true)
          .Replicate()
          .Build());

  // Facts.
  add(TableBuilder("sales", 10000000)
          .Col("sl_id", ColumnType::kBigInt, 10000000)
          .Col("sl_store_id", ColumnType::kInt, 1000)
          .Col("sl_product_id", ColumnType::kInt, 200000)
          .Col("sl_customer_id", ColumnType::kInt, 500000)
          .Col("sl_date", ColumnType::kDate, 3650)
          .Col("sl_promo_id", ColumnType::kInt, 5000)
          .Col("sl_qty", ColumnType::kInt, 100)
          .Col("sl_amount", ColumnType::kDecimal, 100000)
          .PrimaryKey({"sl_id"})
          .Idx("sales_pk", {"sl_id"}, true)
          .Idx("sales_prod_date", {"sl_product_id", "sl_date"})
          .Idx("sales_cust", {"sl_customer_id"})
          .Fk({"sl_store_id"}, "store", {"s_id"})
          .Fk({"sl_product_id"}, "product", {"p_id"})
          .Fk({"sl_customer_id"}, "customer", {"c_id"})
          .Fk({"sl_date"}, "calendar", {"d_date"})
          .Fk({"sl_promo_id"}, "promotion", {"pr_id"})
          .HashPartition({"sl_product_id"})
          .Build());
  add(TableBuilder("inventory", 4000000)
          .Col("inv_warehouse_id", ColumnType::kInt, 200)
          .Col("inv_product_id", ColumnType::kInt, 200000)
          .Col("inv_date", ColumnType::kDate, 3650)
          .Col("inv_qty", ColumnType::kInt, 1000)
          .Idx("inventory_prod", {"inv_product_id", "inv_date"})
          .Fk({"inv_warehouse_id"}, "warehouse", {"w_id"})
          .Fk({"inv_product_id"}, "product", {"p_id"})
          .Fk({"inv_date"}, "calendar", {"d_date"})
          .HashPartition({"inv_product_id"})
          .Build());
  add(TableBuilder("shipments", 2000000)
          .Col("sh_id", ColumnType::kBigInt, 2000000)
          .Col("sh_warehouse_id", ColumnType::kInt, 200)
          .Col("sh_store_id", ColumnType::kInt, 1000)
          .Col("sh_product_id", ColumnType::kInt, 200000)
          .Col("sh_date", ColumnType::kDate, 3650)
          .Col("sh_qty", ColumnType::kInt, 500)
          .PrimaryKey({"sh_id"})
          .Idx("shipments_pk", {"sh_id"}, true)
          .Fk({"sh_warehouse_id"}, "warehouse", {"w_id"})
          .Fk({"sh_store_id"}, "store", {"s_id"})
          .Fk({"sh_product_id"}, "product", {"p_id"})
          .Fk({"sh_date"}, "calendar", {"d_date"})
          .HashPartition({"sh_product_id"})
          .Build());
  add(TableBuilder("returns", 500000)
          .Col("rt_id", ColumnType::kBigInt, 500000)
          .Col("rt_sale_id", ColumnType::kBigInt, 480000)
          .Col("rt_product_id", ColumnType::kInt, 150000)
          .Col("rt_customer_id", ColumnType::kInt, 200000)
          .Col("rt_date", ColumnType::kDate, 3650)
          .Col("rt_reason", ColumnType::kVarchar, 25)
          .PrimaryKey({"rt_id"})
          .Idx("returns_pk", {"rt_id"}, true)
          .Fk({"rt_sale_id"}, "sales", {"sl_id"})
          .Fk({"rt_product_id"}, "product", {"p_id"})
          .Fk({"rt_customer_id"}, "customer", {"c_id"})
          .HashPartition({"rt_product_id"})
          .Build());
  return catalog;
}

std::shared_ptr<Catalog> MakeTpchCatalog() {
  auto catalog = std::make_shared<Catalog>();
  auto add = [&catalog](Table t) {
    Status s = catalog->AddTable(std::move(t));
    assert(s.ok());
    (void)s;
  };
  add(TableBuilder("region", 5)
          .Col("r_regionkey", ColumnType::kInt, 5)
          .Col("r_name", ColumnType::kVarchar, 5)
          .PrimaryKey({"r_regionkey"})
          .Idx("region_pk", {"r_regionkey"}, true)
          .Replicate()
          .Build());
  add(TableBuilder("nation", 25)
          .Col("n_nationkey", ColumnType::kInt, 25)
          .Col("n_name", ColumnType::kVarchar, 25)
          .Col("n_regionkey", ColumnType::kInt, 5)
          .PrimaryKey({"n_nationkey"})
          .Idx("nation_pk", {"n_nationkey"}, true)
          .Fk({"n_regionkey"}, "region", {"r_regionkey"})
          .Replicate()
          .Build());
  add(TableBuilder("supplier", 10000)
          .Col("s_suppkey", ColumnType::kInt, 10000)
          .Col("s_nationkey", ColumnType::kInt, 25)
          .Col("s_name", ColumnType::kVarchar, 10000)
          .Col("s_acctbal", ColumnType::kDecimal, 9000)
          .Col("s_address", ColumnType::kVarchar, 10000)
          .Col("s_phone", ColumnType::kVarchar, 10000)
          .Col("s_comment", ColumnType::kVarchar, 9900)
          .PrimaryKey({"s_suppkey"})
          .Idx("supplier_pk", {"s_suppkey"}, true)
          .Fk({"s_nationkey"}, "nation", {"n_nationkey"})
          .HashPartition({"s_suppkey"})
          .Build());
  add(TableBuilder("customer", 150000)
          .Col("c_custkey", ColumnType::kInt, 150000)
          .Col("c_nationkey", ColumnType::kInt, 25)
          .Col("c_mktsegment", ColumnType::kVarchar, 5)
          .Col("c_acctbal", ColumnType::kDecimal, 140000)
          .Col("c_name", ColumnType::kVarchar, 150000)
          .Col("c_address", ColumnType::kVarchar, 150000)
          .Col("c_phone", ColumnType::kVarchar, 150000)
          .PrimaryKey({"c_custkey"})
          .Idx("customer_pk", {"c_custkey"}, true)
          .Fk({"c_nationkey"}, "nation", {"n_nationkey"})
          .HashPartition({"c_custkey"})
          .Build());
  add(TableBuilder("part", 200000)
          .Col("p_partkey", ColumnType::kInt, 200000)
          .Col("p_type", ColumnType::kVarchar, 150)
          .Col("p_size", ColumnType::kInt, 50)
          .Col("p_brand", ColumnType::kVarchar, 25)
          .Col("p_mfgr", ColumnType::kVarchar, 5)
          .Col("p_name", ColumnType::kVarchar, 199000)
          .Col("p_container", ColumnType::kVarchar, 40)
          .Col("p_retailprice", ColumnType::kDecimal, 20000)
          .PrimaryKey({"p_partkey"})
          .Idx("part_pk", {"p_partkey"}, true)
          .HashPartition({"p_partkey"})
          .Build());
  add(TableBuilder("partsupp", 800000)
          .Col("ps_partkey", ColumnType::kInt, 200000)
          .Col("ps_suppkey", ColumnType::kInt, 10000)
          .Col("ps_supplycost", ColumnType::kDecimal, 100000)
          .Col("ps_availqty", ColumnType::kInt, 10000)
          .Idx("partsupp_pk", {"ps_partkey", "ps_suppkey"}, true)
          .Fk({"ps_partkey"}, "part", {"p_partkey"})
          .Fk({"ps_suppkey"}, "supplier", {"s_suppkey"})
          .HashPartition({"ps_partkey"})
          .Build());
  add(TableBuilder("orders", 1500000)
          .Col("o_orderkey", ColumnType::kBigInt, 1500000)
          .Col("o_custkey", ColumnType::kInt, 100000)
          .Col("o_orderdate", ColumnType::kDate, 2400)
          .Col("o_orderstatus", ColumnType::kVarchar, 3)
          .Col("o_orderpriority", ColumnType::kVarchar, 5)
          .Col("o_totalprice", ColumnType::kDecimal, 1400000)
          .Col("o_shippriority", ColumnType::kInt, 3)
          .Col("o_clerk", ColumnType::kVarchar, 1000)
          .PrimaryKey({"o_orderkey"})
          .Idx("orders_pk", {"o_orderkey"}, true)
          .Idx("orders_cust", {"o_custkey", "o_orderdate"})
          .Fk({"o_custkey"}, "customer", {"c_custkey"})
          .HashPartition({"o_orderkey"})
          .Build());
  add(TableBuilder("lineitem", 6000000)
          .Col("l_orderkey", ColumnType::kBigInt, 1500000)
          .Col("l_partkey", ColumnType::kInt, 200000)
          .Col("l_suppkey", ColumnType::kInt, 10000)
          .Col("l_shipdate", ColumnType::kDate, 2500)
          .Col("l_receiptdate", ColumnType::kDate, 2550)
          .Col("l_commitdate", ColumnType::kDate, 2450)
          .Col("l_quantity", ColumnType::kInt, 50)
          .Col("l_extendedprice", ColumnType::kDecimal, 900000)
          .Col("l_returnflag", ColumnType::kVarchar, 3)
          .Col("l_linestatus", ColumnType::kVarchar, 2)
          .Col("l_discount", ColumnType::kDecimal, 11)
          .Col("l_tax", ColumnType::kDecimal, 9)
          .Col("l_shipmode", ColumnType::kVarchar, 7)
          .Col("l_shipinstruct", ColumnType::kVarchar, 4)
          .Idx("lineitem_order", {"l_orderkey"})
          .Idx("lineitem_part", {"l_partkey", "l_suppkey"})
          .Fk({"l_orderkey"}, "orders", {"o_orderkey"})
          .Fk({"l_partkey", "l_suppkey"}, "partsupp",
              {"ps_partkey", "ps_suppkey"})
          .HashPartition({"l_orderkey"})
          .Build());
  return catalog;
}

}  // namespace cote
