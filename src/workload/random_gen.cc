#include <cassert>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/str_util.h"
#include "query/query_builder.h"
#include "workload/workload.h"

namespace cote {

namespace {

struct ChosenRef {
  const Table* table;
  std::string alias;
};

/// FK edge between a chosen ref and a (possibly new) table.
struct FkEdge {
  const Table* from;     // table holding the FK
  const Table* to;       // referenced table
  std::vector<int> from_cols;
  std::vector<std::string> to_cols;
};

std::vector<FkEdge> FkEdgesTouching(const Catalog& catalog,
                                    const Table* table) {
  std::vector<FkEdge> edges;
  for (const ForeignKey& fk : table->foreign_keys()) {
    const Table* ref = catalog.FindTable(fk.referenced_table);
    if (ref != nullptr) {
      edges.push_back(FkEdge{table, ref, fk.columns, fk.referenced_columns});
    }
  }
  for (const auto& other : catalog.tables()) {
    if (other.get() == table) continue;
    for (const ForeignKey& fk : other->foreign_keys()) {
      if (fk.referenced_table == table->name()) {
        edges.push_back(
            FkEdge{other.get(), table, fk.columns, fk.referenced_columns});
      }
    }
  }
  return edges;
}

}  // namespace

Workload RandomWorkload(int num_queries, uint64_t seed) {
  Workload w;
  w.name = "random";
  w.catalog = MakeRetailCatalog();
  Rng rng(seed);

  // Mirrors the DB2 robustness tool (§5): grow a query by repeatedly
  // merging in another table, preferring FK->PK joins; occasionally add a
  // second predicate between already-joined tables (cycles); sprinkle
  // local predicates, GROUP BY and ORDER BY.
  for (int q = 0; q < num_queries; ++q) {
    int target_tables = 4 + static_cast<int>(rng.Uniform(8));  // 4..11
    QueryBuilder qb(*w.catalog);
    std::vector<ChosenRef> refs;

    // Seed with a fact table so FK edges are plentiful.
    const char* kFacts[] = {"sales", "inventory", "shipments", "returns"};
    const Table* seed_table =
        w.catalog->FindTable(kFacts[rng.Uniform(4)]);
    refs.push_back(ChosenRef{seed_table, "q0"});
    qb.AddTable(seed_table->name(), "q0");

    int next_alias = 1;
    int guard = 0;
    while (static_cast<int>(refs.size()) < target_tables && guard++ < 100) {
      // Copy: push_back below reallocates `refs`.
      const ChosenRef anchor = refs[rng.Uniform(refs.size())];
      std::vector<FkEdge> edges = FkEdgesTouching(*w.catalog, anchor.table);
      if (edges.empty()) continue;
      const FkEdge& e = edges[rng.Uniform(edges.size())];
      const Table* other = e.from == anchor.table ? e.to : e.from;

      std::string alias = StrFormat("q%d", next_alias++);
      qb.AddTable(other->name(), alias);
      refs.push_back(ChosenRef{other, alias});

      const std::string& from_alias =
          e.from == anchor.table ? anchor.alias : alias;
      const std::string& to_alias =
          e.from == anchor.table ? alias : anchor.alias;
      for (size_t i = 0; i < e.from_cols.size(); ++i) {
        qb.Join(from_alias, e.from->column(e.from_cols[i]).name, to_alias,
                e.to_cols[i]);
      }
    }

    // Extra predicate between two already-present refs (cycle) with
    // probability ~1/2: mimics query merging.
    if (refs.size() >= 3 && rng.Bernoulli(0.5)) {
      const ChosenRef a = refs[rng.Uniform(refs.size())];
      auto add_cycle_edge = [&]() {
        for (const FkEdge& e : FkEdgesTouching(*w.catalog, a.table)) {
          const Table* other = e.from == a.table ? e.to : e.from;
          for (const ChosenRef& b : refs) {
            if (b.table == other && b.alias != a.alias) {
              const std::string& fa = e.from == a.table ? a.alias : b.alias;
              const std::string& ta = e.from == a.table ? b.alias : a.alias;
              qb.Join(fa, e.from->column(e.from_cols[0]).name, ta,
                      e.to_cols[0]);
              return;
            }
          }
        }
      };
      add_cycle_edge();
    }

    // Local predicates (0..3), mild selectivities so cardinalities stay
    // non-degenerate.
    int num_local = static_cast<int>(rng.Uniform(4));
    for (int i = 0; i < num_local; ++i) {
      const ChosenRef& r = refs[rng.Uniform(refs.size())];
      int col = static_cast<int>(rng.Uniform(r.table->num_columns()));
      qb.Local(r.alias, r.table->column(col).name, LocalOp::kRange,
               0.1 + 0.4 * rng.NextDouble());
    }

    // GROUP BY (0..3 columns) and ORDER BY (0..2).
    int num_group = static_cast<int>(rng.Uniform(4));
    std::vector<std::pair<std::string, std::string>> gb;
    for (int i = 0; i < num_group; ++i) {
      const ChosenRef& r = refs[rng.Uniform(refs.size())];
      int col = static_cast<int>(rng.Uniform(r.table->num_columns()));
      gb.emplace_back(r.alias, r.table->column(col).name);
    }
    if (!gb.empty()) qb.GroupBy(gb);
    int num_order = static_cast<int>(rng.Uniform(3));
    std::vector<std::pair<std::string, std::string>> ob;
    for (int i = 0; i < num_order; ++i) {
      const ChosenRef& r = refs[rng.Uniform(refs.size())];
      int col = static_cast<int>(rng.Uniform(r.table->num_columns()));
      ob.emplace_back(r.alias, r.table->column(col).name);
    }
    if (!ob.empty()) qb.OrderBy(ob);

    qb.WithTransitiveClosure();
    auto graph = qb.Build();
    assert(graph.ok());
    w.queries.push_back(std::move(graph).value());
    w.labels.push_back(StrFormat("rnd%02d/%dt", q,
                                 w.queries.back().num_tables()));
  }
  return w;
}

}  // namespace cote
