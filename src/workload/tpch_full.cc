// The full TPC-H suite as single-block join cores (plus uncorrelated
// scalar-subquery blocks where the original query has one). The paper's
// evaluation uses only the 7 longest-compiling queries (TpchWorkload());
// the full 22 are provided as a library asset and integration surface.
//
// Faithfulness notes: correlated subqueries are rendered as uncorrelated
// scalar subqueries (their block is compiled separately, which is what
// the compilation-time framework needs, §3.3); EXISTS/NOT EXISTS and OR
// disjunctions are approximated by the equivalent join core with
// conjunctive filters; aggregates in ORDER BY are dropped (ordering does
// not change the join search space).

#include <cassert>

#include "common/str_util.h"
#include "parser/binder.h"
#include "workload/workload.h"

namespace cote {

namespace {

void AddSql(Workload* w, const std::string& label, const std::string& sql) {
  auto graph = Binder::BindSql(*w->catalog, sql);
  if (!graph.ok()) {
    std::fprintf(stderr, "workload %s query %s failed to bind: %s\n",
                 w->name.c_str(), label.c_str(),
                 graph.status().ToString().c_str());
    std::abort();
  }
  w->queries.push_back(std::move(graph).value());
  w->labels.push_back(label);
}

}  // namespace

Workload TpchFullWorkload() {
  Workload w;
  w.name = "tpch_full";
  w.catalog = MakeTpchCatalog();

  AddSql(&w, "Q01", R"(
    SELECT l.l_returnflag, l.l_linestatus, SUM(l.l_quantity),
           SUM(l.l_extendedprice), AVG(l.l_discount), COUNT(*)
    FROM lineitem l
    WHERE l.l_shipdate <= DATE '1998-09-02'
    GROUP BY l.l_returnflag, l.l_linestatus
    ORDER BY l.l_returnflag, l.l_linestatus)");

  AddSql(&w, "Q02", R"(
    SELECT s.s_acctbal, s.s_name, n.n_name, p.p_partkey, p.p_mfgr,
           s.s_address, s.s_phone, s.s_comment
    FROM part p, supplier s, partsupp ps, nation n, region r
    WHERE p.p_partkey = ps.ps_partkey AND s.s_suppkey = ps.ps_suppkey
      AND p.p_size = 15 AND p.p_type LIKE '%BRASS'
      AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
      AND r.r_name = 'EUROPE'
      AND ps.ps_supplycost =
          (SELECT MIN(ps2.ps_supplycost)
           FROM partsupp ps2, supplier s2, nation n2, region r2
           WHERE s2.s_suppkey = ps2.ps_suppkey
             AND s2.s_nationkey = n2.n_nationkey
             AND n2.n_regionkey = r2.r_regionkey AND r2.r_name = 'EUROPE')
    ORDER BY s.s_acctbal DESC, n.n_name, s.s_name, p.p_partkey
    FETCH FIRST 100 ROWS ONLY)");

  AddSql(&w, "Q03", R"(
    SELECT l.l_orderkey, SUM(l.l_extendedprice), o.o_orderdate,
           o.o_shippriority
    FROM customer c, orders o, lineitem l
    WHERE c.c_mktsegment = 'BUILDING' AND c.c_custkey = o.o_custkey
      AND l.l_orderkey = o.o_orderkey
      AND o.o_orderdate < DATE '1995-03-15'
      AND l.l_shipdate > DATE '1995-03-15'
    GROUP BY l.l_orderkey, o.o_orderdate, o.o_shippriority
    ORDER BY o.o_orderdate
    FETCH FIRST 10 ROWS ONLY)");

  AddSql(&w, "Q04", R"(
    SELECT o.o_orderpriority, COUNT(*)
    FROM orders o, lineitem l
    WHERE o.o_orderkey = l.l_orderkey
      AND o.o_orderdate >= DATE '1993-07-01'
      AND o.o_orderdate < DATE '1993-10-01'
      AND l.l_commitdate < DATE '1993-09-15'
    GROUP BY o.o_orderpriority ORDER BY o.o_orderpriority)");

  AddSql(&w, "Q05", R"(
    SELECT n.n_name, SUM(l.l_extendedprice)
    FROM customer c, orders o, lineitem l, supplier s, nation n, region r
    WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
      AND l.l_suppkey = s.s_suppkey AND c.c_nationkey = s.s_nationkey
      AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
      AND r.r_name = 'ASIA'
      AND o.o_orderdate >= DATE '1994-01-01'
      AND o.o_orderdate < DATE '1995-01-01'
    GROUP BY n.n_name ORDER BY n.n_name)");

  AddSql(&w, "Q06", R"(
    SELECT SUM(l.l_extendedprice)
    FROM lineitem l
    WHERE l.l_shipdate >= DATE '1994-01-01'
      AND l.l_shipdate < DATE '1995-01-01'
      AND l.l_discount BETWEEN 5 AND 7 AND l.l_quantity < 24)");

  AddSql(&w, "Q07", R"(
    SELECT n1.n_name, n2.n_name, SUM(l.l_extendedprice)
    FROM supplier s, lineitem l, orders o, customer c,
         nation n1, nation n2
    WHERE s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey
      AND c.c_custkey = o.o_custkey AND s.s_nationkey = n1.n_nationkey
      AND c.c_nationkey = n2.n_nationkey
      AND l.l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
    GROUP BY n1.n_name, n2.n_name, l.l_shipdate
    ORDER BY n1.n_name, n2.n_name)");

  AddSql(&w, "Q08", R"(
    SELECT o.o_orderdate, SUM(l.l_extendedprice)
    FROM part p, supplier s, lineitem l, orders o, customer c,
         nation n1, nation n2, region r
    WHERE p.p_partkey = l.l_partkey AND s.s_suppkey = l.l_suppkey
      AND l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey
      AND c.c_nationkey = n1.n_nationkey AND n1.n_regionkey = r.r_regionkey
      AND s.s_nationkey = n2.n_nationkey AND r.r_name = 'AMERICA'
      AND o.o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
      AND p.p_type = 'ECONOMY ANODIZED STEEL'
    GROUP BY o.o_orderdate ORDER BY o.o_orderdate)");

  AddSql(&w, "Q09", R"(
    SELECT n.n_name, o.o_orderdate, SUM(l.l_extendedprice)
    FROM part p, supplier s, lineitem l, partsupp ps, orders o, nation n
    WHERE s.s_suppkey = l.l_suppkey AND ps.ps_suppkey = l.l_suppkey
      AND ps.ps_partkey = l.l_partkey AND p.p_partkey = l.l_partkey
      AND o.o_orderkey = l.l_orderkey AND s.s_nationkey = n.n_nationkey
      AND p.p_name LIKE '%green%'
    GROUP BY n.n_name, o.o_orderdate ORDER BY n.n_name)");

  AddSql(&w, "Q10", R"(
    SELECT c.c_custkey, c.c_name, SUM(l.l_extendedprice), c.c_acctbal,
           n.n_name, c.c_address, c.c_phone
    FROM customer c, orders o, lineitem l, nation n
    WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
      AND c.c_nationkey = n.n_nationkey
      AND o.o_orderdate >= DATE '1993-10-01'
      AND o.o_orderdate < DATE '1994-01-01'
      AND l.l_returnflag = 'R'
    GROUP BY c.c_custkey, c.c_name, c.c_acctbal, c.c_phone, n.n_name,
             c.c_address
    ORDER BY c.c_custkey FETCH FIRST 20 ROWS ONLY)");

  AddSql(&w, "Q11", R"(
    SELECT ps.ps_partkey, SUM(ps.ps_supplycost)
    FROM partsupp ps, supplier s, nation n
    WHERE ps.ps_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey
      AND n.n_name = 'GERMANY'
      AND ps.ps_supplycost >
          (SELECT AVG(ps2.ps_supplycost)
           FROM partsupp ps2, supplier s2, nation n2
           WHERE ps2.ps_suppkey = s2.s_suppkey
             AND s2.s_nationkey = n2.n_nationkey
             AND n2.n_name = 'GERMANY')
    GROUP BY ps.ps_partkey)");

  AddSql(&w, "Q12", R"(
    SELECT l.l_shipmode, COUNT(*)
    FROM orders o, lineitem l
    WHERE o.o_orderkey = l.l_orderkey
      AND l.l_shipmode = 'MAIL'
      AND l.l_commitdate < DATE '1994-06-30'
      AND l.l_shipdate < DATE '1994-06-01'
      AND l.l_receiptdate >= DATE '1994-01-01'
      AND l.l_receiptdate < DATE '1995-01-01'
    GROUP BY l.l_shipmode ORDER BY l.l_shipmode)");

  AddSql(&w, "Q13", R"(
    SELECT c.c_custkey, COUNT(*)
    FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey
    WHERE o.o_clerk LIKE '%special%'
    GROUP BY c.c_custkey)");

  AddSql(&w, "Q14", R"(
    SELECT SUM(l.l_extendedprice)
    FROM lineitem l, part p
    WHERE l.l_partkey = p.p_partkey
      AND l.l_shipdate >= DATE '1995-09-01'
      AND l.l_shipdate < DATE '1995-10-01'
      AND p.p_type LIKE 'PROMO%')");

  AddSql(&w, "Q15", R"(
    SELECT s.s_suppkey, s.s_name, s.s_address, s.s_phone,
           SUM(l.l_extendedprice)
    FROM supplier s, lineitem l
    WHERE s.s_suppkey = l.l_suppkey
      AND l.l_shipdate >= DATE '1996-01-01'
      AND l.l_shipdate < DATE '1996-04-01'
    GROUP BY s.s_suppkey, s.s_name, s.s_address, s.s_phone
    ORDER BY s.s_suppkey)");

  AddSql(&w, "Q16", R"(
    SELECT p.p_brand, p.p_type, p.p_size, COUNT(*)
    FROM partsupp ps, part p
    WHERE p.p_partkey = ps.ps_partkey
      AND p.p_brand <> 'Brand#45' AND p.p_type LIKE 'MEDIUM POLISHED%'
      AND p.p_size BETWEEN 1 AND 15
    GROUP BY p.p_brand, p.p_type, p.p_size
    ORDER BY p.p_brand, p.p_type, p.p_size)");

  AddSql(&w, "Q17", R"(
    SELECT SUM(l.l_extendedprice)
    FROM lineitem l, part p
    WHERE p.p_partkey = l.l_partkey
      AND p.p_brand = 'Brand#23' AND p.p_container = 'MED BOX'
      AND l.l_quantity <
          (SELECT AVG(l2.l_quantity) FROM lineitem l2, part p2
           WHERE p2.p_partkey = l2.l_partkey AND p2.p_brand = 'Brand#23'))");

  AddSql(&w, "Q18", R"(
    SELECT c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate,
           o.o_totalprice, SUM(l.l_quantity)
    FROM customer c, orders o, lineitem l
    WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey
      AND l.l_quantity > 45
    GROUP BY c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate,
             o.o_totalprice
    ORDER BY o.o_orderdate FETCH FIRST 100 ROWS ONLY)");

  AddSql(&w, "Q19", R"(
    SELECT SUM(l.l_extendedprice)
    FROM lineitem l, part p
    WHERE p.p_partkey = l.l_partkey
      AND p.p_brand = 'Brand#12' AND p.p_container = 'SM CASE'
      AND l.l_quantity BETWEEN 1 AND 11 AND p.p_size BETWEEN 1 AND 5
      AND l.l_shipinstruct = 'DELIVER IN PERSON')");

  AddSql(&w, "Q20", R"(
    SELECT s.s_name, s.s_address
    FROM supplier s, nation n
    WHERE s.s_nationkey = n.n_nationkey AND n.n_name = 'CANADA'
      AND s.s_acctbal >
          (SELECT AVG(ps.ps_availqty)
           FROM partsupp ps, part p, lineitem l
           WHERE ps.ps_partkey = p.p_partkey
             AND l.l_partkey = ps.ps_partkey
             AND l.l_suppkey = ps.ps_suppkey
             AND p.p_name LIKE 'forest%'
             AND l.l_shipdate >= DATE '1994-01-01'
             AND l.l_shipdate < DATE '1995-01-01')
    ORDER BY s.s_name)");

  AddSql(&w, "Q21", R"(
    SELECT s.s_name, COUNT(*)
    FROM supplier s, lineitem l1, orders o, nation n,
         lineitem l2, lineitem l3
    WHERE s.s_suppkey = l1.l_suppkey AND o.o_orderkey = l1.l_orderkey
      AND o.o_orderstatus = 'F' AND s.s_nationkey = n.n_nationkey
      AND l2.l_orderkey = l1.l_orderkey AND l3.l_orderkey = l1.l_orderkey
      AND l1.l_receiptdate > DATE '1995-01-01'
      AND n.n_name = 'SAUDI ARABIA'
    GROUP BY s.s_name ORDER BY s.s_name FETCH FIRST 100 ROWS ONLY)");

  AddSql(&w, "Q22", R"(
    SELECT c.c_phone, COUNT(*), SUM(c.c_acctbal)
    FROM customer c
    WHERE c.c_acctbal >
          (SELECT AVG(c2.c_acctbal) FROM customer c2
           WHERE c2.c_acctbal > 0)
    GROUP BY c.c_phone)");

  return w;
}

}  // namespace cote
