#include <cassert>

#include "common/str_util.h"
#include "parser/binder.h"
#include "workload/workload.h"

namespace cote {

namespace {

/// Parses + binds one SQL query (with transitive closure, as commercial
/// systems derive implied predicates) and appends it to the workload.
void AddSql(Workload* w, const std::string& label, const std::string& sql) {
  auto graph = Binder::BindSql(*w->catalog, sql);
  if (!graph.ok()) {
    // Workload definitions are static; failing loudly at startup is the
    // correct behaviour for a malformed query.
    std::fprintf(stderr, "workload %s query %s failed to bind: %s\n",
                 w->name.c_str(), label.c_str(),
                 graph.status().ToString().c_str());
    std::abort();
  }
  w->queries.push_back(std::move(graph).value());
  w->labels.push_back(label);
}

}  // namespace

Workload Real1Workload() {
  Workload w;
  w.name = "real1";
  w.catalog = MakeRetailCatalog();

  AddSql(&w, "R1.1", R"(
    SELECT st.s_city, SUM(sl.sl_amount)
    FROM sales sl, store st, region r, calendar d
    WHERE sl.sl_store_id = st.s_id AND st.s_region_id = r.r_id
      AND sl.sl_date = d.d_date AND d.d_year = 2002
      AND r.r_country = 'US'
    GROUP BY st.s_city
    ORDER BY st.s_city)");

  AddSql(&w, "R1.2", R"(
    SELECT p.p_name, c.cat_name, SUM(sl.sl_qty)
    FROM sales sl, product p, category c, brand b, vendor v
    WHERE sl.sl_product_id = p.p_id AND p.p_category_id = c.cat_id
      AND p.p_brand_id = b.b_id AND b.b_vendor_id = v.v_id
      AND v.v_name LIKE 'Acme%'
      AND p.p_price BETWEEN 10 AND 100
    GROUP BY p.p_name, c.cat_name)");

  AddSql(&w, "R1.3", R"(
    SELECT cu.c_segment, d.d_quarter, SUM(sl.sl_amount), COUNT(*)
    FROM sales sl
         LEFT JOIN promotion pr ON sl.sl_promo_id = pr.pr_id,
         customer cu, calendar d, region r
    WHERE sl.sl_customer_id = cu.c_id AND sl.sl_date = d.d_date
      AND cu.c_region_id = r.r_id AND r.r_name = 'West'
      AND d.d_year >= 2001
    GROUP BY cu.c_segment, d.d_quarter
    ORDER BY cu.c_segment, d.d_quarter)");

  AddSql(&w, "R1.4", R"(
    SELECT wh.w_id, p.p_name, inv.inv_qty
    FROM inventory inv, warehouse wh, product p, category c, region r
    WHERE inv.inv_warehouse_id = wh.w_id AND inv.inv_product_id = p.p_id
      AND p.p_category_id = c.cat_id AND wh.w_region_id = r.r_id
      AND c.cat_dept = 'electronics' AND inv.inv_qty < 10
    ORDER BY wh.w_id, p.p_name)");

  AddSql(&w, "R1.5", R"(
    SELECT st.s_city, wh.w_id, SUM(sh.sh_qty)
    FROM shipments sh, warehouse wh, store st, product p, calendar d,
         region r1, region r2
    WHERE sh.sh_warehouse_id = wh.w_id AND sh.sh_store_id = st.s_id
      AND sh.sh_product_id = p.p_id AND sh.sh_date = d.d_date
      AND wh.w_region_id = r1.r_id AND st.s_region_id = r2.r_id
      AND d.d_month BETWEEN 24 AND 36 AND p.p_price > 50
    GROUP BY st.s_city, wh.w_id)");

  AddSql(&w, "R1.6", R"(
    SELECT rt.rt_reason, p.p_name, COUNT(*)
    FROM returns rt, sales sl, product p, customer cu, calendar d
    WHERE rt.rt_sale_id = sl.sl_id AND rt.rt_product_id = p.p_id
      AND sl.sl_product_id = p.p_id AND rt.rt_customer_id = cu.c_id
      AND sl.sl_date = d.d_date AND d.d_year = 2002
      AND cu.c_segment = 'gold'
    GROUP BY rt.rt_reason, p.p_name
    ORDER BY rt.rt_reason)");

  AddSql(&w, "R1.7", R"(
    SELECT v.v_name, r.r_name, SUM(sl.sl_amount)
    FROM sales sl, product p, brand b, vendor v, region r, store st
    WHERE sl.sl_product_id = p.p_id AND p.p_brand_id = b.b_id
      AND b.b_vendor_id = v.v_id AND v.v_region_id = r.r_id
      AND sl.sl_store_id = st.s_id AND st.s_region_id = r.r_id
      AND sl.sl_amount > 1000
    GROUP BY v.v_name, r.r_name)");

  AddSql(&w, "R1.8", R"(
    SELECT d.d_year, c.cat_name, SUM(sl.sl_qty), SUM(inv.inv_qty)
    FROM sales sl, inventory inv, product p, category c, calendar d,
         warehouse wh
    WHERE sl.sl_product_id = p.p_id AND inv.inv_product_id = p.p_id
      AND p.p_category_id = c.cat_id AND sl.sl_date = d.d_date
      AND inv.inv_date = d.d_date AND inv.inv_warehouse_id = wh.w_id
      AND wh.w_capacity >= 50
    GROUP BY d.d_year, c.cat_name
    ORDER BY d.d_year)");

  return w;
}

Workload Real2Workload() {
  Workload w;
  w.name = "real2";
  w.catalog = MakeRetailCatalog();

  AddSql(&w, "R2.01", R"(
    SELECT st.s_id, SUM(sl.sl_amount)
    FROM sales sl, store st
    WHERE sl.sl_store_id = st.s_id AND st.s_size > 5
    GROUP BY st.s_id ORDER BY st.s_id)");

  AddSql(&w, "R2.02", R"(
    SELECT cu.c_city, d.d_month, SUM(sl.sl_amount)
    FROM sales sl, customer cu, calendar d
    WHERE sl.sl_customer_id = cu.c_id AND sl.sl_date = d.d_date
      AND cu.c_since >= DATE '2000-01-01'
    GROUP BY cu.c_city, d.d_month)");

  AddSql(&w, "R2.03", R"(
    SELECT p.p_name, b.b_name, v.v_name
    FROM product p, brand b, vendor v, category c
    WHERE p.p_brand_id = b.b_id AND b.b_vendor_id = v.v_id
      AND p.p_category_id = c.cat_id AND c.cat_dept = 'toys'
    ORDER BY p.p_name, b.b_name)");

  AddSql(&w, "R2.04", R"(
    SELECT r.r_name, d.d_quarter, SUM(sl.sl_qty), COUNT(*)
    FROM sales sl, store st, region r, calendar d, product p
    WHERE sl.sl_store_id = st.s_id AND st.s_region_id = r.r_id
      AND sl.sl_date = d.d_date AND sl.sl_product_id = p.p_id
      AND p.p_intro_date > DATE '2001-06-01' AND d.d_year = 2002
    GROUP BY r.r_name, d.d_quarter ORDER BY r.r_name)");

  AddSql(&w, "R2.05", R"(
    SELECT cu.c_segment, p.p_category_id, SUM(sl.sl_amount)
    FROM sales sl
         LEFT JOIN promotion pr ON sl.sl_promo_id = pr.pr_id,
         customer cu, product p
    WHERE sl.sl_customer_id = cu.c_id AND sl.sl_product_id = p.p_id
      AND pr.pr_type = 'coupon'
    GROUP BY cu.c_segment, p.p_category_id)");

  AddSql(&w, "R2.06", R"(
    SELECT wh.w_id, d.d_month, SUM(inv.inv_qty)
    FROM inventory inv, warehouse wh, calendar d, product p, category c
    WHERE inv.inv_warehouse_id = wh.w_id AND inv.inv_date = d.d_date
      AND inv.inv_product_id = p.p_id AND p.p_category_id = c.cat_id
      AND c.cat_name LIKE 'home%' AND d.d_year BETWEEN 2000 AND 2002
    GROUP BY wh.w_id, d.d_month ORDER BY wh.w_id, d.d_month)");

  AddSql(&w, "R2.07", R"(
    SELECT sh.sh_id, wh.w_id, st.s_city
    FROM shipments sh, warehouse wh, store st, region r
    WHERE sh.sh_warehouse_id = wh.w_id AND sh.sh_store_id = st.s_id
      AND wh.w_region_id = r.r_id AND st.s_region_id = r.r_id
      AND sh.sh_qty > 100
    ORDER BY sh.sh_id)");

  AddSql(&w, "R2.08", R"(
    SELECT p.p_name, SUM(rt.rt_id)
    FROM returns rt, product p, brand b
    WHERE rt.rt_product_id = p.p_id AND p.p_brand_id = b.b_id
      AND b.b_name LIKE 'North%'
    GROUP BY p.p_name)");

  // The paper calls out one query with 14 tables, 21 local predicates and
  // 9 GROUP BY columns overlapping the join columns; this is our stand-in.
  AddSql(&w, "R2.09", R"(
    SELECT r.r_name, st.s_region_id, cu.c_region_id, p.p_category_id,
           b.b_vendor_id, d.d_year, wh.w_region_id, c.cat_dept,
           pr.pr_type, SUM(sl.sl_amount), SUM(sh.sh_qty)
    FROM sales sl, store st, product p, customer cu, calendar d,
         promotion pr, category c, brand b, vendor v, region r,
         warehouse wh, inventory inv, shipments sh, returns rt
    WHERE sl.sl_store_id = st.s_id AND sl.sl_product_id = p.p_id
      AND sl.sl_customer_id = cu.c_id AND sl.sl_date = d.d_date
      AND sl.sl_promo_id = pr.pr_id AND p.p_category_id = c.cat_id
      AND p.p_brand_id = b.b_id AND b.b_vendor_id = v.v_id
      AND st.s_region_id = r.r_id AND cu.c_region_id = r.r_id
      AND v.v_region_id = r.r_id AND inv.inv_product_id = p.p_id
      AND inv.inv_warehouse_id = wh.w_id AND sh.sh_warehouse_id = wh.w_id
      AND sh.sh_store_id = st.s_id AND sh.sh_product_id = p.p_id
      AND rt.rt_sale_id = sl.sl_id AND rt.rt_product_id = p.p_id
      AND rt.rt_customer_id = cu.c_id
      AND st.s_size >= 3 AND st.s_open_date < DATE '2001-01-01'
      AND p.p_price BETWEEN 5 AND 500 AND p.p_intro_date > DATE '1999-01-01'
      AND cu.c_segment = 'gold' AND cu.c_since < DATE '2002-06-01'
      AND d.d_year BETWEEN 2000 AND 2002 AND d.d_weekday < 6
      AND pr.pr_type LIKE 'disc%' AND pr.pr_start >= DATE '2000-01-01'
      AND c.cat_dept = 'grocery' AND c.cat_name LIKE 'fresh%'
      AND b.b_name LIKE 'Best%' AND v.v_name LIKE 'Global%'
      AND r.r_country = 'US' AND wh.w_capacity > 20
      AND inv.inv_qty > 0 AND sh.sh_qty > 10
      AND rt.rt_reason LIKE 'damage%' AND sl.sl_qty < 50
      AND sl.sl_amount > 25
    GROUP BY r.r_name, st.s_region_id, cu.c_region_id, p.p_category_id,
             b.b_vendor_id, d.d_year, wh.w_region_id, c.cat_dept, pr.pr_type
    ORDER BY r.r_name, d.d_year)");

  AddSql(&w, "R2.10", R"(
    SELECT d.d_year, SUM(sl.sl_amount)
    FROM sales sl, calendar d, promotion pr
    WHERE sl.sl_date = d.d_date AND sl.sl_promo_id = pr.pr_id
      AND pr.pr_start BETWEEN DATE '2001-01-01' AND DATE '2001-12-31'
    GROUP BY d.d_year)");

  AddSql(&w, "R2.11", R"(
    SELECT cu.c_id, cu.c_city, SUM(sl.sl_amount)
    FROM sales sl, customer cu, region r, store st
    WHERE sl.sl_customer_id = cu.c_id AND cu.c_region_id = r.r_id
      AND sl.sl_store_id = st.s_id AND st.s_region_id = r.r_id
      AND r.r_country = 'CA'
    GROUP BY cu.c_id, cu.c_city ORDER BY cu.c_id)");

  AddSql(&w, "R2.12", R"(
    SELECT p.p_id, p.p_name, inv.inv_qty, sh.sh_qty
    FROM product p
         LEFT JOIN inventory inv ON inv.inv_product_id = p.p_id
         LEFT JOIN shipments sh ON sh.sh_product_id = p.p_id,
         category c
    WHERE p.p_category_id = c.cat_id AND c.cat_dept = 'sports'
    ORDER BY p.p_id)");

  AddSql(&w, "R2.13", R"(
    SELECT v.v_name, c.cat_name, d.d_quarter, SUM(sl.sl_qty)
    FROM sales sl, product p, category c, brand b, vendor v, calendar d
    WHERE sl.sl_product_id = p.p_id AND p.p_category_id = c.cat_id
      AND p.p_brand_id = b.b_id AND b.b_vendor_id = v.v_id
      AND sl.sl_date = d.d_date AND d.d_year >= 2001
    GROUP BY v.v_name, c.cat_name, d.d_quarter
    ORDER BY v.v_name, c.cat_name, d.d_quarter)");

  AddSql(&w, "R2.14", R"(
    SELECT st.s_id, st.s_city, COUNT(*)
    FROM shipments sh, store st, product p, brand b
    WHERE sh.sh_store_id = st.s_id AND sh.sh_product_id = p.p_id
      AND p.p_brand_id = b.b_id AND b.b_name = 'Summit'
      AND sh.sh_date >= DATE '2002-01-01'
    GROUP BY st.s_id, st.s_city)");

  AddSql(&w, "R2.15", R"(
    SELECT rt.rt_reason, cu.c_segment, d.d_month, COUNT(*)
    FROM returns rt, customer cu, calendar d, sales sl, store st
    WHERE rt.rt_customer_id = cu.c_id AND rt.rt_date = d.d_date
      AND rt.rt_sale_id = sl.sl_id AND sl.sl_store_id = st.s_id
      AND sl.sl_customer_id = cu.c_id AND st.s_size > 2
    GROUP BY rt.rt_reason, cu.c_segment, d.d_month)");

  AddSql(&w, "R2.16", R"(
    SELECT wh.w_id, r.r_name, SUM(inv.inv_qty), SUM(sh.sh_qty)
    FROM inventory inv, shipments sh, warehouse wh, region r, calendar d
    WHERE inv.inv_warehouse_id = wh.w_id AND sh.sh_warehouse_id = wh.w_id
      AND wh.w_region_id = r.r_id AND inv.inv_date = d.d_date
      AND sh.sh_date = d.d_date AND d.d_year = 2002
    GROUP BY wh.w_id, r.r_name ORDER BY wh.w_id)");

  AddSql(&w, "R2.17", R"(
    SELECT p.p_name, d.d_year, SUM(sl.sl_amount), SUM(rt.rt_id)
    FROM sales sl, returns rt, product p, calendar d, customer cu,
         category c
    WHERE rt.rt_sale_id = sl.sl_id AND sl.sl_product_id = p.p_id
      AND rt.rt_product_id = p.p_id AND sl.sl_date = d.d_date
      AND sl.sl_customer_id = cu.c_id AND rt.rt_customer_id = cu.c_id
      AND p.p_category_id = c.cat_id AND c.cat_dept = 'apparel'
    GROUP BY p.p_name, d.d_year ORDER BY p.p_name, d.d_year)");

  return w;
}

Workload TpchWorkload() {
  Workload w;
  w.name = "tpch";
  w.catalog = MakeTpchCatalog();

  // Join cores of the 7 longest-compiling TPC-H queries (subqueries are
  // flattened into the main block — our optimizer plans one block, as does
  // the paper's framework, §3.3).
  AddSql(&w, "Q2", R"(
    SELECT s.s_acctbal, s.s_name, p.p_partkey
    FROM part p, supplier s, partsupp ps, nation n, region r
    WHERE p.p_partkey = ps.ps_partkey AND s.s_suppkey = ps.ps_suppkey
      AND p.p_size = 15 AND p.p_type LIKE '%BRASS'
      AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
      AND r.r_name = 'EUROPE'
    ORDER BY s.s_acctbal, s.s_name, p.p_partkey)");

  AddSql(&w, "Q5", R"(
    SELECT n.n_name, SUM(l.l_extendedprice)
    FROM customer c, orders o, lineitem l, supplier s, nation n, region r
    WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
      AND l.l_suppkey = s.s_suppkey AND c.c_nationkey = s.s_nationkey
      AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
      AND r.r_name = 'ASIA'
      AND o.o_orderdate >= DATE '1994-01-01'
      AND o.o_orderdate < DATE '1995-01-01'
    GROUP BY n.n_name ORDER BY n.n_name)");

  AddSql(&w, "Q7", R"(
    SELECT n1.n_name, n2.n_name, SUM(l.l_extendedprice)
    FROM supplier s, lineitem l, orders o, customer c,
         nation n1, nation n2
    WHERE s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey
      AND c.c_custkey = o.o_custkey AND s.s_nationkey = n1.n_nationkey
      AND c.c_nationkey = n2.n_nationkey
      AND l.l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
    GROUP BY n1.n_name, n2.n_name, l.l_shipdate
    ORDER BY n1.n_name, n2.n_name)");

  AddSql(&w, "Q8", R"(
    SELECT o.o_orderdate, SUM(l.l_extendedprice)
    FROM part p, supplier s, lineitem l, orders o, customer c,
         nation n1, nation n2, region r
    WHERE p.p_partkey = l.l_partkey AND s.s_suppkey = l.l_suppkey
      AND l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey
      AND c.c_nationkey = n1.n_nationkey AND n1.n_regionkey = r.r_regionkey
      AND s.s_nationkey = n2.n_nationkey AND r.r_name = 'AMERICA'
      AND o.o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
      AND p.p_type = 'ECONOMY ANODIZED STEEL'
    GROUP BY o.o_orderdate ORDER BY o.o_orderdate)");

  AddSql(&w, "Q9", R"(
    SELECT n.n_name, o.o_orderdate, SUM(l.l_extendedprice)
    FROM part p, supplier s, lineitem l, partsupp ps, orders o, nation n
    WHERE s.s_suppkey = l.l_suppkey AND ps.ps_suppkey = l.l_suppkey
      AND ps.ps_partkey = l.l_partkey AND p.p_partkey = l.l_partkey
      AND o.o_orderkey = l.l_orderkey AND s.s_nationkey = n.n_nationkey
      AND p.p_type LIKE '%green%'
    GROUP BY n.n_name, o.o_orderdate ORDER BY n.n_name)");

  AddSql(&w, "Q10", R"(
    SELECT c.c_custkey, c.c_acctbal, n.n_name, SUM(l.l_extendedprice)
    FROM customer c, orders o, lineitem l, nation n
    WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
      AND c.c_nationkey = n.n_nationkey
      AND o.o_orderdate >= DATE '1993-10-01'
      AND o.o_orderdate < DATE '1994-01-01'
    GROUP BY c.c_custkey, c.c_acctbal, n.n_name
    ORDER BY c.c_custkey)");

  AddSql(&w, "Q21", R"(
    SELECT s.s_name, COUNT(*)
    FROM supplier s, lineitem l1, orders o, nation n,
         lineitem l2, lineitem l3
    WHERE s.s_suppkey = l1.l_suppkey AND o.o_orderkey = l1.l_orderkey
      AND o.o_orderstatus = 'F' AND s.s_nationkey = n.n_nationkey
      AND l2.l_orderkey = l1.l_orderkey AND l3.l_orderkey = l1.l_orderkey
      AND l1.l_receiptdate > DATE '1995-01-01'
      AND n.n_name = 'SAUDI ARABIA'
    GROUP BY s.s_name ORDER BY s.s_name)");

  return w;
}

}  // namespace cote
