#ifndef COTE_WORKLOAD_WORKLOAD_H_
#define COTE_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "query/query_graph.h"

namespace cote {

/// \brief A named set of bound queries over a shared catalog.
///
/// The catalog is owned via shared_ptr because every QueryGraph holds
/// Table* pointers into it.
struct Workload {
  std::string name;
  std::shared_ptr<Catalog> catalog;
  std::vector<QueryGraph> queries;
  /// One short label per query (e.g. "6t/3p" or "Q21").
  std::vector<std::string> labels;

  int size() const { return static_cast<int>(queries.size()); }
};

// ---- Catalogs --------------------------------------------------------------

/// Synthetic schema for the linear/star workloads: `num_tables` tables
/// T0..T{n-1}, each with 8 integer columns c0..c7, an index and hash
/// partitioning on c0, and row counts spread between 10K and 1M.
std::shared_ptr<Catalog> MakeSyntheticCatalog(int num_tables);

/// Physical-design variant of the synthetic schema, for the §5.4 policy
/// experiments: `indexes_per_table` indexes on c0, (c1), (c2,c0);
/// `partition_col` names the hash-partitioning column (joins use c0..c4,
/// so partitioning on "c5" means nothing is partitioned usefully).
std::shared_ptr<Catalog> MakeSyntheticCatalogEx(int num_tables,
                                                int indexes_per_table,
                                                const std::string& partition_col);

/// Retail data-warehouse schema (fact tables sales/inventory/shipments +
/// dimensions) used by the real1/real2/random workloads.
std::shared_ptr<Catalog> MakeRetailCatalog();

/// The TPC-H schema with SF-1 row counts.
std::shared_ptr<Catalog> MakeTpchCatalog();

// ---- Workloads (paper §5) ---------------------------------------------------

/// 15 linear (chain) queries: 3 batches of 5 joining 6/8/10 tables; within
/// a batch the number of join predicates per edge varies 1..5, and the
/// ORDER BY / GROUP BY widths vary, so queries share a join graph but
/// differ in interesting properties.
Workload LinearWorkload();

/// 15 star queries with the same batch structure (hub = T0).
Workload StarWorkload();

/// Extra shape: chains closed into cycles (transitive-closure-like graphs
/// where join counting has no closed formula).
Workload CyclicWorkload();

/// Randomly generated queries over the retail schema, merging simpler
/// queries and preferring FK->PK joins, as the DB2 robustness tool does.
Workload RandomWorkload(int num_queries = 13, uint64_t seed = 42);

/// 8 complex warehouse queries (simulated stand-in for the paper's first
/// customer workload), written in SQL and compiled through the parser.
Workload Real1Workload();

/// 17 complex warehouse queries (stand-in for the second customer
/// workload; includes a 14-table query with 21 local predicates and 9
/// GROUP BY columns, mirroring the paper's description).
Workload Real2Workload();

/// The 7 longest-compiling TPC-H queries (join cores of Q2, Q5, Q7, Q8,
/// Q9, Q10, Q21) — the subset the paper evaluates.
Workload TpchWorkload();

/// All 22 TPC-H queries as single-block join cores; correlated subqueries
/// are rendered as uncorrelated scalar-subquery blocks (see
/// src/workload/tpch_full.cc for the faithfulness notes).
Workload TpchFullWorkload();

/// Mixed training workload for calibrating the time model: a spread of
/// shapes and sizes disjoint from the evaluation queries.
Workload TrainingWorkload();

}  // namespace cote

#endif  // COTE_WORKLOAD_WORKLOAD_H_
