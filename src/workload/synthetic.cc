#include <cassert>

#include "common/str_util.h"
#include "query/query_builder.h"
#include "workload/workload.h"

namespace cote {

namespace {

/// Join-column names used for the k predicates of an edge: the first
/// predicate joins key columns (FK->PK-like), extras use the moderate-NDV
/// columns so selectivities stay sane when stacked.
const char* kJoinCols[] = {"c0", "c1", "c2", "c3", "c4"};

/// Adds `num_preds` predicates between aliases a and b.
void AddEdge(QueryBuilder* qb, const std::string& a, const std::string& b,
             int num_preds) {
  for (int p = 0; p < num_preds; ++p) {
    qb->Join(a, kJoinCols[p], b, kJoinCols[p]);
  }
}

/// ORDER BY / GROUP BY widths for query k (0-based) of a batch: the paper
/// varies both within each batch.
void AddInterest(QueryBuilder* qb, int k, int num_tables) {
  const char* kSortCols[] = {"c5", "c6", "c7"};
  int order_cols = k % 3;            // 0..2 ORDER BY columns
  int group_cols = (k + 1) % 3;      // 0..2 GROUP BY columns
  std::vector<std::pair<std::string, std::string>> ob, gb;
  for (int i = 0; i < order_cols; ++i) {
    ob.emplace_back(StrFormat("t%d", i % num_tables), kSortCols[i]);
  }
  for (int i = 0; i < group_cols; ++i) {
    gb.emplace_back(StrFormat("t%d", (i + 1) % num_tables), kSortCols[i]);
  }
  if (!ob.empty()) qb->OrderBy(ob);
  if (!gb.empty()) qb->GroupBy(gb);
}

Workload MakeShapeWorkload(const std::string& name, bool star) {
  Workload w;
  w.name = name;
  w.catalog = MakeSyntheticCatalog(10);
  // Three batches of five queries: 6, 8, 10 tables; within a batch the
  // number of join predicates per edge varies 1..5 (§5, Synthetic
  // Workloads). The join graph is identical within a batch — only the
  // physical properties differ.
  for (int num_tables : {6, 8, 10}) {
    for (int k = 1; k <= 5; ++k) {
      QueryBuilder qb(*w.catalog);
      for (int t = 0; t < num_tables; ++t) {
        qb.AddTable(StrFormat("T%d", t), StrFormat("t%d", t));
      }
      if (star) {
        for (int t = 1; t < num_tables; ++t) AddEdge(&qb, "t0", StrFormat("t%d", t), k);
      } else {
        for (int t = 0; t + 1 < num_tables; ++t) {
          AddEdge(&qb, StrFormat("t%d", t), StrFormat("t%d", t + 1), k);
        }
      }
      AddInterest(&qb, k - 1, num_tables);
      auto graph = qb.Build();
      assert(graph.ok());
      w.queries.push_back(std::move(graph).value());
      w.labels.push_back(StrFormat("%dt/%dp", num_tables, k));
    }
  }
  return w;
}

}  // namespace

Workload LinearWorkload() { return MakeShapeWorkload("linear", /*star=*/false); }

Workload StarWorkload() { return MakeShapeWorkload("star", /*star=*/true); }

Workload CyclicWorkload() {
  Workload w;
  w.name = "cyclic";
  w.catalog = MakeSyntheticCatalog(10);
  // Chains closed into a cycle, plus one chord for the larger sizes: join
  // graphs where analytic join counting is infeasible (§2.2).
  for (int num_tables : {5, 6, 7, 8}) {
    for (int k = 1; k <= 2; ++k) {
      QueryBuilder qb(*w.catalog);
      for (int t = 0; t < num_tables; ++t) {
        qb.AddTable(StrFormat("T%d", t), StrFormat("t%d", t));
      }
      for (int t = 0; t < num_tables; ++t) {
        AddEdge(&qb, StrFormat("t%d", t), StrFormat("t%d", (t + 1) % num_tables), k);
      }
      if (num_tables >= 7) AddEdge(&qb, "t0", StrFormat("t%d", num_tables / 2), 1);
      AddInterest(&qb, k, num_tables);
      auto graph = qb.Build();
      assert(graph.ok());
      w.queries.push_back(std::move(graph).value());
      w.labels.push_back(StrFormat("%dt/%dp cycle", num_tables, k));
    }
  }
  return w;
}

Workload TrainingWorkload() {
  Workload w;
  w.name = "training";
  w.catalog = MakeSyntheticCatalog(10);
  // A spread of shapes/sizes for regression: chains, stars and cycles of
  // 3..9 tables with varying predicate and interest widths — deliberately
  // different parameters from the evaluation batches.
  int qnum = 0;
  for (int num_tables = 3; num_tables <= 9; ++num_tables) {
    for (int shape = 0; shape < 3; ++shape) {
      int k = 1 + (qnum % 4);
      QueryBuilder qb(*w.catalog);
      for (int t = 0; t < num_tables; ++t) {
        qb.AddTable(StrFormat("T%d", t), StrFormat("t%d", t));
      }
      if (shape == 0) {
        for (int t = 0; t + 1 < num_tables; ++t) {
          AddEdge(&qb, StrFormat("t%d", t), StrFormat("t%d", t + 1), k);
        }
      } else if (shape == 1) {
        for (int t = 1; t < num_tables; ++t) {
          AddEdge(&qb, "t0", StrFormat("t%d", t), k);
        }
      } else {
        for (int t = 0; t < num_tables; ++t) {
          AddEdge(&qb, StrFormat("t%d", t), StrFormat("t%d", (t + 1) % num_tables),
                  1 + k / 2);
        }
      }
      AddInterest(&qb, qnum, num_tables);
      auto graph = qb.Build();
      assert(graph.ok());
      w.queries.push_back(std::move(graph).value());
      w.labels.push_back(StrFormat("train%02d", qnum));
      ++qnum;
    }
  }
  return w;
}

}  // namespace cote
