#ifndef COTE_SESSION_COMPILATION_CONTEXT_H_
#define COTE_SESSION_COMPILATION_CONTEXT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>

#include "core/plan_counter.h"
#include "optimizer/cost/cardinality.h"
#include "optimizer/cost/cost_model.h"
#include "optimizer/enumerator.h"
#include "optimizer/memo.h"
#include "optimizer/optimizer.h"
#include "optimizer/parallel_enumerator.h"
#include "optimizer/properties/interesting_orders.h"
#include "query/query_graph.h"
#include "session/compilation_stats.h"

namespace cote {

/// \brief Per-query compilation state with cross-query arena reuse.
///
/// The context is the single owner of every model the pipeline consults —
/// the cost model (options-lifetime), the refined and simple cardinality
/// models, the interesting-order analysis, the session enumerator, and the
/// estimate-mode plan counter — plus the unified CompilationStats. Nothing
/// outside src/session/ constructs these models directly; callers obtain
/// them here so the optimize and estimate paths are guaranteed to see the
/// same configuration.
///
/// Reset(graph) binds the context to a query. Rebinding to a *different*
/// query drops the per-query models but keeps every arena and scratch
/// buffer (the counter's entry-state deque, the enumerator's bitmaps, the
/// flat set index), so batch runs over a workload are allocation-steady:
/// after the largest query has been seen, later binds of same-or-smaller
/// queries grow nothing. Re-binding the *same* query (same object, same
/// content fingerprint) is a warm no-op that additionally keeps the
/// counter's saturated property lists — the cross-query extension of the
/// zero-steady-state-allocation invariant hotpath_alloc_test pins.
class CompilationContext {
 public:
  /// Adopts (and normalizes — see OptimizerOptions::Normalize) the
  /// optimizer configuration. `counter_options` seeds the estimate-mode
  /// counter; its parallel / eager-partition knobs are reconciled with the
  /// optimizer options so the counter models the environment the
  /// optimizer plans for.
  explicit CompilationContext(OptimizerOptions options,
                              PlanCounterOptions counter_options = {});

  CompilationContext(const CompilationContext&) = delete;
  CompilationContext& operator=(const CompilationContext&) = delete;

  /// Binds the context to `graph` (the pipeline's bind stage). Returns
  /// true for a warm no-op — same graph object whose content fingerprint
  /// is unchanged — in which case every lazily built model survives.
  ///
  /// Caveat: the fingerprint covers the graph's own content (tables,
  /// predicates with their selectivities, grouping/ordering, fetch-first)
  /// via the catalog Table pointers; mutating catalog *statistics* in
  /// place between binds of the same graph is not detected.
  bool Reset(const QueryGraph& graph);

  /// Drops all per-query bindings so the next Reset is cold. Benchmarks
  /// that want fresh-model timings per iteration use this.
  void Invalidate();

  /// Post-failure cleanup: drops the binding to the current query (graph
  /// pointer, fingerprint, per-query models) but — unlike Invalidate() —
  /// keeps the counter and enumerator objects, so their arenas survive.
  /// The pipeline calls this after a degraded or failed compile, leaving
  /// the context exactly as a cold Rebind would: the next query compiles
  /// bit-identically to a fresh session (partial state from the aborted
  /// run can never leak into a later result).
  void AbandonBinding();

  const OptimizerOptions& options() const { return options_; }
  const PlanCounterOptions& counter_options() const {
    return counter_options_;
  }

  /// The bound query; dies if no Reset() happened yet.
  const QueryGraph& graph() const;

  // Lazily materialized components, all bound to graph(). ----------------

  /// Options-lifetime: depends only on CostParams, never rebound.
  const CostModel& cost_model() const { return cost_; }
  /// Plan-mode cardinality (key/FD refinement on).
  const CardinalityModel& refined_cardinality();
  /// Estimate-mode cardinality (no refinement — the paper's prototype).
  const CardinalityModel& simple_cardinality();
  const InterestingOrders& interesting_orders();
  /// Estimate-mode visitor, bound to simple_cardinality(); warm across
  /// binds of the same query (ResetCounts() is the caller's job).
  PlanCounter& counter();
  /// Session-owned bottom-up enumerator (scratch reused across queries).
  JoinEnumerator& enumerator();

  // Parallel enumeration (options_.parallel_workers > 1). --------------

  /// Workers the bound query's enumeration will actually use: the
  /// configured parallel_workers when the eligibility gate passes
  /// (bottom-up search, 2..kGosperPartitionMaxTables tables), 1 — the
  /// exact serial code path — otherwise.
  int EffectiveParallelWorkers() const;

  /// Session-owned rank-parallel enumerator (persistent worker team,
  /// bitmap reused across queries). Only call when
  /// options().parallel_workers > 1.
  ParallelEnumerator& parallel_enumerator();

  /// Worker w's private estimate-mode counter, in shard mode against
  /// counter(). First use after a cold bind (re)builds all shard
  /// counters and their per-worker simple cardinality models (workers
  /// must not share one model: its memoization cache is unguarded);
  /// warm binds reuse everything, keeping warm estimates
  /// allocation-steady once each worker's cache has saturated.
  PlanCounter& shard_counter(int w);

  /// Runs join enumeration for the bound query over `visitor`, through
  /// the session enumerator when the options select bottom-up search and
  /// through the top-down dispatcher otherwise. A non-null `budget` makes
  /// the run cooperative (see JoinEnumerator::Run).
  EnumerationStats Enumerate(JoinVisitor* visitor,
                             ResourceBudget* budget = nullptr);

  /// Fresh plan-mode MEMO for the bound query. Plan-mode memos are
  /// per-compile by design: ownership passes to the OptimizeResult, which
  /// may outlive the session.
  std::shared_ptr<Memo> NewMemo();

  CompilationStats& stats() { return stats_; }
  const CompilationStats& stats() const { return stats_; }

  /// The session's resource budget: armed by the pipeline per governed
  /// compile, disarmed (a no-op at every checkpoint) otherwise. Owned here
  /// so it lives as long as everything that may hold a pointer to it.
  ResourceBudget& budget() { return budget_; }
  const ResourceBudget& budget() const { return budget_; }

 private:
  /// Content hash of everything compilation output depends on: table
  /// identities and flags, join/local predicates (columns, kind, derived,
  /// selectivity bit patterns), grouping, ordering, aggregation,
  /// fetch-first.
  static uint64_t Fingerprint(const QueryGraph& graph);

  OptimizerOptions options_;
  PlanCounterOptions counter_options_;
  CostModel cost_;

  const QueryGraph* graph_ = nullptr;
  uint64_t fingerprint_ = 0;

  // Per-query components. The optionals are reset on a cold bind and
  // rebuilt on first use; counter/enumerator instead Rebind() in place so
  // their arenas survive (the bound_ flags track whether that happened
  // for the current query yet).
  std::optional<CardinalityModel> refined_card_;
  std::optional<CardinalityModel> simple_card_;
  std::optional<InterestingOrders> interesting_;
  std::optional<PlanCounter> counter_;
  std::optional<JoinEnumerator> enumerator_;
  bool counter_bound_ = false;
  bool enumerator_bound_ = false;

  // Parallel-enumeration state. The enumerator (worker team + bitmap) is
  // options-lifetime; the shard counters Rebind in place across queries
  // (arena reuse, like counter_), while their cardinality models — which
  // reference the bound graph — are rebuilt per cold bind. Deques: both
  // types are non-movable.
  std::optional<ParallelEnumerator> parallel_enum_;
  std::deque<CardinalityModel> shard_simple_cards_;
  std::deque<PlanCounter> shard_counters_;
  bool shard_counters_bound_ = false;

  CompilationStats stats_;
  ResourceBudget budget_;
};

}  // namespace cote

#endif  // COTE_SESSION_COMPILATION_CONTEXT_H_
