#ifndef COTE_SESSION_PIPELINE_H_
#define COTE_SESSION_PIPELINE_H_

#include "common/status.h"
#include "core/time_model.h"
#include "optimizer/optimizer.h"
#include "session/compilation_context.h"
#include "session/compilation_stats.h"

namespace cote {

/// \brief The staged compilation pipeline: bind → enumerate → complete →
/// finalize.
///
/// Both compilation modes run the same four stages over the shared
/// CompilationContext — the paper's visitor symmetry (§3.1) lifted to the
/// whole compile:
///
///   stage      | plan mode                    | estimate mode
///   -----------+------------------------------+---------------------------
///   bind       | context reset, models        | context reset, counter
///   enumerate  | joins → PlanGenerator        | joins → PlanCounter
///   complete   | CompleteQuery (group-by/sort | CountCompletionPlans
///              | enforcer plans)              | (the same plans, counted)
///   finalize   | OptimizeStats fill           | TimeModel conversion
///
/// Per-stage wall times land in the context's CompilationStats.
class CompilationPipeline {
 public:
  /// `context` must outlive the pipeline; the pipeline itself is
  /// stateless between calls.
  explicit CompilationPipeline(CompilationContext* context)
      : ctx_(context) {}

  /// Plan mode. Bit-identical results and stats to the pre-session
  /// Optimizer (the golden equivalence tests are the oracle).
  StatusOr<OptimizeResult> CompilePlan(const QueryGraph& graph);

  /// Estimate mode. Allocation-free in steady state: a warm context bind
  /// plus a saturated counter re-run touch no heap.
  CompileTimeEstimate CompileEstimate(const QueryGraph& graph,
                                      const TimeModel& time_model);

 private:
  StatusOr<OptimizeResult> PlanLow(const QueryGraph& graph);
  StatusOr<OptimizeResult> PlanHigh(const QueryGraph& graph);

  CompilationContext* ctx_;
};

}  // namespace cote

#endif  // COTE_SESSION_PIPELINE_H_
