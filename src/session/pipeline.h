#ifndef COTE_SESSION_PIPELINE_H_
#define COTE_SESSION_PIPELINE_H_

#include "common/resource_budget.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/time_model.h"
#include "optimizer/optimizer.h"
#include "session/compilation_context.h"
#include "session/compilation_stats.h"

namespace cote {

/// One completed pipeline stage, as reported to a stage observer.
struct StageEvent {
  CompileStage stage = CompileStage::kNone;
  /// Wall seconds the stage took (the same interval RecordStages sums).
  double seconds = 0;
  /// True for estimate-mode runs, false for plan-mode compiles.
  bool estimate_mode = false;
  /// Budget state *after* the stage: once a limit trips, every later
  /// event of the run carries it — a degraded compile's trace reads
  /// bind(ok) → enumerate(tripped) → finalize(tripped).
  bool budget_tripped = false;
  BudgetLimit tripped_limit = BudgetLimit::kNone;
};

/// Stage-observer callback. A raw function pointer plus context — not
/// std::function — so installing, clearing, and (above all) *not*
/// installing one stays allocation-free; with no observer installed the
/// per-stage cost is a single null check.
using StageObserverFn = void (*)(void* ctx, const StageEvent& event);

/// \brief The staged compilation pipeline: bind → enumerate → complete →
/// finalize.
///
/// Both compilation modes run the same four stages over the shared
/// CompilationContext — the paper's visitor symmetry (§3.1) lifted to the
/// whole compile:
///
///   stage      | plan mode                    | estimate mode
///   -----------+------------------------------+---------------------------
///   bind       | context reset, models        | context reset, counter
///   enumerate  | joins → PlanGenerator        | joins → PlanCounter
///   complete   | CompleteQuery (group-by/sort | CountCompletionPlans
///              | enforcer plans)              | (the same plans, counted)
///   finalize   | OptimizeStats fill           | TimeModel conversion
///
/// Per-stage wall times land in the context's CompilationStats.
///
/// Resource governance: the governed overloads arm the context's
/// ResourceBudget before running. The enumerate stage is the cooperative
/// cancellation region; when a limit trips there, plan mode either falls
/// back to the greedy optimizer (BudgetAction::kGreedyFallback — the
/// result is a valid plan flagged `degraded`) or fails with the budget's
/// Status (kFail), and estimate mode returns the partial counts flagged
/// `degraded`. Either way the context abandons its binding afterwards, so
/// the next compile is bit-identical to one on a fresh session.
///
/// Fault points: plan-mode stage boundaries consult the process-global
/// fault registry (common/fault_points.h) — a no-op unless a test
/// installed a hook. Estimate mode has no Status channel, so it consults
/// nothing.
class CompilationPipeline {
 public:
  /// `context` must outlive the pipeline; the pipeline itself is
  /// stateless between calls (the observer is configuration, not state).
  explicit CompilationPipeline(CompilationContext* context)
      : ctx_(context) {}

  /// Plan mode. Bit-identical results and stats to the pre-session
  /// Optimizer (the golden equivalence tests are the oracle).
  StatusOr<OptimizeResult> CompilePlan(const QueryGraph& graph);

  /// Plan mode under resource governance. Unlimited `limits` behave
  /// exactly like the ungoverned overload. At kLow the limits are ignored
  /// by design: the greedy pass *is* the degraded mode, and governing it
  /// would leave nothing to fall back to.
  StatusOr<OptimizeResult> CompilePlan(const QueryGraph& graph,
                                       const ResourceLimits& limits);

  /// Greedy-only compile regardless of the configured optimization level:
  /// the kLow pass (one join order, no property enumeration, no budget,
  /// no estimation) on a session whose options say kHigh. This is the
  /// service's bottom degradation tier — when a query has waited past its
  /// patience, running the polynomial-time pass beats shedding it, and
  /// beats paying for DP it no longer merits. Same fault points and
  /// observer events as any kLow compile.
  StatusOr<OptimizeResult> CompilePlanGreedy(const QueryGraph& graph);

  /// Estimate mode. Allocation-free in steady state: a warm context bind
  /// plus a saturated counter re-run touch no heap.
  CompileTimeEstimate CompileEstimate(const QueryGraph& graph,
                                      const TimeModel& time_model);

  /// Estimate mode under resource governance: a tripped limit ends the
  /// counting run early and flags the (partial, lower-bound) estimate
  /// `degraded`. Armed-but-untripped runs stay allocation-free.
  CompileTimeEstimate CompileEstimate(const QueryGraph& graph,
                                      const TimeModel& time_model,
                                      const ResourceLimits& limits);

  /// Installs (or, with fn = nullptr, removes) the per-stage observer.
  /// The callback fires synchronously at the end of every stage that ran;
  /// stages a run skips (complete at kLow, complete after a budget trip)
  /// produce no event.
  void SetStageObserver(StageObserverFn fn, void* ctx) {
    observer_ = fn;
    observer_ctx_ = ctx;
  }

 private:
  StatusOr<OptimizeResult> PlanLow(const QueryGraph& graph);
  StatusOr<OptimizeResult> PlanHigh(const QueryGraph& graph,
                                    const ResourceLimits* limits);
  CompileTimeEstimate EstimateImpl(const QueryGraph& graph,
                                   const TimeModel& time_model,
                                   const ResourceLimits* limits);
  /// Tripped-budget fallback of PlanHigh: reruns the query through the
  /// greedy optimizer on a fresh memo and finalizes a degraded result.
  StatusOr<OptimizeResult> DegradeToGreedy(const QueryGraph& graph,
                                           StopWatch& watch,
                                           StageSeconds* stages,
                                           OptimizeResult* result);
  /// Reports one completed stage to the observer (no-op when none).
  void Notify(CompileStage stage, double seconds, bool estimate_mode);

  CompilationContext* ctx_;
  StageObserverFn observer_ = nullptr;
  void* observer_ctx_ = nullptr;
};

}  // namespace cote

#endif  // COTE_SESSION_PIPELINE_H_
