#ifndef COTE_SESSION_LIMITS_POLICY_H_
#define COTE_SESSION_LIMITS_POLICY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/resource_budget.h"
#include "session/compilation_stats.h"

namespace cote {

/// \brief Estimate → ResourceLimits derivation, shared policy.
///
/// Generalizes what used to live inside MetaOptimizer::DeriveLimits so
/// the compile service's admission stage and the meta-optimizer derive
/// budgets from one rule: each limit is `headroom ×` the corresponding
/// estimated quantity, floored so a near-zero estimate cannot produce a
/// budget that trips instantly. The COTE closes its own loop here — the
/// estimate that justified compiling also bounds the compile, and a run
/// that blows far past its own prediction is exactly the runaway the
/// governance layer exists to stop.
///
/// `extra_headroom` (≥ 1) composes multiplicatively; the service's
/// per-query-class trip-rate tracker passes the class multiplier through
/// it, so a class whose derived budgets keep tripping (evidence the
/// estimator is biased low there) gets progressively wider budgets
/// without touching the base policy.
struct LimitsPolicy {
  double headroom = 8.0;
  double min_deadline_seconds = 1e-3;
  int64_t min_memo_entries = 64;
  int64_t min_plans = 256;
  /// Plan-mode action when a derived budget trips (copied into every
  /// ResourceLimits this policy derives). The service's retry ladder
  /// leans on kFail: a failed-with-Status trip is a *transient* outcome
  /// it can re-enqueue one tier down, where kGreedyFallback degrades
  /// inside the compile instead.
  BudgetAction on_trip = BudgetAction::kGreedyFallback;

  /// Queue-wait patience: how long an admitted entry may wait before the
  /// dispatcher starts demoting it down the degradation ladder, in
  /// multiples of its own predicted compile seconds (a cheap compile is
  /// stale after milliseconds; a heavy one is still worth running after
  /// seconds). <= 0 disables expiry entirely — the backward-compatible
  /// default. See DerivePatience().
  double patience_factor = 0;
  double min_patience_seconds = 1e-3;

  /// Full derivation from a COTE estimate: deadline, memo-entry cap, and
  /// plan cap. Bit-identical to the original MetaOptimizer::DeriveLimits
  /// at extra_headroom = 1.
  ResourceLimits Derive(const CompileTimeEstimate& estimate,
                        double extra_headroom = 1.0) const {
    const double h = headroom * extra_headroom;
    ResourceLimits limits;
    limits.on_trip = on_trip;
    limits.deadline_seconds =
        std::max(min_deadline_seconds, h * estimate.estimated_seconds);
    limits.max_memo_entries = std::max<int64_t>(
        min_memo_entries,
        std::llround(
            h * static_cast<double>(estimate.enumeration.entries_created)));
    limits.max_plans = std::max<int64_t>(
        min_plans,
        std::llround(h * static_cast<double>(estimate.plan_estimates.total() +
                                             estimate.completion_plans)));
    return limits;
  }

  /// Deadline-only derivation for entries that carry a predicted time but
  /// no plan counts — e.g. a statement-cache hit, where estimation was
  /// skipped entirely and the cached measured seconds stand in for the
  /// estimate. Count caps stay unlimited: there is nothing to scale them
  /// from, and a wrong cap is worse than none.
  ResourceLimits DeriveFromSeconds(double predicted_seconds,
                                   double extra_headroom = 1.0) const {
    ResourceLimits limits;
    limits.on_trip = on_trip;
    limits.deadline_seconds =
        std::max(min_deadline_seconds,
                 headroom * extra_headroom * predicted_seconds);
    return limits;
  }

  /// Estimate-derived queue-wait patience, floored like the deadline so a
  /// near-zero prediction cannot expire instantly. Returns 0 (= infinite
  /// patience, no expiry) when patience_factor is off.
  double DerivePatience(double predicted_seconds) const {
    if (patience_factor <= 0) return 0;
    return std::max(min_patience_seconds,
                    patience_factor * predicted_seconds);
  }
};

}  // namespace cote

#endif  // COTE_SESSION_LIMITS_POLICY_H_
