#ifndef COTE_SESSION_SESSION_H_
#define COTE_SESSION_SESSION_H_

#include <vector>

#include "common/status.h"
#include "core/time_model.h"
#include "optimizer/optimizer.h"
#include "query/multi_block.h"
#include "session/compilation_context.h"
#include "session/compilation_stats.h"
#include "session/pipeline.h"

namespace cote {

/// \brief One query-compilation session: the single entry point through
/// which everything in this library compiles or estimates a query.
///
///   CompilationSession session(options);
///   StatusOr<OptimizeResult> plan = session.Optimize(graph);   // plan mode
///   CompileTimeEstimate est = session.Estimate(graph, model);  // §3 mode
///
/// The session owns a CompilationContext (models, arenas, stats) and
/// drives the staged CompilationPipeline over it. Compiling a workload
/// through one session reuses the context's arenas across queries —
/// allocation-steady batch runs — and repeated estimates of the *same*
/// query are warm: zero steady-state allocations, enforced by
/// tests/session/session_alloc_test.cc. Results are bit-identical to
/// per-query construction throughout (the golden equivalence tests are
/// the oracle). Not thread-safe; use one session per thread.
class CompilationSession {
 public:
  explicit CompilationSession(OptimizerOptions options = {},
                              PlanCounterOptions counter_options = {})
      : context_(std::move(options), counter_options),
        pipeline_(&context_) {}

  // Not copyable/movable: the pipeline holds a pointer into the context.
  CompilationSession(const CompilationSession&) = delete;
  CompilationSession& operator=(const CompilationSession&) = delete;

  /// Plan mode: full compilation to an executable plan.
  StatusOr<OptimizeResult> Optimize(const QueryGraph& graph) {
    return pipeline_.CompilePlan(graph);
  }

  /// Plan mode under resource governance: the compile is cancelled
  /// cooperatively once `limits` trips, then either degrades to the
  /// greedy plan (BudgetAction::kGreedyFallback, the default — ok() with
  /// OptimizeResult::degraded set) or fails with the budget's Status.
  /// Unlimited limits behave exactly like the ungoverned overload.
  StatusOr<OptimizeResult> Optimize(const QueryGraph& graph,
                                    const ResourceLimits& limits) {
    return pipeline_.CompilePlan(graph, limits);
  }

  /// Greedy-only plan mode, ignoring the session's optimization level:
  /// the polynomial-time kLow pass with no estimation and no budget. The
  /// compile service's bottom degradation tier (see
  /// CompilationPipeline::CompilePlanGreedy).
  StatusOr<OptimizeResult> OptimizeGreedy(const QueryGraph& graph) {
    return pipeline_.CompilePlanGreedy(graph);
  }

  /// Estimate mode: the paper's plan-counting pass; `time_model` converts
  /// join-plan counts to seconds (§3.5).
  CompileTimeEstimate Estimate(const QueryGraph& graph,
                               const TimeModel& time_model) {
    return pipeline_.CompileEstimate(graph, time_model);
  }

  /// Governed estimate: a tripped limit ends the counting run early and
  /// returns the partial counts flagged CompileTimeEstimate::degraded.
  CompileTimeEstimate Estimate(const QueryGraph& graph,
                               const TimeModel& time_model,
                               const ResourceLimits& limits) {
    return pipeline_.CompileEstimate(graph, time_model, limits);
  }

  /// Multi-block queries (§3.3): each block is optimized with its own
  /// MEMO, so the estimates (plans, time, memory) sum over the blocks.
  CompileTimeEstimate Estimate(const MultiBlockQuery& query,
                               const TimeModel& time_model);

  /// Governed multi-block estimate: `limits` applies per block (each block
  /// re-arms the budget); `degraded` is set if any block tripped, carrying
  /// the first tripped block's limit and stage.
  CompileTimeEstimate Estimate(const MultiBlockQuery& query,
                               const TimeModel& time_model,
                               const ResourceLimits& limits);

  /// Serial batch: compiles each query in input order through this one
  /// session (null pointers yield a Status at their index). This is the
  /// single-threaded reference a SessionPool batch must be bit-identical
  /// to.
  std::vector<StatusOr<OptimizeResult>> CompileBatch(
      const std::vector<const QueryGraph*>& queries);

  /// Governed serial batch: `limits` applies per query, so one runaway
  /// query degrades (or fails) alone while the rest of the batch compiles
  /// normally — per-index isolation, pinned by the governance tests.
  std::vector<StatusOr<OptimizeResult>> CompileBatch(
      const std::vector<const QueryGraph*>& queries,
      const ResourceLimits& limits);

  /// Serial estimate batch, input order; null pointers yield the all-zero
  /// estimate.
  std::vector<CompileTimeEstimate> EstimateBatch(
      const std::vector<const QueryGraph*>& queries,
      const TimeModel& time_model);

  /// Governed serial estimate batch (per-query limits, as above).
  std::vector<CompileTimeEstimate> EstimateBatch(
      const std::vector<const QueryGraph*>& queries,
      const TimeModel& time_model, const ResourceLimits& limits);

  /// Installs (or removes, with fn = nullptr) a per-stage observer on the
  /// underlying pipeline; see CompilationPipeline::SetStageObserver.
  void SetStageObserver(StageObserverFn fn, void* ctx) {
    pipeline_.SetStageObserver(fn, ctx);
  }

  /// The models and options behind this session — the only sanctioned way
  /// to reach the cost/cardinality models outside src/session/.
  CompilationContext& context() { return context_; }
  const CompilationContext& context() const { return context_; }

  const CompilationStats& stats() const { return context_.stats(); }

 private:
  CompilationContext context_;
  CompilationPipeline pipeline_;
};

}  // namespace cote

#endif  // COTE_SESSION_SESSION_H_
