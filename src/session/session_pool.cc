#include "session/session_pool.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/check.h"
#include "common/timer.h"

namespace cote {

namespace {

/// Runs once per claimed plan-mode query: the pool's per-item hot path.
/// Everything it touches is worker-private (the session) or this item's
/// own output slot, so workers never share mutable state. `limits` null
/// means ungoverned; non-null arms the worker session's budget per query.
void CompileOne(CompilationSession* session, const QueryGraph* query,
                const ResourceLimits* limits, StatusOr<OptimizeResult>* out) {
  if (query == nullptr) {
    *out = Status::InvalidArgument("null query in batch");
    return;
  }
  *out = limits == nullptr ? session->Optimize(*query)
                           : session->Optimize(*query, *limits);
}

/// Estimate-mode twin of CompileOne; a null query yields the all-zero
/// estimate (estimates have no Status channel, matching the serial API).
void EstimateOne(CompilationSession* session, const QueryGraph* query,
                 const TimeModel& time_model, const ResourceLimits* limits,
                 CompileTimeEstimate* out) {
  if (query == nullptr) {
    *out = CompileTimeEstimate{};
    return;
  }
  *out = limits == nullptr ? session->Estimate(*query, time_model)
                           : session->Estimate(*query, time_model, *limits);
}

/// Folds worker w's CompilationStats delta for this batch (after - before)
/// into the batch stats: per-stage seconds summed into `merged`, the
/// worker's own slice filled for the breakdown.
void MergeDelta(const CompilationStats& after, const CompilationStats& before,
                BatchStats* out, int w) {
  WorkerSlice& slice = out->per_worker[static_cast<size_t>(w)];
  slice.stages.bind = after.cumulative_stages.bind - before.cumulative_stages.bind;
  slice.stages.enumerate =
      after.cumulative_stages.enumerate - before.cumulative_stages.enumerate;
  slice.stages.complete =
      after.cumulative_stages.complete - before.cumulative_stages.complete;
  slice.stages.finalize =
      after.cumulative_stages.finalize - before.cumulative_stages.finalize;
  slice.context_rebinds = after.context_rebinds - before.context_rebinds;
  slice.warm_resets = after.warm_resets - before.warm_resets;

  CompilationStats& merged = out->merged;
  // Stage seconds are timing instrumentation folded in ascending worker
  // order at the batch join (RunBatch calls MergeDelta for w = 0..n-1),
  // so the FP fold order is pinned; none of it feeds plan choice.
  // det-ok: pinned worker-order timing fold
  merged.cumulative_stages.bind += slice.stages.bind;
  // det-ok: pinned worker-order timing fold
  merged.cumulative_stages.enumerate += slice.stages.enumerate;
  // det-ok: pinned worker-order timing fold
  merged.cumulative_stages.complete += slice.stages.complete;
  // det-ok: pinned worker-order timing fold
  merged.cumulative_stages.finalize += slice.stages.finalize;
  merged.plans_compiled += after.plans_compiled - before.plans_compiled;
  merged.estimates_run += after.estimates_run - before.estimates_run;
  merged.context_rebinds += slice.context_rebinds;
  merged.warm_resets += slice.warm_resets;
  merged.degraded_runs += after.degraded_runs - before.degraded_runs;
}

}  // namespace

SessionPool::SessionPool(int num_workers, OptimizerOptions options,
                         PlanCounterOptions counter_options) {
  if (num_workers <= 0) {
    num_workers = static_cast<int>(std::thread::hardware_concurrency());
    if (num_workers <= 0) num_workers = 1;
  }
  sessions_.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    sessions_.push_back(
        std::make_unique<CompilationSession>(options, counter_options));
  }
}

SessionPool::~SessionPool() = default;

template <typename PerItem>
BatchStats SessionPool::RunBatch(size_t n, const PerItem& per_item) {
  BatchStats out;
  // An empty batch does no work at all: zero workers, zero wall clock,
  // Speedup() deterministically 0.
  if (n == 0) return out;
  // Never more workers than items: an idle thread would only add spawn
  // and join latency to the wall clock.
  const size_t workers = std::min(sessions_.size(), n);
  out.workers_used = static_cast<int>(workers);
  out.per_worker.resize(workers);
  std::vector<CompilationStats> before(workers);
  for (size_t w = 0; w < workers; ++w) before[w] = sessions_[w]->stats();

  // Chunked atomic cursor, chunk = 1: queries are coarse work units, so
  // one relaxed fetch_add per query is the whole queue protocol and load
  // balance is as fine as it can get. This local is the pool's only
  // shared mutable word per batch (tools/sync_inventory.json).
  std::atomic<size_t> cursor{0};
  StopWatch wall;  // det-ok: wall-clock instrumentation for BatchStats
  auto drain = [&](int w) {
    StopWatch busy;  // det-ok: per-worker busy-time instrumentation
    CompilationSession* session = sessions_[static_cast<size_t>(w)].get();
    int64_t done = 0;
    for (;;) {
      const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      per_item(session, i);
      ++done;
    }
    WorkerSlice& slice = out.per_worker[static_cast<size_t>(w)];
    slice.worker = w;
    slice.queries = done;
    slice.busy_seconds = busy.ElapsedSeconds();
  };
  if (workers == 1) {
    // Serial batch: run on the calling thread, no spawn/join overhead —
    // the N=1 baseline the speedup figures compare against.
    drain(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      threads.emplace_back(drain, static_cast<int>(w));
    }
    for (std::thread& t : threads) t.join();
  }
  out.wall_seconds = wall.ElapsedSeconds();
  for (size_t w = 0; w < workers; ++w) {
    MergeDelta(sessions_[w]->stats(), before[w], &out, static_cast<int>(w));
    // det-ok: ascending-worker-order fold of timing instrumentation
    out.busy_seconds += out.per_worker[w].busy_seconds;
  }
  return out;
}

BatchOptimizeResult SessionPool::CompileBatch(
    const std::vector<const QueryGraph*>& queries) {
  BatchOptimizeResult out{
      std::vector<StatusOr<OptimizeResult>>(
          queries.size(), Status::Internal("query was not compiled")),
      BatchStats{}};
  StatusOr<OptimizeResult>* results = out.results.data();
  const QueryGraph* const* qs = queries.data();
  out.stats = RunBatch(queries.size(),
                       [results, qs](CompilationSession* session, size_t i) {
                         CompileOne(session, qs[i], nullptr, &results[i]);
                       });
  return out;
}

BatchOptimizeResult SessionPool::CompileBatch(
    const std::vector<const QueryGraph*>& queries,
    const ResourceLimits& limits) {
  BatchOptimizeResult out{
      std::vector<StatusOr<OptimizeResult>>(
          queries.size(), Status::Internal("query was not compiled")),
      BatchStats{}};
  StatusOr<OptimizeResult>* results = out.results.data();
  const QueryGraph* const* qs = queries.data();
  const ResourceLimits* lim = &limits;
  out.stats =
      RunBatch(queries.size(),
               [results, qs, lim](CompilationSession* session, size_t i) {
                 CompileOne(session, qs[i], lim, &results[i]);
               });
  return out;
}

BatchOptimizeResult SessionPool::CompileBatch(
    const std::vector<const QueryGraph*>& queries,
    const std::vector<ResourceLimits>& per_query) {
  COTE_CHECK_EQ(queries.size(), per_query.size());
  BatchOptimizeResult out{
      std::vector<StatusOr<OptimizeResult>>(
          queries.size(), Status::Internal("query was not compiled")),
      BatchStats{}};
  StatusOr<OptimizeResult>* results = out.results.data();
  const QueryGraph* const* qs = queries.data();
  const ResourceLimits* lims = per_query.data();
  out.stats =
      RunBatch(queries.size(),
               [results, qs, lims](CompilationSession* session, size_t i) {
                 CompileOne(session, qs[i], &lims[i], &results[i]);
               });
  return out;
}

BatchOptimizeResult SessionPool::CompileBatch(
    const std::vector<const QueryGraph*>& queries,
    const std::vector<ResourceLimits>& per_query, StageObserverFn observer,
    void* const* per_query_observer_ctx) {
  if (observer == nullptr) return CompileBatch(queries, per_query);
  COTE_CHECK_EQ(queries.size(), per_query.size());
  COTE_CHECK(per_query_observer_ctx != nullptr);
  BatchOptimizeResult out{
      std::vector<StatusOr<OptimizeResult>>(
          queries.size(), Status::Internal("query was not compiled")),
      BatchStats{}};
  StatusOr<OptimizeResult>* results = out.results.data();
  const QueryGraph* const* qs = queries.data();
  const ResourceLimits* lims = per_query.data();
  out.stats = RunBatch(
      queries.size(), [results, qs, lims, observer, per_query_observer_ctx](
                          CompilationSession* session, size_t i) {
        // Observer scope = exactly this query's compile on this worker's
        // own session; the ctx slot is query-private, so no two workers
        // ever write one concurrently.
        session->SetStageObserver(observer, per_query_observer_ctx[i]);
        CompileOne(session, qs[i], &lims[i], &results[i]);
        session->SetStageObserver(nullptr, nullptr);
      });
  return out;
}

BatchEstimateResult SessionPool::EstimateBatch(
    const std::vector<const QueryGraph*>& queries,
    const TimeModel& time_model) {
  BatchEstimateResult out;
  out.results.resize(queries.size());
  CompileTimeEstimate* results = out.results.data();
  const QueryGraph* const* qs = queries.data();
  out.stats = RunBatch(
      queries.size(),
      [results, qs, &time_model](CompilationSession* session, size_t i) {
        EstimateOne(session, qs[i], time_model, nullptr, &results[i]);
      });
  return out;
}

BatchEstimateResult SessionPool::EstimateBatch(
    const std::vector<const QueryGraph*>& queries,
    const TimeModel& time_model, const ResourceLimits& limits) {
  BatchEstimateResult out;
  out.results.resize(queries.size());
  CompileTimeEstimate* results = out.results.data();
  const QueryGraph* const* qs = queries.data();
  const ResourceLimits* lim = &limits;
  out.stats = RunBatch(
      queries.size(),
      [results, qs, &time_model, lim](CompilationSession* session, size_t i) {
        EstimateOne(session, qs[i], time_model, lim, &results[i]);
      });
  return out;
}

}  // namespace cote
