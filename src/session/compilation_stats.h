#ifndef COTE_SESSION_COMPILATION_STATS_H_
#define COTE_SESSION_COMPILATION_STATS_H_

#include <cstdint>

#include "common/resource_budget.h"
#include "optimizer/enumerator.h"
#include "optimizer/plan/plan.h"
#include "optimizer/stats.h"

namespace cote {

/// \brief Everything one estimation run produces.
///
/// Lives in the session layer (rather than core/estimator.h, its original
/// home) because both halves of the compilation pipeline speak it: the
/// estimate-mode pipeline fills it in, and CompileTimeEstimator re-exports
/// it unchanged for existing callers.
struct CompileTimeEstimate {
  /// Estimated number of join plans per join method (what Figure 5 plots
  /// against the instrumented actuals).
  JoinTypeCounts plan_estimates;
  /// Join counts seen during estimation (from the reused enumerator).
  EnumerationStats enumeration;
  /// Estimated compilation time via the linear time model (Figure 6).
  double estimated_seconds = 0;
  /// Wall time this estimate itself took — the overhead Figure 4 compares
  /// against the actual compilation time.
  double estimation_seconds = 0;
  /// Worker threads the counting enumeration ran with (1 = serial path).
  int parallel_workers = 1;
  /// Σ over workers of in-rank busy time; 0 in a serial run.
  double enumeration_busy_seconds = 0;
  /// §6.2: lower bound of MEMO memory at this level, from the interesting
  /// property list lengths × bytes per stored plan.
  int64_t estimated_memo_bytes = 0;
  int64_t plan_slots = 0;
  /// Estimate-mode counterpart of the completion stage: how many
  /// completion plans (group-by candidates, final sort) plan mode would
  /// consider on top of the join plans. Kept out of plan_estimates so the
  /// §3.5 join-count regression inputs are untouched.
  int64_t completion_plans = 0;
  /// Resource governance outcome: true when a budget tripped mid-estimate,
  /// in which case the counts and the derived seconds/bytes cover only the
  /// enumeration prefix that ran (a lower bound on the full query).
  bool degraded = false;
  BudgetLimit tripped_limit = BudgetLimit::kNone;
  CompileStage degraded_stage = CompileStage::kNone;

  /// Bytes charged per plan slot in the memory lower bound.
  static constexpr int64_t kBytesPerPlan = sizeof(Plan);
};

/// Wall time of the four pipeline stages of one compile or estimate.
struct StageSeconds {
  double bind = 0;      ///< context reset, model (re)binding
  double enumerate = 0; ///< join enumeration + visitor work
  double complete = 0;  ///< query completion (plans or the count)
  double finalize = 0;  ///< stats fill / time-model conversion
  double Total() const { return bind + enumerate + complete + finalize; }
};

/// \brief Unified instrumentation of one CompilationSession.
///
/// Accumulates across every Optimize()/Estimate() issued through the
/// session, so batch drivers get per-stage timing and reuse counters
/// without instrumenting each call themselves.
struct CompilationStats {
  StageSeconds last_stages;        ///< stages of the most recent run
  StageSeconds cumulative_stages;  ///< sums over the session lifetime
  int64_t plans_compiled = 0;      ///< plan-mode runs completed
  int64_t estimates_run = 0;       ///< estimate-mode runs completed
  /// Cold binds: the context had to retarget its models at a new query.
  int64_t context_rebinds = 0;
  /// Warm binds: same graph object with an unchanged content fingerprint,
  /// so every model and the counter's saturated state were kept.
  int64_t warm_resets = 0;
  /// Runs (plan or estimate mode) that tripped a resource budget and
  /// finished degraded rather than completing the full DP search.
  int64_t degraded_runs = 0;

  void RecordStages(const StageSeconds& s) {
    last_stages = s;
    cumulative_stages.bind += s.bind;
    cumulative_stages.enumerate += s.enumerate;
    cumulative_stages.complete += s.complete;
    cumulative_stages.finalize += s.finalize;
  }
};

}  // namespace cote

#endif  // COTE_SESSION_COMPILATION_STATS_H_
