#include "session/session.h"

namespace cote {

namespace {

/// Folds one block's estimate into the multi-block total (sums, plus the
/// degraded flag: the total is degraded if any block was, carrying the
/// first tripped block's limit and stage).
void FoldBlock(const CompileTimeEstimate& e, CompileTimeEstimate* total) {
  total->plan_estimates += e.plan_estimates;
  total->enumeration.joins_unordered += e.enumeration.joins_unordered;
  total->enumeration.joins_ordered += e.enumeration.joins_ordered;
  total->enumeration.entries_created += e.enumeration.entries_created;
  total->estimated_seconds += e.estimated_seconds;
  total->estimation_seconds += e.estimation_seconds;
  total->estimated_memo_bytes += e.estimated_memo_bytes;
  total->plan_slots += e.plan_slots;
  total->completion_plans += e.completion_plans;
  if (e.degraded && !total->degraded) {
    total->degraded = true;
    total->tripped_limit = e.tripped_limit;
    total->degraded_stage = e.degraded_stage;
  }
}

}  // namespace

CompileTimeEstimate CompilationSession::Estimate(const MultiBlockQuery& query,
                                                 const TimeModel& time_model) {
  CompileTimeEstimate total;
  for (const QueryGraph* block : query.AllBlocks()) {
    FoldBlock(Estimate(*block, time_model), &total);
  }
  return total;
}

CompileTimeEstimate CompilationSession::Estimate(
    const MultiBlockQuery& query, const TimeModel& time_model,
    const ResourceLimits& limits) {
  CompileTimeEstimate total;
  for (const QueryGraph* block : query.AllBlocks()) {
    FoldBlock(Estimate(*block, time_model, limits), &total);
  }
  return total;
}

std::vector<StatusOr<OptimizeResult>> CompilationSession::CompileBatch(
    const std::vector<const QueryGraph*>& queries) {
  std::vector<StatusOr<OptimizeResult>> results;
  results.reserve(queries.size());
  for (const QueryGraph* q : queries) {
    if (q == nullptr) {
      results.push_back(Status::InvalidArgument("null query in batch"));
    } else {
      results.push_back(Optimize(*q));
    }
  }
  return results;
}

std::vector<StatusOr<OptimizeResult>> CompilationSession::CompileBatch(
    const std::vector<const QueryGraph*>& queries,
    const ResourceLimits& limits) {
  std::vector<StatusOr<OptimizeResult>> results;
  results.reserve(queries.size());
  for (const QueryGraph* q : queries) {
    if (q == nullptr) {
      results.push_back(Status::InvalidArgument("null query in batch"));
    } else {
      results.push_back(Optimize(*q, limits));
    }
  }
  return results;
}

std::vector<CompileTimeEstimate> CompilationSession::EstimateBatch(
    const std::vector<const QueryGraph*>& queries,
    const TimeModel& time_model) {
  std::vector<CompileTimeEstimate> results;
  results.reserve(queries.size());
  for (const QueryGraph* q : queries) {
    results.push_back(q == nullptr ? CompileTimeEstimate{}
                                   : Estimate(*q, time_model));
  }
  return results;
}

std::vector<CompileTimeEstimate> CompilationSession::EstimateBatch(
    const std::vector<const QueryGraph*>& queries,
    const TimeModel& time_model, const ResourceLimits& limits) {
  std::vector<CompileTimeEstimate> results;
  results.reserve(queries.size());
  for (const QueryGraph* q : queries) {
    results.push_back(q == nullptr ? CompileTimeEstimate{}
                                   : Estimate(*q, time_model, limits));
  }
  return results;
}

}  // namespace cote
