#include "session/compilation_context.h"

#include <cstring>

#include "common/check.h"
#include "optimizer/gosper_partition.h"

namespace cote {

namespace {

/// SplitMix64 finalizer: cheap, allocation-free, good avalanche — the
/// fingerprint is a change detector, not a security boundary.
uint64_t SplitMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t Mix(uint64_t h, uint64_t v) { return SplitMix(h ^ SplitMix(v)); }

/// Doubles are fingerprinted by bit pattern: any selectivity change —
/// however small — must force a cold rebind (stale cardinalities are the
/// hazard this fingerprint exists to prevent).
uint64_t DoubleBits(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

uint64_t MixColumn(uint64_t h, const ColumnRef& c) {
  return Mix(h, c.Encode());
}

}  // namespace

CompilationContext::CompilationContext(OptimizerOptions options,
                                       PlanCounterOptions counter_options)
    : options_((options.Normalize(), std::move(options))),
      counter_options_(counter_options),
      cost_(options_.cost) {
  // The counter must model the same environment the optimizer plans for
  // (moved here from CompileTimeEstimator so every estimate path agrees).
  counter_options_.parallel =
      options_.num_nodes > 1 || options_.plangen.parallel;
  counter_options_.eager_partitions = options_.plangen.eager_partitions;
}

bool CompilationContext::Reset(const QueryGraph& graph) {
  const uint64_t fp = Fingerprint(graph);
  if (graph_ == &graph && fp == fingerprint_) {
    ++stats_.warm_resets;
    return true;
  }
  graph_ = &graph;
  fingerprint_ = fp;
  refined_card_.reset();
  simple_card_.reset();
  interesting_.reset();
  // Counter and enumerator are kept alive (their arenas are the point of
  // the session); the cleared flags make the accessors Rebind() them to
  // the new query on first use.
  counter_bound_ = false;
  enumerator_bound_ = false;
  shard_counters_bound_ = false;
  ++stats_.context_rebinds;
  return false;
}

void CompilationContext::AbandonBinding() {
  graph_ = nullptr;
  fingerprint_ = 0;
  refined_card_.reset();
  simple_card_.reset();
  interesting_.reset();
  // Counter and enumerator objects survive (arena reuse); the cleared
  // flags force a Rebind on next use, which drops all their entry state.
  counter_bound_ = false;
  enumerator_bound_ = false;
  shard_counters_bound_ = false;
}

void CompilationContext::Invalidate() {
  graph_ = nullptr;
  fingerprint_ = 0;
  refined_card_.reset();
  simple_card_.reset();
  interesting_.reset();
  counter_.reset();
  enumerator_.reset();
  counter_bound_ = false;
  enumerator_bound_ = false;
  // The parallel enumerator (worker team) survives — it holds no query
  // state beyond the reusable bitmap — but the shard counters and their
  // graph-referencing cardinality models are dropped with the rest.
  shard_counters_.clear();
  shard_simple_cards_.clear();
  shard_counters_bound_ = false;
}

const QueryGraph& CompilationContext::graph() const {
  COTE_CHECK(graph_ != nullptr);
  return *graph_;
}

const CardinalityModel& CompilationContext::refined_cardinality() {
  if (!refined_card_) {
    refined_card_.emplace(graph(), /*use_key_refinement=*/true);
  }
  return *refined_card_;
}

const CardinalityModel& CompilationContext::simple_cardinality() {
  // Estimate mode uses the simple model: no key/FD refinement, exactly
  // like the paper's prototype (§4/§5.2).
  if (!simple_card_) {
    simple_card_.emplace(graph(), /*use_key_refinement=*/false);
  }
  return *simple_card_;
}

const InterestingOrders& CompilationContext::interesting_orders() {
  if (!interesting_) interesting_.emplace(graph());
  return *interesting_;
}

PlanCounter& CompilationContext::counter() {
  if (!counter_) {
    counter_.emplace(graph(), interesting_orders(), simple_cardinality(),
                     counter_options_);
    counter_bound_ = true;
  } else if (!counter_bound_) {
    counter_->Rebind(graph(), interesting_orders(), simple_cardinality());
    counter_bound_ = true;
  }
  return *counter_;
}

JoinEnumerator& CompilationContext::enumerator() {
  if (!enumerator_) {
    enumerator_.emplace(graph(), options_.enumeration);
  } else if (!enumerator_bound_) {
    enumerator_->Rebind(graph(), options_.enumeration);
  }
  enumerator_bound_ = true;
  return *enumerator_;
}

int CompilationContext::EffectiveParallelWorkers() const {
  if (options_.parallel_workers <= 1) return 1;
  if (options_.enumeration.kind != EnumeratorKind::kBottomUp) return 1;
  const int n = graph().num_tables();
  // Single-table queries have no rank to split; above the flat-bitmap
  // ceiling the Gosper partitioner's binomial table does not reach.
  if (n < 2 || n > kGosperPartitionMaxTables) return 1;
  return options_.parallel_workers;
}

ParallelEnumerator& CompilationContext::parallel_enumerator() {
  COTE_CHECK(options_.parallel_workers > 1);
  if (!parallel_enum_) parallel_enum_.emplace(options_.parallel_workers);
  return *parallel_enum_;
}

PlanCounter& CompilationContext::shard_counter(int w) {
  if (!shard_counters_bound_) {
    const int workers = options_.parallel_workers;
    // Per-worker simple models: CardinalityModel memoizes internally
    // without synchronization, so workers must not share one. Rebuilt
    // per cold bind (they reference the bound graph).
    shard_simple_cards_.clear();
    for (int i = 0; i < workers; ++i) {
      shard_simple_cards_.emplace_back(graph(), /*use_key_refinement=*/false);
    }
    for (int i = 0; i < workers; ++i) {
      if (static_cast<size_t>(i) < shard_counters_.size()) {
        shard_counters_[static_cast<size_t>(i)].Rebind(
            graph(), interesting_orders(), shard_simple_cards_[i]);
      } else {
        shard_counters_.emplace_back(graph(), interesting_orders(),
                                     shard_simple_cards_[i],
                                     counter_options_);
      }
    }
    for (PlanCounter& c : shard_counters_) c.BindShard(&counter());
    shard_counters_bound_ = true;
  }
  return shard_counters_[static_cast<size_t>(w)];
}

EnumerationStats CompilationContext::Enumerate(JoinVisitor* visitor,
                                               ResourceBudget* budget) {
  if (options_.enumeration.kind == EnumeratorKind::kBottomUp) {
    return enumerator().Run(visitor, budget);
  }
  return RunEnumeration(graph(), options_.enumeration, visitor, budget);
}

std::shared_ptr<Memo> CompilationContext::NewMemo() {
  return std::make_shared<Memo>(graph());
}

uint64_t CompilationContext::Fingerprint(const QueryGraph& graph) {
  uint64_t h = SplitMix(static_cast<uint64_t>(graph.num_tables()));
  for (int t = 0; t < graph.num_tables(); ++t) {
    const QueryTableRef& ref = graph.table_ref(t);
    // In-process identity on purpose: rebinding to the same catalog
    // Table object is what makes a warm Reset legal; the fingerprint
    // never persists and is never compared across runs (the cross-run
    // statement-cache key hashes contents instead).
    // det-ok: in-process object identity, never crosses a process
    h = Mix(h, reinterpret_cast<uintptr_t>(ref.table));
    h = Mix(h, ref.inner_only ? 1u : 2u);
  }
  for (const JoinPredicate& p : graph.join_predicates()) {
    h = MixColumn(h, p.left);
    h = MixColumn(h, p.right);
    h = Mix(h, static_cast<uint64_t>(static_cast<int>(p.kind)));
    h = Mix(h, p.derived ? 1u : 2u);
    h = Mix(h, DoubleBits(p.selectivity));
  }
  for (const LocalPredicate& p : graph.local_predicates()) {
    h = MixColumn(h, p.column);
    h = Mix(h, static_cast<uint64_t>(static_cast<int>(p.op)));
    h = Mix(h, DoubleBits(p.selectivity));
  }
  for (const ColumnRef& c : graph.group_by()) h = MixColumn(h, c);
  for (const ColumnRef& c : graph.order_by()) h = MixColumn(h, c);
  h = Mix(h, graph.has_aggregation() ? 1u : 2u);
  h = Mix(h, static_cast<uint64_t>(graph.fetch_first()));
  return h;
}

}  // namespace cote
