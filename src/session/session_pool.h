#ifndef COTE_SESSION_SESSION_POOL_H_
#define COTE_SESSION_SESSION_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/time_model.h"
#include "query/query_graph.h"
#include "session/compilation_stats.h"
#include "session/session.h"

namespace cote {

/// One worker's share of a batch: how much of the queue it drained and
/// what its session spent per stage while doing so.
struct WorkerSlice {
  int worker = 0;
  int64_t queries = 0;
  /// Wall time this worker spent inside its drain loop (claiming and
  /// compiling); Σ busy_seconds / wall_seconds is the achieved speedup.
  double busy_seconds = 0;
  /// Per-stage seconds this worker's session accumulated over the batch.
  StageSeconds stages;
  int64_t context_rebinds = 0;
  int64_t warm_resets = 0;
};

/// \brief Merged instrumentation of one batch across all workers.
///
/// `merged` is the element-wise sum of every worker session's
/// CompilationStats delta for this batch — per-stage StageSeconds summed,
/// compiles/estimates/rebind counters added — so it reads exactly like
/// the stats of one serial session that did all the work.
struct BatchStats {
  CompilationStats merged;
  /// Wall clock of the whole batch, queue setup to last join.
  double wall_seconds = 0;
  /// Σ per-worker busy seconds: the serial-equivalent work time.
  double busy_seconds = 0;
  int workers_used = 0;
  std::vector<WorkerSlice> per_worker;

  /// Achieved wall-clock speedup over running the same work on one
  /// thread: busy / wall. 0 when the batch was empty.
  double Speedup() const {
    return wall_seconds > 0 ? busy_seconds / wall_seconds : 0;
  }
};

/// Plan-mode batch result: per-query results in input order (a failed
/// query carries its Status at its own index; the rest are unaffected).
struct BatchOptimizeResult {
  std::vector<StatusOr<OptimizeResult>> results;
  BatchStats stats;
};

/// Estimate-mode batch result, input order.
struct BatchEstimateResult {
  std::vector<CompileTimeEstimate> results;
  BatchStats stats;
};

/// \brief A fixed pool of CompilationSessions compiling batches
/// concurrently.
///
///   SessionPool pool(/*num_workers=*/8, options);
///   BatchOptimizeResult r = pool.CompileBatch(queries);   // input order
///   BatchEstimateResult e = pool.EstimateBatch(queries, time_model);
///
/// Queue discipline: a chunked atomic cursor over the input vector. Each
/// worker claims the next unclaimed index with one relaxed fetch_add and
/// compiles it through its own session; queries are coarse work units
/// (microseconds to seconds each), so cursor contention is negligible and
/// no stealing structure is needed. Results land at their input index —
/// distinct elements of a pre-sized vector, so workers never touch the
/// same memory.
///
/// Determinism: each query's compilation depends only on the session
/// options (identical across the pool, normalized once) and the query
/// itself — per-session arenas mean zero shared mutable state — so which
/// worker claims which query cannot change any result. A pool batch is
/// bit-identical to a serial CompilationSession loop over the same
/// vector (pinned by tests/session/session_pool_test.cc on the linear,
/// star, random and TPC-H workloads).
///
/// The pool keeps its sessions across batches, so repeated batches reuse
/// warm arenas exactly like a long-lived serial session does. The pool
/// itself is not re-entrant: issue one batch at a time.
class SessionPool {
 public:
  /// `num_workers <= 0` selects std::thread::hardware_concurrency().
  explicit SessionPool(int num_workers, OptimizerOptions options = {},
                       PlanCounterOptions counter_options = {});
  ~SessionPool();

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  /// Plan-compiles the batch; results in input order. A null pointer or a
  /// failing query yields a Status at its index.
  BatchOptimizeResult CompileBatch(
      const std::vector<const QueryGraph*>& queries);

  /// Governed plan batch: `limits` applies per query (each compile re-arms
  /// its worker's budget), so a runaway query degrades or fails at its own
  /// index while every other result is bit-identical to the ungoverned
  /// batch — per-index isolation under concurrency.
  BatchOptimizeResult CompileBatch(
      const std::vector<const QueryGraph*>& queries,
      const ResourceLimits& limits);

  /// Governed plan batch with *per-query* limits: `per_query[i]` arms the
  /// budget for `queries[i]`. This is the scheduler hook the compile
  /// service uses — each query runs under limits derived from its own
  /// estimate, so one under-estimated query degrades at its index without
  /// loosening or tightening anyone else's budget. Sizes must match.
  BatchOptimizeResult CompileBatch(
      const std::vector<const QueryGraph*>& queries,
      const std::vector<ResourceLimits>& per_query);

  /// Per-query-limits batch that additionally attributes pipeline stage
  /// events: the claiming worker installs `observer` with
  /// `per_query_observer_ctx[i]` on its session for exactly the span of
  /// `queries[i]`'s compile, then clears it — so each query's stage
  /// events (and any budget-trip flag they carry) land in that query's
  /// own context object no matter which worker ran it or in what order.
  /// The compile service uses this to gather the same observer-side trip
  /// evidence on the batch path that the open-loop Run gathers per
  /// dispatch. `observer` may be null (contexts then unused); when given,
  /// `per_query_observer_ctx` must have one slot per query, and each ctx
  /// must be written by no one else while the batch runs.
  BatchOptimizeResult CompileBatch(
      const std::vector<const QueryGraph*>& queries,
      const std::vector<ResourceLimits>& per_query, StageObserverFn observer,
      void* const* per_query_observer_ctx);

  /// Estimate-compiles the batch (§3 mode); results in input order. Null
  /// pointers yield a default (all-zero) estimate.
  BatchEstimateResult EstimateBatch(
      const std::vector<const QueryGraph*>& queries,
      const TimeModel& time_model);

  /// Governed estimate batch (per-query limits; tripped queries come back
  /// flagged degraded at their index).
  BatchEstimateResult EstimateBatch(
      const std::vector<const QueryGraph*>& queries,
      const TimeModel& time_model, const ResourceLimits& limits);

  int num_workers() const { return static_cast<int>(sessions_.size()); }

  /// Worker w's session, for inspection between batches (e.g. cumulative
  /// lifetime stats). Do not drive it while a batch is running.
  CompilationSession& session(int worker) { return *sessions_[worker]; }

 private:
  /// Spawns up to `n` workers draining the cursor through `per_item` and
  /// merges the per-session stats deltas. PerItem is
  /// void(CompilationSession*, size_t index), called exactly once per
  /// index in [0, n).
  template <typename PerItem>
  BatchStats RunBatch(size_t n, const PerItem& per_item);

  std::vector<std::unique_ptr<CompilationSession>> sessions_;
};

}  // namespace cote

#endif  // COTE_SESSION_SESSION_POOL_H_
